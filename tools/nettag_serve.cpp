// nettag_serve — the NetTAG embedding inference daemon.
//
// Modes:
//   nettag_serve --model SPEC [flags]     load one replica per --model flag
//                                         and serve newline-delimited JSON
//                                         requests on stdin, one JSON
//                                         response line on stdout per request
//                                         (docs/ARCHITECTURE.md §7.1, §12)
//   nettag_serve --model SPEC --listen ADDR
//                                         socket daemon (docs §11): serve the
//                                         same NDJSON protocol to concurrent
//                                         clients on a unix path or TCP port,
//                                         sharded, with too_busy load shedding
//   nettag_serve --connect ADDR           client: forward stdin request lines
//                                         to a running daemon, print response
//                                         lines on stdout
//   nettag_serve --train-demo PREFIX      build a small corpus, briefly
//                                         pre-train a compact model, and save
//                                         a checkpoint — the quickstart /
//                                         CI-smoke path to a servable model
//   nettag_serve --help                   usage (exit 0)
//
// Flags (serve):
//   --model SPEC           `[NAME=]PREFIX[,quantize|,fp32]`, repeatable: one
//                          replica per flag, each from its own checkpoint
//                          prefix, each independently hot-reloadable. NAME
//                          defaults to "default" (the replica requests
//                          without a "model" field target); the backend
//                          suffix overrides --quantize for that replica
//   --max-gates N          admission size bound (default 20000)
//   --cache-entries N      result-cache bound (default 256; the daemon splits
//                          it across shard partitions)
//   --text-cache-entries N frozen-text-embedding cache bound (default 4096;
//                          one striped cache shared by all replicas)
//   --max-batch N          largest request batch (default 32)
//   --reject-warnings      strict admission: lint warnings also reject
//   --quantize             serve the int8 packed-weight path by default
//                          (docs/PERFORMANCE.md §4); per-replica suffixes
//                          and model_load's "quantize" field override it
//   --log FILE             append one "<op> <status> <ms>" line per request
// Flags (daemon):
//   --listen ADDR          unix:/path/to.sock or host:port (port 0 = pick one)
//   --shards N             worker shards / cache partitions (default 4)
//   --queue-depth K        per-shard queue bound; beyond it netlist ops are
//                          shed with too_busy (default 64)
// Flags (train-demo):
//   --seed S               generation/training seed (default 0x5eed)
//   --designs N            designs per family (default 1)
//
// Exits 0 on EOF, a `shutdown` request, or SIGTERM/SIGINT — the signal path
// drains: the stdin loop finishes the request it is on and the daemon
// finishes every queued request, flushes responses, and prints final metrics
// to stderr. A `reload` request hot-swaps one replica from a checkpoint
// prefix (default: the prefix that replica was loaded from) without dropping
// in-flight work; `model_load`/`model_unload` add and remove replicas at
// runtime. Bad requests are per-request error responses, never daemon
// failures. The stdin loop is deliberately serial — each line is processed
// to completion before the next is read, so wire-path batches always have
// size 1 and a replayed request file yields byte-identical output.
// Concurrent batching happens across daemon shards, or behind the
// in-process Server::submit_async API (see run_serve's note).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/pretrain.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/signal.hpp"
#include "util/timer.hpp"

using namespace nettag;

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: nettag_serve --model [NAME=]PREFIX[,quantize|,fp32] ...\n"
               "                    [--max-gates N]\n"
               "                    [--cache-entries N] [--text-cache-entries N]\n"
               "                    [--max-batch N] [--reject-warnings]\n"
               "                    [--quantize] [--log FILE]\n"
               "                    [--listen ADDR [--shards N] [--queue-depth K]]\n"
               "       nettag_serve --connect ADDR\n"
               "       nettag_serve --train-demo PREFIX [--seed S] [--designs N]\n"
               "       nettag_serve --help\n"
               "\n"
               "Serves gate/cone/circuit embeddings and task predictions for\n"
               "pre-trained NetTAG checkpoints over newline-delimited JSON\n"
               "on stdin/stdout, or — with --listen unix:/path or host:port —\n"
               "as a sharded socket daemon for concurrent clients. --model is\n"
               "repeatable: each flag loads one named replica (default name\n"
               "\"default\"), independently hot-reloadable and addressable by\n"
               "the request \"model\" field. --connect bridges stdin/stdout\n"
               "to a running daemon. See docs/ARCHITECTURE.md sections 7, 11\n"
               "and 12 for the protocol grammar, error taxonomy, `stats`\n"
               "fields, daemon design, and the model registry.\n");
}

int train_demo(const std::string& prefix, std::uint64_t seed, int designs) {
  Rng rng(seed);
  CorpusOptions co;
  co.designs_per_family = designs;
  co.with_physical = false;  // layout labels are not needed to serve embeddings
  std::fprintf(stderr, "nettag_serve: building demo corpus...\n");
  const Corpus corpus = build_corpus(co, rng);
  NetTagConfig mc;
  mc.expr_llm = TextEncoderConfig::tiny();
  NetTag model(mc, seed ^ 0xabcd);
  PretrainOptions po;
  po.expr_steps = 12;
  po.tag_steps = 10;
  po.aux_steps = 0;
  po.max_expressions = 200;
  po.max_cones = 24;
  po.objective_align = false;  // no physical data in the demo corpus
  std::fprintf(stderr, "nettag_serve: pre-training demo checkpoint...\n");
  Timer t;
  const PretrainReport rep = pretrain(model, corpus, po, rng);
  save_checkpoint(model, prefix);
  std::fprintf(stderr,
               "nettag_serve: saved %s.ckpt (+.exprllm.bin/.tagformer.bin) "
               "after %.1fs; expr loss %.3f -> %.3f, tag loss %.3f -> %.3f\n",
               prefix.c_str(), t.seconds(), rep.expr_loss_first,
               rep.expr_loss_last, rep.tag_loss_first, rep.tag_loss_last);
  return 0;
}

/// Builds a server with one registered replica per --model spec. Replicas
/// load through the same registry path as the `model_load` op; the first one
/// donates the shared text cache (config.text_cache_entries/_partitions set
/// its layout). Null on any load failure (the error names the spec).
std::unique_ptr<serve::Server> build_server(
    const std::vector<cli::ModelSpec>& specs, serve::ServerConfig config) {
  auto server = std::make_unique<serve::Server>(std::move(config));
  for (const cli::ModelSpec& spec : specs) {
    std::string error;
    if (!server->load_model(spec.name, spec.prefix, spec.quantize, &error)) {
      std::fprintf(stderr,
                   "nettag_serve: cannot load checkpoint '%s' (model '%s'): "
                   "%s\n",
                   spec.prefix.c_str(), spec.name.c_str(), error.c_str());
      return nullptr;
    }
    // Pin a snapshot for the startup line: the one-per-replica twin of the
    // old single-model message, dim included (checkpoints can differ).
    const std::shared_ptr<const NetTag> model = server->model_snapshot(spec.name);
    std::fprintf(stderr,
                 "nettag_serve: model '%s' loaded from '%s' (embedding dim "
                 "%d)\n",
                 spec.name.c_str(), spec.prefix.c_str(),
                 model ? model->embedding_dim() : 0);
  }
  return server;
}

int run_serve(const std::vector<cli::ModelSpec>& specs,
              serve::ServerConfig config, const std::string& log_path) {
  std::ofstream log;
  if (!log_path.empty()) {
    log.open(log_path, std::ios::app);
    if (!log) {
      std::fprintf(stderr, "nettag_serve: cannot open log file '%s'\n",
                   log_path.c_str());
      return 2;
    }
  }

  std::unique_ptr<serve::Server> server_ptr =
      build_server(specs, std::move(config));
  if (!server_ptr) return 2;
  serve::Server& server = *server_ptr;
  std::fprintf(stderr,
               "nettag_serve: awaiting NDJSON requests on stdin\n");

  // SIGTERM/SIGINT drain instead of killing mid-response: the handlers are
  // installed *without* SA_RESTART, so a signal arriving while getline
  // blocks interrupts the read and the loop exits; a signal arriving while
  // a request is processing lets that request finish and its response flush
  // (the next getline then fails with EINTR). Either way the last response
  // written is complete, never truncated.
  const std::atomic<bool>* stop = install_stop_signals_interrupting();

  // The wire transport is deliberately serial: one pipe is one client, and
  // processing each line to completion before reading the next makes the
  // response stream fully deterministic (a replayed request file always
  // yields identical bytes, cache flags included). Concurrent batching is
  // the in-process API's job — multi-threaded clients submitting through
  // Server::submit_async group into shared pool regions via the Batcher.
  std::string line;
  while (!server.shutdown_requested() &&
         !stop->load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    Timer t;
    const serve::Response response = server.submit_line_async(line).get();
    std::cout << serve::render_response(response) << "\n";
    std::cout.flush();
    if (log) {
      log << serve::op_name(response.op) << ' '
          << (response.ok() ? "ok" : serve::error_code_name(response.error))
          << ' ' << t.milliseconds() << "ms\n";
      log.flush();
    }
  }
  std::fprintf(stderr, "nettag_serve: %s, exiting\n",
               server.shutdown_requested()
                   ? "shutdown requested"
                   : (stop->load(std::memory_order_relaxed)
                          ? "stop signal received, in-flight request drained"
                          : "stdin closed"));
  return 0;
}

int run_daemon(const std::vector<cli::ModelSpec>& specs,
               serve::ServerConfig config, net::DaemonConfig dcfg) {
  // One text-cache stripe per shard: shard workers embed concurrently and
  // must not serialize on a single cache mutex. All replicas share the
  // striped cache, and reload/model_load attach fresh models to it, so the
  // layout survives every swap (serve/registry.cpp).
  config.text_cache_partitions = dcfg.shards;
  dcfg.cache_entries = config.cache_entries;

  std::unique_ptr<serve::Server> server_ptr =
      build_server(specs, std::move(config));
  if (!server_ptr) return 2;
  serve::Server& server = *server_ptr;
  net::Daemon daemon(server, dcfg);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "nettag_serve: cannot listen on '%s': %s\n",
                 dcfg.listen.spec().c_str(), error.c_str());
    return 2;
  }
  if (dcfg.listen.kind == cli::ListenAddress::Kind::kTcp) {
    // Print the *resolved* port so `--listen host:0` callers (tests, CI)
    // can find the daemon.
    std::fprintf(stderr,
                 "nettag_serve: %zu model(s) loaded; listening on %s:%u "
                 "(%zu shards, queue depth %zu)\n",
                 specs.size(), dcfg.listen.host.c_str(),
                 static_cast<unsigned>(daemon.tcp_port()), dcfg.shards,
                 dcfg.queue_depth);
  } else {
    std::fprintf(stderr,
                 "nettag_serve: %zu model(s) loaded; listening on %s "
                 "(%zu shards, queue depth %zu)\n",
                 specs.size(), dcfg.listen.spec().c_str(), dcfg.shards,
                 dcfg.queue_depth);
  }
  const std::atomic<bool>* stop = install_stop_signals_interrupting();
  return daemon.run(stop);
}

int run_client(const std::string& spec) {
  net::Client client;
  std::string error;
  if (!client.connect(spec, &error)) {
    std::fprintf(stderr, "nettag_serve: --connect %s: %s\n", spec.c_str(),
                 error.c_str());
    return 2;
  }
  std::string line, response;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!client.request(line, &response, &error)) {
      std::fprintf(stderr, "nettag_serve: %s\n", error.c_str());
      return 1;
    }
    std::cout << response << "\n";
    std::cout.flush();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<cli::ModelSpec> model_specs;
  std::string demo_prefix, log_path, connect_spec;
  serve::ServerConfig config;
  config.text_cache_entries = TextEmbeddingCache::kDefaultEntries;
  net::DaemonConfig dcfg;
  bool daemon_mode = false;
  std::uint64_t seed = 0x5eed;
  int designs = 1;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "nettag_serve: %s requires a value\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto need_count = [&](int i) -> std::size_t {
    long long v = 0;
    std::string err;
    if (!cli::parse_int(need_value(i), 1, 1LL << 40, &v, &err)) {
      std::fprintf(stderr, "nettag_serve: %s: %s\n", argv[i], err.c_str());
      std::exit(2);
    }
    return static_cast<std::size_t>(v);
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(stdout);
      return 0;
    } else if (!std::strcmp(arg, "--model")) {
      cli::ModelSpec spec;
      std::string err;
      if (!cli::parse_model_spec(need_value(i), &spec, &err)) {
        std::fprintf(stderr, "nettag_serve: --model: %s\n", err.c_str());
        usage(stderr);
        return 2;
      }
      model_specs.push_back(std::move(spec));
      ++i;
    } else if (!std::strcmp(arg, "--train-demo")) {
      demo_prefix = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--max-gates")) {
      config.max_gates = need_count(i);
      ++i;
    } else if (!std::strcmp(arg, "--cache-entries")) {
      config.cache_entries = need_count(i);
      ++i;
    } else if (!std::strcmp(arg, "--text-cache-entries")) {
      config.text_cache_entries = need_count(i);
      ++i;
    } else if (!std::strcmp(arg, "--max-batch")) {
      config.max_batch = need_count(i);
      ++i;
    } else if (!std::strcmp(arg, "--reject-warnings")) {
      config.reject_warnings = true;
    } else if (!std::strcmp(arg, "--quantize")) {
      config.quantize = true;
    } else if (!std::strcmp(arg, "--log")) {
      log_path = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--listen")) {
      std::string err;
      if (!cli::parse_listen_address(need_value(i), &dcfg.listen, &err)) {
        std::fprintf(stderr, "nettag_serve: --listen: %s\n", err.c_str());
        usage(stderr);
        return 2;
      }
      daemon_mode = true;
      ++i;
    } else if (!std::strcmp(arg, "--shards")) {
      dcfg.shards = need_count(i);
      ++i;
    } else if (!std::strcmp(arg, "--queue-depth")) {
      dcfg.queue_depth = need_count(i);
      ++i;
    } else if (!std::strcmp(arg, "--connect")) {
      connect_spec = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--seed")) {
      std::string err;
      if (!cli::parse_u64(need_value(i), &seed, &err)) {
        std::fprintf(stderr, "nettag_serve: --seed: %s\n", err.c_str());
        return 2;
      }
      ++i;
    } else if (!std::strcmp(arg, "--designs")) {
      std::string err;
      long long v = 0;
      if (!cli::parse_int(need_value(i), 1, 1 << 20, &v, &err)) {
        std::fprintf(stderr, "nettag_serve: --designs: %s\n", err.c_str());
        return 2;
      }
      designs = static_cast<int>(v);
      ++i;
    } else {
      std::fprintf(stderr, "nettag_serve: unknown flag %s\n", arg);
      usage(stderr);
      return 2;
    }
  }

  if (!connect_spec.empty()) {
    if (!model_specs.empty() || !demo_prefix.empty() || daemon_mode) {
      std::fprintf(stderr,
                   "nettag_serve: --connect excludes --model/--train-demo/"
                   "--listen\n");
      return 2;
    }
    return run_client(connect_spec);
  }
  if (!demo_prefix.empty() && !model_specs.empty()) {
    std::fprintf(stderr,
                 "nettag_serve: --model and --train-demo are exclusive\n");
    return 2;
  }
  if (!demo_prefix.empty()) {
    if (designs < 1) {
      std::fprintf(stderr, "nettag_serve: --designs must be >= 1\n");
      return 2;
    }
    return train_demo(demo_prefix, seed, designs);
  }
  if (model_specs.empty()) {
    usage(stderr);
    return 2;
  }
  for (std::size_t a = 1; a < model_specs.size(); ++a) {
    for (std::size_t b = 0; b < a; ++b) {
      if (model_specs[a].name == model_specs[b].name) {
        std::fprintf(stderr, "nettag_serve: duplicate --model name '%s'\n",
                     model_specs[a].name.c_str());
        return 2;
      }
    }
  }
  // Each replica's startup checkpoint doubles as its default `reload`
  // target (the registry stores it), so a prefix-less reload request
  // re-reads whatever that replica was started from — the common "the
  // trainer just updated the checkpoint" case.
  if (daemon_mode) {
    return run_daemon(model_specs, std::move(config), std::move(dcfg));
  }
  return run_serve(model_specs, std::move(config), log_path);
}
