// nettag_train — crash-safe pre-training driver (docs/ARCHITECTURE.md §8).
//
// Modes:
//   nettag_train --out PREFIX [flags]     build a corpus, pre-train NetTAG,
//                                         and checkpoint under PREFIX
//   nettag_train --resume PREFIX          continue an interrupted run from
//                                         its last checkpoint; the final
//                                         state is bit-identical to the
//                                         uninterrupted run (same
//                                         NETTAG_THREADS width)
//   nettag_train --build-corpus DIR       stream a sharded out-of-core
//                                         corpus into DIR (resumable: a
//                                         re-run skips committed shards)
//   nettag_train --help                   usage (exit 0)
//
// Flags (--out only — a resume replays the recorded run exactly):
//   --seed S              corpus/model seed (default 0x5eed)
//   --designs N           designs per family (default 1)
//   --corpus DIR          train from a sharded corpus built by
//                         --build-corpus instead of an in-memory one
//                         (excludes --designs; resume lands mid-corpus)
//   --tiny                compact ExprLLM (CI-scale runs)
//   --no-align            drop objective #3 and the physical flow
//   --expr-steps N        step-1 iteration count
//   --tag-steps N         step-2 iteration count
// Flags (--build-corpus; --seed/--designs/--no-align also apply):
//   --shard-designs N     designs per shard file (default 4; peak RAM bound)
//   --flat                flat single-block designs instead of hierarchical
//   --halt-shards N       stop after N new shards (test hook; resumable)
// Flags (--out / --resume):
//   --checkpoint-every N  also checkpoint every N steps of a phase
//                         (phase boundaries and stop always checkpoint)
//   --halt-after N        stop cleanly after N loop steps (test hook; acts
//                         exactly like a signal at a deterministic point)
//
// A fresh run first writes `<PREFIX>.run` — a checksummed manifest of the
// corpus/training knobs — so `--resume PREFIX` can rebuild the exact same
// corpus and option set without the user re-typing (and possibly mistyping)
// them. Architecture comes from `<PREFIX>.ckpt` via read_checkpoint_config.
//
// SIGINT/SIGTERM are handled cooperatively: the loop finishes the step in
// flight, writes a checkpoint, and the tool exits 0 with a "resume with"
// hint. No signal ever tears a file or loses more than one step.
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/corpus_stream.hpp"
#include "core/pretrain.hpp"
#include "nn/serialize.hpp"
#include "util/cli.hpp"
#include "util/signal.hpp"
#include "util/timer.hpp"

using namespace nettag;

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: nettag_train --out PREFIX [--seed S] [--designs N]\n"
               "                    [--corpus DIR] [--tiny] [--no-align]\n"
               "                    [--expr-steps N] [--tag-steps N]\n"
               "                    [--checkpoint-every N] [--halt-after N]\n"
               "       nettag_train --resume PREFIX [--checkpoint-every N]\n"
               "                    [--halt-after N]\n"
               "       nettag_train --build-corpus DIR [--seed S]\n"
               "                    [--designs N] [--shard-designs N]\n"
               "                    [--flat] [--no-align] [--halt-shards N]\n"
               "       nettag_train --help\n"
               "\n"
               "Pre-trains NetTAG with crash-safe checkpoints under PREFIX\n"
               "(PREFIX.ckpt + .exprllm.bin/.tagformer.bin/.trainer.bin plus\n"
               "a PREFIX.run manifest of the run parameters). SIGINT/SIGTERM\n"
               "finish the current step, checkpoint, and exit 0; --resume\n"
               "continues bit-identically. --build-corpus streams a sharded\n"
               "out-of-core corpus (durable shard files + manifest) that\n"
               "--out --corpus trains on one shard at a time. See\n"
               "docs/ARCHITECTURE.md sec. 8 and sec. 13.\n");
}

/// The run parameters a resume must replay exactly. Recorded in
/// `<prefix>.run` before the first training step so the prefix is resumable
/// from the very first checkpoint.
struct RunSpec {
  std::uint64_t seed = 0x5eed;
  int designs = 1;
  /// Sharded corpus directory ("": build an in-memory corpus). Recorded so
  /// --resume re-opens the same corpus and lands mid-corpus.
  std::string corpus_dir;
  bool tiny = false;
  bool align = true;
  int expr_steps = -1;  ///< -1: PretrainOptions default (resolved on write)
  int tag_steps = -1;
};

std::string run_manifest_path(const std::string& prefix) {
  return prefix + ".run";
}

void write_run_manifest(const std::string& prefix, const RunSpec& s) {
  std::vector<std::pair<std::string, std::string>> entries;
  // Format 2 adds the `corpus` key (sharded-corpus training). Run manifests
  // are session-scoped companions of a checkpoint prefix, so there is no
  // format-1 read path (same policy as TrainState's magic bump).
  entries.emplace_back("format", "2");
  entries.emplace_back("seed", std::to_string(s.seed));
  entries.emplace_back("designs", std::to_string(s.designs));
  entries.emplace_back("corpus", s.corpus_dir);
  entries.emplace_back("tiny", s.tiny ? "1" : "0");
  entries.emplace_back("align", s.align ? "1" : "0");
  entries.emplace_back("expr_steps", std::to_string(s.expr_steps));
  entries.emplace_back("tag_steps", std::to_string(s.tag_steps));
  save_manifest(run_manifest_path(prefix), entries);
}

RunSpec read_run_manifest(const std::string& prefix) {
  const std::string path = run_manifest_path(prefix);
  auto fail = [&](const std::string& why) -> std::runtime_error {
    return std::runtime_error(path + ": " + why);
  };
  std::map<std::string, std::string> kv;
  for (const auto& [key, value] : load_manifest(path)) {
    if (!kv.emplace(key, value).second) throw fail("duplicate key '" + key + "'");
  }
  auto get = [&](const char* key) -> const std::string& {
    auto it = kv.find(key);
    if (it == kv.end()) throw fail(std::string("missing key '") + key + "'");
    return it->second;
  };
  if (get("format") != "2") throw fail("unknown format '" + get("format") + "'");
  RunSpec s;
  s.corpus_dir = get("corpus");
  std::string err;
  if (!cli::parse_u64(get("seed").c_str(), &s.seed, &err)) throw fail(err);
  long long v = 0;
  auto get_int = [&](const char* key, long long lo, long long hi) -> long long {
    if (!cli::parse_int(get(key).c_str(), lo, hi, &v, &err)) {
      throw fail(std::string("key '") + key + "': " + err);
    }
    return v;
  };
  s.designs = static_cast<int>(get_int("designs", 1, 1 << 20));
  s.tiny = get_int("tiny", 0, 1) != 0;
  s.align = get_int("align", 0, 1) != 0;
  s.expr_steps = static_cast<int>(get_int("expr_steps", 0, 1 << 20));
  s.tag_steps = static_cast<int>(get_int("tag_steps", 0, 1 << 20));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_prefix, resume_prefix, build_corpus_dir;
  RunSpec spec;
  int checkpoint_every = 0;
  long halt_after = -1;
  int shard_designs = 4;
  bool flat = false;
  int halt_shards = 0;
  bool designs_flag = false;
  // A resume replays the recorded run; run-shaping flags next to --resume
  // are almost certainly a mistake, so they are rejected instead of being
  // silently ignored (they could not be honored bit-identically anyway).
  std::vector<const char*> run_flags_seen;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "nettag_train: %s requires a value\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto need_int = [&](int i, long long lo, long long hi) -> long long {
    long long v = 0;
    std::string err;
    if (!cli::parse_int(need_value(i), lo, hi, &v, &err)) {
      std::fprintf(stderr, "nettag_train: %s: %s\n", argv[i], err.c_str());
      std::exit(2);
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(stdout);
      return 0;
    } else if (!std::strcmp(arg, "--out")) {
      out_prefix = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--resume")) {
      resume_prefix = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--build-corpus")) {
      build_corpus_dir = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--corpus")) {
      spec.corpus_dir = need_value(i);
      run_flags_seen.push_back(arg);
      ++i;
    } else if (!std::strcmp(arg, "--shard-designs")) {
      shard_designs = static_cast<int>(need_int(i, 1, 1 << 20));
      ++i;
    } else if (!std::strcmp(arg, "--flat")) {
      flat = true;
    } else if (!std::strcmp(arg, "--halt-shards")) {
      halt_shards = static_cast<int>(need_int(i, 1, 1 << 30));
      ++i;
    } else if (!std::strcmp(arg, "--seed")) {
      std::string err;
      if (!cli::parse_u64(need_value(i), &spec.seed, &err)) {
        std::fprintf(stderr, "nettag_train: --seed: %s\n", err.c_str());
        return 2;
      }
      run_flags_seen.push_back(arg);
      ++i;
    } else if (!std::strcmp(arg, "--designs")) {
      spec.designs = static_cast<int>(need_int(i, 1, 1 << 20));
      designs_flag = true;
      run_flags_seen.push_back(arg);
      ++i;
    } else if (!std::strcmp(arg, "--tiny")) {
      spec.tiny = true;
      run_flags_seen.push_back(arg);
    } else if (!std::strcmp(arg, "--no-align")) {
      spec.align = false;
      run_flags_seen.push_back(arg);
    } else if (!std::strcmp(arg, "--expr-steps")) {
      spec.expr_steps = static_cast<int>(need_int(i, 0, 1 << 20));
      run_flags_seen.push_back(arg);
      ++i;
    } else if (!std::strcmp(arg, "--tag-steps")) {
      spec.tag_steps = static_cast<int>(need_int(i, 0, 1 << 20));
      run_flags_seen.push_back(arg);
      ++i;
    } else if (!std::strcmp(arg, "--checkpoint-every")) {
      checkpoint_every = static_cast<int>(need_int(i, 1, 1 << 30));
      ++i;
    } else if (!std::strcmp(arg, "--halt-after")) {
      halt_after = static_cast<long>(need_int(i, 0, 1LL << 40));
      ++i;
    } else {
      std::fprintf(stderr, "nettag_train: unknown flag %s\n", arg);
      usage(stderr);
      return 2;
    }
  }

  const bool resuming = !resume_prefix.empty();
  const int modes = (out_prefix.empty() ? 0 : 1) + (resuming ? 1 : 0) +
                    (build_corpus_dir.empty() ? 0 : 1);
  if (modes != 1) {
    std::fprintf(stderr,
                 "nettag_train: exactly one of --out / --resume / "
                 "--build-corpus is required\n");
    usage(stderr);
    return 2;
  }

  // ------------------------- --build-corpus mode ---------------------------
  if (!build_corpus_dir.empty()) {
    StreamOptions sopt;
    sopt.designs_per_family = spec.designs;
    sopt.designs_per_shard = shard_designs;
    sopt.hierarchical = !flat;
    sopt.halt_after_shards = halt_shards;
    sopt.corpus.with_physical = spec.align;
    try {
      const StreamProgress p = build_corpus_stream(
          build_corpus_dir, sopt, spec.seed, [](const ShardStats& s) {
            if (s.skipped) {
              std::fprintf(stderr,
                           "nettag_train: shard %zu already committed, skipped\n",
                           s.index);
            } else {
              std::fprintf(stderr,
                           "nettag_train: shard %zu committed (%zu design(s), "
                           "%zu cone(s), %zu gate(s), %zu expression(s), "
                           "%zu bytes)\n",
                           s.index, s.designs, s.cones, s.gates, s.expressions,
                           s.bytes);
            }
          });
      std::fprintf(stderr,
                   "nettag_train: corpus %s: %zu/%zu shard(s) committed "
                   "(%zu new, %zu skipped)\n",
                   p.complete ? "complete" : "incomplete (resumable)",
                   p.shards_written + p.shards_skipped, p.shards_total,
                   p.shards_written, p.shards_skipped);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nettag_train: corpus build failed: %s\n", e.what());
      return 2;
    }
  }

  if (!spec.corpus_dir.empty() && designs_flag) {
    std::fprintf(stderr,
                 "nettag_train: --designs conflicts with --corpus (the shard "
                 "manifest fixes the corpus shape)\n");
    return 2;
  }
  if (resuming && !run_flags_seen.empty()) {
    std::fprintf(stderr,
                 "nettag_train: %s conflicts with --resume (the run's "
                 "parameters are replayed from %s)\n",
                 run_flags_seen.front(),
                 run_manifest_path(resume_prefix).c_str());
    return 2;
  }
  const std::string prefix = resuming ? resume_prefix : out_prefix;

  NetTagConfig mc;
  try {
    if (resuming) {
      spec = read_run_manifest(prefix);
      mc = read_checkpoint_config(prefix);
    } else {
      if (spec.tiny) mc.expr_llm = TextEncoderConfig::tiny();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nettag_train: cannot resume '%s': %s\n",
                 prefix.c_str(), e.what());
    return 2;
  }

  PretrainOptions po;
  if (spec.expr_steps >= 0) po.expr_steps = spec.expr_steps;
  if (spec.tag_steps >= 0) po.tag_steps = spec.tag_steps;
  spec.expr_steps = po.expr_steps;  // resolve defaults so the manifest is exact
  spec.tag_steps = po.tag_steps;
  po.objective_align = spec.align;
  if (!spec.align) po.aux_steps = 0;
  po.checkpoint.prefix = prefix;
  po.checkpoint.every = checkpoint_every;
  po.checkpoint.halt_after_steps = halt_after;
  po.checkpoint.stop = install_stop_signals();

  Rng rng(spec.seed);
  NetTag model(mc, spec.seed ^ 0x7a67);
  Timer t;
  PretrainReport report;
  try {
    if (!spec.corpus_dir.empty()) {
      // Sharded out-of-core corpus: one shard in RAM at a time.
      const ShardedCorpus corpus(spec.corpus_dir);
      std::fprintf(stderr,
                   "nettag_train: sharded corpus '%s' (%zu shard(s), %zu "
                   "design(s), seed %#llx)\n",
                   spec.corpus_dir.c_str(), corpus.num_shards(),
                   corpus.total_designs(),
                   static_cast<unsigned long long>(corpus.seed()));
      if (resuming) {
        std::fprintf(stderr, "nettag_train: resuming from '%s'...\n",
                     prefix.c_str());
        report = resume_pretrain_streaming(model, corpus, po, rng);
      } else {
        write_run_manifest(prefix, spec);
        std::fprintf(stderr,
                     "nettag_train: pre-training (%d expr + %d tag steps "
                     "across shards)...\n",
                     po.expr_steps, po.tag_steps);
        report = pretrain_streaming(model, corpus, po, rng);
      }
    } else {
      CorpusOptions co;
      co.designs_per_family = spec.designs;
      co.with_physical = spec.align;
      std::fprintf(stderr,
                   "nettag_train: building corpus (seed %#llx, %d design(s) per family)...\n",
                   static_cast<unsigned long long>(spec.seed), spec.designs);
      const Corpus corpus = build_corpus(co, rng);
      if (resuming) {
        std::fprintf(stderr, "nettag_train: resuming from '%s'...\n", prefix.c_str());
        report = resume_pretrain(model, corpus, po, rng);
      } else {
        write_run_manifest(prefix, spec);
        std::fprintf(stderr, "nettag_train: pre-training (%d expr + %d tag steps)...\n",
                     po.expr_steps, po.tag_steps);
        report = pretrain(model, corpus, po, rng);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nettag_train: %s failed: %s\n",
                 resuming ? "resume" : "pre-training", e.what());
    return 2;
  }

  std::fprintf(stderr,
               "nettag_train: %s after %.1fs; expr loss %.3f -> %.3f, "
               "tag loss %.3f -> %.3f (%zu expr / %zu tag steps recorded)\n",
               report.interrupted ? "interrupted (checkpoint saved)" : "completed",
               t.seconds(), report.expr_loss_first, report.expr_loss_last,
               report.tag_loss_first, report.tag_loss_last,
               report.expr_losses.size(), report.tag_losses.size());
  if (report.interrupted) {
    std::fprintf(stderr, "nettag_train: resume with: nettag_train --resume %s\n",
                 prefix.c_str());
  }
  return 0;
}
