// nettag_lint — standalone lint driver for NetTAG datasets (CI gate).
//
// Modes:
//   nettag_lint [flags] <path>...      lint serialized .nl netlists (a
//                                      directory is expanded to its *.nl
//                                      files, recursively)
//   nettag_lint [flags] --generate D   generate a small corpus with the
//                                      real pipeline, dump the design
//                                      netlists into D, and lint the full
//                                      in-memory corpus (cones, TAGs,
//                                      layout graphs, labels included)
//   nettag_lint --rules                print the rule catalog and exit
//
// Flags:
//   --json           machine-readable report on stdout
//   --deep           enable semantic rules (TG004 cone/expression match)
//   --max-fanout N   NL007 bound (default 64)
//   --disable RULE   skip a rule id (repeatable)
//   --designs N      designs per family for --generate (default 1)
//   --seed S         generation seed (default 0x5eed)
//   --no-physical    skip the physical flow in --generate (no layout/labels)
//
// Exit codes: 0 clean (warnings allowed), 1 error-severity findings,
// 2 usage / IO failure. CI runs `nettag_lint --generate lint-data --json`
// and fails the build on nonzero exit.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/dataset.hpp"
#include "core/tag.hpp"
#include "netlist/io.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace fs = std::filesystem;
using namespace nettag;

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: nettag_lint [--json] [--deep] [--max-fanout N]\n"
               "                   [--disable RULE]... <path>...\n"
               "       nettag_lint [--json] [--deep] --generate DIR\n"
               "                   [--designs N] [--seed S] [--no-physical]\n"
               "       nettag_lint --rules\n");
}

void print_rules() {
  for (const RuleInfo& r : rule_catalog()) {
    std::printf("%-6s %-8s %-22s [%s] %s\n", r.id, severity_name(r.severity),
                r.name, r.family, r.description);
  }
}

/// Expands one CLI path argument into .nl files to lint.
std::vector<fs::path> expand_path(const fs::path& p) {
  std::vector<fs::path> out;
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".nl") {
        out.push_back(entry.path());
      }
    }
    std::sort(out.begin(), out.end());
  } else {
    out.push_back(p);
  }
  return out;
}

/// Lints one serialized netlist file. Parse failures become IO001 error
/// diagnostics instead of aborting the run, so one corrupt file does not
/// hide findings in the rest of the dataset.
LintReport lint_file(const fs::path& path, const LintOptions& opts) {
  LintReport report;
  std::ifstream is(path);
  if (!is) {
    report.add("IO001", Severity::kError, path.string(),
               "cannot open file for reading");
    return report;
  }
  Netlist nl;
  try {
    nl = read_netlist(is);
  } catch (const std::exception& e) {
    report.add("IO001", Severity::kError, path.string(),
               std::string("parse failed: ") + e.what());
    return report;
  }
  LintReport file_report = lint_netlist(nl, opts);
  if (opts.deep && !file_report.has_errors()) {
    // Semantic pass: rebuild the TAG and check attribute/cone agreement.
    file_report.merge(lint_tag(nl, build_tag(nl, opts.k_hop), opts));
  }
  report.merge(file_report, path.string());
  return report;
}

/// Runs the real generation pipeline, dumps the design netlists, and lints
/// the complete in-memory corpus (all modalities, not just netlists).
LintReport lint_generated(const fs::path& dir, int designs_per_family,
                          std::uint64_t seed, bool with_physical,
                          const LintOptions& opts) {
  LintReport report;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    report.add("IO001", Severity::kError, dir.string(),
               "cannot create output directory: " + ec.message());
    return report;
  }
  CorpusOptions copts;
  copts.designs_per_family = designs_per_family;
  copts.with_physical = with_physical;
  copts.k_hop = opts.k_hop;
  Rng rng(seed);
  const Corpus corpus = build_corpus(copts, rng);
  for (const DesignSample& d : corpus.designs) {
    const fs::path out = dir / (d.gen.netlist.name() + ".nl");
    std::ofstream os(out);
    if (!os) {
      report.add("IO001", Severity::kError, out.string(),
                 "cannot open file for writing");
      continue;
    }
    write_netlist(os, d.gen.netlist);
  }
  report.merge(lint_corpus(corpus, opts));
  if (opts.deep) {
    // Corpus-level lint keeps deep rules off (they rerun per cone below
    // with the TAG actually fed to the model).
    for (const DesignSample& d : corpus.designs) {
      for (const ConeSample& c : d.cones) {
        report.merge(lint_tag(c.cone, build_tag(c.cone, opts.k_hop), opts),
                     d.gen.netlist.name() + "/" + c.register_name);
      }
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool rules_only = false;
  bool with_physical = true;
  int designs_per_family = 1;
  std::uint64_t seed = 0x5eed;
  fs::path generate_dir;
  bool generate = false;
  LintOptions opts;
  std::vector<fs::path> paths;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "nettag_lint: %s requires a value\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto need_int = [&](int i, long long lo, long long hi) -> long long {
    long long v = 0;
    std::string err;
    if (!cli::parse_int(need_value(i), lo, hi, &v, &err)) {
      std::fprintf(stderr, "nettag_lint: %s: %s\n", argv[i], err.c_str());
      std::exit(2);
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--json")) {
      json = true;
    } else if (!std::strcmp(arg, "--rules")) {
      rules_only = true;
    } else if (!std::strcmp(arg, "--deep")) {
      opts.deep = true;
    } else if (!std::strcmp(arg, "--no-physical")) {
      with_physical = false;
    } else if (!std::strcmp(arg, "--max-fanout")) {
      opts.max_fanout = static_cast<std::size_t>(need_int(i, 1, 1 << 20));
      ++i;
    } else if (!std::strcmp(arg, "--disable")) {
      opts.disabled.insert(need_value(i));
      ++i;
    } else if (!std::strcmp(arg, "--generate")) {
      generate = true;
      generate_dir = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--designs")) {
      designs_per_family = static_cast<int>(need_int(i, 1, 1 << 20));
      ++i;
    } else if (!std::strcmp(arg, "--seed")) {
      std::string err;
      if (!cli::parse_u64(need_value(i), &seed, &err)) {
        std::fprintf(stderr, "nettag_lint: --seed: %s\n", err.c_str());
        return 2;
      }
      ++i;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(stdout);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "nettag_lint: unknown flag %s\n", arg);
      usage(stderr);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (rules_only) {
    print_rules();
    return 0;
  }
  if (!generate && paths.empty()) {
    usage(stderr);
    return 2;
  }
  if (generate && designs_per_family < 1) {
    std::fprintf(stderr, "nettag_lint: --designs must be >= 1\n");
    return 2;
  }

  LintReport report;
  std::size_t files = 0;
  try {
    if (generate) {
      report = lint_generated(generate_dir, designs_per_family, seed,
                              with_physical, opts);
    } else {
      for (const fs::path& p : paths) {
        for (const fs::path& file : expand_path(p)) {
          report.merge(lint_file(file, opts));
          ++files;
        }
      }
      if (files == 0) {
        std::fprintf(stderr, "nettag_lint: no .nl files found\n");
        return 2;
      }
    }
  } catch (const std::exception& e) {
    // The generation pipeline's own seams throw on error-severity findings;
    // surface them as a lint failure rather than a crash.
    report.add("IO002", Severity::kError, "pipeline",
               std::string("generation failed: ") + e.what());
  }

  if (json) {
    std::printf("%s\n", to_json(report).c_str());
  } else {
    if (!report.empty()) std::printf("%s", to_text(report).c_str());
    std::printf("nettag_lint: %zu finding(s), %zu error(s)\n", report.size(),
                report.count(Severity::kError));
  }
  return report.has_errors() ? 1 : 0;
}
