// nettag_lint — standalone lint driver for NetTAG datasets (CI gate).
//
// Modes:
//   nettag_lint [flags] <path>...      lint serialized .nl netlists (a
//                                      directory is expanded to its *.nl
//                                      files, recursively)
//   nettag_lint [flags] --generate D   generate a small corpus with the
//                                      real pipeline, dump the design
//                                      netlists into D, and lint the full
//                                      in-memory corpus (cones, TAGs,
//                                      layout graphs, labels included)
//   nettag_lint [flags] --shards D     validate and lint a sharded corpus
//                                      directory (core/corpus_stream.hpp):
//                                      manifest + per-shard checksums, then
//                                      the full corpus rules shard by shard
//                                      (one shard in RAM at a time)
//   nettag_lint --rules                print the rule catalog and exit
//   nettag_lint --tape                 record one training step per shipped
//                                      model config, dump the autograd tapes
//                                      with live ranges and arena offsets,
//                                      and fail unless every memory plan
//                                      passes the independent verifier
//
// Flags:
//   --json           machine-readable report on stdout
//   --deep           enable semantic rules (TG004 cone/expression match)
//   --max-fanout N   NL007 bound (default 64)
//   --disable RULE   skip a rule id (repeatable)
//   --designs N      designs per family for --generate (default 1)
//   --seed S         generation seed (default 0x5eed)
//   --no-physical    skip the physical flow in --generate (no layout/labels)
//
// Exit codes: 0 clean (warnings allowed), 1 error-severity findings,
// 2 usage / IO failure. CI runs `nettag_lint --generate lint-data --json`
// and fails the build on nonzero exit.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/corpus_stream.hpp"
#include "core/dataset.hpp"
#include "core/tag.hpp"
#include "model/graph.hpp"
#include "model/tagformer.hpp"
#include "model/text_encoder.hpp"
#include "netlist/io.hpp"
#include "nn/liveness.hpp"
#include "nn/tape.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fs = std::filesystem;
using namespace nettag;

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: nettag_lint [--json] [--deep] [--max-fanout N]\n"
               "                   [--disable RULE]... <path>...\n"
               "       nettag_lint [--json] [--deep] --generate DIR\n"
               "                   [--designs N] [--seed S] [--no-physical]\n"
               "       nettag_lint [--json] [--deep] --shards DIR\n"
               "       nettag_lint --rules\n"
               "       nettag_lint --tape\n");
}

void print_rules() {
  for (const RuleInfo& r : rule_catalog()) {
    std::printf("%-6s %-8s %-22s [%s] %s\n", r.id, severity_name(r.severity),
                r.name, r.family, r.description);
  }
}

/// Expands one CLI path argument into .nl files to lint.
std::vector<fs::path> expand_path(const fs::path& p) {
  std::vector<fs::path> out;
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".nl") {
        out.push_back(entry.path());
      }
    }
    std::sort(out.begin(), out.end());
  } else {
    out.push_back(p);
  }
  return out;
}

/// Lints one serialized netlist file. Parse failures become IO001 error
/// diagnostics instead of aborting the run, so one corrupt file does not
/// hide findings in the rest of the dataset.
LintReport lint_file(const fs::path& path, const LintOptions& opts) {
  LintReport report;
  std::ifstream is(path);
  if (!is) {
    report.add("IO001", Severity::kError, path.string(),
               "cannot open file for reading");
    return report;
  }
  Netlist nl;
  try {
    nl = read_netlist(is);
  } catch (const std::exception& e) {
    report.add("IO001", Severity::kError, path.string(),
               std::string("parse failed: ") + e.what());
    return report;
  }
  LintReport file_report = lint_netlist(nl, opts);
  if (opts.deep && !file_report.has_errors()) {
    // Semantic pass: rebuild the TAG and check attribute/cone agreement.
    file_report.merge(lint_tag(nl, build_tag(nl, opts.k_hop), opts));
  }
  report.merge(file_report, path.string());
  return report;
}

/// Runs the real generation pipeline, dumps the design netlists, and lints
/// the complete in-memory corpus (all modalities, not just netlists).
LintReport lint_generated(const fs::path& dir, int designs_per_family,
                          std::uint64_t seed, bool with_physical,
                          const LintOptions& opts) {
  LintReport report;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    report.add("IO001", Severity::kError, dir.string(),
               "cannot create output directory: " + ec.message());
    return report;
  }
  CorpusOptions copts;
  copts.designs_per_family = designs_per_family;
  copts.with_physical = with_physical;
  copts.k_hop = opts.k_hop;
  Rng rng(seed);
  const Corpus corpus = build_corpus(copts, rng);
  for (const DesignSample& d : corpus.designs) {
    const fs::path out = dir / (d.gen.netlist.name() + ".nl");
    std::ofstream os(out);
    if (!os) {
      report.add("IO001", Severity::kError, out.string(),
                 "cannot open file for writing");
      continue;
    }
    write_netlist(os, d.gen.netlist);
  }
  report.merge(lint_corpus(corpus, opts));
  if (opts.deep) {
    // Corpus-level lint keeps deep rules off (they rerun per cone below
    // with the TAG actually fed to the model).
    for (const DesignSample& d : corpus.designs) {
      for (const ConeSample& c : d.cones) {
        report.merge(lint_tag(c.cone, build_tag(c.cone, opts.k_hop), opts),
                     d.gen.netlist.name() + "/" + c.register_name);
      }
    }
  }
  return report;
}

/// Validates and lints a sharded corpus directory. Manifest or shard
/// integrity failures (truncation, checksum mismatch — the reader reports
/// the exact line and byte offset) become IO001 errors; intact shards run
/// the same corpus rules as --generate, one shard in RAM at a time.
LintReport lint_shards(const fs::path& dir, const LintOptions& opts) {
  LintReport report;
  std::unique_ptr<ShardedCorpus> corpus;
  try {
    corpus = std::make_unique<ShardedCorpus>(dir.string());
  } catch (const std::exception& e) {
    report.add("IO001", Severity::kError, dir.string(), e.what());
    return report;
  }
  if (!corpus->complete()) {
    report.add("IO001", Severity::kWarning, dir.string(),
               "corpus manifest is marked incomplete (build was interrupted; "
               "resumable)");
  }
  LintOptions sopts = opts;
  sopts.k_hop = corpus->k_hop();  // match the shard-embedded expressions
  for (std::size_t s = 0; s < corpus->num_shards(); ++s) {
    ShardedCorpus::Shard shard;
    try {
      shard = corpus->load(s);
    } catch (const std::exception& e) {
      report.add("IO001", Severity::kError, corpus->shard_path(s), e.what());
      continue;
    }
    report.merge(lint_corpus(shard.corpus, sopts));
    if (sopts.deep) {
      for (const DesignSample& d : shard.corpus.designs) {
        for (const ConeSample& c : d.cones) {
          report.merge(lint_tag(c.cone, build_tag(c.cone, sopts.k_hop), sopts),
                       d.gen.netlist.name() + "/" + c.register_name);
        }
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// --tape: static audit of the autograd memory planner.
//
// Runs one representative training step (record) plus one replay for every
// shipped model configuration, then dumps each recorded tape with its live
// ranges, arena offsets, and independent verifier verdict. Exit 0 iff every
// signature ends up with a verified, installed plan and no replay diverged.
// ---------------------------------------------------------------------------

void dump_tape_report(const plan::TapeReport& r) {
  std::printf("signature %-24s state=%s verifier=%s\n", r.signature.c_str(),
              r.state.c_str(), r.verifier_ok ? "ok" : r.verifier_verdict.c_str());
  if (!r.plan) return;
  std::printf("  slab=%zu bytes  align=%zu  planned=%zu  coalesced=%zu  "
              "bwd_events=%zu\n",
              r.plan->slab_bytes, r.plan->alignment, r.plan->buffers_planned,
              r.plan->buffers_coalesced, r.tape.bwd_order.size());
  const plan::LivenessResult live = plan::analyze_liveness(r.tape);
  auto offset_str = [](std::size_t off) {
    return off == plan::kHeapSlot ? std::string("heap") : std::to_string(off);
  };
  for (std::size_t i = 0; i < r.tape.entries.size(); ++i) {
    const plan::TapeEntry& e = r.tape.entries[i];
    const plan::MemPlan::Slots& s = r.plan->per_entry[i];
    std::string parents;
    for (const int p : e.parents) {
      if (!parents.empty()) parents += ",";
      parents += std::to_string(p);
    }
    std::printf("  [%3zu] %-14s %4dx%-4d par=[%s] value@%s live[%ld,%ld]",
                i, e.op.c_str(), e.rows, e.cols, parents.c_str(),
                offset_str(s.value).c_str(), live.value[i].def,
                live.value[i].last);
    if (e.requires_grad) {
      std::printf("  grad@%s live[%ld,%ld]", offset_str(s.grad).c_str(),
                  live.grad[i].def, live.grad[i].last);
    }
    for (std::size_t k = 0; k < e.temps.size(); ++k) {
      std::printf("  temp%zu(%dx%d)@%s", k, e.temps[k].first,
                  e.temps[k].second, offset_str(s.temps[k]).c_str());
    }
    std::printf("\n");
  }
}

int tape_audit() {
  // Plans only form on single-thread serial steps; pin the width so the
  // audit is deterministic regardless of NETTAG_THREADS.
  ThreadPool::instance().set_width(1);
  plan::set_planning_enabled(true);

  const std::vector<std::string> anchors = {"(a & b) | (c ^ d)",
                                            "~(x | y) & (z ^ x)"};
  const std::vector<std::string> positives = {"(b & a) | (d ^ c)",
                                              "(x ^ z) & ~(y | x)"};
  const std::vector<std::pair<std::string, TextEncoderConfig>> tiers = {
      {"tiny", TextEncoderConfig::tiny()},
      {"small", TextEncoderConfig::small()},
      {"base", TextEncoderConfig::base()},
  };
  Vocab vocab;
  for (const auto& [name, cfg] : tiers) {
    Rng rng(0x5eed);
    TextEncoder enc(vocab, cfg, rng);
    for (int pass = 0; pass < 2; ++pass) {  // pass 0 records, pass 1 replays
      plan::PlanScope scope("lint|enc|" + name);
      Tensor loss = info_nce(enc.encode_batch(anchors),
                             enc.encode_batch(positives), 0.1f);
      backward(loss);
    }
  }
  {
    // Default TAGFormer (the netlist-side encoder NetTag ships with) on a
    // small ring graph, trained toward a fixed target.
    TagFormerConfig tc;
    tc.in_dim = 8;
    Rng rng(0x5eed);
    TagFormer tf(tc, rng);
    const int n = 6;
    Mat feats(n, tc.in_dim);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < tc.in_dim; ++j) {
        feats.at(i, j) = 0.1f * static_cast<float>((i * 7 + j * 3) % 11);
      }
    }
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
    const Mat adj = tag_adjacency(n, edges);
    Mat target(1, tc.out_dim);
    for (int j = 0; j < tc.out_dim; ++j) target.at(0, j) = 0.01f * static_cast<float>(j);
    for (int pass = 0; pass < 2; ++pass) {
      plan::PlanScope scope("lint|tagformer|default");
      const TagFormer::Output out =
          tf.forward(make_tensor(feats, false), make_tensor(adj, false));
      backward(mse_loss(out.cls, target));
    }
  }

  bool ok = true;
  for (const plan::TapeReport& r : plan::tape_reports()) {
    dump_tape_report(r);
    if (r.state != "ready" || !r.verifier_ok) ok = false;
  }
  const plan::Stats st = plan::stats_snapshot();
  std::printf(
      "tape audit: %llu tape(s) recorded, %llu plan(s) installed, "
      "%llu replay(s), %llu divergence(s), %llu verifier reject(s)\n",
      st.tapes_recorded, st.plans_installed, st.replays, st.divergences,
      st.verifier_rejects);
  if (st.divergences > 0 || st.verifier_rejects > 0) ok = false;
  if (!ok) std::printf("tape audit: FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool rules_only = false;
  bool tape_mode = false;
  bool with_physical = true;
  int designs_per_family = 1;
  std::uint64_t seed = 0x5eed;
  fs::path generate_dir;
  bool generate = false;
  fs::path shards_dir;
  bool shards = false;
  LintOptions opts;
  std::vector<fs::path> paths;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "nettag_lint: %s requires a value\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto need_int = [&](int i, long long lo, long long hi) -> long long {
    long long v = 0;
    std::string err;
    if (!cli::parse_int(need_value(i), lo, hi, &v, &err)) {
      std::fprintf(stderr, "nettag_lint: %s: %s\n", argv[i], err.c_str());
      std::exit(2);
    }
    return v;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--json")) {
      json = true;
    } else if (!std::strcmp(arg, "--rules")) {
      rules_only = true;
    } else if (!std::strcmp(arg, "--tape")) {
      tape_mode = true;
    } else if (!std::strcmp(arg, "--deep")) {
      opts.deep = true;
    } else if (!std::strcmp(arg, "--no-physical")) {
      with_physical = false;
    } else if (!std::strcmp(arg, "--max-fanout")) {
      opts.max_fanout = static_cast<std::size_t>(need_int(i, 1, 1 << 20));
      ++i;
    } else if (!std::strcmp(arg, "--disable")) {
      opts.disabled.insert(need_value(i));
      ++i;
    } else if (!std::strcmp(arg, "--generate")) {
      generate = true;
      generate_dir = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--shards")) {
      shards = true;
      shards_dir = need_value(i);
      ++i;
    } else if (!std::strcmp(arg, "--designs")) {
      designs_per_family = static_cast<int>(need_int(i, 1, 1 << 20));
      ++i;
    } else if (!std::strcmp(arg, "--seed")) {
      std::string err;
      if (!cli::parse_u64(need_value(i), &seed, &err)) {
        std::fprintf(stderr, "nettag_lint: --seed: %s\n", err.c_str());
        return 2;
      }
      ++i;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      usage(stdout);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "nettag_lint: unknown flag %s\n", arg);
      usage(stderr);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (rules_only) {
    print_rules();
    return 0;
  }
  if (tape_mode) {
    return tape_audit();
  }
  if (generate && shards) {
    std::fprintf(stderr, "nettag_lint: --generate and --shards are exclusive\n");
    return 2;
  }
  if (!generate && !shards && paths.empty()) {
    usage(stderr);
    return 2;
  }
  if (generate && designs_per_family < 1) {
    std::fprintf(stderr, "nettag_lint: --designs must be >= 1\n");
    return 2;
  }

  LintReport report;
  std::size_t files = 0;
  try {
    if (generate) {
      report = lint_generated(generate_dir, designs_per_family, seed,
                              with_physical, opts);
    } else if (shards) {
      report = lint_shards(shards_dir, opts);
    } else {
      for (const fs::path& p : paths) {
        for (const fs::path& file : expand_path(p)) {
          report.merge(lint_file(file, opts));
          ++files;
        }
      }
      if (files == 0) {
        std::fprintf(stderr, "nettag_lint: no .nl files found\n");
        return 2;
      }
    }
  } catch (const std::exception& e) {
    // The generation pipeline's own seams throw on error-severity findings;
    // surface them as a lint failure rather than a crash.
    report.add("IO002", Severity::kError, "pipeline",
               std::string("generation failed: ") + e.what());
  }

  if (json) {
    std::printf("%s\n", to_json(report).c_str());
  } else {
    if (!report.empty()) std::printf("%s", to_text(report).c_str());
    std::printf("nettag_lint: %zu finding(s), %zu error(s)\n", report.size(),
                report.count(Severity::kError));
  }
  return report.has_errors() ? 1 : 0;
}
