// Tests for the interchange artifacts: SPEF writer/reader and the structural
// Verilog emitter.
#include <gtest/gtest.h>

#include "netlist/verilog_writer.hpp"
#include "physical/flow.hpp"
#include "physical/spef.hpp"
#include "rtlgen/generator.hpp"

namespace nettag {
namespace {

TEST(Spef, RoundTripParasitics) {
  Rng rng(7);
  const Netlist nl =
      generate_design(family_profile("opencores"), rng, "spef_t").netlist;
  const Placement pl = place(nl, rng, 2);
  const Parasitics para = extract_parasitics(nl, pl);
  const std::string text = spef_to_string(nl, para);
  EXPECT_NE(text.find("*SPEF"), std::string::npos);
  EXPECT_NE(text.find("*D_NET"), std::string::npos);

  const Parasitics back = spef_from_string(text, nl);
  for (const Gate& g : nl.gates()) {
    if (g.fanouts.empty()) continue;  // undriven nets are not emitted
    const std::size_t i = static_cast<std::size_t>(g.id);
    EXPECT_NEAR(back.nets[i].wire_res, para.nets[i].wire_res, 1e-3) << g.name;
    EXPECT_NEAR(back.nets[i].wire_cap, para.nets[i].wire_cap, 1e-3);
    EXPECT_NEAR(back.nets[i].pin_cap, para.nets[i].pin_cap, 1e-3);
  }
}

TEST(Spef, MalformedRejected) {
  Netlist nl("t");
  nl.add_port("a");
  EXPECT_THROW(spef_from_string("*D_NET nope 1.0\n", nl), std::runtime_error);
  EXPECT_THROW(spef_from_string("*RES 1.0\n", nl), std::runtime_error);
}

TEST(Spef, ReadBackDrivesSameSta) {
  // STA on round-tripped parasitics must match the original analysis.
  Rng rng(8);
  const Netlist nl =
      generate_design(family_profile("itc99"), rng, "spef_sta").netlist;
  const Placement pl = place(nl, rng, 2);
  const Parasitics para = extract_parasitics(nl, pl);
  const Parasitics back = spef_from_string(spef_to_string(nl, para), nl);
  const TimingReport a = run_sta(nl, para, 2.0);
  const TimingReport b = run_sta(nl, back, 2.0);
  for (GateId e : a.endpoints) {
    EXPECT_NEAR(a.slack[static_cast<std::size_t>(e)],
                b.slack[static_cast<std::size_t>(e)], 1e-2);
  }
}

TEST(Verilog, EmitsWellFormedModule) {
  Rng rng(9);
  const Netlist nl =
      generate_design(family_profile("opencores"), rng, "vlog_t").netlist;
  const std::string v = verilog_to_string(nl);
  EXPECT_NE(v.find("module vlog_t"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Sequential design: clock port + DFF instances present.
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("DFF "), std::string::npos);
  EXPECT_NE(v.find(".CK(clk)"), std::string::npos);
  // Every logic cell name that appears in the netlist appears in the text.
  const auto counts = nl.type_counts();
  for (const CellInfo& c : all_cells()) {
    if (c.type == CellType::kPort || c.type == CellType::kConst0 ||
        c.type == CellType::kConst1) {
      continue;
    }
    if (counts[static_cast<std::size_t>(c.type)] > 0) {
      EXPECT_NE(v.find(std::string("  ") + c.name + " "), std::string::npos)
          << c.name;
    }
  }
}

TEST(Verilog, BusNamesEscaped) {
  Netlist nl("esc");
  const GateId p = nl.add_port("in0[3]");
  const GateId g = nl.add_gate(CellType::kInv, "n1", {p});
  nl.mark_output(g);
  const std::string v = verilog_to_string(nl);
  EXPECT_NE(v.find("\\in0[3] "), std::string::npos);
}

TEST(Verilog, CombinationalModuleHasNoClock) {
  Netlist nl("comb");
  const GateId a = nl.add_port("a");
  const GateId b = nl.add_port("b");
  const GateId g = nl.add_gate(CellType::kNand2, "g1", {a, b});
  nl.mark_output(g);
  const std::string v = verilog_to_string(nl);
  EXPECT_EQ(v.find("input clk"), std::string::npos);
  EXPECT_NE(v.find("NAND2 i_g1 (.A(a), .B(b), .Y(g1));"), std::string::npos);
}

}  // namespace
}  // namespace nettag
