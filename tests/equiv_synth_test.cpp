// Tests for BDD-based netlist equivalence checking and expression-to-gates
// synthesis, including the full loop: extract cone expression -> simplify ->
// resynthesize -> formally check equivalent.
#include <gtest/gtest.h>

#include "expr/simplify.hpp"
#include "netlist/equiv.hpp"
#include "netlist/expr_synth.hpp"
#include "rtlgen/generator.hpp"
#include "rtlgen/optimize.hpp"

namespace nettag {
namespace {

TEST(Equiv, IdenticalNetlistsEquivalent) {
  Rng rng(3);
  const Netlist nl =
      generate_design(family_profile("opencores"), rng, "eq1").netlist;
  const EquivResult res = check_equivalence(nl, nl);
  EXPECT_TRUE(res.equivalent) << res.mismatch << res.error;
  EXPECT_GT(res.checkpoints, 0u);
}

TEST(Equiv, RewrittenNetlistEquivalent) {
  Rng rng(4);
  const Netlist nl =
      generate_design(family_profile("itc99"), rng, "eq2").netlist;
  const Netlist rw = cleanup(logic_rewrite(nl, rng, 0.6));
  const EquivResult res = check_equivalence(nl, rw);
  EXPECT_TRUE(res.equivalent) << "mismatch at " << res.mismatch << res.error;
}

TEST(Equiv, BrokenNetlistDetected) {
  Rng rng(5);
  Netlist a("a");
  const GateId x = a.add_port("x");
  const GateId y = a.add_port("y");
  const GateId g = a.add_gate(CellType::kAnd2, "g", {x, y});
  a.add_gate(CellType::kDff, "r", {g});

  Netlist b("b");
  const GateId x2 = b.add_port("x");
  const GateId y2 = b.add_port("y");
  const GateId g2 = b.add_gate(CellType::kOr2, "g", {x2, y2});  // wrong gate
  b.add_gate(CellType::kDff, "r", {g2});

  const EquivResult res = check_equivalence(a, b);
  EXPECT_FALSE(res.equivalent);
  EXPECT_EQ(res.mismatch, "r");
}

TEST(Equiv, RegisterSetMismatchReported) {
  Netlist a("a");
  const GateId x = a.add_port("x");
  a.add_gate(CellType::kDff, "r1", {x});
  Netlist b("b");
  const GateId x2 = b.add_port("x");
  b.add_gate(CellType::kDff, "r2", {x2});
  const EquivResult res = check_equivalence(a, b);
  EXPECT_FALSE(res.equivalent);
  EXPECT_FALSE(res.error.empty());
}

TEST(ExprSynth, LowersAndMatchesExpression) {
  Netlist nl("s");
  nl.add_port("a");
  nl.add_port("b");
  nl.add_port("c");
  const ExprPtr e = parse_expr("((a&b)|(!c^(a|b|c)))");
  const GateId out = synthesize_expression(nl, e);
  nl.mark_output(out);
  nl.validate();
  // Exhaustive agreement with expression evaluation.
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<bool> src(nl.size(), false);
    Assignment asg;
    const char* names[] = {"a", "b", "c"};
    for (int j = 0; j < 3; ++j) {
      const bool v = (mask >> j) & 1;
      src[static_cast<std::size_t>(nl.find(names[j]))] = v;
      asg[names[j]] = v;
    }
    EXPECT_EQ(simulate(nl, src)[static_cast<std::size_t>(out)], eval(e, asg))
        << mask;
  }
}

TEST(ExprSynth, WideOperatorsUseWideCells) {
  Netlist nl("w");
  for (int i = 0; i < 4; ++i) nl.add_port("p" + std::to_string(i));
  const GateId out =
      synthesize_expression(nl, parse_expr("(p0&p1&p2&p3)"));
  (void)out;
  EXPECT_EQ(nl.type_counts()[static_cast<std::size_t>(CellType::kAnd4)], 1u);
}

TEST(ExprSynth, UnknownSignalThrows) {
  Netlist nl("u");
  nl.add_port("a");
  EXPECT_THROW(synthesize_expression(nl, parse_expr("(a&zz)")),
               std::invalid_argument);
}

TEST(ExprSynth, ExtractSimplifyResynthesizeLoop) {
  // Full loop on generated designs: every register's cone expression,
  // simplified and resynthesized next to the original logic, must be
  // formally equivalent to the original D-input function.
  Rng rng(6);
  Netlist nl = generate_design(family_profile("opencores"), rng, "loop").netlist;
  int checked = 0;
  for (GateId r : nl.registers()) {
    const GateId d = nl.gate(r).fanins[0];
    const ExprPtr cone_expr = simplify(khop_expression(nl, d, 64));
    if (support(cone_expr).size() > 18) continue;  // keep BDDs small
    // Synthesize the simplified expression back into the same netlist.
    const GateId re = synthesize_expression(nl, cone_expr,
                                            "re" + std::to_string(r) + "_");
    // Formal check via a two-netlist comparison: build tiny netlists whose
    // single output is each function... simpler: XOR the two signals and
    // require the XOR to be constant 0 via simulation over random vectors
    // plus BDD spot check through expression extraction.
    const ExprPtr back = khop_expression(nl, re, 64);
    EXPECT_TRUE(semantically_equal(cone_expr, back));
    ++checked;
  }
  EXPECT_GT(checked, 0);
  nl.validate();
}

}  // namespace
}  // namespace nettag
