// Tests for the TAG formulation, corpus/dataset builder, and the NetTag
// facade (embedding API, caching, persistence).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/dataset.hpp"
#include "core/nettag.hpp"
#include "core/tag.hpp"
#include "tasks/labels.hpp"

namespace nettag {
namespace {

Netlist fig3() {
  Netlist nl("fig3");
  const GateId r1 = nl.add_port("R1");
  const GateId r2 = nl.add_port("R2");
  const GateId u1 = nl.add_gate(CellType::kXor2, "U1", {r1, r2});
  const GateId u2 = nl.add_gate(CellType::kInv, "U2", {r2});
  const GateId u3 = nl.add_gate(CellType::kNor2, "U3", {u1, u2});
  nl.mark_output(u3);
  nl.gate(u1).rtl_block = "add";  // label that must NOT leak into the TAG
  return nl;
}

TEST(Tag, AttributeContainsPaperExpression) {
  const Netlist nl = fig3();
  const std::string attr = gate_text_attribute(nl, nl.find("U3"), 2);
  EXPECT_NE(attr.find("!((R1^R2)|!R2)"), std::string::npos) << attr;
  EXPECT_NE(attr.find("type NOR2"), std::string::npos);
  EXPECT_NE(attr.find("phys"), std::string::npos);
  EXPECT_NE(attr.find("toggle"), std::string::npos);
  EXPECT_NE(attr.find("prob"), std::string::npos);
}

TEST(Tag, NoLabelLeakage) {
  // The RTL-block label is Task 1's target; it must never appear in the
  // text attribute (the paper makes the same point about GNN-RE's data).
  const Netlist nl = fig3();
  for (const Gate& g : nl.gates()) {
    const std::string attr = gate_text_attribute(nl, g.id, 2);
    EXPECT_EQ(attr.find("add"), std::string::npos) << attr;
    EXPECT_EQ(attr.find("block"), std::string::npos) << attr;
  }
}

TEST(Tag, BuildTagShapes) {
  const Netlist nl = fig3();
  const TagGraph tag = build_tag(nl, 2);
  EXPECT_EQ(tag.num_nodes(), static_cast<int>(nl.size()));
  EXPECT_EQ(tag.phys.rows, static_cast<int>(nl.size()));
  // R1->U1, R2->U1, R2->U2, U1->U3, U2->U3.
  EXPECT_EQ(static_cast<int>(tag.edges.size()), 5);
}

TEST(Tag, PortsHaveNoExpression) {
  const Netlist nl = fig3();
  const std::string attr = gate_text_attribute(nl, nl.find("R1"), 2);
  EXPECT_EQ(attr.find("expr"), std::string::npos) << attr;
}

TEST(Dataset, CorpusCoversAllFamilies) {
  Rng rng(17);
  CorpusOptions co;
  co.designs_per_family = 2;
  co.with_physical = false;
  const Corpus corpus = build_corpus(co, rng);
  EXPECT_EQ(corpus.families.size(), 4u);
  EXPECT_EQ(corpus.designs.size(), 8u);
  for (const DesignSample& d : corpus.designs) {
    EXPECT_FALSE(d.cones.empty());
    for (const ConeSample& c : d.cones) {
      c.cone.validate();
      EXPECT_FALSE(c.register_name.empty());
      EXPECT_FALSE(c.rtl_text.empty());
    }
  }
}

TEST(Dataset, PhysicalLabelsPopulated) {
  Rng rng(18);
  CorpusOptions co;
  co.designs_per_family = 1;
  const Corpus corpus = build_corpus(co, rng);
  for (const DesignSample& d : corpus.designs) {
    EXPECT_GT(d.area_wo_opt, 0.0);
    EXPECT_GT(d.area_w_opt, 0.0);
    EXPECT_GT(d.power_wo_opt, 0.0);
    EXPECT_GT(d.power_w_opt, 0.0);
    EXPECT_GT(d.tool_area, 0.0);
    EXPECT_GT(d.tool_power, 0.0);
    EXPECT_GT(d.pr_runtime_seconds, 0.0);
    int with_layout = 0;
    for (const ConeSample& c : d.cones) {
      EXPECT_GT(c.clock_period, 0.0);
      if (c.has_layout) {
        ++with_layout;
        EXPECT_FALSE(c.layout.node_feats.empty());
      }
    }
    EXPECT_GT(with_layout, 0);
  }
}

TEST(Dataset, ExpressionCollection) {
  Rng rng(19);
  CorpusOptions co;
  co.designs_per_family = 1;
  co.with_physical = false;
  const Corpus corpus = build_corpus(co, rng);
  const auto exprs = collect_expressions(corpus, 2, 50);
  EXPECT_FALSE(exprs.empty());
  // Every collected string must parse as a Boolean expression.
  for (const auto& e : exprs) {
    EXPECT_NO_THROW(parse_expr(e)) << e;
  }
  // Per-design cap respected.
  EXPECT_LE(exprs.size(), corpus.designs.size() * 50);
}

TEST(Dataset, StatisticsConsistent) {
  Rng rng(20);
  CorpusOptions co;
  co.designs_per_family = 1;
  co.with_physical = false;
  const Corpus corpus = build_corpus(co, rng);
  const auto stats = corpus_statistics(corpus, 2);
  ASSERT_EQ(stats.size(), 4u);
  std::size_t cones = 0;
  for (const auto& fs : stats) {
    cones += fs.cone_count;
    if (fs.cone_count) EXPECT_GT(fs.avg_cone_nodes, 0.0);
    if (fs.expr_count) EXPECT_GT(fs.avg_expr_tokens, 0.0);
  }
  std::size_t expected = 0;
  for (const auto& d : corpus.designs) expected += d.cones.size();
  EXPECT_EQ(cones, expected);
}

TEST(NetTagModel, EmbeddingShapes) {
  NetTag model(NetTagConfig{}, 3);
  const Netlist nl = fig3();
  const NetTag::ConeEmbedding emb = model.embed(nl);
  EXPECT_EQ(emb.nodes.rows, static_cast<int>(nl.size()));
  EXPECT_EQ(emb.nodes.cols, model.embedding_dim());
  EXPECT_EQ(emb.cls.rows, 1);
  EXPECT_EQ(emb.inputs.rows, static_cast<int>(nl.size()));
  EXPECT_EQ(emb.inputs.cols, model.tag_in_dim());
}

TEST(NetTagModel, TextCacheDedupsByStructure) {
  NetTag model(NetTagConfig{}, 3);
  // Two same-structure netlists with different names share cache entries.
  Netlist a("a");
  const GateId pa = a.add_port("x");
  a.add_gate(CellType::kInv, "ga", {pa});
  Netlist b("b");
  const GateId pb = b.add_port("y");
  b.add_gate(CellType::kInv, "gb", {pb});
  model.embed(a);
  const std::size_t after_a = model.text_cache_size();
  model.embed(b);
  EXPECT_EQ(model.text_cache_size(), after_a);
}

TEST(NetTagModel, EmbedCircuitSequentialUsesCones) {
  Rng rng(4);
  NetTag model(NetTagConfig{}, 3);
  const Netlist nl =
      generate_design(family_profile("opencores"), rng, "seq").netlist;
  ASSERT_FALSE(nl.registers().empty());
  const Mat emb = model.embed_circuit(nl);
  EXPECT_EQ(emb.rows, 1);
  EXPECT_EQ(emb.cols, model.embedding_dim());
  // Combinational circuit: direct CLS (must also work).
  const Mat comb = model.embed_circuit(fig3());
  EXPECT_EQ(comb.cols, model.embedding_dim());
}

TEST(NetTagModel, ConeFeatureShape) {
  Rng rng(5);
  NetTag model(NetTagConfig{}, 3);
  const Netlist nl =
      generate_design(family_profile("opencores"), rng, "cf").netlist;
  const auto cones = extract_register_cones(nl, 60);
  ASSERT_FALSE(cones.empty());
  const Mat f = model.cone_feature(cones[0].cone);
  EXPECT_EQ(f.rows, 1);
  EXPECT_EQ(f.cols, model.cone_feature_dim());
}

TEST(NetTagModel, SaveLoadRoundTrip) {
  NetTag model(NetTagConfig{}, 3);
  const Netlist nl = fig3();
  const Mat before = model.embed(nl).cls;
  model.save("/tmp/nettag_test_model");
  NetTag other(NetTagConfig{}, 99);  // different init
  const Mat different = other.embed(nl).cls;
  other.load("/tmp/nettag_test_model");
  const Mat after = other.embed(nl).cls;
  double diff_loaded = 0, diff_init = 0;
  for (int j = 0; j < before.cols; ++j) {
    diff_loaded += std::abs(before.at(0, j) - after.at(0, j));
    diff_init += std::abs(before.at(0, j) - different.at(0, j));
  }
  EXPECT_LT(diff_loaded, 1e-4);
  EXPECT_GT(diff_init, 1e-3);
  std::remove("/tmp/nettag_test_model.exprllm.bin");
  std::remove("/tmp/nettag_test_model.tagformer.bin");
}

TEST(NetTagModel, WithoutTextAblationChangesInputDim) {
  NetTagConfig with_text;
  NetTagConfig without;
  without.use_text_attributes = false;
  NetTag a(with_text, 3);
  NetTag b(without, 3);
  EXPECT_NE(a.tag_in_dim(), b.tag_in_dim());
  // Both must still embed.
  const Netlist nl = fig3();
  EXPECT_EQ(a.embed(nl).cls.cols, a.embedding_dim());
  EXPECT_EQ(b.embed(nl).cls.cols, b.embedding_dim());
}

TEST(Labels, Task1ClassMappingTotal) {
  // Every label the generator emits maps to a class.
  for (const std::string& label : task1_labels()) {
    if (label == "datapath") continue;  // register-only label
    EXPECT_GE(task1_class_id(label), 0) << label;
  }
  EXPECT_EQ(task1_class_id("unknown_block"), -1);
  EXPECT_EQ(task1_class_id("add"), task1_class_id("alu"));
  EXPECT_NE(task1_class_id("add"), task1_class_id("sub"));
}

}  // namespace
}  // namespace nettag
