// Tests for graph utilities, the text encoder, TAGFormer, and the GCN.
#include <gtest/gtest.h>

#include <cmath>

#include "model/gcn.hpp"
#include "model/graph.hpp"
#include "model/tagformer.hpp"
#include "model/text_encoder.hpp"
#include "rtlgen/generator.hpp"

namespace nettag {
namespace {

TEST(GraphUtils, NormalizedAdjacencySymmetric) {
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {0, 2}};
  const Mat a = normalized_adjacency(4, edges);
  ASSERT_EQ(a.rows, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(a.at(i, j), a.at(j, i), 1e-6);
    }
  }
  // Self loops present; isolated node 3 normalizes to exactly 1.
  EXPECT_NEAR(a.at(3, 3), 1.f, 1e-6);
  EXPECT_GT(a.at(0, 1), 0.f);
}

TEST(GraphUtils, NormalizationBoundsRowSums) {
  // D^-1/2 (A+I) D^-1/2 has spectral radius <= 1; its entries are positive
  // and each row sums to <= sqrt(deg) bound. Check entries in (0, 1].
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const Mat a = normalized_adjacency(4, edges);
  for (float v : a.v) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
  }
}

TEST(GraphUtils, TagAdjacencyConnectsCls) {
  const Mat a = tag_adjacency(3, {{0, 1}});
  ASSERT_EQ(a.rows, 4);
  // CLS (index 3) connected to every node.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(a.at(3, i), 0.f);
    EXPECT_GT(a.at(i, 3), 0.f);
  }
}

TEST(GraphUtils, NetlistFeaturesShape) {
  Rng rng(1);
  const Netlist nl =
      generate_design(family_profile("opencores"), rng, "feat").netlist;
  const Mat base = netlist_base_features(nl);
  const Mat phys = netlist_phys_features(nl);
  EXPECT_EQ(base.rows, static_cast<int>(nl.size()));
  EXPECT_EQ(base.cols, netlist_base_feature_dim());
  EXPECT_EQ(phys.cols, netlist_phys_feature_dim());
  // One-hot region: exactly one type bit set per gate.
  for (int i = 0; i < base.rows; ++i) {
    float sum = 0;
    for (int j = 0; j < kNumCellTypes; ++j) sum += base.at(i, j);
    EXPECT_NEAR(sum, 1.f, 1e-6);
  }
  // Activity columns are probabilities.
  for (int i = 0; i < phys.rows; ++i) {
    EXPECT_GE(phys.at(i, 7), 0.f);
    EXPECT_LE(phys.at(i, 7), 1.f);
    EXPECT_GE(phys.at(i, 8), 0.f);
    EXPECT_LE(phys.at(i, 8), 1.f);
  }
}

TEST(TextEncoder, OutputShapeAndDeterminism) {
  Vocab vocab;
  Rng rng(2);
  TextEncoder enc(vocab, TextEncoderConfig::small(), rng);
  const Tensor a = enc.encode("U3 = !((R1^R2)|!R2)");
  EXPECT_EQ(a->value.rows, 1);
  EXPECT_EQ(a->value.cols, enc.config().out_dim);
  const Tensor b = enc.encode("U3 = !((R1^R2)|!R2)");
  for (std::size_t i = 0; i < a->value.v.size(); ++i) {
    EXPECT_FLOAT_EQ(a->value.v[i], b->value.v[i]);
  }
}

TEST(TextEncoder, NameInvariance) {
  // Anonymizing tokenization: renaming identifiers must not change output.
  Vocab vocab;
  Rng rng(3);
  TextEncoder enc(vocab, TextEncoderConfig::tiny(), rng);
  const Tensor a = enc.encode("U3 = !(R1|R2)");
  const Tensor b = enc.encode("zz = !(alpha|beta)");
  for (std::size_t i = 0; i < a->value.v.size(); ++i) {
    EXPECT_FLOAT_EQ(a->value.v[i], b->value.v[i]);
  }
}

TEST(TextEncoder, DifferentTextsDifferentEmbeddings) {
  Vocab vocab;
  Rng rng(4);
  TextEncoder enc(vocab, TextEncoderConfig::small(), rng);
  const Tensor a = enc.encode("(a&b)");
  const Tensor b = enc.encode("(a|b)");
  double diff = 0;
  for (std::size_t i = 0; i < a->value.v.size(); ++i) {
    diff += std::abs(a->value.v[i] - b->value.v[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(TextEncoder, TruncatesLongInput) {
  Vocab vocab;
  Rng rng(5);
  TextEncoderConfig cfg = TextEncoderConfig::tiny();
  cfg.max_len = 8;
  TextEncoder enc(vocab, cfg, rng);
  std::string longtext = "a";
  for (int i = 0; i < 500; ++i) longtext += "&a";
  EXPECT_NO_THROW(enc.encode(longtext));
}

TEST(TextEncoder, EmptyTextHandled) {
  Vocab vocab;
  Rng rng(6);
  TextEncoder enc(vocab, TextEncoderConfig::tiny(), rng);
  const Tensor e = enc.encode("");
  EXPECT_EQ(e->value.cols, enc.config().out_dim);
}

TEST(TextEncoder, SizeTiersOrdered) {
  Vocab vocab;
  Rng rng(7);
  TextEncoder tiny(vocab, TextEncoderConfig::tiny(), rng);
  TextEncoder small(vocab, TextEncoderConfig::small(), rng);
  TextEncoder base(vocab, TextEncoderConfig::base(), rng);
  EXPECT_LT(tiny.num_params(), small.num_params());
  EXPECT_LT(small.num_params(), base.num_params());
}

TEST(TextEncoder, BatchMatchesSingle) {
  Vocab vocab;
  Rng rng(8);
  TextEncoder enc(vocab, TextEncoderConfig::tiny(), rng);
  const std::vector<std::string> texts = {"(a&b)", "!(c|d)"};
  const Tensor batch = enc.encode_batch(texts);
  ASSERT_EQ(batch->value.rows, 2);
  const Tensor one = enc.encode(texts[1]);
  for (int j = 0; j < batch->value.cols; ++j) {
    EXPECT_FLOAT_EQ(batch->value.at(1, j), one->value.at(0, j));
  }
}

TEST(TagFormer, OutputShapes) {
  Rng rng(9);
  TagFormerConfig cfg;
  cfg.in_dim = 10;
  cfg.d_model = 16;
  cfg.num_layers = 2;
  cfg.out_dim = 12;
  TagFormer tf(cfg, rng);
  Mat feats(5, 10);
  for (float& x : feats.v) x = 0.1f;
  const Mat adj = tag_adjacency(5, {{0, 1}, {1, 2}});
  const TagFormer::Output out =
      tf.forward(make_tensor(feats, false), make_tensor(adj, false));
  EXPECT_EQ(out.nodes->value.rows, 5);
  EXPECT_EQ(out.nodes->value.cols, 12);
  EXPECT_EQ(out.cls->value.rows, 1);
  EXPECT_EQ(out.cls->value.cols, 12);
}

TEST(TagFormer, StructureChangesEmbedding) {
  // Same features, different topology -> different CLS embedding.
  Rng rng(10);
  TagFormerConfig cfg;
  cfg.in_dim = 6;
  TagFormer tf(cfg, rng);
  Mat feats(4, 6);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) feats.at(i, j) = 0.3f * static_cast<float>(i);
  }
  const Mat chain = tag_adjacency(4, {{0, 1}, {1, 2}, {2, 3}});
  const Mat star = tag_adjacency(4, {{0, 1}, {0, 2}, {0, 3}});
  const Tensor f = make_tensor(feats, false);
  const auto a = tf.forward(f, make_tensor(chain, false));
  const auto b = tf.forward(f, make_tensor(star, false));
  double diff = 0;
  for (std::size_t i = 0; i < a.cls->value.v.size(); ++i) {
    diff += std::abs(a.cls->value.v[i] - b.cls->value.v[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(TagFormer, GradientsReachAllParams) {
  Rng rng(11);
  TagFormerConfig cfg;
  cfg.in_dim = 6;
  cfg.num_layers = 1;
  TagFormer tf(cfg, rng);
  Mat feats(3, 6);
  for (float& x : feats.v) x = 0.5f;
  const Mat adj = tag_adjacency(3, {{0, 1}});
  const auto out = tf.forward(make_tensor(feats, false), make_tensor(adj, false));
  Mat target(1, cfg.out_dim);
  Tensor loss = mse_loss(out.cls, target);
  backward(loss);
  int with_grad = 0;
  for (const Tensor& p : tf.params()) {
    double s = 0;
    for (float g : p->grad.v) s += std::abs(g);
    if (s > 0) ++with_grad;
  }
  EXPECT_GT(with_grad, static_cast<int>(tf.params().size()) * 2 / 3);
}

TEST(Gcn, NodeAndGraphShapes) {
  Rng rng(12);
  GcnConfig cfg;
  cfg.in_dim = 8;
  cfg.out_dim = 5;
  Gcn gcn(cfg, rng);
  Mat feats(6, 8);
  const Mat adj = normalized_adjacency(6, {{0, 1}, {2, 3}});
  const Tensor nodes =
      gcn.forward_nodes(make_tensor(feats, false), make_tensor(adj, false));
  EXPECT_EQ(nodes->value.rows, 6);
  EXPECT_EQ(nodes->value.cols, 5);
  const Tensor graph =
      gcn.forward_graph(make_tensor(feats, false), make_tensor(adj, false));
  EXPECT_EQ(graph->value.rows, 1);
  EXPECT_EQ(graph->value.cols, 5);
}

}  // namespace
}  // namespace nettag
