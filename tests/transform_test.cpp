// Tests for equivalence-preserving Boolean rewrites (Objective #1 machinery).
#include <gtest/gtest.h>

#include <set>

#include "expr/expr.hpp"
#include "expr/transform.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

ExprPtr sample_expr(Rng& rng, int depth) {
  if (depth == 0 || rng.chance(0.25)) {
    return Expr::var("x" + std::to_string(rng.uniform_int(0, 4)));
  }
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return Expr::lnot(sample_expr(rng, depth - 1));
    case 1:
      return Expr::land(sample_expr(rng, depth - 1), sample_expr(rng, depth - 1));
    case 2:
      return Expr::lor(sample_expr(rng, depth - 1), sample_expr(rng, depth - 1));
    default:
      return Expr::lxor(sample_expr(rng, depth - 1), sample_expr(rng, depth - 1));
  }
}

// Property: every individual rule preserves the Boolean function on random
// expressions. Parameterized over all rules.
class RewriteRuleProperty : public ::testing::TestWithParam<RewriteRule> {};

TEST_P(RewriteRuleProperty, PreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr e = sample_expr(rng, 4);
    ExprPtr rewritten = apply_rule(e, GetParam(), rng);
    ASSERT_TRUE(semantically_equal(e, rewritten))
        << rule_name(GetParam()) << ": " << to_string(e) << " -> "
        << to_string(rewritten);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RewriteRuleProperty, ::testing::ValuesIn(all_rewrite_rules()),
    [](const ::testing::TestParamInfo<RewriteRule>& info) {
      return rule_name(info.param);
    });

TEST(Transform, DeMorganExpandChangesText) {
  Rng rng(1);
  auto e = parse_expr("!(a&b)");
  auto r = apply_rule(e, RewriteRule::kDeMorganExpand, rng);
  EXPECT_EQ(to_string(r), "(!a|!b)");
}

TEST(Transform, DeMorganFold) {
  Rng rng(2);
  auto e = parse_expr("(!a&!b)");
  auto r = apply_rule(e, RewriteRule::kDeMorganFold, rng);
  EXPECT_EQ(to_string(r), "!(a|b)");
}

TEST(Transform, DoubleNegRemove) {
  Rng rng(3);
  auto e = parse_expr("!!a");
  auto r = apply_rule(e, RewriteRule::kDoubleNegRemove, rng);
  EXPECT_EQ(to_string(r), "a");
}

TEST(Transform, XorExpand) {
  Rng rng(4);
  auto e = parse_expr("(a^b)");
  auto r = apply_rule(e, RewriteRule::kXorExpand, rng);
  EXPECT_TRUE(semantically_equal(e, r));
  EXPECT_EQ(to_string(r), "((a&!b)|(!a&b))");
}

TEST(Transform, InapplicableRuleReturnsOriginal) {
  Rng rng(5);
  auto e = parse_expr("a");
  auto r = apply_rule(e, RewriteRule::kDeMorganExpand, rng);
  EXPECT_EQ(r.get(), e.get());
}

TEST(Transform, RandomEquivalentPreservesSemanticsManySteps) {
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    ExprPtr e = sample_expr(rng, 4);
    ExprPtr r = random_equivalent(e, rng, 8);
    ASSERT_TRUE(semantically_equal(e, r))
        << to_string(e) << " vs " << to_string(r);
  }
}

TEST(Transform, RandomEquivalentUsuallyChangesText) {
  Rng rng(7);
  int changed = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    ExprPtr e = sample_expr(rng, 4);
    ExprPtr r = random_equivalent(e, rng, 4);
    if (to_string(e) != to_string(r)) ++changed;
  }
  // Positive pairs must be textually distinct most of the time, otherwise
  // contrastive learning degenerates.
  EXPECT_GT(changed, trials * 3 / 4);
}

TEST(Transform, RandomNonequivalentActuallyDiffers) {
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    ExprPtr e = sample_expr(rng, 3);
    ExprPtr m = random_nonequivalent(e, rng);
    if (!m) continue;  // rare: constant-like expression
    EXPECT_FALSE(semantically_equal(e, m));
  }
}

TEST(Transform, RuleNamesUnique) {
  std::set<std::string> names;
  for (RewriteRule r : all_rewrite_rules()) names.insert(rule_name(r));
  EXPECT_EQ(names.size(), all_rewrite_rules().size());
}

}  // namespace
}  // namespace nettag
