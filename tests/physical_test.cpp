// Tests for placement, parasitics, STA, power, area, and the flow driver.
#include <gtest/gtest.h>

#include <cmath>

#include "physical/flow.hpp"
#include "rtlgen/generator.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

Netlist sample_design(std::uint64_t seed = 21) {
  Rng rng(seed);
  return generate_design(family_profile("opencores"), rng, "phys_t").netlist;
}

TEST(Placement, AssignsAllCells) {
  Rng rng(1);
  Netlist nl = sample_design();
  Placement pl = place(nl, rng, 2);
  ASSERT_EQ(pl.x.size(), nl.size());
  ASSERT_EQ(pl.y.size(), nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) {
    EXPECT_TRUE(std::isfinite(pl.x[i]));
    EXPECT_TRUE(std::isfinite(pl.y[i]));
  }
}

TEST(Placement, RefinementReducesWirelength) {
  Netlist nl = sample_design(33);
  Rng r0(9), r1(9);
  const Placement coarse = place(nl, r0, 0);
  const Placement fine = place(nl, r1, 8);
  EXPECT_LE(fine.total_hpwl, coarse.total_hpwl);
}

TEST(Placement, HpwlNonNegative) {
  Rng rng(2);
  Netlist nl = sample_design();
  Placement pl = place(nl, rng, 1);
  for (const Gate& g : nl.gates()) {
    EXPECT_GE(net_hpwl(nl, pl, g.id), 0.0);
  }
}

TEST(Parasitics, LoadsIncludeSinkPins) {
  Rng rng(3);
  Netlist nl("t");
  const GateId a = nl.add_port("a");
  const GateId i1 = nl.add_gate(CellType::kInv, "i1", {a});
  const GateId i2 = nl.add_gate(CellType::kInv, "i2", {a});
  (void)i1;
  (void)i2;
  Placement pl = place(nl, rng, 0);
  Parasitics para = extract_parasitics(nl, pl);
  // Port 'a' drives two INV pins.
  EXPECT_NEAR(para.nets[static_cast<std::size_t>(a)].pin_cap,
              2 * cell_info(CellType::kInv).input_cap, 1e-9);
  EXPECT_GE(para.nets[static_cast<std::size_t>(a)].wire_cap, 0.0);
}

TEST(Sta, ArrivalMonotoneAlongPaths) {
  Rng rng(4);
  Netlist nl = sample_design();
  Placement pl = place(nl, rng, 1);
  Parasitics para = extract_parasitics(nl, pl);
  TimingReport t = run_sta(nl, para, 1.0);
  for (const Gate& g : nl.gates()) {
    if (g.type == CellType::kDff || g.type == CellType::kPort ||
        g.type == CellType::kConst0 || g.type == CellType::kConst1) {
      continue;
    }
    for (GateId f : g.fanins) {
      EXPECT_GT(t.arrival[static_cast<std::size_t>(g.id)],
                t.arrival[static_cast<std::size_t>(f)]);
    }
  }
}

TEST(Sta, SlackDefinedOnlyAtEndpoints) {
  Rng rng(5);
  Netlist nl = sample_design();
  Placement pl = place(nl, rng, 1);
  Parasitics para = extract_parasitics(nl, pl);
  TimingReport t = run_sta(nl, para, 1.0);
  EXPECT_FALSE(t.endpoints.empty());
  for (GateId e : t.endpoints) {
    EXPECT_TRUE(std::isfinite(t.slack[static_cast<std::size_t>(e)]));
    const Gate& g = nl.gate(e);
    EXPECT_TRUE(g.type == CellType::kDff || g.is_primary_output);
  }
}

TEST(Sta, TighterClockLowersSlack) {
  Rng rng(6);
  Netlist nl = sample_design();
  Placement pl = place(nl, rng, 1);
  Parasitics para = extract_parasitics(nl, pl);
  TimingReport loose = run_sta(nl, para, 2.0);
  TimingReport tight = run_sta(nl, para, 0.5);
  for (GateId e : loose.endpoints) {
    EXPECT_NEAR(loose.slack[static_cast<std::size_t>(e)] -
                    tight.slack[static_cast<std::size_t>(e)],
                1.5, 1e-9);
  }
}

TEST(Power, ProbabilitiesAreProbabilities) {
  Rng rng(7);
  Netlist nl = sample_design();
  Placement pl = place(nl, rng, 1);
  Parasitics para = extract_parasitics(nl, pl);
  PowerReport p = run_power(nl, para);
  for (std::size_t i = 0; i < nl.size(); ++i) {
    EXPECT_GE(p.prob[i], 0.0);
    EXPECT_LE(p.prob[i], 1.0);
    EXPECT_GE(p.toggle[i], 0.0);
    EXPECT_LE(p.toggle[i], 1.0);
  }
  EXPECT_GT(p.total(), 0.0);
}

TEST(Power, KnownGateFormulas) {
  // AND of two independent p=0.5 inputs: p_out = 0.25; XOR: p_out = 0.5.
  Rng rng(8);
  Netlist nl("t");
  const GateId a = nl.add_port("a");
  const GateId b = nl.add_port("b");
  const GateId x = nl.add_gate(CellType::kAnd2, "and", {a, b});
  const GateId y = nl.add_gate(CellType::kXor2, "xor", {a, b});
  (void)x;
  (void)y;
  Placement pl = place(nl, rng, 0);
  Parasitics para = extract_parasitics(nl, pl);
  PowerReport p = run_power(nl, para, 0.2, 0.5);
  EXPECT_NEAR(p.prob[static_cast<std::size_t>(nl.find("and"))], 0.25, 1e-9);
  EXPECT_NEAR(p.prob[static_cast<std::size_t>(nl.find("xor"))], 0.5, 1e-9);
  // Exact pairwise toggle: XOR toggles iff exactly one input toggles
  // (2 * 0.2 * 0.8); AND enumerates to 0.18 at p=0.5, t=0.2.
  EXPECT_NEAR(p.toggle[static_cast<std::size_t>(nl.find("xor"))], 0.32, 1e-9);
  EXPECT_NEAR(p.toggle[static_cast<std::size_t>(nl.find("and"))], 0.18, 1e-9);
}

TEST(Power, HigherActivityMorePower) {
  Rng rng(9);
  Netlist nl = sample_design();
  Placement pl = place(nl, rng, 1);
  Parasitics para = extract_parasitics(nl, pl);
  const PowerReport lo = run_power(nl, para, 0.05);
  const PowerReport hi = run_power(nl, para, 0.5);
  EXPECT_GT(hi.dynamic_power, lo.dynamic_power);
  EXPECT_NEAR(hi.leakage_power, lo.leakage_power, 1e-9);
}

TEST(Area, SumsCells) {
  Netlist nl("t");
  nl.add_port("a");
  const GateId g1 = nl.add_gate(CellType::kInv, "i", {0});
  (void)g1;
  AreaReport a = run_area(nl, 0.7);
  EXPECT_NEAR(a.cell_area, cell_info(CellType::kInv).area, 1e-9);
  EXPECT_NEAR(a.total_area, a.cell_area / 0.7, 1e-9);
}

TEST(Flow, EndToEndProducesLabels) {
  Rng rng(10);
  Netlist nl = sample_design();
  PhysicalResult res = run_physical_flow(nl, rng, /*optimize=*/false);
  EXPECT_GT(res.area.total_area, 0.0);
  EXPECT_GT(res.power.total(), 0.0);
  EXPECT_FALSE(res.timing.endpoints.empty());
  EXPECT_GT(res.timing.clock_period, 0.0);
  EXPECT_GT(res.runtime_seconds, 0.0);
  // Auto period leaves 25% margin over the critical path: worst slack is
  // positive but below the margin.
  EXPECT_GT(res.timing.wns, 0.0);
  EXPECT_LT(res.timing.wns, res.timing.clock_period);
}

TEST(Flow, OptimizationChangesMetrics) {
  Rng gen(77), r1(11), r2(11);
  Netlist nl = generate_design(family_profile("chipyard"), gen, "flow_t").netlist;
  PhysicalResult base = run_physical_flow(nl, r1, false);
  PhysicalResult opt = run_physical_flow(nl, r2, true);
  // Optimization restructures the netlist: the cell mix must change, and
  // area must differ measurably.
  EXPECT_NE(base.implemented.type_counts(), opt.implemented.type_counts());
  EXPECT_GT(std::abs(base.area.total_area - opt.area.total_area) /
                base.area.total_area,
            0.01);
}

TEST(Flow, LayoutGraphShape) {
  Rng rng(12);
  Netlist nl = sample_design();
  PhysicalResult res = run_physical_flow(nl, rng, false);
  LayoutGraph lg = build_layout_graph(res.implemented, res.placement,
                                      res.parasitics, res.timing);
  EXPECT_EQ(lg.node_feats.size(), res.implemented.size());
  std::size_t edge_count = 0;
  for (const Gate& g : res.implemented.gates()) edge_count += g.fanouts.size();
  EXPECT_EQ(lg.edges.size(), edge_count);
}

}  // namespace
}  // namespace nettag
