// Unit tests for the netlist graph, cell library, simulation, k-hop
// expression extraction, and file I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "expr/expr.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/io.hpp"
#include "netlist/netlist.hpp"
#include "rtlgen/generator.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

// Small reference netlist: the paper's Fig. 3 flavour.
//   U1 = XOR2(R1, R2); U2 = INV(R2); U3 = NOR2(U1, U2)
Netlist paper_example() {
  Netlist nl("fig3");
  const GateId r1 = nl.add_port("R1");
  const GateId r2 = nl.add_port("R2");
  const GateId u1 = nl.add_gate(CellType::kXor2, "U1", {r1, r2});
  const GateId u2 = nl.add_gate(CellType::kInv, "U2", {r2});
  const GateId u3 = nl.add_gate(CellType::kNor2, "U3", {u1, u2});
  nl.mark_output(u3);
  return nl;
}

TEST(CellLibrary, ArityMatchesEnum) {
  EXPECT_EQ(cell_info(CellType::kInv).num_inputs, 1);
  EXPECT_EQ(cell_info(CellType::kNand3).num_inputs, 3);
  EXPECT_EQ(cell_info(CellType::kAoi22).num_inputs, 4);
  EXPECT_EQ(cell_info(CellType::kMux2).num_inputs, 3);
  EXPECT_EQ(cell_info(CellType::kDff).num_inputs, 1);
  EXPECT_EQ(cell_info(CellType::kPort).num_inputs, 0);
}

TEST(CellLibrary, NameRoundTrip) {
  for (const CellInfo& c : all_cells()) {
    EXPECT_EQ(cell_type_from_name(c.name), c.type);
  }
  EXPECT_EQ(cell_type_from_name("nand2"), CellType::kNand2);  // case-insensitive
  EXPECT_THROW(cell_type_from_name("FOO42"), std::invalid_argument);
}

TEST(CellLibrary, OnlyDffSequential) {
  for (const CellInfo& c : all_cells()) {
    EXPECT_EQ(c.sequential, c.type == CellType::kDff) << c.name;
  }
}

TEST(CellLibrary, GateClassBijection) {
  int count = 0;
  for (const CellInfo& c : all_cells()) {
    const int cls = gate_class_of(c.type);
    if (cls >= 0) {
      EXPECT_EQ(gate_class_to_type(cls), c.type);
      ++count;
    }
  }
  EXPECT_EQ(count, num_gate_classes());
  EXPECT_EQ(gate_class_of(CellType::kPort), -1);
  EXPECT_EQ(gate_class_of(CellType::kDff), -1);
}

// cell_eval must agree with cell_function on every input combination, for
// every cell: the simulator fast path and the symbolic path are the same
// function. Parameterized property test over the library.
class CellSemantics : public ::testing::TestWithParam<CellType> {};

TEST_P(CellSemantics, EvalMatchesFunction) {
  const CellType type = GetParam();
  const int arity = cell_info(type).num_inputs;
  std::vector<ExprPtr> vars;
  for (int i = 0; i < arity; ++i) vars.push_back(Expr::var("i" + std::to_string(i)));
  const ExprPtr fn = cell_function(type, vars);
  for (int mask = 0; mask < (1 << arity); ++mask) {
    std::vector<bool> bits(arity);
    Assignment asg;
    for (int j = 0; j < arity; ++j) {
      bits[static_cast<std::size_t>(j)] = (mask >> j) & 1;
      asg["i" + std::to_string(j)] = bits[static_cast<std::size_t>(j)];
    }
    EXPECT_EQ(cell_eval(type, bits), eval(fn, asg))
        << cell_info(type).name << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLogicCells, CellSemantics, ::testing::ValuesIn([] {
      std::vector<CellType> types;
      for (const CellInfo& c : all_cells()) {
        if (c.type != CellType::kPort) types.push_back(c.type);
      }
      return types;
    }()),
    [](const ::testing::TestParamInfo<CellType>& info) {
      return cell_info(info.param).name;
    });

TEST(Netlist, AddAndLookup) {
  Netlist nl = paper_example();
  EXPECT_EQ(nl.size(), 5u);
  EXPECT_EQ(nl.find("U3"), 4);
  EXPECT_EQ(nl.find("nope"), kNoGate);
  EXPECT_EQ(nl.gate(nl.find("U1")).type, CellType::kXor2);
}

TEST(Netlist, ArityEnforced) {
  Netlist nl;
  const GateId a = nl.add_port("a");
  EXPECT_THROW(nl.add_gate(CellType::kAnd2, "g", {a}), std::invalid_argument);
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.add_port("a");
  EXPECT_THROW(nl.add_port("a"), std::invalid_argument);
}

TEST(Netlist, FanoutsMaintained) {
  Netlist nl = paper_example();
  const GateId r2 = nl.find("R2");
  // R2 drives U1 and U2.
  EXPECT_EQ(nl.gate(r2).fanouts.size(), 2u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl = paper_example();
  const auto order = nl.topo_order();
  std::vector<int> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  for (const Gate& g : nl.gates()) {
    if (g.type == CellType::kDff) continue;
    for (GateId f : g.fanins) {
      EXPECT_LT(pos[static_cast<std::size_t>(f)], pos[static_cast<std::size_t>(g.id)]);
    }
  }
}

TEST(Netlist, SequentialLoopIsLegal) {
  // DFF feedback (a counter bit) must not be reported as a cycle.
  Netlist nl("loop");
  const GateId tmp = nl.add_port("tmp");
  const GateId q = nl.add_gate(CellType::kDff, "q", {tmp});
  const GateId inv = nl.add_gate(CellType::kInv, "nq", {q});
  nl.replace_fanin(q, tmp, inv);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, ReplaceFaninRewiresFanouts) {
  Netlist nl = paper_example();
  const GateId r1 = nl.find("R1");
  const GateId r2 = nl.find("R2");
  const GateId u1 = nl.find("U1");
  nl.replace_fanin(u1, r1, r2);
  EXPECT_TRUE(nl.gate(r1).fanouts.empty());
  EXPECT_EQ(nl.gate(u1).fanins[0], r2);
  nl.validate();
}

TEST(Netlist, StatsCountCorrectly) {
  Netlist nl = paper_example();
  const NetlistStats s = nl.stats();
  EXPECT_EQ(s.num_gates, 5u);
  EXPECT_EQ(s.num_ports, 2u);
  EXPECT_EQ(s.num_logic, 3u);
  EXPECT_EQ(s.num_registers, 0u);
  EXPECT_GT(s.total_area, 0.0);
}

TEST(Netlist, KhopExpressionPaperExample) {
  // Paper Fig. 3(b): U3's 2-hop expression is !((R1^R2)|!R2).
  Netlist nl = paper_example();
  const ExprPtr e = khop_expression(nl, nl.find("U3"), 2);
  EXPECT_EQ(to_string(e), "!((R1^R2)|!R2)");
}

TEST(Netlist, KhopZeroReturnsSelfVar) {
  Netlist nl = paper_example();
  const ExprPtr e = khop_expression(nl, nl.find("U3"), 0);
  EXPECT_EQ(to_string(e), "U3");
}

TEST(Netlist, KhopOneStopsAtImmediateFanin) {
  Netlist nl = paper_example();
  const ExprPtr e = khop_expression(nl, nl.find("U3"), 1);
  EXPECT_EQ(to_string(e), "!(U1|U2)");
}

TEST(Netlist, KhopStopsAtRegisters) {
  Netlist nl("seq");
  const GateId a = nl.add_port("a");
  const GateId d = nl.add_gate(CellType::kInv, "d", {a});
  const GateId q = nl.add_gate(CellType::kDff, "q", {d});
  const GateId out = nl.add_gate(CellType::kInv, "o", {q});
  EXPECT_EQ(to_string(khop_expression(nl, out, 5)), "!q");
}

TEST(Netlist, SimulateMatchesKhopExpression) {
  Netlist nl = paper_example();
  const ExprPtr e = khop_expression(nl, nl.find("U3"), 2);
  for (int mask = 0; mask < 4; ++mask) {
    std::vector<bool> sources(nl.size(), false);
    sources[static_cast<std::size_t>(nl.find("R1"))] = mask & 1;
    sources[static_cast<std::size_t>(nl.find("R2"))] = mask & 2;
    const auto values = simulate(nl, sources);
    Assignment asg{{"R1", static_cast<bool>(mask & 1)},
                   {"R2", static_cast<bool>(mask & 2)}};
    EXPECT_EQ(values[static_cast<std::size_t>(nl.find("U3"))], eval(e, asg));
  }
}

TEST(NetlistIo, RoundTrip) {
  Netlist nl = paper_example();
  nl.set_source("itc99");
  nl.gate(nl.find("U1")).rtl_block = "add";
  const std::string text = netlist_to_string(nl);
  const Netlist back = netlist_from_string(text);
  EXPECT_EQ(back.name(), "fig3");
  EXPECT_EQ(back.source(), "itc99");
  EXPECT_EQ(back.size(), nl.size());
  EXPECT_EQ(back.gate(back.find("U1")).rtl_block, "add");
  EXPECT_EQ(back.gate(back.find("U3")).type, CellType::kNor2);
  EXPECT_TRUE(back.gate(back.find("U3")).is_primary_output);
  // Semantics preserved: same 2-hop expression.
  EXPECT_EQ(to_string(khop_expression(back, back.find("U3"), 2)),
            "!((R1^R2)|!R2)");
}

TEST(NetlistIo, StateFlagRoundTrip) {
  Netlist nl("seq");
  const GateId a = nl.add_port("a");
  const GateId q = nl.add_gate(CellType::kDff, "q", {a});
  nl.gate(q).is_state_reg = true;
  const Netlist back = netlist_from_string(netlist_to_string(nl));
  EXPECT_TRUE(back.gate(back.find("q")).is_state_reg);
}

TEST(NetlistIo, SequentialFeedbackRoundTrip) {
  // Registers fed by later-defined logic (feedback) must survive the
  // write/read cycle — this is the regression for a real writer bug where
  // topological emission put DFFs before their drivers.
  Netlist nl("fb");
  const GateId tmp = nl.add_port("in");
  const GateId q = nl.add_gate(CellType::kDff, "q", {tmp});
  nl.gate(q).is_state_reg = true;
  const GateId inv = nl.add_gate(CellType::kInv, "ninv", {q});
  const GateId x = nl.add_gate(CellType::kXor2, "x", {inv, tmp});
  nl.replace_fanin(q, tmp, x);  // feedback: q.D = xor(!q, in)
  nl.mark_output(x);
  nl.validate();
  const Netlist back = netlist_from_string(netlist_to_string(nl));
  back.validate();
  EXPECT_EQ(back.size(), nl.size());
  EXPECT_TRUE(back.gate(back.find("q")).is_state_reg);
  EXPECT_EQ(back.gate(back.find("q")).fanins[0], back.find("x"));
  // Same next-state function.
  EXPECT_TRUE(semantically_equal(
      khop_expression(nl, nl.gate(nl.find("q")).fanins[0], 8),
      khop_expression(back, back.gate(back.find("q")).fanins[0], 8)));
}

TEST(NetlistIo, GeneratedDesignRoundTrip) {
  Rng rng(77);
  // Every family's designs must round-trip through the text format.
  for (const FamilyProfile& prof : benchmark_families()) {
    const Netlist nl = generate_design(prof, rng, prof.name + "_io").netlist;
    const Netlist back = netlist_from_string(netlist_to_string(nl));
    back.validate();
    EXPECT_EQ(back.size(), nl.size());
    EXPECT_EQ(back.registers().size(), nl.registers().size());
    EXPECT_EQ(back.outputs().size(), nl.outputs().size());
  }
}

TEST(NetlistIo, UndrivenRegisterRejected) {
  EXPECT_THROW(netlist_from_string("module m\nreg r\nendmodule\n"),
               std::runtime_error);
}

TEST(NetlistIo, MalformedInputs) {
  EXPECT_THROW(netlist_from_string("gate INV x y\n"), std::runtime_error);
  EXPECT_THROW(netlist_from_string("module m\n"), std::runtime_error);  // no end
  EXPECT_THROW(netlist_from_string("module m\ngate INV g nope\nendmodule\n"),
               std::runtime_error);
  EXPECT_THROW(netlist_from_string("module m\nport a\ngate FOO g a\nendmodule\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace nettag
