// Tests for the fine-tuning heads, GBDT, and the four downstream task
// runners (smoke-level on tiny corpora; the statistical claims live in the
// bench binaries).
#include <gtest/gtest.h>

#include <cmath>

#include "core/pretrain.hpp"
#include "tasks/aig_encoders.hpp"
#include "tasks/finetune.hpp"
#include "tasks/gbdt.hpp"
#include "tasks/task1.hpp"
#include "tasks/task2.hpp"
#include "tasks/task3.hpp"
#include "tasks/task4.hpp"

namespace nettag {
namespace {

TEST(ClassifierHead, LearnsLinearlySeparableData) {
  Rng rng(1);
  const int n = 200;
  Mat x(n, 4);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i % 3;
    for (int j = 0; j < 4; ++j) {
      x.at(i, j) = static_cast<float>(rng.normal(cls == j ? 2.0 : 0.0, 0.3));
    }
    y[static_cast<std::size_t>(i)] = cls;
  }
  FinetuneOptions fo;
  fo.steps = 400;
  ClassifierHead head(4, 3, fo, rng);
  head.fit(x, y, rng);
  const auto pred = head.predict(x);
  const auto rep = classification_report(y, pred);
  EXPECT_GT(rep.accuracy, 0.95);
}

TEST(ClassifierHead, WeightedSamplingHandlesImbalance) {
  Rng rng(2);
  // 95:5 imbalance; weighted head must still find the minority class.
  const int n = 200;
  Mat x(n, 2);
  std::vector<int> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i < 190 ? 0 : 1;
    x.at(i, 0) = static_cast<float>(rng.normal(cls * 3.0, 0.4));
    x.at(i, 1) = static_cast<float>(rng.normal(0, 0.4));
    y[static_cast<std::size_t>(i)] = cls;
  }
  FinetuneOptions fo;
  fo.steps = 400;
  fo.class_weighted = true;
  ClassifierHead head(2, 2, fo, rng);
  head.fit(x, y, rng);
  const auto rep = binary_report(y, head.predict(x));
  EXPECT_GT(rep.sensitivity, 0.9);
}

TEST(RegressorHead, FitsLinearFunction) {
  Rng rng(3);
  const int n = 300;
  Mat x(n, 3);
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 3; ++j) x.at(i, j) = static_cast<float>(rng.normal(0, 1));
    y[static_cast<std::size_t>(i)] =
        3.0 * x.at(i, 0) - 2.0 * x.at(i, 1) + 0.5 + rng.normal(0, 0.05);
  }
  FinetuneOptions fo;
  fo.steps = 600;
  RegressorHead head(3, fo, rng);
  head.fit(x, y, rng);
  const auto rep = regression_report(y, head.predict(x));
  EXPECT_GT(rep.pearson_r, 0.97);
}

TEST(RegressorHead, InputScaleInvariance) {
  // A feature on a wildly different scale must not break training (this was
  // a real bug: raw nanosecond clock values next to unit-scale embeddings).
  Rng rng(4);
  const int n = 200;
  Mat x(n, 2);
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.normal(0, 1));
    x.at(i, 1) = static_cast<float>(rng.normal(0, 1) * 1000.0 + 5000.0);
    y[static_cast<std::size_t>(i)] = 0.002 * x.at(i, 1) + x.at(i, 0);
  }
  FinetuneOptions fo;
  fo.steps = 600;
  RegressorHead head(2, fo, rng);
  head.fit(x, y, rng);
  EXPECT_GT(regression_report(y, head.predict(x)).pearson_r, 0.95);
}

TEST(Gbdt, FitsNonlinearFunction) {
  Rng rng(5);
  const int n = 400;
  Mat x(n, 2);
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.uniform(-2, 2));
    x.at(i, 1) = static_cast<float>(rng.uniform(-2, 2));
    y[static_cast<std::size_t>(i)] =
        (x.at(i, 0) > 0 ? 3.0 : -1.0) + 0.5 * x.at(i, 1);
  }
  GbdtRegressor gbdt;
  gbdt.fit(x, y, rng);
  EXPECT_GT(gbdt.num_trees(), 10);
  const auto rep = regression_report(y, gbdt.predict(x));
  EXPECT_GT(rep.pearson_r, 0.9);
}

TEST(Gbdt, EmptyAndConstantInputsSafe) {
  Rng rng(6);
  GbdtRegressor gbdt;
  gbdt.fit(Mat(), {}, rng);
  EXPECT_EQ(gbdt.num_trees(), 0);
  // Constant targets: prediction equals the constant.
  Mat x(20, 1);
  std::vector<double> y(20, 7.0);
  gbdt.fit(x, y, rng);
  const auto pred = gbdt.predict(x);
  for (double p : pred) EXPECT_NEAR(p, 7.0, 0.5);
}

TEST(Finetune, ColumnStatsFloorPreventsBlowup) {
  Mat x(3, 2);
  x.at(0, 0) = 1.f;
  x.at(1, 0) = 2.f;
  x.at(2, 0) = 3.f;
  // Column 1 is constant -> raw std ~0; the floor must keep it bounded.
  x.at(0, 1) = x.at(1, 1) = x.at(2, 1) = 5.f;
  std::vector<float> mean, std;
  fit_column_stats(x, &mean, &std);
  const Mat z = apply_column_stats(x, mean, std);
  for (float v : z.v) EXPECT_LT(std::abs(v), 100.f);
}

// --- task runner smoke tests (tiny corpus, reduced budgets) -----------------

struct TaskFixture : public ::testing::Test {
  void SetUp() override {
    Rng rng(31);
    CorpusOptions co;
    co.designs_per_family = 2;
    corpus = build_corpus(co, rng);
    model = std::make_unique<NetTag>(NetTagConfig{}, 7);
    PretrainOptions po;
    po.expr_steps = 20;
    po.tag_steps = 15;
    po.aux_steps = 5;
    po.max_expressions = 200;
    po.max_cones = 24;
    Rng prng(32);
    pretrain(*model, corpus, po, prng);
  }
  Corpus corpus;
  std::unique_ptr<NetTag> model;
};

TEST_F(TaskFixture, Task1ProducesValidReports) {
  Rng rng(33);
  Task1Options o;
  o.num_test_designs = 3;
  o.gnn_steps = 30;
  o.head.steps = 150;
  const Task1Result res = run_task1(*model, corpus, o, rng);
  EXPECT_FALSE(res.rows.empty());
  for (const Task1Row& row : res.rows) {
    EXPECT_GE(row.nettag.accuracy, 0.0);
    EXPECT_LE(row.nettag.accuracy, 1.0);
    EXPECT_GE(row.gnnre.accuracy, 0.0);
    EXPECT_LE(row.gnnre.accuracy, 1.0);
  }
}

TEST_F(TaskFixture, Task2ProducesValidReports) {
  Rng rng(34);
  Task2Options o;
  o.num_test_designs = 3;
  o.gnn_steps = 30;
  o.head.steps = 150;
  const Task2Result res = run_task2(*model, corpus, o, rng);
  for (const Task2Row& row : res.rows) {
    EXPECT_GE(row.nettag.balanced_accuracy, 0.0);
    EXPECT_LE(row.nettag.balanced_accuracy, 1.0);
  }
}

TEST_F(TaskFixture, Task3ProducesValidReports) {
  Rng rng(35);
  Task3Options o;
  o.num_test_designs = 3;
  o.gnn_steps = 30;
  o.head.steps = 150;
  const Task3Result res = run_task3(*model, corpus, o, rng);
  for (const Task3Row& row : res.rows) {
    EXPECT_GE(row.nettag.pearson_r, -1.0);
    EXPECT_LE(row.nettag.pearson_r, 1.0);
    EXPECT_GE(row.nettag.mape, 0.0);
    EXPECT_TRUE(std::isfinite(row.nettag.mape));
    EXPECT_TRUE(std::isfinite(row.gnn.mape));
  }
}

TEST_F(TaskFixture, Task4ProducesFinitePredictions) {
  Rng rng(36);
  Task4Options o;
  o.gnn_steps = 40;
  o.head.steps = 150;
  const Task4Result res = run_task4(*model, corpus, o, rng);
  for (const Task4Cell* cell : {&res.area_wo_opt, &res.area_w_opt,
                                &res.power_wo_opt, &res.power_w_opt}) {
    EXPECT_TRUE(std::isfinite(cell->tool.mape));
    EXPECT_TRUE(std::isfinite(cell->gnn.mape));
    EXPECT_TRUE(std::isfinite(cell->nettag.mape));
    EXPECT_GT(cell->nettag.num_samples, 0u);
  }
}

TEST_F(TaskFixture, AigComparisonRuns) {
  Rng rng(37);
  AigCompareOptions o;
  o.num_test_designs = 2;
  o.pretrain_steps = 15;
  o.sim_patterns = 16;
  o.head.steps = 120;
  const AigCompareResult res = run_aig_comparison(*model, corpus, o, rng);
  EXPECT_GE(res.nettag.accuracy, 0.0);
  EXPECT_LE(res.nettag.accuracy, 1.0);
  EXPECT_GE(res.fgnn.accuracy, 0.0);
  EXPECT_GE(res.deepgate.accuracy, 0.0);
  EXPECT_GE(res.expr_llm_only.accuracy, 0.0);
}

}  // namespace
}  // namespace nettag
