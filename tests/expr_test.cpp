// Unit tests for the Boolean expression engine (src/expr).
#include <gtest/gtest.h>

#include "expr/expr.hpp"

namespace nettag {
namespace {

TEST(Expr, ConstantsEvaluate) {
  EXPECT_FALSE(eval(Expr::constant(false), {}));
  EXPECT_TRUE(eval(Expr::constant(true), {}));
}

TEST(Expr, VarLookupDefaultsFalse) {
  auto a = Expr::var("a");
  EXPECT_FALSE(eval(a, {}));
  EXPECT_TRUE(eval(a, {{"a", true}}));
  EXPECT_FALSE(eval(a, {{"a", false}}));
}

TEST(Expr, NotAndOrXorSemantics) {
  auto a = Expr::var("a");
  auto b = Expr::var("b");
  auto land = Expr::land(a, b);
  auto lor = Expr::lor(a, b);
  auto lxor = Expr::lxor(a, b);
  auto lnot = Expr::lnot(a);
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      Assignment asg{{"a", va}, {"b", vb}};
      EXPECT_EQ(eval(land, asg), va && vb);
      EXPECT_EQ(eval(lor, asg), va || vb);
      EXPECT_EQ(eval(lxor, asg), va != vb);
      EXPECT_EQ(eval(lnot, asg), !va);
    }
  }
}

TEST(Expr, NaryOperators) {
  auto e = Expr::land({Expr::var("x"), Expr::var("y"), Expr::var("z")});
  EXPECT_TRUE(eval(e, {{"x", true}, {"y", true}, {"z", true}}));
  EXPECT_FALSE(eval(e, {{"x", true}, {"y", false}, {"z", true}}));
  auto x3 = Expr::lxor({Expr::var("x"), Expr::var("y"), Expr::var("z")});
  EXPECT_TRUE(eval(x3, {{"x", true}, {"y", true}, {"z", true}}));
  EXPECT_FALSE(eval(x3, {{"x", true}, {"y", true}, {"z", false}}));
}

TEST(Expr, SingleChildNaryUnwraps) {
  auto a = Expr::var("a");
  auto e = Expr::land(std::vector<ExprPtr>{a});
  EXPECT_EQ(e->kind(), ExprKind::kVar);
}

TEST(Expr, SupportIsSortedAndUnique) {
  auto e = Expr::lor(Expr::land(Expr::var("b"), Expr::var("a")),
                     Expr::lnot(Expr::var("b")));
  const auto s = support(e);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "a");
  EXPECT_EQ(s[1], "b");
}

TEST(Expr, ToStringMatchesPaperStyle) {
  // Paper example: U3 = !((R1^R2)|!R2)
  auto e = Expr::lnot(
      Expr::lor(Expr::lxor(Expr::var("R1"), Expr::var("R2")),
                Expr::lnot(Expr::var("R2"))));
  EXPECT_EQ(to_string(e), "!((R1^R2)|!R2)");
}

TEST(Expr, ToStringNary) {
  auto e = Expr::land({Expr::var("a"), Expr::var("b"), Expr::var("c")});
  EXPECT_EQ(to_string(e), "(a&b&c)");
}

TEST(Expr, SizeAndDepth) {
  auto e = Expr::lnot(Expr::land(Expr::var("a"), Expr::var("b")));
  EXPECT_EQ(e->size(), 4u);
  EXPECT_EQ(e->depth(), 3u);
}

TEST(Expr, TruthTableXor) {
  auto e = Expr::lxor(Expr::var("a"), Expr::var("b"));
  const auto tt = truth_table(e);
  ASSERT_EQ(tt.size(), 4u);
  // bit j of row index corresponds to sorted support var j ("a" then "b").
  EXPECT_FALSE(tt[0]);  // a=0 b=0
  EXPECT_TRUE(tt[1]);   // a=1 b=0
  EXPECT_TRUE(tt[2]);   // a=0 b=1
  EXPECT_FALSE(tt[3]);  // a=1 b=1
}

TEST(Expr, SemanticEqualityDeMorgan) {
  auto a = Expr::var("a");
  auto b = Expr::var("b");
  auto lhs = Expr::lnot(Expr::land(a, b));
  auto rhs = Expr::lor(Expr::lnot(a), Expr::lnot(b));
  EXPECT_TRUE(semantically_equal(lhs, rhs));
}

TEST(Expr, SemanticInequalityAndVsOr) {
  auto a = Expr::var("a");
  auto b = Expr::var("b");
  EXPECT_FALSE(semantically_equal(Expr::land(a, b), Expr::lor(a, b)));
}

TEST(Expr, SemanticEqualityDifferentSupportNames) {
  // x and y are different functions even though each is a single variable.
  EXPECT_FALSE(semantically_equal(Expr::var("x"), Expr::var("y")));
  EXPECT_TRUE(semantically_equal(Expr::var("x"), Expr::var("x")));
}

TEST(Expr, SemanticEqualityLargeSupportSampled) {
  // 16 variables: exceeds the exact truth-table limit, exercises sampling.
  std::vector<ExprPtr> vars;
  for (int i = 0; i < 16; ++i) vars.push_back(Expr::var("v" + std::to_string(i)));
  auto lhs = Expr::lnot(Expr::land(vars));
  std::vector<ExprPtr> negs;
  for (const auto& v : vars) negs.push_back(Expr::lnot(v));
  auto rhs = Expr::lor(negs);
  EXPECT_TRUE(semantically_equal(lhs, rhs));
  EXPECT_FALSE(semantically_equal(lhs, Expr::land(vars)));
}

TEST(ExprParser, RoundTrip) {
  const char* cases[] = {
      "a", "!a", "(a&b)", "(a|b|c)", "(a^b)", "!((R1^R2)|!R2)",
      "((a&b)|(c&d))", "!!a", "(a&(b|c))", "0", "1", "(x[3]&y[0])",
  };
  for (const char* text : cases) {
    auto e = parse_expr(text);
    EXPECT_EQ(to_string(e), text) << text;
  }
}

TEST(ExprParser, Precedence) {
  // '|' lowest, then '^', then '&', then '!'.
  auto e = parse_expr("a|b^c&!d");
  // Equivalent explicit form:
  auto expected = parse_expr("(a|(b^(c&!d)))");
  EXPECT_TRUE(semantically_equal(e, expected));
}

TEST(ExprParser, Whitespace) {
  auto e = parse_expr("  ( a & b ) | ! c ");
  EXPECT_TRUE(semantically_equal(e, parse_expr("(a&b)|!c")));
}

TEST(ExprParser, MalformedThrows) {
  EXPECT_THROW(parse_expr(""), std::invalid_argument);
  EXPECT_THROW(parse_expr("(a&b"), std::invalid_argument);
  EXPECT_THROW(parse_expr("a&&b"), std::invalid_argument);
  EXPECT_THROW(parse_expr("a b"), std::invalid_argument);
  EXPECT_THROW(parse_expr("&a"), std::invalid_argument);
}

TEST(Expr, SignatureStableAcrossCalls) {
  auto e = parse_expr("!((R1^R2)|!R2)");
  EXPECT_EQ(semantic_signature(e), semantic_signature(parse_expr("!((R1^R2)|!R2)")));
}

}  // namespace
}  // namespace nettag
