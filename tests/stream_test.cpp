// Streaming repository-scale corpus (docs/ARCHITECTURE.md §13): hierarchical
// design composition, durable out-of-core shards, crash/resume determinism,
// and mid-corpus training resume. The kill -9 scenarios are modeled by
// halting the builder after N shards (halt_after_shards follows the same
// commit path a real kill interrupts: every committed shard is already
// fsync'd and renamed, the in-flight one simply never appears).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/corpus_stream.hpp"
#include "core/pretrain.hpp"
#include "netlist/io.hpp"
#include "nn/train_state.hpp"
#include "rtlgen/hierarchy.hpp"

namespace fs = std::filesystem;

namespace nettag {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir.string();
}

// --- hierarchical generation -------------------------------------------------

TEST(Hierarchy, ComposedDesignDwarfsFlatOnes) {
  const FamilyProfile& profile = family_profile("vexriscv");
  // Flat baseline: mean gate count over a few seeds.
  std::size_t flat_total = 0;
  const int flat_runs = 4;
  for (int i = 0; i < flat_runs; ++i) {
    Rng rng(100 + i);
    flat_total += generate_design(profile, rng, "flat").netlist.size();
  }
  const double flat_mean =
      static_cast<double>(flat_total) / static_cast<double>(flat_runs);

  // Per-design variance is large (random stage kinds), so both hierarchical
  // measurements average a few seeds too.
  const HierarchyOptions defaults;  // the ~10x configuration
  HierarchyOptions big;             // the ~100x direction
  big.levels = 6;
  big.min_blocks_per_level = 4;
  big.max_blocks_per_level = 5;
  big.shared_blocks = 4;
  std::size_t hier_total = 0, big_total = 0;
  const int hier_runs = 3;
  for (int i = 0; i < hier_runs; ++i) {
    Rng r1(100 + i), r2(100 + i);
    hier_total +=
        generate_hierarchical_design(profile, defaults, r1, "hier").netlist.size();
    big_total +=
        generate_hierarchical_design(profile, big, r2, "big").netlist.size();
  }
  const double hier_mean =
      static_cast<double>(hier_total) / static_cast<double>(hier_runs);
  const double big_mean =
      static_cast<double>(big_total) / static_cast<double>(hier_runs);
  EXPECT_GE(hier_mean, 10.0 * flat_mean)
      << "hier_mean=" << hier_mean << " flat_mean=" << flat_mean;
  // Raising the knobs keeps scaling toward repository size.
  EXPECT_GE(big_mean, 2.0 * hier_mean)
      << "big_mean=" << big_mean << " hier_mean=" << hier_mean;
}

TEST(Hierarchy, DeterministicAndGroundTruthRich) {
  const FamilyProfile& profile = family_profile("opencores");
  HierarchyOptions opts;
  Rng a(42), b(42);
  const GeneratedDesign d1 =
      generate_hierarchical_design(profile, opts, a, "dup");
  const GeneratedDesign d2 =
      generate_hierarchical_design(profile, opts, b, "dup");
  EXPECT_EQ(netlist_to_string(d1.netlist), netlist_to_string(d2.netlist));
  EXPECT_EQ(d1.rtl_text, d2.rtl_text);
  EXPECT_EQ(d1.reg_rtl, d2.reg_rtl);

  // Pipeline cuts guarantee registers, and every register keeps its aligned
  // RTL cone text (the per-register ground truth flat designs have).
  std::size_t dffs = 0;
  for (const Gate& g : d1.netlist.gates()) {
    if (g.type == CellType::kDff) {
      ++dffs;
      EXPECT_TRUE(d1.reg_rtl.count(g.name)) << g.name;
    }
  }
  EXPECT_GT(dffs, 0u);
}

TEST(Hierarchy, LintClean) {
  Rng rng(7);
  const GeneratedDesign d = generate_hierarchical_design(
      family_profile("itc99"), HierarchyOptions{}, rng, "clean");
  const LintReport report = lint_netlist(d.netlist, LintOptions{});
  EXPECT_FALSE(report.has_errors()) << to_text(report);
}

// --- shared expression index (Table II / ExprLLM dataset) --------------------

TEST(Dataset, PrecomputedExpressionIndexMatchesDirectDerivation) {
  Rng rng(0xd5);
  CorpusOptions co;
  co.designs_per_family = 1;
  co.with_physical = false;
  const Corpus corpus = build_corpus(co, rng);
  const CorpusExpressions index = corpus_expressions(corpus, co.k_hop);

  ASSERT_EQ(index.size(), corpus.designs.size());
  for (std::size_t d = 0; d < index.size(); ++d) {
    ASSERT_EQ(index[d].size(), corpus.designs[d].cones.size());
  }

  // The training-set collector and the statistics table must see exactly the
  // same expressions whether they derive them or reuse the index.
  EXPECT_EQ(collect_expressions(corpus, co.k_hop),
            collect_expressions(corpus, index));
  EXPECT_EQ(collect_expressions(corpus, co.k_hop, 10),
            collect_expressions(corpus, index, 10));

  const std::vector<FamilyStats> direct = corpus_statistics(corpus, co.k_hop);
  const std::vector<FamilyStats> shared = corpus_statistics(corpus, index);
  ASSERT_EQ(direct.size(), shared.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].family, shared[i].family);
    EXPECT_EQ(direct[i].expr_count, shared[i].expr_count);
    EXPECT_EQ(direct[i].avg_expr_tokens, shared[i].avg_expr_tokens);
    EXPECT_EQ(direct[i].cone_count, shared[i].cone_count);
    EXPECT_EQ(direct[i].avg_cone_nodes, shared[i].avg_cone_nodes);
  }
}

// --- streaming corpus builder + reader ---------------------------------------

StreamOptions small_stream_options(bool with_physical = false) {
  StreamOptions so;
  so.designs_per_family = 1;  // 4 designs total (one per family)
  so.designs_per_shard = 2;   // -> 2 shards
  so.hierarchical = false;    // flat designs keep the test fast
  so.corpus.with_physical = with_physical;
  so.corpus.placement_passes = 1;
  return so;
}

TEST(Stream, BuildAndLoadRoundTrip) {
  const std::string dir = temp_dir("nettag_stream_roundtrip");
  std::vector<ShardStats> seen;
  const StreamProgress progress = build_corpus_stream(
      dir, small_stream_options(/*with_physical=*/true), 0xabc,
      [&](const ShardStats& s) { seen.push_back(s); });
  EXPECT_TRUE(progress.complete);
  EXPECT_EQ(progress.shards_total, 2u);
  EXPECT_EQ(progress.shards_written, 2u);
  EXPECT_EQ(progress.designs, 4u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_FALSE(seen[0].skipped);
  EXPECT_GT(seen[0].gates, 0u);
  EXPECT_GT(seen[0].expressions, 0u);

  const ShardedCorpus corpus(dir);
  EXPECT_EQ(corpus.num_shards(), 2u);
  EXPECT_TRUE(corpus.complete());
  EXPECT_EQ(corpus.seed(), 0xabcu);
  EXPECT_EQ(corpus.total_designs(), 4u);
  EXPECT_EQ(corpus.families().size(), 4u);

  std::size_t designs = 0;
  for (std::size_t s = 0; s < corpus.num_shards(); ++s) {
    const ShardedCorpus::Shard shard = corpus.load(s);
    EXPECT_EQ(shard.corpus.families, corpus.families());
    ASSERT_EQ(shard.exprs.size(), shard.corpus.designs.size());
    for (std::size_t d = 0; d < shard.corpus.designs.size(); ++d) {
      const DesignSample& ds = shard.corpus.designs[d];
      ++designs;
      EXPECT_GT(ds.gen.netlist.size(), 0u);
      EXPECT_FALSE(ds.gen.rtl_text.empty());
      EXPECT_FALSE(ds.cones.empty());
      // Physical labels survived the round trip.
      EXPECT_GT(ds.area_wo_opt, 0.0);
      EXPECT_GT(ds.power_wo_opt, 0.0);
      ASSERT_EQ(shard.exprs[d].size(), ds.cones.size());
      for (std::size_t c = 0; c < ds.cones.size(); ++c) {
        const ConeSample& cone = ds.cones[c];
        EXPECT_FALSE(cone.rtl_text.empty());
        if (cone.has_layout) EXPECT_FALSE(cone.layout.node_feats.empty());
        // The embedded expressions are the embed stage's derivation from the
        // pre-serialization cone. Netlist round-tripping canonicalizes gate
        // order, so compare as multisets: same expressions, every one
        // re-derivable from the stored cone.
        std::vector<std::string> embedded = shard.exprs[d][c];
        std::vector<std::string> derived =
            cone_expressions(cone.cone, corpus.k_hop());
        std::sort(embedded.begin(), embedded.end());
        std::sort(derived.begin(), derived.end());
        EXPECT_EQ(embedded, derived);
      }
    }
    // The shard-level lint gate held: the loaded corpus is clean too.
    const LintReport report = lint_corpus(shard.corpus, LintOptions{});
    EXPECT_FALSE(report.has_errors()) << to_text(report);
  }
  EXPECT_EQ(designs, 4u);
  fs::remove_all(dir);
}

TEST(Stream, InterruptedBuildResumesBitIdentically) {
  const std::string dir_a = temp_dir("nettag_stream_straight");
  const std::string dir_b = temp_dir("nettag_stream_resumed");
  const StreamOptions so = small_stream_options();

  const StreamProgress straight = build_corpus_stream(dir_a, so, 0xfeed);
  EXPECT_TRUE(straight.complete);

  // "Crash" after the first shard: the manifest lists exactly the committed
  // prefix and stays resumable.
  StreamOptions halted = so;
  halted.halt_after_shards = 1;
  const StreamProgress partial = build_corpus_stream(dir_b, halted, 0xfeed);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.shards_written, 1u);
  {
    const ShardedCorpus mid(dir_b);
    EXPECT_FALSE(mid.complete());
    EXPECT_EQ(mid.num_shards(), 1u);
  }

  // Resume: committed shards are skipped (fork consumption, no recompute),
  // the remainder regenerates, and every byte matches the straight run.
  std::vector<ShardStats> seen;
  const StreamProgress resumed = build_corpus_stream(
      dir_b, so, 0xfeed, [&](const ShardStats& s) { seen.push_back(s); });
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.shards_skipped, 1u);
  EXPECT_EQ(resumed.shards_written, 1u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].skipped);
  EXPECT_FALSE(seen[1].skipped);

  const ShardedCorpus a(dir_a), b(dir_b);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_EQ(read_file(a.shard_path(s)), read_file(b.shard_path(s)))
        << "shard " << s;
  }
  EXPECT_EQ(read_file(dir_a + "/corpus.manifest"),
            read_file(dir_b + "/corpus.manifest"));
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

TEST(Stream, TruncatedShardRejectedWithLineAndOffset) {
  const std::string dir = temp_dir("nettag_stream_truncated");
  build_corpus_stream(dir, small_stream_options(), 0x11);
  const ShardedCorpus corpus(dir);
  const std::string path = corpus.shard_path(0);
  const std::string original = read_file(path);

  auto expect_rejected = [&](const std::string& mutated,
                             const std::string& what) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    try {
      corpus.load(0);
      FAIL() << what << ": corrupt shard was accepted";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(path), std::string::npos) << what << ": " << msg;
      EXPECT_NE(msg.find("line "), std::string::npos) << what << ": " << msg;
      EXPECT_NE(msg.find("byte offset "), std::string::npos)
          << what << ": " << msg;
    }
  };

  // Torn write: the tail (including the checksum line) is gone.
  expect_rejected(original.substr(0, original.size() / 2), "truncated");
  // Bit rot: length intact, one byte flipped — the checksum catches it.
  std::string flipped = original;
  flipped[flipped.size() / 3] ^= 0x20;
  expect_rejected(flipped, "corrupted");

  // Restore and confirm the reader still accepts the intact shard.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << original;
  }
  EXPECT_NO_THROW(corpus.load(0));
  fs::remove_all(dir);
}

TEST(Stream, OptionMismatchRefusedInsteadOfMixingCorpora) {
  const std::string dir = temp_dir("nettag_stream_mismatch");
  build_corpus_stream(dir, small_stream_options(), 0x21);
  // Same directory, different seed: resuming would interleave two unrelated
  // corpora, so the builder must refuse.
  EXPECT_THROW(build_corpus_stream(dir, small_stream_options(), 0x22),
               std::runtime_error);
  StreamOptions other = small_stream_options();
  other.designs_per_shard = 3;
  EXPECT_THROW(build_corpus_stream(dir, other, 0x21), std::runtime_error);
  fs::remove_all(dir);
}

// --- streaming pre-training with mid-corpus resume ---------------------------

NetTagConfig tiny_config() {
  NetTagConfig cfg;
  cfg.expr_llm = TextEncoderConfig::tiny();
  cfg.tag_d_model = 32;
  cfg.out_dim = 24;
  return cfg;
}

PretrainOptions stream_pretrain_options() {
  PretrainOptions po;
  po.expr_steps = 4;  // 2 shards -> 2 expr + 2 tag steps per shard
  po.tag_steps = 4;
  po.aux_steps = 0;
  po.max_expressions = 60;
  po.max_cones = 8;
  po.objective_align = false;
  return po;
}

const std::string& shared_stream_dir() {
  // ctest runs each TEST in its own process, possibly in parallel, so the
  // corpus path must be per-process: a fixed path would let one process
  // remove_all the directory while another is mid-read.
  static const std::string dir = [] {
    const std::string d = temp_dir("nettag_stream_pretrain_corpus." +
                                   std::to_string(::getpid()));
    build_corpus_stream(d, small_stream_options(), 0x77);
    return d;
  }();
  return dir;
}

std::vector<float> model_params(const NetTag& model) {
  std::vector<float> out = flatten_param_values(model.expr_llm().params());
  const std::vector<float> tag =
      flatten_param_values(model.tagformer().params());
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

void remove_checkpoint(const std::string& prefix) {
  for (const char* suffix :
       {".ckpt", ".exprllm.bin", ".tagformer.bin", ".trainer.bin"}) {
    std::remove((prefix + suffix).c_str());
  }
}

struct RunResult {
  std::vector<float> params;
  PretrainReport report;
};

RunResult run_streaming(const std::string& prefix, long halt_after) {
  NetTag model(tiny_config(), 5);
  const ShardedCorpus corpus(shared_stream_dir());
  PretrainOptions po = stream_pretrain_options();
  po.checkpoint.prefix = prefix;
  po.checkpoint.halt_after_steps = halt_after;
  Rng rng(7);
  RunResult out;
  out.report = pretrain_streaming(model, corpus, po, rng);
  out.params = model_params(model);
  return out;
}

RunResult resume_streaming(const std::string& prefix, long halt_after = -1) {
  NetTag model(tiny_config(), 99);  // trained state must come from the disk
  const ShardedCorpus corpus(shared_stream_dir());
  PretrainOptions po = stream_pretrain_options();
  po.checkpoint.prefix = prefix;
  po.checkpoint.halt_after_steps = halt_after;
  Rng rng(7);
  RunResult out;
  out.report = resume_pretrain_streaming(model, corpus, po, rng);
  out.params = model_params(model);
  return out;
}

void expect_identical_params(const RunResult& resumed,
                             const RunResult& baseline) {
  ASSERT_EQ(resumed.params.size(), baseline.params.size());
  for (std::size_t i = 0; i < resumed.params.size(); ++i) {
    ASSERT_EQ(resumed.params[i], baseline.params[i]) << "param lane " << i;
  }
}

TEST(StreamPretrain, SplitsStepBudgetAcrossShards) {
  const RunResult full = run_streaming("", -1);
  EXPECT_FALSE(full.report.interrupted);
  // Both shards trained: the concatenated curves carry the full budget.
  EXPECT_EQ(full.report.expr_losses.size(), 4u);
  EXPECT_EQ(full.report.tag_losses.size(), 4u);
  EXPECT_GT(full.report.expr_dataset_size, 0u);
  EXPECT_GT(full.report.cones_used, 0u);
}

TEST(StreamPretrain, MidCorpusResumeBitIdentical) {
  const std::string prefix =
      (fs::temp_directory_path() / "nettag_stream_resume_mid").string();
  const RunResult baseline = run_streaming("", -1);

  // Shard 0 runs 2 expr + 2 tag steps; halting after 5 lands inside shard 1,
  // so the checkpoint must carry shard_index = 1 plus the intra-shard cursor.
  const RunResult halted = run_streaming(prefix, /*halt_after=*/5);
  EXPECT_TRUE(halted.report.interrupted);
  const TrainState st = load_train_state(train_state_path(prefix));
  EXPECT_EQ(st.shard_index, 1u);
  EXPECT_EQ(st.phase, "expr");

  const RunResult resumed = resume_streaming(prefix);
  EXPECT_FALSE(resumed.report.interrupted);
  expect_identical_params(resumed, baseline);
  // The resumed call reports the shards it touched: all of shard 1's curve.
  const std::vector<float> tail_expr(baseline.report.expr_losses.begin() + 2,
                                     baseline.report.expr_losses.end());
  const std::vector<float> tail_tag(baseline.report.tag_losses.begin() + 2,
                                    baseline.report.tag_losses.end());
  EXPECT_EQ(resumed.report.expr_losses, tail_expr);
  EXPECT_EQ(resumed.report.tag_losses, tail_tag);
  remove_checkpoint(prefix);
}

TEST(StreamPretrain, FirstShardInterruptionChainsToIdenticalEnd) {
  const std::string prefix =
      (fs::temp_directory_path() / "nettag_stream_resume_first").string();
  const RunResult baseline = run_streaming("", -1);

  // Stop inside shard 0's tag phase, resume, stop again inside shard 1, and
  // finish: two generations of mid-corpus checkpoints.
  const RunResult halted = run_streaming(prefix, /*halt_after=*/3);
  EXPECT_TRUE(halted.report.interrupted);
  EXPECT_EQ(load_train_state(train_state_path(prefix)).shard_index, 0u);

  const RunResult mid = resume_streaming(prefix, /*halt_after=*/3);
  EXPECT_TRUE(mid.report.interrupted);
  EXPECT_EQ(load_train_state(train_state_path(prefix)).shard_index, 1u);

  const RunResult resumed = resume_streaming(prefix);
  expect_identical_params(resumed, baseline);
  remove_checkpoint(prefix);
}

TEST(StreamPretrain, CompletedRunResumesAsNoOp) {
  const std::string prefix =
      (fs::temp_directory_path() / "nettag_stream_resume_done").string();
  const RunResult finished = run_streaming(prefix, -1);
  EXPECT_FALSE(finished.report.interrupted);
  const TrainState st = load_train_state(train_state_path(prefix));
  EXPECT_EQ(st.phase, "done");
  EXPECT_EQ(st.shard_index, 1u);  // last shard

  const RunResult again = resume_streaming(prefix);
  EXPECT_FALSE(again.report.interrupted);
  expect_identical_params(again, finished);
  remove_checkpoint(prefix);
}

TEST(StreamPretrain, IncompleteCorpusRejected) {
  const std::string dir = temp_dir("nettag_stream_incomplete");
  StreamOptions so = small_stream_options();
  so.halt_after_shards = 1;
  build_corpus_stream(dir, so, 0x31);
  NetTag model(tiny_config(), 5);
  const ShardedCorpus corpus(dir);
  PretrainOptions po = stream_pretrain_options();
  Rng rng(7);
  EXPECT_THROW(pretrain_streaming(model, corpus, po, rng), std::runtime_error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace nettag
