// Tests for the NetTAG-Serve subsystem (src/serve): JSON wire format,
// canonical structural hashing, the LRU primitives, and the full server —
// batching, caching, admission gate, error taxonomy, and observability.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <limits>

#include "core/nettag.hpp"
#include "netlist/io.hpp"
#include "nn/gemm.hpp"
#include "serve/cache.hpp"
#include "serve/canonical.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/lru.hpp"

namespace nettag {
namespace {

using serve::ErrorCode;
using serve::Json;
using serve::Op;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerConfig;

// --- util/lru ---------------------------------------------------------------

TEST(LruMap, EvictsLeastRecentlyUsed) {
  LruMap<int, int> lru(2);
  EXPECT_EQ(lru.put(1, 10), 0u);
  EXPECT_EQ(lru.put(2, 20), 0u);
  ASSERT_NE(lru.get(1), nullptr);  // promotes 1; 2 is now oldest
  EXPECT_EQ(lru.put(3, 30), 1u);
  EXPECT_EQ(lru.get(2), nullptr);
  ASSERT_NE(lru.get(1), nullptr);
  EXPECT_EQ(*lru.get(1), 10);
  ASSERT_NE(lru.get(3), nullptr);
}

TEST(LruMap, PutReplacesAndShrinkEvicts) {
  LruMap<std::string, int> lru(4);
  lru.put("a", 1);
  lru.put("b", 2);
  lru.put("a", 7);  // replace, no growth
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(*lru.get("a"), 7);
  lru.put("c", 3);
  lru.put("d", 4);
  EXPECT_EQ(lru.set_capacity(2), 2u);  // evicts the two oldest
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.capacity(), 2u);
}

// --- serve/json -------------------------------------------------------------

TEST(ServeJson, ParsesNestedDocument) {
  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(
      R"({"op":"embed","k":3,"flags":[true,null,-2.5],"msg":"a\"b\nc"})", &doc,
      &err))
      << err;
  EXPECT_EQ(doc.find("op")->as_string(), "embed");
  EXPECT_EQ(doc.find("k")->as_int(), 3);
  ASSERT_TRUE(doc.find("flags")->is_array());
  EXPECT_EQ(doc.find("flags")->items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("flags")->items()[2].as_number(), -2.5);
  EXPECT_EQ(doc.find("msg")->as_string(), "a\"b\nc");
}

TEST(ServeJson, RejectsMalformedInput) {
  Json doc;
  std::string err;
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "nul", "\"\\u12\""}) {
    EXPECT_FALSE(Json::parse(bad, &doc, &err)) << bad;
    EXPECT_FALSE(err.empty());
  }
}

TEST(ServeJson, DumpRoundTrips) {
  Json obj = Json::object();
  obj.set("n", 42);
  obj.set("x", 1.5);
  obj.set("s", "hi");
  Json arr = Json::array();
  arr.push_back(true);
  arr.push_back(Json());
  obj.set("a", std::move(arr));
  Json back;
  std::string err;
  ASSERT_TRUE(Json::parse(obj.dump(), &back, &err)) << err;
  EXPECT_EQ(back.find("n")->as_int(), 42);
  EXPECT_DOUBLE_EQ(back.find("x")->as_number(), 1.5);
  EXPECT_EQ(back.find("s")->as_string(), "hi");
  EXPECT_TRUE(back.find("a")->items()[0].as_bool());
  EXPECT_TRUE(back.find("a")->items()[1].is_null());
}

TEST(ServeJson, NumberFormatting) {
  EXPECT_EQ(serve::json_number(3.0), "3");
  EXPECT_EQ(serve::json_number(-17.0), "-17");
  EXPECT_EQ(serve::json_number(0.5), "0.5");
}

TEST(ServeJson, AsIntSaturatesInsteadOfUndefinedCast) {
  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(R"({"big":1e300,"small":-1e300,"k":3})", &doc, &err))
      << err;
  EXPECT_EQ(doc.find("big")->as_int(),
            std::numeric_limits<long long>::max());
  EXPECT_EQ(doc.find("small")->as_int(),
            std::numeric_limits<long long>::min());
  EXPECT_EQ(doc.find("k")->as_int(), 3);
  EXPECT_EQ(Json("nope").as_int(7), 7);  // wrong type → fallback
}

// --- serve/canonical --------------------------------------------------------

const char* kAndNetlist =
    "module m source synthetic\n"
    "port a\nport b\n"
    "gate AND2 g1 a b out\n"
    "endmodule\n";

// Same structure as kAndNetlist with every name changed.
const char* kAndRenamed =
    "module other source synthetic\n"
    "port x\nport y\n"
    "gate AND2 zz x y out\n"
    "endmodule\n";

const char* kOrNetlist =
    "module m source synthetic\n"
    "port a\nport b\n"
    "gate OR2 g1 a b out\n"
    "endmodule\n";

TEST(Canonical, HashIsNameInvariant) {
  const Netlist a = netlist_from_string(kAndNetlist);
  const Netlist b = netlist_from_string(kAndRenamed);
  EXPECT_EQ(serve::structural_hash(a), serve::structural_hash(b));
}

TEST(Canonical, HashSeparatesDifferentStructure) {
  const Netlist a = netlist_from_string(kAndNetlist);
  const Netlist b = netlist_from_string(kOrNetlist);
  EXPECT_NE(serve::structural_hash(a), serve::structural_hash(b));
}

TEST(Canonical, HashIsFaninOrderSensitive) {
  // MUX2 pins are (A, B, S): swapping distinguishable fanins (an inverter
  // vs a port — two bare ports would just be a renaming) changes which pin
  // carries which cone, and the hash must see it even though the gate
  // multiset is identical.
  const Netlist m1 = netlist_from_string(
      "module m source synthetic\nport p\nport q\nport s\n"
      "gate INV n1 p\ngate MUX2 g1 n1 q s out\nendmodule\n");
  const Netlist m2 = netlist_from_string(
      "module m source synthetic\nport p\nport q\nport s\n"
      "gate INV n1 p\ngate MUX2 g1 q n1 s out\nendmodule\n");
  EXPECT_NE(serve::structural_hash(m1), serve::structural_hash(m2));
}

// Two independent gates off the same ports; the two variants differ only in
// gate declaration order (isomorphic, reordered).
const char* kPairAB =
    "module m source synthetic\n"
    "port a\nport b\n"
    "gate AND2 g1 a b out\n"
    "gate OR2 g2 a b out\n"
    "endmodule\n";

const char* kPairBA =
    "module m source synthetic\n"
    "port a\nport b\n"
    "gate OR2 g2 a b out\n"
    "gate AND2 g1 a b out\n"
    "endmodule\n";

TEST(Canonical, OrderSensitiveFoldSeparatesReorderedDeclarations) {
  const Netlist ab = netlist_from_string(kPairAB);
  const Netlist ba = netlist_from_string(kPairBA);
  // Pooled results may be shared across reordering...
  EXPECT_EQ(serve::structural_hash(ab), serve::structural_hash(ba));
  // ...but per-node results are declaration-ordered, so the order-sensitive
  // fold must address them separately.
  EXPECT_NE(serve::structural_hash(ab, 3, true),
            serve::structural_hash(ba, 3, true));
  // Renaming alone never affects either fold.
  const Netlist a1 = netlist_from_string(kAndNetlist);
  const Netlist a2 = netlist_from_string(kAndRenamed);
  EXPECT_EQ(serve::structural_hash(a1, 3, true),
            serve::structural_hash(a2, 3, true));
}

TEST(Canonical, FingerprintIsExactPerOrderMode) {
  const Netlist ab = netlist_from_string(kPairAB);
  const Netlist ba = netlist_from_string(kPairBA);
  // Canonical (label-sorted) order makes reordered isomorphic netlists
  // fingerprint identically; declaration order keeps them apart.
  EXPECT_EQ(serve::canonical_fingerprint(ab, false),
            serve::canonical_fingerprint(ba, false));
  EXPECT_NE(serve::canonical_fingerprint(ab, true),
            serve::canonical_fingerprint(ba, true));
  // Renaming never enters the fingerprint; structure always does.
  EXPECT_EQ(serve::canonical_fingerprint(netlist_from_string(kAndNetlist), true),
            serve::canonical_fingerprint(netlist_from_string(kAndRenamed), true));
  EXPECT_NE(serve::canonical_fingerprint(netlist_from_string(kAndNetlist), false),
            serve::canonical_fingerprint(netlist_from_string(kOrNetlist), false));
}

TEST(Canonical, CacheKeyIncludesOpAndParams) {
  const Netlist a = netlist_from_string(kAndNetlist);
  EXPECT_NE(serve::cache_key(a, "embed_gates", 0, 120, "", true).key,
            serve::cache_key(a, "embed_cone", 0, 120, "", false).key);
  EXPECT_NE(serve::cache_key(a, "embed_gates", 0, 120, "", true).key,
            serve::cache_key(a, "embed_gates", 3, 120, "", true).key);
  EXPECT_NE(serve::cache_key(a, "predict", 0, 120, "area", false).key,
            serve::cache_key(a, "predict", 0, 120, "power", false).key);
}

// --- serve/cache ------------------------------------------------------------

TEST(ResultCache, KeyCollisionRejectedByFingerprint) {
  serve::ResultCache cache(4);
  cache.insert("k", "fp-a", "payload-a");
  std::string out;
  EXPECT_TRUE(cache.lookup("k", "fp-a", &out));
  EXPECT_EQ(out, "payload-a");
  // Same key, different exact structure: a WL hash collision must read as a
  // miss, never replay the other circuit's payload.
  EXPECT_FALSE(cache.lookup("k", "fp-b", &out));
  const serve::ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.collisions, 1u);
}

// --- serve/protocol ---------------------------------------------------------

TEST(Protocol, ParseRequestErrorTaxonomy) {
  EXPECT_EQ(serve::parse_request("garbage").parse_error, ErrorCode::kBadJson);
  EXPECT_EQ(serve::parse_request("[1,2]").parse_error, ErrorCode::kBadJson);
  EXPECT_EQ(serve::parse_request("{\"id\":\"x\"}").parse_error,
            ErrorCode::kBadRequest);  // missing op
  EXPECT_EQ(serve::parse_request("{\"op\":\"nope\"}").parse_error,
            ErrorCode::kBadRequest);
  EXPECT_EQ(serve::parse_request("{\"op\":\"embed_gates\"}").parse_error,
            ErrorCode::kBadRequest);  // missing netlist
  EXPECT_EQ(serve::parse_request(
                "{\"op\":\"embed_gates\",\"netlist\":\"m\",\"k_hop\":99}")
                .parse_error,
            ErrorCode::kBadRequest);
  const Request ok = serve::parse_request(
      "{\"id\":7,\"op\":\"ping\"}");
  EXPECT_EQ(ok.parse_error, ErrorCode::kNone);
  EXPECT_EQ(ok.op, Op::kPing);
  EXPECT_EQ(ok.id, "7");  // numeric ids echo textually
}

TEST(Protocol, MistypedFieldsAreRejectedNotDefaulted) {
  // A present-but-wrong-typed field must be bad_request, not a silent
  // default parameter (which would also poison the result cache).
  for (const char* bad : {
           R"({"op":"embed_gates","netlist":123})",
           R"({"op":"embed_gates","netlist":"m","k_hop":"3"})",
           R"({"op":"embed_gates","netlist":"m","k_hop":1.5})",
           R"({"op":"embed_gates","netlist":"m","k_hop":1e300})",
           R"({"op":"embed_circuit","netlist":"m","max_cone_gates":true})",
           R"({"op":"embed_circuit","netlist":"m","max_cone_gates":2.5})",
           R"({"op":"predict","netlist":"m","task":7})",
       }) {
    EXPECT_EQ(serve::parse_request(bad).parse_error, ErrorCode::kBadRequest)
        << bad;
  }
  const Request ok = serve::parse_request(
      R"({"op":"embed_gates","netlist":"m","k_hop":3,"max_cone_gates":64})");
  EXPECT_EQ(ok.parse_error, ErrorCode::kNone);
  EXPECT_EQ(ok.k_hop, 3);
  EXPECT_EQ(ok.max_cone_gates, 64u);
}

TEST(Protocol, MatJsonRoundTripIsBitExact) {
  Mat m(2, 3);
  m.v = {1.0f, -0.333333343f, 2.5e-7f, 3.14159274f, 0.0f, -1e9f};
  Json j;
  std::string err;
  ASSERT_TRUE(Json::parse(serve::mat_to_json(m), &j, &err)) << err;
  Mat back;
  ASSERT_TRUE(serve::mat_from_json(j, &back));
  ASSERT_EQ(back.rows, 2);
  ASSERT_EQ(back.cols, 3);
  for (std::size_t i = 0; i < m.v.size(); ++i) {
    EXPECT_EQ(m.v[i], back.v[i]) << "lane " << i;  // %.9g round-trips floats
  }
}

// --- model text cache (satellite: bounded LRU) ------------------------------

TEST(TextCache, BoundedWithCounters) {
  TextEmbeddingCache cache(2);
  std::vector<float> row{1.0f, 2.0f};
  std::vector<float> out;
  EXPECT_FALSE(cache.lookup("a", &out));
  cache.insert("a", row);
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_EQ(out, row);
  cache.insert("b", {3.0f});
  EXPECT_TRUE(cache.lookup("a", &out));  // promotes "a" over "b"
  cache.insert("c", {4.0f});             // evicts "b", the least recent
  EXPECT_FALSE(cache.lookup("b", &out));
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TextCache, ModelHonoursConfiguredBound) {
  NetTagConfig cfg;
  cfg.expr_llm = TextEncoderConfig::tiny();
  cfg.text_cache_entries = 3;
  const NetTag model(cfg, 11);
  // Distinct structures → distinct attribute texts → distinct cache keys.
  const char* texts[] = {
      kAndNetlist, kOrNetlist,
      "module m source synthetic\nport a\ngate INV g1 a out\nendmodule\n",
      "module m source synthetic\nport a\nport b\ngate XOR2 g1 a b out\n"
      "endmodule\n",
  };
  for (const char* t : texts) model.embed(netlist_from_string(t));
  EXPECT_LE(model.text_cache().size(), 3u);
  EXPECT_GT(model.text_cache().evictions(), 0u);
}

// --- server -----------------------------------------------------------------

NetTagConfig tiny_config() {
  NetTagConfig cfg;
  cfg.expr_llm = TextEncoderConfig::tiny();
  cfg.tag_d_model = 32;
  cfg.out_dim = 24;
  return cfg;
}

std::unique_ptr<Server> make_server(ServerConfig sc = {},
                                    std::uint64_t seed = 21) {
  return std::make_unique<Server>(
      sc, std::make_unique<NetTag>(tiny_config(), seed));
}

Request embed_request(const char* text, Op op = Op::kEmbedGates) {
  Request r;
  r.op = op;
  r.netlist_text = text;
  return r;
}

TEST(Server, EmbedMatchesOfflineModelBitwise) {
  auto server = make_server();
  const NetTag offline(tiny_config(), 21);  // same seed → identical weights

  const Response resp = server->submit(embed_request(kAndNetlist));
  ASSERT_TRUE(resp.ok()) << resp.error_message;
  Json result;
  std::string err;
  ASSERT_TRUE(Json::parse(resp.result_json, &result, &err)) << err;
  Mat nodes, cls;
  ASSERT_TRUE(serve::mat_from_json(*result.find("nodes"), &nodes));
  ASSERT_TRUE(serve::mat_from_json(*result.find("cls"), &cls));

  const NetTag::ConeEmbedding ref =
      offline.embed(netlist_from_string(kAndNetlist));
  ASSERT_EQ(nodes.v.size(), ref.nodes.v.size());
  for (std::size_t i = 0; i < ref.nodes.v.size(); ++i) {
    EXPECT_EQ(nodes.v[i], ref.nodes.v[i]) << "node lane " << i;
  }
  ASSERT_EQ(cls.v.size(), ref.cls.v.size());
  for (std::size_t i = 0; i < ref.cls.v.size(); ++i) {
    EXPECT_EQ(cls.v[i], ref.cls.v[i]) << "cls lane " << i;
  }
}

TEST(Server, CacheHitReplaysIdenticalBytesForIsomorphicInput) {
  auto server = make_server();
  const Response first = server->submit(embed_request(kAndNetlist));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cached);
  // Renamed isomorphic netlist: same canonical hash → byte-identical replay.
  const Response second = server->submit(embed_request(kAndRenamed));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.result_json, second.result_json);
  EXPECT_EQ(server->cache().stats().hits, 1u);
  EXPECT_EQ(server->cache().stats().misses, 1u);
}

TEST(Server, ReorderedIsomorphicNetlistRecomputesPerGateRows) {
  auto server = make_server();
  const NetTag offline(tiny_config(), 21);

  const Response first = server->submit(embed_request(kPairAB));
  ASSERT_TRUE(first.ok()) << first.error_message;
  EXPECT_FALSE(first.cached);

  // Same circuit with the two gates declared in the opposite order: a cached
  // replay would hand each gate the other's embedding row, so embed_gates
  // must miss and recompute against the submitted declaration order.
  const Response second = server->submit(embed_request(kPairBA));
  ASSERT_TRUE(second.ok()) << second.error_message;
  EXPECT_FALSE(second.cached);
  Json result;
  std::string err;
  ASSERT_TRUE(Json::parse(second.result_json, &result, &err)) << err;
  Mat nodes;
  ASSERT_TRUE(serve::mat_from_json(*result.find("nodes"), &nodes));
  const NetTag::ConeEmbedding ref =
      offline.embed(netlist_from_string(kPairBA));
  ASSERT_EQ(nodes.v.size(), ref.nodes.v.size());
  for (std::size_t i = 0; i < ref.nodes.v.size(); ++i) {
    EXPECT_EQ(nodes.v[i], ref.nodes.v[i]) << "node lane " << i;
  }

  // Pooled ops carry no per-gate rows, so they may still share across the
  // reordering (fingerprints agree via canonical label order).
  const Response c1 = server->submit(embed_request(kPairAB, Op::kEmbedCone));
  ASSERT_TRUE(c1.ok()) << c1.error_message;
  const Response c2 = server->submit(embed_request(kPairBA, Op::kEmbedCone));
  ASSERT_TRUE(c2.ok()) << c2.error_message;
  EXPECT_TRUE(c2.cached);
  EXPECT_EQ(c1.result_json, c2.result_json);
  EXPECT_EQ(server->cache().stats().collisions, 0u);
}

TEST(Server, ErrorTaxonomyNeverThrows) {
  ServerConfig sc;
  sc.max_gates = 3;
  sc.reject_warnings = true;
  auto server = make_server(sc);

  // bad_json / bad_request via the wire path.
  Json resp;
  std::string err;
  ASSERT_TRUE(Json::parse(server->handle_line("{{{"), &resp, &err)) << err;
  EXPECT_EQ(resp.find("error")->find("code")->as_string(), "bad_json");
  ASSERT_TRUE(
      Json::parse(server->handle_line("{\"op\":\"fly\"}"), &resp, &err));
  EXPECT_EQ(resp.find("error")->find("code")->as_string(), "bad_request");

  // bad_request on a *recognized* op with an invalid field: the request
  // must short-circuit before the netlist reader, cache, or model see it.
  ASSERT_TRUE(Json::parse(
      server->handle_line(
          R"({"op":"embed_gates","netlist":"m","k_hop":"3"})"),
      &resp, &err));
  EXPECT_EQ(resp.find("status")->as_string(), "error");
  EXPECT_EQ(resp.find("error")->find("code")->as_string(), "bad_request");
  EXPECT_EQ(server->cache().stats().misses, 0u);

  // parse_error: unknown cell type.
  const Response bad_cell = server->submit(embed_request(
      "module m source synthetic\nport a\ngate FOO g1 a out\nendmodule\n"));
  EXPECT_EQ(bad_cell.error, ErrorCode::kParseError);
  EXPECT_FALSE(bad_cell.error_message.empty());

  // too_large: 4 gates > max_gates=3.
  const Response big = server->submit(embed_request(
      "module m source synthetic\nport a\nport b\ngate AND2 g1 a b\n"
      "gate INV g2 g1 out\nendmodule\n"));
  EXPECT_EQ(big.error, ErrorCode::kTooLarge);

  // lint_rejected (strict mode): dead gate → NL004 floating-net warning.
  ServerConfig small;
  small.reject_warnings = true;
  auto strict = make_server(small);
  const Response dead = strict->submit(embed_request(
      "module m source synthetic\nport a\nport b\ngate AND2 used a b out\n"
      "gate OR2 dead a b\nendmodule\n"));
  EXPECT_EQ(dead.error, ErrorCode::kLintRejected);
  EXPECT_FALSE(dead.detail.empty());

  // unknown_task — and it must not occupy a cache entry.
  Request pr = embed_request(kAndNetlist, Op::kPredict);
  pr.task = "unregistered";
  EXPECT_EQ(strict->submit(std::move(pr)).error, ErrorCode::kUnknownTask);
  EXPECT_EQ(strict->cache().stats().misses, 0u);
}

TEST(Server, LenientModeAdmitsWarnings) {
  auto server = make_server();  // reject_warnings defaults to false
  const Response dead = server->submit(embed_request(
      "module m source synthetic\nport a\nport b\ngate AND2 used a b out\n"
      "gate OR2 dead a b\nendmodule\n"));
  EXPECT_TRUE(dead.ok()) << dead.error_message;
}

TEST(Server, BatcherGroupsConcurrentRequests) {
  auto server = make_server();
  server->batcher().pause();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    Request r;
    r.op = Op::kPing;
    r.id = std::to_string(i);
    futures.push_back(server->submit_async(std::move(r)));
  }
  server->batcher().resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  const auto snap = server->metrics().snapshot();
  ASSERT_FALSE(snap.batch_histogram.empty());
  // All six were queued before resume, so one batch of 6 must appear.
  bool found = false;
  for (const auto& [size, count] : snap.batch_histogram) {
    if (size == 6 && count >= 1) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(snap.requests_total, 6u);
  EXPECT_EQ(snap.requests_ok, 6u);
}

TEST(Server, PredictUsesRegisteredHead) {
  auto server = make_server();
  server->register_task("gate_count",
                        [](const NetTag&, const Netlist& nl) {
                          return std::vector<double>{
                              static_cast<double>(nl.size())};
                        });
  Request r = embed_request(kAndNetlist, Op::kPredict);
  r.task = "gate_count";
  const Response resp = server->submit(std::move(r));
  ASSERT_TRUE(resp.ok()) << resp.error_message;
  Json result;
  std::string err;
  ASSERT_TRUE(Json::parse(resp.result_json, &result, &err)) << err;
  EXPECT_EQ(result.find("task")->as_string(), "gate_count");
  ASSERT_EQ(result.find("scores")->items().size(), 1u);
  EXPECT_DOUBLE_EQ(result.find("scores")->items()[0].as_number(), 3.0);
}

TEST(Server, StatsExposeAllSections) {
  auto server = make_server();
  server->submit(embed_request(kAndNetlist));
  server->submit(embed_request(kAndRenamed));  // cache hit
  server->handle_line("{{{");                  // one error
  Request sr;
  sr.op = Op::kStats;
  const Response stats = server->submit(std::move(sr));
  ASSERT_TRUE(stats.ok());
  Json j;
  std::string err;
  ASSERT_TRUE(Json::parse(stats.result_json, &j, &err)) << err;
  for (const char* field :
       {"uptime_seconds", "requests_total", "requests_ok", "requests_error",
        "qps", "latency_ms", "batches", "batch_size_histogram",
        "stage_seconds", "result_cache", "text_cache"}) {
    EXPECT_NE(j.find(field), nullptr) << field;
  }
  for (const char* p : {"p50", "p90", "p99", "max"}) {
    EXPECT_NE(j.find("latency_ms")->find(p), nullptr) << p;
  }
  for (const char* s :
       {"parse", "lint", "tag_build", "text_encode", "tagformer"}) {
    EXPECT_NE(j.find("stage_seconds")->find(s), nullptr) << s;
  }
  EXPECT_GT(j.find("result_cache")->find("hit_rate")->as_number(), 0.0);
  EXPECT_NE(j.find("result_cache")->find("collisions"), nullptr);
  EXPECT_GE(j.find("requests_error")->as_int(), 1);
  EXPECT_GT(j.find("stage_seconds")->find("tagformer")->as_number(), 0.0);
}

TEST(Server, ShutdownSetsFlagAndStillAnswers) {
  auto server = make_server();
  EXPECT_FALSE(server->shutdown_requested());
  const std::string line = server->handle_line("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(server->shutdown_requested());
  Json j;
  std::string err;
  ASSERT_TRUE(Json::parse(line, &j, &err)) << err;
  EXPECT_EQ(j.find("status")->as_string(), "ok");
}

// --- hot reload --------------------------------------------------------------

Request reload_request(const std::string& prefix = "") {
  Request r;
  r.op = Op::kReload;
  r.model_prefix = prefix;
  return r;
}

/// Saves a servable checkpoint for a tiny model built from `seed`.
std::string save_tiny_checkpoint(const std::string& prefix,
                                 std::uint64_t seed) {
  const NetTag model(tiny_config(), seed);
  save_checkpoint(model, prefix);
  return prefix;
}

void remove_tiny_checkpoint(const std::string& prefix) {
  for (const char* suffix : {".ckpt", ".exprllm.bin", ".tagformer.bin"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(Server, ReloadSameWeightsKeepsCacheHits) {
  const std::string prefix = save_tiny_checkpoint("/tmp/nettag_reload_same", 21);
  ServerConfig sc;
  sc.model_prefix = prefix;
  Server server(sc, load_checkpoint(prefix));

  const Response first = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(first.ok()) << first.error_message;
  EXPECT_FALSE(first.cached);

  // Prefix-less reload falls back to the configured default, which holds the
  // same weights — every cache entry must stay live.
  const Response rl = server.submit(reload_request());
  ASSERT_TRUE(rl.ok()) << rl.error_message;
  Json j;
  std::string err;
  ASSERT_TRUE(Json::parse(rl.result_json, &j, &err)) << err;
  EXPECT_FALSE(j.find("params_changed")->as_bool());
  EXPECT_EQ(server.reloads(), 1u);

  const Response second = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.result_json, first.result_json);
  remove_tiny_checkpoint(prefix);
}

TEST(Server, ReloadNewWeightsNeverReplaysStaleEntries) {
  const std::string old_prefix =
      save_tiny_checkpoint("/tmp/nettag_reload_old", 21);
  const std::string new_prefix =
      save_tiny_checkpoint("/tmp/nettag_reload_new", 3737);  // different weights
  ServerConfig sc;
  sc.model_prefix = old_prefix;
  Server server(sc, load_checkpoint(old_prefix));

  const Response before = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(before.ok());

  const Response rl = server.submit(reload_request(new_prefix));
  ASSERT_TRUE(rl.ok()) << rl.error_message;
  Json j;
  std::string err;
  ASSERT_TRUE(Json::parse(rl.result_json, &j, &err)) << err;
  EXPECT_TRUE(j.find("params_changed")->as_bool());

  // Same netlist, new generation: must be recomputed (never the old bytes),
  // and then cached under the new weights.
  const Response after = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.cached);
  EXPECT_NE(after.result_json, before.result_json);
  const Response again = server.submit(embed_request(kAndNetlist));
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.result_json, after.result_json);

  remove_tiny_checkpoint(old_prefix);
  remove_tiny_checkpoint(new_prefix);
}

TEST(Server, FailedReloadKeepsServingOldModel) {
  const std::string prefix = save_tiny_checkpoint("/tmp/nettag_reload_keep", 21);
  ServerConfig sc;
  sc.model_prefix = prefix;
  Server server(sc, load_checkpoint(prefix));
  const Response before = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(before.ok());

  const Response rl =
      server.submit(reload_request("/tmp/definitely_missing_nettag_ckpt"));
  EXPECT_EQ(rl.error, ErrorCode::kReloadFailed);
  EXPECT_EQ(server.reloads(), 0u);

  // The old generation (and its cache entries) keep answering.
  const Response after = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.cached);
  EXPECT_EQ(after.result_json, before.result_json);
  remove_tiny_checkpoint(prefix);
}

TEST(Server, ReloadWithoutAnyPrefixRejected) {
  auto server = make_server();  // no config.model_prefix
  const Response rl = server->submit(reload_request());
  EXPECT_EQ(rl.error, ErrorCode::kBadRequest);
}

TEST(Server, StatsReportReloadFields) {
  auto server = make_server();
  const Response stats = server->submit([] {
    Request r;
    r.op = Op::kStats;
    return r;
  }());
  ASSERT_TRUE(stats.ok());
  Json j;
  std::string err;
  ASSERT_TRUE(Json::parse(stats.result_json, &j, &err)) << err;
  ASSERT_NE(j.find("reloads"), nullptr);
  EXPECT_EQ(j.find("reloads")->as_int(), 0);
  ASSERT_NE(j.find("weights_crc32"), nullptr);
  EXPECT_EQ(j.find("weights_crc32")->as_string().size(), 8u);
}

// --- int8 quantized serving --------------------------------------------------

/// Parses the "cls" matrix out of an embed_gates result payload.
Mat cls_of(const Response& resp) {
  Json j;
  std::string err;
  EXPECT_TRUE(Json::parse(resp.result_json, &j, &err)) << err;
  Mat cls;
  EXPECT_TRUE(serve::mat_from_json(*j.find("cls"), &cls));
  return cls;
}

TEST(Server, QuantizedEmbedDriftsWithinBudgetAndIsNotFp32) {
  ServerConfig qc;
  qc.quantize = true;
  auto quant = make_server(qc);
  auto fp32 = make_server();  // same seed → identical fp32 weights

  const Response qr = quant->submit(embed_request(kAndNetlist));
  ASSERT_TRUE(qr.ok()) << qr.error_message;
  const Response fr = fp32->submit(embed_request(kAndNetlist));
  ASSERT_TRUE(fr.ok()) << fr.error_message;

  const Mat qcls = cls_of(qr);
  const Mat fcls = cls_of(fr);
  ASSERT_EQ(qcls.v.size(), fcls.v.size());
  // The int8 path must actually run (identical bytes would mean the packed
  // branch never fired) yet stay inside the documented drift budget
  // (docs/PERFORMANCE.md §5): relative L2 distance under 5% for the tiny
  // config's CLS embedding.
  EXPECT_NE(qr.result_json, fr.result_json);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < fcls.v.size(); ++i) {
    const double d = static_cast<double>(qcls.v[i]) - fcls.v[i];
    num += d * d;
    den += static_cast<double>(fcls.v[i]) * fcls.v[i];
  }
  ASSERT_GT(den, 0.0);
  EXPECT_LT(std::sqrt(num / den), 0.05);
}

TEST(Server, StatsReportNumericBackendAndSimd) {
  auto fp32 = make_server();
  ServerConfig qc;
  qc.quantize = true;
  auto quant = make_server(qc);
  auto stats_of = [](Server& s) {
    Request r;
    r.op = Op::kStats;
    Json j;
    std::string err;
    EXPECT_TRUE(Json::parse(s.submit(std::move(r)).result_json, &j, &err))
        << err;
    return j;
  };
  const Json fs = stats_of(*fp32);
  ASSERT_NE(fs.find("backend"), nullptr);
  EXPECT_EQ(fs.find("backend")->as_string(), "fp32");
  ASSERT_NE(fs.find("simd"), nullptr);
  EXPECT_EQ(fs.find("simd")->as_string(), simd_backend_name());
  const Json qs = stats_of(*quant);
  EXPECT_EQ(qs.find("backend")->as_string(), "int8");
}

TEST(Server, QuantizedCacheIsConsistentPerBackend) {
  ServerConfig qc;
  qc.quantize = true;
  auto quant = make_server(qc);
  auto fp32 = make_server();

  // Each backend replays its own bytes on the isomorphic resubmission...
  const Response q1 = quant->submit(embed_request(kAndNetlist));
  const Response q2 = quant->submit(embed_request(kAndRenamed));
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_FALSE(q1.cached);
  EXPECT_TRUE(q2.cached);
  EXPECT_EQ(q1.result_json, q2.result_json);
  // ...and those bytes are backend-specific (an int8 entry would be a wrong
  // answer under fp32 and vice versa — the cache key keeps them apart).
  const Response f1 = fp32->submit(embed_request(kAndNetlist));
  ASSERT_TRUE(f1.ok());
  EXPECT_NE(f1.result_json, q1.result_json);
}

TEST(Server, ReloadRepacksUnderQuantizedConfig) {
  const std::string prefix =
      save_tiny_checkpoint("/tmp/nettag_reload_quant", 21);
  ServerConfig sc;
  sc.model_prefix = prefix;
  sc.quantize = true;
  Server server(sc, load_checkpoint(prefix));

  const Response before = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(before.ok()) << before.error_message;
  const Response rl = server.submit([] {
    Request r;
    r.op = Op::kReload;
    return r;
  }());
  ASSERT_TRUE(rl.ok()) << rl.error_message;

  // Same weights + same backend → the cache entry stays live...
  const Response replay = server.submit(embed_request(kAndNetlist));
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.cached);
  EXPECT_EQ(replay.result_json, before.result_json);

  // ...and fresh work on the reloaded generation still runs int8: an
  // uncached netlist must differ from the fp32 offline reference (if reload
  // forgot to repack, the swapped-in model would serve exact fp32 bytes).
  const Response fresh = server.submit(embed_request(kOrNetlist));
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.cached);
  const NetTag offline(tiny_config(), 21);
  const NetTag::ConeEmbedding ref =
      offline.embed(netlist_from_string(kOrNetlist));
  const Mat fresh_cls = cls_of(fresh);
  bool differs = false;
  for (std::size_t i = 0; i < ref.cls.v.size() && !differs; ++i) {
    differs = fresh_cls.v[i] != ref.cls.v[i];
  }
  EXPECT_TRUE(differs);
  remove_tiny_checkpoint(prefix);
}

TEST(ServeJson, NumberRoundTripsDoublesExactly) {
  // 0.1 needs 17 significant digits as a double; a float-widened value
  // (0.25f) stays on the short %.9g path; integral stays integral.
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300,
                         static_cast<double>(0.3f), 42.0}) {
    const std::string s = serve::json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(serve::json_number(0.5), "0.5");  // short spellings stay short
  EXPECT_EQ(serve::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(serve::json_number(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(ServeJson, AsNumberSaturatesNonFinite) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).as_number(),
            std::numeric_limits<double>::max());
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).as_number(),
            -std::numeric_limits<double>::max());
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).as_number(7.0),
            7.0);
  // Overflowing literals parse to Inf via strtod and must not escape as Inf.
  Json doc;
  std::string err;
  ASSERT_TRUE(Json::parse(R"({"x":1e999})", &doc, &err)) << err;
  EXPECT_EQ(doc.find("x")->as_number(), std::numeric_limits<double>::max());
}

TEST(Protocol, ReloadRequestParsing) {
  const Request ok = serve::parse_request(
      R"({"op":"reload","model_prefix":"/tmp/ck"})");
  EXPECT_EQ(ok.op, Op::kReload);
  EXPECT_EQ(ok.parse_error, ErrorCode::kNone);
  EXPECT_EQ(ok.model_prefix, "/tmp/ck");

  const Request bare = serve::parse_request(R"({"op":"reload"})");
  EXPECT_EQ(bare.parse_error, ErrorCode::kNone);  // default prefix may apply
  EXPECT_TRUE(bare.model_prefix.empty());

  const Request empty = serve::parse_request(
      R"({"op":"reload","model_prefix":""})");
  EXPECT_EQ(empty.parse_error, ErrorCode::kBadRequest);
  const Request mistyped = serve::parse_request(
      R"({"op":"reload","model_prefix":7})");
  EXPECT_EQ(mistyped.parse_error, ErrorCode::kBadRequest);
}

// --- multi-replica registry (protocol v2) ------------------------------------

Request model_request(const char* text, const std::string& model,
                      Op op = Op::kEmbedGates) {
  Request r = embed_request(text, op);
  r.model = model;
  return r;
}

TEST(Protocol, ModelFieldSelectsReplicaAndDefaultsWhenAbsent) {
  const Request named = serve::parse_request(
      R"({"op":"embed_gates","netlist":"m","model":"alt"})");
  EXPECT_EQ(named.parse_error, ErrorCode::kNone);
  EXPECT_EQ(named.model, "alt");

  // v1 line: no "model" field leaves the member empty (the server maps that
  // to the "default" replica — nothing is rewritten at parse time).
  const Request v1 = serve::parse_request(
      R"({"op":"embed_gates","netlist":"m"})");
  EXPECT_EQ(v1.parse_error, ErrorCode::kNone);
  EXPECT_TRUE(v1.model.empty());

  const Request empty = serve::parse_request(
      R"({"op":"embed_gates","netlist":"m","model":""})");
  EXPECT_EQ(empty.parse_error, ErrorCode::kBadRequest);
  const Request mistyped = serve::parse_request(
      R"({"op":"embed_gates","netlist":"m","model":7})");
  EXPECT_EQ(mistyped.parse_error, ErrorCode::kBadRequest);
  EXPECT_EQ(mistyped.parse_message, "'model' must be a non-empty string");
}

TEST(Protocol, UnknownOrMisplacedFieldsNameTheOffender) {
  // A field the grammar has never heard of names itself in the error (a typo
  // like "khop" must not silently run — and cache — a default-parameter run).
  const Request unknown = serve::parse_request(
      R"({"op":"embed_gates","netlist":"m","khop":3})");
  EXPECT_EQ(unknown.parse_error, ErrorCode::kBadRequest);
  EXPECT_EQ(unknown.parse_message, "unknown field 'khop' for op 'embed_gates'");

  // A known field on the wrong op is a distinct diagnostic.
  const Request misplaced =
      serve::parse_request(R"({"op":"ping","netlist":"m"})");
  EXPECT_EQ(misplaced.parse_error, ErrorCode::kBadRequest);
  EXPECT_EQ(misplaced.parse_message,
            "field 'netlist' is not accepted by op 'ping'");

  // quantize belongs to model_load alone.
  const Request q = serve::parse_request(
      R"({"op":"embed_gates","netlist":"m","quantize":true})");
  EXPECT_EQ(q.parse_error, ErrorCode::kBadRequest);
  EXPECT_EQ(q.parse_message,
            "field 'quantize' is not accepted by op 'embed_gates'");

  // "id" and "op" are exempt from the table on every op.
  const Request ok = serve::parse_request(R"({"id":"7","op":"ping"})");
  EXPECT_EQ(ok.parse_error, ErrorCode::kNone);
}

TEST(Protocol, AdminOpFieldRequirements) {
  const Request load = serve::parse_request(
      R"({"op":"model_load","model":"a","model_prefix":"/tmp/ck","quantize":true})");
  EXPECT_EQ(load.parse_error, ErrorCode::kNone);
  EXPECT_EQ(load.op, Op::kModelLoad);
  EXPECT_EQ(load.model, "a");
  EXPECT_EQ(load.model_prefix, "/tmp/ck");
  EXPECT_EQ(load.quantize, 1);

  // quantize is tri-state: absent stays -1 (inherit the server default).
  const Request inherit = serve::parse_request(
      R"({"op":"model_load","model":"a","model_prefix":"/tmp/ck"})");
  EXPECT_EQ(inherit.parse_error, ErrorCode::kNone);
  EXPECT_EQ(inherit.quantize, -1);
  const Request mistyped = serve::parse_request(
      R"({"op":"model_load","model":"a","model_prefix":"/tmp/ck","quantize":1})");
  EXPECT_EQ(mistyped.parse_error, ErrorCode::kBadRequest);
  EXPECT_EQ(mistyped.parse_message, "'quantize' must be a boolean");

  const Request no_prefix =
      serve::parse_request(R"({"op":"model_load","model":"a"})");
  EXPECT_EQ(no_prefix.parse_error, ErrorCode::kBadRequest);
  EXPECT_EQ(no_prefix.parse_message,
            "op 'model_load' requires field 'model_prefix'");
  const Request no_model =
      serve::parse_request(R"({"op":"model_unload"})");
  EXPECT_EQ(no_model.parse_error, ErrorCode::kBadRequest);
  EXPECT_EQ(no_model.parse_message, "op 'model_unload' requires field 'model'");

  const Request list = serve::parse_request(R"({"op":"model_list"})");
  EXPECT_EQ(list.parse_error, ErrorCode::kNone);
  EXPECT_EQ(list.op, Op::kModelList);
}

TEST(Server, TwoReplicasServeIndependently) {
  const std::string pa = save_tiny_checkpoint("/tmp/nettag_replica_a", 21);
  const std::string pb = save_tiny_checkpoint("/tmp/nettag_replica_b", 3737);
  Server server{ServerConfig{}};
  std::string err;
  ASSERT_TRUE(server.load_model("a", pa, -1, &err)) << err;
  ASSERT_TRUE(server.load_model("b", pb, -1, &err)) << err;
  EXPECT_EQ(server.registry().size(), 2u);
  EXPECT_NE(server.model_snapshot("a"), nullptr);
  EXPECT_EQ(server.model_snapshot("missing"), nullptr);

  // Distinct weights → distinct bytes, and neither run replays the other's
  // cache entry even though the netlist (and so the WL hash) is identical.
  const Response ra = server.submit(model_request(kAndNetlist, "a"));
  ASSERT_TRUE(ra.ok()) << ra.error_message;
  EXPECT_FALSE(ra.cached);
  const Response rb = server.submit(model_request(kAndNetlist, "b"));
  ASSERT_TRUE(rb.ok()) << rb.error_message;
  EXPECT_FALSE(rb.cached);
  EXPECT_NE(ra.result_json, rb.result_json);

  // Within one replica the isomorphic resubmission still replays.
  const Response ra2 = server.submit(model_request(kAndRenamed, "a"));
  ASSERT_TRUE(ra2.ok());
  EXPECT_TRUE(ra2.cached);
  EXPECT_EQ(ra2.result_json, ra.result_json);

  remove_tiny_checkpoint(pa);
  remove_tiny_checkpoint(pb);
}

TEST(Server, ReloadOneReplicaKeepsOtherReplicasCacheLive) {
  const std::string pa = save_tiny_checkpoint("/tmp/nettag_iso_a", 21);
  const std::string pa2 = save_tiny_checkpoint("/tmp/nettag_iso_a2", 5150);
  const std::string pb = save_tiny_checkpoint("/tmp/nettag_iso_b", 3737);
  Server server{ServerConfig{}};
  std::string err;
  ASSERT_TRUE(server.load_model("a", pa, -1, &err)) << err;
  ASSERT_TRUE(server.load_model("b", pb, -1, &err)) << err;

  const Response a1 = server.submit(model_request(kAndNetlist, "a"));
  const Response b1 = server.submit(model_request(kAndNetlist, "b"));
  ASSERT_TRUE(a1.ok() && b1.ok());

  // Hot-swap replica "a" to different weights over the wire.
  Request rl;
  rl.op = Op::kReload;
  rl.model = "a";
  rl.model_prefix = pa2;
  const Response rr = server.submit(std::move(rl));
  ASSERT_TRUE(rr.ok()) << rr.error_message;
  Json j;
  ASSERT_TRUE(Json::parse(rr.result_json, &j, &err)) << err;
  EXPECT_TRUE(j.find("params_changed")->as_bool());
  EXPECT_EQ(server.reloads(), 1u);

  // "b" was untouched: its cache entry replays byte-identically.
  const Response b2 = server.submit(model_request(kAndRenamed, "b"));
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE(b2.cached);
  EXPECT_EQ(b2.result_json, b1.result_json);

  // "a" serves the new generation: recomputed, different bytes.
  const Response a2 = server.submit(model_request(kAndNetlist, "a"));
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(a2.cached);
  EXPECT_NE(a2.result_json, a1.result_json);

  remove_tiny_checkpoint(pa);
  remove_tiny_checkpoint(pa2);
  remove_tiny_checkpoint(pb);
}

TEST(Server, UnknownModelIsStructuredError) {
  auto server = make_server();  // only the "default" replica
  const Response r = server->submit(model_request(kAndNetlist, "nope"));
  EXPECT_EQ(r.error, ErrorCode::kUnknownModel);
  EXPECT_NE(r.error_message.find("nope"), std::string::npos);

  Json j;
  std::string err;
  ASSERT_TRUE(Json::parse(
      server->handle_line(
          R"({"op":"embed_gates","netlist":"module m source synthetic\n)"
          R"(port a\ngate INV g1 a out\nendmodule\n","model":"nope"})"),
      &j, &err))
      << err;
  EXPECT_EQ(j.find("error")->find("code")->as_string(), "unknown_model");
  // Reload of an unknown name takes the same taxonomy path.
  Request rl;
  rl.op = Op::kReload;
  rl.model = "nope";
  rl.model_prefix = "/tmp/whatever";
  EXPECT_EQ(server->submit(std::move(rl)).error, ErrorCode::kUnknownModel);
}

TEST(Server, ModelAdminLifecycleOverTheWire) {
  const std::string p = save_tiny_checkpoint("/tmp/nettag_admin_ck", 21);
  Server server{ServerConfig{}};
  Json j;
  std::string err;

  // Empty registry: listable, and netlist traffic answers unknown_model.
  ASSERT_TRUE(Json::parse(server.handle_line(R"({"op":"model_list"})"), &j,
                          &err))
      << err;
  EXPECT_EQ(j.find("result")->find("models")->items().size(), 0u);
  EXPECT_EQ(server.submit(model_request(kAndNetlist, "a")).error,
            ErrorCode::kUnknownModel);

  ASSERT_TRUE(Json::parse(
      server.handle_line(R"({"op":"model_load","model":"a","model_prefix":")" +
                         p + R"("})"),
      &j, &err))
      << err;
  ASSERT_EQ(j.find("status")->as_string(), "ok") << j.dump();
  EXPECT_TRUE(j.find("result")->find("loaded")->as_bool());
  EXPECT_FALSE(j.find("result")->find("replaced")->as_bool());
  EXPECT_EQ(j.find("result")->find("backend")->as_string(), "fp32");
  EXPECT_TRUE(server.submit(model_request(kAndNetlist, "a")).ok());

  // Loading the same name again replaces in place.
  ASSERT_TRUE(Json::parse(
      server.handle_line(R"({"op":"model_load","model":"a","model_prefix":")" +
                         p + R"("})"),
      &j, &err))
      << err;
  EXPECT_TRUE(j.find("result")->find("replaced")->as_bool());

  ASSERT_TRUE(Json::parse(server.handle_line(R"({"op":"model_list"})"), &j,
                          &err))
      << err;
  const auto& rows = j.find("result")->find("models")->items();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].find("name")->as_string(), "a");
  EXPECT_EQ(rows[0].find("prefix")->as_string(), p);

  ASSERT_TRUE(Json::parse(
      server.handle_line(R"({"op":"model_unload","model":"a"})"), &j, &err))
      << err;
  EXPECT_TRUE(j.find("result")->find("unloaded")->as_bool());
  // Gone: unload again and serve both answer unknown_model.
  ASSERT_TRUE(Json::parse(
      server.handle_line(R"({"op":"model_unload","model":"a"})"), &j, &err))
      << err;
  EXPECT_EQ(j.find("error")->find("code")->as_string(), "unknown_model");
  EXPECT_EQ(server.submit(model_request(kAndNetlist, "a")).error,
            ErrorCode::kUnknownModel);
  // A bad checkpoint path fails closed without registering anything.
  ASSERT_TRUE(Json::parse(
      server.handle_line(
          R"({"op":"model_load","model":"x","model_prefix":"/tmp/no_such_ck"})"),
      &j, &err))
      << err;
  EXPECT_EQ(j.find("status")->as_string(), "error");
  EXPECT_EQ(server.registry().size(), 0u);
  remove_tiny_checkpoint(p);
}

TEST(Server, ModelUnloadDrainsQueuedRequestsWithUnknownModel) {
  const std::string p = save_tiny_checkpoint("/tmp/nettag_unload_ck", 21);
  Server server{ServerConfig{}};
  std::string err;
  ASSERT_TRUE(server.load_model("a", p, -1, &err)) << err;

  // Queue traffic for "a" behind a paused batcher, then unload the replica
  // out from under it. The queued requests must drain as unknown_model —
  // never crash into a dangling model pointer.
  server.batcher().pause();
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(server.submit_async(model_request(kAndNetlist, "a")));
  }
  ASSERT_TRUE(server.unload_model("a"));
  server.batcher().resume();
  for (auto& f : queued) {
    const Response r = f.get();
    EXPECT_EQ(r.error, ErrorCode::kUnknownModel);
    EXPECT_EQ(r.error_message, "no model loaded under 'a'");
  }
  // The server stays healthy afterwards.
  Request ping;
  ping.op = Op::kPing;
  EXPECT_TRUE(server.submit(std::move(ping)).ok());
  remove_tiny_checkpoint(p);
}

TEST(Server, PerReplicaQuantizeBackendsCoexist) {
  const std::string p = save_tiny_checkpoint("/tmp/nettag_quant_pair", 21);
  Server server{ServerConfig{}};  // process default: fp32
  std::string err;
  ASSERT_TRUE(server.load_model("f", p, 0, &err)) << err;
  ASSERT_TRUE(server.load_model("q", p, 1, &err)) << err;

  const Response fr = server.submit(model_request(kAndNetlist, "f"));
  const Response qr = server.submit(model_request(kAndNetlist, "q"));
  ASSERT_TRUE(fr.ok() && qr.ok());
  // Same checkpoint, different numeric backends → different bytes, and the
  // fp32 replica is bit-exact against the offline reference.
  EXPECT_NE(fr.result_json, qr.result_json);
  const NetTag offline(tiny_config(), 21);
  const NetTag::ConeEmbedding ref =
      offline.embed(netlist_from_string(kAndNetlist));
  const Mat fcls = cls_of(fr);
  ASSERT_EQ(fcls.v.size(), ref.cls.v.size());
  for (std::size_t i = 0; i < ref.cls.v.size(); ++i) {
    EXPECT_EQ(fcls.v[i], ref.cls.v[i]) << "cls lane " << i;
  }
  for (const serve::ReplicaInfo& info : server.registry().list()) {
    EXPECT_EQ(info.quantize, info.name == "q") << info.name;
  }
  remove_tiny_checkpoint(p);
}

TEST(Server, V1LinesReplayByteIdenticalOnMultiModelServer) {
  const std::string alt = save_tiny_checkpoint("/tmp/nettag_v1_alt", 3737);
  auto v1 = make_server();  // plain single-model server, seed 21
  auto v2 = make_server();  // same default replica...
  std::string err;
  ASSERT_TRUE(v2->load_model("alt", alt, -1, &err)) << err;  // ...plus one

  // A deterministic v1 session: ok paths, a cached replay, and every parse /
  // admin error shape. None of the lines mention "model".
  const std::vector<std::string> lines = {
      R"({"id":"1","op":"embed_gates","netlist":"module m source synthetic\n)"
      R"(port a\nport b\ngate AND2 g1 a b out\nendmodule\n"})",
      R"({"id":"2","op":"embed_cone","netlist":"module m source synthetic\n)"
      R"(port a\nport b\ngate AND2 g1 a b out\nendmodule\n","k_hop":2})",
      R"({"id":"3","op":"embed_gates","netlist":"module other source )"
      R"(synthetic\nport x\nport y\ngate AND2 zz x y out\nendmodule\n"})",
      R"({"id":"4","op":"ping"})",
      R"({"id":"5","op":"reload"})",  // no default prefix configured → error
      R"({"id":"6","op":"embed_gates"})",
      R"({"id":"7","op":"fly"})",
      "{{{",
  };
  for (const std::string& line : lines) {
    // Perturb the v2 server with traffic on the extra replica between every
    // v1 line: it must never leak into the default replica's responses.
    ASSERT_TRUE(v2->submit(model_request(kOrNetlist, "alt")).ok());
    EXPECT_EQ(v1->handle_line(line), v2->handle_line(line)) << line;
  }
}

TEST(Server, StatsReportPerReplicaSectionAndDefaults) {
  const std::string pa = save_tiny_checkpoint("/tmp/nettag_stats_a", 21);
  const std::string pb = save_tiny_checkpoint("/tmp/nettag_stats_b", 3737);
  Server server{ServerConfig{}};
  std::string err;
  ASSERT_TRUE(server.load_model("a", pa, -1, &err)) << err;
  ASSERT_TRUE(server.load_model("b", pb, -1, &err)) << err;
  ASSERT_TRUE(server.submit(model_request(kAndNetlist, "a")).ok());
  ASSERT_TRUE(server.submit(model_request(kAndRenamed, "a")).ok());  // hit

  Json j;
  ASSERT_TRUE(Json::parse(server.stats_json(), &j, &err)) << err;
  const Json* models = j.find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->items().size(), 2u);
  const Json& a = models->items()[0];  // registry rows sort by name
  EXPECT_EQ(a.find("name")->as_string(), "a");
  EXPECT_EQ(a.find("requests")->as_int(), 2);
  EXPECT_EQ(a.find("cache_hits")->as_int(), 1);
  EXPECT_EQ(a.find("cache_misses")->as_int(), 1);
  EXPECT_EQ(a.find("backend")->as_string(), "fp32");
  EXPECT_EQ(a.find("weights_crc32")->as_string().size(), 8u);
  const Json& b = models->items()[1];
  EXPECT_EQ(b.find("name")->as_string(), "b");
  EXPECT_EQ(b.find("requests")->as_int(), 0);

  // Effective request defaults are echoed (the deduped max_cone_gates bound
  // among them), and the v1 top-level weight fields only describe a replica
  // actually named "default" — absent here.
  const Json* defaults = j.find("defaults");
  ASSERT_NE(defaults, nullptr);
  EXPECT_EQ(defaults->find("max_cone_gates")->as_int(),
            static_cast<std::int64_t>(serve::kDefaultMaxConeGates));
  EXPECT_EQ(defaults->find("max_gates")->as_int(), 20000);
  EXPECT_EQ(defaults->find("quantize")->as_bool(), false);
  EXPECT_EQ(j.find("weights_crc32"), nullptr);
  EXPECT_EQ(j.find("backend"), nullptr);

  remove_tiny_checkpoint(pa);
  remove_tiny_checkpoint(pb);
}

}  // namespace
}  // namespace nettag
