// Tests for parameter (de)serialization.
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace nettag {
namespace {

TEST(Serialize, RoundTripPreservesValues) {
  Rng rng(1);
  Mlp a(4, 8, 2, rng);
  save_params("/tmp/nettag_ser_test.bin", a.params());
  Mlp b(4, 8, 2, rng);  // different init
  load_params("/tmp/nettag_ser_test.bin", b.params());
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t k = 0; k < pa.size(); ++k) {
    ASSERT_EQ(pa[k]->value.v.size(), pb[k]->value.v.size());
    for (std::size_t i = 0; i < pa[k]->value.v.size(); ++i) {
      EXPECT_FLOAT_EQ(pa[k]->value.v[i], pb[k]->value.v[i]);
    }
  }
  std::remove("/tmp/nettag_ser_test.bin");
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(2);
  Mlp a(4, 8, 2, rng);
  save_params("/tmp/nettag_ser_test2.bin", a.params());
  Mlp wrong(5, 8, 2, rng);
  EXPECT_THROW(load_params("/tmp/nettag_ser_test2.bin", wrong.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_test2.bin");
}

TEST(Serialize, CountMismatchRejected) {
  Rng rng(3);
  Linear a(4, 2, rng);
  save_params("/tmp/nettag_ser_test3.bin", a.params());
  Mlp more(4, 8, 2, rng);
  EXPECT_THROW(load_params("/tmp/nettag_ser_test3.bin", more.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_test3.bin");
}

TEST(Serialize, MissingFileRejected) {
  Rng rng(4);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_params("/tmp/definitely_missing_nettag.bin", a.params()),
               std::runtime_error);
}

TEST(Serialize, BadMagicRejected) {
  Rng rng(5);
  Linear a(2, 2, rng);
  FILE* f = std::fopen("/tmp/nettag_ser_bad.bin", "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[16] = "not a model";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  EXPECT_THROW(load_params("/tmp/nettag_ser_bad.bin", a.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_bad.bin");
}

}  // namespace
}  // namespace nettag
