// Tests for parameter (de)serialization, the crash-safety contract of the
// checkpoint files (docs/ARCHITECTURE.md §8), and TrainState records.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/nettag.hpp"
#include "core/pretrain.hpp"
#include "netlist/io.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "nn/train_state.hpp"
#include "util/atomic_io.hpp"

namespace nettag {
namespace {

TEST(Serialize, RoundTripPreservesValues) {
  Rng rng(1);
  Mlp a(4, 8, 2, rng);
  save_params("/tmp/nettag_ser_test.bin", a.params());
  Mlp b(4, 8, 2, rng);  // different init
  load_params("/tmp/nettag_ser_test.bin", b.params());
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t k = 0; k < pa.size(); ++k) {
    ASSERT_EQ(pa[k]->value.v.size(), pb[k]->value.v.size());
    for (std::size_t i = 0; i < pa[k]->value.v.size(); ++i) {
      EXPECT_FLOAT_EQ(pa[k]->value.v[i], pb[k]->value.v[i]);
    }
  }
  std::remove("/tmp/nettag_ser_test.bin");
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(2);
  Mlp a(4, 8, 2, rng);
  save_params("/tmp/nettag_ser_test2.bin", a.params());
  Mlp wrong(5, 8, 2, rng);
  EXPECT_THROW(load_params("/tmp/nettag_ser_test2.bin", wrong.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_test2.bin");
}

TEST(Serialize, CountMismatchRejected) {
  Rng rng(3);
  Linear a(4, 2, rng);
  save_params("/tmp/nettag_ser_test3.bin", a.params());
  Mlp more(4, 8, 2, rng);
  EXPECT_THROW(load_params("/tmp/nettag_ser_test3.bin", more.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_test3.bin");
}

TEST(Serialize, MissingFileRejected) {
  Rng rng(4);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_params("/tmp/definitely_missing_nettag.bin", a.params()),
               std::runtime_error);
}

TEST(Serialize, BadMagicRejected) {
  Rng rng(5);
  Linear a(2, 2, rng);
  FILE* f = std::fopen("/tmp/nettag_ser_bad.bin", "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[16] = "not a model";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  EXPECT_THROW(load_params("/tmp/nettag_ser_bad.bin", a.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_bad.bin");
}

TEST(Serialize, ManifestRoundTrip) {
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"format", "nettag-ckpt-v1"},
      {"out_dim", "48"},
      {"note", "spaces are fine in values"},
  };
  save_manifest("/tmp/nettag_manifest_test.ckpt", entries);
  const auto back = load_manifest("/tmp/nettag_manifest_test.ckpt");
  EXPECT_EQ(back, entries);
  std::remove("/tmp/nettag_manifest_test.ckpt");

  EXPECT_THROW(load_manifest("/tmp/definitely_missing_manifest.ckpt"),
               std::runtime_error);
  EXPECT_THROW(save_manifest("/tmp/nettag_manifest_bad.ckpt",
                             {{"bad key", "value"}}),
               std::runtime_error);
}

TEST(Serialize, CheckpointRoundTripBitIdentical) {
  // Pre-train briefly, checkpoint, reload into a *fresh* differently-seeded
  // model, and require bit-identical embeddings — the serving daemon's
  // correctness rests on this.
  Rng rng(0xc0ffee);
  CorpusOptions co;
  co.designs_per_family = 1;
  co.with_physical = false;
  const Corpus corpus = build_corpus(co, rng);

  NetTagConfig mc;
  mc.expr_llm = TextEncoderConfig::tiny();
  mc.tag_d_model = 32;
  mc.out_dim = 24;
  NetTag model(mc, 5);
  PretrainOptions po;
  po.expr_steps = 6;
  po.tag_steps = 5;
  po.aux_steps = 0;
  po.max_expressions = 120;
  po.max_cones = 12;
  po.objective_align = false;
  pretrain(model, corpus, po, rng);

  const std::string prefix = "/tmp/nettag_ckpt_rt";
  save_checkpoint(model, prefix);

  const NetTagConfig readback = read_checkpoint_config(prefix);
  EXPECT_EQ(readback.out_dim, mc.out_dim);
  EXPECT_EQ(readback.tag_d_model, mc.tag_d_model);
  EXPECT_EQ(readback.expr_llm.d_model, mc.expr_llm.d_model);

  const std::unique_ptr<NetTag> loaded = load_checkpoint(prefix, /*seed=*/99);
  const Netlist nl = netlist_from_string(
      "module m source synthetic\nport a\nport b\n"
      "gate AND2 g1 a b\ngate INV g2 g1 out\nendmodule\n");
  const NetTag::ConeEmbedding want = model.embed(nl);
  const NetTag::ConeEmbedding got = loaded->embed(nl);
  ASSERT_EQ(want.nodes.v.size(), got.nodes.v.size());
  for (std::size_t i = 0; i < want.nodes.v.size(); ++i) {
    ASSERT_EQ(want.nodes.v[i], got.nodes.v[i]) << "node lane " << i;
  }
  for (std::size_t i = 0; i < want.cls.v.size(); ++i) {
    ASSERT_EQ(want.cls.v[i], got.cls.v[i]) << "cls lane " << i;
  }

  const Netlist seq = netlist_from_string(
      "module s source synthetic\nport d\nreg q\n"
      "gate AND2 g1 d q out\ndrive q g1\nendmodule\n");
  const Mat want_c = model.embed_circuit(seq);
  const Mat got_c = loaded->embed_circuit(seq);
  ASSERT_EQ(want_c.v.size(), got_c.v.size());
  for (std::size_t i = 0; i < want_c.v.size(); ++i) {
    ASSERT_EQ(want_c.v[i], got_c.v[i]) << "circuit lane " << i;
  }

  for (const char* suffix : {".ckpt", ".exprllm.bin", ".tagformer.bin"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(Serialize, CheckpointBadFormatRejected) {
  save_manifest("/tmp/nettag_ckpt_badfmt.ckpt",
                {{"format", "nettag-ckpt-v999"}});
  EXPECT_THROW(read_checkpoint_config("/tmp/nettag_ckpt_badfmt"),
               std::runtime_error);
  std::remove("/tmp/nettag_ckpt_badfmt.ckpt");
}

// --- crash-safety contract ---------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<float> flat_values(const std::vector<Tensor>& params) {
  return flatten_param_values(params);
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

// A crash can leave a file truncated at *any* byte. Simulate every one of
// them: the load must throw and the target parameters must be untouched —
// never a partially applied checkpoint.
TEST(Serialize, ParamsTruncatedAtEveryByteRejected) {
  const std::string path = "/tmp/nettag_ser_crash.bin";
  Rng rng(11);
  Linear saved(3, 2, rng);
  save_params(path, saved.params());
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 8u);

  Linear target(3, 2, rng);  // different init than `saved`
  const std::vector<float> before = flat_values(target.params());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(path, bytes.substr(0, len));
    EXPECT_THROW(load_params(path, target.params()), std::runtime_error)
        << "truncated to " << len << " of " << bytes.size() << " bytes";
    EXPECT_EQ(flat_values(target.params()), before)
        << "partial state applied at truncation length " << len;
  }
  // The intact file still loads (the harness itself is not over-strict).
  write_file(path, bytes);
  load_params(path, target.params());
  EXPECT_EQ(flat_values(target.params()), flat_values(saved.params()));
  std::remove(path.c_str());
}

TEST(Serialize, ParamsTrailingGarbageRejected) {
  const std::string path = "/tmp/nettag_ser_trail.bin";
  Rng rng(12);
  Linear saved(3, 2, rng);
  save_params(path, saved.params());
  std::string bytes = read_file(path);
  bytes.push_back('\0');
  write_file(path, bytes);
  Linear target(3, 2, rng);
  const std::vector<float> before = flat_values(target.params());
  EXPECT_THROW(load_params(path, target.params()), std::runtime_error);
  EXPECT_EQ(flat_values(target.params()), before);
  std::remove(path.c_str());
}

TEST(Serialize, WritersLeaveNoTempFileBehind) {
  const std::string bin = "/tmp/nettag_ser_notmp.bin";
  const std::string man = "/tmp/nettag_ser_notmp.ckpt";
  Rng rng(13);
  Linear l(2, 2, rng);
  save_params(bin, l.params());
  save_manifest(man, {{"format", "x"}});
  EXPECT_TRUE(file_exists(bin));
  EXPECT_TRUE(file_exists(man));
  EXPECT_FALSE(file_exists(bin + ".tmp"));
  EXPECT_FALSE(file_exists(man + ".tmp"));
  std::remove(bin.c_str());
  std::remove(man.c_str());
}

TEST(Serialize, ConcurrentWritersGetDistinctTempPaths) {
  // Two live writers targeting the same final path must never share a temp
  // file (a fixed ".tmp" suffix would make them clobber each other mid-write
  // and commit a torn mix of both payloads).
  const std::string path = "/tmp/nettag_ser_concurrent.bin";
  AtomicFileWriter a(path, /*binary=*/true);
  AtomicFileWriter b(path, /*binary=*/true);
  EXPECT_NE(a.tmp_path(), b.tmp_path());
  EXPECT_NE(a.tmp_path(), path);
  EXPECT_NE(b.tmp_path(), path);

  const std::string payload_a(256, 'A');
  const std::string payload_b(512, 'B');
  // Interleave writes: with distinct temp files neither sees the other's
  // bytes. (With a shared temp file these writes would interleave into one
  // stream and the final file would be a mix.)
  a.stream().write(payload_a.data(), 128);
  b.stream().write(payload_b.data(), 512);
  a.stream().write(payload_a.data() + 128, 128);
  a.commit();
  EXPECT_EQ(read_file(path), payload_a);
  b.commit();  // last rename wins; both are complete files
  EXPECT_EQ(read_file(path), payload_b);
  EXPECT_FALSE(file_exists(a.tmp_path()));
  EXPECT_FALSE(file_exists(b.tmp_path()));
  std::remove(path.c_str());
}

TEST(Serialize, AbandonedWriterRemovesOnlyItsOwnTempFile) {
  const std::string path = "/tmp/nettag_ser_abandon.bin";
  std::string dead_tmp;
  {
    AtomicFileWriter keeper(path, /*binary=*/false);
    keeper.stream() << "kept";
    {
      AtomicFileWriter doomed(path, /*binary=*/false);
      doomed.stream() << "discarded";
      dead_tmp = doomed.tmp_path();
      // destroyed without commit: its temp file must vanish...
    }
    EXPECT_FALSE(file_exists(dead_tmp));
    // ...while the surviving writer's temp file is untouched.
    EXPECT_TRUE(file_exists(keeper.tmp_path()));
    keeper.commit();
  }
  EXPECT_EQ(read_file(path), "kept");
  std::remove(path.c_str());
}

TEST(Serialize, CommitSurvivesCrashSimulationAtEveryStage) {
  // The commit sequence is flush -> fsync(tmp) -> rename -> fsync(dir).
  // We cannot unplug the machine in a unit test, but we can assert the
  // observable contract: after commit() returns, the final path holds the
  // complete payload and no temp file remains; before commit(), the final
  // path is untouched however much has been streamed.
  const std::string path = "/tmp/nettag_ser_stages.bin";
  write_file(path, "previous");
  AtomicFileWriter w(path, /*binary=*/true);
  const std::string big(1 << 16, 'z');  // larger than the stream buffer
  w.stream().write(big.data(), static_cast<std::streamsize>(big.size()));
  EXPECT_EQ(read_file(path), "previous") << "final path mutated pre-commit";
  w.commit();
  EXPECT_EQ(read_file(path).size(), big.size());
  EXPECT_FALSE(file_exists(w.tmp_path()));
  std::remove(path.c_str());
}

TEST(Serialize, ManifestTruncationAndCorruptionRejected) {
  const std::string path = "/tmp/nettag_man_crash.ckpt";
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"format", "nettag-ckpt-v1"}, {"out_dim", "48"}};
  save_manifest(path, entries);
  const std::string bytes = read_file(path);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(path, bytes.substr(0, len));
    // The contract is all-or-nothing: a truncated manifest either throws or
    // (when the lost bytes carried no data — the final newline) parses to
    // exactly the full entry set. Never a partial/altered one.
    try {
      EXPECT_EQ(load_manifest(path), entries)
          << "partial parse at truncation length " << len;
    } catch (const std::runtime_error&) {
    }
  }
  // One flipped byte anywhere (body or checksum line) must be caught.
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] ^= 0x20;  // keeps printability; changes the byte
    if (corrupt[at] == '\n' || bytes[at] == '\n') continue;  // layout change
    write_file(path, corrupt);
    EXPECT_THROW(load_manifest(path), std::runtime_error)
        << "flip at byte " << at << " undetected";
  }
  write_file(path, bytes);
  EXPECT_EQ(load_manifest(path).size(), 2u);
  std::remove(path.c_str());
}

// --- TrainState records ------------------------------------------------------

TrainState sample_train_state() {
  TrainState st;
  st.phase = "tag";
  st.next_step = 17;
  st.rng_state = "123 456 789";
  st.adam_t = 17;
  Mat m(2, 3), v(2, 3);
  for (std::size_t i = 0; i < m.v.size(); ++i) {
    m.v[i] = 0.25f * static_cast<float>(i);
    v.v[i] = -1.5f + static_cast<float>(i);
  }
  st.adam_m = {m};
  st.adam_v = {v};
  st.extra_params = {1.0f, -2.0f, 3.5f};
  st.loss_history = {9.0f, 8.5f, 8.0f};
  st.prior_losses = {4.0f, 3.0f};
  st.dataset_size = 120;
  st.shard_index = 5;
  return st;
}

TEST(TrainState, RoundTripPreservesEveryField) {
  const std::string path = "/tmp/nettag_trainstate_rt.bin";
  const TrainState st = sample_train_state();
  save_train_state(path, st);
  const TrainState back = load_train_state(path);
  EXPECT_EQ(back.phase, st.phase);
  EXPECT_EQ(back.next_step, st.next_step);
  EXPECT_EQ(back.rng_state, st.rng_state);
  EXPECT_EQ(back.adam_t, st.adam_t);
  ASSERT_EQ(back.adam_m.size(), 1u);
  EXPECT_EQ(back.adam_m[0].v, st.adam_m[0].v);
  EXPECT_EQ(back.adam_m[0].rows, st.adam_m[0].rows);
  EXPECT_EQ(back.adam_v[0].v, st.adam_v[0].v);
  EXPECT_EQ(back.extra_params, st.extra_params);
  EXPECT_EQ(back.loss_history, st.loss_history);
  EXPECT_EQ(back.prior_losses, st.prior_losses);
  EXPECT_EQ(back.dataset_size, st.dataset_size);
  EXPECT_EQ(back.shard_index, st.shard_index);
  std::remove(path.c_str());
}

TEST(TrainState, TruncationAtEveryByteRejected) {
  const std::string path = "/tmp/nettag_trainstate_crash.bin";
  save_train_state(path, sample_train_state());
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(path, bytes.substr(0, len));
    EXPECT_THROW(load_train_state(path), std::runtime_error)
        << "truncated to " << len << " of " << bytes.size() << " bytes";
  }
  std::string padded = bytes;
  padded.push_back('x');
  write_file(path, padded);
  EXPECT_THROW(load_train_state(path), std::runtime_error);
  write_file(path, bytes);
  EXPECT_EQ(load_train_state(path).phase, "tag");
  std::remove(path.c_str());
}

// --- read_checkpoint_config validation ---------------------------------------

std::string config_error(const std::string& prefix) {
  try {
    read_checkpoint_config(prefix);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(Serialize, CheckpointConfigRejectsDuplicateKeysWithLines) {
  const std::string prefix = "/tmp/nettag_ckpt_dup";
  save_manifest(prefix + ".ckpt", {{"format", "nettag-ckpt-v1"},
                                   {"out_dim", "48"},
                                   {"out_dim", "64"}});
  const std::string err = config_error(prefix);
  EXPECT_NE(err.find("duplicate key 'out_dim'"), std::string::npos) << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;   // the duplicate
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;   // the original
  std::remove((prefix + ".ckpt").c_str());
}

TEST(Serialize, CheckpointConfigRejectsBadIntegers) {
  const std::string prefix = "/tmp/nettag_ckpt_badint";
  for (const char* bad : {"banana", "0", "-3", "12junk", "99999999999"}) {
    save_manifest(prefix + ".ckpt",
                  {{"format", "nettag-ckpt-v1"}, {"tag_layers", bad}});
    const std::string err = config_error(prefix);
    EXPECT_NE(err.find("tag_layers"), std::string::npos)
        << "value '" << bad << "': " << err;
    EXPECT_FALSE(err.empty()) << "value '" << bad << "' accepted";
  }
  std::remove((prefix + ".ckpt").c_str());
}

TEST(Serialize, CheckpointConfigRejectsIndivisibleHeads) {
  const std::string prefix = "/tmp/nettag_ckpt_heads";
  save_manifest(prefix + ".ckpt", {{"format", "nettag-ckpt-v1"},
                                   {"expr_d_model", "10"},
                                   {"expr_num_heads", "4"}});
  const std::string err = config_error(prefix);
  EXPECT_NE(err.find("must divide"), std::string::npos) << err;
  std::remove((prefix + ".ckpt").c_str());
}

TEST(Serialize, CheckpointConfigRejectsBadBoolean) {
  const std::string prefix = "/tmp/nettag_ckpt_bool";
  save_manifest(prefix + ".ckpt", {{"format", "nettag-ckpt-v1"},
                                   {"use_text_attributes", "yes"}});
  const std::string err = config_error(prefix);
  EXPECT_NE(err.find("use_text_attributes"), std::string::npos) << err;
  std::remove((prefix + ".ckpt").c_str());
}

}  // namespace
}  // namespace nettag
