// Tests for parameter (de)serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/nettag.hpp"
#include "core/pretrain.hpp"
#include "netlist/io.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace nettag {
namespace {

TEST(Serialize, RoundTripPreservesValues) {
  Rng rng(1);
  Mlp a(4, 8, 2, rng);
  save_params("/tmp/nettag_ser_test.bin", a.params());
  Mlp b(4, 8, 2, rng);  // different init
  load_params("/tmp/nettag_ser_test.bin", b.params());
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t k = 0; k < pa.size(); ++k) {
    ASSERT_EQ(pa[k]->value.v.size(), pb[k]->value.v.size());
    for (std::size_t i = 0; i < pa[k]->value.v.size(); ++i) {
      EXPECT_FLOAT_EQ(pa[k]->value.v[i], pb[k]->value.v[i]);
    }
  }
  std::remove("/tmp/nettag_ser_test.bin");
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(2);
  Mlp a(4, 8, 2, rng);
  save_params("/tmp/nettag_ser_test2.bin", a.params());
  Mlp wrong(5, 8, 2, rng);
  EXPECT_THROW(load_params("/tmp/nettag_ser_test2.bin", wrong.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_test2.bin");
}

TEST(Serialize, CountMismatchRejected) {
  Rng rng(3);
  Linear a(4, 2, rng);
  save_params("/tmp/nettag_ser_test3.bin", a.params());
  Mlp more(4, 8, 2, rng);
  EXPECT_THROW(load_params("/tmp/nettag_ser_test3.bin", more.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_test3.bin");
}

TEST(Serialize, MissingFileRejected) {
  Rng rng(4);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_params("/tmp/definitely_missing_nettag.bin", a.params()),
               std::runtime_error);
}

TEST(Serialize, BadMagicRejected) {
  Rng rng(5);
  Linear a(2, 2, rng);
  FILE* f = std::fopen("/tmp/nettag_ser_bad.bin", "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[16] = "not a model";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  EXPECT_THROW(load_params("/tmp/nettag_ser_bad.bin", a.params()),
               std::runtime_error);
  std::remove("/tmp/nettag_ser_bad.bin");
}

TEST(Serialize, ManifestRoundTrip) {
  const std::vector<std::pair<std::string, std::string>> entries = {
      {"format", "nettag-ckpt-v1"},
      {"out_dim", "48"},
      {"note", "spaces are fine in values"},
  };
  save_manifest("/tmp/nettag_manifest_test.ckpt", entries);
  const auto back = load_manifest("/tmp/nettag_manifest_test.ckpt");
  EXPECT_EQ(back, entries);
  std::remove("/tmp/nettag_manifest_test.ckpt");

  EXPECT_THROW(load_manifest("/tmp/definitely_missing_manifest.ckpt"),
               std::runtime_error);
  EXPECT_THROW(save_manifest("/tmp/nettag_manifest_bad.ckpt",
                             {{"bad key", "value"}}),
               std::runtime_error);
}

TEST(Serialize, CheckpointRoundTripBitIdentical) {
  // Pre-train briefly, checkpoint, reload into a *fresh* differently-seeded
  // model, and require bit-identical embeddings — the serving daemon's
  // correctness rests on this.
  Rng rng(0xc0ffee);
  CorpusOptions co;
  co.designs_per_family = 1;
  co.with_physical = false;
  const Corpus corpus = build_corpus(co, rng);

  NetTagConfig mc;
  mc.expr_llm = TextEncoderConfig::tiny();
  mc.tag_d_model = 32;
  mc.out_dim = 24;
  NetTag model(mc, 5);
  PretrainOptions po;
  po.expr_steps = 6;
  po.tag_steps = 5;
  po.aux_steps = 0;
  po.max_expressions = 120;
  po.max_cones = 12;
  po.objective_align = false;
  pretrain(model, corpus, po, rng);

  const std::string prefix = "/tmp/nettag_ckpt_rt";
  save_checkpoint(model, prefix);

  const NetTagConfig readback = read_checkpoint_config(prefix);
  EXPECT_EQ(readback.out_dim, mc.out_dim);
  EXPECT_EQ(readback.tag_d_model, mc.tag_d_model);
  EXPECT_EQ(readback.expr_llm.d_model, mc.expr_llm.d_model);

  const std::unique_ptr<NetTag> loaded = load_checkpoint(prefix, /*seed=*/99);
  const Netlist nl = netlist_from_string(
      "module m source synthetic\nport a\nport b\n"
      "gate AND2 g1 a b\ngate INV g2 g1 out\nendmodule\n");
  const NetTag::ConeEmbedding want = model.embed(nl);
  const NetTag::ConeEmbedding got = loaded->embed(nl);
  ASSERT_EQ(want.nodes.v.size(), got.nodes.v.size());
  for (std::size_t i = 0; i < want.nodes.v.size(); ++i) {
    ASSERT_EQ(want.nodes.v[i], got.nodes.v[i]) << "node lane " << i;
  }
  for (std::size_t i = 0; i < want.cls.v.size(); ++i) {
    ASSERT_EQ(want.cls.v[i], got.cls.v[i]) << "cls lane " << i;
  }

  const Netlist seq = netlist_from_string(
      "module s source synthetic\nport d\nreg q\n"
      "gate AND2 g1 d q out\ndrive q g1\nendmodule\n");
  const Mat want_c = model.embed_circuit(seq);
  const Mat got_c = loaded->embed_circuit(seq);
  ASSERT_EQ(want_c.v.size(), got_c.v.size());
  for (std::size_t i = 0; i < want_c.v.size(); ++i) {
    ASSERT_EQ(want_c.v[i], got_c.v[i]) << "circuit lane " << i;
  }

  for (const char* suffix : {".ckpt", ".exprllm.bin", ".tagformer.bin"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(Serialize, CheckpointBadFormatRejected) {
  save_manifest("/tmp/nettag_ckpt_badfmt.ckpt",
                {{"format", "nettag-ckpt-v999"}});
  EXPECT_THROW(read_checkpoint_config("/tmp/nettag_ckpt_badfmt"),
               std::runtime_error);
  std::remove("/tmp/nettag_ckpt_badfmt.ckpt");
}

}  // namespace
}  // namespace nettag
