// Tests for the attribute tokenizer/vocabulary and the evaluation metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "expr/tokenizer.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

TEST(Vocab, SpecialTokens) {
  Vocab v;
  EXPECT_EQ(v.id("[PAD]"), v.pad_id());
  EXPECT_EQ(v.id("[UNK]"), v.unk_id());
  EXPECT_EQ(v.id("[CLS]"), v.cls_id());
  EXPECT_NE(v.pad_id(), v.unk_id());
}

TEST(Vocab, KnownTokensDistinct) {
  Vocab v;
  EXPECT_NE(v.id("&"), v.id("|"));
  EXPECT_NE(v.id("nand2"), v.id("nor2"));
  EXPECT_NE(v.id("v0"), v.id("v1"));
  EXPECT_EQ(v.id("totally_unknown_token_xyz"), v.unk_id());
}

TEST(Vocab, IdTokenRoundTrip) {
  Vocab v;
  for (int i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.id(v.token(i)), i);
  }
}

TEST(Tokenizer, AnonymizesIdentifiersInOrder) {
  const auto toks = tokenize_text("U3 = !(R1|R2)");
  // U3 -> v0, R1 -> v1, R2 -> v2.
  const std::vector<std::string> expected = {"v0", "=", "!", "(",
                                             "v1", "|", "v2", ")"};
  EXPECT_EQ(toks, expected);
}

TEST(Tokenizer, SameStructureDifferentNamesSameTokens) {
  EXPECT_EQ(tokenize_text("U3 = !(R1|R2)"), tokenize_text("g9 = !(alpha|beta)"));
}

TEST(Tokenizer, RepeatedIdentifierSameSlot) {
  const auto toks = tokenize_text("(R2|!R2)");
  const std::vector<std::string> expected = {"(", "v0", "|", "!", "v0", ")"};
  EXPECT_EQ(toks, expected);
}

TEST(Tokenizer, KeywordsPassThrough) {
  const auto toks = tokenize_text("gate nand2 area b3");
  const std::vector<std::string> expected = {"gate", "nand2", "area", "b3"};
  EXPECT_EQ(toks, expected);
}

TEST(Tokenizer, NumbersCollapse) {
  const auto toks = tokenize_text("delay 123 cap 4.5 0 1");
  const std::vector<std::string> expected = {"delay", "<num>", "cap",
                                             "<num>", "0", "1"};
  EXPECT_EQ(toks, expected);
}

TEST(Tokenizer, EncodeTruncates) {
  Vocab v;
  const auto ids = encode_text(v, "(a&b&c&d&e)", 5);
  EXPECT_EQ(ids.size(), 5u);
}

TEST(Tokenizer, BucketTokenMonotonic) {
  const std::string lo = bucket_token(0.001, 0.001, 10.0);
  const std::string hi = bucket_token(9.9, 0.001, 10.0);
  EXPECT_EQ(lo, "b0");
  EXPECT_EQ(hi, "b" + std::to_string(Vocab::kNumBuckets - 1));
  // Clamping outside the range.
  EXPECT_EQ(bucket_token(1e-9, 0.001, 10.0), "b0");
  EXPECT_EQ(bucket_token(1e9, 0.001, 10.0),
            "b" + std::to_string(Vocab::kNumBuckets - 1));
}

TEST(Metrics, PerfectClassification) {
  const std::vector<int> y = {0, 1, 2, 1, 0};
  const auto rep = classification_report(y, y);
  EXPECT_DOUBLE_EQ(rep.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(rep.precision, 1.0);
  EXPECT_DOUBLE_EQ(rep.recall, 1.0);
  EXPECT_DOUBLE_EQ(rep.f1, 1.0);
  EXPECT_EQ(rep.num_classes, 3u);
}

TEST(Metrics, KnownConfusion) {
  // true: two 0s, two 1s; pred: one 0 right, one 0 as 1, both 1s right.
  const std::vector<int> yt = {0, 0, 1, 1};
  const std::vector<int> yp = {0, 1, 1, 1};
  const auto rep = classification_report(yt, yp);
  EXPECT_DOUBLE_EQ(rep.accuracy, 0.75);
  // class0: P=1, R=0.5; class1: P=2/3, R=1. macro P=5/6, R=0.75.
  EXPECT_NEAR(rep.precision, 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(rep.recall, 0.75, 1e-12);
}

TEST(Metrics, SpuriousPredictedClassPenalizesMacroAverages) {
  // Class 2 never occurs in the ground truth but is predicted once. It must
  // enter the macro average as a 0-precision / 0-recall term rather than
  // being dropped (historically the average ran over y_true classes only,
  // so a model hallucinating an extra class paid no macro penalty).
  const std::vector<int> yt = {0, 0, 1, 1};
  const std::vector<int> yp = {0, 2, 1, 1};
  const auto rep = classification_report(yt, yp);
  EXPECT_EQ(rep.num_classes, 3u);
  EXPECT_DOUBLE_EQ(rep.accuracy, 0.75);
  // class0: P=1, R=0.5; class1: P=1, R=1; class2: P=0 (1 FP), R=0 (no truth).
  EXPECT_NEAR(rep.precision, (1.0 + 1.0 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(rep.recall, (0.5 + 1.0 + 0.0) / 3.0, 1e-12);
  // class0: F1 = 2*1*0.5/1.5 = 2/3; class1: 1; class2: 0.
  EXPECT_NEAR(rep.f1, (2.0 / 3.0 + 1.0 + 0.0) / 3.0, 1e-12);
}

TEST(Metrics, UnionMatchesTrueClassesWhenNoSpuriousPredictions) {
  // When predictions stay inside the true label set, the union fix is a
  // no-op: same report as the historical y_true-classes-only average.
  const std::vector<int> yt = {3, 3, 5, 5, 5};
  const std::vector<int> yp = {3, 5, 5, 5, 3};
  const auto rep = classification_report(yt, yp);
  EXPECT_EQ(rep.num_classes, 2u);
  // class3: P=0.5, R=0.5; class5: P=2/3, R=2/3.
  EXPECT_NEAR(rep.precision, (0.5 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_NEAR(rep.recall, (0.5 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Metrics, EmptyInputSafe) {
  const auto rep = classification_report({}, {});
  EXPECT_EQ(rep.num_samples, 0u);
  EXPECT_DOUBLE_EQ(rep.accuracy, 0.0);
}

TEST(Metrics, BinaryReport) {
  // positives: 3 (2 found), negatives: 2 (1 correct).
  const std::vector<int> yt = {1, 1, 1, 0, 0};
  const std::vector<int> yp = {1, 1, 0, 0, 1};
  const auto rep = binary_report(yt, yp);
  EXPECT_NEAR(rep.sensitivity, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.specificity, 0.5, 1e-12);
  EXPECT_NEAR(rep.balanced_accuracy, (2.0 / 3.0 + 0.5) / 2.0, 1e-12);
}

TEST(Metrics, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Metrics, PearsonZeroVariance) {
  const std::vector<double> a = {1, 1, 1};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Metrics, RegressionReportKnownValues) {
  const std::vector<double> yt = {100, 200};
  const std::vector<double> yp = {110, 180};
  const auto rep = regression_report(yt, yp);
  EXPECT_NEAR(rep.mape, 10.0, 1e-9);  // (10% + 10%) / 2
  EXPECT_NEAR(rep.mae, 15.0, 1e-9);
  EXPECT_NEAR(rep.rmse, std::sqrt((100.0 + 400.0) / 2.0), 1e-9);
}

TEST(Metrics, MapeSkipsNearZeroTargets) {
  const std::vector<double> yt = {0.0, 100.0};
  const std::vector<double> yp = {5.0, 110.0};
  const auto rep = regression_report(yt, yp);
  EXPECT_NEAR(rep.mape, 10.0, 1e-9);  // only the 100 target counts
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(3);
  const auto idx = rng.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClamped) {
  Rng rng(3);
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace nettag
