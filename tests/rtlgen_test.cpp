// Tests for the synthesizer, design generator, and optimization passes.
#include <gtest/gtest.h>

#include "netlist/io.hpp"
#include "rtlgen/generator.hpp"
#include "rtlgen/optimize.hpp"
#include "rtlgen/synthesizer.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

// Drives all PORT bits from an integer and reads a bus back as an integer.
std::uint64_t eval_bus(const Netlist& nl, const Bus& bus,
                       const std::vector<std::pair<Bus, std::uint64_t>>& inputs) {
  std::vector<bool> src(nl.size(), false);
  for (const auto& [b, v] : inputs) {
    for (int i = 0; i < b.width(); ++i) {
      src[static_cast<std::size_t>(b.bits[static_cast<std::size_t>(i)])] =
          (v >> i) & 1;
    }
  }
  const auto values = simulate(nl, src);
  std::uint64_t out = 0;
  for (int i = 0; i < bus.width(); ++i) {
    if (values[static_cast<std::size_t>(bus.bits[static_cast<std::size_t>(i)])]) {
      out |= std::uint64_t{1} << i;
    }
  }
  return out;
}

TEST(Synthesizer, AddComputesSum) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 4);
  Bus b = syn.input("b", 4);
  Bus s = syn.add(a, b);
  for (std::uint64_t x : {0u, 3u, 7u, 15u}) {
    for (std::uint64_t y : {0u, 1u, 9u, 15u}) {
      EXPECT_EQ(eval_bus(syn.netlist(), s, {{a, x}, {b, y}}), (x + y) & 0xF)
          << x << "+" << y;
    }
  }
}

TEST(Synthesizer, SubComputesDifference) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 4);
  Bus b = syn.input("b", 4);
  Bus d = syn.sub(a, b);
  for (std::uint64_t x : {0u, 5u, 12u, 15u}) {
    for (std::uint64_t y : {0u, 2u, 9u, 15u}) {
      EXPECT_EQ(eval_bus(syn.netlist(), d, {{a, x}, {b, y}}), (x - y) & 0xF);
    }
  }
}

TEST(Synthesizer, MulComputesProduct) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 4);
  Bus b = syn.input("b", 4);
  Bus p = syn.mul(a, b);
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(eval_bus(syn.netlist(), p, {{a, x}, {b, y}}), (x * y) & 0xF)
          << x << "*" << y;
    }
  }
}

TEST(Synthesizer, Comparators) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 3);
  Bus b = syn.input("b", 3);
  Bus eq = syn.cmp_eq(a, b);
  Bus lt = syn.cmp_lt(a, b);
  for (std::uint64_t x = 0; x < 8; ++x) {
    for (std::uint64_t y = 0; y < 8; ++y) {
      EXPECT_EQ(eval_bus(syn.netlist(), eq, {{a, x}, {b, y}}), x == y ? 1u : 0u);
      EXPECT_EQ(eval_bus(syn.netlist(), lt, {{a, x}, {b, y}}), x < y ? 1u : 0u);
    }
  }
}

TEST(Synthesizer, MuxSelects) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 3);
  Bus b = syn.input("b", 3);
  Bus s = syn.input("s", 1);
  Bus m = syn.mux(a, b, s);
  EXPECT_EQ(eval_bus(syn.netlist(), m, {{a, 5}, {b, 2}, {s, 0}}), 5u);
  EXPECT_EQ(eval_bus(syn.netlist(), m, {{a, 5}, {b, 2}, {s, 1}}), 2u);
}

TEST(Synthesizer, ShiftRotateParity) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 4);
  Bus sh = syn.shift_left(a, 2);
  Bus ro = syn.rotate_left(a, 1);
  Bus pa = syn.parity(a);
  EXPECT_EQ(eval_bus(syn.netlist(), sh, {{a, 0b0011}}), 0b1100u);
  EXPECT_EQ(eval_bus(syn.netlist(), ro, {{a, 0b1001}}), 0b0011u);
  EXPECT_EQ(eval_bus(syn.netlist(), pa, {{a, 0b0111}}), 1u);
  EXPECT_EQ(eval_bus(syn.netlist(), pa, {{a, 0b0101}}), 0u);
}

TEST(Synthesizer, DecodePriorityEncode) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 3);
  Bus d = syn.decode(a);
  Bus e = syn.priority_encode(a);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(eval_bus(syn.netlist(), d, {{a, x}}), std::uint64_t{1} << x);
  }
  // priority encode: index of highest set bit.
  EXPECT_EQ(eval_bus(syn.netlist(), e, {{a, 0b100}}), 2u);
  EXPECT_EQ(eval_bus(syn.netlist(), e, {{a, 0b110}}), 2u);
  EXPECT_EQ(eval_bus(syn.netlist(), e, {{a, 0b010}}), 1u);
  EXPECT_EQ(eval_bus(syn.netlist(), e, {{a, 0b001}}), 0u);
}

TEST(Synthesizer, RegBankAndFeedback) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 2);
  Bus q = syn.reg_bank(a, "datapath", false);
  Bus c = syn.reg_feedback(2, "counter", false);
  Bus next = syn.add(c, syn.constant(1, 2));
  syn.connect_reg(c, next);
  syn.mark_outputs(q);
  Netlist nl = syn.take_netlist();
  EXPECT_EQ(nl.registers().size(), 4u);
  // Feedback registers must have non-placeholder fanins after connect.
  for (GateId r : nl.registers()) {
    EXPECT_NE(nl.gate(nl.gate(r).fanins[0]).name, "__fb");
  }
}

TEST(Synthesizer, UnconnectedFeedbackThrows) {
  Synthesizer syn("t");
  syn.reg_feedback(2, "fsm", true);
  EXPECT_THROW(syn.take_netlist(), std::runtime_error);
}

TEST(Synthesizer, LabelsAssigned) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 3);
  Bus b = syn.input("b", 3);
  Bus s = syn.add(a, b);
  Bus m = syn.mul(a, b);
  (void)s;
  (void)m;
  int add_gates = 0, mul_gates = 0;
  for (const Gate& g : syn.netlist().gates()) {
    if (g.rtl_block == "add") ++add_gates;
    if (g.rtl_block == "mul") ++mul_gates;
  }
  EXPECT_GT(add_gates, 0);
  EXPECT_GT(mul_gates, 0);
}

TEST(Synthesizer, RegRtlTracksProvenance) {
  Synthesizer syn("t");
  Bus a = syn.input("alpha", 2);
  Bus b = syn.input("beta", 2);
  Bus s = syn.add(a, b);
  Bus q = syn.reg_bank(s, "datapath", false);
  (void)q;
  const auto& rtl = syn.reg_rtl();
  ASSERT_FALSE(rtl.empty());
  for (const auto& [reg, text] : rtl) {
    EXPECT_NE(text.find("add"), std::string::npos) << reg;
    EXPECT_NE(text.find("input alpha"), std::string::npos);
  }
}

TEST(Synthesizer, RtlTextContainsAllStatements) {
  Synthesizer syn("mydesign");
  Bus a = syn.input("a", 2);
  Bus n = syn.bit_not(a);
  syn.mark_outputs(n);
  const std::string rtl = syn.rtl_text();
  EXPECT_NE(rtl.find("module mydesign"), std::string::npos);
  EXPECT_NE(rtl.find("input a"), std::string::npos);
  EXPECT_NE(rtl.find("not ( a )"), std::string::npos);
  EXPECT_NE(rtl.find("endmodule"), std::string::npos);
}

// --- optimization passes ----------------------------------------------------

// Simulation equivalence on DFF-source + port assignments.
void expect_equivalent(const Netlist& a, const Netlist& b, Rng& rng,
                       int trials = 12) {
  for (int t = 0; t < trials; ++t) {
    std::vector<bool> sa(a.size(), false), sb(b.size(), false);
    for (const Gate& g : a.gates()) {
      if (g.type != CellType::kPort && g.type != CellType::kDff) continue;
      const GateId other = b.find(g.name);
      ASSERT_NE(other, kNoGate) << "missing source " << g.name;
      const bool v = rng.chance(0.5);
      sa[static_cast<std::size_t>(g.id)] = v;
      sb[static_cast<std::size_t>(other)] = v;
    }
    const auto va = simulate(a, sa);
    const auto vb = simulate(b, sb);
    // Compare every register D input and every primary output.
    for (const Gate& g : a.gates()) {
      if (g.type == CellType::kDff) {
        const GateId other = b.find(g.name);
        EXPECT_EQ(va[static_cast<std::size_t>(g.fanins[0])],
                  vb[static_cast<std::size_t>(b.gate(other).fanins[0])])
            << "register " << g.name;
      }
    }
  }
}

TEST(Optimize, CleanupRemovesDeadAndConst) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 3);
  Bus dead = syn.bit_xor(a, a);  // never used downstream
  (void)dead;
  Bus keep = syn.add(a, syn.constant(0, 3));  // adding zero
  Bus q = syn.reg_bank(keep, "datapath", false);
  (void)q;
  Netlist nl = syn.take_netlist();
  Netlist cleaned = cleanup(nl);
  cleaned.validate();
  EXPECT_LT(cleaned.size(), nl.size());
  Rng rng(5);
  expect_equivalent(nl, cleaned, rng);
}

TEST(Optimize, CleanupCollapsesInverterPairs) {
  Netlist nl("t");
  const GateId a = nl.add_port("a");
  const GateId i1 = nl.add_gate(CellType::kInv, "i1", {a});
  const GateId i2 = nl.add_gate(CellType::kInv, "i2", {i1});
  const GateId o = nl.add_gate(CellType::kBuf, "o", {i2});
  nl.mark_output(o);
  Netlist cleaned = cleanup(nl);
  // Everything collapses to the port being the output.
  EXPECT_TRUE(cleaned.gate(cleaned.find("a")).is_primary_output);
  EXPECT_EQ(cleaned.stats().num_logic, 0u);
}

TEST(Optimize, CleanupKeepsAllRegisters) {
  Synthesizer syn("t");
  Bus a = syn.input("a", 2);
  Bus q = syn.reg_bank(a, "datapath", false);  // register unused downstream
  (void)q;
  Netlist nl = syn.take_netlist();
  EXPECT_EQ(cleanup(nl).registers().size(), nl.registers().size());
}

TEST(Optimize, LogicRewritePreservesFunction) {
  Rng rng(11);
  Synthesizer syn("t");
  Bus a = syn.input("a", 4);
  Bus b = syn.input("b", 4);
  Bus s = syn.add(a, b);
  Bus m = syn.mux(s, syn.bit_xor(a, b), syn.cmp_lt(a, b));
  Bus q = syn.reg_bank(m, "datapath", false);
  (void)q;
  Netlist nl = syn.take_netlist();
  for (double intensity : {0.2, 0.6, 1.0}) {
    Netlist rw = logic_rewrite(nl, rng, intensity);
    rw.validate();
    Rng check(77);
    expect_equivalent(nl, rw, check);
  }
}

TEST(Optimize, LogicRewriteDiversifiesCells) {
  Rng rng(13);
  Synthesizer syn("t");
  Bus a = syn.input("a", 4);
  Bus b = syn.input("b", 4);
  Bus q = syn.reg_bank(syn.add(a, b), "datapath", false);
  (void)q;
  Netlist nl = syn.take_netlist();
  Netlist rw = logic_rewrite(nl, rng, 0.9);
  // Heavy rewriting must introduce cell types absent from the ripple adder.
  const auto before = nl.type_counts();
  const auto after = rw.type_counts();
  EXPECT_GT(after[static_cast<std::size_t>(CellType::kNand2)] +
                after[static_cast<std::size_t>(CellType::kNor2)] +
                after[static_cast<std::size_t>(CellType::kInv)],
            before[static_cast<std::size_t>(CellType::kNand2)] +
                before[static_cast<std::size_t>(CellType::kNor2)] +
                before[static_cast<std::size_t>(CellType::kInv)]);
}

TEST(Optimize, InsertBuffersCapsFanout) {
  Netlist nl("t");
  const GateId a = nl.add_port("a");
  for (int i = 0; i < 20; ++i) {
    nl.add_gate(CellType::kInv, "s" + std::to_string(i), {a});
  }
  Netlist buffered = insert_buffers(nl, 4);
  buffered.validate();
  for (const Gate& g : buffered.gates()) {
    EXPECT_LE(g.fanouts.size(), 8u) << g.name;  // drivers split across bufs
  }
  // Original driver now has at most max_fanout sinks + buffers.
  EXPECT_GT(buffered.size(), nl.size());
}

// --- generator ---------------------------------------------------------------

TEST(Generator, FourFamilies) {
  const auto& fams = benchmark_families();
  ASSERT_EQ(fams.size(), 4u);
  EXPECT_EQ(fams[0].name, "itc99");
  EXPECT_EQ(family_profile("chipyard").name, "chipyard");
  EXPECT_THROW(family_profile("nope"), std::invalid_argument);
}

class GeneratorFamily : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorFamily, ProducesValidSequentialDesigns) {
  Rng rng(101);
  const FamilyProfile& prof = family_profile(GetParam());
  for (int i = 0; i < 3; ++i) {
    GeneratedDesign d = generate_design(prof, rng, GetParam() + "_x" + std::to_string(i));
    d.netlist.validate();
    EXPECT_GT(d.netlist.registers().size(), 0u);
    EXPECT_GT(d.netlist.stats().num_logic, 10u);
    EXPECT_FALSE(d.rtl_text.empty());
    EXPECT_EQ(d.netlist.source(), GetParam());
    // Every register has RTL cone text.
    for (GateId r : d.netlist.registers()) {
      EXPECT_TRUE(d.reg_rtl.count(d.netlist.gate(r).name))
          << d.netlist.gate(r).name;
    }
    // Labels present on logic gates.
    int labeled = 0, logic = 0;
    for (const Gate& g : d.netlist.gates()) {
      if (gate_class_of(g.type) >= 0) {
        ++logic;
        if (!g.rtl_block.empty()) ++labeled;
      }
    }
    EXPECT_GT(labeled, logic * 9 / 10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorFamily,
                         ::testing::Values("itc99", "opencores", "chipyard",
                                           "vexriscv"));

TEST(Generator, FamilySizeOrdering) {
  // Chipyard designs are larger than OpenCores on average (Table II shape).
  Rng rng(55);
  double oc = 0, cy = 0;
  const int k = 4;
  for (int i = 0; i < k; ++i) {
    oc += static_cast<double>(
        generate_design(family_profile("opencores"), rng, "oc" + std::to_string(i))
            .netlist.size());
    cy += static_cast<double>(
        generate_design(family_profile("chipyard"), rng, "cy" + std::to_string(i))
            .netlist.size());
  }
  EXPECT_GT(cy, oc);
}

TEST(Generator, DeterministicGivenSeed) {
  Rng r1(7), r2(7);
  GeneratedDesign a = generate_design(family_profile("itc99"), r1, "d");
  GeneratedDesign b = generate_design(family_profile("itc99"), r2, "d");
  EXPECT_EQ(netlist_to_string(a.netlist), netlist_to_string(b.netlist));
  EXPECT_EQ(a.rtl_text, b.rtl_text);
}

TEST(Generator, CorpusNaming) {
  Rng rng(3);
  auto corpus = generate_corpus(family_profile("opencores"), 3, rng);
  ASSERT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus[0].netlist.name(), "opencores_d0");
  EXPECT_EQ(corpus[2].netlist.name(), "opencores_d2");
}

}  // namespace
}  // namespace nettag
