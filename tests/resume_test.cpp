// Bit-identical training resume (docs/ARCHITECTURE.md §8): a run interrupted
// at an arbitrary step and resumed from its checkpoint must end in *exactly*
// the state of the uninterrupted run — same parameter bytes, same loss curve.
// These tests interrupt deterministically via TrainCheckpoint::halt_after_steps
// (which follows the same finish-the-step-then-checkpoint path as a real
// SIGINT/SIGTERM) at points inside each phase and at the phase boundary.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/pretrain.hpp"
#include "nn/train_state.hpp"
#include "tasks/finetune.hpp"

namespace nettag {
namespace {

NetTagConfig tiny_config() {
  NetTagConfig cfg;
  cfg.expr_llm = TextEncoderConfig::tiny();
  cfg.tag_d_model = 32;
  cfg.out_dim = 24;
  return cfg;
}

PretrainOptions small_options() {
  PretrainOptions po;
  po.expr_steps = 6;
  po.tag_steps = 5;
  po.aux_steps = 0;
  po.max_expressions = 120;
  po.max_cones = 12;
  po.objective_align = false;
  return po;
}

const Corpus& shared_corpus() {
  static const Corpus corpus = [] {
    Rng rng(0xc0ffee);
    CorpusOptions co;
    co.designs_per_family = 1;
    co.with_physical = false;
    return build_corpus(co, rng);
  }();
  return corpus;
}

std::vector<float> model_params(const NetTag& model) {
  std::vector<float> out = flatten_param_values(model.expr_llm().params());
  const std::vector<float> tag = flatten_param_values(model.tagformer().params());
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

void remove_checkpoint(const std::string& prefix) {
  for (const char* suffix :
       {".ckpt", ".exprllm.bin", ".tagformer.bin", ".trainer.bin"}) {
    std::remove((prefix + suffix).c_str());
  }
}

struct RunResult {
  std::vector<float> params;
  PretrainReport report;
};

/// One complete or interrupted pre-training run from a fixed seed. With
/// halt_after >= 0 the run stops after that many loop steps and leaves a
/// checkpoint under `prefix`.
RunResult run_pretrain(const std::string& prefix, long halt_after,
                       int every = 0) {
  NetTag model(tiny_config(), 5);
  PretrainOptions po = small_options();
  po.checkpoint.prefix = prefix;
  po.checkpoint.every = every;
  po.checkpoint.halt_after_steps = halt_after;
  Rng rng(7);
  RunResult out;
  out.report = pretrain(model, shared_corpus(), po, rng);
  out.params = model_params(model);
  return out;
}

/// Resumes a run interrupted under `prefix`. The model seed deliberately
/// differs from run_pretrain's — every trained value must come from the
/// checkpoint, not from construction. halt_after >= 0 interrupts the resumed
/// run itself (counted over steps executed in this call).
RunResult resume_run(const std::string& prefix, long halt_after = -1) {
  NetTag model(tiny_config(), 99);
  PretrainOptions po = small_options();
  po.checkpoint.prefix = prefix;
  po.checkpoint.halt_after_steps = halt_after;
  Rng rng(7);
  RunResult out;
  out.report = resume_pretrain(model, shared_corpus(), po, rng);
  out.params = model_params(model);
  return out;
}

void expect_identical(const RunResult& resumed, const RunResult& baseline) {
  ASSERT_EQ(resumed.params.size(), baseline.params.size());
  for (std::size_t i = 0; i < resumed.params.size(); ++i) {
    ASSERT_EQ(resumed.params[i], baseline.params[i]) << "param lane " << i;
  }
  EXPECT_EQ(resumed.report.expr_losses, baseline.report.expr_losses);
  EXPECT_EQ(resumed.report.tag_losses, baseline.report.tag_losses);
  EXPECT_EQ(resumed.report.expr_loss_first, baseline.report.expr_loss_first);
  EXPECT_EQ(resumed.report.expr_loss_last, baseline.report.expr_loss_last);
  EXPECT_EQ(resumed.report.tag_loss_first, baseline.report.tag_loss_first);
  EXPECT_EQ(resumed.report.tag_loss_last, baseline.report.tag_loss_last);
  EXPECT_FALSE(resumed.report.interrupted);
}

TEST(PretrainResume, MidExprPhaseBitIdentical) {
  const std::string prefix = "/tmp/nettag_resume_expr";
  const RunResult baseline = run_pretrain(/*prefix=*/"", /*halt_after=*/-1);
  const RunResult halted = run_pretrain(prefix, /*halt_after=*/3);
  EXPECT_TRUE(halted.report.interrupted);
  EXPECT_EQ(halted.report.expr_losses.size(), 3u);
  const TrainState st = load_train_state(train_state_path(prefix));
  EXPECT_EQ(st.phase, "expr");
  EXPECT_EQ(st.next_step, 3u);
  expect_identical(resume_run(prefix), baseline);
  remove_checkpoint(prefix);
}

TEST(PretrainResume, ChainedResumesAcrossPhaseBoundaryBitIdentical) {
  const std::string prefix = "/tmp/nettag_resume_boundary";
  const RunResult baseline = run_pretrain("", -1);
  // Halt exactly at the end of step 1: the record is still an "expr"
  // checkpoint (the step-1/step-2 handoff record is only written once the
  // phase completes without a stop).
  const RunResult halted = run_pretrain(prefix, /*halt_after=*/6);
  EXPECT_TRUE(halted.report.interrupted);
  const TrainState st = load_train_state(train_state_path(prefix));
  EXPECT_EQ(st.phase, "expr");
  EXPECT_EQ(st.next_step, 6u);
  // Resume across the boundary, then interrupt again two tag steps in — a
  // second-generation checkpoint of the resumed process.
  const RunResult mid = resume_run(prefix, /*halt_after=*/2);
  EXPECT_TRUE(mid.report.interrupted);
  const TrainState st2 = load_train_state(train_state_path(prefix));
  EXPECT_EQ(st2.phase, "tag");
  EXPECT_EQ(st2.next_step, 2u);
  // The final resume of the twice-interrupted run matches the single
  // uninterrupted one exactly.
  expect_identical(resume_run(prefix), baseline);
  remove_checkpoint(prefix);
}

TEST(PretrainResume, MidTagPhaseWithPeriodicCheckpointsBitIdentical) {
  const std::string prefix = "/tmp/nettag_resume_tag";
  const RunResult baseline = run_pretrain("", -1);
  // Periodic checkpoints every 2 steps must not perturb the math either.
  const RunResult halted = run_pretrain(prefix, /*halt_after=*/8, /*every=*/2);
  EXPECT_TRUE(halted.report.interrupted);
  const TrainState st = load_train_state(train_state_path(prefix));
  EXPECT_EQ(st.phase, "tag");
  EXPECT_EQ(st.next_step, 2u);
  EXPECT_EQ(st.prior_losses.size(), 6u);  // full expr curve travels along
  expect_identical(resume_run(prefix), baseline);
  remove_checkpoint(prefix);
}

TEST(PretrainResume, CompletedRunResumesAsNoOp) {
  const std::string prefix = "/tmp/nettag_resume_done";
  const RunResult finished = run_pretrain(prefix, /*halt_after=*/-1);
  EXPECT_FALSE(finished.report.interrupted);
  const TrainState st = load_train_state(train_state_path(prefix));
  EXPECT_EQ(st.phase, "done");
  const RunResult again = resume_run(prefix);
  expect_identical(again, finished);
  remove_checkpoint(prefix);
}

TEST(PretrainResume, DatasetSizeMismatchRejected) {
  const std::string prefix = "/tmp/nettag_resume_mismatch";
  run_pretrain(prefix, /*halt_after=*/3);
  // A resume whose options prepare a different dataset cannot be
  // bit-identical; the recorded dataset size catches it up front.
  NetTag model(tiny_config(), 99);
  PretrainOptions po = small_options();
  po.max_expressions = 60;  // original prepared 120
  po.checkpoint.prefix = prefix;
  Rng r(7);
  EXPECT_THROW(resume_pretrain(model, shared_corpus(), po, r),
               std::runtime_error);
  remove_checkpoint(prefix);
}

TEST(PretrainResume, MissingCheckpointRejected) {
  NetTag model(tiny_config(), 99);
  PretrainOptions po = small_options();
  po.checkpoint.prefix = "/tmp/definitely_missing_nettag_resume";
  Rng rng(7);
  EXPECT_THROW(resume_pretrain(model, shared_corpus(), po, rng),
               std::runtime_error);
}

// --- fine-tuning heads -------------------------------------------------------

Mat synthetic_features(int rows, int cols) {
  Mat x(rows, cols);
  Rng rng(31);
  for (float& v : x.v) v = static_cast<float>(rng.normal());
  return x;
}

TEST(FinetuneResume, ClassifierHeadBitIdentical) {
  const std::string prefix = "/tmp/nettag_resume_cls";
  const Mat x = synthetic_features(48, 6);
  std::vector<int> y(48);
  for (int i = 0; i < 48; ++i) y[i] = i % 3;
  FinetuneOptions fo;
  fo.steps = 20;
  fo.batch = 16;
  fo.hidden = 8;

  Rng init(5);
  ClassifierHead baseline(6, 3, fo, init);
  Rng fit_rng(9);
  EXPECT_TRUE(baseline.fit(x, y, fit_rng));

  FinetuneOptions fo2 = fo;
  fo2.checkpoint.prefix = prefix;
  fo2.checkpoint.halt_after_steps = 7;
  Rng init2(5);
  ClassifierHead halted(6, 3, fo2, init2);
  Rng fit2(9);
  EXPECT_FALSE(halted.fit(x, y, fit2));  // stopped early, record saved
  EXPECT_EQ(load_train_state(train_state_path(prefix)).phase, "head");

  FinetuneOptions fo3 = fo;
  fo3.checkpoint.prefix = prefix;
  Rng init3(77);  // construction state must not matter after resume
  ClassifierHead resumed(6, 3, fo3, init3);
  Rng fit3(9);
  EXPECT_TRUE(resumed.resume_fit(x, y, fit3));

  const Mat want = baseline.scores(x);
  const Mat got = resumed.scores(x);
  ASSERT_EQ(want.v.size(), got.v.size());
  for (std::size_t i = 0; i < want.v.size(); ++i) {
    ASSERT_EQ(want.v[i], got.v[i]) << "score lane " << i;
  }
  std::remove(train_state_path(prefix).c_str());
}

TEST(FinetuneResume, RegressorHeadBitIdentical) {
  const std::string prefix = "/tmp/nettag_resume_reg";
  const Mat x = synthetic_features(40, 5);
  std::vector<double> y(40);
  for (int i = 0; i < 40; ++i) y[i] = 0.25 * i - 3.0;
  FinetuneOptions fo;
  fo.steps = 18;
  fo.batch = 10;
  fo.hidden = 8;

  Rng init(5);
  RegressorHead baseline(5, fo, init);
  Rng fit_rng(9);
  EXPECT_TRUE(baseline.fit(x, y, fit_rng));

  FinetuneOptions fo2 = fo;
  fo2.checkpoint.prefix = prefix;
  fo2.checkpoint.halt_after_steps = 5;
  Rng init2(5);
  RegressorHead halted(5, fo2, init2);
  Rng fit2(9);
  EXPECT_FALSE(halted.fit(x, y, fit2));

  FinetuneOptions fo3 = fo;
  fo3.checkpoint.prefix = prefix;
  Rng init3(77);
  RegressorHead resumed(5, fo3, init3);
  Rng fit3(9);
  EXPECT_TRUE(resumed.resume_fit(x, y, fit3));

  const std::vector<double> want = baseline.predict(x);
  const std::vector<double> got = resumed.predict(x);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "prediction " << i;
  }
  std::remove(train_state_path(prefix).c_str());
}

TEST(FinetuneResume, DatasetMismatchRejected) {
  const std::string prefix = "/tmp/nettag_resume_headmm";
  const Mat x = synthetic_features(30, 4);
  std::vector<int> y(30, 0);
  for (int i = 0; i < 30; i += 2) y[i] = 1;
  FinetuneOptions fo;
  fo.steps = 12;
  fo.batch = 8;
  fo.hidden = 8;
  fo.checkpoint.prefix = prefix;
  fo.checkpoint.halt_after_steps = 4;
  Rng init(5);
  ClassifierHead halted(4, 2, fo, init);
  Rng fit_rng(9);
  EXPECT_FALSE(halted.fit(x, y, fit_rng));

  const Mat wrong = synthetic_features(20, 4);  // different row count
  std::vector<int> wy(20, 0);
  FinetuneOptions fo2 = fo;
  fo2.checkpoint.halt_after_steps = -1;
  Rng init2(5);
  ClassifierHead resumed(4, 2, fo2, init2);
  Rng fit2(9);
  EXPECT_THROW(resumed.resume_fit(wrong, wy, fit2), std::runtime_error);
  std::remove(train_state_path(prefix).c_str());
}

}  // namespace
}  // namespace nettag
