// Cross-validation of the analytic activity propagation against Monte-Carlo
// simulation, plus tokenizer robustness fuzzing.
//
// The independence assumption behind run_power() is *exact* on fanout-free
// (tree) circuits, so on a tree the analytic probabilities and transition
// densities must match a two-sample Monte-Carlo estimate within sampling
// error. On reconvergent circuits it is an approximation — we only check
// boundedness there.
#include <gtest/gtest.h>

#include <cmath>

#include "expr/tokenizer.hpp"
#include "physical/analysis.hpp"
#include "rtlgen/generator.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

/// Builds a fanout-free tree circuit: each gate's output feeds exactly one
/// sink. Returns the netlist; every PORT/DFF is a source.
Netlist tree_circuit() {
  Netlist nl("tree");
  std::vector<GateId> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(nl.add_port("p" + std::to_string(i)));
  const GateId a = nl.add_gate(CellType::kAnd2, "a", {leaves[0], leaves[1]});
  const GateId b = nl.add_gate(CellType::kOr2, "b", {leaves[2], leaves[3]});
  const GateId c = nl.add_gate(CellType::kXor2, "c", {leaves[4], leaves[5]});
  const GateId d = nl.add_gate(CellType::kNand2, "d", {leaves[6], leaves[7]});
  const GateId e = nl.add_gate(CellType::kMux2, "e", {a, b, c});
  const GateId f = nl.add_gate(CellType::kNor2, "f", {e, d});
  nl.mark_output(f);
  return nl;
}

TEST(PowerValidation, AnalyticMatchesMonteCarloOnTree) {
  const Netlist nl = tree_circuit();
  Parasitics para;
  para.nets.resize(nl.size());
  const double p_in = 0.5, act_in = 0.3;
  const PowerReport analytic = run_power(nl, para, act_in, p_in);

  // Monte-Carlo: sample consecutive input pairs; count per-gate ones and
  // toggles. Consecutive inputs share a bit with prob (1 - act_in) per the
  // transition-density model.
  Rng rng(99);
  const int kSamples = 40000;
  std::vector<int> ones(nl.size(), 0), toggles(nl.size(), 0);
  for (int s = 0; s < kSamples; ++s) {
    std::vector<bool> x0(nl.size(), false), x1(nl.size(), false);
    for (const Gate& g : nl.gates()) {
      if (g.type != CellType::kPort) continue;
      const bool v0 = rng.chance(p_in);
      x0[static_cast<std::size_t>(g.id)] = v0;
      x1[static_cast<std::size_t>(g.id)] = rng.chance(act_in) ? !v0 : v0;
    }
    const auto v0 = simulate(nl, x0);
    const auto v1 = simulate(nl, x1);
    for (std::size_t i = 0; i < nl.size(); ++i) {
      ones[i] += v0[i];
      toggles[i] += v0[i] != v1[i];
    }
  }
  for (const Gate& g : nl.gates()) {
    if (g.type == CellType::kPort) continue;
    const std::size_t i = static_cast<std::size_t>(g.id);
    const double mc_prob = static_cast<double>(ones[i]) / kSamples;
    const double mc_toggle = static_cast<double>(toggles[i]) / kSamples;
    EXPECT_NEAR(analytic.prob[i], mc_prob, 0.02) << g.name;
    EXPECT_NEAR(analytic.toggle[i], mc_toggle, 0.03) << g.name;
  }
}

TEST(PowerValidation, ReconvergentCircuitStaysBounded) {
  Rng rng(7);
  const Netlist nl =
      generate_design(family_profile("itc99"), rng, "pwr_bound").netlist;
  Parasitics para;
  para.nets.resize(nl.size());
  const PowerReport rep = run_power(nl, para);
  for (std::size_t i = 0; i < nl.size(); ++i) {
    EXPECT_GE(rep.prob[i], 0.0);
    EXPECT_LE(rep.prob[i], 1.0);
    EXPECT_GE(rep.toggle[i], 0.0);
    EXPECT_LE(rep.toggle[i], 1.0);
  }
}

TEST(PowerValidation, ConstNetsNeverToggle) {
  Netlist nl("c");
  const GateId one = nl.add_gate(CellType::kConst1, "one", {});
  const GateId a = nl.add_port("a");
  const GateId g = nl.add_gate(CellType::kAnd2, "g", {one, a});
  (void)g;
  Parasitics para;
  para.nets.resize(nl.size());
  const PowerReport rep = run_power(nl, para, 0.4, 0.5);
  EXPECT_DOUBLE_EQ(rep.toggle[static_cast<std::size_t>(one)], 0.0);
  // AND with constant-1: output follows `a` exactly.
  EXPECT_NEAR(rep.toggle[static_cast<std::size_t>(nl.find("g"))], 0.4, 1e-9);
  EXPECT_NEAR(rep.prob[static_cast<std::size_t>(nl.find("g"))], 0.5, 1e-9);
}

TEST(TokenizerFuzz, ArbitraryBytesNeverCrash) {
  Rng rng(5);
  Vocab vocab;
  for (int t = 0; t < 200; ++t) {
    std::string s;
    const int len = rng.uniform_int(0, 60);
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    }
    const auto toks = tokenize_text(s);
    const auto ids = encode_text(vocab, s, 32);
    EXPECT_LE(ids.size(), 32u);
    for (int id : ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, vocab.size());
    }
    (void)toks;
  }
}

TEST(TokenizerFuzz, ManyDistinctIdentifiersWrapSlots) {
  // More identifiers than anonymization slots must wrap, not crash.
  std::string s;
  for (int i = 0; i < Vocab::kMaxVars * 2; ++i) {
    s += "ident" + std::to_string(i) + " ";
  }
  const auto toks = tokenize_text(s);
  EXPECT_EQ(toks.size(), static_cast<std::size_t>(Vocab::kMaxVars) * 2);
  EXPECT_EQ(toks.front(), "v0");
  EXPECT_EQ(toks[static_cast<std::size_t>(Vocab::kMaxVars)], "v0");  // wrapped
}

}  // namespace
}  // namespace nettag
