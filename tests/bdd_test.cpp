// Tests for the BDD engine: canonicity, ITE algebra, counting, and
// cross-validation against the sampling-based semantic equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "expr/bdd.hpp"
#include "expr/transform.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

TEST(Bdd, Terminals) {
  BddManager mgr;
  EXPECT_EQ(mgr.bdd_and(BddManager::kTrue, BddManager::kFalse), BddManager::kFalse);
  EXPECT_EQ(mgr.bdd_or(BddManager::kTrue, BddManager::kFalse), BddManager::kTrue);
  EXPECT_EQ(mgr.bdd_not(BddManager::kFalse), BddManager::kTrue);
}

TEST(Bdd, VariableSemantics) {
  BddManager mgr;
  const BddRef a = mgr.var("a");
  EXPECT_TRUE(mgr.eval(a, {{"a", true}}));
  EXPECT_FALSE(mgr.eval(a, {{"a", false}}));
  EXPECT_FALSE(mgr.eval(a, {}));  // missing defaults to false
}

TEST(Bdd, CanonicityHashConsing) {
  BddManager mgr;
  const BddRef a = mgr.var("a");
  const BddRef b = mgr.var("b");
  // Same function built two ways must be the same node.
  const BddRef ab1 = mgr.bdd_and(a, b);
  const BddRef ab2 = mgr.bdd_not(mgr.bdd_or(mgr.bdd_not(a), mgr.bdd_not(b)));
  EXPECT_EQ(ab1, ab2);
  // Idempotence: x & x == x.
  EXPECT_EQ(mgr.bdd_and(a, a), a);
  // Double negation.
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(ab1)), ab1);
}

TEST(Bdd, IteAlgebra) {
  BddManager mgr;
  const BddRef a = mgr.var("a");
  const BddRef b = mgr.var("b");
  EXPECT_EQ(mgr.ite(a, BddManager::kTrue, BddManager::kFalse), a);
  EXPECT_EQ(mgr.ite(BddManager::kTrue, a, b), a);
  EXPECT_EQ(mgr.ite(BddManager::kFalse, a, b), b);
  EXPECT_EQ(mgr.ite(a, b, b), b);
}

TEST(Bdd, BuildMatchesEval) {
  BddManager mgr;
  const ExprPtr e = parse_expr("!((R1^R2)|!R2)");
  const BddRef f = mgr.build(e);
  for (int mask = 0; mask < 4; ++mask) {
    Assignment asg{{"R1", static_cast<bool>(mask & 1)},
                   {"R2", static_cast<bool>(mask & 2)}};
    EXPECT_EQ(mgr.eval(f, asg), eval(e, asg)) << mask;
  }
}

TEST(Bdd, EqualityDecidesDeMorgan) {
  EXPECT_TRUE(bdd_equal(parse_expr("!(a&b)"), parse_expr("(!a|!b)")));
  EXPECT_FALSE(bdd_equal(parse_expr("(a&b)"), parse_expr("(a|b)")));
  EXPECT_TRUE(bdd_equal(parse_expr("(a^b)"), parse_expr("((a&!b)|(!a&b))")));
}

TEST(Bdd, TautologyContradiction) {
  EXPECT_TRUE(bdd_is_tautology(parse_expr("(a|!a)")));
  EXPECT_TRUE(bdd_is_contradiction(parse_expr("(a&!a)")));
  EXPECT_FALSE(bdd_is_tautology(parse_expr("a")));
  EXPECT_FALSE(bdd_is_contradiction(parse_expr("a")));
}

TEST(Bdd, SatCount) {
  BddManager mgr;
  mgr.var_index("a");
  mgr.var_index("b");
  mgr.var_index("c");
  const BddRef f = mgr.build(parse_expr("(a&b)"));
  // a&b over 3 vars: 2 minterms (c free).
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, 3), 2.0);
  const BddRef x = mgr.build(parse_expr("(a^b^c)"));
  EXPECT_DOUBLE_EQ(mgr.sat_count(x, 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(BddManager::kTrue, 3), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(BddManager::kFalse, 3), 0.0);
}

TEST(Bdd, PickSatisfying) {
  BddManager mgr;
  const ExprPtr e = parse_expr("(a&!b&c)");
  const BddRef f = mgr.build(e);
  Assignment asg;
  ASSERT_TRUE(mgr.pick_satisfying(f, &asg));
  EXPECT_TRUE(eval(e, asg));
  Assignment none;
  EXPECT_FALSE(mgr.pick_satisfying(BddManager::kFalse, &none));
}

// Property sweep: BDD equality must agree with the sampling-based
// semantic equivalence on random expression/transform pairs.
class BddVsSemantic : public ::testing::TestWithParam<int> {};

TEST_P(BddVsSemantic, AgreeOnEquivalentPairs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  std::function<ExprPtr(int)> sample = [&](int depth) -> ExprPtr {
    if (depth == 0 || rng.chance(0.3)) {
      return Expr::var("x" + std::to_string(rng.uniform_int(0, 5)));
    }
    switch (rng.uniform_int(0, 3)) {
      case 0: return Expr::lnot(sample(depth - 1));
      case 1: return Expr::land(sample(depth - 1), sample(depth - 1));
      case 2: return Expr::lor(sample(depth - 1), sample(depth - 1));
      default: return Expr::lxor(sample(depth - 1), sample(depth - 1));
    }
  };
  for (int t = 0; t < 15; ++t) {
    const ExprPtr e = sample(4);
    const ExprPtr eq = random_equivalent(e, rng, 4);
    EXPECT_TRUE(bdd_equal(e, eq)) << to_string(e) << " vs " << to_string(eq);
    EXPECT_TRUE(semantically_equal(e, eq));
    const ExprPtr mutant = random_nonequivalent(e, rng);
    if (mutant) {
      EXPECT_FALSE(bdd_equal(e, mutant))
          << to_string(e) << " vs " << to_string(mutant);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddVsSemantic, ::testing::Values(1, 2, 3, 4));

TEST(Bdd, SharingKeepsNodeCountLinearForParity) {
  // Parity of n variables has a linear-size BDD under any order.
  BddManager mgr;
  BddRef acc = BddManager::kFalse;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    acc = mgr.bdd_xor(acc, mgr.var("v" + std::to_string(i)));
  }
  // The manager hash-conses but does not garbage-collect intermediates, so
  // the bound covers the whole chain of partial parities (quadratic-ish),
  // not just the final linear-size BDD.
  EXPECT_LT(mgr.num_nodes(), static_cast<std::size_t>(n) * n + 64);
  EXPECT_DOUBLE_EQ(mgr.sat_count(acc, n), std::pow(2.0, n - 1));
}

}  // namespace
}  // namespace nettag
