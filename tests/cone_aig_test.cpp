// Tests for register-cone chunking and AIG conversion.
#include <gtest/gtest.h>

#include "expr/expr.hpp"
#include "netlist/aig.hpp"
#include "netlist/cone.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

// Two-register pipeline:
//   n1 = AND2(a, b); r1 = DFF(n1)
//   n2 = XOR2(r1, c); n3 = INV(n2); r2 = DFF(n3)
Netlist pipeline() {
  Netlist nl("pipe");
  const GateId a = nl.add_port("a");
  const GateId b = nl.add_port("b");
  const GateId c = nl.add_port("c");
  const GateId n1 = nl.add_gate(CellType::kAnd2, "n1", {a, b});
  const GateId r1 = nl.add_gate(CellType::kDff, "r1", {n1});
  nl.gate(r1).is_state_reg = true;
  const GateId n2 = nl.add_gate(CellType::kXor2, "n2", {r1, c});
  const GateId n3 = nl.add_gate(CellType::kInv, "n3", {n2});
  const GateId r2 = nl.add_gate(CellType::kDff, "r2", {n3});
  nl.mark_output(r2);
  return nl;
}

TEST(Cone, OneConePerRegister) {
  Netlist nl = pipeline();
  const auto cones = extract_register_cones(nl);
  ASSERT_EQ(cones.size(), 2u);
}

TEST(Cone, BoundariesBecomePorts) {
  Netlist nl = pipeline();
  const RegisterCone rc = extract_cone(nl, nl.find("r2"));
  // r2's cone: boundary {r1, c}, logic {n2, n3}, register r2.
  const Netlist& cone = rc.cone;
  EXPECT_EQ(cone.gate(cone.find("r1")).type, CellType::kPort);
  EXPECT_EQ(cone.gate(cone.find("c")).type, CellType::kPort);
  EXPECT_EQ(cone.gate(cone.find("n2")).type, CellType::kXor2);
  EXPECT_EQ(cone.gate(cone.find("n3")).type, CellType::kInv);
  EXPECT_EQ(cone.gate(rc.cone_register).type, CellType::kDff);
  EXPECT_TRUE(cone.gate(rc.cone_register).is_primary_output);
  EXPECT_EQ(cone.size(), 5u);
  cone.validate();
}

TEST(Cone, ConeDoesNotCrossRegisters) {
  Netlist nl = pipeline();
  const RegisterCone rc = extract_cone(nl, nl.find("r2"));
  // n1 / a / b belong to r1's cone and must not appear in r2's cone.
  EXPECT_EQ(rc.cone.find("n1"), kNoGate);
  EXPECT_EQ(rc.cone.find("a"), kNoGate);
}

TEST(Cone, StateFlagAndMappingPreserved) {
  Netlist nl = pipeline();
  const RegisterCone rc = extract_cone(nl, nl.find("r1"));
  EXPECT_TRUE(rc.cone.gate(rc.cone_register).is_state_reg);
  EXPECT_EQ(rc.to_parent.at(rc.cone_register), nl.find("r1"));
  // Every cone gate maps back to a parent gate with the same name.
  for (const Gate& g : rc.cone.gates()) {
    const GateId parent = rc.to_parent.at(g.id);
    EXPECT_EQ(nl.gate(parent).name, g.name);
  }
}

TEST(Cone, TransitionFunctionPreserved) {
  // The cone's DFF input must compute the same function as in the parent.
  Netlist nl = pipeline();
  const RegisterCone rc = extract_cone(nl, nl.find("r2"));
  const ExprPtr parent_fn =
      khop_expression(nl, nl.gate(nl.find("r2")).fanins[0], 10);
  const ExprPtr cone_fn =
      khop_expression(rc.cone, rc.cone.gate(rc.cone_register).fanins[0], 10);
  EXPECT_TRUE(semantically_equal(parent_fn, cone_fn));
}

TEST(Cone, MaxGatesCapsConeSize) {
  // Deep inverter chain into a register; cap must bound interior size.
  Netlist nl("deep");
  GateId prev = nl.add_port("in");
  for (int i = 0; i < 50; ++i) {
    prev = nl.add_gate(CellType::kInv, "inv" + std::to_string(i), {prev});
  }
  nl.add_gate(CellType::kDff, "r", {prev});
  const RegisterCone rc = extract_cone(nl, nl.find("r"), 10);
  // 10 interior gates + boundary port + register + possible extra = small.
  EXPECT_LE(rc.cone.size(), 14u);
  rc.cone.validate();
}

TEST(Cone, DirectPortToRegister) {
  Netlist nl("direct");
  const GateId a = nl.add_port("a");
  nl.add_gate(CellType::kDff, "r", {a});
  const RegisterCone rc = extract_cone(nl, nl.find("r"));
  EXPECT_EQ(rc.cone.size(), 2u);
  rc.cone.validate();
}

TEST(Aig, OnlyAigCells) {
  Netlist nl = pipeline();
  const AigResult res = to_aig(nl);
  EXPECT_TRUE(is_aig(res.aig));
  EXPECT_FALSE(is_aig(nl));  // original has XOR2
  res.aig.validate();
}

TEST(Aig, FunctionPreservedUnderSimulation) {
  Rng rng(42);
  Netlist nl = pipeline();
  const AigResult res = to_aig(nl);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<bool> src_orig(nl.size(), false);
    std::vector<bool> src_aig(res.aig.size(), false);
    for (const Gate& g : nl.gates()) {
      if (g.type == CellType::kPort || g.type == CellType::kDff) {
        const bool v = rng.chance(0.5);
        src_orig[static_cast<std::size_t>(g.id)] = v;
        src_aig[static_cast<std::size_t>(res.node_of.at(g.id))] = v;
      }
    }
    const auto vo = simulate(nl, src_orig);
    const auto va = simulate(res.aig, src_aig);
    for (const Gate& g : nl.gates()) {
      if (g.type == CellType::kPort) continue;
      // Compare combinational outputs (DFF Q pins were forced equal above).
      if (g.type == CellType::kDff) continue;
      EXPECT_EQ(vo[static_cast<std::size_t>(g.id)],
                va[static_cast<std::size_t>(res.node_of.at(g.id))])
          << g.name;
    }
  }
}

TEST(Aig, LabelsPropagate) {
  Netlist nl("lbl");
  const GateId a = nl.add_port("a");
  const GateId b = nl.add_port("b");
  const GateId x = nl.add_gate(CellType::kXor2, "x", {a, b});
  nl.gate(x).rtl_block = "add";
  const AigResult res = to_aig(nl);
  // Every derived node of x carries the "add" label.
  int labeled = 0;
  for (const Gate& g : res.aig.gates()) {
    if (g.rtl_block == "add") ++labeled;
  }
  EXPECT_GE(labeled, 3);  // xor decomposes into >= 3 and/inv nodes
}

TEST(Aig, ComplexCellsDecomposeCorrectly) {
  // Exhaustive check for every logic cell: build 1-gate netlist, convert,
  // compare all input combinations.
  for (const CellInfo& c : all_cells()) {
    if (c.type == CellType::kPort || c.type == CellType::kDff ||
        c.type == CellType::kConst0 || c.type == CellType::kConst1) {
      continue;
    }
    Netlist nl("one");
    std::vector<GateId> ins;
    for (int i = 0; i < c.num_inputs; ++i) {
      ins.push_back(nl.add_port("i" + std::to_string(i)));
    }
    const GateId g = nl.add_gate(c.type, "g", ins);
    nl.mark_output(g);
    const AigResult res = to_aig(nl);
    for (int mask = 0; mask < (1 << c.num_inputs); ++mask) {
      std::vector<bool> src_orig(nl.size(), false);
      std::vector<bool> src_aig(res.aig.size(), false);
      for (int j = 0; j < c.num_inputs; ++j) {
        const bool v = (mask >> j) & 1;
        src_orig[static_cast<std::size_t>(ins[static_cast<std::size_t>(j)])] = v;
        src_aig[static_cast<std::size_t>(
            res.node_of.at(ins[static_cast<std::size_t>(j)]))] = v;
      }
      const auto vo = simulate(nl, src_orig);
      const auto va = simulate(res.aig, src_aig);
      EXPECT_EQ(vo[static_cast<std::size_t>(g)],
                va[static_cast<std::size_t>(res.node_of.at(g))])
          << c.name << " mask=" << mask;
    }
  }
}

}  // namespace
}  // namespace nettag
