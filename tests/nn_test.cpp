// Autograd correctness: finite-difference gradient checks for every op,
// plus end-to-end training sanity (XOR learning, InfoNCE convergence).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace nettag {
namespace {

/// Finite-difference gradient check: `build` must construct the loss graph
/// from scratch using `params` (leaf tensors with requires_grad).
void gradcheck(const std::function<Tensor()>& build,
               const std::vector<Tensor>& params, float tol = 2e-2f,
               float h = 1e-3f) {
  // Analytic gradients.
  for (const Tensor& p : params) {
    p->ensure_grad();
    p->zero_grad();
  }
  Tensor loss = build();
  backward(loss);
  for (const Tensor& p : params) {
    ASSERT_TRUE(p->requires_grad);
    for (std::size_t i = 0; i < p->value.v.size(); ++i) {
      const float orig = p->value.v[i];
      p->value.v[i] = orig + h;
      const float up = build()->value.v[0];
      p->value.v[i] = orig - h;
      const float down = build()->value.v[0];
      p->value.v[i] = orig;
      const float numeric = (up - down) / (2 * h);
      const float analytic = p->grad.v[i];
      const float denom = std::max({std::abs(numeric), std::abs(analytic), 1.f});
      EXPECT_NEAR(analytic / denom, numeric / denom, tol)
          << "param entry " << i << " analytic=" << analytic
          << " numeric=" << numeric;
    }
  }
}

Tensor rand_param(int r, int c, std::uint64_t seed) {
  Rng rng(seed);
  Mat m(r, c);
  for (float& x : m.v) x = static_cast<float>(rng.normal(0, 0.8));
  return make_tensor(std::move(m), true);
}

Mat rand_mat(int r, int c, std::uint64_t seed) {
  Rng rng(seed);
  Mat m(r, c);
  for (float& x : m.v) x = static_cast<float>(rng.normal(0, 0.8));
  return m;
}

// Reduce any matrix to a scalar for gradcheck via a fixed weighting.
Tensor to_scalar(const Tensor& t) {
  const int n = t->value.rows, d = t->value.cols;
  Mat w(d, 1);
  for (int i = 0; i < d; ++i) w.at(i, 0) = 0.3f + 0.1f * static_cast<float>(i);
  Tensor wt = make_tensor(std::move(w), false);
  Tensor col = matmul(t, wt);  // Nx1
  Mat u(1, n);
  for (int i = 0; i < n; ++i) u.at(0, i) = 0.5f + 0.05f * static_cast<float>(i);
  return matmul(make_tensor(std::move(u), false), col);  // 1x1
}

TEST(Autograd, MatmulGrad) {
  Tensor a = rand_param(3, 4, 1);
  Tensor b = rand_param(4, 2, 2);
  gradcheck([&] { return to_scalar(matmul(a, b)); }, {a, b});
}

TEST(Autograd, AddSubMulGrad) {
  Tensor a = rand_param(3, 3, 3);
  Tensor b = rand_param(3, 3, 4);
  gradcheck([&] { return to_scalar(add(a, b)); }, {a, b});
  gradcheck([&] { return to_scalar(sub(a, b)); }, {a, b});
  gradcheck([&] { return to_scalar(mul(a, b)); }, {a, b});
}

TEST(Autograd, AddRowvecGrad) {
  Tensor a = rand_param(4, 3, 5);
  Tensor b = rand_param(1, 3, 6);
  gradcheck([&] { return to_scalar(add_rowvec(a, b)); }, {a, b});
}

TEST(Autograd, ActivationGrads) {
  Tensor a = rand_param(3, 4, 7);
  gradcheck([&] { return to_scalar(relu(a)); }, {a});
  gradcheck([&] { return to_scalar(gelu(a)); }, {a});
  gradcheck([&] { return to_scalar(tanh_op(a)); }, {a});
  gradcheck([&] { return to_scalar(sigmoid(a)); }, {a});
}

TEST(Autograd, ShapeOpGrads) {
  Tensor a = rand_param(4, 3, 8);
  Tensor b = rand_param(4, 2, 9);
  gradcheck([&] { return to_scalar(transpose(a)); }, {a});
  gradcheck([&] { return to_scalar(concat_cols(a, b)); }, {a, b});
  gradcheck([&] { return to_scalar(slice_rows(a, 1, 2)); }, {a});
  gradcheck([&] { return to_scalar(mean_rows(a)); }, {a});
  gradcheck([&] { return to_scalar(sum_rows(a)); }, {a});
}

TEST(Autograd, SoftmaxGrad) {
  Tensor a = rand_param(3, 5, 10);
  gradcheck([&] { return to_scalar(softmax_rows(a)); }, {a});
}

TEST(Autograd, LayerNormGrad) {
  Tensor a = rand_param(3, 6, 11);
  Tensor g = rand_param(1, 6, 12);
  Tensor b = rand_param(1, 6, 13);
  gradcheck([&] { return to_scalar(layernorm_rows(a, g, b)); }, {a, g, b},
            4e-2f);
}

TEST(Autograd, EmbeddingGrad) {
  Tensor table = rand_param(7, 4, 14);
  const std::vector<int> ids = {2, 5, 2, 0};
  gradcheck([&] { return to_scalar(embedding(table, ids)); }, {table});
}

TEST(Autograd, NormalizeGrad) {
  Tensor a = rand_param(3, 4, 15);
  gradcheck([&] { return to_scalar(normalize_rows(a)); }, {a});
}

TEST(Autograd, CrossEntropyGrad) {
  Tensor logits = rand_param(4, 3, 16);
  const std::vector<int> targets = {0, 2, 1, 2};
  gradcheck([&] { return cross_entropy(logits, targets); }, {logits});
}

TEST(Autograd, MseGrad) {
  Tensor pred = rand_param(3, 2, 17);
  const Mat target = rand_mat(3, 2, 18);
  gradcheck([&] { return mse_loss(pred, target); }, {pred});
}

TEST(Autograd, InfoNceGrad) {
  Tensor a = rand_param(4, 6, 19);
  Tensor p = rand_param(4, 6, 20);
  gradcheck([&] { return info_nce(a, p, 0.2f); }, {a, p}, 3e-2f);
}

TEST(Autograd, CompositeGraphGrad) {
  // A small transformer-ish composite to exercise graph reuse.
  Tensor x = rand_param(4, 6, 21);
  Tensor w = rand_param(6, 6, 22);
  gradcheck(
      [&] {
        Tensor h = relu(matmul(x, w));
        Tensor s = softmax_rows(matmul(h, transpose(h)));
        return to_scalar(matmul(s, h));
      },
      {x, w}, 3e-2f);
}

TEST(Autograd, SharedNodeGradAccumulates) {
  // f = sum(a*a + a) — a appears twice; grads must accumulate once each.
  Tensor a = rand_param(2, 2, 23);
  gradcheck([&] { return to_scalar(add(mul(a, a), a)); }, {a});
}

TEST(Autograd, DropoutEvalIsIdentity) {
  Rng rng(1);
  Tensor a = rand_param(3, 3, 24);
  Tensor out = dropout(a, 0.5f, /*train=*/false, rng);
  EXPECT_EQ(out.get(), a.get());
}

TEST(Autograd, DropoutTrainScales) {
  Rng rng(2);
  Mat m(1, 1000);
  std::fill(m.v.begin(), m.v.end(), 1.f);
  Tensor a = make_tensor(std::move(m), false);
  Tensor out = dropout(a, 0.5f, true, rng);
  double sum = 0;
  for (float x : out->value.v) sum += x;
  // Inverted dropout keeps the expectation ~ 1000.
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);
}

TEST(Layers, ShapesAndParamCounts) {
  Rng rng(3);
  Linear lin(8, 4, rng);
  EXPECT_EQ(lin.num_params(), 8u * 4 + 4);
  Tensor x = rand_param(5, 8, 25);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y->value.rows, 5);
  EXPECT_EQ(y->value.cols, 4);

  TransformerBlock blk(8, 2, 16, rng);
  Tensor z = blk.forward(rand_param(6, 8, 26));
  EXPECT_EQ(z->value.rows, 6);
  EXPECT_EQ(z->value.cols, 8);

  Mlp mlp(8, 16, 3, rng);
  Tensor p = mlp.forward(rand_param(2, 8, 27));
  EXPECT_EQ(p->value.cols, 3);
}

TEST(Layers, TransformerBlockGradFlows) {
  Rng rng(4);
  TransformerBlock blk(8, 2, 12, rng);
  Tensor x = rand_param(5, 8, 28);
  Tensor loss = to_scalar(blk.forward(x));
  backward(loss);
  // Every block parameter must receive some gradient signal.
  int nonzero_params = 0;
  for (const Tensor& p : blk.params()) {
    double s = 0;
    for (float g : p->grad.v) s += std::abs(g);
    if (s > 0) ++nonzero_params;
  }
  EXPECT_GT(nonzero_params, static_cast<int>(blk.params().size()) - 3);
}

TEST(Training, MlpLearnsXor) {
  Rng rng(5);
  Mlp mlp(2, 16, 2, rng);
  Adam opt(mlp.params(), 5e-3f);
  Mat x(4, 2);
  const int xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int> ys = {0, 1, 1, 0};
  for (int i = 0; i < 4; ++i) {
    x.at(i, 0) = static_cast<float>(xs[i][0]);
    x.at(i, 1) = static_cast<float>(xs[i][1]);
  }
  Tensor input = make_tensor(x, false);
  float final_loss = 1e9f;
  for (int step = 0; step < 400; ++step) {
    Tensor loss = cross_entropy(mlp.forward(input), ys);
    backward(loss);
    opt.step();
    final_loss = loss->value.v[0];
  }
  EXPECT_LT(final_loss, 0.1f);
  // Predictions correct.
  Tensor logits = mlp.forward(input);
  for (int i = 0; i < 4; ++i) {
    const int pred = logits->value.at(i, 0) > logits->value.at(i, 1) ? 0 : 1;
    EXPECT_EQ(pred, ys[static_cast<std::size_t>(i)]) << "sample " << i;
  }
}

TEST(Training, InfoNceAlignsPairs) {
  // Two trainable embedding sets; InfoNCE must pull matched rows together.
  Rng rng(6);
  Tensor a = make_param(6, 8, rng, 1.0f);
  Tensor b = make_param(6, 8, rng, 1.0f);
  Adam opt({a, b}, 1e-2f);
  float first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    Tensor loss = info_nce(a, b, 0.2f);
    if (step == 0) first = loss->value.v[0];
    backward(loss);
    opt.step();
    last = loss->value.v[0];
  }
  EXPECT_LT(last, first * 0.5f);
  // Matched rows are now the most similar.
  Tensor an = normalize_rows(a);
  Tensor bn = normalize_rows(b);
  Tensor sim = matmul(an, transpose(bn));
  for (int i = 0; i < 6; ++i) {
    int best = 0;
    for (int j = 1; j < 6; ++j) {
      if (sim->value.at(i, j) > sim->value.at(i, best)) best = j;
    }
    EXPECT_EQ(best, i);
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  Rng rng(7);
  Tensor p = make_param(1, 4, rng, 2.0f);
  Adam opt({p}, 5e-2f);
  Mat target(1, 4);
  target.at(0, 0) = 1.f;
  target.at(0, 1) = -2.f;
  target.at(0, 2) = 0.5f;
  target.at(0, 3) = 3.f;
  for (int i = 0; i < 500; ++i) {
    Tensor loss = mse_loss(p, target);
    backward(loss);
    opt.step();
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(p->value.at(0, j), target.at(0, j), 0.05f);
  }
}

}  // namespace
}  // namespace nettag
