// Unit tests for NetTAG-Lint (src/analysis): seeded-defect netlists each
// firing exactly their rule, TAG/layout consistency rules, the checked
// invariant machinery (NETTAG_CHECK / deep checks), report rendering, the
// pipeline-seam guard, and NETTAG_THREADS parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <unordered_set>

#include "analysis/check.hpp"
#include "analysis/lint.hpp"
#include "core/dataset.hpp"
#include "core/tag.hpp"
#include "model/graph.hpp"
#include "netlist/netlist.hpp"
#include "nn/tensor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

// --- helpers -----------------------------------------------------------------

/// Restores the deep-check flag on scope exit so tests cannot leak mode.
struct DeepChecksGuard {
  explicit DeepChecksGuard(bool on) { set_deep_checks(on); }
  ~DeepChecksGuard() { set_deep_checks(false); }
};

/// True when every diagnostic in `report` belongs to `rule` — the
/// "fires exactly its rule" assertion for seeded defects.
bool only_rule(const LintReport& report, const std::string& rule) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule != rule) return false;
  }
  return !report.empty();
}

/// The reference netlist from netlist_test.cpp:
///   U1 = XOR2(R1, R2); U2 = INV(R2); U3 = NOR2(U1, U2), U3 an output.
Netlist paper_example() {
  Netlist nl("fig3");
  const GateId r1 = nl.add_port("R1");
  const GateId r2 = nl.add_port("R2");
  const GateId u1 = nl.add_gate(CellType::kXor2, "U1", {r1, r2});
  const GateId u2 = nl.add_gate(CellType::kInv, "U2", {r2});
  const GateId u3 = nl.add_gate(CellType::kNor2, "U3", {u1, u2});
  nl.mark_output(u3);
  return nl;
}

// --- netlist structural rules ------------------------------------------------

TEST(LintNetlist, CleanNetlistHasNoFindings) {
  EXPECT_TRUE(lint_netlist(paper_example()).empty());
}

TEST(LintNetlist, CombLoopFiresNl001) {
  // g1 = INV(a); g2 = INV(g1); then rewire g1's input from a to g2.
  Netlist nl("loop");
  const GateId a = nl.add_port("a");
  const GateId g1 = nl.add_gate(CellType::kInv, "g1", {a});
  const GateId g2 = nl.add_gate(CellType::kInv, "g2", {g1});
  nl.mark_output(g2);
  nl.replace_fanin(g1, a, g2);

  const LintReport report = lint_netlist(nl);
  EXPECT_TRUE(only_rule(report, "NL001")) << to_text(report);
  EXPECT_EQ(report.count_rule("NL001"), 1u);  // one finding per SCC
  EXPECT_TRUE(report.has_errors());
  // The SCC members are named so the report is actionable.
  EXPECT_NE(report.diagnostics()[0].message.find("g1"), std::string::npos);
  EXPECT_NE(report.diagnostics()[0].message.find("g2"), std::string::npos);
}

TEST(LintNetlist, SelfLoopFiresNl001) {
  Netlist nl("selfloop");
  const GateId a = nl.add_port("a");
  const GateId g = nl.add_gate(CellType::kAnd2, "g", {a, a});
  nl.mark_output(g);
  nl.replace_fanin(g, a, g);  // g = AND2(g, g)

  const LintReport report = lint_netlist(nl);
  EXPECT_TRUE(only_rule(report, "NL001")) << to_text(report);
}

TEST(LintNetlist, FloatingCombOutputFiresNl004) {
  // U1 drives nothing and is not an output -> dead logic warning; the
  // unconsumed port R1 stays legal (generated designs have dead ports).
  Netlist nl("float");
  const GateId r1 = nl.add_port("R1");
  const GateId r2 = nl.add_port("R2");
  nl.add_gate(CellType::kXor2, "U1", {r1, r2});
  const GateId u2 = nl.add_gate(CellType::kInv, "U2", {r2});
  nl.mark_output(u2);

  const LintReport report = lint_netlist(nl);
  EXPECT_TRUE(only_rule(report, "NL004")) << to_text(report);
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_FALSE(report.has_errors());  // consumable, seams do not throw
}

TEST(LintNetlist, DoubleDriverFiresNl003) {
  Netlist nl("double");
  const GateId a = nl.add_port("a");
  const GateId b = nl.add_port("b");
  const GateId d1 = nl.add_gate(CellType::kInv, "d1", {a});
  const GateId d2 = nl.add_gate(CellType::kInv, "d2", {b});
  const GateId reg = nl.add_register("r0");
  nl.connect_register(reg, d1);
  // Second driver contending for the 1-pin D input (kept consistent with
  // the fanout multiset so only NL003 fires).
  nl.gate(reg).fanins.push_back(d2);
  nl.gate(d2).fanouts.push_back(reg);
  nl.mark_output(reg);

  const LintReport report = lint_netlist(nl);
  EXPECT_TRUE(only_rule(report, "NL003")) << to_text(report);
  EXPECT_TRUE(report.has_errors());
}

TEST(LintNetlist, UndrivenRegisterFiresNl002) {
  Netlist nl("undriven");
  const GateId a = nl.add_port("a");
  const GateId reg = nl.add_register("r0");  // connect_register never called
  const GateId g = nl.add_gate(CellType::kAnd2, "g", {a, reg});
  nl.mark_output(g);

  const LintReport report = lint_netlist(nl);
  EXPECT_TRUE(only_rule(report, "NL002")) << to_text(report);
  EXPECT_NE(report.diagnostics()[0].message.find("D pin"), std::string::npos);
}

TEST(LintNetlist, UnknownCellFiresNl005Alone) {
  Netlist nl = paper_example();
  nl.gate(nl.find("U1")).type = static_cast<CellType>(99);

  const LintReport report = lint_netlist(nl);
  // The corrupt gate is reported once and excluded from arity/loop/fanout
  // analysis instead of cascading into bogus findings.
  EXPECT_TRUE(only_rule(report, "NL005")) << to_text(report);
  EXPECT_EQ(report.size(), 1u);
}

TEST(LintNetlist, FanoutBoundFiresNl007) {
  Netlist nl("fanout");
  const GateId a = nl.add_port("a");
  const GateId src = nl.add_gate(CellType::kInv, "src", {a});
  for (int i = 0; i < 5; ++i) {
    nl.mark_output(nl.add_gate(CellType::kInv, "s" + std::to_string(i), {src}));
  }
  LintOptions opts;
  opts.max_fanout = 4;
  const LintReport report = lint_netlist(nl, opts);
  EXPECT_TRUE(only_rule(report, "NL007")) << to_text(report);

  opts.max_fanout = 5;
  EXPECT_TRUE(lint_netlist(nl, opts).empty());
}

TEST(LintNetlist, DisabledRuleIsSkipped) {
  Netlist nl("float");
  const GateId a = nl.add_port("a");
  nl.add_gate(CellType::kInv, "dead", {a});
  LintOptions opts;
  opts.disabled.insert("NL004");
  EXPECT_TRUE(lint_netlist(nl, opts).empty());
}

TEST(LintNetlist, FanoutMismatchFiresNl009) {
  Netlist nl = paper_example();
  nl.gate(nl.find("R1")).fanouts.clear();  // simulate index corruption

  const LintReport report = lint_netlist(nl);
  EXPECT_TRUE(only_rule(report, "NL009")) << to_text(report);
}

// --- TAG consistency rules ---------------------------------------------------

TEST(LintTag, CleanTagDeepHasNoFindings) {
  const Netlist nl = paper_example();
  LintOptions opts;
  opts.deep = true;
  EXPECT_TRUE(lint_tag(nl, build_tag(nl, opts.k_hop), opts).empty());
}

TEST(LintTag, TamperedExpressionFiresTg004) {
  const Netlist nl = paper_example();
  TagGraph tag = build_tag(nl);
  // Rewrite U3's rendered cone function to a wrong (but well-formed)
  // expression; only the deep semantic rule can tell.
  const std::size_t u3 = static_cast<std::size_t>(nl.find("U3"));
  std::string& attr = tag.attrs[u3];
  const std::size_t at = attr.find(" expr ");
  ASSERT_NE(at, std::string::npos) << attr;
  attr = attr.substr(0, at) + " expr U3 = R1";

  LintOptions opts;
  opts.deep = true;
  const LintReport report = lint_tag(nl, tag, opts);
  EXPECT_TRUE(only_rule(report, "TG004")) << to_text(report);
  EXPECT_EQ(report.count_rule("TG004"), 1u);

  // The same tamper goes unnoticed without deep mode: semantic rules are
  // opt-in because they re-derive every cone function.
  opts.deep = false;
  EXPECT_TRUE(lint_tag(nl, tag, opts).empty());
}

TEST(LintTag, OutOfRangeEdgeFiresTg003) {
  const Netlist nl = paper_example();
  TagGraph tag = build_tag(nl);
  tag.edges.emplace_back(0, 999);

  const LintReport report = lint_tag(nl, tag);
  EXPECT_GE(report.count_rule("TG003"), 1u) << to_text(report);
  // The stray edge also breaks edge-set agreement with the netlist.
  EXPECT_GE(report.count_rule("TG006"), 1u) << to_text(report);
}

TEST(LintTag, EmptyAttributeFiresTg001) {
  const Netlist nl = paper_example();
  TagGraph tag = build_tag(nl);
  tag.attrs[0].clear();

  const LintReport report = lint_tag(nl, tag);
  EXPECT_TRUE(only_rule(report, "TG001")) << to_text(report);
}

TEST(LintTag, NodeCountMismatchFiresTg002) {
  const Netlist nl = paper_example();
  TagGraph tag = build_tag(nl);
  tag.attrs.pop_back();
  tag.phys = Mat(tag.num_nodes(), tag.phys.cols);

  const LintReport report = lint_tag(nl, tag);
  EXPECT_GE(report.count_rule("TG002"), 1u) << to_text(report);
}

TEST(LintTag, NonFinitePhysFiresTg005) {
  const Netlist nl = paper_example();
  TagGraph tag = build_tag(nl);
  tag.phys.at(1, 0) = std::numeric_limits<float>::quiet_NaN();

  const LintReport report = lint_tag(nl, tag);
  EXPECT_TRUE(only_rule(report, "TG005")) << to_text(report);
}

// --- layout-graph rules ------------------------------------------------------

TEST(LintLayout, NegativeParasiticFiresLg002) {
  LayoutGraph lg;
  lg.node_feats.push_back({1.0, 2.0, 3.0, 4.0, 0.0, 0.0});
  lg.node_feats.push_back({1.0, -0.5, 3.0, 4.0, 0.0, 0.0});  // negative R
  lg.edges.emplace_back(0, 1);

  const LintReport report = lint_layout(lg);
  EXPECT_TRUE(only_rule(report, "LG002")) << to_text(report);
  EXPECT_NE(report.diagnostics()[0].message.find("wire_res"),
            std::string::npos);
}

TEST(LintLayout, NanFeatureFiresLg001AndBadEdgeLg003) {
  LayoutGraph lg;
  lg.node_feats.push_back(
      {std::numeric_limits<double>::infinity(), 0.0, 0.0, 0.0, 0.0, 0.0});
  lg.edges.emplace_back(0, 3);

  const LintReport report = lint_layout(lg);
  EXPECT_EQ(report.count_rule("LG001"), 1u) << to_text(report);
  EXPECT_EQ(report.count_rule("LG003"), 1u) << to_text(report);
  // Negative placement coordinates are fine (features 4-5 are x/y).
  LayoutGraph ok;
  ok.node_feats.push_back({0.0, 0.0, 0.0, 0.0, -5.0, -7.0});
  EXPECT_TRUE(lint_layout(ok).empty());
}

// --- clean-pipeline integration ----------------------------------------------

TEST(LintPipeline, GeneratedCorpusLintsClean) {
  CorpusOptions opts;
  opts.designs_per_family = 1;
  Rng rng(7);
  // build_corpus itself enforces the seam; re-lint explicitly to assert the
  // report is literally empty (no warnings either), then deep-lint one
  // cone's TAG end to end.
  const Corpus corpus = build_corpus(opts, rng);
  const LintReport report = lint_corpus(corpus);
  EXPECT_TRUE(report.empty()) << to_text(report);

  ASSERT_FALSE(corpus.designs.empty());
  ASSERT_FALSE(corpus.designs[0].cones.empty());
  const ConeSample& cone = corpus.designs[0].cones[0];
  LintOptions deep;
  deep.deep = true;
  const LintReport tag_report =
      lint_tag(cone.cone, build_tag(cone.cone, deep.k_hop), deep);
  EXPECT_TRUE(tag_report.empty()) << to_text(tag_report);
}

// --- report rendering and the seam guard -------------------------------------

TEST(LintReport_, TextSortsErrorsFirstAndSummarizes) {
  LintReport report;
  report.add("NL004", Severity::kWarning, "gate U1", "floats");
  report.add("NL001", Severity::kError, "netlist", "cycle");
  const std::string text = to_text(report);
  EXPECT_LT(text.find("error [NL001]"), text.find("warning [NL004]"));
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 info(s)"),
            std::string::npos);
}

TEST(LintReport_, JsonEscapesAndCounts) {
  LintReport report;
  report.add("TG001", Severity::kError, "node \"0\"", "line1\nline2");
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"rule\":\"TG001\""), std::string::npos);
  EXPECT_NE(json.find("node \\\"0\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(json.find("\"summary\":{\"errors\":1,\"warnings\":0,\"infos\":0}"),
            std::string::npos);
  EXPECT_EQ(to_json(LintReport()),
            "{\"diagnostics\":[],\"summary\":{\"errors\":0,\"warnings\":0,"
            "\"infos\":0}}");
}

TEST(LintReport_, MergePrefixesContext) {
  LintReport inner;
  inner.add("NL004", Severity::kWarning, "gate U1", "floats");
  LintReport outer;
  outer.merge(inner, "designA");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer.diagnostics()[0].object, "designA: gate U1");
}

TEST(LintReport_, EnforceCleanThrowsOnErrorsOnly) {
  LintReport warnings;
  warnings.add("NL004", Severity::kWarning, "gate U1", "floats");
  EXPECT_NO_THROW(enforce_clean(warnings, "seam"));

  LintReport errors;
  errors.add("NL001", Severity::kError, "netlist", "cycle");
  try {
    enforce_clean(errors, "rtlgen testdesign");
    FAIL() << "enforce_clean must throw on error findings";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rtlgen testdesign"), std::string::npos);
    EXPECT_NE(what.find("NL001"), std::string::npos);
  }
}

TEST(RuleCatalog, IdsUniqueAndOrderedWithinFamily) {
  const auto& catalog = rule_catalog();
  ASSERT_FALSE(catalog.empty());
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_TRUE(seen.insert(catalog[i].id).second)
        << "duplicate rule id " << catalog[i].id;
    // Ids are ordered inside each prefix block (NL..., TG..., LG..., ...).
    if (i > 0 && std::string(catalog[i - 1].id).substr(0, 2) ==
                     std::string(catalog[i].id).substr(0, 2)) {
      EXPECT_LT(std::string(catalog[i - 1].id), std::string(catalog[i].id));
    }
  }
}

// --- NETTAG_CHECK / deep-check machinery -------------------------------------

TEST(Check, ShapeMismatchThrowsCheckErrorWithShapes) {
  const Tensor a = make_tensor(Mat(2, 3));
  const Tensor b = make_tensor(Mat(2, 3));  // matmul needs 3x? on the right
  try {
    matmul(a, b);
    FAIL() << "matmul must reject mismatched inner dimensions";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NETTAG_CHECK failed"), std::string::npos);
    EXPECT_NE(what.find("2x3"), std::string::npos);  // shapes in the message
  }
}

TEST(Check, DeepModeCatchesNonFiniteForward) {
  DeepChecksGuard guard(true);
  Mat big(1, 1);
  big.at(0, 0) = 1e30f;
  const Tensor a = make_tensor(big);
  // 1e30 * 1e30 overflows float to +inf; the post-op sweep names the op.
  try {
    mul(a, a);
    FAIL() << "deep mode must reject non-finite op output";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("mul"), std::string::npos);
  }
}

TEST(Check, DeepModeCleanBackwardPasses) {
  DeepChecksGuard guard(true);
  Mat m(1, 2);
  m.at(0, 0) = 0.5f;
  m.at(0, 1) = -0.25f;
  const Tensor a = make_tensor(m, /*requires_grad=*/true);
  const Tensor loss = mse_loss(a, Mat(1, 2));  // scalar 1x1
  EXPECT_NO_THROW(backward(loss));
  EXPECT_TRUE(std::isfinite(a->grad.at(0, 0)));
}

TEST(Check, DeepModeOffByDefaultHere) {
  // The guard in other tests restores "off"; non-finite values flow through
  // unchecked in normal mode (performance contract of the hot path).
  Mat big(1, 1);
  big.at(0, 0) = 1e30f;
  const Tensor a = make_tensor(big);
  ASSERT_FALSE(deep_checks_enabled());
  EXPECT_NO_THROW(mul(a, a));
}

// --- NETTAG_THREADS parsing --------------------------------------------------

TEST(ParseThreadCount, AcceptsPlainIntegers) {
  std::string warn;
  EXPECT_EQ(parse_thread_count("8", 4, &warn), 8);
  EXPECT_TRUE(warn.empty());
  EXPECT_EQ(parse_thread_count("1", 4, &warn), 1);
  EXPECT_TRUE(warn.empty());
}

TEST(ParseThreadCount, RejectsZeroNegativeAndGarbage) {
  for (const char* bad : {"0", "-3", "abc", "", "4x", "  ", "2.5"}) {
    std::string warn;
    EXPECT_EQ(parse_thread_count(bad, 4, &warn), 4) << bad;
    EXPECT_FALSE(warn.empty()) << bad;
    EXPECT_NE(warn.find("falling back to 4"), std::string::npos) << warn;
  }
}

TEST(ParseThreadCount, ClampsAbsurdValues) {
  std::string warn;
  EXPECT_EQ(parse_thread_count("1000", 4, &warn), 256);
  EXPECT_TRUE(warn.empty());  // clamped, not rejected
  EXPECT_EQ(parse_thread_count("99999999999999999999", 4, &warn), 4);
  EXPECT_FALSE(warn.empty());  // out of long range -> rejected
}

}  // namespace
}  // namespace nettag
