// Tests for the src/net daemon subsystem: --listen address parsing, NDJSON
// framing, WL-hash shard routing with too_busy load shedding, the socket
// daemon end-to-end over unix and TCP transports, graceful drain with
// in-flight work, and the SIGTERM-drains-before-exit contract of the serve
// path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/nettag.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "net/framing.hpp"
#include "net/shard.hpp"
#include "netlist/io.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/signal.hpp"

namespace nettag {
namespace {

using net::Client;
using net::Daemon;
using net::DaemonConfig;
using net::LineBuffer;
using net::ShardPool;
using serve::ErrorCode;
using serve::Json;
using serve::Op;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerConfig;

// --- util/cli listen-address parsing ---------------------------------------

TEST(ListenAddress, AcceptsUnixAndTcpSpecs) {
  cli::ListenAddress a;
  std::string err;
  ASSERT_TRUE(cli::parse_listen_address("unix:/tmp/nettag.sock", &a, &err))
      << err;
  EXPECT_EQ(a.kind, cli::ListenAddress::Kind::kUnix);
  EXPECT_EQ(a.path, "/tmp/nettag.sock");
  EXPECT_EQ(a.spec(), "unix:/tmp/nettag.sock");

  ASSERT_TRUE(cli::parse_listen_address("127.0.0.1:8080", &a, &err)) << err;
  EXPECT_EQ(a.kind, cli::ListenAddress::Kind::kTcp);
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 8080);

  // Port 0 is valid: bind ephemeral, read the real port back.
  ASSERT_TRUE(cli::parse_listen_address("localhost:0", &a, &err)) << err;
  EXPECT_EQ(a.port, 0);
}

TEST(ListenAddress, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",            // empty
      "unix:",       // empty path
      "noport",      // no colon
      ":123",        // empty host
      "host:",       // empty port
      "host:abc",    // non-numeric port
      "host:70000",  // port out of range
      "host:-1",     // negative port
      "a:b:c",       // two colons without unix: prefix
      "[::1]:80",    // IPv6 not supported
  };
  for (const char* spec : bad) {
    cli::ListenAddress a;
    std::string err;
    EXPECT_FALSE(cli::parse_listen_address(spec, &a, &err))
        << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

// --- net/framing ------------------------------------------------------------

TEST(LineBuffer, ReassemblesFragmentedLines) {
  LineBuffer buf(1024);
  std::string line;
  ASSERT_TRUE(buf.feed("{\"op\":\"pi", 9));
  EXPECT_FALSE(buf.next_line(&line));
  ASSERT_TRUE(buf.feed("ng\"}\n{\"op\":\"stats\"}\n{", 21));
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "{\"op\":\"stats\"}");
  EXPECT_FALSE(buf.next_line(&line));
  EXPECT_EQ(buf.pending_bytes(), 1u);
}

TEST(LineBuffer, StripsCarriageReturn) {
  LineBuffer buf(64);
  std::string line;
  ASSERT_TRUE(buf.feed("hello\r\n", 7));
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "hello");
}

TEST(LineBuffer, OversizedUnterminatedLinePoisonsBuffer) {
  LineBuffer buf(16);
  const std::string big(17, 'x');  // no newline in sight
  EXPECT_FALSE(buf.feed(big.data(), big.size()));
  EXPECT_TRUE(buf.overflowed());
  // Poisoned: further bytes are dropped.
  EXPECT_FALSE(buf.feed("a\n", 2));
  std::string line;
  EXPECT_FALSE(buf.next_line(&line));
}

TEST(LineBuffer, OversizedLineFedInChunksStillPoisons) {
  // The daemon drains lines after every read: feed() and next_line()
  // alternate. The bound must apply to the whole accumulated unterminated
  // line, not just the bytes each feed appends.
  LineBuffer buf(16);
  std::string line;
  bool overflowed = false;
  for (int i = 0; i < 8 && !overflowed; ++i) {
    overflowed = !buf.feed("xxxxxxxx", 8);  // 8-byte chunks, never a newline
    if (!overflowed) EXPECT_FALSE(buf.next_line(&line));
  }
  EXPECT_TRUE(overflowed);
  EXPECT_TRUE(buf.overflowed());
  EXPECT_FALSE(buf.feed("a\n", 2));  // poisoned: further bytes are dropped
  EXPECT_FALSE(buf.next_line(&line));
}

TEST(LineBuffer, CompleteLineWithinBoundSurvivesIncrementalFeeds) {
  LineBuffer buf(16);
  std::string line;
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(buf.feed("x", 1));
  ASSERT_TRUE(buf.feed("\n", 1));  // newline lands exactly at the bound
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, std::string(16, 'x'));
}

// --- shard routing + shedding ----------------------------------------------

const char* kAndNetlist =
    "module m source synthetic\n"
    "port a\nport b\n"
    "gate AND2 g1 a b out\n"
    "endmodule\n";

// Same structure as kAndNetlist with every name changed.
const char* kAndRenamed =
    "module other source synthetic\n"
    "port x\nport y\n"
    "gate AND2 zz x y out\n"
    "endmodule\n";

const char* kOrNetlist =
    "module m source synthetic\n"
    "port a\nport b\n"
    "gate OR2 g1 a b out\n"
    "endmodule\n";

NetTagConfig tiny_config() {
  NetTagConfig cfg;
  cfg.expr_llm = TextEncoderConfig::tiny();
  cfg.tag_d_model = 32;
  cfg.out_dim = 24;
  return cfg;
}

std::unique_ptr<Server> make_server(ServerConfig sc = {},
                                    std::uint64_t seed = 21) {
  return std::make_unique<Server>(
      sc, std::make_unique<NetTag>(tiny_config(), seed));
}

Request embed_request(const char* text, Op op = Op::kEmbedGates) {
  Request r;
  r.op = op;
  r.netlist_text = text;
  r.pre_parsed = std::make_shared<Netlist>(netlist_from_string(text));
  return r;
}

TEST(ShardPool, RoutesIsomorphicRequestsToSameShard) {
  auto server = make_server();
  ShardPool pool(*server, 8, 4, 64);
  const std::size_t a = pool.route(embed_request(kAndNetlist));
  const std::size_t renamed = pool.route(embed_request(kAndRenamed));
  EXPECT_EQ(a, renamed);  // WL hash ignores names → cache affinity
  // Repeated routing of the identical request is deterministic.
  EXPECT_EQ(pool.route(embed_request(kAndNetlist)), a);
}

TEST(ShardPool, SaturatedQueueShedsWithTooBusy) {
  auto server = make_server();
  const std::size_t kDepth = 2;
  ShardPool pool(*server, 1, kDepth, 64);
  pool.pause();  // workers hold; queue fills deterministically

  std::vector<std::future<Response>> accepted;
  auto submit = [&](const char* text) {
    auto promise = std::make_shared<std::promise<Response>>();
    auto future = promise->get_future();
    Request r = embed_request(text);
    pool.submit(std::move(r),
                [promise](Response resp) { promise->set_value(std::move(resp)); });
    return future;
  };
  for (std::size_t i = 0; i < kDepth; ++i) {
    accepted.push_back(submit(kAndNetlist));
  }
  // Queue is now full: the next netlist op must shed, inline.
  auto shed = submit(kOrNetlist);
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Response busy = shed.get();
  EXPECT_EQ(busy.error, ErrorCode::kTooBusy);
  EXPECT_FALSE(busy.error_message.empty());

  // Control ops are never shed, even at a full queue.
  Request stats;
  stats.op = Op::kStats;
  auto stats_promise = std::make_shared<std::promise<Response>>();
  auto stats_future = stats_promise->get_future();
  pool.submit(std::move(stats), [stats_promise](Response resp) {
    stats_promise->set_value(std::move(resp));
  });
  EXPECT_NE(stats_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // queued, not shed

  const auto counters = pool.stats();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].shed, 1u);
  EXPECT_EQ(counters[0].submitted, kDepth + 2);
  // The depth histogram's last bucket holds the full-queue observation.
  EXPECT_GE(counters[0].queue_depth_histogram.back(), 1u);

  pool.resume();
  for (auto& f : accepted) {
    const Response r = f.get();
    EXPECT_TRUE(r.ok()) << r.error_message;
  }
  EXPECT_TRUE(stats_future.get().ok());
  pool.drain();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ShardPool, RouteComposesReplicaNameIntoTheHash) {
  auto server = make_server();
  ShardPool pool(*server, 8, 4, 64);

  // Per replica the v1 properties hold: deterministic, name-invariant.
  Request alpha = embed_request(kAndNetlist);
  alpha.model = "alpha";
  const std::size_t alpha_shard = pool.route(alpha);
  EXPECT_EQ(pool.route(alpha), alpha_shard);
  Request alpha_renamed = embed_request(kAndRenamed);
  alpha_renamed.model = "alpha";
  EXPECT_EQ(pool.route(alpha_renamed), alpha_shard);

  // An absent model field routes exactly like the explicit default name, so
  // v1 and spelled-out-v2 clients land on the same shard cache.
  Request bare = embed_request(kAndNetlist);
  Request spelled = embed_request(kAndNetlist);
  spelled.model = "default";
  EXPECT_EQ(pool.route(bare), pool.route(spelled));

  // The replica name participates in placement: one netlist fanned across
  // many replicas spreads over shards instead of hot-spotting one.
  std::vector<std::size_t> shards;
  for (const char* name : {"alpha", "beta", "gamma", "delta", "epsilon",
                           "zeta", "eta", "theta"}) {
    Request r = embed_request(kAndNetlist);
    r.model = name;
    shards.push_back(pool.route(r));
  }
  bool spread = false;
  for (const std::size_t s : shards) spread = spread || s != shards[0];
  EXPECT_TRUE(spread);
}

// --- daemon end-to-end ------------------------------------------------------

std::string unique_sock_path(const char* tag) {
  return "/tmp/nettag_test_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

/// Daemon + server + background run() thread, torn down via the stop flag.
struct DaemonFixture {
  std::unique_ptr<Server> server;
  std::unique_ptr<Daemon> daemon;
  std::atomic<bool> stop{false};
  std::thread runner;
  int run_result = -1;

  explicit DaemonFixture(DaemonConfig cfg, ServerConfig sc = {}) {
    server = make_server(sc);
    daemon = std::make_unique<Daemon>(*server, cfg);
    std::string error;
    if (!daemon->start(&error)) {
      ADD_FAILURE() << "daemon.start: " << error;
      return;
    }
    runner = std::thread([this] { run_result = daemon->run(&stop); });
  }

  ~DaemonFixture() {
    if (runner.joinable()) {
      stop.store(true);
      runner.join();
    }
  }
};

std::string request_line(const std::string& id, const char* op,
                         const char* netlist) {
  Json j = Json::object();
  j.set("id", id);
  j.set("op", op);
  if (netlist) j.set("netlist", netlist);
  return j.dump();
}

TEST(Daemon, ServesConcurrentClientsOverUnixSocket) {
  const std::string path = unique_sock_path("unix");
  DaemonConfig cfg;
  std::string err;
  ASSERT_TRUE(cli::parse_listen_address(("unix:" + path).c_str(), &cfg.listen,
                                        &err))
      << err;
  cfg.shards = 2;
  cfg.queue_depth = 16;
  cfg.poll_interval_ms = 20;
  DaemonFixture fx(cfg);
  ASSERT_TRUE(fx.runner.joinable());

  Client client;
  ASSERT_TRUE(client.connect("unix:" + path, &err)) << err;
  std::string response;
  ASSERT_TRUE(client.request(request_line("p1", "ping", nullptr), &response,
                             &err))
      << err;
  Json j;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << err << ": " << response;
  EXPECT_EQ(j.find("id")->as_string(), "p1");
  EXPECT_EQ(j.find("status")->as_string(), "ok");

  // First embed computes; the renamed isomorphic resubmission must land on
  // the same shard and replay from that shard's cache partition.
  ASSERT_TRUE(client.request(request_line("e1", "embed_gates", kAndNetlist),
                             &response, &err))
      << err;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  ASSERT_EQ(j.find("status")->as_string(), "ok") << response;
  EXPECT_FALSE(j.find("cached")->as_bool());
  ASSERT_TRUE(client.request(request_line("e2", "embed_gates", kAndRenamed),
                             &response, &err))
      << err;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  ASSERT_EQ(j.find("status")->as_string(), "ok") << response;
  EXPECT_TRUE(j.find("cached")->as_bool()) << response;

  // A second concurrent client works the same daemon.
  Client other;
  ASSERT_TRUE(other.connect("unix:" + path, &err)) << err;
  ASSERT_TRUE(other.request(request_line("o1", "embed_gates", kOrNetlist),
                            &response, &err))
      << err;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  EXPECT_EQ(j.find("status")->as_string(), "ok") << response;

  // Stats carries the transport and shard sections the daemon registered.
  ASSERT_TRUE(client.request(request_line("s1", "stats", nullptr), &response,
                             &err))
      << err;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  const Json* result = j.find("result");
  ASSERT_NE(result, nullptr) << response;
  const Json* transport = result->find("transport");
  ASSERT_NE(transport, nullptr) << response;
  EXPECT_GE(transport->find("accepts")->as_int(), 2);
  EXPECT_GE(transport->find("responses_out")->as_int(), 4);
  const Json* shards = result->find("shards");
  ASSERT_NE(shards, nullptr) << response;
  EXPECT_EQ(shards->items().size(), 2u);

  // Malformed line → structured error response, connection stays usable.
  ASSERT_TRUE(client.request("this is not json", &response, &err)) << err;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  EXPECT_EQ(j.find("status")->as_string(), "error");
  ASSERT_TRUE(client.request(request_line("p2", "ping", nullptr), &response,
                             &err))
      << err;
}

TEST(Daemon, BindsEphemeralTcpPortAndServes) {
  DaemonConfig cfg;
  std::string err;
  ASSERT_TRUE(cli::parse_listen_address("127.0.0.1:0", &cfg.listen, &err))
      << err;
  cfg.shards = 1;
  cfg.poll_interval_ms = 20;
  DaemonFixture fx(cfg);
  ASSERT_TRUE(fx.runner.joinable());
  ASSERT_GT(fx.daemon->tcp_port(), 0);

  Client client;
  ASSERT_TRUE(client.connect(
      "127.0.0.1:" + std::to_string(fx.daemon->tcp_port()), &err))
      << err;
  std::string response;
  ASSERT_TRUE(client.request(request_line("t1", "ping", nullptr), &response,
                             &err))
      << err;
  Json j;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  EXPECT_EQ(j.find("status")->as_string(), "ok");
}

TEST(Daemon, SlowReaderExceedingWriteBufferBoundIsClosed) {
  const std::string path = unique_sock_path("slowreader");
  DaemonConfig cfg;
  std::string err;
  ASSERT_TRUE(cli::parse_listen_address(("unix:" + path).c_str(), &cfg.listen,
                                        &err))
      << err;
  cfg.shards = 1;
  cfg.poll_interval_ms = 20;
  cfg.max_wbuf_bytes = 1;  // any rendered response trips the bound
  DaemonFixture fx(cfg);
  ASSERT_TRUE(fx.runner.joinable());

  Client client;
  ASSERT_TRUE(client.connect("unix:" + path, &err)) << err;
  ASSERT_TRUE(client.send_line(request_line("w1", "ping", nullptr), &err))
      << err;
  // The over-bound response is still flushed before the close...
  std::string response;
  ASSERT_TRUE(client.read_line(&response, &err)) << err;
  Json j;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  EXPECT_EQ(j.find("id")->as_string(), "w1");
  // ...then the daemon closes the connection rather than buffering further
  // output for a client that is not keeping up.
  EXPECT_FALSE(client.read_line(&response, &err));
  EXPECT_EQ(fx.daemon->transport_stats().slow_reader_closed, 1u);
}

TEST(Daemon, ShutdownRequestDrainsAndStopsRunLoop) {
  const std::string path = unique_sock_path("shutdown");
  DaemonConfig cfg;
  std::string err;
  ASSERT_TRUE(cli::parse_listen_address(("unix:" + path).c_str(), &cfg.listen,
                                        &err))
      << err;
  cfg.shards = 1;
  cfg.poll_interval_ms = 20;
  DaemonFixture fx(cfg);
  ASSERT_TRUE(fx.runner.joinable());

  Client client;
  ASSERT_TRUE(client.connect("unix:" + path, &err)) << err;
  std::string response;
  // The shutdown op's own response is part of the drain contract.
  ASSERT_TRUE(client.request(request_line("q1", "shutdown", nullptr),
                             &response, &err))
      << err;
  Json j;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  EXPECT_EQ(j.find("status")->as_string(), "ok");
  fx.runner.join();
  EXPECT_EQ(fx.run_result, 0);
}

TEST(Daemon, StopFlagDrainsInFlightRequestsBeforeExit) {
  const std::string path = unique_sock_path("drain");
  DaemonConfig cfg;
  std::string err;
  ASSERT_TRUE(cli::parse_listen_address(("unix:" + path).c_str(), &cfg.listen,
                                        &err))
      << err;
  cfg.shards = 1;
  cfg.queue_depth = 8;
  cfg.poll_interval_ms = 20;
  DaemonFixture fx(cfg);
  ASSERT_TRUE(fx.runner.joinable());

  // Hold the shard worker so the request is verifiably in-flight when the
  // stop flag (the SIGTERM path) lands.
  fx.daemon->shard_pool()->pause();
  Client client;
  ASSERT_TRUE(client.connect("unix:" + path, &err)) << err;
  ASSERT_TRUE(client.send_line(request_line("d1", "embed_gates", kAndNetlist),
                               &err))
      << err;
  // Wait until the daemon has read and queued the request.
  for (int i = 0; i < 200 && fx.daemon->shard_pool()->pending() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(fx.daemon->shard_pool()->pending(), 0u);

  fx.stop.store(true);  // SIGTERM equivalent: drain, don't drop
  fx.daemon->shard_pool()->resume();

  std::string response;
  ASSERT_TRUE(client.read_line(&response, &err)) << err;
  Json j;
  ASSERT_TRUE(Json::parse(response, &j, &err)) << response;
  EXPECT_EQ(j.find("id")->as_string(), "d1");
  EXPECT_EQ(j.find("status")->as_string(), "ok") << response;

  fx.runner.join();
  EXPECT_EQ(fx.run_result, 0);
}

TEST(Daemon, DestructionAfterDrainTimeoutWithQueuedWorkIsSafe) {
  const std::string path = unique_sock_path("dtor");
  DaemonConfig cfg;
  std::string err;
  ASSERT_TRUE(cli::parse_listen_address(("unix:" + path).c_str(), &cfg.listen,
                                        &err))
      << err;
  cfg.shards = 1;
  cfg.poll_interval_ms = 20;
  cfg.drain_timeout_ms = 100;  // give up on the paused shard quickly
  auto fx = std::make_unique<DaemonFixture>(cfg);
  ASSERT_TRUE(fx->runner.joinable());
  fx->daemon->shard_pool()->pause();  // the queued request never completes

  Client client;
  ASSERT_TRUE(client.connect("unix:" + path, &err)) << err;
  ASSERT_TRUE(client.send_line(request_line("d1", "embed_gates", kAndNetlist),
                               &err))
      << err;
  for (int i = 0; i < 200 && fx->daemon->shard_pool()->pending() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(fx->daemon->shard_pool()->pending(), 0u);

  fx->stop.store(true);
  fx->runner.join();  // drain times out with the request still queued
  // Destroying the daemon now tears the shard pool down first; pool teardown
  // answers the leftover request through the completion queue, which must
  // still be alive (TSan/ASan guard the member destruction order here).
  fx.reset();
}

// --- SIGTERM during an in-flight batch (serve path regression) --------------

TEST(StopSignals, SigtermDuringInFlightBatchStillYieldsWellFormedResponses) {
  const std::atomic<bool>* stop = install_stop_signals();
  stop_signal_flag()->store(false);

  auto server = make_server();
  server->batcher().pause();  // requests queue; the batch forms on resume
  std::vector<std::future<Response>> futures;
  futures.push_back(server->submit_line_async(
      request_line("b1", "embed_gates", kAndNetlist)));
  futures.push_back(server->submit_line_async(
      request_line("b2", "embed_gates", kOrNetlist)));

  // SIGTERM lands while both requests are in flight. The handler only sets
  // the flag — processing must complete and produce well-formed responses.
  std::raise(SIGTERM);
  EXPECT_TRUE(stop->load());
  server->batcher().resume();

  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_TRUE(r.ok()) << r.error_message;
    Json j;
    std::string err;
    ASSERT_TRUE(Json::parse(serve::render_response(r), &j, &err)) << err;
    EXPECT_EQ(j.find("status")->as_string(), "ok");
  }
  stop_signal_flag()->store(false);  // don't leak the stop into other tests
}

TEST(StopSignals, InterruptingVariantSharesTheSameFlag) {
  const std::atomic<bool>* stop = install_stop_signals_interrupting();
  stop_signal_flag()->store(false);
  std::raise(SIGINT);
  EXPECT_TRUE(stop->load());
  stop_signal_flag()->store(false);
  // Restore the restarting handlers for any later test using them.
  install_stop_signals();
}

}  // namespace
}  // namespace nettag
