// Tests for the expression simplifier and the Liberty library dump.
#include <gtest/gtest.h>

#include <functional>

#include "expr/simplify.hpp"
#include "expr/transform.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/liberty.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

void expect_simplifies(const char* in, const char* expected) {
  const ExprPtr s = simplify(parse_expr(in));
  EXPECT_EQ(to_string(s), expected) << "input: " << in;
}

TEST(Simplify, ConstantFolding) {
  expect_simplifies("(a&1)", "a");
  expect_simplifies("(a&0)", "0");
  expect_simplifies("(a|0)", "a");
  expect_simplifies("(a|1)", "1");
  expect_simplifies("(a^0)", "a");
  expect_simplifies("(a^1)", "!a");
  expect_simplifies("(1&1)", "1");
}

TEST(Simplify, DoubleNegation) {
  expect_simplifies("!!a", "a");
  expect_simplifies("!!!a", "!a");
  expect_simplifies("!1", "0");
  expect_simplifies("!0", "1");
}

TEST(Simplify, Idempotence) {
  expect_simplifies("(a&a)", "a");
  expect_simplifies("(a|a|a)", "a");
  expect_simplifies("(a&a&b)", "(a&b)");
}

TEST(Simplify, Complement) {
  expect_simplifies("(a&!a)", "0");
  expect_simplifies("(a|!a)", "1");
  expect_simplifies("(b&a&!a)", "0");
  expect_simplifies("(a^a)", "0");
  expect_simplifies("(a^a^b)", "b");
}

TEST(Simplify, Flattening) {
  expect_simplifies("(a&(b&c))", "(a&b&c)");
  expect_simplifies("((a|b)|(c|d))", "(a|b|c|d)");
}

TEST(Simplify, NestedConstantsCollapse) {
  expect_simplifies("((a&1)|(b&0))", "a");
  expect_simplifies("!((a|!a)&b)", "!b");
}

TEST(Simplify, LeavesIrreducibleAlone) {
  expect_simplifies("(a&b)", "(a&b)");
  expect_simplifies("!((R1^R2)|!R2)", "!((R1^R2)|!R2)");
}

// Property: simplify preserves semantics and never grows the tree, across
// random expressions with constants and duplicates injected.
class SimplifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyProperty, SemanticsAndSize) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
  std::function<ExprPtr(int)> sample = [&](int depth) -> ExprPtr {
    const double roll = rng.uniform();
    if (depth == 0 || roll < 0.2) {
      return Expr::var("x" + std::to_string(rng.uniform_int(0, 3)));
    }
    if (roll < 0.3) return Expr::constant(rng.chance(0.5));
    if (roll < 0.45) return Expr::lnot(sample(depth - 1));
    ExprPtr a = sample(depth - 1);
    ExprPtr b = rng.chance(0.3) ? a : sample(depth - 1);  // inject duplicates
    switch (rng.uniform_int(0, 2)) {
      case 0: return Expr::land(a, b);
      case 1: return Expr::lor(a, b);
      default: return Expr::lxor(a, b);
    }
  };
  for (int t = 0; t < 30; ++t) {
    const ExprPtr e = sample(4);
    const ExprPtr s = simplify(e);
    EXPECT_TRUE(semantically_equal(e, s))
        << to_string(e) << " -> " << to_string(s);
    EXPECT_LE(s->size(), e->size());
    // Simplification is a fixpoint after one extra application.
    EXPECT_EQ(to_string(simplify(s)), to_string(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty, ::testing::Values(1, 2, 3));

TEST(Liberty, ContainsEveryCell) {
  const std::string lib = liberty_to_string("nettag45");
  EXPECT_NE(lib.find("library (nettag45)"), std::string::npos);
  for (const CellInfo& c : all_cells()) {
    if (c.type == CellType::kPort) continue;
    EXPECT_NE(lib.find(std::string("cell (") + c.name + ")"), std::string::npos)
        << c.name;
  }
  // Sequential group only for the DFF.
  EXPECT_NE(lib.find("ff (IQ, IQN)"), std::string::npos);
  EXPECT_NE(lib.find("clocked_on"), std::string::npos);
}

TEST(Liberty, BalancedBraces) {
  const std::string lib = liberty_to_string("x");
  int depth = 0;
  for (char c : lib) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace nettag
