// Cross-family property sweeps (parameterized over benchmark family x seed):
// end-to-end invariants that must hold for every generated design —
// functional equivalence through every optimization pass, cone transition-
// function preservation, STA/power/area monotonicity.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/aig.hpp"
#include "netlist/cone.hpp"
#include "physical/flow.hpp"
#include "rtlgen/generator.hpp"
#include "rtlgen/optimize.hpp"

namespace nettag {
namespace {

struct SweepParam {
  std::string family;
  std::uint64_t seed;
};

void PrintTo(const SweepParam& p, std::ostream* os) {
  *os << p.family << "_s" << p.seed;
}

class DesignSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    design_ = generate_design(family_profile(GetParam().family), rng,
                              GetParam().family + "_sweep");
  }

  /// Checks that `a` and `b` compute identical register D-inputs and primary
  /// outputs over random source assignments.
  void expect_equivalent(const Netlist& a, const Netlist& b, int trials = 8) {
    Rng rng(GetParam().seed ^ 0x5151);
    for (int t = 0; t < trials; ++t) {
      std::vector<bool> sa(a.size(), false), sb(b.size(), false);
      for (const Gate& g : a.gates()) {
        if (g.type != CellType::kPort && g.type != CellType::kDff) continue;
        const GateId other = b.find(g.name);
        ASSERT_NE(other, kNoGate) << g.name;
        const bool v = rng.chance(0.5);
        sa[static_cast<std::size_t>(g.id)] = v;
        sb[static_cast<std::size_t>(other)] = v;
      }
      const auto va = simulate(a, sa);
      const auto vb = simulate(b, sb);
      for (const Gate& g : a.gates()) {
        if (g.type != CellType::kDff) continue;
        const GateId other = b.find(g.name);
        ASSERT_EQ(va[static_cast<std::size_t>(g.fanins[0])],
                  vb[static_cast<std::size_t>(b.gate(other).fanins[0])])
            << "register " << g.name;
      }
    }
  }

  GeneratedDesign design_;
};

TEST_P(DesignSweep, GeneratedDesignValid) {
  design_.netlist.validate();
  EXPECT_GT(design_.netlist.registers().size(), 0u);
}

TEST_P(DesignSweep, CleanupPreservesFunction) {
  const Netlist cleaned = cleanup(design_.netlist);
  cleaned.validate();
  EXPECT_LE(cleaned.size(), design_.netlist.size());
  expect_equivalent(design_.netlist, cleaned);
}

TEST_P(DesignSweep, CleanupIsIdempotentOnSize) {
  const Netlist once = cleanup(design_.netlist);
  const Netlist twice = cleanup(once);
  EXPECT_EQ(once.size(), twice.size());
}

TEST_P(DesignSweep, RewritePlusCleanupPreservesFunction) {
  Rng rng(GetParam().seed + 1);
  const Netlist rewritten = cleanup(logic_rewrite(design_.netlist, rng, 0.5));
  rewritten.validate();
  expect_equivalent(design_.netlist, rewritten);
}

TEST_P(DesignSweep, BufferInsertionPreservesFunction) {
  const Netlist buffered = insert_buffers(design_.netlist, 3);
  buffered.validate();
  expect_equivalent(design_.netlist, buffered);
}

TEST_P(DesignSweep, ConesPreserveTransitionFunctions) {
  const auto cones = extract_register_cones(design_.netlist, 0);
  ASSERT_EQ(cones.size(), design_.netlist.registers().size());
  for (const RegisterCone& rc : cones) {
    rc.cone.validate();
    // Spot-check the transition function on random assignments via the
    // to_parent mapping.
    Rng rng(GetParam().seed + 2);
    for (int t = 0; t < 4; ++t) {
      std::vector<bool> parent_src(design_.netlist.size(), false);
      std::vector<bool> cone_src(rc.cone.size(), false);
      for (const Gate& g : design_.netlist.gates()) {
        if (g.type == CellType::kPort || g.type == CellType::kDff) {
          parent_src[static_cast<std::size_t>(g.id)] = rng.chance(0.5);
        }
      }
      for (const Gate& g : rc.cone.gates()) {
        if (g.type == CellType::kPort || g.type == CellType::kDff) {
          cone_src[static_cast<std::size_t>(g.id)] =
              parent_src[static_cast<std::size_t>(rc.to_parent.at(g.id))];
        }
      }
      const auto vp = simulate(design_.netlist, parent_src);
      const auto vc = simulate(rc.cone, cone_src);
      const GateId parent_d = design_.netlist.gate(rc.register_id).fanins[0];
      const GateId cone_d = rc.cone.gate(rc.cone_register).fanins[0];
      EXPECT_EQ(vp[static_cast<std::size_t>(parent_d)],
                vc[static_cast<std::size_t>(cone_d)])
          << design_.netlist.gate(rc.register_id).name;
    }
  }
}

TEST_P(DesignSweep, AigConversionPreservesRegisterInputs) {
  const AigResult res = to_aig(design_.netlist);
  res.aig.validate();
  Rng rng(GetParam().seed + 3);
  for (int t = 0; t < 4; ++t) {
    std::vector<bool> so(design_.netlist.size(), false);
    std::vector<bool> sa(res.aig.size(), false);
    for (const Gate& g : design_.netlist.gates()) {
      if (g.type == CellType::kPort || g.type == CellType::kDff) {
        const bool v = rng.chance(0.5);
        so[static_cast<std::size_t>(g.id)] = v;
        sa[static_cast<std::size_t>(res.node_of.at(g.id))] = v;
      }
    }
    const auto vo = simulate(design_.netlist, so);
    const auto va = simulate(res.aig, sa);
    for (GateId r : design_.netlist.registers()) {
      const GateId d = design_.netlist.gate(r).fanins[0];
      EXPECT_EQ(vo[static_cast<std::size_t>(d)],
                va[static_cast<std::size_t>(res.node_of.at(d))]);
    }
  }
}

TEST_P(DesignSweep, PhysicalFlowInvariants) {
  Rng rng(GetParam().seed + 4);
  const PhysicalResult res =
      run_physical_flow(design_.netlist, rng, /*optimize=*/false, 0.0, 2);
  // Area grows monotonically with cell count; power strictly positive;
  // every endpoint has finite slack below the clock period.
  EXPECT_GE(res.area.total_area, res.area.cell_area);
  EXPECT_GT(res.power.dynamic_power, 0.0);
  EXPECT_GT(res.power.leakage_power, 0.0);
  for (GateId e : res.timing.endpoints) {
    const double s = res.timing.slack[static_cast<std::size_t>(e)];
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_LT(s, res.timing.clock_period);
  }
  // Buffering for legalization can only increase cell area vs raw netlist.
  EXPECT_GE(res.area.cell_area, run_area(design_.netlist).cell_area - 1e-9);
}

TEST_P(DesignSweep, SynthesisEstimateTracksScale) {
  const ToolEstimate est = synthesis_estimate(design_.netlist);
  EXPECT_GT(est.area, 0.0);
  EXPECT_GT(est.power, 0.0);
  // The estimate must scale with the design: strictly larger than any
  // single cell and below an absurd bound.
  EXPECT_GT(est.area, cell_info(CellType::kDff).area);
  EXPECT_LT(est.area, 1e7);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, DesignSweep,
    ::testing::Values(SweepParam{"itc99", 11}, SweepParam{"itc99", 12},
                      SweepParam{"opencores", 21}, SweepParam{"opencores", 22},
                      SweepParam{"chipyard", 31}, SweepParam{"vexriscv", 41},
                      SweepParam{"vexriscv", 42}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.family + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace nettag
