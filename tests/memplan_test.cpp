// Tests for the static memory planner (nn/tape.hpp, nn/liveness.hpp,
// nn/memplan.hpp, analysis/plan_verify.hpp) and the allocation-hardening
// satellites: Mat dimension overflow, ensure_grad zeroing on realloc,
// diamond/repeated-parent gradient parity with and without the planner,
// verifier rejection of corrupted plans, replay-divergence safety, and
// bit-identical training with planning on vs off at several pool widths.
#include <gtest/gtest.h>

#include <climits>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/check.hpp"
#include "core/nettag.hpp"
#include "netlist/netlist.hpp"
#include "nn/liveness.hpp"
#include "nn/tape.hpp"
#include "nn/tensor.hpp"
#include "tasks/finetune.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

/// Resets planner state on entry and exit, and restores the runtime
/// enablement override so tests cannot leak plans or modes into each other.
struct PlanSandbox {
  PlanSandbox() {
    plan::set_test_plan_corruption(false);
    plan::reset_for_tests();
  }
  ~PlanSandbox() {
    plan::set_test_plan_corruption(false);
    plan::set_planning_enabled(true);
    plan::reset_for_tests();
  }
};

std::vector<float> heap_copy(const Mat& m) {
  return std::vector<float>(m.v.begin(), m.v.end());
}

// --- satellite: Mat dimension hardening --------------------------------------

TEST(MatHardening, NegativeDimensionsThrow) {
  EXPECT_THROW(Mat(-1, 4), CheckError);
  EXPECT_THROW(Mat(4, -1), CheckError);
  EXPECT_THROW(Mat(-3, -3), CheckError);
}

TEST(MatHardening, RowsTimesColsOverflowThrows) {
  // INT_MAX * INT_MAX ~ 4.6e18 elements: far beyond the element cap, and
  // without the guarded multiply it wraps std::size_t arithmetic paths.
  EXPECT_THROW(Mat(INT_MAX, INT_MAX), CheckError);
  // ~1.2e12 elements: each factor is individually fine, the product is not.
  EXPECT_THROW(Mat(1'100'000, 1'100'000), CheckError);
}

TEST(MatHardening, ZeroAndModestShapesAllowed) {
  EXPECT_NO_THROW(Mat(0, INT_MAX));
  EXPECT_NO_THROW(Mat(INT_MAX, 0));
  Mat m(3, 5);
  EXPECT_EQ(m.size(), 15u);
}

// --- satellite: ensure_grad must zero on shape-mismatch realloc --------------

TEST(EnsureGrad, ZeroesOnShapeMismatchRealloc) {
  Tensor t = make_tensor(Mat(2, 3), true);
  ASSERT_EQ(t->grad.rows, 2);
  for (auto& g : t->grad.v) g = 42.f;
  t->value = Mat(3, 2);  // reshaped mid-graph
  t->ensure_grad();
  ASSERT_EQ(t->grad.rows, 3);
  ASSERT_EQ(t->grad.cols, 2);
  for (const float g : t->grad.v) EXPECT_EQ(g, 0.f);
}

TEST(EnsureGrad, NoStaleGradientAcrossReshapedSteps) {
  // Step 1: accumulate a nonzero gradient into x at shape 1x2.
  Tensor x = make_tensor(Mat(1, 2), true);
  x->value.at(0, 0) = 1.f;
  x->value.at(0, 1) = 2.f;
  auto scalar_loss = [](const Tensor& t) {
    return sum_rows(transpose(sum_rows(t)));  // NxD -> 1x1
  };
  backward(scalar_loss(mul(x, x)));
  ASSERT_NE(x->grad.at(0, 0), 0.f);

  // Step 2: reshape the same leaf and rerun. The fresh gradient must equal
  // the one computed on a brand-new node — no bytes from step 1 may leak.
  x->value = Mat(2, 2);
  for (int i = 0; i < 4; ++i) x->value.v[static_cast<std::size_t>(i)] = 1.f + i;
  x->ensure_grad();
  backward(scalar_loss(mul(x, x)));

  Tensor fresh = make_tensor(x->value, true);
  backward(scalar_loss(mul(fresh, fresh)));
  ASSERT_EQ(heap_copy(x->grad), heap_copy(fresh->grad));
}

// --- gradient parity: diamond and repeated-parent graphs ---------------------

/// One diamond step: two paths from x reconverge in the loss. Returns the
/// gradient of x and the loss value.
std::pair<std::vector<float>, float> diamond_step() {
  Tensor x = make_tensor(Mat(2, 4), true);
  for (std::size_t i = 0; i < x->value.v.size(); ++i) {
    x->value.v[i] = 0.25f * static_cast<float>(i) - 0.8f;
  }
  Tensor a = tanh_op(x);
  Tensor left = relu(a);
  Tensor right = sigmoid(a);
  Tensor loss = sum_rows(transpose(mean_rows(mul(add(left, right), a))));
  backward(loss);
  return {heap_copy(x->grad), loss->value.v[0]};
}

TEST(PlannerParity, DiamondGraphGradsBitIdentical) {
  PlanSandbox sandbox;
  plan::set_planning_enabled(false);
  const auto baseline = diamond_step();

  plan::set_planning_enabled(true);
  std::pair<std::vector<float>, float> recorded, replayed;
  {
    plan::PlanScope scope("test|diamond");
    recorded = diamond_step();
  }
  {
    plan::PlanScope scope("test|diamond");
    replayed = diamond_step();
  }
  EXPECT_EQ(baseline.first, recorded.first);
  EXPECT_EQ(baseline.second, recorded.second);
  EXPECT_EQ(baseline.first, replayed.first);
  EXPECT_EQ(baseline.second, replayed.second);
  const plan::Stats st = plan::stats_snapshot();
  EXPECT_EQ(st.plans_installed, 1u);
  EXPECT_EQ(st.replays, 1u);
  EXPECT_EQ(st.divergences, 0u);
}

/// Feeds the same tensor twice into concat_rows: the backward closure must
/// accumulate both row-block gradients into the single shared buffer.
std::pair<std::vector<float>, float> repeated_parent_step() {
  Tensor x = make_tensor(Mat(2, 3), true);
  for (std::size_t i = 0; i < x->value.v.size(); ++i) {
    x->value.v[i] = 0.5f * static_cast<float>(i) - 1.f;
  }
  Tensor both = concat_rows({x, x});
  Tensor w = make_tensor(Mat(3, 1), true);
  w->value.at(0, 0) = 0.3f;
  w->value.at(1, 0) = -0.7f;
  w->value.at(2, 0) = 1.1f;
  Tensor loss = sum_rows(matmul(both, w));  // 4x1 -> 1x1
  backward(loss);
  return {heap_copy(x->grad), loss->value.v[0]};
}

TEST(PlannerParity, RepeatedParentAccumulatesIdentically) {
  PlanSandbox sandbox;
  plan::set_planning_enabled(false);
  const auto baseline = repeated_parent_step();

  plan::set_planning_enabled(true);
  for (int pass = 0; pass < 2; ++pass) {  // record, then replay
    plan::PlanScope scope("test|repeated-parent");
    const auto got = repeated_parent_step();
    EXPECT_EQ(baseline.first, got.first) << "pass " << pass;
    EXPECT_EQ(baseline.second, got.second) << "pass " << pass;
  }
  EXPECT_EQ(plan::stats_snapshot().divergences, 0u);
}

// --- verifier: corrupted plans must be rejected ------------------------------

TEST(PlanVerifier, RejectsCorruptPlanAndFallsBackToHeap) {
  PlanSandbox sandbox;
  plan::set_planning_enabled(false);
  const auto baseline = diamond_step();

  plan::set_planning_enabled(true);
  plan::set_test_plan_corruption(true);
  {
    plan::PlanScope scope("test|corrupt");
    const auto got = diamond_step();  // recording pass: plain heap semantics
    EXPECT_EQ(baseline.first, got.first);
  }
  {
    // First re-encounter builds the (corrupted) plan; the verifier must
    // refuse it and this pass must fall straight back to the heap.
    plan::PlanScope scope("test|corrupt");
    const auto got = diamond_step();
    EXPECT_EQ(baseline.first, got.first);
  }
  plan::set_test_plan_corruption(false);

  // The deliberately-overlapping plan must have been refused.
  const plan::Stats st = plan::stats_snapshot();
  EXPECT_EQ(st.verifier_rejects, 1u);
  EXPECT_EQ(st.plans_installed, 0u);
  bool found = false;
  for (const plan::TapeReport& r : plan::tape_reports()) {
    if (r.signature != "test|corrupt") continue;
    found = true;
    EXPECT_EQ(r.state, "disabled");
    EXPECT_FALSE(r.verifier_ok);
    EXPECT_NE(r.verifier_verdict.find("overlap"), std::string::npos)
        << r.verifier_verdict;
  }
  EXPECT_TRUE(found);

  // Subsequent steps under the rejected signature run on the heap and stay
  // bit-identical.
  const unsigned long long served_before = plan::stats_snapshot().mallocs_avoided;
  {
    plan::PlanScope scope("test|corrupt");
    const auto got = diamond_step();
    EXPECT_EQ(baseline.first, got.first);
    EXPECT_EQ(baseline.second, got.second);
  }
  EXPECT_EQ(plan::stats_snapshot().mallocs_avoided, served_before);
}

TEST(PlanVerifier, AcceptsInstalledPlans) {
  PlanSandbox sandbox;
  plan::set_planning_enabled(true);
  {
    plan::PlanScope scope("test|verify-ok");
    diamond_step();  // records
  }
  for (const plan::TapeReport& r : plan::tape_reports()) {
    // Planning is lazy: after the recording pass only the tape exists.
    ASSERT_EQ(r.state, "recorded");
    ASSERT_TRUE(r.plan == nullptr);
  }
  {
    plan::PlanScope scope("test|verify-ok");
    diamond_step();  // plans + verifies at scope entry, then replays
  }
  for (const plan::TapeReport& r : plan::tape_reports()) {
    ASSERT_EQ(r.state, "ready");
    ASSERT_TRUE(r.verifier_ok);
    ASSERT_TRUE(r.plan != nullptr);
    ASSERT_GT(r.plan->buffers_planned, 0u);
  }
}

// --- replay divergence: wrong graph under a known signature ------------------

TEST(PlannerSafety, ReplayDivergenceMaterializesAndDisables) {
  PlanSandbox sandbox;
  plan::set_planning_enabled(true);
  {
    plan::PlanScope scope("test|diverge");
    diamond_step();  // records the diamond tape
  }
  plan::set_planning_enabled(false);
  const auto baseline = repeated_parent_step();
  plan::set_planning_enabled(true);
  {
    plan::PlanScope scope("test|diverge");
    const auto got = repeated_parent_step();  // different graph: must diverge
    EXPECT_EQ(baseline.first, got.first);
    EXPECT_EQ(baseline.second, got.second);
  }
  const plan::Stats st = plan::stats_snapshot();
  EXPECT_GE(st.divergences, 1u);
  for (const plan::TapeReport& r : plan::tape_reports()) {
    if (r.signature == "test|diverge") EXPECT_EQ(r.state, "disabled");
  }
  // Disabled signature: later steps run on the heap, still correct.
  {
    plan::PlanScope scope("test|diverge");
    const auto got = repeated_parent_step();
    EXPECT_EQ(baseline.first, got.first);
  }
}

TEST(PlannerSafety, ShorterReplayDivergesInsteadOfInstallingGarbage) {
  PlanSandbox sandbox;
  plan::set_planning_enabled(true);
  {
    plan::PlanScope scope("test|short");
    diamond_step();
  }
  plan::set_planning_enabled(false);
  Tensor probe = make_tensor(Mat(2, 4), true);
  for (std::size_t i = 0; i < probe->value.v.size(); ++i) {
    probe->value.v[i] = 0.25f * static_cast<float>(i) - 0.8f;
  }
  backward(sum_rows(transpose(mean_rows(tanh_op(probe)))));
  const std::vector<float> baseline = heap_copy(probe->grad);
  plan::set_planning_enabled(true);
  {
    // Same leading op (tanh on a 2x4 leaf) but the step ends early: the
    // scope must notice the under-consumed tape and keep results exact.
    plan::PlanScope scope("test|short");
    Tensor x = make_tensor(Mat(2, 4), true);
    for (std::size_t i = 0; i < x->value.v.size(); ++i) {
      x->value.v[i] = 0.25f * static_cast<float>(i) - 0.8f;
    }
    backward(sum_rows(transpose(mean_rows(tanh_op(x)))));
    EXPECT_EQ(baseline, heap_copy(x->grad));
  }
  EXPECT_GE(plan::stats_snapshot().divergences, 1u);
}

// --- end-to-end: training loops bit-identical with planning on/off -----------

/// Deterministic toy classification problem.
void toy_problem(Mat* x, std::vector<int>* y) {
  Rng data_rng(1234);
  *x = Mat(48, 6);
  y->clear();
  for (int i = 0; i < x->rows; ++i) {
    float s = 0.f;
    for (int j = 0; j < x->cols; ++j) {
      x->at(i, j) = static_cast<float>(data_rng.uniform(-1.0, 1.0));
      s += x->at(i, j);
    }
    y->push_back(s > 0.f ? 1 : 0);
  }
}

Mat fit_and_score(bool plan_on) {
  plan::reset_for_tests();
  plan::set_planning_enabled(plan_on);
  Mat x;
  std::vector<int> y;
  toy_problem(&x, &y);
  FinetuneOptions opt;
  opt.steps = 25;
  opt.batch = 8;
  opt.hidden = 16;
  Rng rng(99);
  ClassifierHead head(x.cols, 2, opt, rng);
  EXPECT_TRUE(head.fit(x, y, rng));
  return head.scores(x);
}

TEST(PlannerBitIdentity, ClassifierTrainingWidth1) {
  PlanSandbox sandbox;
  ThreadPool::instance().set_width(1);
  const Mat off = fit_and_score(false);
  const Mat on = fit_and_score(true);
  ASSERT_EQ(heap_copy(off), heap_copy(on));
  // The loop must actually have replayed from the arena, not just matched.
  const plan::Stats st = plan::stats_snapshot();
  EXPECT_GE(st.plans_installed, 1u);
  EXPECT_GE(st.replays, 20u);
  EXPECT_EQ(st.divergences, 0u);
  EXPECT_GT(st.mallocs_avoided, 0u);
}

TEST(PlannerBitIdentity, ClassifierTrainingWidth3) {
  PlanSandbox sandbox;
  ThreadPool::instance().set_width(3);
  const Mat off = fit_and_score(false);
  const Mat on = fit_and_score(true);
  ThreadPool::instance().set_width(1);
  ASSERT_EQ(heap_copy(off), heap_copy(on));
}

TEST(PlannerBitIdentity, EmbedPathWithReplay) {
  PlanSandbox sandbox;
  ThreadPool::instance().set_width(1);
  Netlist nl("planner");
  const GateId a = nl.add_port("A");
  const GateId b = nl.add_port("B");
  const GateId u1 = nl.add_gate(CellType::kXor2, "U1", {a, b});
  const GateId u2 = nl.add_gate(CellType::kInv, "U2", {b});
  const GateId u3 = nl.add_gate(CellType::kNor2, "U3", {u1, u2});
  nl.mark_output(u3);

  NetTagConfig cfg;
  cfg.expr_llm = TextEncoderConfig::tiny();

  plan::set_planning_enabled(false);
  NetTag model_off(cfg, 7);
  const NetTag::ConeEmbedding off = model_off.embed(nl);

  plan::set_planning_enabled(true);
  NetTag model_on(cfg, 7);
  const NetTag::ConeEmbedding first = model_on.embed(nl);   // records
  const NetTag::ConeEmbedding second = model_on.embed(nl);  // replays
  EXPECT_EQ(heap_copy(off.cls), heap_copy(first.cls));
  EXPECT_EQ(heap_copy(off.cls), heap_copy(second.cls));
  // The full per-node embedding matrix is caller-visible too (keep_alive
  // pin): a plan that reuses its bytes intra-forward corrupts exactly this.
  EXPECT_EQ(heap_copy(off.nodes), heap_copy(first.nodes));
  EXPECT_EQ(heap_copy(off.nodes), heap_copy(second.nodes));
  const plan::Stats st = plan::stats_snapshot();
  EXPECT_GE(st.replays, 1u);
  EXPECT_EQ(st.divergences, 0u);
}

// --- liveness unit checks ----------------------------------------------------

TEST(Liveness, BackwardRootValuePinnedToHorizon) {
  plan::Tape tape;
  plan::TapeEntry e;
  e.op = "mul";
  e.rows = 1;
  e.cols = 4;
  e.requires_grad = true;
  e.value_planned = true;
  tape.entries.push_back(e);
  e.op = "sum_rows";
  e.cols = 1;
  e.parents = {0};
  tape.entries.push_back(e);
  tape.bwd_order = {1, 0};
  tape.bwd_roots = {1};
  const plan::LivenessResult live = plan::analyze_liveness(tape);
  // The root's value is read by the caller after backward (loss logging):
  // it must stay live through the whole step.
  EXPECT_EQ(live.value[1].last, live.horizon);
  // Entry 0's value is read forward by sum_rows at time 1 and by no closure
  // (sum_rows' backward reads no parent values; mul's reads its parents',
  // not its own output), so it dies right after its forward use.
  EXPECT_EQ(live.value[0].last, 1);
}

}  // namespace
}  // namespace nettag
