// Thread-pool determinism contract tests.
//
// Three layers, matching the contract documented in util/parallel.hpp:
//   1. pool sanity — exceptions propagate to the caller, nested submission
//      runs inline instead of deadlocking, chunk partitions cover the range;
//   2. tensor kernels are ownership-partitioned, so forward AND backward are
//      bit-identical to the serial path at any width;
//   3. a full pre-training step is bit-identical run-to-run at a fixed
//      width (replica gradients reduced in fixed shard order).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/pretrain.hpp"
#include "nn/tensor.hpp"
#include "util/parallel.hpp"

namespace nettag {
namespace {

/// RAII width override so a failing test cannot leak its width into the
/// rest of the suite.
class WidthGuard {
 public:
  explicit WidthGuard(int width) : prev_(ThreadPool::instance().width()) {
    ThreadPool::instance().set_width(width);
  }
  ~WidthGuard() { ThreadPool::instance().set_width(prev_); }

 private:
  int prev_;
};

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  WidthGuard guard(8);
  std::vector<std::atomic<int>> hits(257);
  ThreadPool::instance().run_indexed(hits.size(),
                                     [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  WidthGuard guard(4);
  EXPECT_THROW(ThreadPool::instance().run_indexed(
                   64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool must still be usable after a failed region.
  std::atomic<int> count{0};
  ThreadPool::instance().run_indexed(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock) {
  WidthGuard guard(4);
  std::atomic<int> inner_total{0};
  ThreadPool::instance().run_indexed(8, [&](std::size_t) {
    // A nested region from inside a pool task must run inline.
    ThreadPool::instance().run_indexed(16, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  WidthGuard guard(3);
  std::vector<std::atomic<int>> hits(1001);
  parallel_for(hits.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

/// One matmul + elementwise + softmax forward/backward round at a given
/// width; returns output value, and the gradients of both inputs.
struct KernelRun {
  Mat out;
  Mat da;
  Mat db;
};

KernelRun kernel_round(int width) {
  WidthGuard guard(width);
  Rng rng(42);
  // Large enough that matmul/gelu/softmax all clear their parallel grain
  // thresholds (the whole point is to exercise the threaded code paths).
  Tensor a = make_param(300, 200, rng);
  Tensor b = make_param(200, 300, rng);
  Tensor y = softmax_rows(gelu(matmul(a, b)));
  // Reduce to a scalar so backward() can seed it.
  Tensor loss = mse_loss(y, Mat(300, 300));
  backward(loss);
  return {y->value, a->grad, b->grad};
}

TEST(ParallelKernels, MatmulForwardBackwardBitIdenticalAcrossWidths) {
  const KernelRun serial = kernel_round(1);
  for (int width : {2, 8}) {
    const KernelRun par = kernel_round(width);
    ASSERT_EQ(par.out.v.size(), serial.out.v.size());
    for (std::size_t i = 0; i < serial.out.v.size(); ++i) {
      ASSERT_EQ(par.out.v[i], serial.out.v[i]) << "forward, width " << width;
    }
    for (std::size_t i = 0; i < serial.da.v.size(); ++i) {
      ASSERT_EQ(par.da.v[i], serial.da.v[i]) << "dA, width " << width;
    }
    for (std::size_t i = 0; i < serial.db.v.size(); ++i) {
      ASSERT_EQ(par.db.v[i], serial.db.v[i]) << "dB, width " << width;
    }
  }
}

TEST(ParallelKernels, BackwardSeededMatchesBackward) {
  WidthGuard guard(2);
  Rng rng(7);
  Tensor a1 = make_param(8, 6, rng);
  Rng rng2(7);
  Tensor a2 = make_param(8, 6, rng2);
  // Same graph twice: once driven by backward(), once by seeding the root
  // gradient by hand and continuing with backward_seeded().
  Tensor y1 = mse_loss(tanh_op(a1), Mat(8, 6));
  backward(y1);
  Tensor y2 = mse_loss(tanh_op(a2), Mat(8, 6));
  y2->ensure_grad();
  y2->grad.v[0] = 1.f;
  backward_seeded(y2);
  for (std::size_t i = 0; i < a1->grad.v.size(); ++i) {
    ASSERT_EQ(a1->grad.v[i], a2->grad.v[i]);
  }
}

PretrainReport pretrain_round(int width) {
  WidthGuard guard(width);
  Rng rng(11);
  CorpusOptions co;
  co.designs_per_family = 1;
  Corpus corpus = build_corpus(co, rng);
  NetTag model(NetTagConfig{}, 5);
  PretrainOptions po;
  po.expr_steps = 4;
  po.tag_steps = 3;
  po.aux_steps = 2;
  po.max_expressions = 120;
  po.max_cones = 10;
  return pretrain(model, corpus, po, rng);
}

TEST(ParallelPretrain, StepDeterministicAcrossRunsAtFixedWidth) {
  const PretrainReport a = pretrain_round(3);
  const PretrainReport b = pretrain_round(3);
  EXPECT_EQ(a.expr_loss_first, b.expr_loss_first);
  EXPECT_EQ(a.expr_loss_last, b.expr_loss_last);
  EXPECT_EQ(a.tag_loss_first, b.tag_loss_first);
  EXPECT_EQ(a.tag_loss_last, b.tag_loss_last);
}

TEST(ParallelPretrain, FirstStepLossMatchesSerialAtAnyWidth) {
  // Replica forwards are value-identical to the serial joint graph, so the
  // very first loss (before any gradient-order divergence) must match the
  // serial trainer exactly even at width > 1.
  const PretrainReport serial = pretrain_round(1);
  const PretrainReport par = pretrain_round(2);
  EXPECT_EQ(par.expr_loss_first, serial.expr_loss_first);
}

}  // namespace
}  // namespace nettag
