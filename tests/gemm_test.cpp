// SIMD backend contract tests (nn/gemm.hpp, nn/packed.hpp):
//   * the scalar backend is the reference — forcing it must reproduce the
//     pre-SIMD loops bit-exactly (the kernels ARE those loops, so this is
//     self-agreement across the dispatch seam);
//   * the AVX2 backend may differ from scalar only by FMA contraction and
//     dot-product reassociation — a tight relative epsilon over shapes that
//     exercise every tail path (K=1, widths straddling 8/16 multiples);
//   * the int8 packed path is exact integer arithmetic after quantization:
//     bit-identical across backends, and within the documented error bound
//     of the fp32 product.
#include "nn/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "nn/packed.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace nettag {
namespace {

Mat random_mat(int rows, int cols, Rng& rng, float zero_fraction = 0.f) {
  Mat m(rows, cols);
  for (float& x : m.v) {
    if (zero_fraction > 0.f && rng.uniform() < zero_fraction) {
      x = 0.f;
    } else {
      x = static_cast<float>(rng.normal(0.0, 1.0));
    }
  }
  return m;
}

/// Forces `backend` for the duration of one scope; restores on exit.
class BackendGuard {
 public:
  explicit BackendGuard(SimdBackend backend) : prev_(simd_backend()) {
    forced_ = set_simd_backend(backend);
  }
  ~BackendGuard() { set_simd_backend(prev_); }
  bool forced() const { return forced_; }

 private:
  SimdBackend prev_;
  bool forced_;
};

/// Shapes chosen to hit every kernel path: 4-row/16-col main tiles, 1-3 row
/// tails, 1-15 column tails, K=1 and K straddling the 8/32 boundaries.
struct Shape {
  int n, k, m;
};
const Shape kShapes[] = {
    {1, 1, 1},   {1, 1, 17},  {3, 1, 8},    {4, 7, 16},  {5, 8, 15},
    {8, 16, 32}, {7, 33, 19}, {13, 64, 48}, {2, 5, 100}, {100, 3, 2},
};

TEST(Gemm, ScalarBackendMatchesReferenceLoopsExactly) {
  BackendGuard guard(SimdBackend::kScalar);
  Rng rng(7);
  for (const Shape& s : kShapes) {
    const Mat a = random_mat(s.n, s.k, rng, /*zero_fraction=*/0.3f);
    const Mat b = random_mat(s.k, s.m, rng);
    Mat got(s.n, s.m);
    gemm_nn(s.n, s.k, s.m, a.v.data(), b.v.data(), got.v.data());
    // Reference: the original serial triple loop with the zero-skip.
    Mat want(s.n, s.m);
    for (int i = 0; i < s.n; ++i) {
      for (int p = 0; p < s.k; ++p) {
        const float aip = a.at(i, p);
        if (aip == 0.f) continue;
        for (int j = 0; j < s.m; ++j) want.at(i, j) += aip * b.at(p, j);
      }
    }
    for (std::size_t t = 0; t < want.v.size(); ++t) {
      ASSERT_EQ(want.v[t], got.v[t])
          << "shape " << s.n << "x" << s.k << "x" << s.m << " elem " << t;
    }
  }
}

/// |got - want| <= tol * (|want| + 1): relative with an absolute floor.
void expect_close(const Mat& want, const Mat& got, float tol,
                  const char* what) {
  ASSERT_EQ(want.v.size(), got.v.size());
  for (std::size_t t = 0; t < want.v.size(); ++t) {
    ASSERT_LE(std::fabs(want.v[t] - got.v[t]),
              tol * (std::fabs(want.v[t]) + 1.f))
        << what << " elem " << t << ": " << want.v[t] << " vs " << got.v[t];
  }
}

TEST(Gemm, Avx2AgreesWithScalarWithinEpsilon) {
  if (!simd_avx2_supported()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  Rng rng(11);
  for (const Shape& s : kShapes) {
    const Mat a = random_mat(s.n, s.k, rng, /*zero_fraction=*/0.3f);
    const Mat b = random_mat(s.k, s.m, rng);
    const Mat g = random_mat(s.n, s.m, rng);
    Mat nn_s(s.n, s.m), nn_v(s.n, s.m);
    Mat nt_s(s.n, s.k), nt_v(s.n, s.k);
    Mat tn_s(s.k, s.m), tn_v(s.k, s.m);
    {
      BackendGuard guard(SimdBackend::kScalar);
      gemm_nn(s.n, s.k, s.m, a.v.data(), b.v.data(), nn_s.v.data());
      gemm_nt(s.n, s.k, s.m, g.v.data(), b.v.data(), nt_s.v.data());
      gemm_tn(s.n, s.k, s.m, a.v.data(), g.v.data(), tn_s.v.data());
    }
    {
      BackendGuard guard(SimdBackend::kAvx2);
      ASSERT_TRUE(guard.forced());
      gemm_nn(s.n, s.k, s.m, a.v.data(), b.v.data(), nn_v.v.data());
      gemm_nt(s.n, s.k, s.m, g.v.data(), b.v.data(), nt_v.v.data());
      gemm_tn(s.n, s.k, s.m, a.v.data(), g.v.data(), tn_v.v.data());
    }
    // FMA + 8-way reassociation: error grows with k; 1e-5 * sqrt(k) is
    // comfortably above observed drift yet far below any training signal.
    const float tol = 1e-5f * std::sqrt(static_cast<float>(s.k));
    expect_close(nn_s, nn_v, tol, "gemm_nn");
    expect_close(nt_s, nt_v, tol, "gemm_nt");
    expect_close(tn_s, tn_v, tol, "gemm_tn");
  }
}

TEST(Gemm, TransposeIsExactInverseAndBackendIndependent) {
  Rng rng(13);
  for (const Shape& s : kShapes) {
    const Mat a = random_mat(s.n, s.m, rng);
    Mat t(s.m, s.n);
    transpose_mat(s.n, s.m, a.v.data(), t.v.data());
    for (int i = 0; i < s.n; ++i) {
      for (int j = 0; j < s.m; ++j) ASSERT_EQ(a.at(i, j), t.at(j, i));
    }
    Mat back(s.n, s.m);
    transpose_mat(s.m, s.n, t.v.data(), back.v.data());
    EXPECT_EQ(a.v, back.v);
  }
}

TEST(Gemm, ParseSimdBackendHonorsSpellingsAndWarnsOnUnknown) {
  std::string warning;
  EXPECT_EQ(parse_simd_backend("0", SimdBackend::kAvx2, &warning),
            SimdBackend::kScalar);
  EXPECT_EQ(parse_simd_backend("scalar", SimdBackend::kAvx2, &warning),
            SimdBackend::kScalar);
  EXPECT_EQ(parse_simd_backend("off", SimdBackend::kAvx2, &warning),
            SimdBackend::kScalar);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(parse_simd_backend(nullptr, SimdBackend::kScalar, &warning),
            SimdBackend::kScalar);
  if (simd_avx2_supported()) {
    EXPECT_EQ(parse_simd_backend("avx2", SimdBackend::kScalar, &warning),
              SimdBackend::kAvx2);
    EXPECT_TRUE(warning.empty());
  }
  EXPECT_EQ(parse_simd_backend("pentium", SimdBackend::kScalar, &warning),
            SimdBackend::kScalar);
  EXPECT_FALSE(warning.empty());
}

// --- int8 packed path --------------------------------------------------------

TEST(PackedInt8, RoundTripWithinHalfScalePerColumn) {
  Rng rng(17);
  const Mat w = random_mat(33, 19, rng, /*zero_fraction=*/0.1f);
  const PackedMat p = pack_int8(w);
  EXPECT_EQ(p.rows, 33);
  EXPECT_EQ(p.cols, 19);
  EXPECT_EQ(p.kpad, 64);
  const Mat back = unpack_int8(p);
  for (int j = 0; j < w.cols; ++j) {
    const float bound = p.scales[static_cast<std::size_t>(j)] * 0.5f + 1e-7f;
    for (int r = 0; r < w.rows; ++r) {
      ASSERT_LE(std::fabs(w.at(r, j) - back.at(r, j)), bound)
          << "element (" << r << "," << j << ")";
    }
  }
  // Padding rows beyond K must be zero (the dot kernels read them).
  for (int j = 0; j < p.cols; ++j) {
    for (int t = p.rows; t < p.kpad; ++t) {
      ASSERT_EQ(p.q[static_cast<std::size_t>(j) * p.kpad + t], 0);
    }
  }
}

TEST(PackedInt8, AllZeroColumnGetsZeroScaleAndZeroOutput) {
  Mat w(8, 2);
  for (int r = 0; r < 8; ++r) w.at(r, 1) = 1.f + static_cast<float>(r);
  const PackedMat p = pack_int8(w);
  EXPECT_EQ(p.scales[0], 0.f);
  EXPECT_GT(p.scales[1], 0.f);
  const Mat back = unpack_int8(p);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(back.at(r, 0), 0.f);
}

TEST(PackedInt8, MatmulBitIdenticalAcrossBackends) {
  Rng rng(19);
  const Mat x = random_mat(9, 33, rng, /*zero_fraction=*/0.2f);
  const Mat w = random_mat(33, 21, rng);
  const PackedMat p = pack_int8(w);
  Mat scalar_out(9, 21);
  {
    BackendGuard guard(SimdBackend::kScalar);
    packed_matmul(x, p, &scalar_out);
  }
  if (!simd_avx2_supported()) GTEST_SKIP() << "CPU lacks AVX2+FMA";
  Mat avx2_out(9, 21);
  {
    BackendGuard guard(SimdBackend::kAvx2);
    packed_matmul(x, p, &avx2_out);
  }
  // Integer accumulation is associative: the backends must agree exactly.
  EXPECT_EQ(scalar_out.v, avx2_out.v);
}

TEST(PackedInt8, MatmulTracksFp32WithinQuantizationBudget) {
  Rng rng(23);
  const Mat x = random_mat(7, 64, rng);
  const Mat w = random_mat(64, 24, rng);
  const PackedMat p = pack_int8(w);
  Mat fp32(7, 24), int8(7, 24);
  gemm_nn(7, 64, 24, x.v.data(), w.v.data(), fp32.v.data());
  packed_matmul(x, p, &int8);
  // Error budget (docs/PERFORMANCE.md §4): each operand quantizes to within
  // half a step, so per product the error is <= 0.5*(sx|w| + sw|x|) plus a
  // second-order term; summed over k it stays well under 2% of the row's
  // magnitude for unit-normal data. Enforce a generous but finite bound.
  for (int i = 0; i < 7; ++i) {
    float ref_mag = 0.f, err = 0.f;
    for (int j = 0; j < 24; ++j) {
      ref_mag += std::fabs(fp32.at(i, j));
      err += std::fabs(fp32.at(i, j) - int8.at(i, j));
    }
    EXPECT_LE(err, 0.02f * ref_mag + 1e-3f) << "row " << i;
  }
}

TEST(PackedInt8, ZeroRowsShortCircuitAndNonFiniteRowsPropagate) {
  Mat w(4, 3);
  for (int r = 0; r < 4; ++r) {
    for (int j = 0; j < 3; ++j) w.at(r, j) = 0.25f * static_cast<float>(r - j);
  }
  const PackedMat p = pack_int8(w);
  Mat x(2, 4);
  // Row 0 all zero; row 1 carries an Inf.
  x.at(1, 0) = std::numeric_limits<float>::infinity();
  x.at(1, 1) = 1.f;
  Mat out(2, 3);
  packed_matmul(x, p, &out);
  for (int j = 0; j < 3; ++j) EXPECT_EQ(out.at(0, j), 0.f);
  bool any_nonfinite = false;
  for (int j = 0; j < 3; ++j) {
    any_nonfinite = any_nonfinite || !std::isfinite(out.at(1, j));
  }
  EXPECT_TRUE(any_nonfinite) << "Inf input must not be silently saturated";
}

TEST(PackedInt8, MatmulOpPrefersPackedOperand) {
  Rng rng(29);
  Tensor x = make_tensor(random_mat(5, 16, rng));
  Tensor w = make_tensor(random_mat(16, 8, rng), /*requires_grad=*/true);
  const Tensor fp32 = matmul(x, w);
  w->packed = std::make_shared<PackedMat>(pack_int8(w->value));
  const Tensor int8 = matmul(x, w);
  w->packed.reset();
  // The two paths must differ somewhere (quantization is lossy) yet stay
  // close; exact agreement would mean the packed branch never ran.
  float max_abs_diff = 0.f;
  for (std::size_t t = 0; t < fp32->value.v.size(); ++t) {
    max_abs_diff = std::max(
        max_abs_diff, std::fabs(fp32->value.v[t] - int8->value.v[t]));
  }
  EXPECT_GT(max_abs_diff, 0.f);
  // k=16 unit-normal: outputs are ~N(0, 4), per-element quantization error
  // a few percent of that at worst.
  EXPECT_LT(max_abs_diff, 0.2f);
}

}  // namespace
}  // namespace nettag
