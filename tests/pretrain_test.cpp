// Tests for the pre-training objectives: losses decrease, ablation switches
// work, and the expression encoder actually learns equivalence structure.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pretrain.hpp"
#include "expr/transform.hpp"

namespace nettag {
namespace {

Corpus tiny_corpus(std::uint64_t seed = 23, bool physical = true) {
  Rng rng(seed);
  CorpusOptions co;
  co.designs_per_family = 1;
  co.with_physical = physical;
  return build_corpus(co, rng);
}

PretrainOptions fast_options() {
  PretrainOptions po;
  po.expr_steps = 25;
  po.tag_steps = 20;
  po.aux_steps = 8;
  po.max_expressions = 300;
  po.max_cones = 30;
  return po;
}

TEST(Pretrain, LossesDecrease) {
  Rng rng(1);
  Corpus corpus = tiny_corpus();
  NetTag model(NetTagConfig{}, 7);
  const PretrainReport rep = pretrain(model, corpus, fast_options(), rng);
  EXPECT_GT(rep.expr_dataset_size, 0u);
  EXPECT_GT(rep.cones_used, 0u);
  EXPECT_LT(rep.expr_loss_last, rep.expr_loss_first);
  EXPECT_LT(rep.tag_loss_last, rep.tag_loss_first);
}

TEST(Pretrain, ExprEncoderLearnsEquivalence) {
  // After step 1, an expression should be closer (cosine) to its
  // equivalence-transformed version than to an unrelated expression.
  Rng rng(2);
  Corpus corpus = tiny_corpus(29, /*physical=*/false);
  NetTag model(NetTagConfig{}, 7);
  PretrainOptions po = fast_options();
  po.expr_steps = 120;
  po.tag_steps = 0;
  po.objective_align = false;
  pretrain(model, corpus, po, rng);

  auto cosine = [](const Mat& a, const Mat& b) {
    double dot = 0, na = 0, nb = 0;
    for (int j = 0; j < a.cols; ++j) {
      dot += a.at(0, j) * b.at(0, j);
      na += a.at(0, j) * a.at(0, j);
      nb += b.at(0, j) * b.at(0, j);
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };
  Rng trng(3);
  int wins = 0;
  const int trials = 20;
  const auto exprs = collect_expressions(corpus, 2, 100);
  ASSERT_GE(exprs.size(), 2u);
  for (int t = 0; t < trials; ++t) {
    const std::string& e = exprs[trng.index(exprs.size())];
    const std::string pos =
        to_string(random_equivalent(parse_expr(e), trng, 3));
    const std::string& neg = exprs[trng.index(exprs.size())];
    const Mat me = model.expr_llm().encode(e)->value;
    const Mat mp = model.expr_llm().encode(pos)->value;
    const Mat mn = model.expr_llm().encode(neg)->value;
    if (cosine(me, mp) >= cosine(me, mn)) ++wins;
  }
  EXPECT_GE(wins, trials * 3 / 5);
}

TEST(Pretrain, AblationFlagsRespected) {
  // With every objective off, step 2 performs no updates (loss stays 0).
  Rng rng(4);
  Corpus corpus = tiny_corpus();
  NetTag model(NetTagConfig{}, 7);
  PretrainOptions po = fast_options();
  po.objective_expr_cl = false;
  po.objective_mask = false;
  po.objective_graph_cl = false;
  po.objective_size = false;
  po.objective_align = false;
  const PretrainReport rep = pretrain(model, corpus, po, rng);
  EXPECT_EQ(rep.expr_dataset_size, 0u);
  EXPECT_FLOAT_EQ(rep.tag_loss_first, 0.f);
  EXPECT_FLOAT_EQ(rep.tag_loss_last, 0.f);
}

TEST(Pretrain, SingleObjectiveArmsRun) {
  // Each objective must be able to carry step 2 alone.
  Corpus corpus = tiny_corpus();
  for (int arm = 0; arm < 4; ++arm) {
    Rng rng(5 + static_cast<std::uint64_t>(arm));
    NetTag model(NetTagConfig{}, 7);
    PretrainOptions po = fast_options();
    po.objective_mask = arm == 0;
    po.objective_graph_cl = arm == 1;
    po.objective_size = arm == 2;
    po.objective_align = arm == 3;
    const PretrainReport rep = pretrain(model, corpus, po, rng);
    EXPECT_GT(rep.tag_loss_first, 0.f) << "arm " << arm;
  }
}

TEST(Pretrain, WithoutTextAblationRuns) {
  Rng rng(9);
  Corpus corpus = tiny_corpus();
  NetTagConfig cfg;
  cfg.use_text_attributes = false;
  NetTag model(cfg, 7);
  const PretrainReport rep = pretrain(model, corpus, fast_options(), rng);
  // No text attributes -> step 1 skipped entirely.
  EXPECT_EQ(rep.expr_dataset_size, 0u);
  EXPECT_GT(rep.cones_used, 0u);
}

TEST(Pretrain, TrainingChangesEmbeddings) {
  Rng rng(10);
  Corpus corpus = tiny_corpus();
  NetTag model(NetTagConfig{}, 7);
  const Netlist& cone = corpus.designs[0].cones[0].cone;
  const Mat before = model.embed(cone).cls;
  pretrain(model, corpus, fast_options(), rng);
  model.clear_text_cache();
  const Mat after = model.embed(cone).cls;
  double diff = 0;
  for (int j = 0; j < before.cols; ++j) diff += std::abs(before.at(0, j) - after.at(0, j));
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace nettag
