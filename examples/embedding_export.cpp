// Embedding-export CLI: the workflow a downstream user runs to get NetTAG
// embeddings for their own netlists (the paper releases the pre-trained
// model for exactly this).
//
// Usage:
//   embedding_export pretrain <model_prefix>
//       generates a corpus, pre-trains NetTAG, saves the weights.
//   embedding_export embed <model_prefix> <netlist.nl> <out.csv>
//       loads the model, reads a structural netlist (io.hpp format), and
//       writes per-gate embeddings plus the circuit embedding as CSV.
//
// Run with no arguments for a self-contained demo that does both on a
// generated design.
#include <fstream>
#include <iostream>

#include "core/pretrain.hpp"
#include "netlist/io.hpp"

using namespace nettag;

namespace {

int do_pretrain(const std::string& prefix) {
  Rng rng(1);
  CorpusOptions co;
  co.designs_per_family = 4;
  std::cout << "building corpus + pre-training...\n";
  const Corpus corpus = build_corpus(co, rng);
  NetTag model(NetTagConfig{}, 7);
  PretrainOptions po;
  pretrain(model, corpus, po, rng);
  model.save(prefix);
  std::cout << "saved " << prefix << ".exprllm.bin / .tagformer.bin\n";
  return 0;
}

int do_embed(const std::string& prefix, const std::string& netlist_path,
             const std::string& csv_path) {
  NetTag model(NetTagConfig{}, 7);
  model.load(prefix);
  std::ifstream in(netlist_path);
  if (!in) {
    std::cerr << "cannot open netlist " << netlist_path << "\n";
    return 1;
  }
  const Netlist nl = read_netlist(in);
  nl.validate();
  const NetTag::ConeEmbedding emb = model.embed(nl);
  const Mat circuit = model.embed_circuit(nl);

  std::ofstream out(csv_path);
  if (!out) {
    std::cerr << "cannot open output " << csv_path << "\n";
    return 1;
  }
  out << "gate,type";
  for (int j = 0; j < emb.nodes.cols; ++j) out << ",e" << j;
  out << "\n";
  for (const Gate& g : nl.gates()) {
    out << g.name << "," << cell_info(g.type).name;
    for (int j = 0; j < emb.nodes.cols; ++j) {
      out << "," << emb.nodes.at(static_cast<int>(g.id), j);
    }
    out << "\n";
  }
  out << "__circuit__,-";
  for (int j = 0; j < circuit.cols; ++j) out << "," << circuit.at(0, j);
  out << "\n";
  std::cout << "wrote " << nl.size() << "+1 embedding rows to " << csv_path
            << "\n";
  return 0;
}

int demo() {
  const std::string prefix = "/tmp/nettag_export_demo";
  // Reduced budget for the demo.
  Rng rng(1);
  CorpusOptions co;
  co.designs_per_family = 2;
  const Corpus corpus = build_corpus(co, rng);
  NetTag model(NetTagConfig{}, 7);
  PretrainOptions po;
  po.expr_steps = 40;
  po.tag_steps = 30;
  po.aux_steps = 10;
  pretrain(model, corpus, po, rng);
  model.save(prefix);

  // Dump a generated design to disk and embed it through the CLI path.
  const std::string nl_path = "/tmp/nettag_export_demo.nl";
  {
    std::ofstream out(nl_path);
    write_netlist(out, corpus.designs.front().gen.netlist);
  }
  return do_embed(prefix, nl_path, "/tmp/nettag_export_demo.csv");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return demo();
  const std::string mode = argv[1];
  if (mode == "pretrain" && argc == 3) return do_pretrain(argv[2]);
  if (mode == "embed" && argc == 5) return do_embed(argv[2], argv[3], argv[4]);
  std::cerr << "usage:\n  " << argv[0] << "                 (demo)\n  "
            << argv[0] << " pretrain <model_prefix>\n  " << argv[0]
            << " embed <model_prefix> <netlist.nl> <out.csv>\n";
  return 2;
}
