// Reverse engineering scenario (the paper's Task 1 use case): given a
// flattened sea-of-gates netlist with no module hierarchy, recover which
// RTL block each gate implements — adders, multipliers, comparators,
// control logic — the GNN-RE problem that matters for hardware security
// and IP-theft analysis.
//
// Pipeline: pre-train NetTAG -> embed every gate of an unseen design ->
// fine-tune a small MLP head on labeled training designs -> report the
// per-block recovery on the held-out design.
#include <iomanip>
#include <iostream>
#include <map>

#include "core/pretrain.hpp"
#include "tasks/labels.hpp"
#include "tasks/task1.hpp"

using namespace nettag;

int main() {
  Rng rng(2025);
  CorpusOptions co;
  co.designs_per_family = 4;
  std::cout << "Generating designs and pre-training NetTAG (about half a "
               "minute)...\n";
  const Corpus corpus = build_corpus(co, rng);
  NetTag model(NetTagConfig{}, 7);
  PretrainOptions po;
  po.expr_steps = 120;
  po.tag_steps = 80;
  po.aux_steps = 30;
  pretrain(model, corpus, po, rng);

  Task1Options options;
  options.num_test_designs = 4;
  const Task1Result res = run_task1(model, corpus, options, rng);

  std::cout << "\n== reverse-engineering report ==\n";
  for (const Task1Row& row : res.rows) {
    std::cout << "design " << row.design << ": recovered "
              << std::fixed << std::setprecision(0)
              << 100 * row.nettag.accuracy << "% of gate functions "
              << "(supervised GNN baseline: " << 100 * row.gnnre.accuracy
              << "%)\n";
  }
  std::cout << "average: NetTAG " << 100 * res.nettag_avg.accuracy
            << "% vs GNN-RE " << 100 * res.gnnre_avg.accuracy << "%\n";

  // Detailed per-class view on one design: which blocks were found?
  const Netlist& nl = corpus.designs.front().gen.netlist;
  std::vector<int> rows, labels;
  task1_gate_labels(nl, &rows, &labels);
  std::map<int, int> per_class;
  for (int l : labels) per_class[l]++;
  std::cout << "\nblock inventory of " << nl.name() << " (ground truth):\n";
  for (const auto& [cls, count] : per_class) {
    std::cout << "  " << task1_classes()[static_cast<std::size_t>(cls)] << ": "
              << count << " gates\n";
  }
  return 0;
}
