// Early PPA estimation scenario (the paper's Tasks 3-4 use case): a designer
// wants post-layout power/area/timing feedback *before* running the
// multi-hour P&R flow. NetTAG embeddings of the freshly synthesized netlist,
// plus the synthesis tool's own reports, predict sign-off metrics in
// milliseconds.
#include <iomanip>
#include <iostream>

#include "core/pretrain.hpp"
#include "physical/flow.hpp"
#include "tasks/task3.hpp"
#include "tasks/task4.hpp"
#include "util/timer.hpp"

using namespace nettag;

int main() {
  Rng rng(31337);
  CorpusOptions co;
  co.designs_per_family = 6;
  std::cout << "Building corpus with physical-design labels and pre-training "
               "(about a minute)...\n";
  const Corpus corpus = build_corpus(co, rng);
  NetTag model(NetTagConfig{}, 7);
  PretrainOptions po;
  po.expr_steps = 120;
  po.tag_steps = 100;
  po.aux_steps = 30;
  pretrain(model, corpus, po, rng);

  std::cout << std::fixed << std::setprecision(2);

  // --- circuit-level area/power forecast ------------------------------------
  Task4Options t4;
  const Task4Result ppa = run_task4(model, corpus, t4, rng);
  std::cout << "\n== post-layout area forecast (held-out designs) ==\n"
            << "  synthesis tool estimate: MAPE "
            << ppa.area_w_opt.tool.mape << "% (w/ layout optimization)\n"
            << "  NetTAG forecast:         MAPE "
            << ppa.area_w_opt.nettag.mape << "%\n";
  std::cout << "== post-layout power forecast ==\n"
            << "  synthesis tool estimate: MAPE "
            << ppa.power_w_opt.tool.mape << "%\n"
            << "  NetTAG forecast:         MAPE "
            << ppa.power_w_opt.nettag.mape << "%\n";

  // --- endpoint timing forecast ----------------------------------------------
  Task3Options t3;
  t3.num_test_designs = 4;
  const Task3Result slack = run_task3(model, corpus, t3, rng);
  std::cout << "\n== sign-off endpoint slack forecast ==\n"
            << "  NetTAG: R " << slack.nettag_avg.pearson_r << ", MAPE "
            << slack.nettag_avg.mape << "%\n"
            << "  timing GNN baseline: R " << slack.gnn_avg.pearson_r
            << ", MAPE " << slack.gnn_avg.mape << "%\n";

  // --- what the designer saves -----------------------------------------------
  const Netlist& nl = corpus.designs.front().gen.netlist;
  Rng flow_rng(1);
  Timer t;
  run_physical_flow(nl, flow_rng, /*optimize=*/true, 0.0, /*passes=*/40);
  const double pr_seconds = t.seconds();
  t.reset();
  (void)model.embed_circuit(nl);
  const double inference_seconds = t.seconds();
  std::cout << "\n== runtime on " << nl.name() << " (single small design; "
            << "the speedup grows with design size — see "
            << "bench_table6_runtime) ==\n"
            << "  full P&R flow: " << pr_seconds << "s\n"
            << "  NetTAG inference: " << inference_seconds << "s\n";
  return 0;
}
