// Quickstart: the 5-minute tour of the NetTAG public API.
//
//  1. Build (or load) a gate-level netlist.
//  2. Formulate it as a text-attributed graph (TAG).
//  3. Chunk a sequential design into register cones.
//  4. Pre-train NetTAG on a small corpus and generate embeddings at all
//     three granularities: gates, register cones, whole circuits.
//  5. Save / reload the pre-trained model.
#include <iostream>

#include "core/pretrain.hpp"
#include "netlist/io.hpp"

using namespace nettag;

int main() {
  // -- 1. A netlist can be built programmatically ...
  Netlist nl("fig3_example");
  const GateId r1 = nl.add_port("R1");
  const GateId r2 = nl.add_port("R2");
  const GateId u1 = nl.add_gate(CellType::kXor2, "U1", {r1, r2});
  const GateId u2 = nl.add_gate(CellType::kInv, "U2", {r2});
  const GateId u3 = nl.add_gate(CellType::kNor2, "U3", {u1, u2});
  nl.mark_output(u3);
  std::cout << "== structural netlist ==\n" << netlist_to_string(nl);

  // ... or parsed back from its textual form.
  const Netlist reloaded = netlist_from_string(netlist_to_string(nl));

  // -- 2. TAG formulation: every gate gets a text attribute combining its
  //       2-hop symbolic expression with physical characteristics.
  const TagGraph tag = build_tag(reloaded, /*k_hop=*/2);
  std::cout << "\n== gate text attributes ==\n";
  for (const auto& attr : tag.attrs) std::cout << "  " << attr << "\n";

  // -- 3. Generate a small corpus (the data-collection substitute) and
  //       chunk a sequential design into register cones.
  Rng rng(42);
  CorpusOptions corpus_options;
  corpus_options.designs_per_family = 2;
  const Corpus corpus = build_corpus(corpus_options, rng);
  const Netlist& seq = corpus.designs.front().gen.netlist;
  const auto cones = extract_register_cones(seq, /*max_gates=*/120);
  std::cout << "\n== cone chunking ==\n"
            << seq.name() << ": " << seq.size() << " gates, "
            << cones.size() << " register cones\n";

  // -- 4. Pre-train NetTAG (scaled-down budget for the quickstart).
  NetTag model(NetTagConfig{}, /*seed=*/7);
  PretrainOptions po;
  po.expr_steps = 30;
  po.tag_steps = 30;
  po.aux_steps = 10;
  const PretrainReport report = pretrain(model, corpus, po, rng);
  std::cout << "\n== pre-training ==\n"
            << "expression contrastive loss: " << report.expr_loss_first
            << " -> " << report.expr_loss_last << "\n"
            << "TAGFormer multi-objective loss: " << report.tag_loss_first
            << " -> " << report.tag_loss_last << "\n";

  // Embeddings at three granularities.
  const NetTag::ConeEmbedding cone_emb = model.embed(cones.front().cone);
  const Mat circuit_emb = model.embed_circuit(seq);
  std::cout << "\n== embeddings ==\n"
            << "gate embeddings: " << cone_emb.nodes.rows << " x "
            << cone_emb.nodes.cols << "\n"
            << "cone [CLS] embedding: 1 x " << cone_emb.cls.cols << "\n"
            << "circuit embedding: 1 x " << circuit_emb.cols
            << " (sum of cone embeddings)\n";

  // -- 5. Persistence.
  model.save("/tmp/nettag_quickstart");
  NetTag restored(NetTagConfig{}, /*seed=*/7);
  restored.load("/tmp/nettag_quickstart");
  std::cout << "\nmodel saved and reloaded from /tmp/nettag_quickstart.*\n";
  return 0;
}
