// Fig. 8 demo: reasoning about a netlist's arithmetic function.
//
// The paper shows that an LLM asked to interpret a flattened netlist fails,
// but succeeds when NetTAG first annotates each gate with its functional
// block. We reproduce the *integration*: build the paper's demo circuit
// (compare two 2-bit values, add them, multiply them, select a result by the
// comparison), run NetTAG gate-function identification, and feed the
// predicted block inventory to a rule-based narrator that plays the LLM's
// role. Without the annotations the narrator only sees an undifferentiated
// gate soup; with them it recovers the module's arithmetic behaviour.
#include <iostream>
#include <map>

#include "core/pretrain.hpp"
#include "rtlgen/synthesizer.hpp"
#include "tasks/finetune.hpp"
#include "tasks/labels.hpp"
#include "tasks/task1.hpp"

using namespace nettag;

namespace {

/// The paper's demo module: out = (a < b) ? (a + b) : (a * b).
Netlist demo_circuit() {
  Synthesizer syn("demo_arith");
  Bus a = syn.input("a", 3);
  Bus b = syn.input("b", 3);
  Bus lt = syn.cmp_lt(a, b);
  Bus sum = syn.add(a, b);
  Bus prod = syn.mul(a, b);
  Bus out = syn.mux(prod, sum, lt);
  syn.mark_outputs(out);
  return syn.take_netlist();
}

/// Rule-based narrator standing in for the LLM of Fig. 8. It only states
/// what the provided block inventory supports.
void narrate(const std::map<std::string, int>& block_counts) {
  if (block_counts.empty()) {
    std::cout << "  \"This is a flat netlist of generic logic gates. I can "
                 "describe the gate types,\n   but I cannot determine the "
                 "arithmetic function they implement.\"\n";
    return;
  }
  std::cout << "  \"The module contains:";
  for (const auto& [block, count] : block_counts) {
    std::cout << " " << block << " logic (" << count << " gates),";
  }
  std::cout << "\n   so it";
  bool first = true;
  auto say = [&](const char* clause) {
    std::cout << (first ? " " : ", and ") << clause;
    first = false;
  };
  if (block_counts.count("comparator")) say("compares two operands");
  if (block_counts.count("adder")) say("computes their sum");
  if (block_counts.count("multiplier")) say("computes their product");
  if (block_counts.count("interconnect")) {
    say("selects among the results (multiplexing)");
  }
  if (first) say("performs combinational logic I cannot further classify");
  std::cout << ".\"\n";
}

}  // namespace

int main() {
  // Pre-train NetTAG and a Task-1 head on generated designs.
  Rng rng(88);
  CorpusOptions co;
  co.designs_per_family = 4;
  std::cout << "Pre-training NetTAG for gate-function identification...\n";
  const Corpus corpus = build_corpus(co, rng);
  NetTag model(NetTagConfig{}, 7);
  PretrainOptions po;
  po.expr_steps = 120;
  po.tag_steps = 80;
  po.aux_steps = 30;
  pretrain(model, corpus, po, rng);

  // Fine-tune the gate-function head on every generated design.
  std::vector<Mat> x_parts;
  std::vector<int> y;
  for (const DesignSample& d : corpus.designs) {
    const NetTag::ConeEmbedding emb = model.embed(d.gen.netlist);
    std::vector<int> rows, labels;
    task1_gate_labels(d.gen.netlist, &rows, &labels);
    if (rows.empty()) continue;
    Mat joined(static_cast<int>(rows.size()), emb.nodes.cols + emb.inputs.cols);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (int j = 0; j < emb.nodes.cols; ++j) {
        joined.at(static_cast<int>(i), j) = emb.nodes.at(rows[i], j);
      }
      for (int j = 0; j < emb.inputs.cols; ++j) {
        joined.at(static_cast<int>(i), emb.nodes.cols + j) = emb.inputs.at(rows[i], j);
      }
    }
    x_parts.push_back(std::move(joined));
    y.insert(y.end(), labels.begin(), labels.end());
  }
  FinetuneOptions fo;
  fo.class_weighted = true;  // rare blocks (comparators, muxes) matter here
  fo.steps = 2000;
  ClassifierHead head(model.embedding_dim() + model.tag_in_dim(),
                      static_cast<int>(task1_classes().size()), fo, rng);
  head.fit(vstack(x_parts), y, rng);

  // The demo netlist, flattened: no hierarchy, no labels at inference time.
  const Netlist demo = demo_circuit();
  std::cout << "\ndemo netlist: " << demo.size() << " gates, flattened (out = "
            << "(a<b) ? a+b : a*b)\n";

  std::cout << "\n-- LLM asked to interpret the raw flattened netlist "
               "(paper: fails) --\n";
  narrate({});

  // NetTAG gate-function identification on the demo circuit.
  const NetTag::ConeEmbedding emb = model.embed(demo);
  std::vector<int> rows, truth;
  task1_gate_labels(demo, &rows, &truth);
  Mat x(static_cast<int>(rows.size()), emb.nodes.cols + emb.inputs.cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (int j = 0; j < emb.nodes.cols; ++j) {
      x.at(static_cast<int>(i), j) = emb.nodes.at(rows[i], j);
    }
    for (int j = 0; j < emb.inputs.cols; ++j) {
      x.at(static_cast<int>(i), emb.nodes.cols + j) = emb.inputs.at(rows[i], j);
    }
  }
  const std::vector<int> pred = head.predict(x);
  std::map<std::string, int> inventory;
  for (int p : pred) inventory[task1_classes()[static_cast<std::size_t>(p)]]++;

  std::cout << "\n-- NetTAG per-gate function identification --\n";
  int correct = 0;
  std::map<std::string, int> truth_inventory;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (pred[i] == truth[i]) ++correct;
    truth_inventory[task1_classes()[static_cast<std::size_t>(truth[i])]]++;
  }
  for (const auto& [block, count] : inventory) {
    std::cout << "  identified " << count << " gates as '" << block << "'\n";
  }
  std::cout << "  ground truth inventory:";
  for (const auto& [block, count] : truth_inventory) {
    std::cout << " " << block << "=" << count;
  }
  std::cout << "\n  (per-gate agreement: " << correct << "/" << rows.size()
            << ")\n";

  std::cout << "\n-- LLM asked again, now with NetTAG's annotations "
               "(paper: succeeds) --\n";
  narrate(inventory);
  return 0;
}
