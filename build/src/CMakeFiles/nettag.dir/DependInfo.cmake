
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset.cpp" "src/CMakeFiles/nettag.dir/core/dataset.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/core/dataset.cpp.o.d"
  "/root/repo/src/core/nettag.cpp" "src/CMakeFiles/nettag.dir/core/nettag.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/core/nettag.cpp.o.d"
  "/root/repo/src/core/pretrain.cpp" "src/CMakeFiles/nettag.dir/core/pretrain.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/core/pretrain.cpp.o.d"
  "/root/repo/src/core/tag.cpp" "src/CMakeFiles/nettag.dir/core/tag.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/core/tag.cpp.o.d"
  "/root/repo/src/expr/bdd.cpp" "src/CMakeFiles/nettag.dir/expr/bdd.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/expr/bdd.cpp.o.d"
  "/root/repo/src/expr/expr.cpp" "src/CMakeFiles/nettag.dir/expr/expr.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/expr/expr.cpp.o.d"
  "/root/repo/src/expr/simplify.cpp" "src/CMakeFiles/nettag.dir/expr/simplify.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/expr/simplify.cpp.o.d"
  "/root/repo/src/expr/tokenizer.cpp" "src/CMakeFiles/nettag.dir/expr/tokenizer.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/expr/tokenizer.cpp.o.d"
  "/root/repo/src/expr/transform.cpp" "src/CMakeFiles/nettag.dir/expr/transform.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/expr/transform.cpp.o.d"
  "/root/repo/src/model/gcn.cpp" "src/CMakeFiles/nettag.dir/model/gcn.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/model/gcn.cpp.o.d"
  "/root/repo/src/model/graph.cpp" "src/CMakeFiles/nettag.dir/model/graph.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/model/graph.cpp.o.d"
  "/root/repo/src/model/tagformer.cpp" "src/CMakeFiles/nettag.dir/model/tagformer.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/model/tagformer.cpp.o.d"
  "/root/repo/src/model/text_encoder.cpp" "src/CMakeFiles/nettag.dir/model/text_encoder.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/model/text_encoder.cpp.o.d"
  "/root/repo/src/netlist/aig.cpp" "src/CMakeFiles/nettag.dir/netlist/aig.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/aig.cpp.o.d"
  "/root/repo/src/netlist/cell_library.cpp" "src/CMakeFiles/nettag.dir/netlist/cell_library.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/cell_library.cpp.o.d"
  "/root/repo/src/netlist/cone.cpp" "src/CMakeFiles/nettag.dir/netlist/cone.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/cone.cpp.o.d"
  "/root/repo/src/netlist/equiv.cpp" "src/CMakeFiles/nettag.dir/netlist/equiv.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/equiv.cpp.o.d"
  "/root/repo/src/netlist/expr_synth.cpp" "src/CMakeFiles/nettag.dir/netlist/expr_synth.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/expr_synth.cpp.o.d"
  "/root/repo/src/netlist/io.cpp" "src/CMakeFiles/nettag.dir/netlist/io.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/io.cpp.o.d"
  "/root/repo/src/netlist/liberty.cpp" "src/CMakeFiles/nettag.dir/netlist/liberty.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/liberty.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/nettag.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog_writer.cpp" "src/CMakeFiles/nettag.dir/netlist/verilog_writer.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/netlist/verilog_writer.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/nettag.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/nettag.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/nettag.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/nn/tensor.cpp.o.d"
  "/root/repo/src/physical/analysis.cpp" "src/CMakeFiles/nettag.dir/physical/analysis.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/physical/analysis.cpp.o.d"
  "/root/repo/src/physical/flow.cpp" "src/CMakeFiles/nettag.dir/physical/flow.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/physical/flow.cpp.o.d"
  "/root/repo/src/physical/placement.cpp" "src/CMakeFiles/nettag.dir/physical/placement.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/physical/placement.cpp.o.d"
  "/root/repo/src/physical/spef.cpp" "src/CMakeFiles/nettag.dir/physical/spef.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/physical/spef.cpp.o.d"
  "/root/repo/src/rtlgen/generator.cpp" "src/CMakeFiles/nettag.dir/rtlgen/generator.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/rtlgen/generator.cpp.o.d"
  "/root/repo/src/rtlgen/optimize.cpp" "src/CMakeFiles/nettag.dir/rtlgen/optimize.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/rtlgen/optimize.cpp.o.d"
  "/root/repo/src/rtlgen/synthesizer.cpp" "src/CMakeFiles/nettag.dir/rtlgen/synthesizer.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/rtlgen/synthesizer.cpp.o.d"
  "/root/repo/src/tasks/aig_encoders.cpp" "src/CMakeFiles/nettag.dir/tasks/aig_encoders.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/aig_encoders.cpp.o.d"
  "/root/repo/src/tasks/finetune.cpp" "src/CMakeFiles/nettag.dir/tasks/finetune.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/finetune.cpp.o.d"
  "/root/repo/src/tasks/gbdt.cpp" "src/CMakeFiles/nettag.dir/tasks/gbdt.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/gbdt.cpp.o.d"
  "/root/repo/src/tasks/labels.cpp" "src/CMakeFiles/nettag.dir/tasks/labels.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/labels.cpp.o.d"
  "/root/repo/src/tasks/task1.cpp" "src/CMakeFiles/nettag.dir/tasks/task1.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/task1.cpp.o.d"
  "/root/repo/src/tasks/task2.cpp" "src/CMakeFiles/nettag.dir/tasks/task2.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/task2.cpp.o.d"
  "/root/repo/src/tasks/task3.cpp" "src/CMakeFiles/nettag.dir/tasks/task3.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/task3.cpp.o.d"
  "/root/repo/src/tasks/task4.cpp" "src/CMakeFiles/nettag.dir/tasks/task4.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/tasks/task4.cpp.o.d"
  "/root/repo/src/util/metrics.cpp" "src/CMakeFiles/nettag.dir/util/metrics.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/util/metrics.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/nettag.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/nettag.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/nettag.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
