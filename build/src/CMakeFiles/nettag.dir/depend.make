# Empty dependencies file for nettag.
# This may be replaced when dependencies are built.
