file(REMOVE_RECURSE
  "libnettag.a"
)
