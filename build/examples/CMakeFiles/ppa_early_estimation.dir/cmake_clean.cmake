file(REMOVE_RECURSE
  "CMakeFiles/ppa_early_estimation.dir/ppa_early_estimation.cpp.o"
  "CMakeFiles/ppa_early_estimation.dir/ppa_early_estimation.cpp.o.d"
  "ppa_early_estimation"
  "ppa_early_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppa_early_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
