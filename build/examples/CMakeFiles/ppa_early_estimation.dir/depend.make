# Empty dependencies file for ppa_early_estimation.
# This may be replaced when dependencies are built.
