# Empty dependencies file for embedding_export.
# This may be replaced when dependencies are built.
