file(REMOVE_RECURSE
  "CMakeFiles/embedding_export.dir/embedding_export.cpp.o"
  "CMakeFiles/embedding_export.dir/embedding_export.cpp.o.d"
  "embedding_export"
  "embedding_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
