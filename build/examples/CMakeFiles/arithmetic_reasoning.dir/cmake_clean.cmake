file(REMOVE_RECURSE
  "CMakeFiles/arithmetic_reasoning.dir/arithmetic_reasoning.cpp.o"
  "CMakeFiles/arithmetic_reasoning.dir/arithmetic_reasoning.cpp.o.d"
  "arithmetic_reasoning"
  "arithmetic_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arithmetic_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
