# Empty dependencies file for arithmetic_reasoning.
# This may be replaced when dependencies are built.
