# Empty compiler generated dependencies file for bench_fig5_aig_encoders.
# This may be replaced when dependencies are built.
