file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_aig_encoders.dir/bench_fig5_aig_encoders.cpp.o"
  "CMakeFiles/bench_fig5_aig_encoders.dir/bench_fig5_aig_encoders.cpp.o.d"
  "bench_fig5_aig_encoders"
  "bench_fig5_aig_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_aig_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
