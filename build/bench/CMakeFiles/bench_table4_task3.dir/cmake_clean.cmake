file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_task3.dir/bench_table4_task3.cpp.o"
  "CMakeFiles/bench_table4_task3.dir/bench_table4_task3.cpp.o.d"
  "bench_table4_task3"
  "bench_table4_task3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_task3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
