# Empty dependencies file for bench_table4_task3.
# This may be replaced when dependencies are built.
