# Empty dependencies file for bench_table3_task1.
# This may be replaced when dependencies are built.
