file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_task2.dir/bench_table4_task2.cpp.o"
  "CMakeFiles/bench_table4_task2.dir/bench_table4_task2.cpp.o.d"
  "bench_table4_task2"
  "bench_table4_task2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_task2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
