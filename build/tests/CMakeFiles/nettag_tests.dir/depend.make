# Empty dependencies file for nettag_tests.
# This may be replaced when dependencies are built.
