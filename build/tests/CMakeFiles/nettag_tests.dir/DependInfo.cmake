
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/artifacts_test.cpp" "tests/CMakeFiles/nettag_tests.dir/artifacts_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/artifacts_test.cpp.o.d"
  "/root/repo/tests/bdd_test.cpp" "tests/CMakeFiles/nettag_tests.dir/bdd_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/bdd_test.cpp.o.d"
  "/root/repo/tests/cone_aig_test.cpp" "tests/CMakeFiles/nettag_tests.dir/cone_aig_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/cone_aig_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/nettag_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/equiv_synth_test.cpp" "tests/CMakeFiles/nettag_tests.dir/equiv_synth_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/equiv_synth_test.cpp.o.d"
  "/root/repo/tests/expr_test.cpp" "tests/CMakeFiles/nettag_tests.dir/expr_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/expr_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/nettag_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/netlist_test.cpp" "tests/CMakeFiles/nettag_tests.dir/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/netlist_test.cpp.o.d"
  "/root/repo/tests/nn_test.cpp" "tests/CMakeFiles/nettag_tests.dir/nn_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/nn_test.cpp.o.d"
  "/root/repo/tests/physical_test.cpp" "tests/CMakeFiles/nettag_tests.dir/physical_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/physical_test.cpp.o.d"
  "/root/repo/tests/power_validation_test.cpp" "tests/CMakeFiles/nettag_tests.dir/power_validation_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/power_validation_test.cpp.o.d"
  "/root/repo/tests/pretrain_test.cpp" "tests/CMakeFiles/nettag_tests.dir/pretrain_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/pretrain_test.cpp.o.d"
  "/root/repo/tests/property_sweep_test.cpp" "tests/CMakeFiles/nettag_tests.dir/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/property_sweep_test.cpp.o.d"
  "/root/repo/tests/rtlgen_test.cpp" "tests/CMakeFiles/nettag_tests.dir/rtlgen_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/rtlgen_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/nettag_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/simplify_liberty_test.cpp" "tests/CMakeFiles/nettag_tests.dir/simplify_liberty_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/simplify_liberty_test.cpp.o.d"
  "/root/repo/tests/tasks_test.cpp" "tests/CMakeFiles/nettag_tests.dir/tasks_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/tasks_test.cpp.o.d"
  "/root/repo/tests/tokenizer_metrics_test.cpp" "tests/CMakeFiles/nettag_tests.dir/tokenizer_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/tokenizer_metrics_test.cpp.o.d"
  "/root/repo/tests/transform_test.cpp" "tests/CMakeFiles/nettag_tests.dir/transform_test.cpp.o" "gcc" "tests/CMakeFiles/nettag_tests.dir/transform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nettag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
