// Static verifier for emitted memory plans (the admission gate between the
// planner and the allocator).
//
// Independent of nn/memplan.cpp by construction: the verifier recomputes
// buffer use-lists directly from the tape (parent edges, backward execution
// order, and the per-op backward-read traits) rather than trusting the
// planner's liveness result, then re-checks the plan:
//
//   * every use of a buffer is dominated by its definition (parent edges
//     point backwards, backward events reference defined slots);
//   * no two buffers whose recomputed live ranges overlap in time share any
//     bytes in the slab;
//   * every offset is alignment-multiple and the buffer fits in the slab;
//   * the plan's slot tables are structurally consistent with the tape.
//
// A plan that fails any check is refused by the install path in nn/tape.cpp:
// the signature falls back to per-op heap allocation and the rejection is
// counted (plan::stats_snapshot().verifier_rejects).
#pragma once

#include <string>
#include <vector>

#include "nn/tape.hpp"

namespace nettag::plan {

struct PlanVerdict {
  bool ok = true;
  std::vector<std::string> errors;
  /// "ok" or a semicolon-joined error list (capped).
  std::string summary() const;
};

PlanVerdict verify_plan(const Tape& tape, const MemPlan& plan);

}  // namespace nettag::plan
