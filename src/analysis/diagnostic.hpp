// Diagnostic type and report container for NetTAG-Lint (src/analysis).
//
// A Diagnostic is one finding of one rule against one object (a gate, a TAG
// node, a cone, a design). Rules append to a LintReport; the report renders
// either as human-readable text (one line per finding, sorted by severity)
// or as machine JSON for CI gates (`nettag_lint --json`). Severity policy:
//
//   kError   — structurally invalid data; consuming it would poison training
//              or crash downstream passes. Pipeline seams throw on these and
//              `nettag_lint` exits nonzero.
//   kWarning — suspicious but consumable (e.g. fanout above the lint bound,
//              dead combinational logic the cleanup pass should have swept).
//   kInfo    — observations; never gate anything.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nettag {

enum class Severity { kInfo, kWarning, kError };

/// "info" / "warning" / "error".
const char* severity_name(Severity s);

/// One lint finding.
struct Diagnostic {
  std::string rule;     ///< rule id, e.g. "NL001"
  Severity severity = Severity::kInfo;
  std::string object;   ///< located object, e.g. "gate U3" or "cone b0/r12"
  std::string message;  ///< what is wrong and why it matters
};

/// Ordered collection of findings from one or more lint passes.
class LintReport {
 public:
  void add(std::string rule, Severity severity, std::string object,
           std::string message);

  /// Appends all of `other`, prefixing each object with "<context>: " so
  /// per-netlist findings stay attributable after corpus-level aggregation.
  void merge(const LintReport& other, const std::string& context = "");

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t count(Severity severity) const;
  std::size_t count_rule(const std::string& rule) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

 private:
  std::vector<Diagnostic> diags_;
};

/// Human-readable rendering: "error [NL001] gate U3: ..." lines, errors
/// first, followed by a one-line summary. Empty string for an empty report.
std::string to_text(const LintReport& report);

/// Machine rendering: {"diagnostics":[...],"summary":{...}}.
std::string to_json(const LintReport& report);

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Throws std::runtime_error carrying the rendered report when `report`
/// contains error-severity findings. The pipeline-seam guard: generation,
/// physical implementation, and corpus assembly all refuse to hand broken
/// structures downstream.
void enforce_clean(const LintReport& report, const std::string& context);

}  // namespace nettag
