// Always-on checked invariants (the release-build replacement for bare
// `assert`) plus the opt-in deep-check mode.
//
// NETTAG_CHECK(cond, msg) evaluates `cond` in every build type; on failure
// it throws nettag::CheckError carrying the stringified condition, the
// source location, and `msg` — which is only evaluated on failure, so call
// sites may build rich contextual strings (shapes, op names, step numbers)
// without paying for them on the hot path.
//
// Deep checks (NaN/Inf guards after every tensor forward and backward,
// gradient-norm sanity in the pre-training loops) are gated behind
// deep_checks_enabled(): the NETTAG_CHECK environment variable ("1"/"on"/
// "true" enables) or a runtime override from tests and tools.
#pragma once

#include <stdexcept>
#include <string>

namespace nettag {

/// Thrown by NETTAG_CHECK on violation. Derives from std::logic_error:
/// a failed check is a programming/data-integrity bug, not an input error.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// [[noreturn]] failure path for the macro below.
[[noreturn]] void check_fail(const char* condition, const char* file, int line,
                             const std::string& message);

/// True when expensive invariant checks are on: NETTAG_CHECK env var at
/// first query, unless overridden by set_deep_checks().
bool deep_checks_enabled();

/// Runtime override (tests, nettag_lint --deep). Wins over the env var.
void set_deep_checks(bool enabled);

}  // namespace nettag

/// Always-on invariant check with a lazily-built contextual message.
#define NETTAG_CHECK(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::nettag::check_fail(#cond, __FILE__, __LINE__, (msg));          \
    }                                                                  \
  } while (0)
