// NetTAG-Lint: rule-based static analysis over the three data layers the
// pipeline moves between — gate-level netlists, text-attributed graphs, and
// layout graphs — plus dataset-level RTL↔netlist boundary checks.
//
// Motivation (see docs/ARCHITECTURE.md §6): cross-stage alignment silently
// degrades when a generated netlist has combinational loops, floating nets,
// or cone/expression attribute drift. Lint is the DRC/LVS analog run before
// data reaches pre-training: structural errors throw at the pipeline seams
// (rtlgen, physical flow, corpus assembly), and the standalone `nettag_lint`
// tool gates CI on serialized datasets.
//
// Rules never throw on broken input (that is their job to report), never
// call Netlist::validate()/topo_order() (which throw), and degrade
// gracefully: a gate with an unknown cell type is reported once and skipped
// by arity/loop analysis instead of cascading.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/dataset.hpp"
#include "core/tag.hpp"
#include "netlist/netlist.hpp"
#include "physical/analysis.hpp"

namespace nettag {

struct LintOptions {
  /// NL007 bound: fanouts above this are flagged (generated designs peak
  /// well below; the physical flow buffers heavy nets down to 4-8).
  std::size_t max_fanout = 64;
  /// TG004 recompute depth — must match the k used to build the TAG.
  int k_hop = 2;
  /// Enables the expensive semantic rules (TG004 cone/expression
  /// equivalence). Off by default at pipeline seams; on in `nettag_lint
  /// --deep` and the deep CI gate.
  bool deep = false;
  /// Cap on TG004 semantic comparisons per graph (cones are small; flat
  /// circuits are sampled deterministically from node 0 upward).
  std::size_t max_expr_checks = 256;
  /// Rule ids to skip (e.g. {"NL004"} to allow dead logic).
  std::unordered_set<std::string> disabled;

  bool enabled(const char* rule) const { return !disabled.count(rule); }
};

/// One row of the rule catalog (docs/ARCHITECTURE.md §6 mirrors this).
struct RuleInfo {
  const char* id;
  const char* name;
  Severity severity;
  const char* family;       ///< "netlist" | "tag" | "layout" | "boundary"
  const char* description;
};

/// Every registered rule, in id order.
const std::vector<RuleInfo>& rule_catalog();

// --- rule families -----------------------------------------------------------

/// Netlist structural rules (NL001-NL009): combinational loops (SCC),
/// undriven input pins, multi-driven pins, floating combinational outputs,
/// unknown cell types, fanin range, fanout bound, name-index integrity,
/// fanin/fanout multiset consistency.
LintReport lint_netlist(const Netlist& nl, const LintOptions& options = {});

/// TAG consistency rules (TG001-TG006): attribute presence/tokenizability,
/// node-count agreement, edge ranges, physical-feature finiteness, edge-set
/// agreement with the source netlist, and (deep) semantic equivalence of the
/// rendered expression attribute against the recomputed k-hop cone function.
LintReport lint_tag(const Netlist& nl, const TagGraph& tag,
                    const LintOptions& options = {});

/// Layout-graph rules (LG001-LG003): finite features, non-negative
/// R/C/load/delay annotations, edge ranges.
LintReport lint_layout(const LayoutGraph& lg, const LintOptions& options = {});

/// RTL→gate boundary and label rules for one design (RT001-RT003, DS001)
/// plus structural lint of the design netlist, every cone netlist, and
/// every attached layout graph.
LintReport lint_design(const DesignSample& design,
                       const LintOptions& options = {});

/// Whole-corpus lint: lint_design over every design, objects prefixed with
/// the design name.
LintReport lint_corpus(const Corpus& corpus, const LintOptions& options = {});

}  // namespace nettag
