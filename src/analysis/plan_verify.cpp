#include "analysis/plan_verify.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "nn/liveness.hpp"

namespace nettag::plan {

namespace {

struct Buf {
  std::string what;  // "value[i]" / "grad[i]" / "temp[i][k]"
  std::size_t offset;
  std::size_t bytes;
  long def;
  long last;
};

bool bytes_overlap(const Buf& a, const Buf& b) {
  return a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
}

bool time_overlap(const Buf& a, const Buf& b) {
  return a.def <= b.last && b.def <= a.last;
}

}  // namespace

std::string PlanVerdict::summary() const {
  if (ok) return "ok";
  std::string s;
  const std::size_t cap = std::min<std::size_t>(errors.size(), 8);
  for (std::size_t i = 0; i < cap; ++i) {
    if (!s.empty()) s += "; ";
    s += errors[i];
  }
  if (errors.size() > cap) {
    s += "; +" + std::to_string(errors.size() - cap) + " more";
  }
  return s;
}

PlanVerdict verify_plan(const Tape& tape, const MemPlan& plan) {
  PlanVerdict v;
  const long n = static_cast<long>(tape.entries.size());
  auto fail = [&v](std::string msg) {
    v.ok = false;
    v.errors.push_back(std::move(msg));
  };

  if (plan.per_entry.size() != tape.entries.size()) {
    fail("slot table size " + std::to_string(plan.per_entry.size()) +
         " != tape length " + std::to_string(tape.entries.size()));
    return v;
  }
  if (plan.alignment == 0 || (plan.alignment & (plan.alignment - 1)) != 0) {
    fail("alignment " + std::to_string(plan.alignment) + " not a power of two");
    return v;
  }

  // --- def-dominates-use: structural edges point strictly backwards ---------
  for (long i = 0; i < n; ++i) {
    const TapeEntry& e = tape.entries[static_cast<std::size_t>(i)];
    for (const int p : e.parents) {
      if (p >= 0 && p >= i) {
        fail("entry " + std::to_string(i) + " uses parent slot " +
             std::to_string(p) + " not defined before it");
      }
    }
    if (plan.per_entry[static_cast<std::size_t>(i)].temps.size() !=
        e.temps.size()) {
      fail("entry " + std::to_string(i) + " temp slot count mismatch");
    }
  }
  for (const int slot : tape.bwd_order) {
    if (slot < 0 || slot >= n) {
      fail("backward event references undefined slot " + std::to_string(slot));
    }
  }
  for (const int slot : tape.bwd_roots) {
    if (slot >= n) {
      fail("backward root references undefined slot " + std::to_string(slot));
    }
  }
  for (const int slot : tape.kept) {
    if (slot < 0 || slot >= n) {
      fail("kept slot " + std::to_string(slot) + " out of range");
    }
  }
  if (!v.ok) return v;

  // --- recompute live ranges from first principles --------------------------
  // Use-lists are rebuilt here directly from tape edges + backward order +
  // the backward-read traits, independent of the planner's liveness pass.
  std::vector<long> bwd_time(static_cast<std::size_t>(n), -1);
  for (std::size_t j = 0; j < tape.bwd_order.size(); ++j) {
    auto& t = bwd_time[static_cast<std::size_t>(tape.bwd_order[j])];
    t = std::max(t, n + static_cast<long>(j));
  }
  std::vector<std::vector<long>> value_uses(static_cast<std::size_t>(n));
  std::vector<std::vector<long>> grad_uses(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const TapeEntry& e = tape.entries[ui];
    const BwdReads r = backward_reads(e.op);
    const long bt = bwd_time[ui];
    if (bt >= 0) {
      if (r.own_value) value_uses[ui].push_back(bt);
      grad_uses[ui].push_back(bt);  // closure reads its own output gradient
    }
    for (const int p : e.parents) {
      if (p < 0) continue;
      const auto up = static_cast<std::size_t>(p);
      value_uses[up].push_back(i);  // forward read
      if (bt >= 0) {
        if (r.parent_values) value_uses[up].push_back(bt);
        if (tape.entries[up].requires_grad) grad_uses[up].push_back(bt);
      }
    }
  }

  // Kept nodes and backward roots are caller-visible after the step (returned
  // embeddings, logged losses): their buffers count as used at the horizon,
  // so any plan sharing their bytes must be rejected.
  const long horizon = n + static_cast<long>(tape.bwd_order.size());
  for (const int slot : tape.kept) {
    const auto us = static_cast<std::size_t>(slot);
    value_uses[us].push_back(horizon);
    if (tape.entries[us].requires_grad) grad_uses[us].push_back(horizon);
  }
  for (const int slot : tape.bwd_roots) {
    if (slot >= 0) value_uses[static_cast<std::size_t>(slot)].push_back(horizon);
  }

  std::vector<Buf> bufs;
  auto add_buf = [&](std::string what, std::size_t offset, std::size_t bytes,
                     long def, const std::vector<long>& uses) {
    if (offset == kHeapSlot || bytes == 0) return;
    long last = def;
    for (const long u : uses) {
      if (u < def) {
        fail(what + " used at time " + std::to_string(u) +
             " before its definition at " + std::to_string(def));
      }
      last = std::max(last, u);
    }
    if (offset % plan.alignment != 0) {
      fail(what + " offset " + std::to_string(offset) + " misaligned");
    }
    if (offset + bytes > plan.slab_bytes) {
      fail(what + " [" + std::to_string(offset) + ", " +
           std::to_string(offset + bytes) + ") exceeds slab of " +
           std::to_string(plan.slab_bytes) + " bytes");
    }
    bufs.push_back({std::move(what), offset, bytes, def, last});
  };

  for (long i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const TapeEntry& e = tape.entries[ui];
    const MemPlan::Slots& s = plan.per_entry[ui];
    const std::size_t bytes = static_cast<std::size_t>(e.rows) *
                              static_cast<std::size_t>(e.cols) * sizeof(float);
    add_buf("value[" + std::to_string(i) + "]", s.value, bytes, i,
            value_uses[ui]);
    if (e.requires_grad) {
      add_buf("grad[" + std::to_string(i) + "]", s.grad, bytes, i,
              grad_uses[ui]);
    } else if (s.grad != kHeapSlot) {
      fail("grad[" + std::to_string(i) + "] planned for a no-grad entry");
    }
    for (std::size_t k = 0; k < e.temps.size(); ++k) {
      const std::size_t tb = static_cast<std::size_t>(e.temps[k].first) *
                             static_cast<std::size_t>(e.temps[k].second) *
                             sizeof(float);
      const long bt = bwd_time[ui];
      std::vector<long> uses;
      if (bt >= 0) uses.push_back(bt);
      add_buf("temp[" + std::to_string(i) + "][" + std::to_string(k) + "]",
              s.temps[k], tb, i, uses);
    }
  }

  // --- no two time-overlapping buffers share bytes --------------------------
  for (std::size_t a = 0; a < bufs.size(); ++a) {
    for (std::size_t b = a + 1; b < bufs.size(); ++b) {
      if (time_overlap(bufs[a], bufs[b]) && bytes_overlap(bufs[a], bufs[b])) {
        fail(bufs[a].what + " and " + bufs[b].what +
             " overlap in both live range and bytes");
      }
    }
  }
  return v;
}

}  // namespace nettag::plan
