#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace nettag {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "unknown";
}

void LintReport::add(std::string rule, Severity severity, std::string object,
                     std::string message) {
  Diagnostic d;
  d.rule = std::move(rule);
  d.severity = severity;
  d.object = std::move(object);
  d.message = std::move(message);
  diags_.push_back(std::move(d));
}

void LintReport::merge(const LintReport& other, const std::string& context) {
  diags_.reserve(diags_.size() + other.diags_.size());
  for (const Diagnostic& d : other.diags_) {
    Diagnostic copy = d;
    if (!context.empty()) copy.object = context + ": " + copy.object;
    diags_.push_back(std::move(copy));
  }
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::size_t LintReport::count_rule(const std::string& rule) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) ++n;
  }
  return n;
}

std::string to_text(const LintReport& report) {
  if (report.empty()) return "";
  // Stable sort by descending severity; ties keep discovery order.
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(report.size());
  for (const Diagnostic& d : report.diagnostics()) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return static_cast<int>(a->severity) >
                            static_cast<int>(b->severity);
                   });
  std::ostringstream out;
  for (const Diagnostic* d : sorted) {
    out << severity_name(d->severity) << " [" << d->rule << "] " << d->object
        << ": " << d->message << "\n";
  }
  out << report.count(Severity::kError) << " error(s), "
      << report.count(Severity::kWarning) << " warning(s), "
      << report.count(Severity::kInfo) << " info(s)\n";
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

std::string to_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!first) out << ",";
    first = false;
    out << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
        << severity_name(d.severity) << "\",\"object\":\""
        << json_escape(d.object) << "\",\"message\":\""
        << json_escape(d.message) << "\"}";
  }
  out << "],\"summary\":{\"errors\":" << report.count(Severity::kError)
      << ",\"warnings\":" << report.count(Severity::kWarning)
      << ",\"infos\":" << report.count(Severity::kInfo) << "}}";
  return out.str();
}

void enforce_clean(const LintReport& report, const std::string& context) {
  if (!report.has_errors()) return;
  throw std::runtime_error("lint failed (" + context + "):\n" +
                           to_text(report));
}

}  // namespace nettag
