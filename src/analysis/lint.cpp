#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <unordered_map>

#include "expr/expr.hpp"
#include "expr/tokenizer.hpp"
#include "model/graph.hpp"

namespace nettag {

namespace {

bool is_source_type(CellType t) {
  return t == CellType::kPort || t == CellType::kConst0 ||
         t == CellType::kConst1 || t == CellType::kDff;
}

/// True when the raw enum value is a member of CellType (a gate read from a
/// corrupted file or tampered in memory may carry anything).
bool known_type(const Gate& g) {
  return static_cast<unsigned>(g.type) <
         static_cast<unsigned>(kNumCellTypes);
}

std::string gate_obj(const Gate& g) {
  return (g.type == CellType::kDff ? "register " : "gate ") +
         (g.name.empty() ? "#" + std::to_string(g.id) : g.name);
}

// --- NL001: combinational loops via SCC --------------------------------------

/// Iterative Tarjan over the combinational subgraph (sources excluded: a
/// cycle through a DFF is legal sequential feedback). Reports one finding
/// per non-trivial SCC and per self-loop.
void rule_comb_loop(const Netlist& nl, LintReport& report) {
  const std::size_t n = nl.size();
  auto comb = [&](GateId id) {
    if (id < 0 || static_cast<std::size_t>(id) >= n) return false;
    const Gate& g = nl.gate(id);
    return known_type(g) && !is_source_type(g.type);
  };

  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<GateId> stack;
  int next_index = 0;

  struct Frame {
    GateId v;
    std::size_t child;
  };

  auto emit = [&](const std::vector<GateId>& scc) {
    std::ostringstream members;
    for (std::size_t i = 0; i < scc.size() && i < 8; ++i) {
      if (i) members << ", ";
      members << nl.gate(scc[i]).name;
    }
    if (scc.size() > 8) members << ", ... (" << scc.size() << " gates)";
    report.add("NL001", Severity::kError, gate_obj(nl.gate(scc.front())),
               "combinational loop through {" + members.str() +
                   "}: no topological order exists, simulation and k-hop "
                   "expression extraction would not terminate");
  };

  for (std::size_t root = 0; root < n; ++root) {
    const GateId r = static_cast<GateId>(root);
    if (!comb(r) || index[root] >= 0) continue;
    std::vector<Frame> frames{{r, 0}};
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::size_t v = static_cast<std::size_t>(f.v);
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(f.v);
        on_stack[v] = 1;
      }
      const Gate& g = nl.gate(f.v);
      bool descended = false;
      while (f.child < g.fanins.size()) {
        const GateId w = g.fanins[f.child++];
        if (!comb(w)) continue;
        const std::size_t wi = static_cast<std::size_t>(w);
        if (index[wi] < 0) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[wi]) lowlink[v] = std::min(lowlink[v], index[wi]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        std::vector<GateId> scc;
        for (;;) {
          const GateId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          scc.push_back(w);
          if (w == f.v) break;
        }
        const bool self_loop =
            scc.size() == 1 &&
            std::find(g.fanins.begin(), g.fanins.end(), f.v) != g.fanins.end();
        if (scc.size() > 1 || self_loop) {
          std::reverse(scc.begin(), scc.end());
          emit(scc);
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t p = static_cast<std::size_t>(frames.back().v);
        lowlink[p] = std::min(lowlink[p], lowlink[v]);
      }
    }
  }
}

// --- TG004 helper: the expression rendered into an attribute -----------------

/// Extracts the expression text from "... expr <name> = <expr>"; empty if
/// the attribute carries no expression clause.
std::string attr_expression(const std::string& attr) {
  const std::size_t at = attr.find(" expr ");
  if (at == std::string::npos) return "";
  const std::size_t eq = attr.find(" = ", at);
  if (eq == std::string::npos) return "";
  return attr.substr(eq + 3);
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"NL001", "comb-loop", Severity::kError, "netlist",
       "combinational cycle (SCC over logic gates, DFF/port boundaries cut)"},
      {"NL002", "undriven-pin", Severity::kError, "netlist",
       "gate has fewer connected input pins than its cell arity (incl. "
       "registers whose D pin was never driven)"},
      {"NL003", "multi-driven-pin", Severity::kError, "netlist",
       "gate has more connected input pins than its cell arity (double "
       "driver on one pin)"},
      {"NL004", "floating-net", Severity::kWarning, "netlist",
       "combinational gate output drives nothing and is not a primary "
       "output (dead logic the cleanup pass should have swept; unused "
       "ports/registers/constants are legal in generated designs)"},
      {"NL005", "unknown-cell", Severity::kError, "netlist",
       "cell type value outside the library enum (corrupt load or tamper)"},
      {"NL006", "fanin-range", Severity::kError, "netlist",
       "fanin gate id out of range"},
      {"NL007", "fanout-bound", Severity::kWarning, "netlist",
       "fanout exceeds the lint bound (electrically implausible; the "
       "physical flow buffers such nets)"},
      {"NL008", "name-collision", Severity::kError, "netlist",
       "empty instance name or name index not mapping back to the gate"},
      {"NL009", "fanout-mismatch", Severity::kError, "netlist",
       "fanout list is not the multiset of sink input pins (graph "
       "corruption; replace_fanin/connect_register invariant broken)"},
      {"TG001", "attr-missing", Severity::kError, "tag",
       "node text attribute empty or not tokenizable"},
      {"TG002", "node-count", Severity::kError, "tag",
       "attribute/feature row count disagrees with the netlist node count"},
      {"TG003", "edge-range", Severity::kError, "tag",
       "edge endpoint outside [0, num_nodes)"},
      {"TG004", "expr-mismatch", Severity::kError, "tag",
       "rendered expression attribute is not semantically equal to the "
       "recomputed k-hop cone function (deep mode only)"},
      {"TG005", "phys-nonfinite", Severity::kError, "tag",
       "physical feature row contains NaN/Inf"},
      {"TG006", "edge-set", Severity::kError, "tag",
       "TAG edge set disagrees with the netlist's driver->sink edges"},
      {"LG001", "feat-nonfinite", Severity::kError, "layout",
       "layout node feature contains NaN/Inf"},
      {"LG002", "feat-negative", Severity::kError, "layout",
       "negative R/C/load/delay annotation"},
      {"LG003", "edge-range", Severity::kError, "layout",
       "layout edge endpoint outside [0, num_nodes)"},
      {"RT001", "missing-provenance", Severity::kWarning, "boundary",
       "register has no aligned RTL cone text (RTL->gate boundary broken)"},
      {"RT002", "stale-provenance", Severity::kWarning, "boundary",
       "RTL provenance entry names a register absent from the netlist"},
      {"RT003", "port-width-gap", Severity::kWarning, "boundary",
       "bus port bit indices are not dense 0..W-1 (RTL bus width does not "
       "match its gate-level expansion)"},
      {"DS001", "label-nonfinite", Severity::kError, "boundary",
       "non-finite training label (slack/clock/area/power/runtime)"},
      {"DS002", "cone-register-missing", Severity::kError, "boundary",
       "cone sample's register name not found as a DFF in its cone netlist"},
  };
  return catalog;
}

LintReport lint_netlist(const Netlist& nl, const LintOptions& options) {
  LintReport report;
  const std::size_t n = nl.size();
  bool any_unknown = false, any_range = false;

  for (const Gate& g : nl.gates()) {
    if (!known_type(g)) {
      any_unknown = true;
      if (options.enabled("NL005")) {
        report.add("NL005", Severity::kError, gate_obj(g),
                   "unknown cell type value " +
                       std::to_string(static_cast<int>(g.type)) +
                       " (library has " + std::to_string(kNumCellTypes) +
                       " cells)");
      }
      continue;  // arity/fanout rules need cell_info; skip this gate
    }
    const CellInfo& info = cell_info(g.type);

    bool fanins_ok = true;
    for (GateId f : g.fanins) {
      if (f < 0 || static_cast<std::size_t>(f) >= n) {
        fanins_ok = false;
        any_range = true;
        if (options.enabled("NL006")) {
          report.add("NL006", Severity::kError, gate_obj(g),
                     "fanin id " + std::to_string(f) + " outside [0, " +
                         std::to_string(n) + ")");
        }
      }
    }

    const int arity = info.num_inputs;
    const int pins = static_cast<int>(g.fanins.size());
    if (pins < arity && options.enabled("NL002")) {
      report.add("NL002", Severity::kError, gate_obj(g),
                 g.type == CellType::kDff
                     ? std::string("D pin never driven (deferred "
                                   "connect_register missing)")
                     : std::to_string(pins) + " of " + std::to_string(arity) +
                           " input pins of " + info.name + " connected");
    } else if (pins > arity && options.enabled("NL003")) {
      report.add("NL003", Severity::kError, gate_obj(g),
                 std::to_string(pins) + " drivers for the " +
                     std::to_string(arity) + "-pin cell " + info.name +
                     " (multi-driven pin)");
    }

    if (!info.sequential && g.type != CellType::kPort &&
        g.type != CellType::kConst0 && g.type != CellType::kConst1 &&
        g.fanouts.empty() && !g.is_primary_output && fanins_ok &&
        options.enabled("NL004")) {
      report.add("NL004", Severity::kWarning, gate_obj(g),
                 std::string("output net of ") + info.name +
                     " floats: drives no pin and is not a primary output");
    }

    if (g.fanouts.size() > options.max_fanout && options.enabled("NL007")) {
      report.add("NL007", Severity::kWarning, gate_obj(g),
                 "fanout " + std::to_string(g.fanouts.size()) +
                     " exceeds lint bound " +
                     std::to_string(options.max_fanout));
    }

    if (options.enabled("NL008")) {
      if (g.name.empty()) {
        report.add("NL008", Severity::kError, gate_obj(g),
                   "empty instance name");
      } else if (nl.find(g.name) != g.id) {
        report.add("NL008", Severity::kError, gate_obj(g),
                   "name index does not map '" + g.name +
                       "' back to this gate (duplicate name or broken "
                       "index)");
      }
    }
  }

  // NL009 needs every fanin in range and every type known, else it cascades.
  if (!any_range && !any_unknown && options.enabled("NL009")) {
    std::vector<std::size_t> pin_count(n, 0);
    for (const Gate& g : nl.gates()) {
      for (GateId f : g.fanins) pin_count[static_cast<std::size_t>(f)]++;
    }
    for (const Gate& g : nl.gates()) {
      if (g.fanouts.size() != pin_count[static_cast<std::size_t>(g.id)]) {
        report.add("NL009", Severity::kError, gate_obj(g),
                   "fanout list holds " + std::to_string(g.fanouts.size()) +
                       " entries but " +
                       std::to_string(pin_count[static_cast<std::size_t>(g.id)]) +
                       " sink pins reference this net");
      }
    }
  }

  if (!any_range && !any_unknown && options.enabled("NL001")) {
    rule_comb_loop(nl, report);
  }
  return report;
}

LintReport lint_tag(const Netlist& nl, const TagGraph& tag,
                    const LintOptions& options) {
  LintReport report;
  const int n = tag.num_nodes();

  if (options.enabled("TG002")) {
    if (static_cast<std::size_t>(n) != nl.size()) {
      report.add("TG002", Severity::kError, "graph",
                 std::to_string(n) + " text attributes for " +
                     std::to_string(nl.size()) + " netlist gates");
    }
    if (tag.phys.rows != n) {
      report.add("TG002", Severity::kError, "graph",
                 "x_phys has " + std::to_string(tag.phys.rows) +
                     " rows for " + std::to_string(n) + " nodes");
    } else if (n > 0 && tag.phys.cols != netlist_phys_feature_dim()) {
      report.add("TG002", Severity::kError, "graph",
                 "x_phys has " + std::to_string(tag.phys.cols) +
                     " columns, expected " +
                     std::to_string(netlist_phys_feature_dim()));
    }
  }

  if (options.enabled("TG001")) {
    for (int i = 0; i < n; ++i) {
      const std::string& attr = tag.attrs[static_cast<std::size_t>(i)];
      if (attr.empty() || tokenize_text(attr).empty()) {
        report.add("TG001", Severity::kError, "node " + std::to_string(i),
                   attr.empty() ? "empty text attribute"
                                : "attribute tokenizes to nothing");
      }
    }
  }

  if (options.enabled("TG003")) {
    for (const auto& [u, v] : tag.edges) {
      if (u < 0 || u >= n || v < 0 || v >= n) {
        report.add("TG003", Severity::kError,
                   "edge " + std::to_string(u) + "->" + std::to_string(v),
                   "endpoint outside [0, " + std::to_string(n) + ")");
      }
    }
  }

  if (options.enabled("TG005")) {
    for (int i = 0; i < tag.phys.rows; ++i) {
      for (int j = 0; j < tag.phys.cols; ++j) {
        if (!std::isfinite(tag.phys.at(i, j))) {
          report.add("TG005", Severity::kError, "node " + std::to_string(i),
                     "x_phys[" + std::to_string(j) + "] is not finite");
          break;  // one finding per row is enough
        }
      }
    }
  }

  // Deeper structural/semantic rules only make sense against a netlist that
  // itself lints clean (a combinational loop would not even topo-sort).
  const bool nl_clean = !lint_netlist(nl, options).has_errors();

  if (nl_clean && static_cast<std::size_t>(n) == nl.size() &&
      options.enabled("TG006")) {
    auto expected = netlist_edges(nl);
    auto actual = tag.edges;
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    if (expected != actual) {
      report.add("TG006", Severity::kError, "graph",
                 "edge set disagrees with the netlist (" +
                     std::to_string(actual.size()) + " TAG edges vs " +
                     std::to_string(expected.size()) +
                     " netlist driver->sink edges)");
    }
  }

  if (options.deep && nl_clean && static_cast<std::size_t>(n) == nl.size() &&
      options.enabled("TG004")) {
    std::size_t checked = 0;
    for (int i = 0; i < n && checked < options.max_expr_checks; ++i) {
      const Gate& g = nl.gate(static_cast<GateId>(i));
      const std::string text =
          attr_expression(tag.attrs[static_cast<std::size_t>(i)]);
      if (text.empty()) continue;
      ++checked;
      std::string why;
      try {
        const ExprPtr claimed = parse_expr(text);
        const ExprPtr actual =
            khop_expression(nl, g.id, options.k_hop);
        if (!semantically_equal(claimed, actual)) {
          why = "attribute claims '" + text +
                "' but the recomputed " + std::to_string(options.k_hop) +
                "-hop cone function is '" + to_string(actual) + "'";
        }
      } catch (const std::exception& e) {
        why = "attribute expression '" + text +
              "' does not parse: " + e.what();
      }
      if (!why.empty()) {
        report.add("TG004", Severity::kError, gate_obj(g), why);
      }
    }
  }
  return report;
}

LintReport lint_layout(const LayoutGraph& lg, const LintOptions& options) {
  LintReport report;
  const int n = static_cast<int>(lg.node_feats.size());
  static const char* kFeatName[6] = {"wire_cap", "wire_res", "load",
                                     "stage_delay", "x", "y"};
  for (int i = 0; i < n; ++i) {
    const auto& f = lg.node_feats[static_cast<std::size_t>(i)];
    for (std::size_t j = 0; j < f.size(); ++j) {
      if (!std::isfinite(f[j]) && options.enabled("LG001")) {
        report.add("LG001", Severity::kError, "node " + std::to_string(i),
                   std::string(kFeatName[j]) + " is not finite");
      } else if (j < 4 && f[j] < 0.0 && options.enabled("LG002")) {
        report.add("LG002", Severity::kError, "node " + std::to_string(i),
                   std::string(kFeatName[j]) + " = " + std::to_string(f[j]) +
                       " is negative (parasitics and delays cannot be)");
      }
    }
  }
  if (options.enabled("LG003")) {
    for (const auto& [u, v] : lg.edges) {
      if (u < 0 || u >= n || v < 0 || v >= n) {
        report.add("LG003", Severity::kError,
                   "edge " + std::to_string(u) + "->" + std::to_string(v),
                   "endpoint outside [0, " + std::to_string(n) + ")");
      }
    }
  }
  return report;
}

namespace {

/// RT003: every multi-bit port bus "base[i]" must cover indices 0..W-1.
void rule_port_width(const Netlist& nl, LintReport& report,
                     const LintOptions& options) {
  if (!options.enabled("RT003")) return;
  struct BusBits {
    std::unordered_set<long> seen;
    long max_index = -1;
  };
  std::unordered_map<std::string, BusBits> buses;
  for (const Gate& g : nl.gates()) {
    if (g.type != CellType::kPort) continue;
    const std::size_t lb = g.name.find('[');
    if (lb == std::string::npos || g.name.back() != ']') continue;
    const std::string digits = g.name.substr(lb + 1, g.name.size() - lb - 2);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    BusBits& b = buses[g.name.substr(0, lb)];
    const long idx = std::stol(digits);
    b.seen.insert(idx);
    b.max_index = std::max(b.max_index, idx);
  }
  for (const auto& [base, bits] : buses) {
    if (static_cast<long>(bits.seen.size()) != bits.max_index + 1) {
      report.add("RT003", Severity::kWarning, "port bus " + base,
                 "bit indices cover " + std::to_string(bits.seen.size()) +
                     " of 0.." + std::to_string(bits.max_index) +
                     " — RTL bus width does not match its gate-level "
                     "expansion");
    }
  }
}

bool finite(double v) { return std::isfinite(v); }

}  // namespace

LintReport lint_design(const DesignSample& design, const LintOptions& options) {
  LintReport report;
  const Netlist& nl = design.gen.netlist;
  report.merge(lint_netlist(nl, options), "netlist");
  rule_port_width(nl, report, options);

  if (options.enabled("RT001")) {
    for (GateId r : nl.registers()) {
      if (!design.gen.reg_rtl.count(nl.gate(r).name)) {
        report.add("RT001", Severity::kWarning, gate_obj(nl.gate(r)),
                   "no aligned RTL cone text for this register");
      }
    }
  }
  if (options.enabled("RT002")) {
    for (const auto& [name, text] : design.gen.reg_rtl) {
      (void)text;
      const GateId id = nl.find(name);
      if (id == kNoGate || nl.gate(id).type != CellType::kDff) {
        report.add("RT002", Severity::kWarning, "register " + name,
                   "RTL provenance entry has no matching DFF in the "
                   "netlist");
      }
    }
  }

  if (options.enabled("DS001")) {
    const double labels[] = {design.area_wo_opt, design.power_wo_opt,
                             design.area_w_opt,  design.power_w_opt,
                             design.tool_area,   design.tool_power,
                             design.pr_runtime_seconds};
    for (double v : labels) {
      if (!finite(v)) {
        report.add("DS001", Severity::kError, "design labels",
                   "non-finite circuit-level label");
        break;
      }
    }
  }

  for (const ConeSample& cone : design.cones) {
    const std::string ctx = "cone " + cone.register_name;
    report.merge(lint_netlist(cone.cone, options), ctx);
    if (options.enabled("DS002")) {
      const GateId r = cone.cone.find(cone.register_name);
      if (r == kNoGate || cone.cone.gate(r).type != CellType::kDff) {
        report.add("DS002", Severity::kError, ctx,
                   "register '" + cone.register_name +
                       "' is not a DFF of its own cone netlist");
      }
    }
    if (options.enabled("DS001") &&
        (!finite(cone.slack_label) || !finite(cone.clock_period))) {
      report.add("DS001", Severity::kError, ctx,
                 "non-finite slack/clock label");
    }
    if (cone.has_layout) {
      report.merge(lint_layout(cone.layout, options), ctx);
    }
  }
  return report;
}

LintReport lint_corpus(const Corpus& corpus, const LintOptions& options) {
  LintReport report;
  for (const DesignSample& d : corpus.designs) {
    report.merge(lint_design(d, options), d.gen.netlist.name());
  }
  return report;
}

}  // namespace nettag
