#include "analysis/check.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace nettag {

void check_fail(const char* condition, const char* file, int line,
                const std::string& message) {
  std::string what = "NETTAG_CHECK failed: ";
  what += condition;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!message.empty()) {
    what += " — ";
    what += message;
  }
  throw CheckError(what);
}

namespace {

// -1 = unresolved, 0 = off, 1 = on. Atomic so worker threads may query
// concurrently with a test toggling the override.
std::atomic<int> g_deep_checks{-1};

int resolve_from_env() {
  const char* s = std::getenv("NETTAG_CHECK");
  if (s == nullptr) return 0;
  if (std::strcmp(s, "1") == 0 || std::strcmp(s, "on") == 0 ||
      std::strcmp(s, "true") == 0) {
    return 1;
  }
  return 0;
}

}  // namespace

bool deep_checks_enabled() {
  int v = g_deep_checks.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_from_env();
    g_deep_checks.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_deep_checks(bool enabled) {
  g_deep_checks.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace nettag
