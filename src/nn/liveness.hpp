// Liveness analysis over a recorded autograd tape.
//
// Timeline model: forward ops define buffers at times 0..N-1 in tape order;
// the j-th recorded backward event runs at time N+j. Every buffer gets a
// [def, last-use] interval:
//
//   value[i]  defined at i; used by each forward consumer j at time j, by
//             op i's own backward if its closure reads the output value
//             (tanh, sigmoid, softmax, normalize read o->value), and by each
//             consumer j's backward if that op's closure reads parent values
//             (matmul, mul, relu, gelu, layer_norm, mse read p->value).
//   grad[i]   defined (zero-filled) at i alongside the node; written by each
//             consumer's backward (gradient accumulation — repeated parents
//             simply accumulate twice into the same buffer) and read by op
//             i's own backward; dead after op i's backward event. A node
//             whose closure never ran this step (unreachable from the
//             backward roots, or an inference-only sweep) has grad dead at
//             its def.
//   temp[i,k] defined at i, read only by op i's backward closure.
//
// Which closures read which buffers comes from the per-op trait table
// (backward_reads); unknown op names get the fully conservative {true,true}.
#pragma once

#include <string>
#include <vector>

#include "nn/tape.hpp"

namespace nettag::plan {

/// What an op's backward closure reads beyond its own output gradient.
struct BwdReads {
  bool own_value = true;      ///< closure reads o->value
  bool parent_values = true;  ///< closure reads parent->value buffers
};

/// Trait lookup by op name; unknown names are fully conservative.
BwdReads backward_reads(const std::string& op);

struct Interval {
  long def = 0;
  long last = 0;
  bool overlaps(const Interval& o) const { return def <= o.last && o.def <= last; }
};

struct LivenessResult {
  std::vector<Interval> value;               ///< per tape entry
  std::vector<Interval> grad;                ///< valid iff entry requires_grad
  std::vector<std::vector<Interval>> temps;  ///< per entry, per temp
  long horizon = 0;                          ///< N + backward event count
};

LivenessResult analyze_liveness(const Tape& tape);

}  // namespace nettag::plan
