// Arena-backed allocator for Mat buffers (the storage half of the static
// memory planner; the analysis half lives in nn/tape.hpp + nn/liveness.hpp).
//
// Mat keeps an owning std::vector for its floats, but the vector's allocator
// is PlanAlloc: a stateless allocator whose behaviour is steered by a
// thread-local "armed" slot. When the planner has replayed a tape entry it
// arms the allocator with the planned slab address for the next buffer of the
// exact right size; the very next vector allocation of that size on that
// thread is served from the arena instead of the heap. Every other allocation
// — parameters, checkpoint staging, copies, anything unplanned — takes the
// ::operator new path and behaves exactly like std::allocator.
//
// Deallocation must be safe on any thread (serve hands result Mats across
// threads), so freed pointers are tested against a global lock-free slab
// registry: pointers inside a registered slab are no-ops (the arena recycles
// whole slabs wholesale at plan-scope boundaries), everything else is
// ::operator delete. Slabs are never returned to the OS; they stay registered
// and reachable for the life of the process, bounded by geometric growth.
#pragma once

#include <cstddef>
#include <vector>

namespace nettag::plan {

namespace detail {

/// Serves the armed slab pointer if `bytes` matches the armed size exactly
/// (consuming the arm), else nullptr. Counts arena-served allocations.
void* take_armed(std::size_t bytes) noexcept;

/// Heap fallback: ::operator new, counted as a Mat-buffer heap allocation.
void* heap_alloc(std::size_t bytes);

/// Frees `p` unless it lies inside a registered arena slab.
void release(void* p) noexcept;

}  // namespace detail

/// Arms the calling thread's allocator: the next PlanAlloc allocation of
/// exactly `bytes` bytes is served from `ptr`. A zero-byte arm is ignored.
void arm(void* ptr, std::size_t bytes) noexcept;

/// Clears any pending arm (idempotent). Called after every planned
/// allocation site so a skipped allocation can never leak an arm forward.
void disarm() noexcept;

/// Ensures the calling thread's arena slab holds at least `bytes` bytes and
/// returns its base, or nullptr if the slab registry is full. Growth
/// allocates a fresh slab (old slabs stay registered: stale Mats from the
/// previous plan scope may still point into them until they are destroyed).
char* thread_arena(std::size_t bytes);

/// True if `p` lies inside any registered arena slab.
bool pointer_in_slab(const void* p) noexcept;

// --- allocation counters (relaxed; exported via plan::stats_snapshot) -------
unsigned long long heap_mat_allocs() noexcept;    ///< vector buffers from new
unsigned long long arena_served_allocs() noexcept;///< vector buffers from slab
unsigned long long slab_bytes_reserved() noexcept;///< live arena capacity, all threads

/// Minimal allocator: std::allocator semantics plus the armed-slot fast path.
/// Stateless (all state is thread-local or global), so vectors move/swap
/// freely across planned and heap storage.
template <typename T>
struct PlanAlloc {
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  PlanAlloc() noexcept = default;
  template <typename U>
  PlanAlloc(const PlanAlloc<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (void* p = detail::take_armed(bytes)) return static_cast<T*>(p);
    return static_cast<T*>(detail::heap_alloc(bytes));
  }
  void deallocate(T* p, std::size_t) noexcept { detail::release(p); }

  friend bool operator==(const PlanAlloc&, const PlanAlloc&) noexcept { return true; }
  friend bool operator!=(const PlanAlloc&, const PlanAlloc&) noexcept { return false; }
};

/// The element storage type of Mat (see nn/tensor.hpp).
using FloatVec = std::vector<float, PlanAlloc<float>>;

}  // namespace nettag::plan
