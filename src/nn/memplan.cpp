#include "nn/memplan.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace nettag::plan {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t x) { return (x + kAlign - 1) / kAlign * kAlign; }

struct Placed {
  std::size_t offset;
  std::size_t bytes;
  Interval live;
};

bool bytes_overlap(std::size_t o1, std::size_t b1, std::size_t o2,
                   std::size_t b2) {
  return o1 < o2 + b2 && o2 < o1 + b1;
}

/// Lowest aligned offset where `bytes` fits without byte-overlapping any
/// already-placed buffer whose live interval intersects `live`. `placed`
/// must be sorted by offset: one pass bumping past time-overlapping
/// occupants then yields the lowest hole, with no per-call allocation.
std::size_t first_fit(const std::vector<Placed>& placed, std::size_t bytes,
                      const Interval& live) {
  std::size_t off = 0;
  for (const Placed& p : placed) {
    if (!p.live.overlaps(live)) continue;
    if (!bytes_overlap(off, bytes, p.offset, p.bytes)) continue;
    off = align_up(p.offset + p.bytes);
  }
  return off;
}

/// Inserts keeping `placed` sorted by offset (ties keep insertion order, so
/// identical tapes still produce identical plans).
void insert_sorted(std::vector<Placed>& placed, Placed p) {
  auto it = std::upper_bound(
      placed.begin(), placed.end(), p,
      [](const Placed& a, const Placed& b) { return a.offset < b.offset; });
  placed.insert(it, p);
}

}  // namespace

MemPlan plan_memory(const Tape& tape, const LivenessResult& live,
                    bool corrupt_for_test) {
  MemPlan plan;
  plan.alignment = kAlign;
  plan.per_entry.resize(tape.entries.size());

  struct Cand {
    std::size_t entry;
    bool is_grad;
    std::size_t bytes;
    Interval interval;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < tape.entries.size(); ++i) {
    const TapeEntry& e = tape.entries[i];
    const std::size_t bytes = static_cast<std::size_t>(e.rows) *
                              static_cast<std::size_t>(e.cols) * sizeof(float);
    plan.per_entry[i].temps.assign(e.temps.size(), kHeapSlot);
    if (bytes == 0) continue;
    if (e.value_planned) cands.push_back({i, false, bytes, live.value[i]});
    if (e.requires_grad) cands.push_back({i, true, bytes, live.grad[i]});
  }
  // Largest first; deterministic tie-break so identical tapes produce
  // identical plans.
  std::stable_sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    if (a.entry != b.entry) return a.entry < b.entry;
    return a.is_grad < b.is_grad;
  });

  std::vector<Placed> placed;
  placed.reserve(cands.size());
  std::size_t shared_end = 0;
  for (const Cand& c : cands) {
    const std::size_t off =
        corrupt_for_test ? 0 : first_fit(placed, c.bytes, c.interval);
    insert_sorted(placed, {off, c.bytes, c.interval});
    shared_end = std::max(shared_end, off + c.bytes);
    if (c.is_grad) {
      plan.per_entry[c.entry].grad = off;
    } else {
      plan.per_entry[c.entry].value = off;
    }
  }

  plan.buffers_planned = placed.size();
  for (std::size_t a = 0; a < placed.size(); ++a) {
    for (std::size_t b = 0; b < placed.size(); ++b) {
      if (a != b && bytes_overlap(placed[a].offset, placed[a].bytes,
                                  placed[b].offset, placed[b].bytes)) {
        ++plan.buffers_coalesced;
        break;
      }
    }
  }

  // Private region: temporaries never share bytes with anything.
  std::size_t cursor = align_up(shared_end);
  for (std::size_t i = 0; i < tape.entries.size(); ++i) {
    const TapeEntry& e = tape.entries[i];
    for (std::size_t k = 0; k < e.temps.size(); ++k) {
      const std::size_t bytes = static_cast<std::size_t>(e.temps[k].first) *
                                static_cast<std::size_t>(e.temps[k].second) *
                                sizeof(float);
      if (bytes == 0) continue;
      plan.per_entry[i].temps[k] = cursor;
      plan.buffers_planned += 1;
      cursor = align_up(cursor + bytes);
    }
  }
  plan.slab_bytes = cursor;
  return plan;
}

}  // namespace nettag::plan
