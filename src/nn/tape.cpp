#include "nn/tape.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "analysis/check.hpp"
#include "analysis/plan_verify.hpp"
#include "nn/arena.hpp"
#include "nn/liveness.hpp"
#include "nn/memplan.hpp"
#include "util/parallel.hpp"

namespace nettag::plan {

namespace {

constexpr std::size_t kMaxSignatures = 512;
constexpr std::size_t kMaxTapeOps = 100000;

enum class EntryState { kRecording, kRecorded, kReady, kDisabled };

struct Entry {
  EntryState state = EntryState::kRecording;
  Tape tape;
  std::shared_ptr<const MemPlan> plan;
  bool verifier_ok = false;
  std::string verdict;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<Entry>> map;
};

Registry& registry() {
  static auto* r = new Registry;  // leaked: outlives all scopes at shutdown
  return *r;
}

std::atomic<int> g_enabled{-1};  // -1 = env var not resolved yet
std::atomic<bool> g_corrupt{false};

std::atomic<unsigned long long> g_tapes_recorded{0};
std::atomic<unsigned long long> g_plans_installed{0};
std::atomic<unsigned long long> g_verifier_rejects{0};
std::atomic<unsigned long long> g_replays{0};
std::atomic<unsigned long long> g_divergences{0};
std::atomic<unsigned long long> g_buffers_planned{0};
std::atomic<unsigned long long> g_buffers_coalesced{0};

/// Runs liveness + planning + verification over a recorded tape and installs
/// the plan (or disables the signature on a failed verdict). Deferred to the
/// signature's first re-encounter so one-shot graphs — e.g. pre-training
/// steps whose sampled-batch signature never recurs — pay only the cheap
/// recording bookkeeping, never the planner. Caller holds the registry lock.
void plan_and_install(Entry& e) {
  const LivenessResult live = analyze_liveness(e.tape);
  MemPlan plan =
      plan_memory(e.tape, live, g_corrupt.load(std::memory_order_relaxed));
  const PlanVerdict verdict = verify_plan(e.tape, plan);
  e.verifier_ok = verdict.ok;
  e.verdict = verdict.summary();
  if (verdict.ok) {
    g_plans_installed.fetch_add(1, std::memory_order_relaxed);
    g_buffers_planned.fetch_add(plan.buffers_planned,
                                std::memory_order_relaxed);
    g_buffers_coalesced.fetch_add(plan.buffers_coalesced,
                                  std::memory_order_relaxed);
    e.plan = std::make_shared<const MemPlan>(std::move(plan));
    e.state = EntryState::kReady;
  } else {
    // Refused plan: the signature stays on per-op heap allocation.
    e.state = EntryState::kDisabled;
    g_verifier_rejects.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

struct PlanScope::Impl {
  std::string signature;
  std::shared_ptr<Entry> entry;
  bool recording = false;
  int unwind_depth = 0;
  // --- recording state ---
  Tape rec;
  std::vector<std::pair<int, int>> pending_temps;
  bool pending_value = false;
  int pending_r = 0;
  int pending_c = 0;
  // --- replay state ---
  std::shared_ptr<const MemPlan> plan;  // immutable once Ready
  const Tape* tape = nullptr;           // &entry->tape, immutable once Ready
  char* base = nullptr;
  std::size_t cap = 0;
  std::size_t cursor = 0;   // next tape entry to match
  std::size_t temp_i = 0;   // temps of the current entry consumed so far
  std::size_t root_i = 0;   // backward roots consumed so far
  bool diverged = false;
  // every planned node, for slot reset and divergence materialization
  std::vector<std::weak_ptr<Node>> nodes;
};

namespace {

thread_local PlanScope::Impl* t_scope = nullptr;

/// The active scope for planner hooks: none inside pool tasks, so graph
/// building dispatched to (or drained by) the thread pool is never taped.
PlanScope::Impl* cur() {
  PlanScope::Impl* s = t_scope;
  if (s == nullptr || ThreadPool::in_worker()) return nullptr;
  return s;
}

/// Copies `m`'s storage back to the heap if it was served from this scope's
/// arena slab. Used on divergence so no buffer can alias another.
void heapify(PlanScope::Impl* s, Mat& m) {
  if (m.v.empty()) return;
  const char* p = reinterpret_cast<const char*>(m.v.data());
  if (p < s->base || p >= s->base + s->cap) return;
  FloatVec tmp(m.v.begin(), m.v.end());  // allocator is disarmed: heap copy
  m.v.swap(tmp);
}

/// Replay diverged from the tape: copy every still-live planned buffer back
/// to the heap, stop serving the arena, and count the diagnostic. Execution
/// continues with per-op heap allocation (bit-identical, just slower).
void diverge(PlanScope::Impl* s) {
  if (s->diverged) return;
  s->diverged = true;
  g_divergences.fetch_add(1, std::memory_order_relaxed);
  disarm();
  for (auto& w : s->nodes) {
    if (auto n = w.lock()) {
      heapify(s, n->value);
      heapify(s, n->grad);
    }
  }
}

/// True when the current replay cursor entry matches (shape, parent slots).
/// Called before the op kernel runs, so a planned output buffer is only
/// handed out when every buffer the kernel will read is live at this tape
/// time under the installed plan.
bool replay_value_matches(PlanScope::Impl* s, int r, int c,
                          std::size_t n_parents,
                          const Node* const* parents) {
  const TapeEntry& e = s->tape->entries[s->cursor];
  if (e.rows != r || e.cols != c || !e.value_planned) return false;
  if (e.parents.size() != n_parents) return false;
  for (std::size_t k = 0; k < n_parents; ++k) {
    if (e.parents[k] != parents[k]->plan_slot) return false;
  }
  return true;
}

Mat replay_out(PlanScope::Impl* s, int r, int c, const Mat* copy_src,
               std::size_t n_parents, const Node* const* parents) {
  auto heap_out = [&]() { return copy_src ? Mat(*copy_src) : Mat(r, c); };
  if (s->diverged) return heap_out();
  if (s->cursor >= s->tape->entries.size() ||
      !replay_value_matches(s, r, c, n_parents, parents)) {
    diverge(s);
    return heap_out();
  }
  const std::size_t slot = s->plan->per_entry[s->cursor].value;
  const std::size_t bytes =
      static_cast<std::size_t>(r) * static_cast<std::size_t>(c) * sizeof(float);
  if (slot == kHeapSlot || bytes == 0) return heap_out();
  arm(s->base + slot, bytes);
  if (copy_src != nullptr) {
    Mat m;
    m.rows = r;
    m.cols = c;
    m.v = FloatVec(copy_src->v.begin(), copy_src->v.end());
    disarm();
    return m;
  }
  Mat m(r, c);
  disarm();
  return m;
}

Mat record_out(PlanScope::Impl* s, int r, int c, const Mat* copy_src) {
  s->pending_value = true;
  s->pending_r = r;
  s->pending_c = c;
  return copy_src ? Mat(*copy_src) : Mat(r, c);
}

}  // namespace

// --- global switches ---------------------------------------------------------

bool planning_enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* s = std::getenv("NETTAG_PLAN");
    v = (s != nullptr && s[0] == '0' && s[1] == '\0') ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_planning_enabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void set_test_plan_corruption(bool corrupt) {
  g_corrupt.store(corrupt, std::memory_order_relaxed);
}

void reset_for_tests() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.map.clear();
  g_tapes_recorded.store(0);
  g_plans_installed.store(0);
  g_verifier_rejects.store(0);
  g_replays.store(0);
  g_divergences.store(0);
  g_buffers_planned.store(0);
  g_buffers_coalesced.store(0);
}

Stats stats_snapshot() {
  Stats s;
  s.enabled = planning_enabled();
  s.tapes_recorded = g_tapes_recorded.load(std::memory_order_relaxed);
  s.plans_installed = g_plans_installed.load(std::memory_order_relaxed);
  s.verifier_rejects = g_verifier_rejects.load(std::memory_order_relaxed);
  s.replays = g_replays.load(std::memory_order_relaxed);
  s.divergences = g_divergences.load(std::memory_order_relaxed);
  s.buffers_planned = g_buffers_planned.load(std::memory_order_relaxed);
  s.buffers_coalesced = g_buffers_coalesced.load(std::memory_order_relaxed);
  s.mallocs_avoided = arena_served_allocs();
  s.heap_mat_allocs = heap_mat_allocs();
  s.slab_bytes = slab_bytes_reserved();
  return s;
}

// --- per-step scope ----------------------------------------------------------

PlanScope::PlanScope(std::string signature) {
  if (!planning_enabled() || deep_checks_enabled() ||
      ThreadPool::in_worker() || t_scope != nullptr) {
    return;
  }
  Registry& reg = registry();
  std::shared_ptr<Entry> entry;
  bool record = false;
  {
    std::lock_guard<std::mutex> lk(reg.mu);
    auto it = reg.map.find(signature);
    if (it == reg.map.end()) {
      if (reg.map.size() >= kMaxSignatures) return;
      entry = std::make_shared<Entry>();
      reg.map.emplace(signature, entry);
      record = true;  // this scope owns the recording
    } else {
      entry = it->second;
      // First re-encounter of a recorded signature: plan + verify now.
      if (entry->state == EntryState::kRecorded) plan_and_install(*entry);
      if (entry->state != EntryState::kReady) return;  // busy or disabled
    }
  }
  impl_ = std::make_unique<Impl>();
  impl_->signature = std::move(signature);
  impl_->entry = std::move(entry);
  impl_->unwind_depth = std::uncaught_exceptions();
  if (record) {
    impl_->recording = true;
  } else {
    impl_->plan = impl_->entry->plan;
    impl_->tape = &impl_->entry->tape;
    char* base = thread_arena(impl_->plan->slab_bytes);
    if (base == nullptr) {  // slab registry exhausted: replay without arena
      impl_.reset();
      return;
    }
    impl_->base = base;
    impl_->cap = impl_->plan->slab_bytes;
    g_replays.fetch_add(1, std::memory_order_relaxed);
  }
  t_scope = impl_.get();
}

PlanScope::~PlanScope() {
  if (!impl_) return;
  Impl* s = impl_.get();
  if (t_scope == s) t_scope = nullptr;
  disarm();
  const bool unwinding = std::uncaught_exceptions() > s->unwind_depth;
  // Slots must never leak into a later scope's parent matching, and any
  // planned node that outlives the step is copied back to the heap: the next
  // scope on this thread reuses the same arena slab. Well-structured steps
  // free their whole graph before the scope, so this usually copies nothing.
  for (auto& w : s->nodes) {
    if (auto n = w.lock()) {
      n->plan_slot = -1;
      if (!s->recording) {
        heapify(s, n->value);
        heapify(s, n->grad);
      }
    }
  }
  if (s->recording) {
    if (unwinding || s->rec.entries.empty() ||
        s->rec.entries.size() > kMaxTapeOps) {
      // Aborted, empty, or oversized recording: release the claim so a
      // later clean step may re-record this signature.
      std::lock_guard<std::mutex> lk(registry().mu);
      registry().map.erase(s->signature);
      return;
    }
    // Store the tape only; planning + verification run lazily at the
    // signature's first re-encounter (plan_and_install), so a signature
    // that is never seen again costs nothing beyond this bookkeeping.
    g_tapes_recorded.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(registry().mu);
    Entry& e = *s->entry;
    e.tape = std::move(s->rec);
    e.state = EntryState::kRecorded;
  } else {
    if (!s->diverged && !unwinding && s->cursor != s->tape->entries.size()) {
      // The step built fewer ops than the tape. Nothing stale was read (all
      // built ops matched), but the signature is unstable — disable it.
      diverge(s);
    }
    if (s->diverged) {
      std::lock_guard<std::mutex> lk(registry().mu);
      s->entry->state = EntryState::kDisabled;
      s->entry->verdict = "disabled after replay divergence";
    }
  }
}

// --- hooks called from nn/tensor.cpp -----------------------------------------

Mat out_mat(int r, int c, std::initializer_list<const Node*> parents) {
  PlanScope::Impl* s = cur();
  if (s == nullptr) return Mat(r, c);
  if (s->recording) return record_out(s, r, c, nullptr);
  return replay_out(s, r, c, nullptr, parents.size(), parents.begin());
}

Mat out_copy(const Mat& src, std::initializer_list<const Node*> parents) {
  PlanScope::Impl* s = cur();
  if (s == nullptr) return Mat(src);
  if (s->recording) return record_out(s, src.rows, src.cols, &src);
  return replay_out(s, src.rows, src.cols, &src, parents.size(),
                    parents.begin());
}

Mat out_mat(int r, int c, const std::vector<Tensor>& parents) {
  PlanScope::Impl* s = cur();
  if (s == nullptr) return Mat(r, c);
  if (s->recording) return record_out(s, r, c, nullptr);
  std::vector<const Node*> raw;
  raw.reserve(parents.size());
  for (const Tensor& p : parents) raw.push_back(p.get());
  return replay_out(s, r, c, nullptr, raw.size(), raw.data());
}

Mat tmp_mat(int r, int c) {
  PlanScope::Impl* s = cur();
  if (s == nullptr) return Mat(r, c);
  if (s->recording) {
    s->pending_temps.emplace_back(r, c);
    return Mat(r, c);
  }
  if (s->diverged) return Mat(r, c);
  if (s->cursor >= s->tape->entries.size()) {
    diverge(s);
    return Mat(r, c);
  }
  const TapeEntry& e = s->tape->entries[s->cursor];
  if (s->temp_i >= e.temps.size() || e.temps[s->temp_i].first != r ||
      e.temps[s->temp_i].second != c) {
    diverge(s);
    return Mat(r, c);
  }
  const std::size_t slot = s->plan->per_entry[s->cursor].temps[s->temp_i];
  ++s->temp_i;
  const std::size_t bytes =
      static_cast<std::size_t>(r) * static_cast<std::size_t>(c) * sizeof(float);
  if (slot == kHeapSlot || bytes == 0) return Mat(r, c);
  arm(s->base + slot, bytes);
  Mat m(r, c);
  disarm();
  return m;
}

int pre_op(const char* op, Mat& value, const std::vector<Tensor>& parents,
           bool requires_grad) {
  PlanScope::Impl* s = cur();
  if (s == nullptr) return -1;
  if (s->recording) {
    TapeEntry e;
    e.op = op;
    e.rows = value.rows;
    e.cols = value.cols;
    e.requires_grad = requires_grad;
    e.value_planned = s->pending_value && s->pending_r == value.rows &&
                      s->pending_c == value.cols;
    s->pending_value = false;
    e.parents.reserve(parents.size());
    for (const Tensor& p : parents) e.parents.push_back(p->plan_slot);
    e.temps = std::move(s->pending_temps);
    s->pending_temps.clear();
    s->rec.entries.push_back(std::move(e));
    return static_cast<int>(s->rec.entries.size()) - 1;
  }
  if (s->diverged) {
    heapify(s, value);
    return -1;
  }
  bool match = s->cursor < s->tape->entries.size();
  if (match) {
    const TapeEntry& e = s->tape->entries[s->cursor];
    match = e.op == op && e.rows == value.rows && e.cols == value.cols &&
            e.requires_grad == requires_grad &&
            e.parents.size() == parents.size() &&
            e.temps.size() == s->temp_i;  // every recorded temp was requested
    for (std::size_t k = 0; match && k < parents.size(); ++k) {
      match = e.parents[k] == parents[k]->plan_slot;
    }
  }
  if (!match) {
    diverge(s);
    heapify(s, value);
    return -1;
  }
  if (requires_grad) {
    const std::size_t slot = s->plan->per_entry[s->cursor].grad;
    const std::size_t bytes = static_cast<std::size_t>(value.rows) *
                              static_cast<std::size_t>(value.cols) *
                              sizeof(float);
    // The very next allocation is the node's eager gradient (Node ctor).
    if (slot != kHeapSlot && bytes > 0) arm(s->base + slot, bytes);
  }
  const int slot = static_cast<int>(s->cursor);
  ++s->cursor;
  s->temp_i = 0;
  return slot;
}

void post_op(int slot, const Tensor& node) {
  PlanScope::Impl* s = cur();
  if (s == nullptr) return;
  disarm();  // a zero-size or heap-slot gradient never consumed the arm
  if (slot < 0) return;
  node->plan_slot = slot;
  s->nodes.emplace_back(node);
}

void keep_alive(const Tensor& node) {
  PlanScope::Impl* s = cur();
  if (s == nullptr || node == nullptr) return;
  if (s->recording && node->plan_slot >= 0) {
    s->rec.kept.push_back(node->plan_slot);
  }
  // Replays inherit the pin from the installed plan: the liveness pass built
  // it with these slots held to the horizon, so there is nothing to do.
}

void on_backward_begin(Node* root) {
  PlanScope::Impl* s = cur();
  if (s == nullptr) return;
  if (s->recording) {
    s->rec.bwd_roots.push_back(root->plan_slot);
    return;
  }
  if (s->diverged) return;
  if (s->root_i >= s->tape->bwd_roots.size() ||
      s->tape->bwd_roots[s->root_i] != root->plan_slot) {
    // A backward sweep the tape did not see (or from a different root) would
    // read buffers the liveness model already declared dead — materialize
    // before any closure runs.
    diverge(s);
    return;
  }
  ++s->root_i;
}

void on_backward_exec(Node* node) {
  PlanScope::Impl* s = cur();
  if (s == nullptr || !s->recording) return;
  if (node->plan_slot >= 0) s->rec.bwd_order.push_back(node->plan_slot);
}

// --- introspection -----------------------------------------------------------

std::vector<TapeReport> tape_reports() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::vector<TapeReport> out;
  out.reserve(reg.map.size());
  for (const auto& [sig, entry] : reg.map) {
    TapeReport r;
    r.signature = sig;
    switch (entry->state) {
      case EntryState::kRecording: r.state = "recording"; break;
      case EntryState::kRecorded: r.state = "recorded"; break;
      case EntryState::kReady: r.state = "ready"; break;
      case EntryState::kDisabled: r.state = "disabled"; break;
    }
    r.tape = entry->tape;
    r.plan = entry->plan;
    r.verifier_ok = entry->verifier_ok;
    r.verifier_verdict = entry->verdict;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace nettag::plan
