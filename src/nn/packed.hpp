// Int8 packed-weight inference path (docs/PERFORMANCE.md §4).
//
// Modeled on marian-dev's ExpressionGraphPackable: at checkpoint-load time a
// one-shot walk over the model's parameter matrices repacks every eligible
// weight into a quantized, GEMM-friendly layout and attaches it to the
// parameter's graph node. The fp32 values stay untouched — training, Adam
// state, serialization, and the bit-identical resume contract never see the
// packed copy — and the autograd matmul transparently prefers the packed
// operand for its forward value when one is present.
//
// Packing format (PackedMat):
//   * the weight W (K x M, as consumed by x·W) is stored TRANSPOSED: one
//     int8 row of K values per output column, so the inner product walks
//     both operands contiguously;
//   * rows are padded with zeros to a multiple of 32 (one AVX2 register of
//     int8), so the microkernel needs no tail;
//   * symmetric per-output-column scales: scale_j = max|W[:,j]| / 127,
//     q = round(w / scale_j) in [-127, 127]. Activations are quantized
//     dynamically per input row with the same symmetric rule, so
//     out[i,j] ~= (sx_i * scale_j) * sum_p xq[i,p] * wq[j,p] with the sum
//     in exact int32 arithmetic.
//
// Accuracy: quantization error per weight is bounded by scale_j/2, i.e.
// ~0.4% of the column's absmax; the serve-path drift budget this implies is
// documented (and enforced by tests) in docs/PERFORMANCE.md §5.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace nettag {

class NetTag;

struct PackedMat {
  int rows = 0;  ///< K: fp32 weight rows (the contraction dimension)
  int cols = 0;  ///< M: fp32 weight cols (output channels)
  int kpad = 0;  ///< rows rounded up to a multiple of 32
  /// cols x kpad int8 values; row j holds column j of the fp32 weight.
  std::vector<std::int8_t> q;
  /// One dequantization scale per output column (0 for all-zero columns).
  std::vector<float> scales;

  std::size_t bytes() const {
    return q.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
};

/// Largest packable contraction dimension: guarantees the int32 accumulator
/// cannot overflow (kMaxPackRows/2 pair-sums of at most 127*127*2 each).
constexpr int kMaxPackRows = 1 << 15;

/// Quantizes and transposes one weight matrix. NETTAG_CHECKs rows in
/// [1, kMaxPackRows].
PackedMat pack_int8(const Mat& w);

/// Dequantizes back to fp32 (testing / diagnostics). Every element satisfies
/// |w - unpack(pack(w))[p][j]| <= scales[j] / 2.
Mat unpack_int8(const PackedMat& p);

/// out[n x m] = x[n x k] * W via the int8 path (out is overwritten).
/// Dynamically quantizes each x row (symmetric absmax/127), runs int32 dot
/// products against the packed rows, rescales to fp32. Dispatches between
/// the AVX2 maddubs-style microkernel and a portable int loop with the same
/// NETTAG_SIMD policy as the fp32 GEMM — both orders are exact in int32, so
/// the int8 path is bit-identical across backends.
void packed_matmul(const Mat& x, const PackedMat& w, Mat* out);

/// Result of a model packing walk.
struct PackStats {
  std::size_t packed = 0;   ///< matrices that received an int8 copy
  std::size_t skipped = 0;  ///< vectors/scalars/oversized matrices left fp32
  std::size_t bytes = 0;    ///< total packed bytes attached
};

/// Walks every ExprLLM + TAGFormer parameter and attaches an int8 packed
/// copy to each eligible weight matrix (>= 2 rows and >= 2 cols — biases,
/// layer-norm gains and other 1 x D vectors stay fp32 and are skipped).
/// Parameters consumed by non-GEMM ops (embedding gathers) carry an unused
/// packed copy; the memory cost is ~25% of fp32 and noted in the docs.
/// Idempotent: repacking replaces prior packed copies.
PackStats pack_model_weights(NetTag& model);

}  // namespace nettag
