#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "analysis/check.hpp"
#include "nn/gemm.hpp"
#include "nn/packed.hpp"
#include "nn/tape.hpp"
#include "util/parallel.hpp"

namespace nettag {

namespace {

/// "RxC" shape string for check messages.
std::string sh(const Mat& m) {
  return std::to_string(m.rows) + "x" + std::to_string(m.cols);
}

/// Deep-mode guard: every entry of `m` must be finite.
void check_finite(const Mat& m, const char* op, const char* what) {
  for (std::size_t i = 0; i < m.v.size(); ++i) {
    NETTAG_CHECK(std::isfinite(m.v[i]),
                 std::string(op) + ": non-finite " + what + " at element " +
                     std::to_string(i) + " of " + sh(m));
  }
}

/// Builds an op node: value + parents + a gradient closure that receives the
/// finished output node (so it can read out->grad). Parents are captured by
/// shared_ptr inside the node, keeping the graph alive until backward().
/// `op` names the operation in invariant-violation messages.
Tensor make_op(const char* op, Mat value, std::vector<Tensor> parents,
               std::function<void(Node*)> grad_fn) {
  if (deep_checks_enabled()) check_finite(value, op, "forward output");
  bool rg = false;
  for (const Tensor& p : parents) rg = rg || p->requires_grad;
  // Tape hook: records (or verifies on replay) this op and arms the planned
  // gradient buffer so the Node constructor's eager grad allocation below is
  // served from the arena. pre_op may also move `value` back to the heap if
  // the replay just diverged from its tape.
  const int plan_slot = plan::pre_op(op, value, parents, rg);
  auto node = std::make_shared<Node>(std::move(value), rg);
  node->op = op;
  if (rg) {
    node->parents = std::move(parents);
    Node* raw = node.get();
    node->backward_fn = [raw, fn = std::move(grad_fn)]() { fn(raw); };
  }
  plan::post_op(plan_slot, node);
  return node;
}

void accumulate(Node* p, const Mat& delta) {
  if (!p->requires_grad) return;
  p->ensure_grad();
  NETTAG_CHECK(p->grad.v.size() == delta.v.size(),
               "accumulate: gradient shape " + sh(p->grad) +
                   " vs delta shape " + sh(delta));
  float* g = p->grad.v.data();
  const float* d = delta.v.data();
  parallel_for(delta.v.size(), par::kMinOps,
               [g, d](std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i) g[i] += d[i];
               });
}

/// Row partition for per-row kernels (softmax, layernorm, ...): each row is
/// written by exactly one task, so results are bit-identical at any width.
void for_rows(int n, std::size_t per_row_cost, std::size_t min_ops,
              const std::function<void(int, int)>& body) {
  parallel_for(static_cast<std::size_t>(n), par::grain(per_row_cost, min_ops),
               [&body](std::size_t b, std::size_t e) {
                 body(static_cast<int>(b), static_cast<int>(e));
               });
}

/// Element partition for elementwise kernels.
void for_elems(std::size_t n, std::size_t min_ops,
               const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(n, min_ops, body);
}

}  // namespace

Tensor make_tensor(Mat m, bool requires_grad) {
  return std::make_shared<Node>(std::move(m), requires_grad);
}

Tensor make_param(int rows, int cols, Rng& rng, float scale) {
  Mat m(rows, cols);
  const float stddev = scale / std::sqrt(static_cast<float>(cols));
  for (float& x : m.v) x = static_cast<float>(rng.normal(0.0, stddev));
  return make_tensor(std::move(m), true);
}

Tensor scalar(float v) {
  Mat m(1, 1);
  m.v[0] = v;
  return make_tensor(std::move(m), false);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  NETTAG_CHECK(a->value.cols == b->value.rows,
               "matmul: inner dimensions differ: " + sh(a->value) + " x " +
                   sh(b->value));
  const int n = a->value.rows, k = a->value.cols, m = b->value.cols;
  Mat out = plan::out_mat(n, m, {a.get(), b.get()});
  if (b->packed) {
    // Serve-time int8 path (nn/packed.hpp): b carries a packed copy of its
    // fp32 weights. Inference-only — backward still reads the fp32 values.
    packed_matmul(a->value, *b->packed, &out);
  } else {
    gemm_nn(n, k, m, a->value.v.data(), b->value.v.data(), out.v.data());
  }
  Node* an = a.get();
  Node* bn = b.get();
  return make_op("matmul", std::move(out), {a, b}, [an, bn, n, k, m](Node* o) {
    const float* g = o->grad.v.data();
    if (an->requires_grad) {
      an->ensure_grad();
      // dA[i,p] = sum_j dOut[i,j] B[p,j]
      gemm_nt(n, k, m, g, bn->value.v.data(), an->grad.v.data());
    }
    if (bn->requires_grad) {
      bn->ensure_grad();
      // dB[p,j] = sum_i A[i,p] dOut[i,j]
      gemm_tn(n, k, m, an->value.v.data(), g, bn->grad.v.data());
    }
  });
}

Tensor add(const Tensor& a, const Tensor& b) {
  NETTAG_CHECK(
      a->value.rows == b->value.rows && a->value.cols == b->value.cols,
      "add: shape mismatch: " + sh(a->value) + " vs " + sh(b->value));
  Mat out = plan::out_copy(a->value, {a.get(), b.get()});
  {
    float* ov = out.v.data();
    const float* bv = b->value.v.data();
    for_elems(out.v.size(), par::kMinOps, [ov, bv](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) ov[i] += bv[i];
    });
  }
  Node* an = a.get();
  Node* bn = b.get();
  return make_op("add", std::move(out), {a, b}, [an, bn](Node* o) {
    accumulate(an, o->grad);
    accumulate(bn, o->grad);
  });
}

Tensor add_rowvec(const Tensor& a, const Tensor& b) {
  NETTAG_CHECK(b->value.rows == 1 && a->value.cols == b->value.cols,
               "add_rowvec: want NxD + 1xD, got " + sh(a->value) + " + " +
                   sh(b->value));
  Mat out = plan::out_copy(a->value, {a.get(), b.get()});
  const int n = out.rows, d = out.cols;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) out.at(i, j) += b->value.at(0, j);
  }
  Node* an = a.get();
  Node* bn = b.get();
  return make_op("add_rowvec", std::move(out), {a, b}, [an, bn, n, d](Node* o) {
    accumulate(an, o->grad);
    if (bn->requires_grad) {
      bn->ensure_grad();
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < d; ++j) bn->grad.at(0, j) += o->grad.at(i, j);
      }
    }
  });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  NETTAG_CHECK(
      a->value.rows == b->value.rows && a->value.cols == b->value.cols,
      "sub: shape mismatch: " + sh(a->value) + " vs " + sh(b->value));
  Mat out = plan::out_copy(a->value, {a.get(), b.get()});
  for (std::size_t i = 0; i < out.v.size(); ++i) out.v[i] -= b->value.v[i];
  Node* an = a.get();
  Node* bn = b.get();
  return make_op("sub", std::move(out), {a, b}, [an, bn](Node* o) {
    accumulate(an, o->grad);
    if (bn->requires_grad) {
      bn->ensure_grad();
      for (std::size_t i = 0; i < o->grad.v.size(); ++i) {
        bn->grad.v[i] -= o->grad.v[i];
      }
    }
  });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  NETTAG_CHECK(a->value.v.size() == b->value.v.size(),
               "mul: element count mismatch: " + sh(a->value) + " vs " +
                   sh(b->value));
  Mat out = plan::out_copy(a->value, {a.get(), b.get()});
  {
    float* ov = out.v.data();
    const float* bv = b->value.v.data();
    for_elems(out.v.size(), par::kMinOps, [ov, bv](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) ov[i] *= bv[i];
    });
  }
  Node* an = a.get();
  Node* bn = b.get();
  return make_op("mul", std::move(out), {a, b}, [an, bn](Node* o) {
    if (an->requires_grad) {
      an->ensure_grad();
      for_elems(o->grad.v.size(), par::kMinOps,
                [&](std::size_t i0, std::size_t i1) {
                  for (std::size_t i = i0; i < i1; ++i) {
                    an->grad.v[i] += o->grad.v[i] * bn->value.v[i];
                  }
                });
    }
    if (bn->requires_grad) {
      bn->ensure_grad();
      for_elems(o->grad.v.size(), par::kMinOps,
                [&](std::size_t i0, std::size_t i1) {
                  for (std::size_t i = i0; i < i1; ++i) {
                    bn->grad.v[i] += o->grad.v[i] * an->value.v[i];
                  }
                });
    }
  });
}

Tensor scale(const Tensor& a, float s) {
  Mat out = plan::out_copy(a->value, {a.get()});
  {
    float* ov = out.v.data();
    for_elems(out.v.size(), par::kMinOps, [ov, s](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) ov[i] *= s;
    });
  }
  Node* an = a.get();
  return make_op("scale", std::move(out), {a}, [an, s](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for_elems(o->grad.v.size(), par::kMinOps,
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  an->grad.v[i] += s * o->grad.v[i];
                }
              });
  });
}

Tensor relu(const Tensor& a) {
  Mat out = plan::out_copy(a->value, {a.get()});
  {
    float* ov = out.v.data();
    for_elems(out.v.size(), par::kMinOps, [ov](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) ov[i] = std::max(ov[i], 0.f);
    });
  }
  Node* an = a.get();
  return make_op("relu", std::move(out), {a}, [an](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for_elems(o->grad.v.size(), par::kMinOps,
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  if (an->value.v[i] > 0.f) an->grad.v[i] += o->grad.v[i];
                }
              });
  });
}

namespace {
// GELU tanh-approximation constants.
constexpr float kGeluC = 0.7978845608f;  // sqrt(2/pi)
constexpr float kGeluB = 0.044715f;
}  // namespace

Tensor gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(c (x + 0.044715 x^3)))
  constexpr float kC = kGeluC;
  constexpr float kB = kGeluB;
  Mat out = plan::out_copy(a->value, {a.get()});
  {
    float* ov = out.v.data();
    for_elems(out.v.size(), par::kMinExpOps,
              [ov](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const float x = ov[i];
                  const float t = std::tanh(kC * (x + kB * x * x * x));
                  ov[i] = 0.5f * x * (1.f + t);
                }
              });
  }
  Node* an = a.get();
  return make_op("gelu", std::move(out), {a}, [an](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for_elems(o->grad.v.size(), par::kMinExpOps,
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const float x = an->value.v[i];
                  const float u = kGeluC * (x + kGeluB * x * x * x);
                  const float t = std::tanh(u);
                  const float du = kGeluC * (1.f + 3.f * kGeluB * x * x);
                  const float dy =
                      0.5f * (1.f + t) + 0.5f * x * (1.f - t * t) * du;
                  an->grad.v[i] += o->grad.v[i] * dy;
                }
              });
  });
}

Tensor tanh_op(const Tensor& a) {
  Mat out = plan::out_copy(a->value, {a.get()});
  {
    float* ov = out.v.data();
    for_elems(out.v.size(), par::kMinExpOps,
              [ov](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) ov[i] = std::tanh(ov[i]);
              });
  }
  Node* an = a.get();
  return make_op("tanh", std::move(out), {a}, [an](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for_elems(o->grad.v.size(), par::kMinOps,
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const float y = o->value.v[i];
                  an->grad.v[i] += o->grad.v[i] * (1.f - y * y);
                }
              });
  });
}

Tensor sigmoid(const Tensor& a) {
  Mat out = plan::out_copy(a->value, {a.get()});
  {
    float* ov = out.v.data();
    for_elems(out.v.size(), par::kMinExpOps,
              [ov](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  ov[i] = 1.f / (1.f + std::exp(-ov[i]));
                }
              });
  }
  Node* an = a.get();
  return make_op("sigmoid", std::move(out), {a}, [an](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for_elems(o->grad.v.size(), par::kMinOps,
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  const float y = o->value.v[i];
                  an->grad.v[i] += o->grad.v[i] * y * (1.f - y);
                }
              });
  });
}

Tensor transpose(const Tensor& a) {
  const int n = a->value.rows, m = a->value.cols;
  Mat out = plan::out_mat(m, n, {a.get()});
  transpose_mat(n, m, a->value.v.data(), out.v.data());
  Node* an = a.get();
  return make_op("transpose", std::move(out), {a}, [an, n, m](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) an->grad.at(i, j) += o->grad.at(j, i);
    }
  });
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  NETTAG_CHECK(a->value.rows == b->value.rows,
               "concat_cols: row mismatch: " + sh(a->value) + " vs " +
                   sh(b->value));
  const int n = a->value.rows, da = a->value.cols, db = b->value.cols;
  Mat out = plan::out_mat(n, da + db, {a.get(), b.get()});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < da; ++j) out.at(i, j) = a->value.at(i, j);
    for (int j = 0; j < db; ++j) out.at(i, da + j) = b->value.at(i, j);
  }
  Node* an = a.get();
  Node* bn = b.get();
  return make_op("concat_cols", std::move(out), {a, b}, [an, bn, n, da, db](Node* o) {
    if (an->requires_grad) {
      an->ensure_grad();
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < da; ++j) an->grad.at(i, j) += o->grad.at(i, j);
      }
    }
    if (bn->requires_grad) {
      bn->ensure_grad();
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < db; ++j) bn->grad.at(i, j) += o->grad.at(i, da + j);
      }
    }
  });
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  NETTAG_CHECK(!parts.empty(), "concat_rows: empty part list");
  const int d = parts[0]->value.cols;
  int total = 0;
  for (const Tensor& p : parts) {
    NETTAG_CHECK(p->value.cols == d,
                 "concat_rows: part shape " + sh(p->value) +
                     " differs in width from first part (" +
                     std::to_string(d) + " cols)");
    total += p->value.rows;
  }
  Mat out = plan::out_mat(total, d, parts);
  int row = 0;
  for (const Tensor& p : parts) {
    std::copy(p->value.v.begin(), p->value.v.end(),
              out.v.begin() + static_cast<std::ptrdiff_t>(row) * d);
    row += p->value.rows;
  }
  std::vector<Node*> raw;
  raw.reserve(parts.size());
  for (const Tensor& p : parts) raw.push_back(p.get());
  return make_op("concat_rows", std::move(out), parts, [raw, d](Node* o) {
    int row = 0;
    for (Node* p : raw) {
      if (p->requires_grad) {
        p->ensure_grad();
        for (int i = 0; i < p->value.rows; ++i) {
          for (int j = 0; j < d; ++j) {
            p->grad.at(i, j) += o->grad.at(row + i, j);
          }
        }
      }
      row += p->value.rows;
    }
  });
}

Tensor slice_rows(const Tensor& a, int start, int count) {
  NETTAG_CHECK(start >= 0 && count >= 0 && start + count <= a->value.rows,
               "slice_rows: rows [" + std::to_string(start) + ", " +
                   std::to_string(start + count) + ") outside " +
                   sh(a->value));
  const int d = a->value.cols;
  Mat out = plan::out_mat(count, d, {a.get()});
  for (int i = 0; i < count; ++i) {
    for (int j = 0; j < d; ++j) out.at(i, j) = a->value.at(start + i, j);
  }
  Node* an = a.get();
  return make_op("slice_rows", std::move(out), {a}, [an, start, count, d](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for (int i = 0; i < count; ++i) {
      for (int j = 0; j < d; ++j) an->grad.at(start + i, j) += o->grad.at(i, j);
    }
  });
}

Tensor mean_rows(const Tensor& a) {
  const int n = a->value.rows, d = a->value.cols;
  Mat out = plan::out_mat(1, d, {a.get()});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) out.at(0, j) += a->value.at(i, j);
  }
  for (int j = 0; j < d; ++j) out.at(0, j) /= static_cast<float>(n);
  Node* an = a.get();
  return make_op("mean_rows", std::move(out), {a}, [an, n, d](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    const float inv = 1.f / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) an->grad.at(i, j) += o->grad.at(0, j) * inv;
    }
  });
}

Tensor sum_rows(const Tensor& a) {
  const int n = a->value.rows, d = a->value.cols;
  Mat out = plan::out_mat(1, d, {a.get()});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) out.at(0, j) += a->value.at(i, j);
  }
  Node* an = a.get();
  return make_op("sum_rows", std::move(out), {a}, [an, n, d](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) an->grad.at(i, j) += o->grad.at(0, j);
    }
  });
}

Tensor softmax_rows(const Tensor& a) {
  const int n = a->value.rows, d = a->value.cols;
  const std::size_t row_cost = static_cast<std::size_t>(d);
  Mat out = plan::out_mat(n, d, {a.get()});
  for_rows(n, row_cost, par::kMinExpOps, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      float mx = a->value.at(i, 0);
      for (int j = 1; j < d; ++j) mx = std::max(mx, a->value.at(i, j));
      float sum = 0.f;
      for (int j = 0; j < d; ++j) {
        const float e = std::exp(a->value.at(i, j) - mx);
        out.at(i, j) = e;
        sum += e;
      }
      for (int j = 0; j < d; ++j) out.at(i, j) /= sum;
    }
  });
  Node* an = a.get();
  return make_op("softmax_rows", std::move(out), {a}, [an, n, d, row_cost](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for_rows(n, row_cost, par::kMinOps, [&](int i0, int i1) {
      for (int i = i0; i < i1; ++i) {
        float dot = 0.f;
        for (int j = 0; j < d; ++j) dot += o->grad.at(i, j) * o->value.at(i, j);
        for (int j = 0; j < d; ++j) {
          an->grad.at(i, j) += o->value.at(i, j) * (o->grad.at(i, j) - dot);
        }
      }
    });
  });
}

Tensor layernorm_rows(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                      float eps) {
  const int n = a->value.rows, d = a->value.cols;
  NETTAG_CHECK(gamma->value.cols == d && beta->value.cols == d,
               "layernorm_rows: gamma " + sh(gamma->value) + " / beta " +
                   sh(beta->value) + " do not match input " + sh(a->value));
  Mat out = plan::out_mat(n, d, {a.get(), gamma.get(), beta.get()});
  Mat xhat = plan::tmp_mat(n, d);
  std::vector<float> inv_sigma(static_cast<std::size_t>(n));
  for_rows(n, static_cast<std::size_t>(d), par::kMinOps, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      float mean = 0.f;
      for (int j = 0; j < d; ++j) mean += a->value.at(i, j);
      mean /= static_cast<float>(d);
      float var = 0.f;
      for (int j = 0; j < d; ++j) {
        const float c = a->value.at(i, j) - mean;
        var += c * c;
      }
      var /= static_cast<float>(d);
      const float is = 1.f / std::sqrt(var + eps);
      inv_sigma[static_cast<std::size_t>(i)] = is;
      for (int j = 0; j < d; ++j) {
        const float xh = (a->value.at(i, j) - mean) * is;
        xhat.at(i, j) = xh;
        out.at(i, j) = gamma->value.at(0, j) * xh + beta->value.at(0, j);
      }
    }
  });
  Node* an = a.get();
  Node* gn = gamma.get();
  Node* bn = beta.get();
  return make_op(
      "layer_norm", std::move(out), {a, gamma, beta},
      [an, gn, bn, n, d, xhat = std::move(xhat),
       inv_sigma = std::move(inv_sigma)](Node* o) {
        if (gn->requires_grad) {
          gn->ensure_grad();
          for (int i = 0; i < n; ++i) {
            for (int j = 0; j < d; ++j) {
              gn->grad.at(0, j) += o->grad.at(i, j) * xhat.at(i, j);
            }
          }
        }
        if (bn->requires_grad) {
          bn->ensure_grad();
          for (int i = 0; i < n; ++i) {
            for (int j = 0; j < d; ++j) bn->grad.at(0, j) += o->grad.at(i, j);
          }
        }
        if (an->requires_grad) {
          an->ensure_grad();
          for_rows(n, static_cast<std::size_t>(d), par::kMinOps,
                   [&](int i0, int i1) {
            for (int i = i0; i < i1; ++i) {
              // g = dOut * gamma ; dx = is * (g - mean(g) - xhat * mean(g*xhat))
              float mg = 0.f, mgx = 0.f;
              for (int j = 0; j < d; ++j) {
                const float g = o->grad.at(i, j) * gn->value.at(0, j);
                mg += g;
                mgx += g * xhat.at(i, j);
              }
              mg /= static_cast<float>(d);
              mgx /= static_cast<float>(d);
              const float is = inv_sigma[static_cast<std::size_t>(i)];
              for (int j = 0; j < d; ++j) {
                const float g = o->grad.at(i, j) * gn->value.at(0, j);
                an->grad.at(i, j) += is * (g - mg - xhat.at(i, j) * mgx);
              }
            }
          });
        }
      });
}

Tensor embedding(const Tensor& table, const std::vector<int>& ids) {
  const int d = table->value.cols;
  Mat out = plan::out_mat(static_cast<int>(ids.size()), d, {table.get()});
  parallel_for(ids.size(), par::grain(static_cast<std::size_t>(d), par::kMinOps),
               [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      NETTAG_CHECK(ids[i] >= 0 && ids[i] < table->value.rows,
                   "embedding: id " + std::to_string(ids[i]) +
                       " outside table " + sh(table->value));
      for (int j = 0; j < d; ++j) {
        out.at(static_cast<int>(i), j) = table->value.at(ids[i], j);
      }
    }
  });
  // Backward stays serial: the scatter-add over repeated ids is
  // order-sensitive, and the table is small relative to the gather.
  Node* tn = table.get();
  return make_op("embedding", std::move(out), {table}, [tn, ids, d](Node* o) {
    if (!tn->requires_grad) return;
    tn->ensure_grad();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (int j = 0; j < d; ++j) {
        tn->grad.at(ids[i], j) += o->grad.at(static_cast<int>(i), j);
      }
    }
  });
}

Tensor normalize_rows(const Tensor& a, float eps) {
  const int n = a->value.rows, d = a->value.cols;
  Mat out = plan::out_mat(n, d, {a.get()});
  std::vector<float> norms(static_cast<std::size_t>(n));
  const std::size_t row_cost = static_cast<std::size_t>(d) * 3;
  for_rows(n, row_cost, par::kMinOps, [&](int b, int e) {
    for (int i = b; i < e; ++i) {
      float s = 0.f;
      for (int j = 0; j < d; ++j) s += a->value.at(i, j) * a->value.at(i, j);
      const float nm = std::sqrt(s) + eps;
      norms[static_cast<std::size_t>(i)] = nm;
      for (int j = 0; j < d; ++j) out.at(i, j) = a->value.at(i, j) / nm;
    }
  });
  Node* an = a.get();
  return make_op("normalize_rows", std::move(out), {a},
                 [an, n, d, row_cost, norms = std::move(norms)](Node* o) {
                   if (!an->requires_grad) return;
                   an->ensure_grad();
                   for_rows(n, row_cost, par::kMinOps, [&](int b, int e) {
                     for (int i = b; i < e; ++i) {
                       float dot = 0.f;
                       for (int j = 0; j < d; ++j) {
                         dot += o->grad.at(i, j) * o->value.at(i, j);
                       }
                       const float inv =
                           1.f / norms[static_cast<std::size_t>(i)];
                       for (int j = 0; j < d; ++j) {
                         an->grad.at(i, j) +=
                             (o->grad.at(i, j) - o->value.at(i, j) * dot) * inv;
                       }
                     }
                   });
                 });
}

Tensor dropout(const Tensor& a, float p, bool train, Rng& rng) {
  if (!train || p <= 0.f) return a;
  Mat out = plan::out_copy(a->value, {a.get()});
  std::vector<float> mask(out.v.size());
  const float keep = 1.f - p;
  for (std::size_t i = 0; i < out.v.size(); ++i) {
    mask[i] = rng.chance(p) ? 0.f : 1.f / keep;
    out.v[i] *= mask[i];
  }
  Node* an = a.get();
  return make_op("dropout", std::move(out), {a}, [an, mask = std::move(mask)](Node* o) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    for (std::size_t i = 0; i < o->grad.v.size(); ++i) {
      an->grad.v[i] += o->grad.v[i] * mask[i];
    }
  });
}

Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets) {
  const int n = logits->value.rows, c = logits->value.cols;
  NETTAG_CHECK(static_cast<int>(targets.size()) == n,
               "cross_entropy: " + std::to_string(targets.size()) +
                   " targets for logits " + sh(logits->value));
  Mat probs = plan::tmp_mat(n, c);
  // Per-row terms in parallel; the final reduction stays a serial loop in row
  // order so the loss matches the serial float-addition sequence exactly.
  std::vector<double> row_loss(static_cast<std::size_t>(n));
  for_rows(n, static_cast<std::size_t>(c) * 3, par::kMinExpOps,
           [&](int rb, int re) {
    for (int i = rb; i < re; ++i) {
      float mx = logits->value.at(i, 0);
      for (int j = 1; j < c; ++j) mx = std::max(mx, logits->value.at(i, j));
      float sum = 0.f;
      for (int j = 0; j < c; ++j) {
        const float e = std::exp(logits->value.at(i, j) - mx);
        probs.at(i, j) = e;
        sum += e;
      }
      for (int j = 0; j < c; ++j) probs.at(i, j) /= sum;
      row_loss[static_cast<std::size_t>(i)] = -std::log(std::max(
          probs.at(i, targets[static_cast<std::size_t>(i)]), 1e-12f));
    }
  });
  double loss = 0.0;
  for (int i = 0; i < n; ++i) loss += row_loss[static_cast<std::size_t>(i)];
  Mat out = plan::out_mat(1, 1, {logits.get()});
  out.v[0] = static_cast<float>(loss / n);
  Node* ln = logits.get();
  return make_op("cross_entropy", std::move(out), {logits},
                 [ln, targets, n, c, probs = std::move(probs)](Node* o) {
                   if (!ln->requires_grad) return;
                   ln->ensure_grad();
                   const float g = o->grad.v[0] / static_cast<float>(n);
                   for_rows(n, static_cast<std::size_t>(c) * 2, par::kMinOps,
                            [&](int rb, int re) {
                     for (int i = rb; i < re; ++i) {
                       for (int j = 0; j < c; ++j) {
                         float d = probs.at(i, j);
                         if (j == targets[static_cast<std::size_t>(i)]) {
                           d -= 1.f;
                         }
                         ln->grad.at(i, j) += g * d;
                       }
                     }
                   });
                 });
}

Tensor mse_loss(const Tensor& pred, const Mat& target) {
  NETTAG_CHECK(pred->value.v.size() == target.v.size(),
               "mse_loss: prediction " + sh(pred->value) +
                   " vs target " + sh(target));
  double sum = 0.0;
  for (std::size_t i = 0; i < target.v.size(); ++i) {
    const double d = pred->value.v[i] - target.v[i];
    sum += d * d;
  }
  Mat out = plan::out_mat(1, 1, {pred.get()});
  out.v[0] = static_cast<float>(sum / static_cast<double>(target.v.size()));
  Node* pn = pred.get();
  return make_op("mse_loss", std::move(out), {pred}, [pn, target](Node* o) {
    if (!pn->requires_grad) return;
    pn->ensure_grad();
    const float g = o->grad.v[0] * 2.f / static_cast<float>(target.v.size());
    for_elems(target.v.size(), par::kMinOps, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        pn->grad.v[i] += g * (pn->value.v[i] - target.v[i]);
      }
    });
  });
}

Tensor info_nce(const Tensor& anchors, const Tensor& positives,
                float temperature) {
  NETTAG_CHECK(anchors->value.rows == positives->value.rows,
               "info_nce: anchors " + sh(anchors->value) +
                   " vs positives " + sh(positives->value));
  const int n = anchors->value.rows;
  Tensor a = normalize_rows(anchors);
  Tensor p = normalize_rows(positives);
  Tensor sim = matmul(a, transpose(p));         // NxN cosine similarities
  Tensor logits = scale(sim, 1.f / temperature);
  std::vector<int> targets(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) targets[static_cast<std::size_t>(i)] = i;
  return cross_entropy(logits, targets);
}

namespace {

/// Runs the backward sweep from `root`, assuming root->grad is already
/// seeded. Topological order via iterative DFS over parents.
void run_backward(Node* root) {
  // Tape hook: records this sweep's root (recording) or verifies it against
  // the tape (replay) before any closure can read a planned buffer.
  plan::on_backward_begin(root);
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack{{root, 0}};
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx].get();
      ++idx;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is post-order (parents first); traverse in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) {
      (*it)->backward_fn();
      plan::on_backward_exec(*it);
    }
  }
  // Deep-mode NaN/Inf sweep over every gradient produced by this pass,
  // attributed to the node's producing op.
  if (deep_checks_enabled()) {
    for (const Node* node : order) {
      if (node->requires_grad && !node->grad.v.empty()) {
        check_finite(node->grad, node->op, "gradient");
      }
    }
  }
}

}  // namespace

void backward(const Tensor& loss) {
  NETTAG_CHECK(loss->value.rows == 1 && loss->value.cols == 1,
               "backward: loss must be 1x1, got " + sh(loss->value));
  if (!loss->requires_grad) return;
  loss->ensure_grad();
  loss->grad.v[0] = 1.f;
  run_backward(loss.get());
}

void backward_seeded(const Tensor& root) {
  if (!root->requires_grad) return;
  run_backward(root.get());
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const Tensor& p : params_) {
    m_.emplace_back(p->value.rows, p->value.cols);
    v_.emplace_back(p->value.rows, p->value.cols);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  // Each parameter tensor is updated independently — parallel over params.
  for (std::size_t k = 0; k < params_.size(); ++k) params_[k]->ensure_grad();
  if (deep_checks_enabled()) {
    for (std::size_t k = 0; k < params_.size(); ++k) {
      check_finite(params_[k]->grad, "Adam::step", "parameter gradient");
    }
  }
  ThreadPool::instance().run_indexed(params_.size(), [&](std::size_t k) {
    Node& p = *params_[k];
    for (std::size_t i = 0; i < p.value.v.size(); ++i) {
      const float g = p.grad.v[i];
      m_[k].v[i] = beta1_ * m_[k].v[i] + (1.f - beta1_) * g;
      v_[k].v[i] = beta2_ * v_[k].v[i] + (1.f - beta2_) * g * g;
      const float mhat = m_[k].v[i] / bc1;
      const float vhat = v_[k].v[i] / bc2;
      p.value.v[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  });
  zero_grad();
}

void Adam::zero_grad() {
  for (const Tensor& p : params_) {
    p->ensure_grad();
    p->zero_grad();
  }
}

void Adam::restore(long t, std::vector<Mat> m, std::vector<Mat> v) {
  if (t < 0) {
    throw std::runtime_error("Adam::restore: negative step count");
  }
  if (m.size() != params_.size() || v.size() != params_.size()) {
    throw std::runtime_error(
        "Adam::restore: moment count does not match parameter list (" +
        std::to_string(m.size()) + "/" + std::to_string(v.size()) + " vs " +
        std::to_string(params_.size()) + " params)");
  }
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const Mat& p = params_[k]->value;
    if (m[k].rows != p.rows || m[k].cols != p.cols || v[k].rows != p.rows ||
        v[k].cols != p.cols) {
      throw std::runtime_error("Adam::restore: moment shape mismatch at "
                               "parameter " + std::to_string(k));
    }
  }
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
}

}  // namespace nettag
