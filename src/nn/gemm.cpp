#include "nn/gemm.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/parallel.hpp"

namespace nettag {

// --- scalar reference kernels ------------------------------------------------
//
// These are the original nn/tensor.cpp loops, moved verbatim (including the
// zero-skip sparsity shortcuts): under NETTAG_SIMD=0 every matmul result and
// gradient is bit-identical to the pre-SIMD code.

namespace detail {

void gemm_nn_scalar(int i0, int i1, int k, int m, const float* a,
                    const float* b, float* c) {
  for (int i = i0; i < i1; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.f) continue;
      const float* brow = b + p * m;
      float* crow = c + i * m;
      for (int j = 0; j < m; ++j) crow[j] += aip * brow[j];
    }
  }
}

void gemm_nt_scalar(int i0, int i1, int k, int m, const float* g,
                    const float* b, float* c) {
  for (int i = i0; i < i1; ++i) {
    for (int p = 0; p < k; ++p) {
      const float* brow = b + p * m;
      const float* grow = g + i * m;
      float acc = 0.f;
      for (int j = 0; j < m; ++j) acc += grow[j] * brow[j];
      c[i * k + p] += acc;
    }
  }
}

void gemm_tn_scalar(int p0, int p1, int n, int k, int m, const float* a,
                    const float* g, float* c) {
  for (int p = p0; p < p1; ++p) {
    float* crow = c + p * m;
    for (int i = 0; i < n; ++i) {
      const float aip = a[i * k + p];
      if (aip == 0.f) continue;
      const float* grow = g + i * m;
      for (int j = 0; j < m; ++j) crow[j] += aip * grow[j];
    }
  }
}

#if !defined(__x86_64__) && !defined(_M_X64)
// Non-x86 builds still link the avx2 symbols (dispatch never selects them).
void gemm_nn_avx2(int i0, int i1, int k, int m, const float* a, const float* b,
                  float* c) {
  gemm_nn_scalar(i0, i1, k, m, a, b, c);
}
void gemm_nt_avx2(int i0, int i1, int k, int m, const float* g, const float* b,
                  float* c) {
  gemm_nt_scalar(i0, i1, k, m, g, b, c);
}
void gemm_tn_avx2(int p0, int p1, int n, int k, int m, const float* a,
                  const float* g, float* c) {
  gemm_tn_scalar(p0, p1, n, k, m, a, g, c);
}
int dot_i8_avx2(const signed char* xq, const signed char* wq, int kpad) {
  int acc = 0;
  for (int t = 0; t < kpad; ++t) acc += static_cast<int>(xq[t]) * wq[t];
  return acc;
}
#endif

}  // namespace detail

// --- dispatch ----------------------------------------------------------------

bool simd_avx2_supported() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdBackend parse_simd_backend(const char* text, SimdBackend fallback,
                               std::string* warning) {
  if (text == nullptr) return fallback;
  const std::string v(text);
  if (v == "0" || v == "scalar" || v == "off") return SimdBackend::kScalar;
  if (v == "1" || v == "avx2" || v == "on") {
    if (simd_avx2_supported()) return SimdBackend::kAvx2;
    if (warning) {
      *warning = "NETTAG_SIMD='" + v +
                 "' requests AVX2 but the CPU lacks avx2+fma; using scalar";
    }
    return SimdBackend::kScalar;
  }
  if (warning) {
    *warning = "NETTAG_SIMD='" + v +
               "' not understood (want 0|scalar|off|1|avx2|on); ignored";
  }
  return fallback;
}

namespace {

SimdBackend resolve_backend() {
  const SimdBackend best =
      simd_avx2_supported() ? SimdBackend::kAvx2 : SimdBackend::kScalar;
  std::string warning;
  const SimdBackend chosen =
      parse_simd_backend(std::getenv("NETTAG_SIMD"), best, &warning);
  if (!warning.empty()) {
    std::fprintf(stderr, "nettag: %s\n", warning.c_str());
  }
  return chosen;
}

SimdBackend& active_backend() {
  static SimdBackend backend = resolve_backend();
  return backend;
}

}  // namespace

SimdBackend simd_backend() { return active_backend(); }

bool set_simd_backend(SimdBackend backend) {
  if (backend == SimdBackend::kAvx2 && !simd_avx2_supported()) return false;
  active_backend() = backend;
  return true;
}

const char* simd_backend_name(SimdBackend backend) {
  return backend == SimdBackend::kAvx2 ? "avx2" : "scalar";
}

const char* simd_backend_name() { return simd_backend_name(simd_backend()); }

// --- public kernels ----------------------------------------------------------
//
// Row-partitioned over the shared pool exactly like the old in-place loops:
// each output row is owned by one task, so any fixed backend is
// deterministic at any thread width.

void gemm_nn(int n, int k, int m, const float* a, const float* b, float* c) {
  const bool avx2 = simd_backend() == SimdBackend::kAvx2;
  const std::size_t row_cost = static_cast<std::size_t>(k) * m;
  parallel_for(static_cast<std::size_t>(n), par::grain(row_cost, par::kMinOps),
               [=](std::size_t i0, std::size_t i1) {
                 if (avx2) {
                   detail::gemm_nn_avx2(static_cast<int>(i0),
                                        static_cast<int>(i1), k, m, a, b, c);
                 } else {
                   detail::gemm_nn_scalar(static_cast<int>(i0),
                                          static_cast<int>(i1), k, m, a, b, c);
                 }
               });
}

void gemm_nt(int n, int k, int m, const float* g, const float* b, float* c) {
  const bool avx2 = simd_backend() == SimdBackend::kAvx2;
  const std::size_t row_cost = static_cast<std::size_t>(k) * m;
  parallel_for(static_cast<std::size_t>(n), par::grain(row_cost, par::kMinOps),
               [=](std::size_t i0, std::size_t i1) {
                 if (avx2) {
                   detail::gemm_nt_avx2(static_cast<int>(i0),
                                        static_cast<int>(i1), k, m, g, b, c);
                 } else {
                   detail::gemm_nt_scalar(static_cast<int>(i0),
                                          static_cast<int>(i1), k, m, g, b, c);
                 }
               });
}

void gemm_tn(int n, int k, int m, const float* a, const float* g, float* c) {
  const bool avx2 = simd_backend() == SimdBackend::kAvx2;
  const std::size_t row_cost = static_cast<std::size_t>(n) * m;
  parallel_for(static_cast<std::size_t>(k), par::grain(row_cost, par::kMinOps),
               [=](std::size_t p0, std::size_t p1) {
                 if (avx2) {
                   detail::gemm_tn_avx2(static_cast<int>(p0),
                                        static_cast<int>(p1), n, k, m, a, g, c);
                 } else {
                   detail::gemm_tn_scalar(static_cast<int>(p0),
                                          static_cast<int>(p1), n, k, m, a, g,
                                          c);
                 }
               });
}

void transpose_mat(int n, int m, const float* a, float* out) {
  // 32x32 tiles keep one tile of the destination inside L1 while the source
  // is streamed row-wise; pure data movement, identical bytes per backend.
  constexpr int kTile = 32;
  for (int ib = 0; ib < n; ib += kTile) {
    const int ie = ib + kTile < n ? ib + kTile : n;
    for (int jb = 0; jb < m; jb += kTile) {
      const int je = jb + kTile < m ? jb + kTile : m;
      for (int i = ib; i < ie; ++i) {
        for (int j = jb; j < je; ++j) {
          out[static_cast<std::size_t>(j) * n + i] =
              a[static_cast<std::size_t>(i) * m + j];
        }
      }
    }
  }
}

}  // namespace nettag
