#include "nn/packed.hpp"

#include <cmath>
#include <cstdlib>

#include "analysis/check.hpp"
#include "core/nettag.hpp"
#include "nn/gemm.hpp"
#include "util/parallel.hpp"

namespace nettag {

namespace {

constexpr int kPadUnit = 32;  // one AVX2 register of int8 lanes

int pad32(int k) { return (k + kPadUnit - 1) / kPadUnit * kPadUnit; }

/// Symmetric int8 quantization of one value under a precomputed scale.
inline std::int8_t quantize1(float v, float inv_scale) {
  const float r = std::nearbyintf(v * inv_scale);
  const float clamped = r > 127.f ? 127.f : (r < -127.f ? -127.f : r);
  return static_cast<std::int8_t>(clamped);
}

inline int dot_i8_scalar(const signed char* xq, const signed char* wq,
                         int kpad) {
  int acc = 0;
  for (int t = 0; t < kpad; ++t) {
    acc += static_cast<int>(xq[t]) * static_cast<int>(wq[t]);
  }
  return acc;
}

}  // namespace

PackedMat pack_int8(const Mat& w) {
  NETTAG_CHECK(w.rows >= 1 && w.rows <= kMaxPackRows,
               "pack_int8: " + std::to_string(w.rows) +
                   " rows outside [1, " + std::to_string(kMaxPackRows) +
                   "] (int32 accumulator bound)");
  PackedMat p;
  p.rows = w.rows;
  p.cols = w.cols;
  p.kpad = pad32(w.rows);
  p.q.assign(static_cast<std::size_t>(p.cols) * p.kpad, 0);
  p.scales.assign(static_cast<std::size_t>(p.cols), 0.f);
  for (int j = 0; j < p.cols; ++j) {
    float absmax = 0.f;
    for (int r = 0; r < p.rows; ++r) {
      const float v = std::fabs(w.at(r, j));
      if (v > absmax) absmax = v;
    }
    if (absmax == 0.f) continue;  // all-zero column: q stays 0, scale 0
    const float scale = absmax / 127.f;
    p.scales[static_cast<std::size_t>(j)] = scale;
    const float inv = 127.f / absmax;
    std::int8_t* qrow = p.q.data() + static_cast<std::size_t>(j) * p.kpad;
    for (int r = 0; r < p.rows; ++r) qrow[r] = quantize1(w.at(r, j), inv);
  }
  return p;
}

Mat unpack_int8(const PackedMat& p) {
  Mat w(p.rows, p.cols);
  for (int j = 0; j < p.cols; ++j) {
    const float scale = p.scales[static_cast<std::size_t>(j)];
    const std::int8_t* qrow = p.q.data() + static_cast<std::size_t>(j) * p.kpad;
    for (int r = 0; r < p.rows; ++r) {
      w.at(r, j) = static_cast<float>(qrow[r]) * scale;
    }
  }
  return w;
}

void packed_matmul(const Mat& x, const PackedMat& w, Mat* out) {
  NETTAG_CHECK(x.cols == w.rows,
               "packed_matmul: inner dimensions differ: " +
                   std::to_string(x.cols) + " vs packed " +
                   std::to_string(w.rows));
  NETTAG_CHECK(out->rows == x.rows && out->cols == w.cols,
               "packed_matmul: output shape " + std::to_string(out->rows) +
                   "x" + std::to_string(out->cols) + " != " +
                   std::to_string(x.rows) + "x" + std::to_string(w.cols));
  const int n = x.rows, k = x.cols, m = w.cols, kpad = w.kpad;
  const bool avx2 = simd_backend() == SimdBackend::kAvx2;
  const std::size_t row_cost = static_cast<std::size_t>(k) * m;
  parallel_for(
      static_cast<std::size_t>(n), par::grain(row_cost, par::kMinOps),
      [&, avx2](std::size_t i0, std::size_t i1) {
        // One padded quantization buffer per task, reused across its rows.
        std::vector<std::int8_t> xq(static_cast<std::size_t>(kpad), 0);
        for (std::size_t i = i0; i < i1; ++i) {
          const float* xrow = x.v.data() + i * static_cast<std::size_t>(k);
          float* orow = out->v.data() + i * static_cast<std::size_t>(m);
          float absmax = 0.f;
          for (int p = 0; p < k; ++p) {
            const float v = std::fabs(xrow[p]);
            if (v > absmax) absmax = v;
          }
          if (absmax == 0.f || !std::isfinite(absmax)) {
            // All-zero rows produce zero; non-finite rows fall back to the
            // fp32 kernel for this row so NaN/Inf propagate (deep checks
            // would otherwise miss them behind a saturating quantizer).
            if (absmax == 0.f) {
              for (int j = 0; j < m; ++j) orow[j] = 0.f;
            } else {
              for (int j = 0; j < m; ++j) orow[j] = 0.f;
              const Mat wf = unpack_int8(w);
              detail::gemm_nn_scalar(0, 1, k, m, xrow, wf.v.data(), orow);
            }
            continue;
          }
          const float sx = absmax / 127.f;
          const float inv = 127.f / absmax;
          for (int p = 0; p < k; ++p) xq[static_cast<std::size_t>(p)] =
              quantize1(xrow[p], inv);
          const signed char* xqp =
              reinterpret_cast<const signed char*>(xq.data());
          for (int j = 0; j < m; ++j) {
            const signed char* wq = reinterpret_cast<const signed char*>(
                w.q.data() + static_cast<std::size_t>(j) * kpad);
            const int acc = avx2 ? detail::dot_i8_avx2(xqp, wq, kpad)
                                 : dot_i8_scalar(xqp, wq, kpad);
            orow[j] = static_cast<float>(acc) * sx *
                      w.scales[static_cast<std::size_t>(j)];
          }
        }
      });
}

PackStats pack_model_weights(NetTag& model) {
  PackStats stats;
  auto walk = [&stats](const std::vector<Tensor>& params) {
    for (const Tensor& p : params) {
      const Mat& w = p->value;
      if (w.rows < 2 || w.cols < 2 || w.rows > kMaxPackRows) {
        p->packed.reset();
        ++stats.skipped;
        continue;
      }
      auto packed = std::make_shared<PackedMat>(pack_int8(w));
      stats.bytes += packed->bytes();
      p->packed = std::move(packed);
      ++stats.packed;
    }
  };
  walk(model.expr_llm().params());
  walk(model.tagformer().params());
  return stats;
}

}  // namespace nettag
