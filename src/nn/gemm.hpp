// Dense fp32 GEMM kernels behind runtime CPU dispatch (docs/PERFORMANCE.md).
//
// The autograd matmul and its two backward contractions funnel every
// training step and every serve embed through these three kernels. Each has
// two implementations selected once per process:
//
//   * scalar — the original triple loops, kept verbatim: with the backend
//     forced to scalar (NETTAG_SIMD=0) results are bit-identical to the
//     pre-SIMD code at any thread width;
//   * avx2   — 8-lane FMA kernels compiled in a separate translation unit
//     with -mavx2 -mfma (nn/gemm_avx2.cpp) and only ever called after a
//     cpuid check. Row-partitioned exactly like the scalar loops, so results
//     are deterministic run-to-run at any width; they differ from scalar by
//     FMA rounding and dot-product reassociation only (see the agreement
//     tests in tests/gemm_test.cpp for the epsilon).
//
// Backend resolution: the NETTAG_SIMD environment variable if set
// ("0"/"scalar" force scalar; "1"/"avx2" request AVX2), otherwise the best
// the CPU supports. Requesting AVX2 on hardware without it falls back to
// scalar. Tests and benches may override at runtime with set_simd_backend().
//
// All kernels ACCUMULATE into the output (C += ...), matching the autograd
// use sites: the forward allocates a zeroed output, the backward adds into
// existing gradients. Parallelism: each kernel partitions its OUTPUT rows
// over the shared pool (util/parallel.hpp) with the same grain policy the
// scalar loops used, so each output element is written by exactly one task.
#pragma once

#include <string>

namespace nettag {

enum class SimdBackend {
  kScalar,  ///< portable reference loops (the pre-SIMD code paths)
  kAvx2,    ///< 8-lane fused-multiply-add kernels (x86-64 AVX2+FMA)
};

/// The backend every gemm_* call dispatches to (resolved on first use).
SimdBackend simd_backend();

/// True when the running CPU supports the AVX2+FMA kernels.
bool simd_avx2_supported();

/// Name for logs / the serve `stats` endpoint: "scalar" or "avx2".
const char* simd_backend_name(SimdBackend backend);
const char* simd_backend_name();  ///< name of the active backend

/// Runtime override for tests and benches (mirrors ThreadPool::set_width).
/// Returns false (and leaves the backend unchanged) when `backend` is not
/// supported on this CPU. Not thread-safe against concurrent gemm calls.
bool set_simd_backend(SimdBackend backend);

/// Parses a NETTAG_SIMD-style value: "0"/"scalar"/"off" -> scalar,
/// "1"/"avx2"/"on" -> AVX2 (capped at what the CPU supports). Unknown
/// values return `fallback` and, when `warning` is non-null, describe the
/// rejection there. Exposed for unit tests; dispatch uses it at startup.
SimdBackend parse_simd_backend(const char* text, SimdBackend fallback,
                               std::string* warning = nullptr);

// --- kernels (row-major, non-aliasing pointers) ------------------------------

/// C[n x m] += A[n x k] * B[k x m] — the forward matmul.
void gemm_nn(int n, int k, int m, const float* a, const float* b, float* c);

/// C[n x k] += G[n x m] * B^T, with B stored [k x m]:
/// C[i,p] += sum_j G[i,j] * B[p,j] — the dA backward contraction.
void gemm_nt(int n, int k, int m, const float* g, const float* b, float* c);

/// C[k x m] += A^T * G, with A stored [n x k]:
/// C[p,j] += sum_i A[i,p] * G[i,j] — the dB backward contraction.
void gemm_tn(int n, int k, int m, const float* a, const float* g, float* c);

/// OUT[m x n] = A[n x m]^T — cache-blocked transpose (out[j,i] = a[i,j]).
/// Overwrites `out` (no accumulate). Same bytes under every backend; the
/// blocking only changes the traversal order, not any arithmetic.
void transpose_mat(int n, int m, const float* a, float* out);

// --- internal: raw per-backend row-range kernels (gemm.cpp / gemm_avx2.cpp) --
namespace detail {
void gemm_nn_scalar(int i0, int i1, int k, int m, const float* a,
                    const float* b, float* c);
void gemm_nt_scalar(int i0, int i1, int k, int m, const float* g,
                    const float* b, float* c);
void gemm_tn_scalar(int p0, int p1, int n, int k, int m, const float* a,
                    const float* g, float* c);
// Compiled with -mavx2 -mfma; call only when simd_avx2_supported().
void gemm_nn_avx2(int i0, int i1, int k, int m, const float* a,
                  const float* b, float* c);
void gemm_nt_avx2(int i0, int i1, int k, int m, const float* g,
                  const float* b, float* c);
void gemm_tn_avx2(int p0, int p1, int n, int k, int m, const float* a,
                  const float* g, float* c);
/// Int8 dot-product microkernel for the packed-weight path (nn/packed.cpp):
/// returns sum over kpad of xq[t] * wq[t], kpad a multiple of 32.
int dot_i8_avx2(const signed char* xq, const signed char* wq, int kpad);
}  // namespace detail

}  // namespace nettag
