#include "nn/layers.hpp"

#include <cmath>

namespace nettag {

std::size_t Module::num_params() const {
  std::size_t n = 0;
  for (const Tensor& p : params()) n += p->value.v.size();
  return n;
}

Linear::Linear(int in_dim, int out_dim, Rng& rng)
    : w_(make_param(in_dim, out_dim, rng)),
      b_(make_tensor(Mat(1, out_dim), true)) {}

Tensor Linear::forward(const Tensor& x) const {
  return add_rowvec(matmul(x, w_), b_);
}

LayerNorm::LayerNorm(int dim) {
  Mat g(1, dim);
  std::fill(g.v.begin(), g.v.end(), 1.f);
  gamma_ = make_tensor(std::move(g), true);
  beta_ = make_tensor(Mat(1, dim), true);
}

Tensor LayerNorm::forward(const Tensor& x) const {
  return layernorm_rows(x, gamma_, beta_);
}

EmbeddingLayer::EmbeddingLayer(int vocab, int dim, Rng& rng)
    : table_(make_param(vocab, dim, rng)) {}

Tensor EmbeddingLayer::forward(const std::vector<int>& ids) const {
  return embedding(table_, ids);
}

MultiHeadAttention::MultiHeadAttention(int d_model, int num_heads, Rng& rng)
    : d_model_(d_model), num_heads_(num_heads), d_head_(d_model / num_heads) {
  wq_ = std::make_unique<Linear>(d_model, d_model, rng);
  wk_ = std::make_unique<Linear>(d_model, d_model, rng);
  wv_ = std::make_unique<Linear>(d_model, d_model, rng);
  wo_ = std::make_unique<Linear>(d_model, d_model, rng);
}

Tensor MultiHeadAttention::forward(const Tensor& x) const {
  const Tensor q = wq_->forward(x);
  const Tensor k = wk_->forward(x);
  const Tensor v = wv_->forward(x);
  // Per-head attention on column slices, concatenated back.
  Tensor out;
  for (int h = 0; h < num_heads_; ++h) {
    auto head_slice = [&](const Tensor& t) {
      // Column slice via transpose + row slice + transpose (keeps the op set
      // small; sequences are short so the copies are cheap).
      return transpose(slice_rows(transpose(t), h * d_head_, d_head_));
    };
    const Tensor qh = head_slice(q);
    const Tensor kh = head_slice(k);
    const Tensor vh = head_slice(v);
    Tensor scores = scale(matmul(qh, transpose(kh)),
                          1.f / std::sqrt(static_cast<float>(d_head_)));
    Tensor attn = softmax_rows(scores);
    Tensor oh = matmul(attn, vh);
    out = h == 0 ? oh : concat_cols(out, oh);
  }
  return wo_->forward(out);
}

std::vector<Tensor> MultiHeadAttention::params() const {
  return collect_params({wq_.get(), wk_.get(), wv_.get(), wo_.get()});
}

TransformerBlock::TransformerBlock(int d_model, int num_heads, int d_ff, Rng& rng) {
  ln1_ = std::make_unique<LayerNorm>(d_model);
  ln2_ = std::make_unique<LayerNorm>(d_model);
  attn_ = std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  ff1_ = std::make_unique<Linear>(d_model, d_ff, rng);
  ff2_ = std::make_unique<Linear>(d_ff, d_model, rng);
}

Tensor TransformerBlock::forward(const Tensor& x) const {
  Tensor h = add(x, attn_->forward(ln1_->forward(x)));
  Tensor f = ff2_->forward(gelu(ff1_->forward(ln2_->forward(h))));
  return add(h, f);
}

std::vector<Tensor> TransformerBlock::params() const {
  return collect_params({ln1_.get(), ln2_.get(), attn_.get(), ff1_.get(),
                         ff2_.get()});
}

Mlp::Mlp(int in_dim, int hidden, int out_dim, Rng& rng) {
  l1_ = std::make_unique<Linear>(in_dim, hidden, rng);
  l2_ = std::make_unique<Linear>(hidden, hidden, rng);
  l3_ = std::make_unique<Linear>(hidden, out_dim, rng);
}

Tensor Mlp::forward(const Tensor& x) const {
  return l3_->forward(relu(l2_->forward(relu(l1_->forward(x)))));
}

std::vector<Tensor> Mlp::params() const {
  return collect_params({l1_.get(), l2_.get(), l3_.get()});
}

std::vector<Tensor> collect_params(
    std::initializer_list<const Module*> modules) {
  std::vector<Tensor> out;
  for (const Module* m : modules) {
    for (const Tensor& p : m->params()) out.push_back(p);
  }
  return out;
}

}  // namespace nettag
