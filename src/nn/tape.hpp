// Autograd tape recording and planned replay (the control half of the static
// memory planner).
//
// A PlanScope wraps one training/inference step on one thread. The first
// scope for a given shape signature RECORDS: every op built through make_op
// appends a tape entry (op name, output shape, parent slots, declared
// temporaries) and the backward sweep appends its execution order. At scope
// end the tape is analyzed (nn/liveness.hpp), planned into arena offsets
// (nn/memplan.hpp), and independently re-checked (analysis/plan_verify.hpp);
// only a verified plan is installed. Later scopes with the same signature
// REPLAY: each op is verified against the tape as it is built and its output
// and gradient buffers are served from the thread's arena slab at the planned
// offsets.
//
// Safety model. All buffer definitions happen during the forward phase, so
// intra-step byte sharing only ever reuses bytes of a *value* buffer that the
// tape proved dead. If a replayed step diverges from its tape (any op, shape,
// parent edge, or backward root mismatch), the scope immediately copies every
// still-live planned node buffer back to the heap (materialization), stops
// serving the arena, and disables the signature — execution continues with
// exactly the heap-allocated semantics, only slower. Temporaries get private,
// never-shared offsets so closure-captured buffers stay intact without
// tracking. Recording steps allocate from the heap and are bit-identical to
// planning disabled; replay changes only where bytes live, never their
// values.
//
// NETTAG_PLAN=0 disables everything (scopes become no-ops, allocation
// behaviour is exactly the pre-planner code path). Deep-check mode also
// disables planning: its post-backward gradient sweep reads buffers later
// than the tape's liveness model allows.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace nettag::plan {

/// One recorded op: the data make_op sees, plus the temporaries the op
/// implementation declared through tmp_mat before calling make_op.
struct TapeEntry {
  std::string op;
  int rows = 0;
  int cols = 0;
  bool requires_grad = false;
  bool value_planned = false;  ///< output was requested via out_mat/out_copy
  std::vector<int> parents;    ///< tape slots; -1 = leaf or unplanned parent
  std::vector<std::pair<int, int>> temps;  ///< shapes, in request order
};

/// One step's recorded graph: forward ops in creation order plus the
/// backward execution order (tape slots of nodes whose closures ran, in run
/// order) and the root slot of each run_backward invocation (-1 when the
/// backward entered through an unplanned node, e.g. backward_seeded leaves).
struct Tape {
  std::vector<TapeEntry> entries;
  std::vector<int> bwd_order;
  std::vector<int> bwd_roots;
  /// Slots the scope owner reads after the step (keep_alive): their buffers
  /// are pinned for the whole step and never share bytes.
  std::vector<int> kept;
};

/// Sentinel offset: buffer stays on the heap.
constexpr std::size_t kHeapSlot = ~std::size_t{0};

/// Arena offsets for every buffer of every tape entry.
struct MemPlan {
  std::size_t slab_bytes = 0;
  std::size_t alignment = 64;
  struct Slots {
    std::size_t value = kHeapSlot;
    std::size_t grad = kHeapSlot;
    std::vector<std::size_t> temps;
  };
  std::vector<Slots> per_entry;
  // planner bookkeeping, surfaced through stats
  std::size_t buffers_planned = 0;
  std::size_t buffers_coalesced = 0;  ///< buffers sharing bytes with another
};

// --- global switches ---------------------------------------------------------

/// NETTAG_PLAN env var at first query (default on), unless overridden.
bool planning_enabled();
/// Runtime override for tests and benches. Wins over the env var.
void set_planning_enabled(bool enabled);
/// Test hook: the next plans emitted are deliberately corrupted (every
/// shared buffer at offset 0) so the verifier must reject them.
void set_test_plan_corruption(bool corrupt);
/// Drops all recorded signatures and zeroes the divergence/replay counters
/// (arena slabs stay registered). Tests only.
void reset_for_tests();

// --- stats (all counters cumulative since process start) ---------------------

struct Stats {
  bool enabled = false;
  unsigned long long tapes_recorded = 0;
  unsigned long long plans_installed = 0;
  unsigned long long verifier_rejects = 0;
  unsigned long long replays = 0;
  unsigned long long divergences = 0;
  unsigned long long buffers_planned = 0;
  unsigned long long buffers_coalesced = 0;
  unsigned long long mallocs_avoided = 0;   ///< Mat buffers served from arena
  unsigned long long heap_mat_allocs = 0;   ///< Mat buffers from operator new
  unsigned long long slab_bytes = 0;        ///< live arena capacity, all threads
};
Stats stats_snapshot();

// --- per-step scope ----------------------------------------------------------

/// RAII scope for one step. Inactive (all hooks no-op) when planning is off,
/// deep checks are on, the thread is inside a pool task, or another scope is
/// already active on this thread.
class PlanScope {
 public:
  explicit PlanScope(std::string signature);
  ~PlanScope();
  PlanScope(const PlanScope&) = delete;
  PlanScope& operator=(const PlanScope&) = delete;

  bool active() const { return impl_ != nullptr; }

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

// --- hooks called from nn/tensor.cpp -----------------------------------------

/// Allocates an op's output matrix (zero-filled). Under a replaying scope the
/// buffer comes from the arena at the planned offset of the next tape entry —
/// but only after `parents` (the node pointers the kernel is about to read,
/// in make_op order) match the tape, so a kernel can never read a buffer the
/// plan considers dead while writing a planned output.
Mat out_mat(int r, int c, std::initializer_list<const Node*> parents);
Mat out_mat(int r, int c, const std::vector<Tensor>& parents);
/// Allocates an op's output as a copy of `src` (the `Mat out = a->value`
/// pattern), with the same planned-buffer treatment as out_mat.
Mat out_copy(const Mat& src, std::initializer_list<const Node*> parents);
/// Allocates an op-internal temporary (zero-filled) that the backward closure
/// will capture (layernorm xhat, cross-entropy probs). Planned temporaries
/// get private never-shared arena offsets.
Mat tmp_mat(int r, int c);

/// Records or verifies the op about to become a node. Returns the tape slot,
/// or -1 when unplanned/diverged. On divergence, `value` is copied back to
/// the heap if it had been served from the arena.
int pre_op(const char* op, Mat& value, const std::vector<Tensor>& parents,
           bool requires_grad);
/// Completes pre_op after the node exists: assigns the slot, tracks the node
/// for divergence materialization, and clears any pending arm.
void post_op(int slot, const Tensor& node);

/// Declares that the scope owner reads `node`'s buffers after the step
/// completes (returned embeddings, logged losses). During recording the
/// node's slot is pinned in the tape so no later buffer ever reuses its
/// bytes; replays inherit the pin from the installed plan. No-op outside a
/// recording scope.
void keep_alive(const Tensor& node);

/// Called at the start of every run_backward sweep with its root.
void on_backward_begin(Node* root);
/// Called after each backward closure runs (recording the execution order).
void on_backward_exec(Node* node);

// --- introspection (nettag_lint --tape, tests) -------------------------------

struct TapeReport {
  std::string signature;
  std::string state;  ///< "recording" | "ready" | "disabled"
  Tape tape;
  std::shared_ptr<const MemPlan> plan;  ///< null unless ready
  bool verifier_ok = false;
  std::string verifier_verdict;
};
std::vector<TapeReport> tape_reports();

}  // namespace nettag::plan
