// Greedy arena planner: colors non-interfering buffers of a recorded tape
// into offsets of one reusable slab.
//
// Values and gradients go into a shared region: buffers are placed largest
// first, each at the lowest 64-byte-aligned offset that does not byte-overlap
// any already-placed buffer whose live interval intersects its own (interval
// coloring with first-fit offsets). Temporaries are appended after the shared
// region at private, never-shared offsets — they are captured inside backward
// closures where the divergence-materialization path cannot reach them, so
// they trade coalescing for unconditional safety (they still avoid the
// per-step heap allocation, which is the dominant win).
//
// The emitted plan is advisory until analysis/plan_verify.hpp re-checks it
// independently; a plan that fails verification is never installed.
#pragma once

#include "nn/liveness.hpp"
#include "nn/tape.hpp"

namespace nettag::plan {

/// Plans every non-empty buffer of `tape` into slab offsets. When
/// `corrupt_for_test` is set, every shared-region buffer is forced to offset
/// 0 (overlapping live ranges then share bytes), for the verifier-rejection
/// negative test.
MemPlan plan_memory(const Tape& tape, const LivenessResult& live,
                    bool corrupt_for_test = false);

}  // namespace nettag::plan
