#include "nn/train_state.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/atomic_io.hpp"
#include "util/checksum.hpp"

namespace nettag {

namespace {

// "NTS2": v2 appends shard_index (streaming pre-training). Old "NTS1"
// records are rejected by magic — checkpoints are session-scoped artifacts,
// not long-lived archives, so there is no legacy-read path.
constexpr std::uint32_t kMagic = 0x4e545332;

// The record is serialized into one contiguous buffer so the trailing CRC
// can cover every preceding byte; fields are little-endian fixed-width.

void put_u32(std::string& buf, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, sizeof(v));
  buf.append(b, sizeof(v));
}

void put_u64(std::string& buf, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, sizeof(v));
  buf.append(b, sizeof(v));
}

void put_string(std::string& buf, const std::string& s) {
  put_u64(buf, s.size());
  buf.append(s);
}

void put_floats(std::string& buf, const std::vector<float>& v) {
  put_u64(buf, v.size());
  buf.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(float));
}

void put_mats(std::string& buf, const std::vector<Mat>& mats) {
  put_u64(buf, mats.size());
  for (const Mat& m : mats) {
    put_u32(buf, static_cast<std::uint32_t>(m.rows));
    put_u32(buf, static_cast<std::uint32_t>(m.cols));
    buf.append(reinterpret_cast<const char*>(m.v.data()),
               m.v.size() * sizeof(float));
  }
}

/// Bounds-checked reader over the validated buffer. Every get_ throws on
/// overrun, so a short buffer can never yield a partially filled record.
class Reader {
 public:
  Reader(const std::string& buf, const std::string& path)
      : buf_(buf), path_(path) {}

  std::uint32_t get_u32() {
    std::uint32_t v;
    copy(&v, sizeof(v));
    return v;
  }

  std::uint64_t get_u64() {
    std::uint64_t v;
    copy(&v, sizeof(v));
    return v;
  }

  std::string get_string() {
    const std::uint64_t n = checked_count(get_u64(), 1);
    std::string s = buf_.substr(at_, n);
    at_ += n;
    return s;
  }

  std::vector<float> get_floats() {
    const std::uint64_t n = checked_count(get_u64(), sizeof(float));
    std::vector<float> v(n);
    copy(v.data(), n * sizeof(float));
    return v;
  }

  std::vector<Mat> get_mats() {
    const std::uint64_t n = checked_count(get_u64(), 2 * sizeof(std::uint32_t));
    std::vector<Mat> mats;
    mats.reserve(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint32_t r = get_u32();
      const std::uint32_t c = get_u32();
      const std::uint64_t cells =
          checked_count(static_cast<std::uint64_t>(r) * c, sizeof(float));
      Mat m(static_cast<int>(r), static_cast<int>(c));
      copy(m.v.data(), cells * sizeof(float));
      mats.push_back(std::move(m));
    }
    return mats;
  }

  std::size_t consumed() const { return at_; }

 private:
  void copy(void* out, std::size_t n) {
    if (n > buf_.size() - at_) {
      throw std::runtime_error("load_train_state: truncated record " + path_);
    }
    std::memcpy(out, buf_.data() + at_, n);
    at_ += n;
  }

  /// Rejects counts that cannot possibly fit the remaining bytes *before*
  /// allocating, so a corrupt length cannot trigger a huge allocation.
  std::uint64_t checked_count(std::uint64_t n, std::size_t elem_size) {
    if (n > (buf_.size() - at_) / elem_size) {
      throw std::runtime_error("load_train_state: implausible field length in " +
                               path_);
    }
    return n;
  }

  const std::string& buf_;
  const std::string path_;
  std::size_t at_ = 0;
};

}  // namespace

std::string train_state_path(const std::string& prefix) {
  return prefix + ".trainer.bin";
}

void save_train_state(const std::string& path, const TrainState& state) {
  if (state.adam_m.size() != state.adam_v.size()) {
    throw std::runtime_error(
        "save_train_state: adam moment lists have different lengths");
  }
  std::string buf;
  put_u32(buf, kMagic);
  put_string(buf, state.phase);
  put_u64(buf, state.next_step);
  put_string(buf, state.rng_state);
  put_u64(buf, static_cast<std::uint64_t>(state.adam_t));
  put_mats(buf, state.adam_m);
  put_mats(buf, state.adam_v);
  put_floats(buf, state.extra_params);
  put_floats(buf, state.loss_history);
  put_floats(buf, state.prior_losses);
  put_u64(buf, state.dataset_size);
  put_u64(buf, state.shard_index);
  put_u32(buf, crc32(buf));

  AtomicFileWriter writer(path, /*binary=*/true);
  writer.stream().write(buf.data(), static_cast<std::streamsize>(buf.size()));
  writer.commit();
}

TrainState load_train_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_train_state: cannot open " + path);
  std::stringstream raw;
  raw << in.rdbuf();
  std::string buf = raw.str();

  if (buf.size() < sizeof(std::uint32_t) * 2) {
    throw std::runtime_error("load_train_state: truncated record " + path);
  }
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, buf.data() + buf.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  buf.resize(buf.size() - sizeof(stored_crc));
  if (stored_crc != crc32(buf)) {
    throw std::runtime_error("load_train_state: checksum mismatch in " + path +
                             " (truncated or corrupted)");
  }

  Reader r(buf, path);
  if (r.get_u32() != kMagic) {
    throw std::runtime_error("load_train_state: bad magic in " + path);
  }
  TrainState state;
  state.phase = r.get_string();
  state.next_step = r.get_u64();
  state.rng_state = r.get_string();
  const std::uint64_t t = r.get_u64();
  if (t > static_cast<std::uint64_t>(std::numeric_limits<long>::max())) {
    throw std::runtime_error("load_train_state: implausible adam_t in " + path);
  }
  state.adam_t = static_cast<long>(t);
  state.adam_m = r.get_mats();
  state.adam_v = r.get_mats();
  state.extra_params = r.get_floats();
  state.loss_history = r.get_floats();
  state.prior_losses = r.get_floats();
  state.dataset_size = r.get_u64();
  state.shard_index = r.get_u64();
  if (r.consumed() != buf.size()) {
    throw std::runtime_error(
        "load_train_state: file longer than its declared payload: " + path);
  }
  if (state.adam_m.size() != state.adam_v.size()) {
    throw std::runtime_error(
        "load_train_state: mismatched adam moment lists in " + path);
  }
  return state;
}

std::vector<float> flatten_param_values(const std::vector<Tensor>& params) {
  std::vector<float> out;
  for (const Tensor& p : params) {
    out.insert(out.end(), p->value.v.begin(), p->value.v.end());
  }
  return out;
}

void restore_param_values(const std::vector<Tensor>& params,
                          const std::vector<float>& values) {
  std::size_t total = 0;
  for (const Tensor& p : params) total += p->value.v.size();
  if (values.size() != total) {
    throw std::runtime_error(
        "restore_param_values: checkpoint holds " +
        std::to_string(values.size()) + " values but the parameter list has " +
        std::to_string(total) +
        " (different architecture or training objectives?)");
  }
  std::size_t at = 0;
  for (const Tensor& p : params) {
    std::copy(values.begin() + static_cast<std::ptrdiff_t>(at),
              values.begin() + static_cast<std::ptrdiff_t>(at + p->value.v.size()),
              p->value.v.begin());
    at += p->value.v.size();
  }
}

}  // namespace nettag
