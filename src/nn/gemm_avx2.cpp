// AVX2+FMA kernel bodies for nn/gemm.hpp. This translation unit is the only
// one compiled with -mavx2 -mfma (see src/CMakeLists.txt); everything here
// is reached strictly behind the simd_avx2_supported() cpuid check, so the
// rest of the library keeps the project-wide baseline ISA.
//
// Kernel shape (docs/PERFORMANCE.md §3):
//   * gemm_nn — 4x16 register tile: 8 ymm accumulators hold a 4-row by
//     16-column block of C across the whole k loop; each k step is 4
//     broadcast loads of A, 2 vector loads of B, 8 FMAs. Row/column tails
//     fall back to a 1x8 FMA loop and a scalar edge.
//   * gemm_nt — per-(row, row) dot products with 2 independent 8-lane
//     accumulators (hides FMA latency), horizontal-summed once per output.
//   * gemm_tn — rank-1 row accumulation: broadcast A[i,p], FMA G row i into
//     C row p, vectorized over the m columns. Keeps the scalar kernel's
//     zero-skip: A holds post-ReLU activations, where zeros are common.
//
// Numerics: FMA contracts mul+add into one rounding and the dot-product
// kernels reassociate the j sum into 8 lanes; both deviate from the scalar
// kernels by O(k * eps) relative error. tests/gemm_test.cpp pins the bound.
#include "nn/gemm.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace nettag::detail {

namespace {

/// Sum of the 8 lanes of `v`.
inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

/// One C row: crow[0..count) += sum_p arow[p] * b[p*stride + 0..count),
/// vectorized over j. `stride` is B's row stride (the full m); `count` may
/// be a column tail narrower than the stride.
inline void nn_row(int k, int stride, int count, const float* arow,
                   const float* b, float* crow) {
  for (int p = 0; p < k; ++p) {
    const float aip = arow[p];
    if (aip == 0.f) continue;
    const __m256 av = _mm256_set1_ps(aip);
    const float* brow = b + static_cast<std::size_t>(p) * stride;
    int j = 0;
    for (; j + 8 <= count; j += 8) {
      const __m256 cv = _mm256_loadu_ps(crow + j);
      _mm256_storeu_ps(crow + j,
                       _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j), cv));
    }
    for (; j < count; ++j) crow[j] += aip * brow[j];
  }
}

}  // namespace

void gemm_nn_avx2(int i0, int i1, int k, int m, const float* a, const float* b,
                  float* c) {
  int i = i0;
  // 4x16 register-tiled main loop: B's k x 16 panel is streamed once per
  // 4 output rows instead of once per row.
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + static_cast<std::size_t>(i) * m;
    float* c1 = c0 + m;
    float* c2 = c1 + m;
    float* c3 = c2 + m;
    int j = 0;
    for (; j + 16 <= m; j += 16) {
      __m256 acc00 = _mm256_loadu_ps(c0 + j);
      __m256 acc01 = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc10 = _mm256_loadu_ps(c1 + j);
      __m256 acc11 = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc20 = _mm256_loadu_ps(c2 + j);
      __m256 acc21 = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc30 = _mm256_loadu_ps(c3 + j);
      __m256 acc31 = _mm256_loadu_ps(c3 + j + 8);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * m + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(a0[p]);
        acc00 = _mm256_fmadd_ps(av, b0, acc00);
        acc01 = _mm256_fmadd_ps(av, b1, acc01);
        av = _mm256_set1_ps(a1[p]);
        acc10 = _mm256_fmadd_ps(av, b0, acc10);
        acc11 = _mm256_fmadd_ps(av, b1, acc11);
        av = _mm256_set1_ps(a2[p]);
        acc20 = _mm256_fmadd_ps(av, b0, acc20);
        acc21 = _mm256_fmadd_ps(av, b1, acc21);
        av = _mm256_set1_ps(a3[p]);
        acc30 = _mm256_fmadd_ps(av, b0, acc30);
        acc31 = _mm256_fmadd_ps(av, b1, acc31);
      }
      _mm256_storeu_ps(c0 + j, acc00);
      _mm256_storeu_ps(c0 + j + 8, acc01);
      _mm256_storeu_ps(c1 + j, acc10);
      _mm256_storeu_ps(c1 + j + 8, acc11);
      _mm256_storeu_ps(c2 + j, acc20);
      _mm256_storeu_ps(c2 + j + 8, acc21);
      _mm256_storeu_ps(c3 + j, acc30);
      _mm256_storeu_ps(c3 + j + 8, acc31);
    }
    if (j < m) {
      // Column tail of the 4-row block: per-row vector loop over [j, m).
      const int tail = m - j;
      nn_row(k, m, tail, a0, b + j, c0 + j);
      nn_row(k, m, tail, a1, b + j, c1 + j);
      nn_row(k, m, tail, a2, b + j, c2 + j);
      nn_row(k, m, tail, a3, b + j, c3 + j);
    }
  }
  // Row tail.
  for (; i < i1; ++i) {
    nn_row(k, m, m, a + static_cast<std::size_t>(i) * k, b,
           c + static_cast<std::size_t>(i) * m);
  }
}

void gemm_nt_avx2(int i0, int i1, int k, int m, const float* g, const float* b,
                  float* c) {
  for (int i = i0; i < i1; ++i) {
    const float* grow = g + static_cast<std::size_t>(i) * m;
    float* crow = c + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * m;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      int j = 0;
      for (; j + 16 <= m; j += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(grow + j),
                               _mm256_loadu_ps(brow + j), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(grow + j + 8),
                               _mm256_loadu_ps(brow + j + 8), acc1);
      }
      for (; j + 8 <= m; j += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(grow + j),
                               _mm256_loadu_ps(brow + j), acc0);
      }
      float acc = hsum8(_mm256_add_ps(acc0, acc1));
      for (; j < m; ++j) acc += grow[j] * brow[j];
      crow[p] += acc;
    }
  }
}

void gemm_tn_avx2(int p0, int p1, int n, int k, int m, const float* a,
                  const float* g, float* c) {
  for (int p = p0; p < p1; ++p) {
    float* crow = c + static_cast<std::size_t>(p) * m;
    for (int i = 0; i < n; ++i) {
      const float aip = a[static_cast<std::size_t>(i) * k + p];
      if (aip == 0.f) continue;
      const __m256 av = _mm256_set1_ps(aip);
      const float* grow = g + static_cast<std::size_t>(i) * m;
      int j = 0;
      for (; j + 8 <= m; j += 8) {
        const __m256 cv = _mm256_loadu_ps(crow + j);
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(grow + j), cv));
      }
      for (; j < m; ++j) crow[j] += aip * grow[j];
    }
  }
}

int dot_i8_avx2(const signed char* xq, const signed char* wq, int kpad) {
  // Widen int8 -> int16, multiply-add pairs into int32 lanes. kpad is a
  // multiple of 32 (nn/packed.cpp pads with zeros), so no tail.
  __m256i acc = _mm256_setzero_si256();
  for (int t = 0; t < kpad; t += 32) {
    const __m256i xv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(xq + t));
    const __m256i wv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(wq + t));
    const __m256i xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
    const __m256i wlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
    const __m256i xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
    const __m256i whi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, wlo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, whi));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
  return _mm_cvtsi128_si32(s);
}

}  // namespace nettag::detail

#endif  // x86-64
