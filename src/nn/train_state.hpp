// TrainState: the optimizer-and-progress companion of a model checkpoint, so
// an interrupted pre-training or fine-tuning run can resume *bit-identically*
// (docs/ARCHITECTURE.md §8).
//
// A checkpoint prefix owns three files: `<prefix>.exprllm.bin` and
// `<prefix>.tagformer.bin` (model parameters, nn/serialize.hpp) and
// `<prefix>.trainer.bin` (this record). The record captures everything the
// training loop needs beyond the parameters themselves: which phase the run
// was in, the next step to execute, the training-loop RNG stream, Adam's
// bias-correction count and moment estimates, the values of any parameters
// trained outside the model files (fine-tuning heads, the [MASK] embedding),
// and the loss history so a resumed run reports the same curve.
//
// All writes go through temp+rename and carry a trailing CRC-32; a load
// either returns a fully validated record or throws — never partial state.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nettag {

/// Checkpointing policy a training loop (pretrain, finetune heads) follows.
/// Default-constructed, checkpointing is off and the loop behaves exactly as
/// before this struct existed.
struct TrainCheckpoint {
  /// Checkpoint file prefix (empty: no checkpoints are written). The loop
  /// writes `<prefix>.ckpt` + parameter files + `<prefix>.trainer.bin`, all
  /// atomically, so the prefix is loadable at any instant.
  std::string prefix;
  /// Save every N completed steps of the current phase (<= 0: only at phase
  /// boundaries and on stop).
  int every = 0;
  /// Cooperative stop flag (util/signal.hpp): when set, the loop finishes
  /// the step in flight, checkpoints, and returns with `interrupted`.
  const std::atomic<bool>* stop = nullptr;
  /// Test hook: behave exactly like `stop` after this many training-loop
  /// iterations, counted across phases (-1: disabled). Lets tests interrupt
  /// at a precise, reproducible point without racing a real signal.
  long halt_after_steps = -1;

  bool enabled() const { return !prefix.empty(); }
};

struct TrainState {
  /// Training phase the checkpoint was taken in. Pre-training uses "expr"
  /// (step 1), "tag" (step 2), and "done"; fine-tuning heads use "head".
  std::string phase;
  /// First step of `phase` that has NOT been executed yet (0 at a phase
  /// boundary, i.e. the step-1/step-2 handoff checkpoint).
  std::uint64_t next_step = 0;
  /// Serialized mt19937_64 stream of the training loop (Rng::state()).
  /// Empty at a phase boundary: the resumed run derives the phase stream
  /// the same way an uninterrupted run would.
  std::string rng_state;
  /// Adam bias-correction count and per-parameter moment estimates, in the
  /// optimizer's parameter-list order. Empty moments mean "fresh optimizer"
  /// (again the phase-boundary case).
  long adam_t = 0;
  std::vector<Mat> adam_m;
  std::vector<Mat> adam_v;
  /// Flat values of trainable tensors that live outside the model parameter
  /// files, concatenated in a fixed order the producing loop documents
  /// (pre-training: class head, size head, [MASK] embedding; fine-tuning:
  /// the head's own parameters).
  std::vector<float> extra_params;
  /// Per-step losses of the current phase, up to (excluding) next_step.
  std::vector<float> loss_history;
  /// Losses of the already-completed earlier phase (step-1 expression
  /// losses once the run is in "tag"), so the final report is identical.
  std::vector<float> prior_losses;
  /// Size of the training set the loop was iterating (sanity check: a
  /// resume that prepared a different dataset cannot be bit-identical).
  std::uint64_t dataset_size = 0;
  /// Streaming pre-training: index of the corpus shard the loop was
  /// consuming (core/corpus_stream.hpp). Always 0 for in-memory training,
  /// so the classic path round-trips unchanged.
  std::uint64_t shard_index = 0;
};

/// The TrainState file for a checkpoint prefix: `<prefix>.trainer.bin`.
std::string train_state_path(const std::string& prefix);

/// Writes the record via temp+rename with a trailing CRC-32 over every
/// preceding byte. Throws std::runtime_error on I/O failure.
void save_train_state(const std::string& path, const TrainState& state);

/// Reads a record written by save_train_state. Magic, every field length,
/// the trailing CRC, and the exact file size are all validated before
/// anything is returned; a truncated, padded, or corrupted file throws
/// std::runtime_error.
TrainState load_train_state(const std::string& path);

/// Concatenates the values of `params` into one flat vector, list order
/// (TrainState::extra_params producer).
std::vector<float> flatten_param_values(const std::vector<Tensor>& params);

/// Inverse of flatten_param_values: writes `values` back into `params`.
/// Throws std::runtime_error (before touching anything) when the total
/// element count does not match.
void restore_param_values(const std::vector<Tensor>& params,
                          const std::vector<float>& values);

}  // namespace nettag
