#include "nn/liveness.hpp"

#include <algorithm>
#include <unordered_map>

namespace nettag::plan {

BwdReads backward_reads(const std::string& op) {
  // Derived from the closures in nn/tensor.cpp. Keep in sync when adding ops;
  // an op missing here is treated conservatively (its buffers live through
  // the whole backward phase), which only costs slab bytes, never safety.
  static const std::unordered_map<std::string, BwdReads> kTable = {
      {"matmul", {false, true}},       {"add", {false, false}},
      {"add_rowvec", {false, false}},  {"sub", {false, false}},
      {"mul", {false, true}},          {"scale", {false, false}},
      {"relu", {false, true}},         {"gelu", {false, true}},
      {"tanh", {true, false}},         {"sigmoid", {true, false}},
      {"transpose", {false, false}},   {"concat_cols", {false, false}},
      {"concat_rows", {false, false}}, {"slice_rows", {false, false}},
      {"mean_rows", {false, false}},   {"sum_rows", {false, false}},
      {"softmax_rows", {true, false}}, {"layer_norm", {false, true}},
      {"embedding", {false, false}},   {"normalize_rows", {true, false}},
      {"dropout", {false, false}},     {"cross_entropy", {false, false}},
      {"mse_loss", {false, true}},
  };
  const auto it = kTable.find(op);
  if (it == kTable.end()) return BwdReads{true, true};
  return it->second;
}

LivenessResult analyze_liveness(const Tape& tape) {
  const long n = static_cast<long>(tape.entries.size());
  LivenessResult out;
  out.value.resize(tape.entries.size());
  out.grad.resize(tape.entries.size());
  out.temps.resize(tape.entries.size());
  out.horizon = n + static_cast<long>(tape.bwd_order.size());

  // Latest backward event time per slot (a closure can run more than once
  // when several backward sweeps share subgraph nodes).
  std::vector<long> bwd_time(tape.entries.size(), -1);
  for (std::size_t j = 0; j < tape.bwd_order.size(); ++j) {
    const int slot = tape.bwd_order[j];
    if (slot >= 0 && slot < n) {
      bwd_time[static_cast<std::size_t>(slot)] =
          std::max(bwd_time[static_cast<std::size_t>(slot)],
                   n + static_cast<long>(j));
    }
  }

  for (long i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    out.value[ui] = {i, i};
    out.grad[ui] = {i, i};
    const long bt = bwd_time[ui];
    const BwdReads own = backward_reads(tape.entries[ui].op);
    if (bt >= 0) {
      if (own.own_value) out.value[ui].last = std::max(out.value[ui].last, bt);
      // The closure reads o->grad at its own event, which is also the last
      // touch of the gradient buffer.
      out.grad[ui].last = std::max(out.grad[ui].last, bt);
    }
    out.temps[ui].reserve(tape.entries[ui].temps.size());
    for (std::size_t k = 0; k < tape.entries[ui].temps.size(); ++k) {
      out.temps[ui].push_back({i, bt >= 0 ? std::max(i, bt) : i});
    }
  }

  // Backward roots are the nodes handed to run_backward — step loops read
  // their values after the sweep (loss logging), so pin them to the horizon.
  for (const int slot : tape.bwd_roots) {
    if (slot >= 0 && slot < n) {
      out.value[static_cast<std::size_t>(slot)].last = out.horizon;
    }
  }
  // Explicitly kept nodes (keep_alive): the scope owner reads their buffers
  // after the step, e.g. embedding outputs returned to the caller.
  for (const int slot : tape.kept) {
    if (slot >= 0 && slot < n) {
      const auto us = static_cast<std::size_t>(slot);
      out.value[us].last = out.horizon;
      out.grad[us].last = out.horizon;
    }
  }

  // Consumer edges: op j reading/writing parent i's buffers.
  for (long j = 0; j < n; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    const BwdReads rj = backward_reads(tape.entries[uj].op);
    const long bt = bwd_time[uj];
    for (const int p : tape.entries[uj].parents) {
      if (p < 0 || p >= n) continue;
      const auto up = static_cast<std::size_t>(p);
      // forward read of the parent value at time j
      out.value[up].last = std::max(out.value[up].last, j);
      if (bt >= 0) {
        // backward of consumer j: reads parent values if the closure does,
        // and accumulates into the parent gradient either way.
        if (rj.parent_values) {
          out.value[up].last = std::max(out.value[up].last, bt);
        }
        if (tape.entries[up].requires_grad) {
          out.grad[up].last = std::max(out.grad[up].last, bt);
        }
      }
    }
  }
  return out;
}

}  // namespace nettag::plan
