// Parameter (de)serialization so pre-trained NetTAG models can be saved and
// reloaded (the paper releases pre-trained weights; we do the same).
//
// Crash-safety contract (docs/ARCHITECTURE.md §8): every writer here emits
// to `<path>.tmp` and renames onto the final path (util/atomic_io.hpp), so a
// reader never observes a torn file; every reader validates the complete
// file — exact payload size for binary parameter files, a trailing CRC-32
// line for text manifests — *before* mutating any caller state, so a load
// either succeeds fully or throws with the target untouched.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace nettag {

/// Writes all parameter matrices (shapes + data) to a binary file, via
/// temp+rename. Throws std::runtime_error on I/O failure (the final path is
/// untouched in that case).
void save_params(const std::string& path, const std::vector<Tensor>& params);

/// Loads parameters saved by save_params into an *identically shaped*
/// parameter list. The file must match exactly: magic, parameter count,
/// every shape, and the total byte size (a truncated or padded file is
/// rejected even when the header reads succeed). Params are only written
/// after the whole file validates — on throw they keep their prior values.
void load_params(const std::string& path, const std::vector<Tensor>& params);

/// Writes a "key value" text manifest, one pair per line, order preserved,
/// via temp+rename. Keys must be non-empty and contain no whitespace; values
/// may contain spaces but no newlines. A final "checksum <crc32-hex>" line
/// covering every preceding byte is appended automatically (the key
/// "checksum" is therefore reserved). Used for checkpoint metadata
/// (architecture description) next to the binary parameter files.
void save_manifest(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& entries);

/// Parses a manifest written by save_manifest. Blank lines and lines
/// starting with '#' are skipped. The trailing checksum line is verified and
/// stripped from the result; a manifest without one, or whose bytes do not
/// match it (truncation, corruption, hand edits), is rejected. When
/// `linenos` is non-null it receives the 1-based source line of each
/// returned entry (duplicate-key diagnostics). Throws std::runtime_error on
/// I/O failure, a line with no value, or checksum mismatch.
std::vector<std::pair<std::string, std::string>> load_manifest(
    const std::string& path, std::vector<int>* linenos = nullptr);

}  // namespace nettag
