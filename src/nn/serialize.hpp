// Parameter (de)serialization so pre-trained NetTAG models can be saved and
// reloaded (the paper releases pre-trained weights; we do the same).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace nettag {

/// Writes all parameter matrices (shapes + data) to a binary file.
/// Throws std::runtime_error on I/O failure.
void save_params(const std::string& path, const std::vector<Tensor>& params);

/// Loads parameters saved by save_params into an *identically shaped*
/// parameter list. Throws std::runtime_error on shape or I/O mismatch.
void load_params(const std::string& path, const std::vector<Tensor>& params);

/// Writes a "key value" text manifest, one pair per line, order preserved.
/// Keys must be non-empty and contain no whitespace; values may contain
/// spaces but no newlines. Used for checkpoint metadata (architecture
/// description) next to the binary parameter files.
void save_manifest(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& entries);

/// Parses a manifest written by save_manifest. Blank lines and lines
/// starting with '#' are skipped. Throws std::runtime_error on I/O failure
/// or a line with no value.
std::vector<std::pair<std::string, std::string>> load_manifest(
    const std::string& path);

}  // namespace nettag
