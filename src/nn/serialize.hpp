// Parameter (de)serialization so pre-trained NetTAG models can be saved and
// reloaded (the paper releases pre-trained weights; we do the same).
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nettag {

/// Writes all parameter matrices (shapes + data) to a binary file.
/// Throws std::runtime_error on I/O failure.
void save_params(const std::string& path, const std::vector<Tensor>& params);

/// Loads parameters saved by save_params into an *identically shaped*
/// parameter list. Throws std::runtime_error on shape or I/O mismatch.
void load_params(const std::string& path, const std::vector<Tensor>& params);

}  // namespace nettag
