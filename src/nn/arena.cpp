#include "nn/arena.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <new>

namespace nettag::plan {

namespace {

// Slab registry: append-only fixed array published with release/acquire on
// the count, so pointer_in_slab is a lock-free linear scan. Slabs are never
// unregistered; geometric arena growth keeps the entry count tiny.
constexpr int kMaxSlabs = 256;

struct Slab {
  void* base = nullptr;
  std::size_t size = 0;
};

Slab g_slabs[kMaxSlabs];
std::atomic<int> g_slab_count{0};
std::mutex g_slab_mu;

std::atomic<unsigned long long> g_heap_allocs{0};
std::atomic<unsigned long long> g_arena_served{0};
std::atomic<unsigned long long> g_slab_bytes{0};

/// Registers a slab; false when the registry is full (planning then stays
/// disabled for the requesting scope — never fatal).
bool register_slab(void* base, std::size_t size) {
  std::lock_guard<std::mutex> lk(g_slab_mu);
  const int n = g_slab_count.load(std::memory_order_relaxed);
  if (n >= kMaxSlabs) return false;
  g_slabs[n].base = base;
  g_slabs[n].size = size;
  g_slab_count.store(n + 1, std::memory_order_release);
  return true;
}

struct Armed {
  void* ptr = nullptr;
  std::size_t bytes = 0;
};
thread_local Armed t_armed;

// Per-thread arena slab. Offsets in a MemPlan are relative to this base; the
// slab is recycled wholesale at every plan-scope begin on the owning thread.
struct ThreadArena {
  char* base = nullptr;
  std::size_t cap = 0;
};
thread_local ThreadArena t_arena;

constexpr std::size_t kSlabAlign = 64;

}  // namespace

namespace detail {

void* take_armed(std::size_t bytes) noexcept {
  if (t_armed.ptr == nullptr || bytes == 0) return nullptr;
  if (t_armed.bytes != bytes) return nullptr;
  void* p = t_armed.ptr;
  t_armed = Armed{};
  g_arena_served.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* heap_alloc(std::size_t bytes) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(bytes);
}

void release(void* p) noexcept {
  if (p == nullptr) return;
  if (pointer_in_slab(p)) return;
  ::operator delete(p);
}

}  // namespace detail

void arm(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr || bytes == 0) return;
  t_armed.ptr = ptr;
  t_armed.bytes = bytes;
}

void disarm() noexcept { t_armed = Armed{}; }

char* thread_arena(std::size_t bytes) {
  if (bytes == 0) bytes = kSlabAlign;
  if (t_arena.base != nullptr && t_arena.cap >= bytes) return t_arena.base;
  std::size_t want = t_arena.cap * 2;
  if (want < bytes) want = bytes;
  want = (want + kSlabAlign - 1) / kSlabAlign * kSlabAlign;
  char* base = static_cast<char*>(
      ::operator new(want, std::align_val_t{kSlabAlign}));
  if (!register_slab(base, want)) {
    ::operator delete(base, std::align_val_t{kSlabAlign});
    return nullptr;
  }
  g_slab_bytes.fetch_add(want - t_arena.cap, std::memory_order_relaxed);
  // The old slab stays registered: Mats planned into it during the previous
  // scope may outlive the growth and must still deallocate as no-ops.
  t_arena.base = base;
  t_arena.cap = want;
  return base;
}

bool pointer_in_slab(const void* p) noexcept {
  const int n = g_slab_count.load(std::memory_order_acquire);
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  for (int i = 0; i < n; ++i) {
    const auto base = reinterpret_cast<std::uintptr_t>(g_slabs[i].base);
    if (addr >= base && addr < base + g_slabs[i].size) return true;
  }
  return false;
}

unsigned long long heap_mat_allocs() noexcept {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

unsigned long long arena_served_allocs() noexcept {
  return g_arena_served.load(std::memory_order_relaxed);
}

unsigned long long slab_bytes_reserved() noexcept {
  return g_slab_bytes.load(std::memory_order_relaxed);
}

}  // namespace nettag::plan
