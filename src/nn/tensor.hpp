// Minimal dense-matrix reverse-mode autograd: the training-framework
// substitute (the paper uses PyTorch on 12 GPUs; we train models small
// enough for one CPU core).
//
// A Tensor is a shared handle to a Node holding a row-major float matrix,
// its gradient, and a backward closure. Ops build the graph eagerly;
// backward() topologically sorts the reachable graph and accumulates
// gradients. All shapes are 2-D (rows x cols); vectors are 1xN or Nx1.
//
// Invariants: every op checks its shape contract with NETTAG_CHECK
// (analysis/check.hpp) — active in release builds, throwing CheckError with
// the offending shapes. With deep checks on (NETTAG_CHECK=1 env var), every
// op output is additionally scanned for NaN/Inf after the forward and every
// gradient after the backward sweep, naming the producing op.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/check.hpp"
#include "nn/arena.hpp"
#include "util/rng.hpp"

namespace nettag {

/// Plain dense matrix (row-major). Element storage is a PlanAlloc vector
/// (nn/arena.hpp): identical to std::vector<float> behaviour everywhere,
/// except that the memory planner can serve planned buffers from a reusable
/// arena slab instead of the heap.
struct Mat {
  /// Dimension cap so rows*cols can never wrap std::size_t (and is rejected
  /// long before a bogus multi-terabyte vector allocation is attempted).
  static constexpr std::size_t kMaxElems = std::size_t{1} << 40;

  int rows = 0;
  int cols = 0;
  plan::FloatVec v;

  Mat() = default;
  Mat(int r, int c) : rows(r), cols(c) {
    NETTAG_CHECK(r >= 0 && c >= 0,
                 "Mat: negative dimensions " + std::to_string(r) + "x" +
                     std::to_string(c));
    NETTAG_CHECK(r == 0 || static_cast<std::size_t>(c) <=
                               kMaxElems / static_cast<std::size_t>(r),
                 "Mat: rows*cols overflows element cap at " +
                     std::to_string(r) + "x" + std::to_string(c));
    v.assign(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0.f);
  }

  float& at(int r, int c) { return v[static_cast<std::size_t>(r) * cols + c]; }
  float at(int r, int c) const { return v[static_cast<std::size_t>(r) * cols + c]; }
  std::size_t size() const { return v.size(); }
};

class Node;
using Tensor = std::shared_ptr<Node>;

struct PackedMat;  // nn/packed.hpp — int8 serve-time copy of a weight matrix

/// One autograd graph node.
class Node {
 public:
  Mat value;
  Mat grad;                       ///< same shape as value (lazily allocated)
  const char* op = "leaf";        ///< producing op name (diagnostics only)
  bool requires_grad = false;
  std::vector<Tensor> parents;
  std::function<void()> backward_fn;  ///< propagates this->grad to parents
  /// Optional int8 packed copy of `value`, attached only by the serve path
  /// (pack_model_weights); when set, matmul uses it for the forward product.
  /// Training never sets this, so fp32 results and resume stay untouched.
  std::shared_ptr<const PackedMat> packed;
  /// Tape slot assigned by the active plan scope (nn/tape.hpp); -1 for
  /// leaves and nodes built outside a scope. Reset when the scope ends.
  int plan_slot = -1;

  explicit Node(Mat v, bool rg = false) : value(std::move(v)), requires_grad(rg) {
    if (requires_grad) grad = Mat(value.rows, value.cols);
  }

  /// (Re)allocates the gradient to match the value shape. A reallocation
  /// explicitly zero-fills: a node whose value was reshaped mid-graph must
  /// never see stale gradient bytes from a previous step.
  void ensure_grad() {
    if (grad.rows != value.rows || grad.cols != value.cols) {
      grad = Mat(value.rows, value.cols);
      std::fill(grad.v.begin(), grad.v.end(), 0.f);
    }
  }

  void zero_grad() { std::fill(grad.v.begin(), grad.v.end(), 0.f); }
};

// --- construction ------------------------------------------------------------

/// Leaf tensor from a matrix. `requires_grad=true` marks a trainable
/// parameter or an input needing gradients.
Tensor make_tensor(Mat m, bool requires_grad = false);

/// Trainable parameter with scaled-normal init (stddev = scale/sqrt(cols)).
Tensor make_param(int rows, int cols, Rng& rng, float scale = 1.0f);

/// Constant scalar wrapped as 1x1.
Tensor scalar(float v);

// --- ops (each returns a new graph node) --------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b);
Tensor add(const Tensor& a, const Tensor& b);        ///< same shape
Tensor add_rowvec(const Tensor& a, const Tensor& b); ///< a: NxD, b: 1xD
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);        ///< elementwise
Tensor scale(const Tensor& a, float s);
Tensor relu(const Tensor& a);
Tensor gelu(const Tensor& a);                        ///< tanh approximation
Tensor tanh_op(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor transpose(const Tensor& a);
Tensor concat_cols(const Tensor& a, const Tensor& b);
/// Stacks same-width tensors vertically (sum of rows x D).
Tensor concat_rows(const std::vector<Tensor>& parts);
Tensor slice_rows(const Tensor& a, int start, int count);
Tensor mean_rows(const Tensor& a);                   ///< NxD -> 1xD
Tensor sum_rows(const Tensor& a);                    ///< NxD -> 1xD
Tensor softmax_rows(const Tensor& a);
Tensor layernorm_rows(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                      float eps = 1e-5f);
/// Gathers rows of `table` (VxD) by ids -> NxD; gradients flow into table.
Tensor embedding(const Tensor& table, const std::vector<int>& ids);
/// L2-normalizes each row (for cosine similarity).
Tensor normalize_rows(const Tensor& a, float eps = 1e-8f);
/// Inverted dropout; identity when `train` is false or p == 0.
Tensor dropout(const Tensor& a, float p, bool train, Rng& rng);

// --- losses (return 1x1 scalars) ----------------------------------------------

/// Mean softmax cross-entropy of logits (NxC) against integer targets.
Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets);
/// Mean squared error against a constant target matrix.
Tensor mse_loss(const Tensor& pred, const Mat& target);
/// InfoNCE: rows of `anchors` vs rows of `positives` (both NxD); the i-th
/// positive is the matching row, all other rows in `positives` are negatives.
/// Cosine similarities scaled by 1/temperature.
Tensor info_nce(const Tensor& anchors, const Tensor& positives,
                float temperature = 0.1f);

// --- engine -------------------------------------------------------------------

/// Runs reverse-mode autodiff from `loss` (must be 1x1): seeds d(loss)=1 and
/// accumulates gradients into every reachable requires_grad node.
void backward(const Tensor& loss);

/// Runs reverse-mode autodiff from `root` without seeding: root->grad must
/// already hold the upstream gradient (any shape). Used by the data-parallel
/// training step to continue a backward pass into a detached subgraph.
void backward_seeded(const Tensor& root);

/// Adam optimizer over an explicit parameter list.
class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, float lr = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  // --- checkpoint access (nn/train_state.hpp) -----------------------------
  /// Bias-correction step count (number of step() calls applied).
  long step_count() const { return t_; }
  /// First/second moment estimates, one Mat per parameter in list order.
  const std::vector<Mat>& moment1() const { return m_; }
  const std::vector<Mat>& moment2() const { return v_; }
  /// Restores optimizer state from a checkpoint. Shapes must match the
  /// parameter list exactly; throws std::runtime_error otherwise (the
  /// optimizer is left untouched on failure).
  void restore(long t, std::vector<Mat> m, std::vector<Mat> v);

 private:
  std::vector<Tensor> params_;
  std::vector<Mat> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

}  // namespace nettag
