#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace nettag {

namespace {
constexpr std::uint32_t kMagic = 0x4e544147;  // "NTAG"
}

void save_params(const std::string& path, const std::vector<Tensor>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    const std::int32_t r = p->value.rows, c = p->value.cols;
    out.write(reinterpret_cast<const char*>(&r), sizeof(r));
    out.write(reinterpret_cast<const char*>(&c), sizeof(c));
    out.write(reinterpret_cast<const char*>(p->value.v.data()),
              static_cast<std::streamsize>(p->value.v.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(const std::string& path, const std::vector<Tensor>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (magic != kMagic) throw std::runtime_error("load_params: bad magic in " + path);
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch in " + path);
  }
  for (const Tensor& p : params) {
    std::int32_t r = 0, c = 0;
    in.read(reinterpret_cast<char*>(&r), sizeof(r));
    in.read(reinterpret_cast<char*>(&c), sizeof(c));
    if (r != p->value.rows || c != p->value.cols) {
      throw std::runtime_error("load_params: shape mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(p->value.v.data()),
            static_cast<std::streamsize>(p->value.v.size() * sizeof(float)));
  }
  if (!in) throw std::runtime_error("load_params: truncated file " + path);
}

void save_manifest(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_manifest: cannot open " + path);
  for (const auto& [key, value] : entries) {
    if (key.empty() || key.find_first_of(" \t\n") != std::string::npos) {
      throw std::runtime_error("save_manifest: bad key '" + key + "'");
    }
    if (value.find('\n') != std::string::npos) {
      throw std::runtime_error("save_manifest: value for '" + key +
                               "' contains a newline");
    }
    out << key << ' ' << value << '\n';
  }
  if (!out) throw std::runtime_error("save_manifest: write failed for " + path);
}

std::vector<std::pair<std::string, std::string>> load_manifest(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_manifest: cannot open " + path);
  std::vector<std::pair<std::string, std::string>> entries;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      throw std::runtime_error("load_manifest: " + path + ": line " +
                               std::to_string(lineno) + ": expected 'key value'");
    }
    entries.emplace_back(line.substr(0, sp), line.substr(sp + 1));
  }
  return entries;
}

}  // namespace nettag
