#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_io.hpp"
#include "util/checksum.hpp"

namespace nettag {

namespace {
constexpr std::uint32_t kMagic = 0x4e544147;  // "NTAG"
constexpr const char* kChecksumKey = "checksum";
}  // namespace

void save_params(const std::string& path, const std::vector<Tensor>& params) {
  AtomicFileWriter writer(path, /*binary=*/true);
  std::ofstream& out = writer.stream();
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    const std::int32_t r = p->value.rows, c = p->value.cols;
    out.write(reinterpret_cast<const char*>(&r), sizeof(r));
    out.write(reinterpret_cast<const char*>(&c), sizeof(c));
    out.write(reinterpret_cast<const char*>(p->value.v.data()),
              static_cast<std::streamsize>(p->value.v.size() * sizeof(float)));
  }
  writer.commit();
}

void load_params(const std::string& path, const std::vector<Tensor>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_params: bad magic in " + path);
  }
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch in " + path);
  }
  // Stage every tensor into scratch buffers and validate the complete file
  // first; params are committed only after everything checks out, so a
  // truncated or corrupt file never leaves them half-loaded.
  std::vector<Mat> staged;
  staged.reserve(params.size());
  for (const Tensor& p : params) {
    std::int32_t r = 0, c = 0;
    in.read(reinterpret_cast<char*>(&r), sizeof(r));
    in.read(reinterpret_cast<char*>(&c), sizeof(c));
    if (!in) throw std::runtime_error("load_params: truncated file " + path);
    if (r != p->value.rows || c != p->value.cols) {
      throw std::runtime_error("load_params: shape mismatch in " + path);
    }
    Mat m(r, c);
    in.read(reinterpret_cast<char*>(m.v.data()),
            static_cast<std::streamsize>(m.v.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_params: truncated file " + path);
    staged.push_back(std::move(m));
  }
  // The declared payload must account for the *whole* file: trailing bytes
  // mean the header under-declares what was written (a torn or mixed-up
  // file), not a benign extension.
  in.peek();
  if (!in.eof()) {
    throw std::runtime_error(
        "load_params: file longer than its declared payload: " + path);
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    params[k]->value = std::move(staged[k]);
  }
}

void save_manifest(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::string body;
  for (const auto& [key, value] : entries) {
    if (key.empty() || key.find_first_of(" \t\n") != std::string::npos) {
      throw std::runtime_error("save_manifest: bad key '" + key + "'");
    }
    if (key == kChecksumKey) {
      throw std::runtime_error(
          "save_manifest: key 'checksum' is reserved for the integrity line");
    }
    if (value.find('\n') != std::string::npos) {
      throw std::runtime_error("save_manifest: value for '" + key +
                               "' contains a newline");
    }
    body += key;
    body += ' ';
    body += value;
    body += '\n';
  }
  AtomicFileWriter writer(path, /*binary=*/false);
  writer.stream() << body << kChecksumKey << ' ' << crc32_hex(crc32(body))
                  << '\n';
  writer.commit();
}

std::vector<std::pair<std::string, std::string>> load_manifest(
    const std::string& path, std::vector<int>* linenos) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_manifest: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // The last line must be the integrity line; verify it covers every byte
  // before it, so truncation anywhere (including of the checksum line
  // itself) is detected before any entry is interpreted.
  const std::string marker = std::string(kChecksumKey) + ' ';
  const std::size_t marker_at = content.rfind("\n" + marker);
  std::size_t body_len, sum_at;
  if (content.compare(0, marker.size(), marker) == 0 &&
      marker_at == std::string::npos) {
    body_len = 0;  // empty manifest: checksum is the first and only line
    sum_at = marker.size();
  } else if (marker_at != std::string::npos) {
    body_len = marker_at + 1;
    sum_at = body_len + marker.size();
  } else {
    throw std::runtime_error("load_manifest: " + path +
                             ": missing trailing checksum line (truncated or "
                             "not written by save_manifest)");
  }
  std::string sum = content.substr(sum_at);
  while (!sum.empty() && (sum.back() == '\n' || sum.back() == '\r')) {
    sum.pop_back();
  }
  if (sum != crc32_hex(crc32(content.data(), body_len))) {
    throw std::runtime_error("load_manifest: " + path +
                             ": checksum mismatch (file truncated or "
                             "corrupted)");
  }

  std::vector<std::pair<std::string, std::string>> entries;
  std::istringstream lines(content.substr(0, body_len));
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      throw std::runtime_error("load_manifest: " + path + ": line " +
                               std::to_string(lineno) + ": expected 'key value'");
    }
    entries.emplace_back(line.substr(0, sp), line.substr(sp + 1));
    if (linenos) linenos->push_back(lineno);
  }
  return entries;
}

}  // namespace nettag
