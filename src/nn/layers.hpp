// Neural layers built on the autograd tensor: linear, layer norm, embedding,
// multi-head bidirectional self-attention, transformer block, and MLP heads.
// These are the building blocks for ExprEncoder (the ExprLLM substitute),
// TAGFormer, the auxiliary encoders, and the fine-tuning heads.
#pragma once

#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace nettag {

/// Base for parameterized modules: exposes a flat parameter list for Adam
/// and for (de)serialization.
class Module {
 public:
  virtual ~Module() = default;
  virtual std::vector<Tensor> params() const = 0;

  /// Total scalar parameter count.
  std::size_t num_params() const;
};

/// y = x W + b.
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng& rng);
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> params() const override { return {w_, b_}; }

 private:
  Tensor w_, b_;
};

/// Row-wise layer normalization with learned gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> params() const override { return {gamma_, beta_}; }

 private:
  Tensor gamma_, beta_;
};

/// Token embedding table.
class EmbeddingLayer : public Module {
 public:
  EmbeddingLayer(int vocab, int dim, Rng& rng);
  Tensor forward(const std::vector<int>& ids) const;
  std::vector<Tensor> params() const override { return {table_}; }
  int dim() const { return table_->value.cols; }

 private:
  Tensor table_;
};

/// Multi-head bidirectional self-attention over a (seq_len x d_model) input.
/// Bidirectional (not causal) — ExprLLM converts the decoder-only LLM to
/// bidirectional attention following LLM2Vec; we build it that way directly.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int d_model, int num_heads, Rng& rng);
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> params() const override;

 private:
  int d_model_, num_heads_, d_head_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;
};

/// Pre-norm transformer encoder block: x + MHSA(LN(x)); x + FFN(LN(x)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int d_model, int num_heads, int d_ff, Rng& rng);
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> params() const override;

 private:
  std::unique_ptr<LayerNorm> ln1_, ln2_;
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<Linear> ff1_, ff2_;
};

/// 3-layer MLP head (the paper's fine-tuning model: "each MLP contains three
/// layers"), ReLU activations.
class Mlp : public Module {
 public:
  Mlp(int in_dim, int hidden, int out_dim, Rng& rng);
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> params() const override;

 private:
  std::unique_ptr<Linear> l1_, l2_, l3_;
};

/// Collects parameters from several modules into one flat list.
std::vector<Tensor> collect_params(
    std::initializer_list<const Module*> modules);

}  // namespace nettag
