#include "core/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/lint.hpp"
#include "expr/expr.hpp"
#include "expr/tokenizer.hpp"
#include "model/graph.hpp"

namespace nettag {

namespace {

/// Builds the layout graph of one register cone from the implemented
/// (post-layout) netlist: nodes/edges follow the implemented cone, features
/// come from placement/parasitics/timing of the full implementation.
LayoutGraph cone_layout_graph(const PhysicalResult& flow, GateId register_id,
                              std::size_t max_cone_gates) {
  const RegisterCone rc =
      extract_cone(flow.implemented, register_id, max_cone_gates);
  LayoutGraph lg;
  lg.node_feats.resize(rc.cone.size());
  for (const Gate& g : rc.cone.gates()) {
    const GateId parent = rc.to_parent.at(g.id);
    const std::size_t p = static_cast<std::size_t>(parent);
    const NetParasitics& net = flow.parasitics.nets[p];
    lg.node_feats[static_cast<std::size_t>(g.id)] = {
        net.wire_cap,        net.wire_res,         net.load(),
        flow.timing.gate_delay[p], flow.placement.x[p], flow.placement.y[p]};
  }
  for (const auto& [u, v] : netlist_edges(rc.cone)) lg.edges.emplace_back(u, v);
  return lg;
}

}  // namespace

DesignSample make_design_sample(GeneratedDesign gen,
                                const CorpusOptions& options, Rng& rng) {
  DesignSample sample;
  sample.gen = std::move(gen);
  const Netlist& nl = sample.gen.netlist;

  PhysicalResult flow_opt;
  if (options.with_physical) {
    // Netlist-stage estimates (the synthesis "EDA tool" columns).
    const ToolEstimate tool = synthesis_estimate(nl);
    sample.tool_area = tool.area;
    sample.tool_power = tool.power;
    // Two label scenarios: plain P&R and optimizing P&R.
    Rng flow_rng = rng.fork();
    const PhysicalResult flow_plain = run_physical_flow(
        nl, flow_rng, /*optimize=*/false, 0.0, options.placement_passes);
    flow_opt = run_physical_flow(nl, flow_rng, /*optimize=*/true, 0.0,
                                 options.placement_passes);
    sample.area_wo_opt = flow_plain.area.total_area;
    sample.power_wo_opt = flow_plain.power.total();
    sample.area_w_opt = flow_opt.area.total_area;
    sample.power_w_opt = flow_opt.power.total();
    // The runtime label must be reproducible: shard bytes have to be
    // identical across a kill/resume of the corpus builder, so a measured
    // wall-clock value cannot be stored. Model the P&R runtime from the
    // work the placer actually performs (passes x gates x log gates per
    // flow run, two runs), calibrated to the same order of magnitude as
    // the measured figures.
    const double work = static_cast<double>(nl.size());
    sample.pr_runtime_seconds = 2e-7 *
                                static_cast<double>(options.placement_passes) *
                                work * std::log2(work + 2.0) * 2.0;
  }

  // Chunk into register cones (model inputs come from the *pre-layout*
  // netlist; labels come from the optimized implementation).
  for (GateId r : nl.registers()) {
    ConeSample cone;
    const RegisterCone rc = extract_cone(nl, r, options.max_cone_gates);
    cone.cone = rc.cone;
    cone.family = nl.source();
    cone.design = nl.name();
    cone.register_name = nl.gate(r).name;
    cone.is_state_reg = nl.gate(r).is_state_reg;
    auto it = sample.gen.reg_rtl.find(cone.register_name);
    if (it != sample.gen.reg_rtl.end()) cone.rtl_text = it->second;
    if (options.with_physical) {
      const GateId impl_reg = flow_opt.implemented.find(cone.register_name);
      if (impl_reg != kNoGate) {
        cone.clock_period = flow_opt.timing.clock_period;
        cone.slack_label =
            flow_opt.timing.slack[static_cast<std::size_t>(impl_reg)];
        cone.layout =
            cone_layout_graph(flow_opt, impl_reg, options.max_cone_gates);
        cone.has_layout = true;
      }
    }
    sample.cones.push_back(std::move(cone));
  }
  return sample;
}

Corpus build_corpus(const CorpusOptions& options, Rng& rng) {
  Corpus corpus;
  for (const FamilyProfile& profile : benchmark_families()) {
    corpus.families.push_back(profile.name);
    for (int d = 0; d < options.designs_per_family; ++d) {
      GeneratedDesign gen = generate_design(
          profile, rng, profile.name + "_d" + std::to_string(d));
      corpus.designs.push_back(
          make_design_sample(std::move(gen), options, rng));
    }
  }
  // Dataset-assembly lint seam: cheap structural + boundary + label rules
  // over every design, cone, and layout graph before anything trains on
  // them. Deep (semantic) rules stay off here; `nettag_lint --deep` and the
  // CI gate run them.
  enforce_clean(lint_corpus(corpus), "corpus assembly");
  return corpus;
}

std::vector<std::string> cone_expressions(const Netlist& cone, int k_hop) {
  std::vector<std::string> out;
  for (const Gate& g : cone.gates()) {
    if (gate_class_of(g.type) < 0) continue;  // logic gates only
    out.push_back(to_string(khop_expression(cone, g.id, k_hop)));
  }
  return out;
}

CorpusExpressions corpus_expressions(const Corpus& corpus, int k_hop) {
  CorpusExpressions exprs(corpus.designs.size());
  for (std::size_t d = 0; d < corpus.designs.size(); ++d) {
    exprs[d].reserve(corpus.designs[d].cones.size());
    for (const ConeSample& c : corpus.designs[d].cones) {
      exprs[d].push_back(cone_expressions(c.cone, k_hop));
    }
  }
  return exprs;
}

std::vector<std::string> collect_expressions(const Corpus& corpus,
                                             const CorpusExpressions& exprs,
                                             std::size_t max_per_design) {
  std::vector<std::string> out;
  for (std::size_t d = 0; d < corpus.designs.size(); ++d) {
    std::size_t taken = 0;
    for (const std::vector<std::string>& cone : exprs[d]) {
      for (const std::string& e : cone) {
        if (taken >= max_per_design) break;
        out.push_back(e);
        ++taken;
      }
      if (taken >= max_per_design) break;
    }
  }
  return out;
}

std::vector<std::string> collect_expressions(const Corpus& corpus, int k_hop,
                                             std::size_t max_per_design) {
  // Lazy per-cone variant: stops deriving expressions once a design's cap is
  // reached instead of materializing the full corpus index first.
  std::vector<std::string> out;
  for (const DesignSample& d : corpus.designs) {
    std::size_t taken = 0;
    for (const ConeSample& c : d.cones) {
      if (taken >= max_per_design) break;
      for (std::string& e : cone_expressions(c.cone, k_hop)) {
        if (taken >= max_per_design) break;
        out.push_back(std::move(e));
        ++taken;
      }
    }
  }
  return out;
}

std::vector<FamilyStats> corpus_statistics(const Corpus& corpus,
                                           const CorpusExpressions& exprs) {
  std::vector<FamilyStats> stats;
  for (const std::string& family : corpus.families) {
    FamilyStats fs;
    fs.family = family;
    double token_sum = 0, node_sum = 0;
    for (std::size_t d = 0; d < corpus.designs.size(); ++d) {
      const DesignSample& ds = corpus.designs[d];
      if (ds.gen.netlist.source() != family) continue;
      for (std::size_t c = 0; c < ds.cones.size(); ++c) {
        fs.cone_count += 1;
        node_sum += static_cast<double>(ds.cones[c].cone.size());
        for (const std::string& expr : exprs[d][c]) {
          token_sum += static_cast<double>(tokenize_text(expr).size());
          fs.expr_count += 1;
        }
      }
    }
    if (fs.expr_count) fs.avg_expr_tokens = token_sum / static_cast<double>(fs.expr_count);
    if (fs.cone_count) fs.avg_cone_nodes = node_sum / static_cast<double>(fs.cone_count);
    stats.push_back(fs);
  }
  return stats;
}

std::vector<FamilyStats> corpus_statistics(const Corpus& corpus, int k_hop) {
  return corpus_statistics(corpus, corpus_expressions(corpus, k_hop));
}

}  // namespace nettag
