// NetTag: the foundation-model facade (paper §II-C, §II-F).
//
// Wraps ExprLLM (TextEncoder over gate text attributes) and TAGFormer into
// one model that produces multi-granularity embeddings:
//   * gate embeddings   — per-node outputs of TAGFormer,
//   * cone embeddings   — the [CLS] output of a register cone,
//   * circuit embeddings— [CLS] for combinational circuits, or the sum of
//     register-cone embeddings for sequential circuits (paper §II-F).
//
// ExprLLM is frozen during TAGFormer pre-training (paper's two-step recipe);
// a bounded token-sequence-keyed cache (TextEmbeddingCache) makes the frozen
// text encoder cheap because attribute tokenization anonymizes instance
// names, so structurally identical attributes share one cache entry.
//
// The inference API (embed/embed_circuit/cone_feature) is const: one shared
// model instance serves concurrent readers (src/serve batches requests over
// it), with the text cache as the only mutable state, guarded internally.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tag.hpp"
#include "model/tagformer.hpp"
#include "model/text_encoder.hpp"
#include "netlist/netlist.hpp"

namespace nettag {

struct NetTagConfig {
  TextEncoderConfig expr_llm = TextEncoderConfig::base();
  int tag_d_model = 64;
  int tag_layers = 2;
  int out_dim = 48;
  int k_hop = 2;
  /// Ablation switch ("w/o text attributes" arm of Fig. 6): when false, the
  /// TAGFormer input uses structural one-hot features instead of ExprLLM
  /// text embeddings.
  bool use_text_attributes = true;
  /// Frozen-text-embedding cache bound (entries). The cache is keyed by
  /// anonymized token sequences, so this bounds memory under an unbounded
  /// stream of distinct attributes (serving traffic).
  std::size_t text_cache_entries = TextEmbeddingCache::kDefaultEntries;
};

/// Per-stage CPU-seconds accumulated by the embed path (serve observability).
/// Atomic so parallel cone embeds (embed_circuit fans out over the thread
/// pool) can accumulate race-free; summed worker time can therefore exceed
/// wall-clock.
struct EmbedTiming {
  std::atomic<double> tag_build{0.0};     ///< TAG construction (expressions)
  std::atomic<double> text_encode{0.0};   ///< ExprLLM rows (cache-aware)
  std::atomic<double> tagformer{0.0};     ///< TAGFormer forward
};

/// Portable pre-C++20 atomic accumulate (no atomic<double>::fetch_add).
inline void atomic_add_seconds(std::atomic<double>& slot, double seconds) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

class NetTag {
 public:
  NetTag(const NetTagConfig& config, std::uint64_t seed);

  const NetTagConfig& config() const { return config_; }
  const Vocab& vocab() const { return vocab_; }
  TextEncoder& expr_llm() { return *expr_llm_; }
  const TextEncoder& expr_llm() const { return *expr_llm_; }
  TagFormer& tagformer() { return *tagformer_; }
  const TagFormer& tagformer() const { return *tagformer_; }
  int embedding_dim() const { return config_.out_dim; }

  // --- inference API (values only; const — safe for shared concurrent use) --
  struct ConeEmbedding {
    Mat nodes;   ///< N x out_dim gate embeddings (TAGFormer-refined)
    Mat cls;     ///< 1 x out_dim graph embedding
    Mat inputs;  ///< N x tag_in_dim() raw input features (text emb | phys) —
                 ///< fine-tuning heads may consume these alongside `nodes`
  };

  /// Embeds one (cone or flat) netlist. `k_hop_override` > 0 replaces the
  /// configured expression depth (used for AIG data, where each library
  /// cell spans several AND/INV levels). `timing`, when non-null, receives
  /// per-stage seconds.
  ConeEmbedding embed(const Netlist& nl, int k_hop_override = 0,
                      EmbedTiming* timing = nullptr) const;

  /// Circuit-level embedding: [CLS] for combinational circuits, sum of
  /// register-cone [CLS] embeddings for sequential ones (paper §II-F).
  Mat embed_circuit(const Netlist& nl, std::size_t max_cone_gates = 120,
                    EmbedTiming* timing = nullptr) const;

  /// Register-cone feature row for fine-tuning (Tasks 2/3): the cone [CLS]
  /// embedding, the register node's refined embedding, the register node's
  /// raw input features (text-embedding + phys), and two netlist-stage
  /// scalars (log gate count, logic depth). Width = cone_feature_dim().
  Mat cone_feature(const Netlist& cone) const;
  int cone_feature_dim() const { return 2 * config_.out_dim + tag_in_dim() + 2; }

  // --- training-time API (keeps autograd graphs) ---------------------------
  /// TAGFormer input features for a TAG: [text embedding | x_phys] rows
  /// (constant — ExprLLM frozen, cached), or structural features in the
  /// w/o-text ablation. `base_feats` must be provided when text is off.
  Mat input_features(const TagGraph& tag, const Mat& base_feats) const;

  /// Full forward through TAGFormer with autograd (for pre-training).
  TagFormer::Output forward_features(
      const Mat& features, const std::vector<std::pair<int, int>>& edges) const;

  /// Forward from an already-built feature *tensor* (used by the masked-gate
  /// objective, whose inputs mix constant rows with a learned [MASK] row).
  TagFormer::Output forward_tensor(
      const Tensor& features,
      const std::vector<std::pair<int, int>>& edges) const;

  /// TAGFormer input width (text-emb + phys, or base + phys).
  int tag_in_dim() const;

  // --- persistence ---------------------------------------------------------
  void save(const std::string& path_prefix) const;
  void load(const std::string& path_prefix);

  void clear_text_cache() { text_cache_->clear(); }
  std::size_t text_cache_size() const { return text_cache_->size(); }
  /// Counter access for the serve `stats` endpoint.
  const TextEmbeddingCache& text_cache() const { return *text_cache_; }
  TextEmbeddingCache& text_cache() { return *text_cache_; }
  /// The cache as a shareable handle (serve/registry.hpp adopts the first
  /// replica's cache as the process-wide striped cache).
  std::shared_ptr<TextEmbeddingCache> text_cache_ptr() const {
    return text_cache_;
  }

  /// Attaches a shared text-embedding cache (replacing this model's own) and
  /// a key salt prefixed to every cache key. The serve model registry gives
  /// all replicas one striped cache but salts each replica's keys with its
  /// weights CRC: replicas loaded from the same checkpoint share entries,
  /// while different weights can never replay each other's rows (the cached
  /// value depends on the encoder parameters, not just the token sequence).
  /// Must not race with lookups (call before the model takes traffic).
  void share_text_cache(std::shared_ptr<TextEmbeddingCache> cache,
                        std::string key_salt);

 private:
  /// Frozen text embedding of one attribute, cached by token-id sequence.
  std::vector<float> cached_text_embedding(const std::string& attr) const;

  NetTagConfig config_;
  Vocab vocab_;
  Rng init_rng_;
  std::unique_ptr<TextEncoder> expr_llm_;
  std::unique_ptr<TagFormer> tagformer_;
  mutable std::shared_ptr<TextEmbeddingCache> text_cache_;
  /// Prefixed to every text-cache key (empty for a privately-owned cache).
  std::string text_key_salt_;
};

// --- checkpoints -------------------------------------------------------------
//
// save() writes bare parameter files; a *checkpoint* additionally records the
// architecture in a `<prefix>.ckpt` manifest so a consumer (the serving
// daemon, a fresh process) can reconstruct the model without out-of-band
// knowledge of its configuration.

/// Writes `<prefix>.ckpt` (architecture manifest) plus the parameter files.
void save_checkpoint(const NetTag& model, const std::string& prefix);

/// Reads the manifest written by save_checkpoint. Throws std::runtime_error
/// on missing/malformed manifests, unknown format versions, duplicate keys
/// (the error names both source lines), non-positive dimensions, or an
/// attention-head count that does not divide expr_d_model.
NetTagConfig read_checkpoint_config(const std::string& prefix);

/// CRC-32 over every parameter matrix (ExprLLM then TAGFormer, list order).
/// Cheap identity for "are these the same weights?" — folded into serve
/// cache keys so a hot-swapped checkpoint cannot replay stale entries.
std::uint32_t params_fingerprint(const NetTag& model);

/// Reconstructs a model from `<prefix>.ckpt` + parameter files. The seed
/// only affects transient init values, which load() overwrites.
std::unique_ptr<NetTag> load_checkpoint(const std::string& prefix,
                                        std::uint64_t seed = 7);

}  // namespace nettag
