// NetTag: the foundation-model facade (paper §II-C, §II-F).
//
// Wraps ExprLLM (TextEncoder over gate text attributes) and TAGFormer into
// one model that produces multi-granularity embeddings:
//   * gate embeddings   — per-node outputs of TAGFormer,
//   * cone embeddings   — the [CLS] output of a register cone,
//   * circuit embeddings— [CLS] for combinational circuits, or the sum of
//     register-cone embeddings for sequential circuits (paper §II-F).
//
// ExprLLM is frozen during TAGFormer pre-training (paper's two-step recipe);
// a token-sequence-keyed cache makes the frozen text encoder cheap because
// attribute tokenization anonymizes instance names, so structurally
// identical attributes share one cache entry.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/tag.hpp"
#include "model/tagformer.hpp"
#include "model/text_encoder.hpp"
#include "netlist/netlist.hpp"

namespace nettag {

struct NetTagConfig {
  TextEncoderConfig expr_llm = TextEncoderConfig::base();
  int tag_d_model = 64;
  int tag_layers = 2;
  int out_dim = 48;
  int k_hop = 2;
  /// Ablation switch ("w/o text attributes" arm of Fig. 6): when false, the
  /// TAGFormer input uses structural one-hot features instead of ExprLLM
  /// text embeddings.
  bool use_text_attributes = true;
};

class NetTag {
 public:
  NetTag(const NetTagConfig& config, std::uint64_t seed);

  const NetTagConfig& config() const { return config_; }
  const Vocab& vocab() const { return vocab_; }
  TextEncoder& expr_llm() { return *expr_llm_; }
  TagFormer& tagformer() { return *tagformer_; }
  int embedding_dim() const { return config_.out_dim; }

  // --- inference API (values only) ---------------------------------------
  struct ConeEmbedding {
    Mat nodes;   ///< N x out_dim gate embeddings (TAGFormer-refined)
    Mat cls;     ///< 1 x out_dim graph embedding
    Mat inputs;  ///< N x tag_in_dim() raw input features (text emb | phys) —
                 ///< fine-tuning heads may consume these alongside `nodes`
  };

  /// Embeds one (cone or flat) netlist. `k_hop_override` > 0 replaces the
  /// configured expression depth (used for AIG data, where each library
  /// cell spans several AND/INV levels).
  ConeEmbedding embed(const Netlist& nl, int k_hop_override = 0);

  /// Circuit-level embedding: [CLS] for combinational circuits, sum of
  /// register-cone [CLS] embeddings for sequential ones (paper §II-F).
  Mat embed_circuit(const Netlist& nl, std::size_t max_cone_gates = 120);

  /// Register-cone feature row for fine-tuning (Tasks 2/3): the cone [CLS]
  /// embedding, the register node's refined embedding, the register node's
  /// raw input features (text-embedding + phys), and two netlist-stage
  /// scalars (log gate count, logic depth). Width = cone_feature_dim().
  Mat cone_feature(const Netlist& cone);
  int cone_feature_dim() const { return 2 * config_.out_dim + tag_in_dim() + 2; }

  // --- training-time API (keeps autograd graphs) ---------------------------
  /// TAGFormer input features for a TAG: [text embedding | x_phys] rows
  /// (constant — ExprLLM frozen, cached), or structural features in the
  /// w/o-text ablation. `base_feats` must be provided when text is off.
  Mat input_features(const TagGraph& tag, const Mat& base_feats);

  /// Full forward through TAGFormer with autograd (for pre-training).
  TagFormer::Output forward_features(const Mat& features,
                                     const std::vector<std::pair<int, int>>& edges);

  /// Forward from an already-built feature *tensor* (used by the masked-gate
  /// objective, whose inputs mix constant rows with a learned [MASK] row).
  TagFormer::Output forward_tensor(const Tensor& features,
                                   const std::vector<std::pair<int, int>>& edges);

  /// TAGFormer input width (text-emb + phys, or base + phys).
  int tag_in_dim() const;

  // --- persistence ---------------------------------------------------------
  void save(const std::string& path_prefix) const;
  void load(const std::string& path_prefix);

  void clear_text_cache() {
    std::lock_guard<std::mutex> lk(text_cache_mu_);
    text_cache_.clear();
  }
  std::size_t text_cache_size() const {
    std::lock_guard<std::mutex> lk(text_cache_mu_);
    return text_cache_.size();
  }

 private:
  /// Frozen text embedding of one attribute, cached by token-id sequence.
  /// Thread-safe: lookup/insert under a mutex, the encode itself outside it
  /// (a racing duplicate encode produces the identical value, so which
  /// thread's insert wins does not affect results).
  std::vector<float> cached_text_embedding(const std::string& attr);

  NetTagConfig config_;
  Vocab vocab_;
  Rng init_rng_;
  std::unique_ptr<TextEncoder> expr_llm_;
  std::unique_ptr<TagFormer> tagformer_;
  mutable std::mutex text_cache_mu_;
  std::unordered_map<std::string, std::vector<float>> text_cache_;
};

}  // namespace nettag
