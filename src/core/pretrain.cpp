#include "core/pretrain.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "analysis/check.hpp"
#include "expr/expr.hpp"
#include "expr/transform.hpp"
#include "model/graph.hpp"
#include "nn/tape.hpp"
#include "rtlgen/optimize.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace nettag {

namespace {

// ---------------------------------------------------------------------------
// Data-parallel training-step machinery.
//
// A training step at width W > 1 splits the batch into contiguous shards,
// forwards each shard on its own model replica, detaches the shard outputs
// into leaf tensors, runs the (cheap) loss head plus its backward serially on
// the joint leaf graph, then continues the backward pass into each shard's
// replica graph in parallel — replica parameters are the per-worker gradient
// buffers, so no two threads ever touch the same gradient. The replica
// gradients are finally reduced into the master parameters in fixed shard
// order (0, 1, 2, ...), making multi-threaded runs bit-identical run-to-run
// at a fixed width. At width 1 the original joint-graph code path runs
// instead, so NETTAG_THREADS=1 reproduces the serial trainer exactly.
// ---------------------------------------------------------------------------

/// FNV-1a combine for the memory-planner step signatures. The signature only
/// needs "equal inputs => equal op/shape sequence"; hashing the exact sampled
/// batch (strings or cone indices) is a sound, cheap proxy for the shapes the
/// step will build. Collisions merely diverge-and-disable one signature.
std::uint64_t sig_mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL;
  return (h ^ (h >> 29)) * 0x100000001b3ULL;
}

std::uint64_t sig_mix(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return sig_mix(h, s.size());
}

/// Contiguous [begin, end) batch ranges, one per shard (same split rule as
/// parallel_for so the partition is a pure function of (n, shards)).
std::vector<std::pair<int, int>> shard_ranges(int n, int shards) {
  std::vector<std::pair<int, int>> r;
  r.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    r.emplace_back(n * s / shards, n * (s + 1) / shards);
  }
  return r;
}

/// Master parameters plus per-shard replica parameters (parallel index
/// order). Replicas act as per-worker gradient buffers.
struct ReplicaSet {
  std::vector<Tensor> master;
  std::vector<std::vector<Tensor>> clones;

  bool active() const { return !clones.empty(); }

  /// Copies master values into every replica and zeroes replica gradients
  /// (called once per step, before the sharded forwards).
  void refresh() {
    ThreadPool::instance().run_indexed(clones.size(), [&](std::size_t s) {
      for (std::size_t k = 0; k < master.size(); ++k) {
        clones[s][k]->value = master[k]->value;
        clones[s][k]->ensure_grad();
        clones[s][k]->zero_grad();
      }
    });
  }

  /// Accumulates replica gradients into the master gradients. The shard loop
  /// is innermost and strictly ordered (s = 0, 1, ...), so the float-addition
  /// sequence per element is fixed; parallelism is across parameters, which
  /// are independent.
  void reduce() {
    for (const Tensor& p : master) p->ensure_grad();
    ThreadPool::instance().run_indexed(master.size(), [&](std::size_t k) {
      Mat& g = master[k]->grad;
      for (std::size_t s = 0; s < clones.size(); ++s) {
        const Mat& cg = clones[s][k]->grad;
        for (std::size_t i = 0; i < g.v.size(); ++i) g.v[i] += cg.v[i];
      }
    });
  }
};

/// Copies the gradient accumulated on a detached leaf back onto the replica
/// output it shadows and continues the backward pass into the replica graph.
/// No-op when the leaf never received a gradient (output unused this step).
void backward_through_leaf(const Tensor& leaf, const Tensor& raw) {
  if (leaf->grad.v.empty()) return;
  raw->grad = leaf->grad;
  backward_seeded(raw);
}

// ---------------------------------------------------------------------------
// Checkpoint / interruption plumbing shared by both training phases.
//
// The resume contract (nn/train_state.hpp): every RNG stream a phase uses is
// forked from the caller's rng in a fixed order, so a resumed run re-derives
// the same streams, replays all *deterministic* preparation (corpus
// collection, auxiliary encoders, cone precomputation, head init), and then
// overwrites only *trained* state — model parameters from the checkpoint
// files, head values / Adam moments / the loop RNG from the TrainState
// record. Stop checks run once per loop iteration, after the optimizer
// step, so a signal always leaves a consistent "step fully applied" state.
// ---------------------------------------------------------------------------

/// Per-phase view of the TrainCheckpoint policy plus the cross-phase
/// iteration counter backing halt_after_steps.
struct PhaseCtx {
  const TrainCheckpoint* ck = nullptr;  ///< null: checkpointing/stop both off
  long* global_steps = nullptr;

  bool stop_requested() const {
    if (!ck) return false;
    if (ck->stop && ck->stop->load(std::memory_order_relaxed)) return true;
    return ck->halt_after_steps >= 0 && global_steps &&
           *global_steps >= ck->halt_after_steps;
  }
  bool checkpoint_due(long completed_steps) const {
    return ck && ck->every > 0 && completed_steps % ck->every == 0;
  }
  void count_step() const {
    if (global_steps) ++*global_steps;
  }
};

/// Training-step sanity: the loss must always be finite (a single-float
/// check, on in every build); with deep checks on, the global gradient norm
/// over `params` must additionally be finite and non-explosive before the
/// optimizer consumes it.
void check_training_step(const Tensor& loss, const std::vector<Tensor>& params,
                         const char* phase, int step) {
  NETTAG_CHECK(std::isfinite(loss->value.v[0]),
               std::string(phase) + ": loss became non-finite at step " +
                   std::to_string(step));
  if (!deep_checks_enabled()) return;
  double sq = 0.0;
  for (const Tensor& p : params) {
    for (const float g : p->grad.v) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  NETTAG_CHECK(std::isfinite(norm) && norm < 1e12,
               std::string(phase) + ": gradient norm " +
                   std::to_string(norm) + " at step " + std::to_string(step) +
                   " (non-finite or exploding)");
}

/// Applies random equivalence rewrites to an expression *text* (parse ->
/// transform -> print). Falls back to the original on parse failure (cannot
/// happen for our own printer output, but keeps the trainer total).
std::string transformed_expression(const std::string& text, int steps, Rng& rng) {
  try {
    return to_string(random_equivalent(parse_expr(text), rng, steps));
  } catch (const std::exception&) {
    return text;
  }
}

/// Shuffles the statement lines of an RTL snippet (positive-pair
/// augmentation for the RTL encoder).
std::string shuffled_lines(const std::string& text, Rng& rng) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  rng.shuffle(lines);
  std::ostringstream out;
  for (const auto& l : lines) out << l << "\n";
  return out.str();
}

/// Multiplicative jitter on layout node features (positive-pair
/// augmentation for the layout encoder: same topology, perturbed RC values).
Mat jittered_layout_features(const LayoutGraph& lg, Rng& rng) {
  Mat f = layout_features(lg);
  for (float& x : f.v) {
    x *= static_cast<float>(1.0 + rng.normal(0.0, 0.08));
  }
  return f;
}

}  // namespace

namespace {

/// Static-analysis property vector of an expression: log1p of operator
/// counts (AND/OR/XOR/NOT), tree depth, and support size.
Mat expression_properties(const std::string& text) {
  Mat y(1, 6);
  try {
    const ExprPtr e = parse_expr(text);
    int n_and = 0, n_or = 0, n_xor = 0, n_not = 0;
    std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& node) {
      switch (node->kind()) {
        case ExprKind::kAnd: ++n_and; break;
        case ExprKind::kOr: ++n_or; break;
        case ExprKind::kXor: ++n_xor; break;
        case ExprKind::kNot: ++n_not; break;
        default: break;
      }
      for (const auto& c : node->children()) walk(c);
    };
    walk(e);
    y.at(0, 0) = std::log1p(static_cast<float>(n_and));
    y.at(0, 1) = std::log1p(static_cast<float>(n_or));
    y.at(0, 2) = std::log1p(static_cast<float>(n_xor));
    y.at(0, 3) = std::log1p(static_cast<float>(n_not));
    y.at(0, 4) = std::log1p(static_cast<float>(e->depth()));
    y.at(0, 5) = std::log1p(static_cast<float>(support(e).size()));
  } catch (const std::exception&) {
    // Non-expression text (shouldn't happen for our printer output).
  }
  return y;
}

}  // namespace

namespace {

/// Step-1 training loop (Objective #1 + the property auxiliary), factored so
/// pretrain() can checkpoint/resume it. `resume` (may be null) must be an
/// "expr"-phase TrainState; `save_state` (may be null) persists one. Returns
/// the per-step loss history; *stopped reports an early cooperative exit.
std::vector<float> train_expr_phase(
    TextEncoder& encoder, const std::vector<std::string>& expressions,
    const PretrainOptions& options, Rng& rng, const TrainState* resume,
    const PhaseCtx& ctx, const std::function<void(TrainState)>& save_state,
    bool* stopped) {
  *stopped = false;
  std::vector<float> losses;
  if (expressions.empty() || options.expr_steps <= 0) return losses;
  if (resume && resume->next_step > 0 &&
      resume->dataset_size != expressions.size()) {
    throw std::runtime_error(
        "resume_pretrain: expression dataset has " +
        std::to_string(expressions.size()) + " entries but the checkpoint saw " +
        std::to_string(resume->dataset_size) +
        " (corpus or options changed — resume cannot be bit-identical)");
  }
  Rng head_rng = rng.fork();
  Mlp prop_head(encoder.config().out_dim, 32, 6, head_rng);
  std::vector<Tensor> params = encoder.params();
  if (options.objective_expr_props) {
    for (const Tensor& p : prop_head.params()) params.push_back(p);
  }
  Adam opt(params, options.expr_lr);

  int start_step = 0;
  if (resume && resume->next_step > 0) {
    // Encoder weights were already loaded from the checkpoint's parameter
    // files; the rest of the trained state lives in the TrainState record.
    restore_param_values(prop_head.params(), resume->extra_params);
    opt.restore(resume->adam_t, resume->adam_m, resume->adam_v);
    rng.set_state(resume->rng_state);
    losses = resume->loss_history;
    start_step = static_cast<int>(resume->next_step);
  }

  // Encoder replicas for the sharded step (width > 1 only; at width 1 the
  // joint-graph serial path below runs instead). Replica init weights are
  // irrelevant — refresh() overwrites them each step.
  const int shards = std::min(parallel_width(), options.expr_batch);
  std::vector<std::unique_ptr<TextEncoder>> clones;
  ReplicaSet reps;
  if (shards > 1) {
    reps.master = encoder.params();
    Rng clone_rng(0);
    for (int s = 0; s < shards; ++s) {
      clones.push_back(std::make_unique<TextEncoder>(
          encoder.vocab(), encoder.config(), clone_rng));
      reps.clones.push_back(clones.back()->params());
    }
  }

  for (int step = start_step; step < options.expr_steps; ++step) {
    std::vector<std::string> anchors, positives;
    std::uint64_t shape_sig = 0xcbf29ce484222325ULL;
    for (int b = 0; b < options.expr_batch; ++b) {
      const std::string& e = expressions[rng.index(expressions.size())];
      anchors.push_back(e);
      positives.push_back(
          transformed_expression(e, options.expr_transform_steps, rng));
      shape_sig = sig_mix(sig_mix(shape_sig, e), positives.back());
    }
    // At width 1 the sampled texts determine every op shape in the step; at
    // width > 1 the sharded forwards run in the pool (untaped) and only the
    // fixed-shape loss head on the caller is planned.
    plan::PlanScope plan_scope(
        "expr|" + std::to_string(shards) + "|" +
        std::to_string(options.expr_batch) + "|" +
        (shards > 1 ? std::string("head") : std::to_string(shape_sig)));
    Tensor a, p;
    std::vector<Tensor> raw_a(static_cast<std::size_t>(shards)),
        raw_p(static_cast<std::size_t>(shards));
    std::vector<Tensor> leaf_a, leaf_p;
    if (reps.active()) {
      reps.refresh();
      const auto ranges = shard_ranges(options.expr_batch, shards);
      ThreadPool::instance().run_indexed(
          static_cast<std::size_t>(shards), [&](std::size_t s) {
            const auto [b, e] = ranges[s];
            raw_a[s] = clones[s]->encode_batch(
                {anchors.begin() + b, anchors.begin() + e});
            raw_p[s] = clones[s]->encode_batch(
                {positives.begin() + b, positives.begin() + e});
          });
      for (int s = 0; s < shards; ++s) {
        leaf_a.push_back(make_tensor(raw_a[static_cast<std::size_t>(s)]->value, true));
        leaf_p.push_back(make_tensor(raw_p[static_cast<std::size_t>(s)]->value, true));
      }
      a = concat_rows(leaf_a);
      p = concat_rows(leaf_p);
    } else {
      a = encoder.encode_batch(anchors);
      p = encoder.encode_batch(positives);
    }
    Tensor loss = info_nce(a, p, options.temperature);
    if (options.objective_expr_props) {
      Mat targets(static_cast<int>(anchors.size()), 6);
      for (std::size_t i = 0; i < anchors.size(); ++i) {
        const Mat y = expression_properties(anchors[i]);
        for (int j = 0; j < 6; ++j) targets.at(static_cast<int>(i), j) = y.at(0, j);
      }
      loss = add(loss, mse_loss(prop_head.forward(a), targets));
    }
    backward(loss);
    if (reps.active()) {
      // Continue the backward pass through each shard's replica graph, then
      // fold replica gradients into the master encoder in shard order.
      ThreadPool::instance().run_indexed(
          static_cast<std::size_t>(shards), [&](std::size_t s) {
            backward_through_leaf(leaf_a[s], raw_a[s]);
            backward_through_leaf(leaf_p[s], raw_p[s]);
          });
      reps.reduce();
    }
    check_training_step(loss, params, "pretrain step 1 (expr)", step);
    opt.step();
    losses.push_back(loss->value.v[0]);
    ctx.count_step();
    const bool stop_now = ctx.stop_requested();
    if (save_state && (stop_now || ctx.checkpoint_due(step + 1))) {
      TrainState st;
      st.phase = "expr";
      st.next_step = static_cast<std::uint64_t>(step) + 1;
      st.rng_state = rng.state();
      st.adam_t = opt.step_count();
      st.adam_m = opt.moment1();
      st.adam_v = opt.moment2();
      st.extra_params = flatten_param_values(prop_head.params());
      st.loss_history = losses;
      st.dataset_size = expressions.size();
      save_state(std::move(st));
    }
    if (stop_now) {
      *stopped = true;
      break;
    }
  }
  return losses;
}

}  // namespace

std::pair<float, float> pretrain_expr_encoder(
    TextEncoder& encoder, const std::vector<std::string>& expressions,
    const PretrainOptions& options, Rng& rng) {
  bool stopped = false;
  const std::vector<float> losses = train_expr_phase(
      encoder, expressions, options, rng, nullptr, PhaseCtx{}, nullptr, &stopped);
  if (losses.empty()) return {0.f, 0.f};
  return {losses.front(), losses.back()};
}

void pretrain_rtl_encoder(TextEncoder& encoder,
                          const std::vector<std::string>& rtl_texts,
                          const PretrainOptions& options, Rng& rng) {
  if (rtl_texts.empty()) return;
  Adam opt(encoder.params(), options.aux_lr);
  for (int step = 0; step < options.aux_steps; ++step) {
    std::vector<std::string> anchors, positives;
    for (int b = 0; b < options.aux_batch; ++b) {
      const std::string& t = rtl_texts[rng.index(rtl_texts.size())];
      anchors.push_back(t);
      positives.push_back(shuffled_lines(t, rng));
    }
    Tensor loss = info_nce(encoder.encode_batch(anchors),
                           encoder.encode_batch(positives), options.temperature);
    backward(loss);
    opt.step();
  }
}

void pretrain_layout_encoder(Gcn& encoder,
                             const std::vector<LayoutGraph>& layouts,
                             const PretrainOptions& options, Rng& rng) {
  if (layouts.empty()) return;
  Adam opt(encoder.params(), options.aux_lr);
  for (int step = 0; step < options.aux_steps; ++step) {
    // Sample serially (rng draw order must match the serial trainer), then
    // fan the pure GCN forwards out across the pool in item order.
    std::vector<const LayoutGraph*> graphs;
    std::vector<Mat> jittered;
    for (int b = 0; b < options.aux_batch; ++b) {
      const LayoutGraph& lg = layouts[rng.index(layouts.size())];
      if (lg.node_feats.empty()) continue;
      graphs.push_back(&lg);
      jittered.push_back(jittered_layout_features(lg, rng));
    }
    std::vector<Tensor> anchors(graphs.size()), positives(graphs.size());
    ThreadPool::instance().run_indexed(graphs.size(), [&](std::size_t i) {
      const LayoutGraph& lg = *graphs[i];
      const int n = static_cast<int>(lg.node_feats.size());
      Tensor adj = make_tensor(normalized_adjacency(n, lg.edges), false);
      anchors[i] = encoder.forward_graph(
          make_tensor(layout_features(lg), false), adj);
      positives[i] = encoder.forward_graph(
          make_tensor(jittered[i], false), adj);
    });
    if (anchors.size() < 2) continue;
    Tensor loss = info_nce(concat_rows(anchors), concat_rows(positives),
                           options.temperature);
    backward(loss);
    opt.step();
  }
}

namespace {

/// Everything precomputed once per cone for step 2.
struct PreparedCone {
  TagGraph tag;
  Mat features;          ///< TAGFormer input (text emb | phys) — constant
  TagGraph tag_aug;      ///< functionally-equivalent rewrite
  Mat features_aug;
  std::vector<int> gate_class;  ///< per node; -1 for non-logic
  Mat size_target;              ///< 1 x num_gate_classes, log1p counts
  Mat rtl_emb;                  ///< 1 x out_dim (frozen RTL encoder), may be empty
  Mat layout_emb;               ///< 1 x out_dim (frozen layout encoder), may be empty
};

Mat size_target_of(const Netlist& nl) {
  Mat t(1, num_gate_classes());
  for (const Gate& g : nl.gates()) {
    const int cls = gate_class_of(g.type);
    if (cls >= 0) t.at(0, cls) += 1.f;
  }
  for (float& x : t.v) x = std::log1p(x);
  return t;
}

}  // namespace

namespace {

/// `shard_exprs` (may be null): precomputed per-cone expressions for this
/// corpus (the streaming shard embed product) — used instead of re-deriving
/// them. `outer_steps` (may be null): cross-shard iteration counter backing
/// halt_after_steps across a whole streaming run.
PretrainReport pretrain_impl(NetTag& model, const Corpus& corpus,
                             const PretrainOptions& options, Rng& rng,
                             const TrainState* resume,
                             const CorpusExpressions* shard_exprs = nullptr,
                             long* outer_steps = nullptr) {
  PretrainReport report;
  Timer timer;
  const TrainCheckpoint& ck = options.checkpoint;
  long global_steps = 0;
  PhaseCtx ctx;
  if (ck.enabled() || ck.stop || ck.halt_after_steps >= 0) {
    ctx.ck = &ck;
    ctx.global_steps = outer_steps ? outer_steps : &global_steps;
  }

  // A finished run needs no recomputation: report the recorded curves.
  if (resume && resume->phase == "done") {
    report.expr_losses = resume->prior_losses;
    report.tag_losses = resume->loss_history;
    if (!report.expr_losses.empty()) {
      report.expr_loss_first = report.expr_losses.front();
      report.expr_loss_last = report.expr_losses.back();
    }
    if (!report.tag_losses.empty()) {
      report.tag_loss_first = report.tag_losses.front();
      report.tag_loss_last = report.tag_losses.back();
    }
    return report;
  }

  // Fixed-order stream derivation — the heart of bit-identical resume: each
  // phase owns a fork, so a resumed run re-derives every phase stream
  // without replaying the draws an earlier (already-trained) phase made.
  Rng rng_expr = rng.fork();
  Rng rng_aux = rng.fork();
  Rng rng_prep = rng.fork();
  Rng rng_tag = rng.fork();

  const TrainState* expr_resume =
      (resume && resume->phase == "expr") ? resume : nullptr;
  const TrainState* tag_resume =
      (resume && resume->phase == "tag") ? resume : nullptr;
  if (resume && !expr_resume && !tag_resume) {
    throw std::runtime_error("resume_pretrain: unknown checkpoint phase '" +
                             resume->phase + "'");
  }

  auto save_phase_state = [&](TrainState st, std::vector<float> prior) {
    st.prior_losses = std::move(prior);
    st.shard_index = options.checkpoint_shard;
    save_checkpoint(model, ck.prefix);
    save_train_state(train_state_path(ck.prefix), st);
  };

  // ---------------- Step 1: ExprLLM expression contrastive -----------------
  std::vector<float> expr_losses;
  if (resume && !expr_resume) {
    // Expr phase completed before the checkpoint: its trained weights came
    // from the parameter files, its curve from the record.
    expr_losses = resume->prior_losses;
  } else if (model.config().use_text_attributes && options.objective_expr_cl) {
    std::vector<std::string> exprs =
        shard_exprs ? collect_expressions(corpus, *shard_exprs)
                    : collect_expressions(corpus, model.config().k_hop);
    if (exprs.size() > options.max_expressions) {
      rng_expr.shuffle(exprs);
      exprs.resize(options.max_expressions);
    }
    report.expr_dataset_size = exprs.size();
    bool stopped = false;
    expr_losses = train_expr_phase(
        model.expr_llm(), exprs, options, rng_expr, expr_resume, ctx,
        ck.enabled() ? std::function<void(TrainState)>([&](TrainState st) {
          save_phase_state(std::move(st), {});
        })
                     : std::function<void(TrainState)>(),
        &stopped);
    model.clear_text_cache();  // encoder weights changed
    if (stopped) {
      report.interrupted = true;
      report.expr_losses = std::move(expr_losses);
      report.expr_loss_first = report.expr_losses.front();
      report.expr_loss_last = report.expr_losses.back();
      report.seconds_step1 = timer.seconds();
      return report;
    }
  }
  report.expr_losses = expr_losses;
  if (!expr_losses.empty()) {
    report.expr_loss_first = expr_losses.front();
    report.expr_loss_last = expr_losses.back();
  }
  report.seconds_step1 = timer.seconds();
  timer.reset();

  // Step-1 → step-2 boundary checkpoint: phase "tag" at step 0 with no
  // trained loop state; resuming from it re-runs step 2 from scratch on the
  // step-1 weights, exactly like the uninterrupted run.
  if (ck.enabled() && !tag_resume) {
    TrainState st;
    st.phase = "tag";
    save_phase_state(std::move(st), expr_losses);
  }

  // ---------------- Auxiliary encoders (alignment only) --------------------
  std::unique_ptr<TextEncoder> rtl_encoder;
  std::unique_ptr<Gcn> layout_encoder;
  if (options.objective_align) {
    Rng aux_rng = rng_aux.fork();
    rtl_encoder = std::make_unique<TextEncoder>(
        model.vocab(), TextEncoderConfig::small(), aux_rng);
    std::vector<std::string> rtl_texts;
    std::vector<LayoutGraph> layouts;
    for (const DesignSample& d : corpus.designs) {
      for (const ConeSample& c : d.cones) {
        if (!c.rtl_text.empty()) rtl_texts.push_back(c.rtl_text);
        if (c.has_layout && !c.layout.node_feats.empty()) {
          layouts.push_back(c.layout);
        }
      }
    }
    pretrain_rtl_encoder(*rtl_encoder, rtl_texts, options, aux_rng);
    GcnConfig gc;
    gc.in_dim = layout_feature_dim();
    gc.out_dim = model.embedding_dim();
    layout_encoder = std::make_unique<Gcn>(gc, aux_rng);
    pretrain_layout_encoder(*layout_encoder, layouts, options, aux_rng);
  }

  // ---------------- Step 2: TAGFormer multi-objective ----------------------
  // Gather cones (capped, shuffled for family balance).
  std::vector<const ConeSample*> cones;
  for (const DesignSample& d : corpus.designs) {
    for (const ConeSample& c : d.cones) cones.push_back(&c);
  }
  rng_prep.shuffle(cones);
  if (cones.size() > options.max_cones) cones.resize(options.max_cones);
  report.cones_used = cones.size();
  if (tag_resume && tag_resume->next_step > 0 &&
      tag_resume->dataset_size != cones.size()) {
    throw std::runtime_error(
        "resume_pretrain: cone dataset has " + std::to_string(cones.size()) +
        " entries but the checkpoint saw " +
        std::to_string(tag_resume->dataset_size) +
        " (corpus or options changed — resume cannot be bit-identical)");
  }
  auto save_done_state = [&](const std::vector<float>& tag_losses) {
    if (!ck.enabled()) return;
    TrainState st;
    st.phase = "done";
    st.next_step = static_cast<std::uint64_t>(options.tag_steps);
    st.loss_history = tag_losses;
    st.dataset_size = cones.size();
    save_phase_state(std::move(st), expr_losses);
  };
  if (cones.empty() || options.tag_steps <= 0) {
    save_done_state({});
    return report;
  }

  // Precompute per-cone artifacts (ExprLLM frozen => features are constant).
  auto prepare_cone = [&](const ConeSample* c, Rng& cone_rng) {
    PreparedCone p;
    p.tag = build_tag(c->cone, model.config().k_hop);
    const Mat base = model.config().use_text_attributes
                         ? Mat()
                         : netlist_base_features(c->cone);
    p.features = model.input_features(p.tag, base);
    // Functionally-equivalent augmentation (positive sample for #2.2).
    Netlist aug = cleanup(logic_rewrite(c->cone, cone_rng, 0.3));
    p.tag_aug = build_tag(aug, model.config().k_hop);
    const Mat base_aug = model.config().use_text_attributes
                             ? Mat()
                             : netlist_base_features(aug);
    p.features_aug = model.input_features(p.tag_aug, base_aug);
    p.gate_class.reserve(c->cone.size());
    for (const Gate& g : c->cone.gates()) {
      p.gate_class.push_back(gate_class_of(g.type));
    }
    p.size_target = size_target_of(c->cone);
    if (options.objective_align && rtl_encoder && !c->rtl_text.empty()) {
      p.rtl_emb = rtl_encoder->encode(c->rtl_text)->value;
    }
    if (options.objective_align && layout_encoder && c->has_layout &&
        !c->layout.node_feats.empty()) {
      const int n = static_cast<int>(c->layout.node_feats.size());
      Tensor adj = make_tensor(normalized_adjacency(n, c->layout.edges), false);
      p.layout_emb = layout_encoder
                         ->forward_graph(make_tensor(layout_features(c->layout),
                                                     false),
                                         adj)
                         ->value;
    }
    return p;
  };
  std::vector<PreparedCone> prepared(cones.size());
  if (parallel_width() > 1) {
    // Fork one rng per cone serially (deterministic substreams), then
    // prepare cones in parallel — dominated by frozen-encoder forwards.
    std::vector<Rng> cone_rngs;
    cone_rngs.reserve(cones.size());
    for (std::size_t i = 0; i < cones.size(); ++i) {
      cone_rngs.push_back(rng_prep.fork());
    }
    ThreadPool::instance().run_indexed(cones.size(), [&](std::size_t i) {
      prepared[i] = prepare_cone(cones[i], cone_rngs[i]);
    });
  } else {
    for (std::size_t i = 0; i < cones.size(); ++i) {
      prepared[i] = prepare_cone(cones[i], rng_prep);
    }
  }

  // Pre-training heads. Init always runs (it consumes head_rng draws the
  // same way in fresh and resumed runs); trained values are then restored
  // over the init when resuming mid-phase.
  Rng head_rng = rng_tag.fork();
  Mlp class_head(model.embedding_dim(), 64, num_gate_classes(), head_rng);
  Mlp size_head(model.embedding_dim(), 64, num_gate_classes(), head_rng);
  Tensor mask_emb = make_param(1, model.tag_in_dim(), head_rng, 0.5f);

  std::vector<Tensor> params = model.tagformer().params();
  std::vector<Tensor> extra_params;  // saved in TrainState, fixed order
  for (const Tensor& t : class_head.params()) extra_params.push_back(t);
  for (const Tensor& t : size_head.params()) extra_params.push_back(t);
  extra_params.push_back(mask_emb);
  for (const Tensor& t : extra_params) params.push_back(t);
  Adam opt(params, options.tag_lr);

  std::vector<float> tag_losses;
  int tag_start = 0;
  if (tag_resume && tag_resume->next_step > 0) {
    restore_param_values(extra_params, tag_resume->extra_params);
    opt.restore(tag_resume->adam_t, tag_resume->adam_m, tag_resume->adam_v);
    rng_tag.set_state(tag_resume->rng_state);
    tag_losses = tag_resume->loss_history;
    tag_start = static_cast<int>(tag_resume->next_step);
  }

  // TAGFormer replicas for the sharded step (width > 1 only).
  const int tag_shards = std::min(parallel_width(), options.graph_batch);
  std::vector<std::unique_ptr<TagFormer>> tf_clones;
  ReplicaSet tf_reps;
  if (tag_shards > 1) {
    tf_reps.master = model.tagformer().params();
    Rng clone_rng(0);
    for (int s = 0; s < tag_shards; ++s) {
      tf_clones.push_back(
          std::make_unique<TagFormer>(model.tagformer().config(), clone_rng));
      tf_reps.clones.push_back(tf_clones.back()->params());
    }
  }

  for (int step = tag_start; step < options.tag_steps; ++step) {
    // Sample a batch of cones. The sampled cone indices key the planner
    // signature: the same index sequence rebuilds the same graphs, hence the
    // same op/shape sequence (mask picks only move slice offsets, which the
    // tape does not care about).
    std::vector<const PreparedCone*> batch;
    std::uint64_t cone_sig = 0xcbf29ce484222325ULL;
    for (int b = 0; b < options.graph_batch; ++b) {
      const std::size_t pick = rng_tag.index(prepared.size());
      batch.push_back(&prepared[pick]);
      cone_sig = sig_mix(cone_sig, pick);
    }
    plan::PlanScope plan_scope("tag|" + std::to_string(tag_shards) + "|" +
                               std::to_string(cone_sig));
    const std::size_t bsz = batch.size();
    const auto ranges = shard_ranges(static_cast<int>(bsz), tag_shards);

    // Sharded forwards: each shard runs its items on its own replica; the
    // [CLS] outputs are detached below so the loss head runs on leaves.
    std::vector<Tensor> raw_orig(bsz), raw_aug(bsz);
    if (tf_reps.active()) {
      tf_reps.refresh();
      ThreadPool::instance().run_indexed(
          static_cast<std::size_t>(tag_shards), [&](std::size_t s) {
            auto fwd = [&](const Mat& feats,
                           const std::vector<std::pair<int, int>>& edges) {
              Tensor adj = make_tensor(tag_adjacency(feats.rows, edges), false);
              return tf_clones[s]->forward(make_tensor(feats, false), adj);
            };
            for (int i = ranges[s].first; i < ranges[s].second; ++i) {
              const PreparedCone* p = batch[static_cast<std::size_t>(i)];
              raw_orig[static_cast<std::size_t>(i)] =
                  fwd(p->features, p->tag.edges).cls;
              if (options.objective_graph_cl) {
                raw_aug[static_cast<std::size_t>(i)] =
                    fwd(p->features_aug, p->tag_aug.edges).cls;
              }
            }
          });
    }

    std::vector<Tensor> losses;
    std::vector<Tensor> cls_orig, cls_aug, rtl_rows, layout_rows;
    bool all_aligned = true;

    for (std::size_t i = 0; i < bsz; ++i) {
      const PreparedCone* p = batch[i];
      cls_orig.push_back(
          tf_reps.active()
              ? make_tensor(raw_orig[i]->value, true)
              : model.forward_features(p->features, p->tag.edges).cls);
      // #2.3 size prediction on the graph embedding.
      if (options.objective_size) {
        losses.push_back(
            mse_loss(size_head.forward(cls_orig.back()), p->size_target));
      }
      if (options.objective_graph_cl) {
        cls_aug.push_back(
            tf_reps.active()
                ? make_tensor(raw_aug[i]->value, true)
                : model.forward_features(p->features_aug, p->tag_aug.edges).cls);
      }
      if (p->rtl_emb.rows == 1) {
        rtl_rows.push_back(make_tensor(p->rtl_emb, false));
      } else {
        all_aligned = false;
      }
      if (p->layout_emb.rows == 1) {
        layout_rows.push_back(make_tensor(p->layout_emb, false));
      } else {
        all_aligned = false;
      }
    }

    // #2.1 masked gate reconstruction on one cone per step.
    if (options.objective_mask) {
      const PreparedCone* p = batch[0];
      std::vector<int> maskable;
      for (std::size_t i = 0; i < p->gate_class.size(); ++i) {
        if (p->gate_class[i] >= 0) maskable.push_back(static_cast<int>(i));
      }
      if (maskable.size() >= 2) {
        const std::size_t k = std::max<std::size_t>(
            1, static_cast<std::size_t>(options.mask_fraction *
                                        static_cast<double>(maskable.size())));
        const auto pick = rng_tag.sample_indices(maskable.size(), k);
        Mat zeroed = p->features;
        Mat indicator(zeroed.rows, 1);
        std::vector<int> mask_nodes, mask_labels;
        for (std::size_t s : pick) {
          const int node = maskable[s];
          for (int j = 0; j < zeroed.cols; ++j) zeroed.at(node, j) = 0.f;
          indicator.at(node, 0) = 1.f;
          mask_nodes.push_back(node);
          mask_labels.push_back(p->gate_class[static_cast<std::size_t>(node)]);
        }
        Tensor feats = add(make_tensor(zeroed, false),
                           matmul(make_tensor(indicator, false), mask_emb));
        TagFormer::Output masked = model.forward_tensor(feats, p->tag.edges);
        std::vector<Tensor> rows;
        for (int node : mask_nodes) {
          rows.push_back(slice_rows(masked.nodes, node, 1));
        }
        losses.push_back(
            cross_entropy(class_head.forward(concat_rows(rows)), mask_labels));
      }
    }

    // #2.2 netlist graph contrastive.
    if (options.objective_graph_cl && cls_aug.size() >= 2) {
      losses.push_back(info_nce(concat_rows(cls_orig), concat_rows(cls_aug),
                                options.temperature));
    }
    // #3 cross-stage alignment.
    if (options.objective_align && all_aligned && cls_orig.size() >= 2) {
      Tensor n_cls = concat_rows(cls_orig);
      losses.push_back(
          info_nce(n_cls, concat_rows(rtl_rows), options.temperature));
      losses.push_back(
          info_nce(n_cls, concat_rows(layout_rows), options.temperature));
    }

    if (!losses.empty()) {
      Tensor total = losses[0];
      for (std::size_t i = 1; i < losses.size(); ++i) {
        total = add(total, losses[i]);
      }
      backward(total);
      if (tf_reps.active()) {
        ThreadPool::instance().run_indexed(
            static_cast<std::size_t>(tag_shards), [&](std::size_t s) {
              for (int i = ranges[s].first; i < ranges[s].second; ++i) {
                const std::size_t u = static_cast<std::size_t>(i);
                backward_through_leaf(cls_orig[u], raw_orig[u]);
                if (options.objective_graph_cl) {
                  backward_through_leaf(cls_aug[u], raw_aug[u]);
                }
              }
            });
        tf_reps.reduce();
      }
      check_training_step(total, params, "pretrain step 2 (tag)", step);
      opt.step();
      tag_losses.push_back(total->value.v[0]);
    }
    // Stop/checkpoint decisions run once per iteration — even for the rare
    // iteration that produced no loss — so a resumed run re-enters the loop
    // at exactly the iteration boundary the checkpoint captured.
    ctx.count_step();
    const bool stop_now = ctx.stop_requested();
    if (ck.enabled() && (stop_now || ctx.checkpoint_due(step + 1))) {
      TrainState st;
      st.phase = "tag";
      st.next_step = static_cast<std::uint64_t>(step) + 1;
      st.rng_state = rng_tag.state();
      st.adam_t = opt.step_count();
      st.adam_m = opt.moment1();
      st.adam_v = opt.moment2();
      st.extra_params = flatten_param_values(extra_params);
      st.loss_history = tag_losses;
      st.dataset_size = cones.size();
      save_phase_state(std::move(st), expr_losses);
    }
    if (stop_now) {
      report.interrupted = true;
      break;
    }
  }
  if (!report.interrupted) save_done_state(tag_losses);
  report.tag_losses = std::move(tag_losses);
  if (!report.tag_losses.empty()) {
    report.tag_loss_first = report.tag_losses.front();
    report.tag_loss_last = report.tag_losses.back();
  }
  report.seconds_step2 = timer.seconds();
  return report;
}

/// Streaming driver: trains shard after shard, each on a slice of the global
/// step budget, with one rng.fork() consumed per shard in index order (the
/// fixed-order discipline that makes mid-corpus resume bit-identical — a
/// resumed run re-derives every shard stream without reloading trained
/// shards). `resume` non-null: skip shards before resume->shard_index, hand
/// the TrainState to that shard's pretrain_impl, and run the rest fresh.
PretrainReport pretrain_streaming_impl(NetTag& model,
                                       const ShardedCorpus& corpus,
                                       const PretrainOptions& options, Rng& rng,
                                       const TrainState* resume) {
  if (!corpus.complete()) {
    throw std::runtime_error(
        "pretrain_streaming: corpus manifest is marked incomplete — finish "
        "build_corpus_stream before training");
  }
  const std::size_t shards = corpus.num_shards();
  if (shards == 0) {
    throw std::runtime_error("pretrain_streaming: corpus has no shards");
  }
  const std::size_t start_shard =
      resume ? static_cast<std::size_t>(resume->shard_index) : 0;
  if (start_shard >= shards) {
    throw std::runtime_error(
        "resume_pretrain_streaming: checkpoint shard index " +
        std::to_string(start_shard) + " out of range (corpus has " +
        std::to_string(shards) + " shards)");
  }
  // Shard expressions were embedded at the manifest's k_hop; they substitute
  // for on-the-fly derivation only when the model agrees.
  const bool reuse_exprs = corpus.k_hop() == model.config().k_hop;

  // Each phase's step budget is split across shards so the corpus-wide step
  // count matches the in-memory run's options: shard s of S gets
  // total*(s+1)/S - total*s/S steps (the remainders spread evenly).
  auto slice = [shards](int total, std::size_t s) {
    const long t = static_cast<long>(total);
    const long n = static_cast<long>(shards);
    const long lo = t * static_cast<long>(s) / n;
    const long hi = t * static_cast<long>(s + 1) / n;
    return static_cast<int>(hi - lo);
  };

  PretrainReport report;
  long global_steps = 0;  // halt_after_steps counts across shards
  for (std::size_t s = 0; s < shards; ++s) {
    Rng shard_rng = rng.fork();  // always consumed, trained or skipped
    if (s < start_shard) continue;

    const TrainState* shard_resume = (resume && s == start_shard) ? resume
                                                                  : nullptr;
    if (shard_resume && shard_resume->phase == "done") {
      // This shard finished right before the interruption: its curves come
      // from the record, and the next shard starts fresh.
      report.expr_losses.insert(report.expr_losses.end(),
                                shard_resume->prior_losses.begin(),
                                shard_resume->prior_losses.end());
      report.tag_losses.insert(report.tag_losses.end(),
                               shard_resume->loss_history.begin(),
                               shard_resume->loss_history.end());
      continue;
    }

    const ShardedCorpus::Shard shard = corpus.load(s);
    PretrainOptions so = options;
    so.expr_steps = slice(options.expr_steps, s);
    so.tag_steps = slice(options.tag_steps, s);
    so.checkpoint_shard = s;
    const PretrainReport r =
        pretrain_impl(model, shard.corpus, so, shard_rng, shard_resume,
                      reuse_exprs ? &shard.exprs : nullptr, &global_steps);

    report.expr_losses.insert(report.expr_losses.end(), r.expr_losses.begin(),
                              r.expr_losses.end());
    report.tag_losses.insert(report.tag_losses.end(), r.tag_losses.begin(),
                             r.tag_losses.end());
    report.expr_dataset_size += r.expr_dataset_size;
    report.cones_used += r.cones_used;
    report.seconds_step1 += r.seconds_step1;
    report.seconds_step2 += r.seconds_step2;
    if (r.interrupted) {
      report.interrupted = true;
      break;
    }
  }
  if (!report.expr_losses.empty()) {
    report.expr_loss_first = report.expr_losses.front();
    report.expr_loss_last = report.expr_losses.back();
  }
  if (!report.tag_losses.empty()) {
    report.tag_loss_first = report.tag_losses.front();
    report.tag_loss_last = report.tag_losses.back();
  }
  return report;
}

}  // namespace

PretrainReport pretrain(NetTag& model, const Corpus& corpus,
                        const PretrainOptions& options, Rng& rng) {
  return pretrain_impl(model, corpus, options, rng, nullptr);
}

PretrainReport resume_pretrain(NetTag& model, const Corpus& corpus,
                               const PretrainOptions& options, Rng& rng) {
  if (!options.checkpoint.enabled()) {
    throw std::runtime_error(
        "resume_pretrain: options.checkpoint.prefix is empty");
  }
  const TrainState state =
      load_train_state(train_state_path(options.checkpoint.prefix));
  // Model weights as of the checkpoint; the expression encoder must be
  // restored *before* cone preparation, whose input features it produces.
  model.load(options.checkpoint.prefix);
  return pretrain_impl(model, corpus, options, rng, &state);
}

PretrainReport pretrain_streaming(NetTag& model, const ShardedCorpus& corpus,
                                  const PretrainOptions& options, Rng& rng) {
  return pretrain_streaming_impl(model, corpus, options, rng, nullptr);
}

PretrainReport resume_pretrain_streaming(NetTag& model,
                                         const ShardedCorpus& corpus,
                                         const PretrainOptions& options,
                                         Rng& rng) {
  if (!options.checkpoint.enabled()) {
    throw std::runtime_error(
        "resume_pretrain_streaming: options.checkpoint.prefix is empty");
  }
  const TrainState state =
      load_train_state(train_state_path(options.checkpoint.prefix));
  model.load(options.checkpoint.prefix);
  return pretrain_streaming_impl(model, corpus, options, rng, &state);
}

}  // namespace nettag
