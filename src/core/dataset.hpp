// Corpus assembly: generates the multi-family design corpus, chunks it into
// register cones, runs the physical flow twice per design (w/o and w/ layout
// optimization) to collect all labels, and pairs every cone with its aligned
// RTL text and layout graph for cross-stage pre-training (paper §III-A and
// Table II).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cone.hpp"
#include "physical/flow.hpp"
#include "rtlgen/generator.hpp"

namespace nettag {

struct CorpusOptions {
  int designs_per_family = 5;
  std::size_t max_cone_gates = 120;  ///< cone backtrace cap (paper bounds cones)
  int k_hop = 2;                     ///< symbolic expression depth
  bool with_physical = true;         ///< run the physical flow for labels
  int placement_passes = 4;
};

/// One register cone plus all cross-stage artifacts and labels.
struct ConeSample {
  Netlist cone;              ///< pre-layout cone netlist (model input)
  std::string rtl_text;      ///< aligned RTL statements driving the register
  LayoutGraph layout;        ///< aligned post-layout cone graph
  std::string family;
  std::string design;
  std::string register_name;
  bool is_state_reg = false;       ///< Task 2 label
  double slack_label = 0.0;        ///< Task 3 label: sign-off endpoint slack, ns
  double clock_period = 0.0;       ///< design clock constraint, ns (an input,
                                   ///< not a label: known at netlist stage)
  bool has_layout = false;
};

/// One full design plus circuit-level labels.
struct DesignSample {
  GeneratedDesign gen;
  std::vector<ConeSample> cones;
  // Task 4 labels (post-layout) and the synthesis-tool estimates.
  double area_wo_opt = 0, power_wo_opt = 0;
  double area_w_opt = 0, power_w_opt = 0;
  double tool_area = 0, tool_power = 0;
  double pr_runtime_seconds = 0;   ///< measured flow runtime (Table VI)
};

struct Corpus {
  std::vector<DesignSample> designs;
  std::vector<std::string> families;
};

/// Builds the corpus. Deterministic given `rng`'s seed.
Corpus build_corpus(const CorpusOptions& options, Rng& rng);

/// Assembles one DesignSample from an already-generated design: runs the
/// physical flow (when enabled) and chunks the netlist into labelled register
/// cones. Consumes exactly one `rng.fork()` when `options.with_physical` —
/// the per-design unit both build_corpus and the streaming shard builder
/// (core/corpus_stream.hpp) are made of.
DesignSample make_design_sample(GeneratedDesign gen,
                                const CorpusOptions& options, Rng& rng);

/// k-hop symbolic expressions of every logic gate of `cone`, in the cone's
/// gate order (non-logic gates are skipped). This is the single place the
/// expressions are derived: dataset collection, Table II statistics, and the
/// shard embed stage all consume this product instead of re-deriving
/// `khop_expression` gate-by-gate on their own.
std::vector<std::string> cone_expressions(const Netlist& cone, int k_hop);

/// Expressions of every cone of every design, computed once and shared.
/// Indexing: `[design][cone]` parallel to `corpus.designs[d].cones[c]`.
using CorpusExpressions = std::vector<std::vector<std::vector<std::string>>>;
CorpusExpressions corpus_expressions(const Corpus& corpus, int k_hop);

/// Collects k-hop symbolic expressions from every logic gate of every cone —
/// the ExprLLM pre-training dataset (paper: 313k expressions; scaled here).
/// `max_per_design` caps per-design contribution to keep families balanced.
std::vector<std::string> collect_expressions(const Corpus& corpus, int k_hop,
                                             std::size_t max_per_design = 400);

/// Same, over a precomputed expression index (no recompute).
std::vector<std::string> collect_expressions(const Corpus& corpus,
                                             const CorpusExpressions& exprs,
                                             std::size_t max_per_design = 400);

/// Table II row: per-family dataset statistics.
struct FamilyStats {
  std::string family;
  std::size_t expr_count = 0;
  double avg_expr_tokens = 0;
  std::size_t cone_count = 0;
  double avg_cone_nodes = 0;
};

std::vector<FamilyStats> corpus_statistics(const Corpus& corpus, int k_hop);

/// Same, over a precomputed expression index (no recompute). Totals are
/// identical to the k_hop overload by construction.
std::vector<FamilyStats> corpus_statistics(const Corpus& corpus,
                                           const CorpusExpressions& exprs);

}  // namespace nettag
