// Text-attributed graph (TAG) formulation of netlists — the paper's central
// preprocessing idea (§II-B).
//
// Every gate is annotated with a text attribute combining:
//  * functional: the k-hop symbolic logic expression of its fan-in cone
//    (k = 2 by default, the paper's choice balancing expressiveness and
//    expansion), rendered in the "!((R1^R2)|!R2)" style; and
//  * physical: standard-cell characteristics (area / leakage / caps / drive /
//    delay) discretized into log-scale bucket tokens, plus fanout.
//
// The attribute deliberately contains no RTL-provenance information: Task 1
// predicts exactly that, so leaking it would be label contamination (the
// paper makes the same point for GNN-RE's dataset).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "nn/tensor.hpp"

namespace nettag {

/// A netlist formulated as a text-attributed graph.
struct TagGraph {
  std::vector<std::string> attrs;            ///< per-gate text attribute
  Mat phys;                                  ///< per-gate x_phys feature rows
  std::vector<std::pair<int, int>> edges;    ///< driver -> sink
  int num_nodes() const { return static_cast<int>(attrs.size()); }
};

/// Text attribute of one gate (name, cell type, k-hop expression, bucketized
/// physical characteristics including toggle rate / signal probability).
/// This overload computes the activity report itself; prefer build_tag()
/// for whole netlists (it shares one report across gates).
std::string gate_text_attribute(const Netlist& nl, GateId id, int k_hop = 2);

/// As above with precomputed activity values for this gate.
std::string gate_text_attribute(const Netlist& nl, GateId id, int k_hop,
                                double toggle, double prob);

/// Builds the full TAG for a netlist (cone or flat circuit).
TagGraph build_tag(const Netlist& nl, int k_hop = 2);

}  // namespace nettag
