#include "core/nettag.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

#include "model/graph.hpp"
#include "netlist/cone.hpp"
#include "nn/serialize.hpp"
#include "nn/tape.hpp"
#include "util/checksum.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace nettag {

NetTag::NetTag(const NetTagConfig& config, std::uint64_t seed)
    : config_(config),
      init_rng_(seed),
      text_cache_(
          std::make_shared<TextEmbeddingCache>(config.text_cache_entries)) {
  expr_llm_ = std::make_unique<TextEncoder>(vocab_, config.expr_llm, init_rng_);
  TagFormerConfig tf;
  tf.in_dim = tag_in_dim();
  tf.d_model = config.tag_d_model;
  tf.num_layers = config.tag_layers;
  tf.out_dim = config.out_dim;
  tagformer_ = std::make_unique<TagFormer>(tf, init_rng_);
}

int NetTag::tag_in_dim() const {
  const int text_dim = config_.use_text_attributes
                           ? config_.expr_llm.out_dim
                           : netlist_base_feature_dim();
  return text_dim + netlist_phys_feature_dim();
}

std::vector<float> NetTag::cached_text_embedding(const std::string& attr) const {
  // Cache key: the replica salt (empty for a privately-owned cache) plus the
  // anonymized token-id sequence, so attributes differing only by instance
  // names share an entry while models with different weights never do.
  const std::vector<int> ids =
      encode_text(vocab_, attr, static_cast<std::size_t>(config_.expr_llm.max_len));
  std::string key = text_key_salt_;
  key.reserve(key.size() + ids.size() * 2);
  for (int id : ids) {
    key.push_back(static_cast<char>(id & 0xff));
    key.push_back(static_cast<char>((id >> 8) & 0xff));
  }
  std::vector<float> row;
  if (text_cache_->lookup(key, &row)) return row;
  // Encode outside the cache lock; a racing duplicate encode produces the
  // identical value, so which thread's insert wins does not affect results.
  const Tensor emb = expr_llm_->encode_ids(ids);
  row.assign(emb->value.v.begin(), emb->value.v.end());
  text_cache_->insert(key, row);
  return row;
}

void NetTag::share_text_cache(std::shared_ptr<TextEmbeddingCache> cache,
                              std::string key_salt) {
  if (cache) text_cache_ = std::move(cache);
  text_key_salt_ = std::move(key_salt);
}

Mat NetTag::input_features(const TagGraph& tag, const Mat& base_feats) const {
  const int n = tag.num_nodes();
  const int phys_dim = tag.phys.cols;
  Mat feats(n, tag_in_dim());
  if (config_.use_text_attributes) {
    const int d = config_.expr_llm.out_dim;
    for (int i = 0; i < n; ++i) {
      const std::vector<float> row =
          cached_text_embedding(tag.attrs[static_cast<std::size_t>(i)]);
      assert(static_cast<int>(row.size()) == d);
      for (int j = 0; j < d; ++j) feats.at(i, j) = row[static_cast<std::size_t>(j)];
      for (int j = 0; j < phys_dim; ++j) feats.at(i, d + j) = tag.phys.at(i, j);
    }
  } else {
    assert(base_feats.rows == n);
    const int d = base_feats.cols;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) feats.at(i, j) = base_feats.at(i, j);
      for (int j = 0; j < phys_dim; ++j) feats.at(i, d + j) = tag.phys.at(i, j);
    }
  }
  return feats;
}

TagFormer::Output NetTag::forward_features(
    const Mat& features, const std::vector<std::pair<int, int>>& edges) const {
  return forward_tensor(make_tensor(features, false), edges);
}

TagFormer::Output NetTag::forward_tensor(
    const Tensor& features, const std::vector<std::pair<int, int>>& edges) const {
  const int n = features->value.rows;
  Tensor adj = make_tensor(tag_adjacency(n, edges), false);
  return tagformer_->forward(features, adj);
}

NetTag::ConeEmbedding NetTag::embed(const Netlist& nl, int k_hop_override,
                                    EmbedTiming* timing) const {
  Timer t;
  const TagGraph tag =
      build_tag(nl, k_hop_override > 0 ? k_hop_override : config_.k_hop);
  if (timing) atomic_add_seconds(timing->tag_build, t.seconds());
  const Mat base = config_.use_text_attributes ? Mat() : netlist_base_features(nl);
  t.reset();
  const Mat feats = input_features(tag, base);
  if (timing) atomic_add_seconds(timing->text_encode, t.seconds());
  t.reset();
  // TagFormer shapes depend only on the node count (edges change adjacency
  // contents, not shapes), so cones of equal size replay one shared plan.
  // Text encoding above stays outside the scope: its op sequence depends on
  // text-cache hits and would diverge the tape.
  plan::PlanScope plan_scope("embed|" + std::to_string(feats.rows) + "|" +
                             std::to_string(feats.cols));
  const TagFormer::Output out = forward_features(feats, tag.edges);
  // The caller copies these values out below, after the graph is complete —
  // pin them so a replayed plan never reuses their bytes intra-forward.
  plan::keep_alive(out.nodes);
  plan::keep_alive(out.cls);
  if (timing) atomic_add_seconds(timing->tagformer, t.seconds());
  ConeEmbedding emb;
  emb.nodes = out.nodes->value;
  emb.cls = out.cls->value;
  emb.inputs = feats;
  return emb;
}

Mat NetTag::cone_feature(const Netlist& cone) const {
  const ConeEmbedding emb = embed(cone);
  // Locate the cone's register (a cone has exactly one DFF); fall back to
  // the last node for combinational snippets.
  int reg_row = static_cast<int>(cone.size()) - 1;
  for (const Gate& g : cone.gates()) {
    if (g.type == CellType::kDff) {
      reg_row = static_cast<int>(g.id);
      break;
    }
  }
  // Logic depth.
  std::vector<int> depth(cone.size(), 0);
  int max_depth = 0;
  for (GateId id : cone.topo_order()) {
    const Gate& g = cone.gate(id);
    if (g.fanins.empty() || g.type == CellType::kDff) continue;
    int d = 0;
    for (GateId f : g.fanins) d = std::max(d, depth[static_cast<std::size_t>(f)] + 1);
    depth[static_cast<std::size_t>(id)] = d;
    max_depth = std::max(max_depth, d);
  }
  Mat out(1, cone_feature_dim());
  int at = 0;
  for (int j = 0; j < config_.out_dim; ++j) out.at(0, at++) = emb.cls.at(0, j);
  for (int j = 0; j < config_.out_dim; ++j) {
    out.at(0, at++) = emb.nodes.at(reg_row, j);
  }
  for (int j = 0; j < emb.inputs.cols; ++j) {
    out.at(0, at++) = emb.inputs.at(reg_row, j);
  }
  out.at(0, at++) = std::log1p(static_cast<float>(cone.size())) / 5.f;
  out.at(0, at++) = static_cast<float>(max_depth) / 20.f;
  return out;
}

Mat NetTag::embed_circuit(const Netlist& nl, std::size_t max_cone_gates,
                          EmbedTiming* timing) const {
  const std::vector<GateId> regs = nl.registers();
  if (regs.empty()) {
    return embed(nl, 0, timing).cls;
  }
  // Embed cones in parallel; reduce in register order so the float-addition
  // sequence (and therefore the result) matches the serial loop bit-for-bit.
  std::vector<Mat> cone_cls(regs.size());
  ThreadPool::instance().run_indexed(regs.size(), [&](std::size_t i) {
    const RegisterCone rc = extract_cone(nl, regs[i], max_cone_gates);
    cone_cls[i] = embed(rc.cone, 0, timing).cls;
  });
  Mat sum(1, config_.out_dim);
  for (const Mat& cls : cone_cls) {
    for (int j = 0; j < config_.out_dim; ++j) sum.at(0, j) += cls.at(0, j);
  }
  return sum;
}

void NetTag::save(const std::string& path_prefix) const {
  save_params(path_prefix + ".exprllm.bin", expr_llm_->params());
  save_params(path_prefix + ".tagformer.bin", tagformer_->params());
}

void NetTag::load(const std::string& path_prefix) {
  load_params(path_prefix + ".exprllm.bin", expr_llm_->params());
  load_params(path_prefix + ".tagformer.bin", tagformer_->params());
  // Any int8 packed copies (nn/packed.hpp) now describe stale weights;
  // drop them so loading into a quantized model cannot serve old values.
  for (const Tensor& p : expr_llm_->params()) p->packed.reset();
  for (const Tensor& p : tagformer_->params()) p->packed.reset();
  clear_text_cache();
}

namespace {
constexpr const char* kCkptFormat = "nettag-ckpt-v1";
}  // namespace

void save_checkpoint(const NetTag& model, const std::string& prefix) {
  const NetTagConfig& c = model.config();
  save_manifest(
      prefix + ".ckpt",
      {{"format", kCkptFormat},
       {"expr_d_model", std::to_string(c.expr_llm.d_model)},
       {"expr_num_layers", std::to_string(c.expr_llm.num_layers)},
       {"expr_num_heads", std::to_string(c.expr_llm.num_heads)},
       {"expr_d_ff", std::to_string(c.expr_llm.d_ff)},
       {"expr_max_len", std::to_string(c.expr_llm.max_len)},
       {"expr_out_dim", std::to_string(c.expr_llm.out_dim)},
       {"tag_d_model", std::to_string(c.tag_d_model)},
       {"tag_layers", std::to_string(c.tag_layers)},
       {"out_dim", std::to_string(c.out_dim)},
       {"k_hop", std::to_string(c.k_hop)},
       {"use_text_attributes", c.use_text_attributes ? "1" : "0"},
       {"text_cache_entries", std::to_string(c.text_cache_entries)}});
  model.save(prefix);
}

NetTagConfig read_checkpoint_config(const std::string& prefix) {
  const std::string path = prefix + ".ckpt";
  NetTagConfig c;
  bool format_ok = false;
  std::vector<int> linenos;
  const auto entries = load_manifest(path, &linenos);
  std::map<std::string, int> seen;  // key -> first source line
  int lineno = 0;
  auto fail = [&path, &lineno](const std::string& what) {
    throw std::runtime_error("read_checkpoint_config: " + path + ": line " +
                             std::to_string(lineno) + ": " + what);
  };
  // Every dimension must be a positive integer; std::stoi's tolerance for
  // trailing junk and its huge range would let a corrupt manifest build a
  // nonsensical (or allocation-bomb) model, so parse strictly and cap at a
  // bound no real configuration approaches.
  auto to_int = [&fail](const std::string& key, const std::string& v) {
    long long out = 0;
    std::string err;
    if (!cli::parse_int(v.c_str(), 1, 1 << 20, &out, &err)) {
      fail("key '" + key + "': " + err);
    }
    return static_cast<int>(out);
  };
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [key, value] = entries[i];
    lineno = linenos[i];
    const auto [prev, fresh] = seen.emplace(key, lineno);
    if (!fresh) {
      fail("duplicate key '" + key + "' (first on line " +
           std::to_string(prev->second) + ")");
    }
    if (key == "format") {
      if (value != kCkptFormat) fail("unknown format '" + value + "'");
      format_ok = true;
    } else if (key == "expr_d_model") {
      c.expr_llm.d_model = to_int(key, value);
    } else if (key == "expr_num_layers") {
      c.expr_llm.num_layers = to_int(key, value);
    } else if (key == "expr_num_heads") {
      c.expr_llm.num_heads = to_int(key, value);
    } else if (key == "expr_d_ff") {
      c.expr_llm.d_ff = to_int(key, value);
    } else if (key == "expr_max_len") {
      c.expr_llm.max_len = to_int(key, value);
    } else if (key == "expr_out_dim") {
      c.expr_llm.out_dim = to_int(key, value);
    } else if (key == "tag_d_model") {
      c.tag_d_model = to_int(key, value);
    } else if (key == "tag_layers") {
      c.tag_layers = to_int(key, value);
    } else if (key == "out_dim") {
      c.out_dim = to_int(key, value);
    } else if (key == "k_hop") {
      c.k_hop = to_int(key, value);
    } else if (key == "use_text_attributes") {
      if (value != "0" && value != "1") {
        fail("key 'use_text_attributes': expected 0 or 1, got '" + value + "'");
      }
      c.use_text_attributes = value == "1";
    } else if (key == "text_cache_entries") {
      c.text_cache_entries = static_cast<std::size_t>(to_int(key, value));
    }
    // Unknown keys are ignored so older binaries can read newer manifests.
  }
  if (!format_ok) {
    throw std::runtime_error("read_checkpoint_config: " + path +
                             ": missing 'format' line (not a checkpoint?)");
  }
  if (c.expr_llm.d_model % c.expr_llm.num_heads != 0) {
    throw std::runtime_error(
        "read_checkpoint_config: " + path + ": expr_num_heads (" +
        std::to_string(c.expr_llm.num_heads) + ") must divide expr_d_model (" +
        std::to_string(c.expr_llm.d_model) + ")");
  }
  return c;
}

std::uint32_t params_fingerprint(const NetTag& model) {
  std::uint32_t crc = 0;
  auto fold = [&crc](const std::vector<Tensor>& params) {
    for (const Tensor& p : params) {
      crc = crc32(p->value.v.data(), p->value.v.size() * sizeof(float), crc);
    }
  };
  fold(model.expr_llm().params());
  fold(model.tagformer().params());
  return crc;
}

std::unique_ptr<NetTag> load_checkpoint(const std::string& prefix,
                                        std::uint64_t seed) {
  auto model = std::make_unique<NetTag>(read_checkpoint_config(prefix), seed);
  model->load(prefix);
  return model;
}

}  // namespace nettag
