// Streaming repository-scale corpus: produce -> lint -> embed -> write ->
// discard, one shard at a time, so dataset size is bounded by the shard size
// rather than by RAM.
//
// The pipeline generates designs in a fixed global order (families
// round-robin, one `Rng::fork()` per design off the root seed), groups them
// into shards of `designs_per_shard`, and for each shard: assembles the
// designs (physical flow + register cones), runs the corpus lint gate
// (`enforce_clean` per shard — the same rules build_corpus applies to the
// whole corpus), derives every cone's k-hop expressions once (the *embed*
// stage; readers never recompute them), serializes everything to one text
// shard file, and frees the shard before starting the next one.
//
// Durability contract (docs/ARCHITECTURE.md §13):
//   * Shard files are written through AtomicFileWriter: data fsync'd before
//     the rename, parent directory fsync'd after — a reader never sees a
//     torn shard and power loss cannot commit an empty one.
//   * Every shard ends with a `checksum <crc32>` line over all preceding
//     bytes (same convention as checkpoint manifests). Truncation or
//     corruption is rejected with the exact byte offset and line — never
//     silently skipped.
//   * The corpus manifest is atomically rewritten after each shard commit
//     and lists only committed shards. A kill -9 at *any* point loses at
//     most the in-flight shard; resuming replays the committed prefix by
//     consuming its RNG forks (no recompute) and regenerates the remainder
//     bit-identically — shard generation depends only on (seed, options,
//     design index), never on wall clock or process state.
//
// Shard format (text, line-oriented; BLOB = `<n>\n` + n raw bytes + `\n`):
//   nettag-shard v1
//   design <name> <family>
//   labels <area_wo> <power_wo> <area_w> <power_w> <tool_area> <tool_power>
//          <pr_runtime>                      (one line, %.17g round-trip)
//   rtl BLOB                                 (full-design pseudo-Verilog)
//   regrtl <count>   then per entry: reg <name> BLOB
//   netlist BLOB                             (netlist/io.hpp format)
//   cones <count>    then per cone:
//     cone <register> <is_state 0|1> <has_layout 0|1> <slack> <clock>
//     rtl BLOB
//     conenet BLOB
//     exprs <count>  then per expression: e <expression text>
//     layout <nodes> <edges>  then `n <6 feats>` lines, `g <u> <v>` lines
//     endcone
//   enddesign
//   end <design count>
//   checksum <crc32 hex>
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "rtlgen/hierarchy.hpp"

namespace nettag {

/// Streaming-corpus shape. Deterministic: (seed, options) fully determine
/// every shard byte.
struct StreamOptions {
  CorpusOptions corpus;        ///< per-design knobs (cones, flow, k_hop)
  int designs_per_family = 8;  ///< total designs per family, across shards
  int designs_per_shard = 4;   ///< shard granularity == peak RAM bound
  bool hierarchical = true;    ///< hierarchical vs flat designs
  HierarchyOptions hierarchy;
  /// Test/CI hook: stop after writing this many *new* shards (0 = run to
  /// completion). The manifest stays resumable.
  int halt_after_shards = 0;
};

/// Per-shard accounting reported through the progress callback.
struct ShardStats {
  std::size_t index = 0;
  std::string path;
  std::size_t designs = 0;
  std::size_t cones = 0;
  std::size_t gates = 0;        ///< summed netlist gate counts
  std::size_t expressions = 0;  ///< embedded k-hop expressions
  std::size_t bytes = 0;        ///< shard file size
  bool skipped = false;         ///< already committed by a previous run
};

/// Aggregate result of one build_corpus_stream run.
struct StreamProgress {
  std::size_t shards_total = 0;
  std::size_t shards_written = 0;  ///< newly committed by this run
  std::size_t shards_skipped = 0;  ///< committed by a previous run
  std::size_t designs = 0;         ///< over newly written shards
  std::size_t cones = 0;
  std::size_t gates = 0;
  std::size_t expressions = 0;
  bool complete = false;           ///< manifest marked complete
};

/// Builds (or resumes building) the sharded corpus under `dir`. Creates the
/// directory when missing, removes stale temp files, validates that an
/// existing manifest was produced with the same seed/options (throws
/// std::runtime_error otherwise), skips committed shards by consuming their
/// RNG forks, and streams out the rest. `on_shard` (optional) fires after
/// every shard, including skipped ones.
StreamProgress build_corpus_stream(
    const std::string& dir, const StreamOptions& options, std::uint64_t seed,
    const std::function<void(const ShardStats&)>& on_shard = nullptr);

/// Reader over a committed shard directory. Construction validates the
/// manifest (format, checksum, option record); `load()` materializes one
/// shard at a time so training never holds more than a shard in RAM.
class ShardedCorpus {
 public:
  explicit ShardedCorpus(const std::string& dir);

  std::size_t num_shards() const { return shards_.size(); }
  bool complete() const { return complete_; }
  std::uint64_t seed() const { return seed_; }
  int k_hop() const { return k_hop_; }
  const std::vector<std::string>& families() const { return families_; }
  /// Designs summed over committed shards.
  std::size_t total_designs() const { return total_designs_; }

  struct Shard {
    Corpus corpus;           ///< families mirrors ShardedCorpus::families()
    CorpusExpressions exprs; ///< [design][cone] — embedded at write time
  };

  /// Loads shard `index` fully. Throws std::runtime_error with the shard
  /// path plus byte offset and line on truncation or corruption.
  Shard load(std::size_t index) const;

  /// Path of shard `index` (for tooling/diagnostics).
  const std::string& shard_path(std::size_t index) const {
    return shards_.at(index);
  }

 private:
  std::string dir_;
  std::vector<std::string> shards_;  // absolute paths, shard order
  std::vector<std::string> families_;
  std::uint64_t seed_ = 0;
  int k_hop_ = 2;
  std::size_t total_designs_ = 0;
  bool complete_ = false;
};

}  // namespace nettag
