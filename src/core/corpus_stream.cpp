#include "core/corpus_stream.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/lint.hpp"
#include "netlist/io.hpp"
#include "nn/serialize.hpp"
#include "util/atomic_io.hpp"
#include "util/checksum.hpp"

namespace nettag {

namespace {

constexpr const char* kManifestName = "corpus.manifest";
constexpr const char* kManifestFormat = "nettag-corpus-v1";
constexpr const char* kShardHeader = "nettag-shard v1";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string shard_filename(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard_%05zu.nls", index);
  return buf;
}

std::string join_names(const std::vector<FamilyProfile>& fams) {
  std::string out;
  for (const FamilyProfile& f : fams) {
    if (!out.empty()) out += ',';
    out += f.name;
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// The option record stored in (and validated against) the manifest. A
/// resumed run with different options would silently produce a corpus that
/// matches neither configuration — refuse instead.
std::vector<std::pair<std::string, std::string>> config_entries(
    const StreamOptions& o, std::uint64_t seed) {
  return {
      {"format", kManifestFormat},
      {"seed", std::to_string(seed)},
      {"families", join_names(benchmark_families())},
      {"designs_per_family", std::to_string(o.designs_per_family)},
      {"designs_per_shard", std::to_string(o.designs_per_shard)},
      {"hierarchical", o.hierarchical ? "1" : "0"},
      {"k_hop", std::to_string(o.corpus.k_hop)},
      {"max_cone_gates", std::to_string(o.corpus.max_cone_gates)},
      {"with_physical", o.corpus.with_physical ? "1" : "0"},
      {"placement_passes", std::to_string(o.corpus.placement_passes)},
      {"hier_levels", std::to_string(o.hierarchy.levels)},
      {"hier_min_blocks", std::to_string(o.hierarchy.min_blocks_per_level)},
      {"hier_max_blocks", std::to_string(o.hierarchy.max_blocks_per_level)},
      {"hier_shared", std::to_string(o.hierarchy.shared_blocks)},
  };
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Removes temp files a killed writer left behind (AtomicFileWriter names
/// them `<final>.tmp.<pid>.<n>`; the pid is gone, so they are garbage).
void remove_stale_tmp(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (!d) return;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.find(".tmp.") != std::string::npos) {
      std::remove((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

// --- shard serialization -----------------------------------------------------

void write_blob(std::ostream& os, const std::string& tag,
                const std::string& bytes) {
  os << tag << ' ' << bytes.size() << '\n' << bytes << '\n';
}

std::string serialize_shard(const Corpus& corpus,
                            const CorpusExpressions& exprs) {
  std::ostringstream os;
  os << kShardHeader << '\n';
  for (std::size_t d = 0; d < corpus.designs.size(); ++d) {
    const DesignSample& ds = corpus.designs[d];
    os << "design " << ds.gen.netlist.name() << ' '
       << ds.gen.netlist.source() << '\n';
    os << "labels " << fmt_double(ds.area_wo_opt) << ' '
       << fmt_double(ds.power_wo_opt) << ' ' << fmt_double(ds.area_w_opt)
       << ' ' << fmt_double(ds.power_w_opt) << ' '
       << fmt_double(ds.tool_area) << ' ' << fmt_double(ds.tool_power) << ' '
       << fmt_double(ds.pr_runtime_seconds) << '\n';
    write_blob(os, "rtl", ds.gen.rtl_text);
    // unordered_map order is not stable across implementations; sort so the
    // shard bytes are a pure function of (seed, options).
    std::vector<std::pair<std::string, std::string>> regs(
        ds.gen.reg_rtl.begin(), ds.gen.reg_rtl.end());
    std::sort(regs.begin(), regs.end());
    os << "regrtl " << regs.size() << '\n';
    for (const auto& [reg, text] : regs) write_blob(os, "reg " + reg, text);
    write_blob(os, "netlist", netlist_to_string(ds.gen.netlist));
    os << "cones " << ds.cones.size() << '\n';
    for (std::size_t c = 0; c < ds.cones.size(); ++c) {
      const ConeSample& cs = ds.cones[c];
      os << "cone " << cs.register_name << ' ' << (cs.is_state_reg ? 1 : 0)
         << ' ' << (cs.has_layout ? 1 : 0) << ' ' << fmt_double(cs.slack_label)
         << ' ' << fmt_double(cs.clock_period) << '\n';
      write_blob(os, "rtl", cs.rtl_text);
      write_blob(os, "conenet", netlist_to_string(cs.cone));
      const std::vector<std::string>& es = exprs[d][c];
      os << "exprs " << es.size() << '\n';
      for (const std::string& e : es) os << "e " << e << '\n';
      os << "layout " << cs.layout.node_feats.size() << ' '
         << cs.layout.edges.size() << '\n';
      for (const auto& nf : cs.layout.node_feats) {
        os << 'n';
        for (double f : nf) os << ' ' << fmt_double(f);
        os << '\n';
      }
      for (const auto& [u, v] : cs.layout.edges) {
        os << "g " << u << ' ' << v << '\n';
      }
      os << "endcone\n";
    }
    os << "enddesign\n";
  }
  os << "end " << corpus.designs.size() << '\n';
  return os.str();
}

// --- shard parsing -----------------------------------------------------------

/// Line/byte-tracking cursor so every rejection names the exact location.
struct Cursor {
  const std::string& text;
  const std::string& path;
  std::size_t pos = 0;
  std::size_t line = 1;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("shard " + path + ": " + why + " (line " +
                             std::to_string(line) + ", byte offset " +
                             std::to_string(pos) + ")");
  }

  std::string next_line() {
    if (pos >= text.size()) fail("unexpected end of shard");
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) fail("unterminated line");
    std::string out = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++line;
    return out;
  }

  /// Reads a `<tag> <n>` header line then n raw bytes plus the trailing
  /// newline.
  std::string read_blob(const std::string& tag) {
    const std::string header = next_line();
    std::istringstream is(header);
    std::string got;
    std::size_t n = 0;
    if (!(is >> got) || got != tag || !(is >> n)) {
      fail("expected '" + tag + " <bytes>', got '" + header + "'");
    }
    if (pos + n + 1 > text.size()) fail("blob extends past end of shard");
    std::string bytes = text.substr(pos, n);
    pos += n;
    if (text[pos] != '\n') fail("blob missing trailing newline");
    ++pos;
    line += static_cast<std::size_t>(
                std::count(bytes.begin(), bytes.end(), '\n')) + 1;
    return bytes;
  }
};

double parse_double(Cursor& cur, std::istringstream& is,
                    const std::string& what) {
  std::string tok;
  if (!(is >> tok)) cur.fail("missing " + what);
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') cur.fail("bad " + what + ": " + tok);
  return v;
}

long parse_long(Cursor& cur, std::istringstream& is, const std::string& what,
                long lo, long hi) {
  std::string tok;
  if (!(is >> tok)) cur.fail("missing " + what);
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || v < lo || v > hi) {
    cur.fail("bad " + what + ": " + tok);
  }
  return v;
}

ShardedCorpus::Shard parse_shard(const std::string& text,
                                 const std::string& path,
                                 const std::vector<std::string>& families) {
  // Checksum first: a truncated or bit-flipped shard must be rejected before
  // any of it is interpreted.
  Cursor probe{text, path};
  if (text.empty() || text.back() != '\n') {
    probe.pos = text.size();
    probe.line = static_cast<std::size_t>(
                     std::count(text.begin(), text.end(), '\n')) + 1;
    probe.fail("truncated shard: no trailing newline");
  }
  const std::size_t prev_nl = text.rfind('\n', text.size() - 2);
  const std::size_t last_start = prev_nl == std::string::npos ? 0 : prev_nl + 1;
  const std::string last =
      text.substr(last_start, text.size() - 1 - last_start);
  probe.pos = last_start;
  probe.line = static_cast<std::size_t>(
                   std::count(text.begin(), text.begin() +
                              static_cast<std::ptrdiff_t>(last_start), '\n')) + 1;
  if (last.rfind("checksum ", 0) != 0) {
    probe.fail("truncated shard: final line is not a checksum");
  }
  const std::string body = text.substr(0, last_start);
  if (crc32_hex(crc32(body)) != last.substr(9)) {
    probe.fail("checksum mismatch: shard is corrupt");
  }

  Cursor cur{body, path};
  if (cur.next_line() != kShardHeader) {
    cur.fail(std::string("bad shard header, expected '") + kShardHeader + "'");
  }

  ShardedCorpus::Shard shard;
  shard.corpus.families = families;
  while (true) {
    std::string head = cur.next_line();
    if (head.rfind("end ", 0) == 0) {
      std::istringstream is(head.substr(4));
      std::size_t n = 0;
      if (!(is >> n) || n != shard.corpus.designs.size()) {
        cur.fail("design count mismatch in end marker");
      }
      break;
    }
    std::istringstream is(head);
    std::string tag, name, family;
    if (!(is >> tag >> name >> family) || tag != "design") {
      cur.fail("expected 'design <name> <family>', got '" + head + "'");
    }
    DesignSample ds;

    std::istringstream ls(cur.next_line());
    std::string ltag;
    if (!(ls >> ltag) || ltag != "labels") cur.fail("expected labels line");
    ds.area_wo_opt = parse_double(cur, ls, "area_wo_opt");
    ds.power_wo_opt = parse_double(cur, ls, "power_wo_opt");
    ds.area_w_opt = parse_double(cur, ls, "area_w_opt");
    ds.power_w_opt = parse_double(cur, ls, "power_w_opt");
    ds.tool_area = parse_double(cur, ls, "tool_area");
    ds.tool_power = parse_double(cur, ls, "tool_power");
    ds.pr_runtime_seconds = parse_double(cur, ls, "pr_runtime_seconds");

    ds.gen.rtl_text = cur.read_blob("rtl");
    std::istringstream rs(cur.next_line());
    std::string rtag;
    std::size_t nregs = 0;
    if (!(rs >> rtag >> nregs) || rtag != "regrtl") {
      cur.fail("expected 'regrtl <count>'");
    }
    for (std::size_t r = 0; r < nregs; ++r) {
      // Blob tag carries the register name: "reg <name> <bytes>".
      const std::string header = cur.next_line();
      std::istringstream hs(header);
      std::string htag, reg;
      std::size_t nbytes = 0;
      if (!(hs >> htag >> reg >> nbytes) || htag != "reg") {
        cur.fail("expected 'reg <name> <bytes>', got '" + header + "'");
      }
      if (cur.pos + nbytes + 1 > cur.text.size()) {
        cur.fail("register RTL blob extends past end of shard");
      }
      std::string bytes = cur.text.substr(cur.pos, nbytes);
      cur.pos += nbytes;
      if (cur.text[cur.pos] != '\n') cur.fail("blob missing trailing newline");
      ++cur.pos;
      cur.line += static_cast<std::size_t>(
                      std::count(bytes.begin(), bytes.end(), '\n')) + 1;
      ds.gen.reg_rtl[reg] = std::move(bytes);
    }
    try {
      ds.gen.netlist = netlist_from_string(cur.read_blob("netlist"));
    } catch (const std::exception& e) {
      cur.fail(std::string("embedded netlist: ") + e.what());
    }

    std::istringstream cs(cur.next_line());
    std::string ctag;
    std::size_t ncones = 0;
    if (!(cs >> ctag >> ncones) || ctag != "cones") {
      cur.fail("expected 'cones <count>'");
    }
    std::vector<std::vector<std::string>> design_exprs;
    for (std::size_t c = 0; c < ncones; ++c) {
      std::istringstream hs(cur.next_line());
      std::string htag;
      ConeSample cone;
      cone.family = family;
      cone.design = name;
      if (!(hs >> htag >> cone.register_name) || htag != "cone") {
        cur.fail("expected 'cone <register> ...'");
      }
      cone.is_state_reg = parse_long(cur, hs, "is_state_reg", 0, 1) != 0;
      cone.has_layout = parse_long(cur, hs, "has_layout", 0, 1) != 0;
      cone.slack_label = parse_double(cur, hs, "slack_label");
      cone.clock_period = parse_double(cur, hs, "clock_period");
      cone.rtl_text = cur.read_blob("rtl");
      try {
        cone.cone = netlist_from_string(cur.read_blob("conenet"));
      } catch (const std::exception& e) {
        cur.fail(std::string("embedded cone netlist: ") + e.what());
      }
      std::istringstream es(cur.next_line());
      std::string etag;
      std::size_t nexprs = 0;
      if (!(es >> etag >> nexprs) || etag != "exprs") {
        cur.fail("expected 'exprs <count>'");
      }
      std::vector<std::string> cexprs;
      cexprs.reserve(nexprs);
      for (std::size_t e = 0; e < nexprs; ++e) {
        const std::string el = cur.next_line();
        if (el.rfind("e ", 0) != 0) cur.fail("expected 'e <expression>'");
        cexprs.push_back(el.substr(2));
      }
      std::istringstream lgs(cur.next_line());
      std::string lgtag;
      std::size_t nnodes = 0, nedges = 0;
      if (!(lgs >> lgtag >> nnodes >> nedges) || lgtag != "layout") {
        cur.fail("expected 'layout <nodes> <edges>'");
      }
      cone.layout.node_feats.reserve(nnodes);
      for (std::size_t nidx = 0; nidx < nnodes; ++nidx) {
        std::istringstream ns(cur.next_line());
        std::string ntag;
        if (!(ns >> ntag) || ntag != "n") cur.fail("expected layout node line");
        std::array<double, 6> feats{};
        for (double& f : feats) f = parse_double(cur, ns, "node feature");
        cone.layout.node_feats.push_back(feats);
      }
      for (std::size_t eidx = 0; eidx < nedges; ++eidx) {
        std::istringstream gs(cur.next_line());
        std::string gtag;
        if (!(gs >> gtag) || gtag != "g") cur.fail("expected layout edge line");
        const long u = parse_long(cur, gs, "edge endpoint", 0,
                                  static_cast<long>(nnodes) - 1);
        const long v = parse_long(cur, gs, "edge endpoint", 0,
                                  static_cast<long>(nnodes) - 1);
        cone.layout.edges.emplace_back(static_cast<int>(u),
                                       static_cast<int>(v));
      }
      if (cur.next_line() != "endcone") cur.fail("expected 'endcone'");
      design_exprs.push_back(std::move(cexprs));
      ds.cones.push_back(std::move(cone));
    }
    if (cur.next_line() != "enddesign") cur.fail("expected 'enddesign'");
    shard.exprs.push_back(std::move(design_exprs));
    shard.corpus.designs.push_back(std::move(ds));
  }
  if (cur.pos != body.size()) cur.fail("trailing bytes after end marker");
  return shard;
}

std::string read_file_or_throw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open shard " + path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

}  // namespace

// --- writer ------------------------------------------------------------------

StreamProgress build_corpus_stream(
    const std::string& dir, const StreamOptions& options, std::uint64_t seed,
    const std::function<void(const ShardStats&)>& on_shard) {
  if (options.designs_per_family < 1 || options.designs_per_shard < 1) {
    throw std::invalid_argument(
        "build_corpus_stream: designs_per_family and designs_per_shard must "
        "be >= 1");
  }
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine
  remove_stale_tmp(dir);

  const std::vector<FamilyProfile>& fams = benchmark_families();
  const std::size_t total_designs =
      fams.size() * static_cast<std::size_t>(options.designs_per_family);
  const std::size_t dps = static_cast<std::size_t>(options.designs_per_shard);
  const std::size_t shards_total = (total_designs + dps - 1) / dps;
  const std::string manifest_path = dir + "/" + std::string(kManifestName);

  // Resume: trust only the manifest's committed-shard list, and only when it
  // records exactly the configuration we are running with.
  std::size_t committed = 0;
  std::vector<std::string> shard_rows;
  if (file_exists(manifest_path)) {
    const auto entries = load_manifest(manifest_path);
    std::map<std::string, std::string> by_key(entries.begin(), entries.end());
    for (const auto& [key, want] : config_entries(options, seed)) {
      const auto it = by_key.find(key);
      if (it == by_key.end() || it->second != want) {
        throw std::runtime_error(
            "corpus manifest " + manifest_path + ": option '" + key +
            "' is '" + (it == by_key.end() ? "<missing>" : it->second) +
            "' but this run uses '" + want +
            "' — refusing to resume a different corpus");
      }
    }
    for (const auto& [key, value] : entries) {
      if (key.rfind("shard", 0) == 0 && key != "shards") {
        shard_rows.push_back(value);
      }
    }
    committed = shard_rows.size();
    if (committed > shards_total) {
      throw std::runtime_error("corpus manifest " + manifest_path +
                               " lists more shards than this configuration "
                               "produces");
    }
  }

  auto write_manifest = [&](bool complete) {
    std::vector<std::pair<std::string, std::string>> entries =
        config_entries(options, seed);
    entries.emplace_back("shards", std::to_string(shard_rows.size()));
    for (std::size_t s = 0; s < shard_rows.size(); ++s) {
      entries.emplace_back("shard" + std::to_string(s), shard_rows[s]);
    }
    entries.emplace_back("complete", complete ? "1" : "0");
    save_manifest(manifest_path, entries);
  };

  StreamProgress progress;
  progress.shards_total = shards_total;
  Rng root(seed);
  std::size_t written = 0;
  for (std::size_t s = 0; s < shards_total; ++s) {
    const std::size_t lo = s * dps;
    const std::size_t hi = std::min(total_designs, lo + dps);
    if (s < committed) {
      // Committed by a previous run: consume this shard's RNG forks so the
      // remaining shards regenerate bit-identically, but do no work.
      for (std::size_t i = lo; i < hi; ++i) (void)root.fork();
      ++progress.shards_skipped;
      if (on_shard) {
        ShardStats st;
        st.index = s;
        st.path = dir + "/" + shard_filename(s);
        st.designs = hi - lo;
        st.skipped = true;
        on_shard(st);
      }
      continue;
    }
    if (options.halt_after_shards > 0 &&
        written >= static_cast<std::size_t>(options.halt_after_shards)) {
      write_manifest(/*complete=*/false);
      return progress;
    }

    // Produce: one fork per design, fixed global order.
    Corpus shard_corpus;
    for (const FamilyProfile& f : fams) shard_corpus.families.push_back(f.name);
    for (std::size_t i = lo; i < hi; ++i) {
      Rng drng = root.fork();
      const FamilyProfile& profile = fams[i % fams.size()];
      const std::size_t idx = i / fams.size();
      const std::string name = profile.name +
                               (options.hierarchical ? "_h" : "_d") +
                               std::to_string(idx);
      GeneratedDesign gen =
          options.hierarchical
              ? generate_hierarchical_design(profile, options.hierarchy, drng,
                                             name)
              : generate_design(profile, drng, name);
      shard_corpus.designs.push_back(
          make_design_sample(std::move(gen), options.corpus, drng));
    }
    // Lint: the same assembly gate build_corpus runs corpus-wide, applied
    // per shard so it never needs the whole dataset in RAM.
    enforce_clean(lint_corpus(shard_corpus),
                  "corpus shard " + std::to_string(s));
    // Embed: derive every cone's expressions once; readers reuse them.
    const CorpusExpressions exprs =
        corpus_expressions(shard_corpus, options.corpus.k_hop);

    const std::string body = serialize_shard(shard_corpus, exprs);
    const std::string path = dir + "/" + shard_filename(s);
    const std::string crc = crc32_hex(crc32(body));
    {
      AtomicFileWriter writer(path, /*binary=*/true);
      writer.stream() << body << "checksum " << crc << '\n';
      writer.commit();
    }

    ShardStats st;
    st.index = s;
    st.path = path;
    st.designs = shard_corpus.designs.size();
    st.bytes = body.size() + crc.size() + 10;  // + "checksum \n"
    for (std::size_t d = 0; d < shard_corpus.designs.size(); ++d) {
      st.cones += shard_corpus.designs[d].cones.size();
      st.gates += shard_corpus.designs[d].gen.netlist.size();
      for (const auto& ce : exprs[d]) st.expressions += ce.size();
    }
    shard_rows.push_back(shard_filename(s) + " " + crc + " " +
                         std::to_string(st.designs));
    write_manifest(/*complete=*/shard_rows.size() == shards_total);

    ++written;
    ++progress.shards_written;
    progress.designs += st.designs;
    progress.cones += st.cones;
    progress.gates += st.gates;
    progress.expressions += st.expressions;
    if (on_shard) on_shard(st);
  }
  progress.complete = shard_rows.size() == shards_total;
  return progress;
}

// --- reader ------------------------------------------------------------------

ShardedCorpus::ShardedCorpus(const std::string& dir) : dir_(dir) {
  const std::string manifest_path = dir + "/" + std::string(kManifestName);
  const auto entries = load_manifest(manifest_path);
  std::map<std::string, std::string> by_key(entries.begin(), entries.end());
  const auto format = by_key.find("format");
  if (format == by_key.end() || format->second != kManifestFormat) {
    throw std::runtime_error(
        "corpus manifest " + manifest_path + ": unsupported format '" +
        (format == by_key.end() ? "<missing>" : format->second) + "'");
  }
  const auto require = [&](const char* key) -> const std::string& {
    const auto it = by_key.find(key);
    if (it == by_key.end()) {
      throw std::runtime_error("corpus manifest " + manifest_path +
                               ": missing key '" + key + "'");
    }
    return it->second;
  };
  seed_ = std::stoull(require("seed"));
  k_hop_ = std::stoi(require("k_hop"));
  families_ = split_csv(require("families"));
  if (families_.empty()) {
    throw std::runtime_error("corpus manifest " + manifest_path +
                             ": empty family list");
  }
  complete_ = require("complete") == "1";
  const std::size_t nshards = std::stoull(require("shards"));
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::string& row = require(("shard" + std::to_string(s)).c_str());
    std::istringstream is(row);
    std::string filename, crc;
    std::size_t designs = 0;
    if (!(is >> filename >> crc >> designs)) {
      throw std::runtime_error("corpus manifest " + manifest_path +
                               ": malformed shard row '" + row + "'");
    }
    shards_.push_back(dir + "/" + filename);
    total_designs_ += designs;
  }
}

ShardedCorpus::Shard ShardedCorpus::load(std::size_t index) const {
  if (index >= shards_.size()) {
    throw std::out_of_range("shard index " + std::to_string(index) +
                            " out of range (have " +
                            std::to_string(shards_.size()) + ")");
  }
  const std::string text = read_file_or_throw(shards_[index]);
  return parse_shard(text, shards_[index], families_);
}

}  // namespace nettag
