// Self-supervised pre-training (paper §II-D, §II-E):
//
//   Step 1 — Objective #1: symbolic-expression contrastive learning for
//            ExprLLM (InfoNCE over equivalence-transformed expression pairs).
//   Step 2 — with ExprLLM frozen, TAGFormer trains on:
//            #2.1 masked gate-type reconstruction (CE over logic-cell classes),
//            #2.2 netlist graph contrastive learning (InfoNCE, positives are
//                 functionally-equivalent rewrites),
//            #2.3 netlist size prediction (MSE on per-class gate counts),
//            #3   cross-stage contrastive alignment with frozen RTL and
//                 layout encoder embeddings.
//
// Every objective has an on/off switch so the Fig. 6 ablation re-runs
// pre-training with single objectives removed.
#pragma once

#include <vector>

#include "core/corpus_stream.hpp"
#include "core/dataset.hpp"
#include "core/nettag.hpp"
#include "model/gcn.hpp"
#include "model/text_encoder.hpp"
#include "nn/train_state.hpp"
#include "util/rng.hpp"

namespace nettag {

struct PretrainOptions {
  // Step 1 (ExprLLM).
  int expr_steps = 220;
  int expr_batch = 8;
  float expr_lr = 2e-3f;
  int expr_transform_steps = 3;   ///< rewrite steps per positive sample
  std::size_t max_expressions = 2400;
  bool objective_expr_cl = true;  ///< #1
  /// Auxiliary static-analysis objective in step 1: regress operator counts,
  /// depth, and support size from the expression embedding. The paper's
  /// ExprLLM starts from an 8B-parameter LLM that already "knows" Boolean
  /// composition; training from scratch, this objective supplies that
  /// inductive signal (documented as a substitution in DESIGN.md).
  bool objective_expr_props = true;

  // Step 2 (TAGFormer).
  int tag_steps = 200;
  int graph_batch = 6;
  float tag_lr = 2e-3f;
  float mask_fraction = 0.2f;
  float temperature = 0.1f;
  std::size_t max_cones = 160;
  bool objective_mask = true;      ///< #2.1
  bool objective_graph_cl = true;  ///< #2.2
  bool objective_size = true;      ///< #2.3
  bool objective_align = true;     ///< #3

  // Auxiliary RTL / layout encoders (only needed when aligning).
  int aux_steps = 50;
  int aux_batch = 6;
  float aux_lr = 2e-3f;

  /// Crash-safe checkpointing + cooperative interruption (off by default —
  /// a default TrainCheckpoint leaves training behavior untouched).
  TrainCheckpoint checkpoint;
  /// Shard index stamped into every TrainState this run saves. Set by the
  /// streaming driver (pretrain_streaming); leave 0 for in-memory training.
  std::uint64_t checkpoint_shard = 0;
};

struct PretrainReport {
  float expr_loss_first = 0, expr_loss_last = 0;
  float tag_loss_first = 0, tag_loss_last = 0;
  std::size_t expr_dataset_size = 0;
  std::size_t cones_used = 0;
  double seconds_step1 = 0, seconds_step2 = 0;
  /// Per-step losses of the two phases (a resumed run reproduces the
  /// uninterrupted curve exactly — the bit-identical-resume check).
  std::vector<float> expr_losses;
  std::vector<float> tag_losses;
  /// True when the run stopped early on options.checkpoint.stop /
  /// halt_after_steps; the checkpoint prefix then holds a resumable state.
  bool interrupted = false;
};

/// Pre-trains a TextEncoder with Objective #1 on an expression corpus.
/// Returns (first, last) mean batch loss.
std::pair<float, float> pretrain_expr_encoder(
    TextEncoder& encoder, const std::vector<std::string>& expressions,
    const PretrainOptions& options, Rng& rng);

/// Contrastive pre-training for the auxiliary RTL text encoder (positives:
/// statement-order-shuffled RTL).
void pretrain_rtl_encoder(TextEncoder& encoder,
                          const std::vector<std::string>& rtl_texts,
                          const PretrainOptions& options, Rng& rng);

/// Graph-contrastive pre-training for the auxiliary layout encoder
/// (positives: parasitic-jittered copies of the same layout graph).
void pretrain_layout_encoder(Gcn& encoder,
                             const std::vector<LayoutGraph>& layouts,
                             const PretrainOptions& options, Rng& rng);

/// Full two-step pre-training of NetTAG on a corpus. Builds and trains the
/// auxiliary encoders internally when alignment is enabled (they are used
/// only during pre-training, per the paper).
///
/// With options.checkpoint enabled, the run periodically persists model
/// parameters plus a TrainState record, and stops cleanly (after the step
/// in flight, with a final checkpoint) when the stop flag fires.
PretrainReport pretrain(NetTag& model, const Corpus& corpus,
                        const PretrainOptions& options, Rng& rng);

/// Continues an interrupted pretrain from options.checkpoint.prefix. The
/// caller must reconstruct model / options / corpus / rng exactly as the
/// original run (and run at the same NETTAG_THREADS width); the result is
/// then bit-identical to the uninterrupted run: deterministic preparation
/// is replayed from re-derived RNG streams, while trained state (model
/// parameters, head values, Adam moments, the loop RNG) is restored from
/// the checkpoint. Throws std::runtime_error on a missing/corrupt
/// checkpoint or a dataset-size mismatch.
PretrainReport resume_pretrain(NetTag& model, const Corpus& corpus,
                               const PretrainOptions& options, Rng& rng);

/// Streaming pre-training over a sharded out-of-core corpus
/// (core/corpus_stream.hpp): shards are loaded one at a time, trained on,
/// and discarded, so peak RAM is bounded by the largest shard instead of
/// the corpus. Each shard runs the full two-step curriculum on a slice of
/// the global step budget (shard s of S gets steps*(s+1)/S - steps*s/S of
/// each phase); embedded shard expressions are reused when the model's
/// k_hop matches the corpus manifest. Checkpoints record the shard index
/// plus the intra-shard phase/step cursor, so resume lands mid-corpus.
///
/// The returned report aggregates the shards this call actually trained
/// (loss curves concatenated in shard order).
PretrainReport pretrain_streaming(NetTag& model, const ShardedCorpus& corpus,
                                  const PretrainOptions& options, Rng& rng);

/// Continues an interrupted pretrain_streaming from
/// options.checkpoint.prefix. Same reconstruction contract as
/// resume_pretrain; committed shards before the checkpoint's shard index
/// are skipped by consuming their RNG forks (never reloaded), and the
/// remainder of the corpus trains bit-identically to an uninterrupted run.
PretrainReport resume_pretrain_streaming(NetTag& model,
                                         const ShardedCorpus& corpus,
                                         const PretrainOptions& options,
                                         Rng& rng);

}  // namespace nettag
