#include "core/tag.hpp"

#include <sstream>

#include "expr/expr.hpp"
#include "expr/tokenizer.hpp"
#include "model/graph.hpp"
#include "physical/analysis.hpp"

namespace nettag {

std::string gate_text_attribute(const Netlist& nl, GateId id, int k_hop) {
  const PowerReport activity = netlist_stage_power(nl);
  return gate_text_attribute(nl, id, k_hop,
                             activity.toggle[static_cast<std::size_t>(id)],
                             activity.prob[static_cast<std::size_t>(id)]);
}

std::string gate_text_attribute(const Netlist& nl, GateId id, int k_hop,
                                double toggle, double prob) {
  const Gate& g = nl.gate(id);
  const CellInfo& info = cell_info(g.type);
  std::ostringstream out;
  // Physical characteristics first (bucketized on log scales spanning the
  // library) so they survive truncation when the expression is long.
  out << "gate " << g.name << " type " << info.name                //
      << " phys area " << bucket_token(info.area, 0.5, 5.0)        //
      << " leak " << bucket_token(info.leakage, 1.0, 10.0)         //
      << " cap " << bucket_token(info.input_cap, 1.0, 3.0)         //
      << " drive " << bucket_token(info.drive_res, 0.05, 0.2)      //
      << " delay " << bucket_token(info.intrinsic_delay + 1e-4, 0.005, 0.1)
      << " fanout " << bucket_token(static_cast<double>(g.fanouts.size()) + 1.0,
                                    1.0, 32.0)
      << " toggle " << bucket_token(toggle + 1e-3, 1e-3, 1.0)  //
      << " prob " << bucket_token(prob + 1e-3, 1e-3, 1.0);
  if (g.type != CellType::kPort && g.type != CellType::kConst0 &&
      g.type != CellType::kConst1) {
    out << " expr " << g.name << " = "
        << to_string(khop_expression(nl, id, k_hop));
  }
  return out.str();
}

TagGraph build_tag(const Netlist& nl, int k_hop) {
  TagGraph tag;
  tag.attrs.reserve(nl.size());
  const PowerReport activity = netlist_stage_power(nl);
  for (const Gate& g : nl.gates()) {
    tag.attrs.push_back(gate_text_attribute(
        nl, g.id, k_hop, activity.toggle[static_cast<std::size_t>(g.id)],
        activity.prob[static_cast<std::size_t>(g.id)]));
  }
  tag.phys = netlist_phys_features(nl);
  tag.edges = netlist_edges(nl);
  return tag;
}

}  // namespace nettag
