// Parasitic extraction, static timing analysis, power analysis, and area —
// the PrimeTime/SPEF substitute that produces all physical labels
// (Task 3 endpoint slack, Task 4 power/area) and the layout graphs consumed
// by the auxiliary layout encoder.
//
// Units: distances um, capacitance fF, resistance kOhm, time ns, power uW
// (dynamic) / nW (leakage, converted). The absolute calibration is
// approximate; what the experiments rely on is that the model is monotone
// and structurally faithful (load-dependent delay, activity-dependent power,
// wirelength-dependent parasitics).
#pragma once

#include <array>
#include <vector>

#include "netlist/netlist.hpp"
#include "physical/placement.hpp"

namespace nettag {

/// Per-net parasitics (indexed by driver gate id) — the SPEF substitute.
struct NetParasitics {
  double wire_res = 0.0;  ///< kOhm
  double wire_cap = 0.0;  ///< fF
  double pin_cap = 0.0;   ///< total sink input-pin cap, fF
  double load() const { return wire_cap + pin_cap; }
};

struct Parasitics {
  std::vector<NetParasitics> nets;  ///< indexed by gate id
  double r_per_um = 0.08;           ///< wire resistance per um
  double c_per_um = 0.20;           ///< wire capacitance per um
};

/// Extracts RC parasitics from placement (HPWL wire model).
Parasitics extract_parasitics(const Netlist& nl, const Placement& pl);

/// Static timing analysis result.
struct TimingReport {
  std::vector<double> arrival;      ///< per gate-output arrival time, ns
  std::vector<double> gate_delay;   ///< per gate stage delay (cell + wire), ns
  std::vector<double> slack;        ///< per endpoint gate id; +inf elsewhere
  std::vector<GateId> endpoints;    ///< DFFs (D pin) and primary outputs
  double clock_period = 0.0;
  double wns = 0.0;                 ///< worst negative-or-not slack
  double critical_path = 0.0;       ///< max arrival
};

/// Runs STA. Endpoints are register D-pins and primary outputs; sources are
/// ports (arrival 0) and register Q-pins (clk->q delay).
TimingReport run_sta(const Netlist& nl, const Parasitics& para,
                     double clock_period);

/// Netlist-stage (pre-layout) STA: no placement, so wire parasitics are
/// zero and loads are pin caps only. This is the timing estimate available
/// to *any* netlist-stage predictor (it feeds both the Task 3 baseline and
/// the NetTAG fine-tuning features, matching how [2] consumes netlist-stage
/// timing).
TimingReport netlist_stage_sta(const Netlist& nl, double clock_period = 0.0);

/// Power analysis result.
struct PowerReport {
  std::vector<double> prob;       ///< P(signal == 1) per gate output
  std::vector<double> toggle;     ///< transition density per gate output
  std::vector<double> gate_power; ///< per gate total power, uW
  double dynamic_power = 0.0;     ///< uW
  double leakage_power = 0.0;     ///< uW
  double total() const { return dynamic_power + leakage_power; }
};

/// Propagates signal probabilities and transition densities (Najm-style,
/// independence assumption, exact per-cell enumeration over <=4 inputs) and
/// integrates switching power over net loads.
PowerReport run_power(const Netlist& nl, const Parasitics& para,
                      double input_activity = 0.2, double input_prob = 0.5,
                      double clock_ghz = 1.0);

/// Netlist-stage power analysis: propagated activity with pin-cap-only
/// loads (the "power report" a netlist-stage predictor can legitimately
/// compute; it misses wire capacitance and layout restructuring).
PowerReport netlist_stage_power(const Netlist& nl);

/// Area summary.
struct AreaReport {
  double cell_area = 0.0;   ///< sum of cell areas, um^2
  double total_area = 0.0;  ///< with utilization + routing overhead
};

AreaReport run_area(const Netlist& nl, double utilization = 0.7);

/// Netlist-stage estimate as a synthesis tool would report it (the
/// "EDA Tool" column of Table V): cell-area sum with the target utilization,
/// and power under a flat default switching assumption (no propagated
/// activity, no wire loads) — accurate for area, badly off for power, and
/// blind to layout-stage restructuring. This is the baseline NetTAG beats.
struct ToolEstimate {
  double area = 0.0;   ///< um^2
  double power = 0.0;  ///< uW
};

ToolEstimate synthesis_estimate(const Netlist& nl, double utilization = 0.7,
                                double default_activity = 0.2,
                                double clock_ghz = 1.0);

/// Layout graph: the netlist topology annotated with physical quantities
/// extracted from placement/parasitics/timing — what the layout encoder
/// consumes for cross-stage alignment (paper Fig. 3(c)).
struct LayoutGraph {
  /// per node: {wire_cap, wire_res, load, stage_delay, x, y}
  std::vector<std::array<double, 6>> node_feats;
  std::vector<std::pair<int, int>> edges;  ///< driver -> sink
};

LayoutGraph build_layout_graph(const Netlist& nl, const Placement& pl,
                               const Parasitics& para, const TimingReport& timing);

}  // namespace nettag
