#include "physical/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/parallel.hpp"

namespace nettag {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// ns of delay per (kOhm * fF) of drive/load product. Calibrated so typical
/// loads contribute delay comparable to cell intrinsic delay.
constexpr double kRcToNs = 0.02;
constexpr double kSetupTime = 0.04;   // ns
constexpr double kClkToQ = 0.06;      // ns
constexpr double kVdd = 1.1;          // V

/// Longest-path levelization: sources (ports, constants, registers, and
/// fanin-free gates) at level 0, every other gate strictly above all of its
/// fanins. Gates within one level never feed each other, so each level can
/// be evaluated in parallel with results bit-identical to the serial
/// topological sweep — every per-gate value is written by exactly one task
/// and depends only on lower levels.
std::vector<std::vector<GateId>> levelize(const Netlist& nl) {
  std::vector<int> level(nl.size(), 0);
  int max_level = 0;
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (g.type == CellType::kPort || g.type == CellType::kConst0 ||
        g.type == CellType::kConst1 || g.type == CellType::kDff) {
      continue;
    }
    int lv = 0;
    for (GateId f : g.fanins) {
      lv = std::max(lv, level[static_cast<std::size_t>(f)] + 1);
    }
    level[static_cast<std::size_t>(id)] = lv;
    max_level = std::max(max_level, lv);
  }
  std::vector<std::vector<GateId>> levels(static_cast<std::size_t>(max_level) + 1);
  for (GateId id : nl.topo_order()) {
    levels[static_cast<std::size_t>(level[static_cast<std::size_t>(id)])]
        .push_back(id);
  }
  return levels;
}

/// Grain for per-gate node loops (each item is tens of flops).
constexpr std::size_t kGateGrain = 256;

}  // namespace

Parasitics extract_parasitics(const Netlist& nl, const Placement& pl) {
  Parasitics para;
  para.nets.resize(nl.size());
  parallel_for(nl.size(), kGateGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Gate& g = nl.gate(static_cast<GateId>(i));
      NetParasitics& net = para.nets[i];
      const double len = net_hpwl(nl, pl, g.id);
      net.wire_res = para.r_per_um * len;
      net.wire_cap = para.c_per_um * len;
      for (GateId s : g.fanouts) {
        net.pin_cap += cell_info(nl.gate(s).type).input_cap;
      }
    }
  });
  return para;
}

TimingReport run_sta(const Netlist& nl, const Parasitics& para,
                     double clock_period) {
  TimingReport rep;
  const std::size_t n = nl.size();
  rep.arrival.assign(n, 0.0);
  rep.gate_delay.assign(n, 0.0);
  rep.slack.assign(n, kInf);
  rep.clock_period = clock_period;

  // Level-parallel arrival propagation: a gate's arrival depends only on
  // strictly lower levels, so each level is a parallel sweep and the result
  // is bit-identical to the serial topological walk.
  for (const std::vector<GateId>& lvl : levelize(nl)) {
    parallel_for(lvl.size(), kGateGrain, [&](std::size_t b, std::size_t e) {
      for (std::size_t u = b; u < e; ++u) {
        const GateId id = lvl[u];
        const Gate& g = nl.gate(id);
        const NetParasitics& net = para.nets[static_cast<std::size_t>(id)];
        const CellInfo& info = cell_info(g.type);
        // Stage delay: cell intrinsic + drive * load + Elmore wire term.
        const double drive_delay = info.drive_res * net.load() * kRcToNs;
        const double wire_delay =
            net.wire_res * (net.wire_cap / 2 + net.pin_cap) * kRcToNs;
        const double stage = info.intrinsic_delay + drive_delay + wire_delay;
        rep.gate_delay[static_cast<std::size_t>(id)] = stage;

        if (g.type == CellType::kPort || g.type == CellType::kConst0 ||
            g.type == CellType::kConst1) {
          rep.arrival[static_cast<std::size_t>(id)] = drive_delay + wire_delay;
          continue;
        }
        if (g.type == CellType::kDff) {
          rep.arrival[static_cast<std::size_t>(id)] =
              kClkToQ + drive_delay + wire_delay;
          continue;
        }
        double worst_in = 0.0;
        for (GateId f : g.fanins) {
          worst_in = std::max(worst_in, rep.arrival[static_cast<std::size_t>(f)]);
        }
        rep.arrival[static_cast<std::size_t>(id)] = worst_in + stage;
      }
    });
  }

  rep.wns = kInf;
  for (const Gate& g : nl.gates()) {
    double endpoint_arrival = -kInf;
    if (g.type == CellType::kDff) {
      endpoint_arrival = rep.arrival[static_cast<std::size_t>(g.fanins[0])];
    } else if (g.is_primary_output) {
      endpoint_arrival = rep.arrival[static_cast<std::size_t>(g.id)];
    } else {
      continue;
    }
    const double required = clock_period - kSetupTime;
    const double slack = required - endpoint_arrival;
    rep.slack[static_cast<std::size_t>(g.id)] = slack;
    rep.endpoints.push_back(g.id);
    rep.wns = std::min(rep.wns, slack);
    rep.critical_path = std::max(rep.critical_path, endpoint_arrival);
  }
  if (rep.endpoints.empty()) rep.wns = 0.0;
  return rep;
}

TimingReport netlist_stage_sta(const Netlist& nl, double clock_period) {
  Parasitics para;
  para.nets.resize(nl.size());
  for (const Gate& g : nl.gates()) {
    NetParasitics& net = para.nets[static_cast<std::size_t>(g.id)];
    for (GateId s : g.fanouts) {
      net.pin_cap += cell_info(nl.gate(s).type).input_cap;
    }
  }
  return run_sta(nl, para, clock_period);
}

PowerReport netlist_stage_power(const Netlist& nl) {
  Parasitics para;
  para.nets.resize(nl.size());
  for (const Gate& g : nl.gates()) {
    NetParasitics& net = para.nets[static_cast<std::size_t>(g.id)];
    for (GateId s : g.fanouts) {
      net.pin_cap += cell_info(nl.gate(s).type).input_cap;
    }
  }
  return run_power(nl, para);
}

PowerReport run_power(const Netlist& nl, const Parasitics& para,
                      double input_activity, double input_prob,
                      double clock_ghz) {
  PowerReport rep;
  const std::size_t n = nl.size();
  rep.prob.assign(n, 0.0);
  rep.toggle.assign(n, 0.0);
  rep.gate_power.assign(n, 0.0);

  // Exact per-gate pairwise-joint propagation (independence assumption):
  // each signal is modeled by its marginal P(x=1) and per-cycle toggle
  // probability t = P(x(c) != x(c+1)), with symmetric transitions
  // P(0->1) = P(1->0) = t/2. For a gate we enumerate all (before, after)
  // input pairs — exact on fanout-free logic, an approximation under
  // reconvergence. Register outputs are resolved by a short fixed-point
  // (Q(c+1) = D(c), so a register's statistics equal its D statistics at
  // steady state).
  auto propagate_gate = [&](const Gate& g) {
    const int k = static_cast<int>(g.fanins.size());
    std::vector<double> pi(static_cast<std::size_t>(k));
    std::vector<double> ti(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      const std::size_t f =
          static_cast<std::size_t>(g.fanins[static_cast<std::size_t>(i)]);
      pi[static_cast<std::size_t>(i)] = rep.prob[f];
      // Clamp toggles to the feasible region t/2 <= min(p, 1-p).
      ti[static_cast<std::size_t>(i)] =
          std::min(rep.toggle[f],
                   2.0 * std::min(rep.prob[f], 1.0 - rep.prob[f]));
    }
    double p_one = 0.0, t_out = 0.0;
    for (int m0 = 0; m0 < (1 << k); ++m0) {
      // Probability of the "before" assignment.
      double pm0 = 1.0;
      std::vector<bool> bits0(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i) {
        const bool b = (m0 >> i) & 1;
        bits0[static_cast<std::size_t>(i)] = b;
        pm0 *= b ? pi[static_cast<std::size_t>(i)]
                 : 1.0 - pi[static_cast<std::size_t>(i)];
      }
      if (pm0 <= 0.0) continue;
      const bool y0 = cell_eval(g.type, bits0);
      if (y0) p_one += pm0;
      for (int m1 = 0; m1 < (1 << k); ++m1) {
        // Conditional probability of the "after" assignment: each input
        // flips with probability t_i/2 from state 1 (resp. from state 0),
        // i.e. P(flip | x0) = (t/2) / P(x0).
        double pm01 = pm0;
        std::vector<bool> bits1(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          const bool b0 = bits0[static_cast<std::size_t>(i)];
          const bool b1 = (m1 >> i) & 1;
          bits1[static_cast<std::size_t>(i)] = b1;
          const double p1 = pi[static_cast<std::size_t>(i)];
          const double half_t = ti[static_cast<std::size_t>(i)] / 2.0;
          const double p_b0 = b0 ? p1 : 1.0 - p1;
          const double p_flip = p_b0 > 1e-12 ? half_t / p_b0 : 0.0;
          pm01 *= b0 == b1 ? 1.0 - p_flip : p_flip;
        }
        if (pm01 <= 0.0) continue;
        if (cell_eval(g.type, bits1) != y0) t_out += pm01;
      }
    }
    rep.prob[static_cast<std::size_t>(g.id)] = std::clamp(p_one, 0.0, 1.0);
    rep.toggle[static_cast<std::size_t>(g.id)] = std::clamp(t_out, 0.0, 1.0);
  };

  // Sources.
  for (const Gate& g : nl.gates()) {
    const std::size_t i = static_cast<std::size_t>(g.id);
    switch (g.type) {
      case CellType::kPort:
        rep.prob[i] = input_prob;
        rep.toggle[i] = input_activity;
        break;
      case CellType::kConst0:
        rep.prob[i] = 0.0;
        rep.toggle[i] = 0.0;
        break;
      case CellType::kConst1:
        rep.prob[i] = 1.0;
        rep.toggle[i] = 0.0;
        break;
      case CellType::kDff:
        rep.prob[i] = 0.5;  // fixed-point seed
        rep.toggle[i] = input_activity;
        break;
      default:
        break;
    }
  }
  // Fixed-point sweeps: propagate combinational logic, then pull register
  // statistics from their D inputs. Three sweeps suffice in practice
  // (statistics contract quickly through logic).
  // Level-parallel sweeps: within a level no gate feeds another, so the
  // pairwise-joint propagation reads only stable lower-level statistics and
  // the result matches the serial sweep bit-for-bit. The activity
  // enumeration is 4^fanin per gate, so the grain is small.
  constexpr int kSweeps = 3;
  const std::vector<std::vector<GateId>> levels = levelize(nl);
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (const std::vector<GateId>& lvl : levels) {
      parallel_for(lvl.size(), 16, [&](std::size_t b, std::size_t e) {
        for (std::size_t u = b; u < e; ++u) {
          const Gate& g = nl.gate(lvl[u]);
          if (g.type == CellType::kPort || g.type == CellType::kConst0 ||
              g.type == CellType::kConst1 || g.type == CellType::kDff) {
            continue;
          }
          propagate_gate(g);
        }
      });
    }
    for (const Gate& g : nl.gates()) {
      if (g.type != CellType::kDff) continue;
      const std::size_t d = static_cast<std::size_t>(g.fanins[0]);
      rep.prob[static_cast<std::size_t>(g.id)] = rep.prob[d];
      rep.toggle[static_cast<std::size_t>(g.id)] = rep.toggle[d];
    }
  }

  // Per-gate power in parallel; the totals are reduced serially in gate
  // order to preserve the serial float-addition sequence.
  std::vector<double> dyn(n), leak(n);
  parallel_for(n, kGateGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const Gate& g = nl.gate(static_cast<GateId>(i));
      const NetParasitics& net = para.nets[i];
      // Dynamic: 0.5 * C * V^2 * f * alpha. C in fF, f in GHz -> power in uW.
      dyn[i] = 0.5 * net.load() * kVdd * kVdd * clock_ghz * rep.toggle[i];
      leak[i] = cell_info(g.type).leakage * 1e-3;  // nW -> uW
      rep.gate_power[i] = dyn[i] + leak[i];
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    rep.dynamic_power += dyn[i];
    rep.leakage_power += leak[i];
  }
  return rep;
}

AreaReport run_area(const Netlist& nl, double utilization) {
  AreaReport rep;
  for (const Gate& g : nl.gates()) rep.cell_area += cell_info(g.type).area;
  rep.total_area = rep.cell_area / utilization;
  return rep;
}

ToolEstimate synthesis_estimate(const Netlist& nl, double utilization,
                                double default_activity, double clock_ghz) {
  ToolEstimate est;
  est.area = run_area(nl, utilization).total_area;
  for (const Gate& g : nl.gates()) {
    // Pin loads only (no placement, so no wire caps), flat default activity.
    double pin_cap = 0.0;
    for (GateId s : g.fanouts) pin_cap += cell_info(nl.gate(s).type).input_cap;
    est.power += 0.5 * pin_cap * kVdd * kVdd * clock_ghz * default_activity;
    est.power += cell_info(g.type).leakage * 1e-3;
  }
  return est;
}

LayoutGraph build_layout_graph(const Netlist& nl, const Placement& pl,
                               const Parasitics& para,
                               const TimingReport& timing) {
  LayoutGraph lg;
  lg.node_feats.resize(nl.size());
  parallel_for(nl.size(), kGateGrain, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const NetParasitics& net = para.nets[i];
      lg.node_feats[i] = {net.wire_cap, net.wire_res, net.load(),
                          timing.gate_delay[i], pl.x[i], pl.y[i]};
    }
  });
  // Edge list order matters downstream — keep the serial append.
  for (const Gate& g : nl.gates()) {
    for (GateId s : g.fanouts) {
      lg.edges.emplace_back(static_cast<int>(g.id), static_cast<int>(s));
    }
  }
  return lg;
}

}  // namespace nettag
