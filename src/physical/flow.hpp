// End-to-end physical design flow: the P&R + sign-off substitute.
//
// Chains (optional) layout optimization -> placement -> parasitic extraction
// -> STA -> power -> area, returning all sign-off labels plus the measured
// wall-clock runtime (Table VI's "EDA tool P&R" column). With
// `optimize=true` the netlist is restructured first (logic rewriting +
// fanout buffering + cleanup), which is what makes Task 4's "w/ opt" labels
// diverge from netlist-stage estimates, exactly the gap PowPrediCT studies.
#pragma once

#include "netlist/netlist.hpp"
#include "physical/analysis.hpp"
#include "physical/placement.hpp"
#include "util/rng.hpp"

namespace nettag {

struct PhysicalResult {
  Netlist implemented;   ///< the netlist that was actually placed
  Placement placement;
  Parasitics parasitics;
  TimingReport timing;
  PowerReport power;
  AreaReport area;
  double runtime_seconds = 0.0;
};

/// Runs the flow. `clock_period` <= 0 selects it automatically as
/// 0.95 * critical path (so some endpoints end up with negative slack,
/// like a sign-off run at an aggressive target).
PhysicalResult run_physical_flow(const Netlist& nl, Rng& rng, bool optimize,
                                 double clock_period = 0.0,
                                 int placement_passes = 6);

}  // namespace nettag
