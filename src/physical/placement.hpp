// Standard-cell placement: the Innovus substitute.
//
// Cells are placed on rows (levelized initial placement: row = logic depth)
// and then improved by wirelength-driven pairwise-swap passes — a real,
// measurable optimization loop. Placement feeds the parasitic extractor
// (SPEF substitute) and hence the timing/power labels; its runtime is what
// the Table VI "EDA tool P&R" column measures.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace nettag {

/// Cell coordinates in micrometres (cell centre).
struct Placement {
  std::vector<double> x;
  std::vector<double> y;
  double row_height = 2.0;
  double total_hpwl = 0.0;  ///< half-perimeter wirelength after refinement
  int swap_passes = 0;
};

/// Half-perimeter wirelength of one net (driver + its sinks).
double net_hpwl(const Netlist& nl, const Placement& pl, GateId driver);

/// Total HPWL over all nets.
double total_hpwl(const Netlist& nl, const Placement& pl);

/// Places `nl`: levelized rows, then `passes` random pairwise-swap
/// improvement passes (each pass attempts ~size() swaps, keeping those that
/// reduce HPWL). More passes = better wirelength = slower, like a real tool.
Placement place(const Netlist& nl, Rng& rng, int passes = 6);

}  // namespace nettag
