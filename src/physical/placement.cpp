#include "physical/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/parallel.hpp"

namespace nettag {

double net_hpwl(const Netlist& nl, const Placement& pl, GateId driver) {
  const Gate& g = nl.gate(driver);
  if (g.fanouts.empty()) return 0.0;
  double xmin = pl.x[static_cast<std::size_t>(driver)];
  double xmax = xmin, ymin = pl.y[static_cast<std::size_t>(driver)], ymax = ymin;
  for (GateId s : g.fanouts) {
    xmin = std::min(xmin, pl.x[static_cast<std::size_t>(s)]);
    xmax = std::max(xmax, pl.x[static_cast<std::size_t>(s)]);
    ymin = std::min(ymin, pl.y[static_cast<std::size_t>(s)]);
    ymax = std::max(ymax, pl.y[static_cast<std::size_t>(s)]);
  }
  return (xmax - xmin) + (ymax - ymin);
}

double total_hpwl(const Netlist& nl, const Placement& pl) {
  // Per-net lengths in parallel, reduced serially in gate order so the
  // float-addition sequence matches the serial loop exactly.
  std::vector<double> len(nl.size());
  parallel_for(nl.size(), 256, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      len[i] = net_hpwl(nl, pl, static_cast<GateId>(i));
    }
  });
  double sum = 0.0;
  for (double l : len) sum += l;
  return sum;
}

Placement place(const Netlist& nl, Rng& rng, int passes) {
  const std::size_t n = nl.size();
  Placement pl;
  pl.x.resize(n, 0.0);
  pl.y.resize(n, 0.0);
  pl.swap_passes = passes;
  if (n == 0) return pl;

  // Levelize: row index = combinational depth (sources on row 0).
  std::vector<int> level(n, 0);
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (g.type == CellType::kPort || g.type == CellType::kDff ||
        g.type == CellType::kConst0 || g.type == CellType::kConst1) {
      continue;
    }
    int lv = 0;
    for (GateId f : g.fanins) lv = std::max(lv, level[static_cast<std::size_t>(f)] + 1);
    level[static_cast<std::size_t>(id)] = lv;
  }

  // Pack each row left-to-right with cell-width pitch.
  int max_level = 0;
  for (int lv : level) max_level = std::max(max_level, lv);
  std::vector<double> cursor(static_cast<std::size_t>(max_level) + 1, 0.0);
  for (const Gate& g : nl.gates()) {
    const int lv = level[static_cast<std::size_t>(g.id)];
    const double width =
        std::max(0.8, cell_info(g.type).area / pl.row_height);
    pl.x[static_cast<std::size_t>(g.id)] = cursor[static_cast<std::size_t>(lv)] + width / 2;
    pl.y[static_cast<std::size_t>(g.id)] = lv * pl.row_height;
    cursor[static_cast<std::size_t>(lv)] += width + 0.2;
  }

  // Pairwise-swap refinement within rows (positions swap; rows preserved so
  // the row structure stays legal).
  std::vector<std::vector<GateId>> rows(static_cast<std::size_t>(max_level) + 1);
  for (const Gate& g : nl.gates()) {
    rows[static_cast<std::size_t>(level[static_cast<std::size_t>(g.id)])].push_back(g.id);
  }
  auto cost_around = [&](GateId id) {
    // HPWL of all nets incident to `id`: its own net + nets driving it.
    double c = net_hpwl(nl, pl, id);
    for (GateId f : nl.gate(id).fanins) c += net_hpwl(nl, pl, f);
    return c;
  };
  for (int pass = 0; pass < passes; ++pass) {
    for (std::size_t attempt = 0; attempt < n; ++attempt) {
      const auto& row = rows[rng.index(rows.size())];
      if (row.size() < 2) continue;
      const GateId a = row[rng.index(row.size())];
      const GateId b = row[rng.index(row.size())];
      if (a == b) continue;
      const double before = cost_around(a) + cost_around(b);
      std::swap(pl.x[static_cast<std::size_t>(a)], pl.x[static_cast<std::size_t>(b)]);
      const double after = cost_around(a) + cost_around(b);
      if (after > before) {
        std::swap(pl.x[static_cast<std::size_t>(a)], pl.x[static_cast<std::size_t>(b)]);
      }
    }
  }
  pl.total_hpwl = total_hpwl(nl, pl);
  return pl;
}

}  // namespace nettag
