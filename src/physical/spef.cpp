#include "physical/spef.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nettag {

void write_spef(std::ostream& os, const Netlist& nl, const Parasitics& para) {
  os << "*SPEF \"IEEE 1481 style\"\n"
     << "*DESIGN \"" << nl.name() << "\"\n"
     << "*C_UNIT 1 FF\n*R_UNIT 1 KOHM\n\n";
  os << std::fixed << std::setprecision(4);
  for (const Gate& g : nl.gates()) {
    if (g.fanouts.empty()) continue;
    const NetParasitics& net = para.nets[static_cast<std::size_t>(g.id)];
    os << "*D_NET " << g.name << " " << net.load() << "\n"
       << "*RES " << net.wire_res << "\n"
       << "*WIRE_CAP " << net.wire_cap << "\n"
       << "*PIN_CAP " << net.pin_cap << "\n"
       << "*END\n";
  }
}

std::string spef_to_string(const Netlist& nl, const Parasitics& para) {
  std::ostringstream ss;
  write_spef(ss, nl, para);
  return ss.str();
}

Parasitics read_spef(std::istream& is, const Netlist& nl) {
  Parasitics para;
  para.nets.resize(nl.size());
  std::string line;
  int lineno = 0;
  GateId current = kNoGate;
  auto fail = [&](const std::string& why) {
    throw std::runtime_error("read_spef: line " + std::to_string(lineno) +
                             ": " + why);
  };
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "*D_NET") {
      std::string name;
      double total = 0;
      if (!(ls >> name >> total)) fail("malformed *D_NET");
      current = nl.find(name);
      if (current == kNoGate) fail("unknown net '" + name + "'");
    } else if (tag == "*RES") {
      if (current == kNoGate) fail("*RES outside *D_NET");
      ls >> para.nets[static_cast<std::size_t>(current)].wire_res;
    } else if (tag == "*WIRE_CAP") {
      if (current == kNoGate) fail("*WIRE_CAP outside *D_NET");
      ls >> para.nets[static_cast<std::size_t>(current)].wire_cap;
    } else if (tag == "*PIN_CAP") {
      if (current == kNoGate) fail("*PIN_CAP outside *D_NET");
      ls >> para.nets[static_cast<std::size_t>(current)].pin_cap;
    } else if (tag == "*END") {
      current = kNoGate;
    }
    // Header lines (*SPEF, *DESIGN, units) are informational.
  }
  return para;
}

Parasitics spef_from_string(const std::string& text, const Netlist& nl) {
  std::istringstream ss(text);
  return read_spef(ss, nl);
}

}  // namespace nettag
