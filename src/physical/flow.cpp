#include "physical/flow.hpp"

#include <algorithm>

#include "analysis/lint.hpp"
#include "rtlgen/optimize.hpp"
#include "util/timer.hpp"

namespace nettag {

PhysicalResult run_physical_flow(const Netlist& nl, Rng& rng, bool optimize,
                                 double clock_period, int placement_passes) {
  Timer timer;
  PhysicalResult res;
  if (optimize) {
    // Layout-stage restructuring: remap cells, buffer heavy nets, clean up.
    Netlist rewritten = logic_rewrite(nl, rng, 0.25);
    Netlist buffered = insert_buffers(rewritten, 4);
    res.implemented = cleanup(buffered);
  } else {
    // Even the non-optimizing flow legalizes heavy fanouts during placement.
    res.implemented = insert_buffers(nl, 8);
  }
  // Post-implementation lint seam: restructuring must not corrupt the
  // netlist (labels extracted from a broken implementation poison Tasks
  // 3/4 and the layout modality).
  enforce_clean(lint_netlist(res.implemented),
                "physical flow " + nl.name());
  res.placement = place(res.implemented, rng, placement_passes);
  res.parasitics = extract_parasitics(res.implemented, res.placement);
  if (clock_period <= 0.0) {
    // Sign-off at a constraint with margin: slacks are mostly positive and
    // sizeable, like a met-timing tapeout run.
    const TimingReport probe = run_sta(res.implemented, res.parasitics, 0.0);
    clock_period = 1.25 * probe.critical_path + 1e-3;
  }
  res.timing = run_sta(res.implemented, res.parasitics, clock_period);
  res.power = run_power(res.implemented, res.parasitics);
  // Achievable utilization depends on routing congestion: wire-heavy
  // placements need more whitespace. (Synthesis tools assume a fixed target
  // utilization, which is one source of their netlist-stage area error.)
  const double wire_per_cell =
      res.placement.total_hpwl / std::max<double>(1.0, static_cast<double>(
                                                           res.implemented.size()));
  const double utilization =
      std::clamp(0.74 - 0.02 * wire_per_cell, 0.58, 0.74);
  res.area = run_area(res.implemented, utilization);
  res.runtime_seconds = timer.seconds();
  return res;
}

}  // namespace nettag
