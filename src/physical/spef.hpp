// Standard Parasitic Exchange Format (SPEF) style writer/reader.
//
// The paper's layout graphs are annotated "with capacitance, resistance, and
// delay values extracted from the SPEF file" (§II-B). This module emits and
// re-reads our extracted parasitics in a SPEF-shaped format so the layout
// artifacts are inspectable and the extraction is round-trippable.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "physical/analysis.hpp"

namespace nettag {

/// Writes parasitics in a SPEF-like format: a header plus one *D_NET block
/// per driven net (total cap, wire R, pin C).
void write_spef(std::ostream& os, const Netlist& nl, const Parasitics& para);
std::string spef_to_string(const Netlist& nl, const Parasitics& para);

/// Parses the format produced by write_spef back into per-net parasitics
/// (nets resolved by driver gate name against `nl`). Throws
/// std::runtime_error on malformed input or unknown nets.
Parasitics read_spef(std::istream& is, const Netlist& nl);
Parasitics spef_from_string(const std::string& text, const Netlist& nl);

}  // namespace nettag
