// Hierarchical design composition: repository-scale netlists.
//
// The flat generator (generator.hpp) emits single-block designs of a few
// hundred gates — far below the repository-scale netlists the paper
// pre-trains on. This module composes many such blocks inside one
// Synthesizer into a hierarchical design: a set of *shared submodules*
// (instantiated once, consumed by several downstream blocks — the reused IP
// of a real SoC), and a *pipelined top level* whose levels are separated by
// register banks (the inter-block bus). Every block keeps its own FSM /
// counter / datapath flavour from the family profile, so per-gate ground
// truth (RTL block labels, state registers, per-register RTL text) is
// exactly as rich as in flat designs — there is just 10-100x more of it.
#pragma once

#include <string>

#include "rtlgen/generator.hpp"

namespace nettag {

/// Shape of one hierarchical design. Defaults give roughly 10x the gate
/// count of a flat design from the same profile; raise `levels` /
/// `blocks_per_level` / `shared_blocks` for up to ~100x.
struct HierarchyOptions {
  int levels = 3;              ///< pipeline depth of the top level
  int min_blocks_per_level = 2;
  int max_blocks_per_level = 3;
  int shared_blocks = 2;       ///< submodules reused by every level
};

/// Generates one hierarchical design. Deterministic given `rng`'s state;
/// same finalize path (rewrite + cleanup + validate + lint) as
/// generate_design, and always sequential (pipeline registers guarantee it).
GeneratedDesign generate_hierarchical_design(const FamilyProfile& profile,
                                             const HierarchyOptions& options,
                                             Rng& rng,
                                             const std::string& design_name);

}  // namespace nettag
