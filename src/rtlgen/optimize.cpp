#include "rtlgen/optimize.hpp"

#include <cassert>
#include <deque>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace nettag {

namespace {

bool is_source_type(CellType t) {
  return t == CellType::kPort || t == CellType::kConst0 ||
         t == CellType::kConst1 || t == CellType::kDff;
}

}  // namespace

// ---------------------------------------------------------------------------
// cleanup
// ---------------------------------------------------------------------------

Netlist cleanup(const Netlist& in) {
  constexpr int kUnknown = -1, kZero = 0, kOne = 1;
  const std::size_t n = in.size();
  std::vector<int> cv(n, kUnknown);   // constant value analysis
  std::vector<GateId> repl(n);        // alias after collapsing BUF / INV-INV
  for (std::size_t i = 0; i < n; ++i) repl[i] = static_cast<GateId>(i);

  auto resolved = [&](GateId id) { return repl[static_cast<std::size_t>(id)]; };

  for (GateId id : in.topo_order()) {
    const Gate& g = in.gate(id);
    if (g.type == CellType::kConst0) {
      cv[static_cast<std::size_t>(id)] = kZero;
      continue;
    }
    if (g.type == CellType::kConst1) {
      cv[static_cast<std::size_t>(id)] = kOne;
      continue;
    }
    if (is_source_type(g.type)) continue;

    // Constant folding over resolved fanins.
    bool all_const = true;
    std::vector<bool> bits;
    for (GateId f : g.fanins) {
      const int v = cv[static_cast<std::size_t>(resolved(f))];
      if (v == kUnknown) {
        all_const = false;
        break;
      }
      bits.push_back(v == kOne);
    }
    if (all_const) {
      cv[static_cast<std::size_t>(id)] = cell_eval(g.type, bits) ? kOne : kZero;
      continue;
    }
    // Partial constant simplifications that produce aliases.
    const auto rf = [&](std::size_t k) { return resolved(g.fanins[k]); };
    const auto cvf = [&](std::size_t k) { return cv[static_cast<std::size_t>(rf(k))]; };
    switch (g.type) {
      case CellType::kBuf:
        repl[static_cast<std::size_t>(id)] = rf(0);
        break;
      case CellType::kInv: {
        const Gate& src = in.gate(rf(0));
        if (src.type == CellType::kInv) {
          repl[static_cast<std::size_t>(id)] = resolved(src.fanins[0]);
        }
        break;
      }
      case CellType::kAnd2:
        if (cvf(0) == kOne) repl[static_cast<std::size_t>(id)] = rf(1);
        else if (cvf(1) == kOne) repl[static_cast<std::size_t>(id)] = rf(0);
        else if (cvf(0) == kZero || cvf(1) == kZero)
          cv[static_cast<std::size_t>(id)] = kZero;
        break;
      case CellType::kOr2:
        if (cvf(0) == kZero) repl[static_cast<std::size_t>(id)] = rf(1);
        else if (cvf(1) == kZero) repl[static_cast<std::size_t>(id)] = rf(0);
        else if (cvf(0) == kOne || cvf(1) == kOne)
          cv[static_cast<std::size_t>(id)] = kOne;
        break;
      default:
        break;
    }
  }

  // Liveness: everything reachable backward from POs and register D-pins.
  std::unordered_set<GateId> live;
  std::deque<GateId> work;
  auto mark = [&](GateId id) {
    const GateId r = resolved(id);
    if (cv[static_cast<std::size_t>(r)] != kUnknown) return;  // becomes const
    if (live.insert(r).second) work.push_back(r);
  };
  for (const Gate& g : in.gates()) {
    if (g.type == CellType::kPort || g.type == CellType::kDff) {
      live.insert(g.id);
      work.push_back(g.id);
    }
    if (g.is_primary_output) mark(g.id);
  }
  while (!work.empty()) {
    const GateId id = work.front();
    work.pop_front();
    for (GateId f : in.gate(id).fanins) mark(f);
  }

  // Rebuild keeping only live, non-aliased gates.
  Netlist out(in.name());
  out.set_source(in.source());
  std::unordered_map<GateId, GateId> map;  // old id -> new id
  GateId c0 = kNoGate, c1 = kNoGate;
  auto new_const = [&](bool v) {
    GateId& slot = v ? c1 : c0;
    if (slot == kNoGate) {
      slot = out.add_gate(v ? CellType::kConst1 : CellType::kConst0,
                          v ? "__c1" : "__c0", {});
    }
    return slot;
  };
  auto new_node_of = [&](GateId old) {
    const GateId r = resolved(old);
    const int v = cv[static_cast<std::size_t>(r)];
    if (v != kUnknown) return new_const(v == kOne);
    return map.at(r);
  };

  GateId placeholder = kNoGate;
  for (const Gate& g : in.gates()) {
    if (g.type == CellType::kPort) {
      const GateId nid = out.add_port(g.name);
      out.gate(nid).rtl_block = g.rtl_block;
      map[g.id] = nid;
    } else if (g.type == CellType::kDff) {
      if (placeholder == kNoGate) {
        placeholder = out.add_gate(CellType::kConst0, "__cl_ph", {});
      }
      const GateId nid = out.add_gate(CellType::kDff, g.name, {placeholder});
      Gate& ng = out.gate(nid);
      ng.rtl_block = g.rtl_block;
      ng.is_state_reg = g.is_state_reg;
      map[g.id] = nid;
    }
  }
  for (GateId id : in.topo_order()) {
    const Gate& g = in.gate(id);
    if (map.count(id) || is_source_type(g.type)) continue;
    if (resolved(id) != id) continue;                          // aliased away
    if (cv[static_cast<std::size_t>(id)] != kUnknown) continue;  // const-folded
    if (!live.count(id)) continue;                             // dead
    std::vector<GateId> fanins;
    fanins.reserve(g.fanins.size());
    for (GateId f : g.fanins) fanins.push_back(new_node_of(f));
    const GateId nid = out.add_gate(g.type, g.name, fanins);
    Gate& ng = out.gate(nid);
    ng.rtl_block = g.rtl_block;
    map[id] = nid;
  }
  for (const Gate& g : in.gates()) {
    if (g.type == CellType::kDff) {
      out.replace_fanin(map.at(g.id), placeholder, new_node_of(g.fanins[0]));
    }
    if (g.is_primary_output) {
      out.mark_output(new_node_of(g.id));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// logic_rewrite
// ---------------------------------------------------------------------------

namespace {

/// Helper building fresh uniquely-named gates in the output netlist.
class FreshGates {
 public:
  explicit FreshGates(Netlist& nl) : nl_(nl) {}

  GateId make(CellType type, const std::vector<GateId>& fanins,
              const std::string& label) {
    std::string name;
    do {
      name = "w" + std::to_string(counter_++);
    } while (nl_.find(name) != kNoGate);
    const GateId id = nl_.add_gate(type, name, fanins);
    nl_.gate(id).rtl_block = label;
    return id;
  }

 private:
  Netlist& nl_;
  int counter_ = 0;
};

}  // namespace

Netlist logic_rewrite(const Netlist& in, Rng& rng, double intensity) {
  Netlist res(in.name());
  res.set_source(in.source());
  FreshGates fresh(res);
  std::unordered_map<GateId, GateId> map;
  GateId placeholder = kNoGate;

  for (const Gate& g : in.gates()) {
    if (g.type == CellType::kPort) {
      const GateId n = res.add_port(g.name);
      res.gate(n).rtl_block = g.rtl_block;
      map[g.id] = n;
    } else if (g.type == CellType::kConst0 || g.type == CellType::kConst1) {
      map[g.id] = res.add_gate(g.type, g.name, {});
    } else if (g.type == CellType::kDff) {
      if (placeholder == kNoGate) {
        placeholder = res.add_gate(CellType::kConst0, "__rw_ph", {});
      }
      const GateId n = res.add_gate(CellType::kDff, g.name, {placeholder});
      Gate& ng = res.gate(n);
      ng.rtl_block = g.rtl_block;
      ng.is_state_reg = g.is_state_reg;
      map[g.id] = n;
    }
  }

  for (GateId id : in.topo_order()) {
    const Gate& g = in.gate(id);
    if (map.count(id)) {
      if (g.is_primary_output) res.mark_output(map.at(id));
      continue;
    }
    std::vector<GateId> f;
    f.reserve(g.fanins.size());
    for (GateId x : g.fanins) f.push_back(map.at(x));
    const std::string& lb = g.rtl_block;
    auto mk = [&](CellType t, const std::vector<GateId>& ins) {
      return fresh.make(t, ins, lb);
    };

    GateId n = kNoGate;
    const bool rewrite = rng.chance(intensity);
    if (rewrite) {
      switch (g.type) {
        case CellType::kAnd2:
          n = rng.chance(0.5) ? mk(CellType::kInv, {mk(CellType::kNand2, f)})
                              : mk(CellType::kNor2, {mk(CellType::kInv, {f[0]}),
                                                     mk(CellType::kInv, {f[1]})});
          break;
        case CellType::kNand2:
          n = rng.chance(0.5)
                  ? mk(CellType::kInv, {mk(CellType::kAnd2, f)})
                  : mk(CellType::kOr2, {mk(CellType::kInv, {f[0]}),
                                        mk(CellType::kInv, {f[1]})});
          break;
        case CellType::kOr2:
          n = rng.chance(0.5) ? mk(CellType::kInv, {mk(CellType::kNor2, f)})
                              : mk(CellType::kNand2, {mk(CellType::kInv, {f[0]}),
                                                      mk(CellType::kInv, {f[1]})});
          break;
        case CellType::kNor2:
          n = rng.chance(0.5)
                  ? mk(CellType::kInv, {mk(CellType::kOr2, f)})
                  : mk(CellType::kAnd2, {mk(CellType::kInv, {f[0]}),
                                         mk(CellType::kInv, {f[1]})});
          break;
        case CellType::kXor2: {
          const GateId na = mk(CellType::kInv, {f[0]});
          const GateId nb = mk(CellType::kInv, {f[1]});
          n = mk(CellType::kOr2, {mk(CellType::kAnd2, {f[0], nb}),
                                  mk(CellType::kAnd2, {na, f[1]})});
          break;
        }
        case CellType::kXnor2:
          n = mk(CellType::kInv, {mk(CellType::kXor2, f)});
          break;
        case CellType::kMux2:
          // (A,B,S): S?B:A == AOI22(!S, !A, S, !B)
          n = mk(CellType::kAoi22, {mk(CellType::kInv, {f[2]}),
                                    mk(CellType::kInv, {f[0]}), f[2],
                                    mk(CellType::kInv, {f[1]})});
          break;
        case CellType::kAnd3:
          n = mk(CellType::kAnd2, {mk(CellType::kAnd2, {f[0], f[1]}), f[2]});
          break;
        case CellType::kAnd4:
          n = mk(CellType::kAnd2, {mk(CellType::kAnd2, {f[0], f[1]}),
                                   mk(CellType::kAnd2, {f[2], f[3]})});
          break;
        case CellType::kOr3:
          n = mk(CellType::kOr2, {mk(CellType::kOr2, {f[0], f[1]}), f[2]});
          break;
        case CellType::kOr4:
          n = mk(CellType::kOr2, {mk(CellType::kOr2, {f[0], f[1]}),
                                  mk(CellType::kOr2, {f[2], f[3]})});
          break;
        case CellType::kNand3:
          n = mk(CellType::kNand2, {mk(CellType::kAnd2, {f[0], f[1]}), f[2]});
          break;
        case CellType::kNand4:
          n = mk(CellType::kNand2, {mk(CellType::kAnd2, {f[0], f[1]}),
                                    mk(CellType::kAnd2, {f[2], f[3]})});
          break;
        case CellType::kNor3:
          n = mk(CellType::kNor2, {mk(CellType::kOr2, {f[0], f[1]}), f[2]});
          break;
        case CellType::kNor4:
          n = mk(CellType::kNor2, {mk(CellType::kOr2, {f[0], f[1]}),
                                   mk(CellType::kOr2, {f[2], f[3]})});
          break;
        case CellType::kMaj3: {
          // maj(a,b,c) = ab | c(a^b)
          const GateId ab = mk(CellType::kAnd2, {f[0], f[1]});
          const GateId x = mk(CellType::kXor2, {f[0], f[1]});
          n = mk(CellType::kOr2, {ab, mk(CellType::kAnd2, {f[2], x})});
          break;
        }
        case CellType::kAoi21:
          n = mk(CellType::kNor2, {mk(CellType::kAnd2, {f[0], f[1]}), f[2]});
          break;
        case CellType::kAoi22:
          n = mk(CellType::kNor2, {mk(CellType::kAnd2, {f[0], f[1]}),
                                   mk(CellType::kAnd2, {f[2], f[3]})});
          break;
        case CellType::kOai21:
          n = mk(CellType::kNand2, {mk(CellType::kOr2, {f[0], f[1]}), f[2]});
          break;
        case CellType::kOai22:
          n = mk(CellType::kNand2, {mk(CellType::kOr2, {f[0], f[1]}),
                                    mk(CellType::kOr2, {f[2], f[3]})});
          break;
        default:
          break;
      }
    }
    if (n == kNoGate) {
      // Copy the gate as-is (keep its name where possible).
      if (res.find(g.name) == kNoGate) {
        n = res.add_gate(g.type, g.name, f);
        res.gate(n).rtl_block = g.rtl_block;
      } else {
        n = fresh.make(g.type, f, g.rtl_block);
      }
    }
    // Occasionally add a double-inverter pair on the output.
    if (rng.chance(intensity * 0.25)) {
      n = mk(CellType::kInv, {mk(CellType::kInv, {n})});
    }
    if (g.is_primary_output) res.mark_output(n);
    map[id] = n;
  }

  for (const Gate& g : in.gates()) {
    if (g.type != CellType::kDff) continue;
    res.replace_fanin(map.at(g.id), placeholder, map.at(g.fanins[0]));
  }
  return res;
}

// ---------------------------------------------------------------------------
// insert_buffers
// ---------------------------------------------------------------------------

Netlist insert_buffers(const Netlist& in, int max_fanout) {
  Netlist out = in;  // value copy
  int counter = 0;
  // Iterate over the original gate count: newly added buffers are checked in
  // later outer passes only if needed (buffer fanout <= max_fanout by
  // construction).
  const std::size_t original = out.size();
  for (std::size_t i = 0; i < original; ++i) {
    const GateId id = static_cast<GateId>(i);
    // Snapshot sinks: replace_fanin mutates fanout lists.
    const std::vector<GateId> sinks = out.gate(id).fanouts;
    if (static_cast<int>(sinks.size()) <= max_fanout) continue;
    // Leave the first max_fanout sinks on the original driver; move the rest
    // to buffers in groups of max_fanout.
    std::size_t next = static_cast<std::size_t>(max_fanout);
    while (next < sinks.size()) {
      std::string name;
      do {
        name = "buf" + std::to_string(counter++);
      } while (out.find(name) != kNoGate);
      const GateId buf = out.add_gate(CellType::kBuf, name, {id});
      out.gate(buf).rtl_block = out.gate(id).rtl_block;
      for (std::size_t k = 0; k < static_cast<std::size_t>(max_fanout) &&
                              next < sinks.size();
           ++k, ++next) {
        out.replace_fanin(sinks[next], id, buf);
      }
    }
  }
  return out;
}

}  // namespace nettag
