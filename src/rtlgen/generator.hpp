// Synthetic design generator: the data-collection substitute.
//
// The paper pre-trains on netlists synthesized from ITC99 / OpenCores /
// Chipyard / VexRiscv RTL. We cannot ship those, so this module generates
// random-but-structured designs in four benchmark *families* whose relative
// size statistics follow Table II's shape (OpenCores smallest, Chipyard
// largest). Each design composes datapath blocks (adders, multipliers,
// comparators, muxes, shifters, parity/reduce trees, encoders/decoders) with
// sequential elements (pipeline registers, FSM controllers, counters, LFSRs,
// CRC units), then runs a technology-diversification rewrite and cleanup —
// mimicking what Design Compiler emits. Ground truth (per-gate RTL block,
// state-register flags, per-register RTL cone text) rides along.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "rtlgen/synthesizer.hpp"
#include "util/rng.hpp"

namespace nettag {

/// One generated design with all cross-stage artifacts.
struct GeneratedDesign {
  Netlist netlist;
  std::string rtl_text;  ///< full-design pseudo-Verilog
  /// register gate name -> RTL text of the statements driving it
  std::unordered_map<std::string, std::string> reg_rtl;
};

/// Knobs controlling the flavour of one benchmark family.
struct FamilyProfile {
  std::string name;        ///< "itc99", "opencores", "chipyard", "vexriscv"
  int min_stages = 3;      ///< datapath depth
  int max_stages = 6;
  int min_width = 2;       ///< bus width
  int max_width = 4;
  double fsm_prob = 0.5;   ///< chance the design contains an FSM controller
  double counter_prob = 0.4;
  double lfsr_prob = 0.2;
  double crc_prob = 0.2;
  double mul_weight = 1.0; ///< relative frequency of multiplier stages
  double register_prob = 0.55;  ///< chance a stage output is registered
  double rewrite_intensity = 0.25;  ///< tech-map cell diversification
};

/// The four benchmark families (shape follows paper Table II).
const std::vector<FamilyProfile>& benchmark_families();

/// Profile lookup by name; throws std::invalid_argument if unknown.
const FamilyProfile& family_profile(const std::string& name);

/// One RTL block: optional FSM / counter / LFSR / CRC sequential units plus
/// `stages` weighted datapath stages over `inputs` (every bus must be
/// `width` bits). The reusable unit both the flat generator and the
/// hierarchical composer (rtlgen/hierarchy.hpp) build designs from.
struct BlockResult {
  /// Every bus the block produced, starting with `inputs`; later entries
  /// come from later stages (pick from the back for "block outputs").
  std::vector<Bus> pool;
  std::vector<Bus> ctrl;  ///< 1-bit control signals (FSM outputs, compares)
};

BlockResult build_block(Synthesizer& syn, const FamilyProfile& profile,
                        Rng& rng, std::vector<Bus> inputs, int width,
                        int stages);

/// Shared tail of every generator: takes the synthesized netlist, applies
/// technology diversification (`logic_rewrite`) + cleanup, validates, and
/// lints. `context` names the caller in lint diagnostics.
GeneratedDesign finalize_design(Synthesizer& syn, const FamilyProfile& profile,
                                Rng& rng, const std::string& design_name,
                                const std::string& context);

/// Generates one design. The result's netlist is validated, cleaned up and
/// cell-diversified; it always contains at least one register.
GeneratedDesign generate_design(const FamilyProfile& profile, Rng& rng,
                                const std::string& design_name);

/// Generates `count` designs named "<family>_d<i>".
std::vector<GeneratedDesign> generate_corpus(const FamilyProfile& profile,
                                             int count, Rng& rng);

}  // namespace nettag
