// Bus-level synthesizer: the Design-Compiler substitute.
//
// The generator (generator.hpp) describes designs as sequences of RTL-level
// operations on buses; the Synthesizer lowers each operation to library
// gates, labels every gate with the RTL block it came from (ground truth for
// Task 1), emits a pseudo-Verilog RTL statement (input to the RTL encoder for
// cross-stage alignment), and tracks per-bus statement provenance so each
// register cone can be paired with exactly the RTL text that drives it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace nettag {

/// A bundle of single-bit nets (bit 0 = LSB) plus RTL provenance.
struct Bus {
  std::vector<GateId> bits;
  std::string name;          ///< RTL-level signal name ("t7")
  std::vector<int> stmts;    ///< sorted ids of RTL statements feeding this bus
  int width() const { return static_cast<int>(bits.size()); }
};

/// Lowers bus-level operations to gates. One Synthesizer per design.
class Synthesizer {
 public:
  explicit Synthesizer(const std::string& design_name);

  // --- sources -----------------------------------------------------------
  Bus input(const std::string& name, int width);
  Bus constant(std::uint64_t value, int width);

  // --- registers ---------------------------------------------------------
  /// Registers `d`; label is the RTL block ("datapath", "fsm", "counter"...).
  Bus reg_bank(const Bus& d, const std::string& label, bool state_reg);

  /// Creates a register bank whose D input is connected later (feedback
  /// loops: FSM / counter / LFSR). Must be completed with connect_reg.
  Bus reg_feedback(int width, const std::string& label, bool state_reg);
  void connect_reg(const Bus& q, const Bus& d);

  // --- combinational operators (each emits one RTL statement) -------------
  Bus bit_not(const Bus& a);
  Bus bit_and(const Bus& a, const Bus& b);
  Bus bit_or(const Bus& a, const Bus& b);
  Bus bit_xor(const Bus& a, const Bus& b);
  Bus add(const Bus& a, const Bus& b);        ///< ripple-carry, same width out
  Bus sub(const Bus& a, const Bus& b);        ///< two's-complement a-b
  Bus mul(const Bus& a, const Bus& b);        ///< array multiplier, width(a) out
  Bus cmp_eq(const Bus& a, const Bus& b);     ///< width-1 result
  Bus cmp_lt(const Bus& a, const Bus& b);     ///< unsigned a<b, width-1 result
  Bus mux(const Bus& a, const Bus& b, const Bus& sel);  ///< sel?b:a
  Bus shift_left(const Bus& a, int k);        ///< constant shift (wiring only)
  Bus rotate_left(const Bus& a, int k);
  Bus parity(const Bus& a);                   ///< XOR-reduce, width-1
  Bus reduce_and(const Bus& a);
  Bus reduce_or(const Bus& a);
  Bus decode(const Bus& a);                   ///< one-hot decoder, 2^w outputs
  Bus priority_encode(const Bus& a);          ///< index of highest set bit
  Bus lfsr_next(const Bus& state);            ///< Fibonacci LFSR next-state
  Bus crc_step(const Bus& state, const Bus& data);  ///< CRC shift-xor network

  /// Marks every bit of the bus as a primary output.
  void mark_outputs(const Bus& b);

  // --- low-level access for composite blocks (FSM, ALU) --------------------
  /// Forces the given RTL-block label onto all gates created until
  /// pop_label(), overriding the per-operator defaults. Nesting unsupported.
  void push_label(const std::string& label);
  void pop_label();

  /// Raw single gate with the current label (for hand-built control logic).
  GateId cell(CellType type, const std::vector<GateId>& fanins);

  /// Wraps raw bits into a Bus with an RTL statement (provenance from deps).
  Bus wrap(std::vector<GateId> bits, const std::vector<const Bus*>& deps,
           const std::string& op_text);

  // --- results -----------------------------------------------------------
  /// Finishes the design: runs a final wiring check and returns the netlist.
  Netlist take_netlist();

  /// Full-design RTL text (all statements).
  std::string rtl_text() const;

  /// RTL text of the statements driving each register (register gate name ->
  /// cone RTL). Filled as registers are created/connected.
  const std::unordered_map<std::string, std::string>& reg_rtl() const {
    return reg_rtl_;
  }

  const Netlist& netlist() const { return nl_; }

 private:
  GateId g(CellType type, const std::vector<GateId>& fanins);
  GateId zero();
  GateId one();
  /// Full-adder bit: returns {sum, carry} built from XOR2 + MAJ3.
  std::pair<GateId, GateId> full_adder(GateId a, GateId b, GateId cin);
  Bus fresh_bus(std::vector<GateId> bits, const std::vector<const Bus*>& deps,
                const std::string& op_text);
  int new_stmt(const std::string& text);
  std::string cone_text(const std::vector<int>& stmts) const;

  Netlist nl_;
  std::string label_ = "datapath";
  std::string label_override_;
  int gate_counter_ = 0;
  int bus_counter_ = 0;
  GateId const0_ = kNoGate;
  GateId const1_ = kNoGate;
  GateId feedback_placeholder_ = kNoGate;
  std::vector<std::string> statements_;
  std::unordered_map<std::string, std::string> reg_rtl_;
  /// Feedback register banks waiting for connect_reg (q bit -> bank index).
  struct PendingBank {
    std::vector<GateId> qs;
    std::string stmt_name;
  };
  std::vector<PendingBank> pending_;
  std::unordered_map<std::string, std::size_t> pending_by_name_;
};

}  // namespace nettag
