#include "rtlgen/hierarchy.hpp"

#include <utility>
#include <vector>

namespace nettag {

GeneratedDesign generate_hierarchical_design(const FamilyProfile& profile,
                                             const HierarchyOptions& options,
                                             Rng& rng,
                                             const std::string& design_name) {
  Synthesizer syn(design_name);
  const int width = rng.uniform_int(profile.min_width, profile.max_width);

  std::vector<Bus> primary;
  const int n_inputs = rng.uniform_int(2, 3);
  for (int i = 0; i < n_inputs; ++i) {
    primary.push_back(syn.input("in" + std::to_string(i), width));
  }

  // Shared submodules: built once from the primary inputs, their registered
  // outputs feed every pipeline level below (fanout across the hierarchy is
  // what distinguishes these cones from the flat corpus).
  std::vector<Bus> shared;
  for (int s = 0; s < options.shared_blocks; ++s) {
    const int stages = rng.uniform_int(profile.min_stages, profile.max_stages);
    BlockResult blk = build_block(syn, profile, rng, primary, width, stages);
    shared.push_back(syn.reg_bank(blk.pool.back(), "datapath",
                                  /*state_reg=*/false));
  }

  // Pipelined top level: each level's blocks consume buses from the previous
  // level plus the shared submodules, and export their result through a
  // register bank — the inter-level bus that makes the whole design one
  // synchronous pipeline.
  std::vector<Bus> feed = primary;
  feed.insert(feed.end(), shared.begin(), shared.end());
  std::vector<Bus> last_level = feed;
  for (int level = 0; level < options.levels; ++level) {
    const int n_blocks = rng.uniform_int(options.min_blocks_per_level,
                                         options.max_blocks_per_level);
    std::vector<Bus> outs;
    for (int b = 0; b < n_blocks; ++b) {
      std::vector<Bus> ins;
      const int n_ins = rng.uniform_int(2, 3);
      for (int i = 0; i < n_ins; ++i) {
        ins.push_back(feed[rng.index(feed.size())]);
      }
      const int stages =
          rng.uniform_int(profile.min_stages, profile.max_stages);
      BlockResult blk =
          build_block(syn, profile, rng, std::move(ins), width, stages);
      outs.push_back(syn.reg_bank(blk.pool.back(), "datapath",
                                  /*state_reg=*/false));
    }
    last_level = outs;
    feed = std::move(outs);
    feed.insert(feed.end(), shared.begin(), shared.end());
  }

  for (const Bus& o : last_level) syn.mark_outputs(o);

  return finalize_design(syn, profile, rng, design_name, "rtlgen-hier");
}

}  // namespace nettag
