// Netlist optimization and rewriting passes.
//
// Three roles, mirroring the paper's data pipeline:
//  * cleanup(): constant propagation + buffer/double-inverter collapse +
//    dead-gate elimination — the always-on logic optimization a synthesis
//    tool applies.
//  * logic_rewrite(): random local equivalence rewrites (AND <-> NAND+INV,
//    De Morgan, MUX -> AOI22, MAJ decomposition, ...). Used for (a)
//    functionally-equivalent netlist augmentation — the positive samples of
//    graph contrastive pre-training (Objective #2.2) — and (b) the
//    "physical design optimization" that makes Task 4's "w/ opt" labels
//    diverge from netlist-stage estimates.
//  * insert_buffers(): fanout buffering, the layout-stage transform that
//    perturbs timing/area after synthesis.
//
// All passes preserve Boolean function, register set, port names, RTL-block
// labels, and output markers.
#pragma once

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace nettag {

/// Constant propagation, BUF removal, INV-pair collapse, dead logic removal.
/// Ports and registers are always kept. Idempotent up to gate naming.
Netlist cleanup(const Netlist& in);

/// Rewrites each logic gate into an equivalent composite with probability
/// `intensity` (0..1), and sprinkles inverter pairs on random nets. The
/// result computes the same function with a different structure/cell mix.
Netlist logic_rewrite(const Netlist& in, Rng& rng, double intensity);

/// Inserts BUF cells so no net drives more than `max_fanout` sinks.
/// Operates in place on a copy.
Netlist insert_buffers(const Netlist& in, int max_fanout);

}  // namespace nettag
