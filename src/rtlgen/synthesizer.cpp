#include "rtlgen/synthesizer.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>
#include <stdexcept>

namespace nettag {

namespace {

/// Sorted union of statement-id lists.
std::vector<int> merge_stmts(const std::vector<const Bus*>& deps, int extra) {
  std::set<int> all;
  for (const Bus* b : deps) all.insert(b->stmts.begin(), b->stmts.end());
  if (extra >= 0) all.insert(extra);
  return {all.begin(), all.end()};
}

}  // namespace

Synthesizer::Synthesizer(const std::string& design_name) : nl_(design_name) {}

GateId Synthesizer::g(CellType type, const std::vector<GateId>& fanins) {
  const GateId id = nl_.add_gate(type, "g" + std::to_string(gate_counter_++), fanins);
  nl_.gate(id).rtl_block = label_override_.empty() ? label_ : label_override_;
  return id;
}

void Synthesizer::push_label(const std::string& label) { label_override_ = label; }
void Synthesizer::pop_label() { label_override_.clear(); }

GateId Synthesizer::cell(CellType type, const std::vector<GateId>& fanins) {
  return g(type, fanins);
}

Bus Synthesizer::wrap(std::vector<GateId> bits,
                      const std::vector<const Bus*>& deps,
                      const std::string& op_text) {
  return fresh_bus(std::move(bits), deps, op_text);
}

GateId Synthesizer::zero() {
  if (const0_ == kNoGate) {
    const0_ = nl_.add_gate(CellType::kConst0, "__const0", {});
  }
  return const0_;
}

GateId Synthesizer::one() {
  if (const1_ == kNoGate) {
    const1_ = nl_.add_gate(CellType::kConst1, "__const1", {});
  }
  return const1_;
}

int Synthesizer::new_stmt(const std::string& text) {
  statements_.push_back(text);
  return static_cast<int>(statements_.size()) - 1;
}

Bus Synthesizer::fresh_bus(std::vector<GateId> bits,
                           const std::vector<const Bus*>& deps,
                           const std::string& op_text) {
  Bus out;
  out.name = "t" + std::to_string(bus_counter_++);
  out.bits = std::move(bits);
  std::ostringstream text;
  text << "assign " << out.name << " = " << op_text << " ;";
  const int stmt = new_stmt(text.str());
  out.stmts = merge_stmts(deps, stmt);
  return out;
}

std::string Synthesizer::cone_text(const std::vector<int>& stmts) const {
  std::ostringstream out;
  for (int s : stmts) out << statements_[static_cast<std::size_t>(s)] << "\n";
  return out.str();
}

Bus Synthesizer::input(const std::string& name, int width) {
  Bus b;
  b.name = name;
  for (int i = 0; i < width; ++i) {
    b.bits.push_back(nl_.add_port(name + "[" + std::to_string(i) + "]"));
  }
  const int stmt = new_stmt("input " + name + " ;");
  b.stmts = {stmt};
  return b;
}

Bus Synthesizer::constant(std::uint64_t value, int width) {
  Bus b;
  b.name = "c" + std::to_string(bus_counter_++);
  for (int i = 0; i < width; ++i) {
    b.bits.push_back((value >> i) & 1 ? one() : zero());
  }
  b.stmts = {};
  return b;
}

Bus Synthesizer::reg_bank(const Bus& d, const std::string& label, bool state_reg) {
  label_ = label;
  Bus q;
  q.name = "t" + std::to_string(bus_counter_++);
  const int stmt = new_stmt("reg " + q.name + " ; always @ ( posedge clk ) " +
                            q.name + " = " + d.name + " ;");
  q.stmts = merge_stmts({&d}, stmt);
  const std::string cone = cone_text(q.stmts);
  for (int i = 0; i < d.width(); ++i) {
    const GateId r = nl_.add_gate(
        CellType::kDff, "r" + std::to_string(gate_counter_++), {d.bits[static_cast<std::size_t>(i)]});
    Gate& gate = nl_.gate(r);
    gate.rtl_block = label;
    gate.is_state_reg = state_reg;
    q.bits.push_back(r);
    reg_rtl_[gate.name] = cone;
  }
  return q;
}

Bus Synthesizer::reg_feedback(int width, const std::string& label, bool state_reg) {
  if (feedback_placeholder_ == kNoGate) {
    feedback_placeholder_ = nl_.add_gate(CellType::kConst0, "__fb", {});
  }
  Bus q;
  q.name = "t" + std::to_string(bus_counter_++);
  const int stmt = new_stmt("reg " + q.name + " ;");
  q.stmts = {stmt};
  PendingBank bank;
  bank.stmt_name = q.name;
  for (int i = 0; i < width; ++i) {
    const GateId r = nl_.add_gate(CellType::kDff, "r" + std::to_string(gate_counter_++),
                                  {feedback_placeholder_});
    Gate& gate = nl_.gate(r);
    gate.rtl_block = label;
    gate.is_state_reg = state_reg;
    q.bits.push_back(r);
    bank.qs.push_back(r);
  }
  pending_by_name_[q.name] = pending_.size();
  pending_.push_back(std::move(bank));
  return q;
}

void Synthesizer::connect_reg(const Bus& q, const Bus& d) {
  auto it = pending_by_name_.find(q.name);
  if (it == pending_by_name_.end()) {
    throw std::invalid_argument("connect_reg: not a feedback bank: " + q.name);
  }
  const PendingBank& bank = pending_[it->second];
  if (static_cast<int>(bank.qs.size()) != d.width()) {
    throw std::invalid_argument("connect_reg: width mismatch on " + q.name);
  }
  const int stmt = new_stmt("always @ ( posedge clk ) " + q.name + " = " +
                            d.name + " ;");
  const std::string cone = cone_text(merge_stmts({&d, &q}, stmt));
  for (std::size_t i = 0; i < bank.qs.size(); ++i) {
    nl_.replace_fanin(bank.qs[i], feedback_placeholder_, d.bits[i]);
    reg_rtl_[nl_.gate(bank.qs[i]).name] = cone;
  }
  pending_by_name_.erase(it);
}

// --- combinational operators -----------------------------------------------

Bus Synthesizer::bit_not(const Bus& a) {
  label_ = "bitwise";
  std::vector<GateId> bits;
  for (GateId b : a.bits) bits.push_back(g(CellType::kInv, {b}));
  return fresh_bus(std::move(bits), {&a}, "not ( " + a.name + " )");
}

Bus Synthesizer::bit_and(const Bus& a, const Bus& b) {
  assert(a.width() == b.width());
  label_ = "bitwise";
  std::vector<GateId> bits;
  for (int i = 0; i < a.width(); ++i) {
    bits.push_back(g(CellType::kAnd2,
                     {a.bits[static_cast<std::size_t>(i)], b.bits[static_cast<std::size_t>(i)]}));
  }
  return fresh_bus(std::move(bits), {&a, &b}, "and ( " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::bit_or(const Bus& a, const Bus& b) {
  assert(a.width() == b.width());
  label_ = "bitwise";
  std::vector<GateId> bits;
  for (int i = 0; i < a.width(); ++i) {
    bits.push_back(g(CellType::kOr2,
                     {a.bits[static_cast<std::size_t>(i)], b.bits[static_cast<std::size_t>(i)]}));
  }
  return fresh_bus(std::move(bits), {&a, &b}, "or ( " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::bit_xor(const Bus& a, const Bus& b) {
  assert(a.width() == b.width());
  label_ = "bitwise";
  std::vector<GateId> bits;
  for (int i = 0; i < a.width(); ++i) {
    bits.push_back(g(CellType::kXor2,
                     {a.bits[static_cast<std::size_t>(i)], b.bits[static_cast<std::size_t>(i)]}));
  }
  return fresh_bus(std::move(bits), {&a, &b}, "xor ( " + a.name + " , " + b.name + " )");
}

std::pair<GateId, GateId> Synthesizer::full_adder(GateId a, GateId b, GateId cin) {
  const GateId axb = g(CellType::kXor2, {a, b});
  const GateId sum = g(CellType::kXor2, {axb, cin});
  const GateId carry = g(CellType::kMaj3, {a, b, cin});
  return {sum, carry};
}

namespace {
// Shared ripple-carry core used by add/sub/mul (label set by caller).
}  // namespace

Bus Synthesizer::add(const Bus& a, const Bus& b) {
  assert(a.width() == b.width());
  label_ = "add";
  std::vector<GateId> bits;
  // Half adder for bit 0, full adders above.
  GateId carry = kNoGate;
  for (int i = 0; i < a.width(); ++i) {
    const GateId ai = a.bits[static_cast<std::size_t>(i)];
    const GateId bi = b.bits[static_cast<std::size_t>(i)];
    if (i == 0) {
      bits.push_back(g(CellType::kXor2, {ai, bi}));
      carry = g(CellType::kAnd2, {ai, bi});
    } else {
      auto [s, c] = full_adder(ai, bi, carry);
      bits.push_back(s);
      carry = c;
    }
  }
  return fresh_bus(std::move(bits), {&a, &b}, "add ( " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::sub(const Bus& a, const Bus& b) {
  assert(a.width() == b.width());
  label_ = "sub";
  // a - b = a + ~b + 1.
  std::vector<GateId> bits;
  GateId carry = one();
  for (int i = 0; i < a.width(); ++i) {
    const GateId ai = a.bits[static_cast<std::size_t>(i)];
    const GateId nbi = g(CellType::kInv, {b.bits[static_cast<std::size_t>(i)]});
    auto [s, c] = full_adder(ai, nbi, carry);
    bits.push_back(s);
    carry = c;
  }
  return fresh_bus(std::move(bits), {&a, &b}, "sub ( " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::mul(const Bus& a, const Bus& b) {
  label_ = "mul";
  const int w = a.width();
  // Array multiplier truncated to w bits: accumulate shifted partial products.
  std::vector<GateId> acc(static_cast<std::size_t>(w), zero());
  for (int i = 0; i < b.width() && i < w; ++i) {
    // Partial product row i: (a & b_i) << i, truncated to width w.
    std::vector<GateId> row(static_cast<std::size_t>(w), zero());
    for (int j = 0; j + i < w; ++j) {
      row[static_cast<std::size_t>(j + i)] =
          g(CellType::kAnd2, {a.bits[static_cast<std::size_t>(j)],
                              b.bits[static_cast<std::size_t>(i)]});
    }
    if (i == 0) {
      acc = row;
      continue;
    }
    // acc += row (ripple carry; bits below i are unchanged).
    GateId carry = kNoGate;
    for (int j = i; j < w; ++j) {
      if (j == i) {
        const GateId s = g(CellType::kXor2, {acc[static_cast<std::size_t>(j)],
                                             row[static_cast<std::size_t>(j)]});
        carry = g(CellType::kAnd2, {acc[static_cast<std::size_t>(j)],
                                    row[static_cast<std::size_t>(j)]});
        acc[static_cast<std::size_t>(j)] = s;
      } else {
        auto [s, c] = full_adder(acc[static_cast<std::size_t>(j)],
                                 row[static_cast<std::size_t>(j)], carry);
        acc[static_cast<std::size_t>(j)] = s;
        carry = c;
      }
    }
  }
  return fresh_bus(std::move(acc), {&a, &b}, "mul ( " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::cmp_eq(const Bus& a, const Bus& b) {
  assert(a.width() == b.width());
  label_ = "cmp";
  std::vector<GateId> eq_bits;
  for (int i = 0; i < a.width(); ++i) {
    eq_bits.push_back(g(CellType::kXnor2,
                        {a.bits[static_cast<std::size_t>(i)],
                         b.bits[static_cast<std::size_t>(i)]}));
  }
  // AND-reduce with AND2/AND3/AND4 tree.
  while (eq_bits.size() > 1) {
    std::vector<GateId> next;
    std::size_t i = 0;
    while (i < eq_bits.size()) {
      const std::size_t rem = eq_bits.size() - i;
      if (rem >= 4) {
        next.push_back(g(CellType::kAnd4, {eq_bits[i], eq_bits[i + 1],
                                           eq_bits[i + 2], eq_bits[i + 3]}));
        i += 4;
      } else if (rem == 3) {
        next.push_back(g(CellType::kAnd3, {eq_bits[i], eq_bits[i + 1], eq_bits[i + 2]}));
        i += 3;
      } else if (rem == 2) {
        next.push_back(g(CellType::kAnd2, {eq_bits[i], eq_bits[i + 1]}));
        i += 2;
      } else {
        next.push_back(eq_bits[i]);
        i += 1;
      }
    }
    eq_bits = std::move(next);
  }
  return fresh_bus({eq_bits[0]}, {&a, &b}, "eq ( " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::cmp_lt(const Bus& a, const Bus& b) {
  assert(a.width() == b.width());
  label_ = "cmp";
  // LSB-to-MSB borrow recurrence: lt = (!a&b) | ((a xnor b) & lt_prev).
  GateId lt = kNoGate;
  for (int i = 0; i < a.width(); ++i) {
    const GateId ai = a.bits[static_cast<std::size_t>(i)];
    const GateId bi = b.bits[static_cast<std::size_t>(i)];
    const GateId na = g(CellType::kInv, {ai});
    const GateId t = g(CellType::kAnd2, {na, bi});
    if (i == 0) {
      lt = t;
    } else {
      const GateId e = g(CellType::kXnor2, {ai, bi});
      const GateId c = g(CellType::kAnd2, {e, lt});
      lt = g(CellType::kOr2, {t, c});
    }
  }
  return fresh_bus({lt}, {&a, &b}, "lt ( " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::mux(const Bus& a, const Bus& b, const Bus& sel) {
  assert(a.width() == b.width());
  assert(sel.width() == 1);
  label_ = "mux";
  std::vector<GateId> bits;
  for (int i = 0; i < a.width(); ++i) {
    bits.push_back(g(CellType::kMux2,
                     {a.bits[static_cast<std::size_t>(i)],
                      b.bits[static_cast<std::size_t>(i)], sel.bits[0]}));
  }
  return fresh_bus(std::move(bits), {&a, &b, &sel},
                   "mux ( " + sel.name + " , " + a.name + " , " + b.name + " )");
}

Bus Synthesizer::shift_left(const Bus& a, int k) {
  label_ = "shift";
  std::vector<GateId> bits(static_cast<std::size_t>(a.width()));
  for (int i = 0; i < a.width(); ++i) {
    bits[static_cast<std::size_t>(i)] =
        i >= k ? a.bits[static_cast<std::size_t>(i - k)] : zero();
  }
  return fresh_bus(std::move(bits), {&a},
                   "shift ( " + a.name + " , " + std::to_string(k) + " )");
}

Bus Synthesizer::rotate_left(const Bus& a, int k) {
  label_ = "shift";
  const int w = a.width();
  std::vector<GateId> bits(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    bits[static_cast<std::size_t>(i)] =
        a.bits[static_cast<std::size_t>(((i - k) % w + w) % w)];
  }
  return fresh_bus(std::move(bits), {&a},
                   "rotate ( " + a.name + " , " + std::to_string(k) + " )");
}

Bus Synthesizer::parity(const Bus& a) {
  label_ = "parity";
  std::vector<GateId> acc = a.bits;
  while (acc.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < acc.size(); i += 2) {
      next.push_back(g(CellType::kXor2, {acc[i], acc[i + 1]}));
    }
    if (acc.size() % 2) next.push_back(acc.back());
    acc = std::move(next);
  }
  return fresh_bus({acc[0]}, {&a}, "parity ( " + a.name + " )");
}

Bus Synthesizer::reduce_and(const Bus& a) {
  label_ = "reduce";
  std::vector<GateId> acc = a.bits;
  while (acc.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < acc.size(); i += 2) {
      next.push_back(g(CellType::kAnd2, {acc[i], acc[i + 1]}));
    }
    if (acc.size() % 2) next.push_back(acc.back());
    acc = std::move(next);
  }
  return fresh_bus({acc[0]}, {&a}, "reduce ( and , " + a.name + " )");
}

Bus Synthesizer::reduce_or(const Bus& a) {
  label_ = "reduce";
  std::vector<GateId> acc = a.bits;
  while (acc.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < acc.size(); i += 2) {
      next.push_back(g(CellType::kOr2, {acc[i], acc[i + 1]}));
    }
    if (acc.size() % 2) next.push_back(acc.back());
    acc = std::move(next);
  }
  return fresh_bus({acc[0]}, {&a}, "reduce ( or , " + a.name + " )");
}

Bus Synthesizer::decode(const Bus& a) {
  label_ = "decode";
  const int w = std::min(a.width(), 3);
  std::vector<GateId> inv;
  for (int i = 0; i < w; ++i) {
    inv.push_back(g(CellType::kInv, {a.bits[static_cast<std::size_t>(i)]}));
  }
  std::vector<GateId> outs;
  for (int code = 0; code < (1 << w); ++code) {
    std::vector<GateId> lits;
    for (int i = 0; i < w; ++i) {
      lits.push_back((code >> i) & 1 ? a.bits[static_cast<std::size_t>(i)]
                                     : inv[static_cast<std::size_t>(i)]);
    }
    if (w == 1) {
      outs.push_back(lits[0]);
    } else if (w == 2) {
      outs.push_back(g(CellType::kAnd2, lits));
    } else {
      outs.push_back(g(CellType::kAnd3, lits));
    }
  }
  return fresh_bus(std::move(outs), {&a}, "decode ( " + a.name + " )");
}

Bus Synthesizer::priority_encode(const Bus& a) {
  label_ = "encode";
  const int w = a.width();
  // hi_i = a_i & !a_{i+1} & ... & !a_{w-1}
  std::vector<GateId> hi(static_cast<std::size_t>(w));
  GateId none_above = kNoGate;  // !a_{i+1..w-1}
  for (int i = w - 1; i >= 0; --i) {
    const GateId ai = a.bits[static_cast<std::size_t>(i)];
    if (i == w - 1) {
      hi[static_cast<std::size_t>(i)] = ai;
      none_above = g(CellType::kInv, {ai});
    } else {
      hi[static_cast<std::size_t>(i)] = g(CellType::kAnd2, {ai, none_above});
      if (i > 0) {
        const GateId nai = g(CellType::kInv, {ai});
        none_above = g(CellType::kAnd2, {nai, none_above});
      }
    }
  }
  // Output bit k = OR of hi_i for those i with bit k set.
  int out_w = 1;
  while ((1 << out_w) < w) ++out_w;
  std::vector<GateId> outs;
  for (int k = 0; k < out_w; ++k) {
    std::vector<GateId> terms;
    for (int i = 0; i < w; ++i) {
      if ((i >> k) & 1) terms.push_back(hi[static_cast<std::size_t>(i)]);
    }
    if (terms.empty()) {
      outs.push_back(zero());
    } else {
      GateId acc = terms[0];
      for (std::size_t t = 1; t < terms.size(); ++t) {
        acc = g(CellType::kOr2, {acc, terms[t]});
      }
      outs.push_back(acc);
    }
  }
  return fresh_bus(std::move(outs), {&a}, "encode ( " + a.name + " )");
}

Bus Synthesizer::lfsr_next(const Bus& state) {
  label_ = "lfsr";
  const int w = state.width();
  // Fibonacci LFSR: feedback = msb ^ state[tap]; next = shift-left | feedback.
  const int tap = w > 2 ? w / 2 : 0;
  const GateId fb = g(CellType::kXor2, {state.bits[static_cast<std::size_t>(w - 1)],
                                        state.bits[static_cast<std::size_t>(tap)]});
  std::vector<GateId> bits(static_cast<std::size_t>(w));
  bits[0] = fb;
  for (int i = 1; i < w; ++i) {
    bits[static_cast<std::size_t>(i)] = state.bits[static_cast<std::size_t>(i - 1)];
  }
  return fresh_bus(std::move(bits), {&state}, "lfsr ( " + state.name + " )");
}

Bus Synthesizer::crc_step(const Bus& state, const Bus& data) {
  label_ = "crc";
  const int w = state.width();
  const GateId fb = g(CellType::kXor2,
                      {state.bits[static_cast<std::size_t>(w - 1)], data.bits[0]});
  std::vector<GateId> bits(static_cast<std::size_t>(w));
  bits[0] = fb;
  for (int i = 1; i < w; ++i) {
    const GateId prev = state.bits[static_cast<std::size_t>(i - 1)];
    // Taps at odd positions xor in the feedback (CRC polynomial flavour).
    bits[static_cast<std::size_t>(i)] =
        (i % 2) ? g(CellType::kXor2, {prev, fb}) : prev;
  }
  return fresh_bus(std::move(bits), {&state, &data},
                   "crc ( " + state.name + " , " + data.name + " )");
}

void Synthesizer::mark_outputs(const Bus& b) {
  for (GateId bit : b.bits) nl_.mark_output(bit);
  new_stmt("output " + b.name + " ;");
}

Netlist Synthesizer::take_netlist() {
  if (!pending_by_name_.empty()) {
    throw std::runtime_error("take_netlist: unconnected feedback register bank");
  }
  nl_.validate();
  return std::move(nl_);
}

std::string Synthesizer::rtl_text() const {
  std::ostringstream out;
  out << "module " << nl_.name() << " ;\n";
  for (const auto& s : statements_) out << s << "\n";
  out << "endmodule\n";
  return out.str();
}

}  // namespace nettag
