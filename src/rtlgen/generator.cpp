#include "rtlgen/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/lint.hpp"
#include "rtlgen/optimize.hpp"
#include "rtlgen/synthesizer.hpp"

namespace nettag {

const std::vector<FamilyProfile>& benchmark_families() {
  static const std::vector<FamilyProfile> families = [] {
    std::vector<FamilyProfile> f(4);
    // Control-dominated, mid-size (ITC'99 are FSM-heavy controllers).
    f[0].name = "itc99";
    f[0].min_stages = 4;
    f[0].max_stages = 7;
    f[0].min_width = 3;
    f[0].max_width = 4;
    f[0].fsm_prob = 0.95;
    f[0].counter_prob = 0.6;
    f[0].lfsr_prob = 0.15;
    f[0].crc_prob = 0.15;
    f[0].mul_weight = 0.3;
    f[0].register_prob = 0.6;
    f[0].rewrite_intensity = 0.25;
    // Small IP cores.
    f[1].name = "opencores";
    f[1].min_stages = 2;
    f[1].max_stages = 5;
    f[1].min_width = 2;
    f[1].max_width = 4;
    f[1].fsm_prob = 0.45;
    f[1].counter_prob = 0.45;
    f[1].lfsr_prob = 0.3;
    f[1].crc_prob = 0.35;
    f[1].mul_weight = 0.5;
    f[1].register_prob = 0.5;
    f[1].rewrite_intensity = 0.2;
    // Large SoC generators: deep, wide, multiplier-rich.
    f[2].name = "chipyard";
    f[2].min_stages = 9;
    f[2].max_stages = 14;
    f[2].min_width = 4;
    f[2].max_width = 6;
    f[2].fsm_prob = 0.7;
    f[2].counter_prob = 0.6;
    f[2].lfsr_prob = 0.2;
    f[2].crc_prob = 0.2;
    f[2].mul_weight = 1.6;
    f[2].register_prob = 0.65;
    f[2].rewrite_intensity = 0.3;
    // RISC-V CPU: ALU/shift flavoured.
    f[3].name = "vexriscv";
    f[3].min_stages = 6;
    f[3].max_stages = 10;
    f[3].min_width = 3;
    f[3].max_width = 5;
    f[3].fsm_prob = 0.8;
    f[3].counter_prob = 0.5;
    f[3].lfsr_prob = 0.1;
    f[3].crc_prob = 0.1;
    f[3].mul_weight = 0.9;
    f[3].register_prob = 0.6;
    f[3].rewrite_intensity = 0.25;
    return f;
  }();
  return families;
}

const FamilyProfile& family_profile(const std::string& name) {
  for (const FamilyProfile& f : benchmark_families()) {
    if (f.name == name) return f;
  }
  throw std::invalid_argument("unknown benchmark family: " + name);
}

namespace {

/// Builds a small FSM controller: binary-encoded state register with
/// mux/inc-based next-state logic; returns 1-bit control signals derived
/// from the state, which downstream stages use as mux selects.
std::vector<Bus> build_fsm(Synthesizer& syn, Rng& rng, const Bus& stimulus) {
  const int sb = rng.uniform_int(2, 3);
  Bus state = syn.reg_feedback(sb, "fsm", /*state_reg=*/true);

  syn.push_label("fsm");
  // Next-state candidates: increment and a stimulus-dependent jump.
  std::vector<GateId> inc_bits;
  {
    // state + 1 (hand-rolled so the gates are labeled "fsm").
    GateId carry = kNoGate;
    for (int i = 0; i < sb; ++i) {
      const GateId s = state.bits[static_cast<std::size_t>(i)];
      if (i == 0) {
        inc_bits.push_back(syn.cell(CellType::kInv, {s}));
        carry = s;
      } else {
        inc_bits.push_back(syn.cell(CellType::kXor2, {s, carry}));
        carry = syn.cell(CellType::kAnd2, {s, carry});
      }
    }
  }
  std::vector<GateId> jump_bits;
  for (int i = 0; i < sb; ++i) {
    jump_bits.push_back(syn.cell(
        CellType::kXor2,
        {state.bits[static_cast<std::size_t>(i)],
         stimulus.bits[static_cast<std::size_t>(i % stimulus.width())]}));
  }
  // Branch condition: state == terminal value (AND of literals).
  std::vector<GateId> lits;
  for (int i = 0; i < sb; ++i) {
    const GateId s = state.bits[static_cast<std::size_t>(i)];
    lits.push_back(rng.chance(0.5) ? s : syn.cell(CellType::kInv, {s}));
  }
  GateId cond = lits[0];
  for (std::size_t i = 1; i < lits.size(); ++i) {
    cond = syn.cell(CellType::kAnd2, {cond, lits[i]});
  }
  std::vector<GateId> next_bits;
  for (int i = 0; i < sb; ++i) {
    next_bits.push_back(syn.cell(CellType::kMux2,
                                 {inc_bits[static_cast<std::size_t>(i)],
                                  jump_bits[static_cast<std::size_t>(i)], cond}));
  }
  Bus next = syn.wrap(std::move(next_bits), {&state, &stimulus},
                      "fsm ( " + state.name + " , " + stimulus.name + " )");
  syn.connect_reg(state, next);

  // Control outputs: 2-3 distinct functions of the state bits.
  std::vector<Bus> ctrl;
  const int n_ctrl = rng.uniform_int(2, 3);
  for (int c = 0; c < n_ctrl; ++c) {
    const GateId a = state.bits[rng.index(state.bits.size())];
    const GateId b = state.bits[rng.index(state.bits.size())];
    GateId sig;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        sig = syn.cell(CellType::kAnd2, {a, syn.cell(CellType::kInv, {b})});
        break;
      case 1:
        sig = syn.cell(CellType::kOr2, {a, b});
        break;
      default:
        sig = syn.cell(CellType::kXor2, {a, b});
        break;
    }
    ctrl.push_back(syn.wrap({sig}, {&state}, "fsm ( " + state.name + " )"));
  }
  syn.pop_label();
  return ctrl;
}

}  // namespace

BlockResult build_block(Synthesizer& syn, const FamilyProfile& profile,
                        Rng& rng, std::vector<Bus> inputs, int width,
                        int stages) {
  std::vector<Bus> pool = std::move(inputs);
  std::vector<Bus> ctrl;  // 1-bit control signals

  // Optional FSM controller.
  if (rng.chance(profile.fsm_prob)) {
    ctrl = build_fsm(syn, rng, pool[0]);
  }

  // Optional counter (data-path register with feedback: the classic
  // ReIGNN confusable).
  if (rng.chance(profile.counter_prob)) {
    syn.push_label("counter");
    Bus c = syn.reg_feedback(width, "counter", /*state_reg=*/false);
    Bus next = syn.add(c, syn.constant(1, width));
    if (!ctrl.empty()) {
      next = syn.mux(c, next, ctrl[rng.index(ctrl.size())]);  // gated count
    }
    syn.connect_reg(c, next);
    syn.pop_label();
    pool.push_back(c);
  }

  // Optional LFSR.
  if (rng.chance(profile.lfsr_prob)) {
    Bus s = syn.reg_feedback(width, "lfsr", /*state_reg=*/false);
    syn.connect_reg(s, syn.lfsr_next(s));
    pool.push_back(s);
  }

  // Optional CRC unit.
  if (rng.chance(profile.crc_prob)) {
    Bus s = syn.reg_feedback(width, "crc", /*state_reg=*/false);
    syn.connect_reg(s, syn.crc_step(s, pool[rng.index(pool.size())]));
    pool.push_back(s);
  }

  auto pick = [&]() -> const Bus& { return pool[rng.index(pool.size())]; };
  auto pick_ctrl = [&]() -> Bus {
    if (!ctrl.empty() && rng.chance(0.7)) return ctrl[rng.index(ctrl.size())];
    // Derive a fresh control bit from a comparison.
    Bus c = syn.cmp_lt(pick(), pick());
    ctrl.push_back(c);
    return c;
  };

  // Datapath stages.
  for (int s = 0; s < stages; ++s) {
    // Weighted stage-kind selection.
    struct Choice {
      double w;
      int kind;
    };
    const std::vector<Choice> choices = {
        {1.2, 0},                  // add
        {0.7, 1},                  // sub
        {profile.mul_weight, 2},   // mul
        {0.8, 3},                  // cmp -> ctrl
        {0.9, 4},                  // bitwise
        {0.7, 5},                  // mux
        {0.6, 6},                  // shift/rotate
        {0.5, 7},                  // parity/reduce -> ctrl
        {0.4, 8},                  // decode
        {0.4, 9},                  // priority encode
        {0.5, 10},                 // alu
    };
    double total = 0;
    for (const auto& c : choices) total += c.w;
    double roll = rng.uniform(0, total);
    int kind = 0;
    for (const auto& c : choices) {
      if (roll < c.w) {
        kind = c.kind;
        break;
      }
      roll -= c.w;
    }

    Bus result;
    switch (kind) {
      case 0:
        result = syn.add(pick(), pick());
        break;
      case 1:
        result = syn.sub(pick(), pick());
        break;
      case 2:
        result = syn.mul(pick(), pick());
        break;
      case 3:
        ctrl.push_back(rng.chance(0.5) ? syn.cmp_eq(pick(), pick())
                                       : syn.cmp_lt(pick(), pick()));
        continue;
      case 4:
        switch (rng.uniform_int(0, 2)) {
          case 0:
            result = syn.bit_and(pick(), pick());
            break;
          case 1:
            result = syn.bit_or(pick(), pick());
            break;
          default:
            result = syn.bit_xor(pick(), pick());
            break;
        }
        break;
      case 5:
        result = syn.mux(pick(), pick(), pick_ctrl());
        break;
      case 6:
        result = rng.chance(0.5)
                     ? syn.shift_left(pick(), rng.uniform_int(1, width - 1))
                     : syn.rotate_left(pick(), rng.uniform_int(1, width - 1));
        break;
      case 7:
        switch (rng.uniform_int(0, 2)) {
          case 0:
            ctrl.push_back(syn.parity(pick()));
            break;
          case 1:
            ctrl.push_back(syn.reduce_and(pick()));
            break;
          default:
            ctrl.push_back(syn.reduce_or(pick()));
            break;
        }
        continue;
      case 8: {
        // Decode a narrow slice; keep only `width` outputs to stay in-pool.
        Bus d = syn.decode(pick());
        d.bits.resize(static_cast<std::size_t>(std::min(d.width(), width)));
        while (d.width() < width) d.bits.push_back(d.bits[0]);
        result = d;
        break;
      }
      case 9: {
        Bus e = syn.priority_encode(pick());
        while (e.width() < width) e.bits.push_back(e.bits[0]);
        e.bits.resize(static_cast<std::size_t>(width));
        result = e;
        break;
      }
      default: {
        // Mini-ALU: mux(add, xor) under a control bit.
        syn.push_label("alu");
        const Bus& a = pick();
        const Bus& b = pick();
        Bus sum = syn.add(a, b);
        Bus xr = syn.bit_xor(a, b);
        result = syn.mux(sum, xr, pick_ctrl());
        syn.pop_label();
        break;
      }
    }

    if (rng.chance(profile.register_prob)) {
      result = syn.reg_bank(result, "datapath", /*state_reg=*/false);
    }
    pool.push_back(result);
  }

  BlockResult out;
  out.pool = std::move(pool);
  out.ctrl = std::move(ctrl);
  return out;
}

GeneratedDesign finalize_design(Synthesizer& syn, const FamilyProfile& profile,
                                Rng& rng, const std::string& design_name,
                                const std::string& context) {
  GeneratedDesign out;
  out.rtl_text = syn.rtl_text();
  out.reg_rtl = syn.reg_rtl();
  Netlist raw = syn.take_netlist();
  raw.set_source(profile.name);
  // Technology diversification + synthesis cleanup.
  Netlist diversified = logic_rewrite(raw, rng, profile.rewrite_intensity);
  out.netlist = cleanup(diversified);
  out.netlist.set_name(design_name);
  out.netlist.validate();
  // Post-synthesis lint seam: refuse to emit a structurally broken design
  // (rule ids and severities in docs/ARCHITECTURE.md §6).
  enforce_clean(lint_netlist(out.netlist), context + " " + design_name);
  return out;
}

GeneratedDesign generate_design(const FamilyProfile& profile, Rng& rng,
                                const std::string& design_name) {
  Synthesizer syn(design_name);
  const int width = rng.uniform_int(profile.min_width, profile.max_width);
  const int stages = rng.uniform_int(profile.min_stages, profile.max_stages);

  // Primary inputs.
  std::vector<Bus> inputs;
  const int n_inputs = rng.uniform_int(2, 3);
  for (int i = 0; i < n_inputs; ++i) {
    inputs.push_back(syn.input("in" + std::to_string(i), width));
  }

  BlockResult blk =
      build_block(syn, profile, rng, std::move(inputs), width, stages);
  std::vector<Bus>& pool = blk.pool;

  // Ensure the design is sequential: register the last stage if none exists.
  if (syn.netlist().registers().empty()) {
    pool.push_back(syn.reg_bank(pool.back(), "datapath", false));
  }

  // Mark outputs: a couple of pool buses (prefer late stages).
  const int n_out = rng.uniform_int(1, 2);
  for (int i = 0; i < n_out; ++i) {
    syn.mark_outputs(pool[pool.size() - 1 - static_cast<std::size_t>(i) %
                                                pool.size()]);
  }

  return finalize_design(syn, profile, rng, design_name, "rtlgen");
}

std::vector<GeneratedDesign> generate_corpus(const FamilyProfile& profile,
                                             int count, Rng& rng) {
  std::vector<GeneratedDesign> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(
        generate_design(profile, rng, profile.name + "_d" + std::to_string(i)));
  }
  return out;
}

}  // namespace nettag
