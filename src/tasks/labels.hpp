// Task 1 label registry: the RTL-block function classes a gate can belong to
// (the GNN-RE-style reverse-engineering classes: adder, multiplier,
// comparator, multiplexer, control/FSM, ...).
#pragma once

#include <string>
#include <vector>

namespace nettag {

/// Fixed, ordered label set for combinational gate function identification.
const std::vector<std::string>& task1_labels();

/// Index of a label in task1_labels(); -1 if unknown/empty.
int task1_label_id(const std::string& label);

/// Evaluation classes for Task 1 at GNN-RE granularity (adder, subtractor,
/// multiplier, comparator, interconnect/mux, logic, control, sequential-
/// support): the fine RTL-block labels are grouped into these.
const std::vector<std::string>& task1_classes();

/// Maps an RTL-block label to its evaluation class id; -1 if unknown.
int task1_class_id(const std::string& block_label);

}  // namespace nettag
