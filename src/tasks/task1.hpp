// Task 1: combinational gate function identification (paper §III-B,
// Table III). Given a flattened netlist, recover which RTL block type each
// logic gate implements — the GNN-RE reverse-engineering problem.
//
// NetTAG: frozen per-gate embeddings + MLP head, fine-tuned on training
// designs, evaluated per held-out design.
// Baseline (GNN-RE): a supervised GCN node classifier on structural one-hot
// features, trained end-to-end on the same split.
#pragma once

#include "core/dataset.hpp"
#include "core/nettag.hpp"
#include "tasks/finetune.hpp"
#include "util/metrics.hpp"

namespace nettag {

struct Task1Options {
  int num_test_designs = 9;     ///< Table III lists 9 designs
  FinetuneOptions head;         ///< NetTAG fine-tuning head
  int gnn_steps = 240;          ///< baseline supervised training steps
  float gnn_lr = 3e-3f;
};

struct Task1Row {
  std::string design;
  ClassificationReport gnnre;
  ClassificationReport nettag;
};

struct Task1Result {
  std::vector<Task1Row> rows;
  ClassificationReport gnnre_avg;
  ClassificationReport nettag_avg;
};

/// Runs the full Task 1 protocol on a corpus. Designs are shuffled; the
/// first `num_test_designs` become the held-out test set.
Task1Result run_task1(NetTag& model, const Corpus& corpus,
                      const Task1Options& options, Rng& rng);

/// Per-design labeled logic-gate extraction shared with the Fig. 5 bench:
/// gate row indices (into the netlist) and their Task-1 class ids.
void task1_gate_labels(const Netlist& nl, std::vector<int>* gate_rows,
                       std::vector<int>* labels);

/// Averages a set of classification reports element-wise (the "Avg." row).
ClassificationReport average_reports(const std::vector<ClassificationReport>& reports);

}  // namespace nettag
