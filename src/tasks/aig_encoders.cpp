#include "tasks/aig_encoders.hpp"

#include <numeric>

#include "model/gcn.hpp"
#include "model/graph.hpp"
#include "netlist/aig.hpp"
#include "rtlgen/optimize.hpp"
#include "tasks/labels.hpp"
#include "tasks/task1.hpp"

namespace nettag {

namespace {

struct AigDesign {
  Netlist aig;
  Mat feats;
  Mat adj;
  std::vector<int> gate_rows;
  std::vector<int> labels;
};

/// Frozen-encoder evaluation: fit a head on train-design node embeddings,
/// report the average per-design classification on test designs.
ClassificationReport eval_frozen(const std::vector<AigDesign>& designs,
                                 const std::vector<Mat>& node_emb,
                                 const std::vector<int>& train,
                                 const std::vector<int>& test,
                                 const FinetuneOptions& head_opts, Rng& rng) {
  const int num_classes = static_cast<int>(task1_classes().size());
  std::vector<Mat> x_parts;
  std::vector<int> y;
  for (int d : train) {
    const AigDesign& a = designs[static_cast<std::size_t>(d)];
    if (a.gate_rows.empty()) continue;
    x_parts.push_back(take_rows(node_emb[static_cast<std::size_t>(d)], a.gate_rows));
    y.insert(y.end(), a.labels.begin(), a.labels.end());
  }
  ClassifierHead head(node_emb[0].cols, num_classes, head_opts, rng);
  if (!x_parts.empty()) head.fit(vstack(x_parts), y, rng);
  std::vector<ClassificationReport> reports;
  for (int d : test) {
    const AigDesign& a = designs[static_cast<std::size_t>(d)];
    if (a.gate_rows.empty()) continue;
    const Mat x = take_rows(node_emb[static_cast<std::size_t>(d)], a.gate_rows);
    reports.push_back(classification_report(a.labels, head.predict(x)));
  }
  return average_reports(reports);
}

}  // namespace

AigCompareResult run_aig_comparison(NetTag& model, const Corpus& corpus,
                                    const AigCompareOptions& options, Rng& rng) {
  // Build AIG versions of every design, with Task 1 labels carried over.
  std::vector<AigDesign> designs;
  for (const DesignSample& d : corpus.designs) {
    AigDesign a;
    a.aig = to_aig(d.gen.netlist).aig;
    a.feats = netlist_base_features(a.aig);
    a.adj = normalized_adjacency(static_cast<int>(a.aig.size()),
                                 netlist_edges(a.aig));
    task1_gate_labels(a.aig, &a.gate_rows, &a.labels);
    designs.push_back(std::move(a));
  }
  std::vector<int> order(designs.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const int n_test = std::min<int>(options.num_test_designs,
                                   static_cast<int>(order.size()) / 2);
  std::vector<int> test(order.begin(), order.begin() + n_test);
  std::vector<int> train(order.begin() + n_test, order.end());

  AigCompareResult result;

  // ---- FGNN-like: graph-contrastive pre-trained GCN ------------------------
  {
    Rng enc_rng = rng.fork();
    GcnConfig gc;
    gc.in_dim = netlist_base_feature_dim();
    gc.out_dim = model.embedding_dim();
    Gcn enc(gc, enc_rng);
    Adam opt(enc.params(), options.lr);
    for (int step = 0; step < options.pretrain_steps; ++step) {
      std::vector<Tensor> anchors, positives;
      for (int b = 0; b < 4; ++b) {
        const AigDesign& a = designs[enc_rng.index(designs.size())];
        Netlist aug = cleanup(logic_rewrite(a.aig, enc_rng, 0.3));
        Mat aug_feats = netlist_base_features(aug);
        Mat aug_adj = normalized_adjacency(static_cast<int>(aug.size()),
                                           netlist_edges(aug));
        anchors.push_back(enc.forward_graph(make_tensor(a.feats, false),
                                            make_tensor(a.adj, false)));
        positives.push_back(enc.forward_graph(make_tensor(aug_feats, false),
                                              make_tensor(aug_adj, false)));
      }
      Tensor loss = info_nce(concat_rows(anchors), concat_rows(positives), 0.1f);
      backward(loss);
      opt.step();
    }
    std::vector<Mat> emb;
    for (const AigDesign& a : designs) {
      emb.push_back(enc.forward_nodes(make_tensor(a.feats, false),
                                      make_tensor(a.adj, false))
                        ->value);
    }
    Rng head_rng = rng.fork();
    result.fgnn = eval_frozen(designs, emb, train, test, options.head, head_rng);
  }

  // ---- DeepGate-like: simulation-probability pre-trained GCN ----------------
  {
    Rng enc_rng = rng.fork();
    GcnConfig gc;
    gc.in_dim = netlist_base_feature_dim();
    gc.out_dim = model.embedding_dim();
    Gcn enc(gc, enc_rng);
    Linear prob_head(model.embedding_dim(), 1, enc_rng);
    std::vector<Tensor> params = enc.params();
    for (const Tensor& p : prob_head.params()) params.push_back(p);
    Adam opt(params, options.lr);
    // Per-design simulated signal probabilities (DeepGate supervision).
    std::vector<Mat> prob_targets;
    for (const AigDesign& a : designs) {
      std::vector<int> ones(a.aig.size(), 0);
      for (int pat = 0; pat < options.sim_patterns; ++pat) {
        std::vector<bool> src(a.aig.size(), false);
        for (const Gate& g : a.aig.gates()) {
          if (g.type == CellType::kPort || g.type == CellType::kDff) {
            src[static_cast<std::size_t>(g.id)] = enc_rng.chance(0.5);
          }
        }
        const auto vals = simulate(a.aig, src);
        for (std::size_t i = 0; i < vals.size(); ++i) ones[i] += vals[i];
      }
      Mat t(static_cast<int>(a.aig.size()), 1);
      for (std::size_t i = 0; i < ones.size(); ++i) {
        t.at(static_cast<int>(i), 0) =
            static_cast<float>(ones[i]) / static_cast<float>(options.sim_patterns);
      }
      prob_targets.push_back(std::move(t));
    }
    for (int step = 0; step < options.pretrain_steps; ++step) {
      const std::size_t d = enc_rng.index(designs.size());
      Tensor nodes = enc.forward_nodes(make_tensor(designs[d].feats, false),
                                       make_tensor(designs[d].adj, false));
      Tensor pred = sigmoid(prob_head.forward(nodes));
      Tensor loss = mse_loss(pred, prob_targets[d]);
      backward(loss);
      opt.step();
    }
    std::vector<Mat> emb;
    for (const AigDesign& a : designs) {
      emb.push_back(enc.forward_nodes(make_tensor(a.feats, false),
                                      make_tensor(a.adj, false))
                        ->value);
    }
    Rng head_rng = rng.fork();
    result.deepgate =
        eval_frozen(designs, emb, train, test, options.head, head_rng);
  }

  // ---- ExprLLM-only: frozen text embeddings of per-gate expressions --------
  {
    std::vector<Mat> emb;
    for (const AigDesign& a : designs) {
      const TagGraph tag = build_tag(a.aig, options.aig_k_hop);
      emb.push_back(model.input_features(tag, netlist_base_features(a.aig)));
    }
    Rng head_rng = rng.fork();
    result.expr_llm_only =
        eval_frozen(designs, emb, train, test, options.head, head_rng);
  }

  // ---- NetTAG on the AIG dataset --------------------------------------------
  {
    std::vector<Mat> emb;
    for (const AigDesign& a : designs) {
      const NetTag::ConeEmbedding e = model.embed(a.aig, options.aig_k_hop);
      Mat joined(e.nodes.rows, e.nodes.cols + e.inputs.cols);
      for (int r = 0; r < e.nodes.rows; ++r) {
        for (int j = 0; j < e.nodes.cols; ++j) joined.at(r, j) = e.nodes.at(r, j);
        for (int j = 0; j < e.inputs.cols; ++j) {
          joined.at(r, e.nodes.cols + j) = e.inputs.at(r, j);
        }
      }
      emb.push_back(std::move(joined));
    }
    Rng head_rng = rng.fork();
    result.nettag = eval_frozen(designs, emb, train, test, options.head, head_rng);
  }
  return result;
}

}  // namespace nettag
