#include "tasks/task3.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/gcn.hpp"
#include "model/graph.hpp"
#include "util/parallel.hpp"
#include "tasks/gbdt.hpp"

namespace nettag {

namespace {

RegressionReport average_regression(const std::vector<RegressionReport>& rs) {
  RegressionReport avg;
  if (rs.empty()) return avg;
  for (const auto& r : rs) {
    avg.pearson_r += r.pearson_r;
    avg.mape += r.mape;
    avg.mae += r.mae;
    avg.rmse += r.rmse;
    avg.num_samples += r.num_samples;
  }
  const double k = static_cast<double>(rs.size());
  avg.pearson_r /= k;
  avg.mape /= k;
  avg.mae /= k;
  avg.rmse /= k;
  return avg;
}

/// Structural + physical + netlist-stage-timing node features for the
/// timing GNN baseline (the baseline of [2] consumes netlist-stage timing).
Mat timing_features(const Netlist& nl, const TimingReport& est) {
  const Mat base = netlist_base_features(nl);
  const Mat phys = netlist_phys_features(nl);
  const double crit = std::max(est.critical_path, 1e-6);
  Mat out(base.rows, base.cols + phys.cols + 3);
  for (int i = 0; i < base.rows; ++i) {
    for (int j = 0; j < base.cols; ++j) out.at(i, j) = base.at(i, j);
    for (int j = 0; j < phys.cols; ++j) out.at(i, base.cols + j) = phys.at(i, j);
    const double arr = est.arrival[static_cast<std::size_t>(i)];
    out.at(i, base.cols + phys.cols) = static_cast<float>(arr / crit);
    out.at(i, base.cols + phys.cols + 1) = static_cast<float>(arr / 10.0);
    out.at(i, base.cols + phys.cols + 2) =
        static_cast<float>(est.gate_delay[static_cast<std::size_t>(i)]) * 5.f;
  }
  return out;
}

}  // namespace

Task3Result run_task3(NetTag& model, const Corpus& corpus,
                      const Task3Options& options, Rng& rng) {
  std::vector<int> order(corpus.designs.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const int n_test = std::min<int>(options.num_test_designs,
                                   static_cast<int>(order.size()) / 2);
  std::vector<int> test(order.begin(), order.begin() + n_test);
  std::vector<int> train(order.begin() + n_test, order.end());

  // ---------------- NetTAG ---------------------------------------------------
  // Both predictors model endpoint *arrival* (= clock - slack): arrival is a
  // structural quantity that transfers across designs, while raw slack mixes
  // in each design's clock constraint (which is a known input, appended as a
  // feature / used to convert back).
  // Netlist-stage STA estimates per design (input feature for both models).
  std::vector<TimingReport> est(corpus.designs.size());
  ThreadPool::instance().run_indexed(corpus.designs.size(), [&](std::size_t d) {
    est[d] = netlist_stage_sta(corpus.designs[d].gen.netlist);
  });
  auto est_arrival = [&](std::size_t d, const std::string& reg_name) {
    const Netlist& nl = corpus.designs[d].gen.netlist;
    const GateId r = nl.find(reg_name);
    return est[d].arrival[static_cast<std::size_t>(nl.gate(r).fanins[0])];
  };

  // Per-cone rows: cone embedding features + clock constraint + the STA
  // estimate + design-level context (layout-stage wire delay and optimization
  // pressure scale with the whole design, not just the cone).
  std::vector<std::vector<Mat>> cone_emb(corpus.designs.size());
  ThreadPool::instance().run_indexed(corpus.designs.size(), [&](std::size_t d) {
    const Netlist& nl = corpus.designs[d].gen.netlist;
    double fanout_sum = 0;
    for (const Gate& g : nl.gates()) fanout_sum += static_cast<double>(g.fanouts.size());
    const float design_size = std::log1p(static_cast<float>(nl.size())) / 5.f;
    const float design_fanout =
        static_cast<float>(fanout_sum / static_cast<double>(nl.size())) / 3.f;
    const float design_crit = static_cast<float>(est[d].critical_path);
    for (const ConeSample& c : corpus.designs[d].cones) {
      Mat f = model.cone_feature(c.cone);
      Mat row(1, f.cols + 5);
      for (int j = 0; j < f.cols; ++j) row.at(0, j) = f.at(0, j);
      int at = f.cols;
      row.at(0, at++) = static_cast<float>(c.clock_period);
      row.at(0, at++) = static_cast<float>(est_arrival(d, c.register_name));
      row.at(0, at++) = design_size;
      row.at(0, at++) = design_fanout;
      row.at(0, at++) = design_crit;
      cone_emb[d].push_back(std::move(row));
    }
  });
  // Residual learning in log-ratio space: sign-off arrival is modeled as a
  // *multiplicative* correction of the netlist-stage estimate (wire delay
  // and optimization scale with the path, so the ratio is bounded across
  // design sizes while the absolute gap is not).
  auto log_ratio = [](double label_arr, double est_arr) {
    return std::log(std::max(label_arr, 1e-3) / std::max(est_arr, 1e-3));
  };
  std::vector<Mat> x_parts;
  std::vector<double> y_train;
  for (int d : train) {
    const std::size_t di = static_cast<std::size_t>(d);
    const auto& cones = corpus.designs[di].cones;
    for (std::size_t i = 0; i < cones.size(); ++i) {
      x_parts.push_back(cone_emb[di][i]);
      const double label_arr = cones[i].clock_period - cones[i].slack_label;
      y_train.push_back(
          log_ratio(label_arr, est_arrival(di, cones[i].register_name)));
    }
  }
  // Fine-tune with the tree-based model (paper §II-F allows "MLPs or
  // tree-based models (e.g., XGBoost)"): boosted trees pick up the
  // design-conditional ratio splits much more robustly than a small MLP at
  // this sample count.
  GbdtRegressor head;
  if (!x_parts.empty()) head.fit(vstack(x_parts), y_train, rng);

  // ---------------- timing GNN baseline -------------------------------------
  Rng gnn_rng = rng.fork();
  GcnConfig gc;
  gc.in_dim = netlist_base_feature_dim() + netlist_phys_feature_dim() + 3;
  gc.num_layers = 3;
  gc.out_dim = 1;
  Gcn gnn(gc, gnn_rng);
  Adam opt(gnn.params(), options.gnn_lr);

  std::vector<Mat> feats(corpus.designs.size()), adjs(corpus.designs.size());
  std::vector<std::vector<int>> reg_rows(corpus.designs.size());
  std::vector<std::vector<double>> reg_slack(corpus.designs.size());
  std::vector<std::vector<double>> reg_residual(corpus.designs.size());
  std::vector<std::vector<double>> reg_est(corpus.designs.size());
  std::vector<std::vector<double>> reg_clock(corpus.designs.size());
  for (std::size_t d = 0; d < corpus.designs.size(); ++d) {
    const Netlist& nl = corpus.designs[d].gen.netlist;
    feats[d] = timing_features(nl, est[d]);
    adjs[d] = normalized_adjacency(static_cast<int>(nl.size()), netlist_edges(nl));
    for (const ConeSample& c : corpus.designs[d].cones) {
      const GateId r = nl.find(c.register_name);
      const double e = est_arrival(d, c.register_name);
      reg_rows[d].push_back(static_cast<int>(r));
      reg_slack[d].push_back(c.slack_label);
      reg_est[d].push_back(e);
      reg_residual[d].push_back(
          std::log(std::max(c.clock_period - c.slack_label, 1e-3) /
                   std::max(e, 1e-3)));
      reg_clock[d].push_back(c.clock_period);
    }
  }
  // Residual z-normalization over the training split.
  double res_mean = 0, res_std = 1;
  {
    double sum = 0, sq = 0;
    std::size_t n = 0;
    for (int d : train) {
      for (double r : reg_residual[static_cast<std::size_t>(d)]) {
        sum += r;
        sq += r * r;
        ++n;
      }
    }
    if (n) {
      res_mean = sum / static_cast<double>(n);
      res_std = std::sqrt(
          std::max(sq / static_cast<double>(n) - res_mean * res_mean, 1e-9));
    }
  }
  for (int step = 0; step < options.gnn_steps; ++step) {
    const std::size_t d =
        static_cast<std::size_t>(train[gnn_rng.index(train.size())]);
    if (reg_rows[d].empty()) continue;
    Tensor nodes = gnn.forward_nodes(make_tensor(feats[d], false),
                                     make_tensor(adjs[d], false));
    std::vector<Tensor> rows;
    Mat target(static_cast<int>(reg_rows[d].size()), 1);
    for (std::size_t i = 0; i < reg_rows[d].size(); ++i) {
      rows.push_back(slice_rows(nodes, reg_rows[d][i], 1));
      target.at(static_cast<int>(i), 0) =
          static_cast<float>((reg_residual[d][i] - res_mean) / res_std);
    }
    Tensor loss = mse_loss(concat_rows(rows), target);
    backward(loss);
    opt.step();
  }

  // ---------------- evaluation ----------------------------------------------
  Task3Result result;
  std::vector<RegressionReport> gnn_reports, nettag_reports;
  for (int d : test) {
    const std::size_t di = static_cast<std::size_t>(d);
    const auto& cones = corpus.designs[di].cones;
    if (cones.size() < 2) continue;
    Task3Row row;
    row.design = corpus.designs[di].gen.netlist.name();
    // Skip near-zero slacks in MAPE (percentage error is undefined at the
    // zero crossing); 5% of the clock period is the materiality threshold.
    const double mape_floor =
        std::max(options.mape_floor, 0.05 * cones[0].clock_period);
    std::vector<double> truth;
    std::vector<Mat> xs;
    for (std::size_t i = 0; i < cones.size(); ++i) {
      truth.push_back(cones[i].slack_label);
      xs.push_back(cone_emb[di][i]);
    }
    std::vector<double> ratio_pred = head.predict(vstack(xs));
    std::vector<double> slack_pred;
    for (std::size_t i = 0; i < cones.size(); ++i) {
      const double r = std::clamp(ratio_pred[i], -1.0, 4.5);
      const double arr =
          std::max(est_arrival(di, cones[i].register_name), 1e-3) * std::exp(r);
      slack_pred.push_back(cones[i].clock_period - arr);
    }
    row.nettag = regression_report(truth, slack_pred, mape_floor);
    Tensor nodes = gnn.forward_nodes(make_tensor(feats[di], false),
                                     make_tensor(adjs[di], false));
    std::vector<double> gnn_pred;
    for (std::size_t i = 0; i < reg_rows[di].size(); ++i) {
      const double z =
          nodes->value.at(reg_rows[di][i], 0) * res_std + res_mean;
      const double arr =
          std::max(reg_est[di][i], 1e-3) * std::exp(std::clamp(z, -1.0, 4.5));
      gnn_pred.push_back(reg_clock[di][i] - arr);
    }
    row.gnn = regression_report(reg_slack[di], gnn_pred, mape_floor);
    gnn_reports.push_back(row.gnn);
    nettag_reports.push_back(row.nettag);
    result.rows.push_back(std::move(row));
  }
  result.gnn_avg = average_regression(gnn_reports);
  result.nettag_avg = average_regression(nettag_reports);
  return result;
}

}  // namespace nettag
