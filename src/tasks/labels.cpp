#include "tasks/labels.hpp"

#include <algorithm>

namespace nettag {

const std::vector<std::string>& task1_labels() {
  static const std::vector<std::string> labels = {
      "add",    "sub",    "mul",    "cmp",  "mux",  "bitwise",
      "shift",  "parity", "reduce", "decode", "encode", "fsm",
      "counter", "crc",   "lfsr",   "alu",  "datapath",
  };
  return labels;
}

int task1_label_id(const std::string& label) {
  const auto& l = task1_labels();
  const auto it = std::find(l.begin(), l.end(), label);
  return it == l.end() ? -1 : static_cast<int>(it - l.begin());
}

const std::vector<std::string>& task1_classes() {
  static const std::vector<std::string> classes = {
      "adder", "subtractor", "multiplier", "comparator",
      "interconnect", "logic", "control", "seq_support",
  };
  return classes;
}

int task1_class_id(const std::string& block_label) {
  if (block_label == "add" || block_label == "alu") return 0;
  if (block_label == "sub") return 1;
  if (block_label == "mul") return 2;
  if (block_label == "cmp") return 3;
  if (block_label == "mux" || block_label == "decode" ||
      block_label == "encode") {
    return 4;
  }
  if (block_label == "bitwise" || block_label == "parity" ||
      block_label == "reduce" || block_label == "shift") {
    return 5;
  }
  if (block_label == "fsm") return 6;
  if (block_label == "counter" || block_label == "crc" ||
      block_label == "lfsr") {
    return 7;
  }
  return -1;
}

}  // namespace nettag
