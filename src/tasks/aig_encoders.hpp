// Pre-trained AIG-encoder comparison (paper Fig. 5).
//
// The baseline circuit encoders (FGNN, DeepGate3) only handle and-inverter
// graphs, so the comparison runs Task 1 on AIG-converted netlists:
//  * FGNN-like    — GCN pre-trained with graph contrastive learning on AIG
//                   cones (functionally-equivalent rewrites as positives),
//                   frozen node embeddings + MLP head.
//  * DeepGate-like— GCN pre-trained to predict per-node signal probability
//                   from random simulation (DeepGate's supervision), frozen
//                   embeddings + MLP head.
//  * ExprLLM-only — NetTAG's text encoder alone on per-gate expressions.
//  * NetTAG       — full model on the AIG-formatted TAG.
#pragma once

#include "core/dataset.hpp"
#include "core/nettag.hpp"
#include "tasks/finetune.hpp"
#include "util/metrics.hpp"

namespace nettag {

struct AigCompareOptions {
  int num_test_designs = 6;
  FinetuneOptions head;
  int pretrain_steps = 120;   ///< baseline encoder pre-training
  int sim_patterns = 64;      ///< random patterns for DeepGate supervision
  float lr = 2e-3f;
  /// Expression hops on the AIG: each library cell decomposes into 2-4
  /// AND/INV levels, so k=4 on the AIG matches the 2-hop budget on the
  /// original netlist.
  int aig_k_hop = 4;
};

struct AigCompareResult {
  ClassificationReport fgnn;
  ClassificationReport deepgate;
  ClassificationReport expr_llm_only;
  ClassificationReport nettag;
};

/// Runs the Fig. 5 comparison: Task 1 (gate function identification) on the
/// AIG-converted corpus, averaging per-design reports.
AigCompareResult run_aig_comparison(NetTag& model, const Corpus& corpus,
                                    const AigCompareOptions& options, Rng& rng);

}  // namespace nettag
