// Lightweight fine-tuning on frozen NetTAG embeddings (paper §II-F: "we
// fine-tune these embeddings with lightweight task models like MLPs or
// tree-based models"). MLP heads for classification/regression with
// minibatch Adam; a gradient-boosted-trees alternative lives in gbdt.hpp.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/train_state.hpp"

namespace nettag {

struct FinetuneOptions {
  int steps = 1200;
  int batch = 64;
  float lr = 3e-3f;
  int hidden = 96;
  bool class_weighted = false;  ///< inverse-frequency weights (imbalanced tasks)
  /// Crash-safe checkpointing + cooperative interruption for fit() (off by
  /// default). Head checkpoints consist of the TrainState record alone
  /// (`<prefix>.trainer.bin`): head parameters travel in extra_params, and
  /// the input/target normalization statistics are recomputed
  /// deterministically from the data on resume.
  TrainCheckpoint checkpoint;
};

/// Trained classification head over fixed feature rows.
class ClassifierHead {
 public:
  ClassifierHead(int in_dim, int num_classes, const FinetuneOptions& options,
                 Rng& rng);

  /// Trains on rows of X (N x in_dim) with integer labels. Returns false
  /// when stopped early by options.checkpoint (a resumable record was
  /// saved); true on a completed fit.
  bool fit(const Mat& x, const std::vector<int>& y, Rng& rng);

  /// Continues an interrupted fit from options.checkpoint.prefix. Callers
  /// must pass the same data and a freshly derived rng identical to the
  /// original call's; the fitted head is then bit-identical to an
  /// uninterrupted fit. Throws std::runtime_error on a missing/corrupt
  /// record or mismatched dataset.
  bool resume_fit(const Mat& x, const std::vector<int>& y, Rng& rng);

  /// Argmax predictions for rows of X.
  std::vector<int> predict(const Mat& x) const;

  /// Per-class scores (logits) for rows of X.
  Mat scores(const Mat& x) const;

 private:
  bool fit_impl(const Mat& x, const std::vector<int>& y, Rng& rng,
                const TrainState* resume);

  FinetuneOptions options_;
  int num_classes_;
  std::unique_ptr<Mlp> mlp_;
  std::vector<float> col_mean_, col_std_;  ///< input normalization (from fit)
};

/// Column-wise z-score statistics and application (shared by both heads:
/// embeddings and raw scalar features arrive on very different scales).
void fit_column_stats(const Mat& x, std::vector<float>* mean,
                      std::vector<float>* std);
Mat apply_column_stats(const Mat& x, const std::vector<float>& mean,
                       const std::vector<float>& std);

/// Trained regression head (z-score-normalized targets internally).
class RegressorHead {
 public:
  RegressorHead(int in_dim, const FinetuneOptions& options, Rng& rng);

  /// See ClassifierHead::fit / resume_fit for the checkpoint contract.
  bool fit(const Mat& x, const std::vector<double>& y, Rng& rng);
  bool resume_fit(const Mat& x, const std::vector<double>& y, Rng& rng);
  std::vector<double> predict(const Mat& x) const;

 private:
  bool fit_impl(const Mat& x, const std::vector<double>& y, Rng& rng,
                const TrainState* resume);

  FinetuneOptions options_;
  std::unique_ptr<Mlp> mlp_;
  double mean_ = 0.0, std_ = 1.0;
  std::vector<float> col_mean_, col_std_;
};

/// Utility: stack feature rows (each 1 x D) into one matrix.
Mat vstack(const std::vector<Mat>& rows);

/// Utility: select rows of `x` by index.
Mat take_rows(const Mat& x, const std::vector<int>& idx);

}  // namespace nettag
