#include "tasks/finetune.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "nn/tape.hpp"
#include "util/parallel.hpp"

namespace nettag {

namespace {

// Shared checkpoint/stop plumbing for the two head-fit loops. Heads persist
// only a TrainState record (phase "head"): the MLP parameters ride in
// extra_params and everything else about a fit — normalization statistics,
// the class-pool partition — is a deterministic function of the data, so a
// resume recomputes it and restores just the trained state.

void validate_head_resume(const TrainState& st, int rows) {
  if (st.phase != "head") {
    throw std::runtime_error("resume_fit: checkpoint phase '" + st.phase +
                             "' is not a head checkpoint");
  }
  if (st.dataset_size != static_cast<std::uint64_t>(rows)) {
    throw std::runtime_error(
        "resume_fit: dataset has " + std::to_string(rows) +
        " rows but the checkpoint saw " + std::to_string(st.dataset_size) +
        " (data changed — resume cannot be bit-identical)");
  }
}

void save_head_state(const TrainCheckpoint& ck, int next_step, Rng& rng,
                     const Adam& opt, const Mlp& mlp,
                     const std::vector<float>& losses, int rows) {
  TrainState st;
  st.phase = "head";
  st.next_step = static_cast<std::uint64_t>(next_step);
  st.rng_state = rng.state();
  st.adam_t = opt.step_count();
  st.adam_m = opt.moment1();
  st.adam_v = opt.moment2();
  st.extra_params = flatten_param_values(mlp.params());
  st.loss_history = losses;
  st.dataset_size = static_cast<std::uint64_t>(rows);
  save_train_state(train_state_path(ck.prefix), st);
}

bool head_stop_requested(const TrainCheckpoint& ck, long executed) {
  if (ck.stop && ck.stop->load(std::memory_order_relaxed)) return true;
  return ck.halt_after_steps >= 0 && executed >= ck.halt_after_steps;
}

}  // namespace

Mat vstack(const std::vector<Mat>& rows) {
  assert(!rows.empty());
  const int d = rows[0].cols;
  int total = 0;
  for (const Mat& r : rows) total += r.rows;
  Mat out(total, d);
  int at = 0;
  for (const Mat& r : rows) {
    assert(r.cols == d);
    std::copy(r.v.begin(), r.v.end(),
              out.v.begin() + static_cast<std::ptrdiff_t>(at) * d);
    at += r.rows;
  }
  return out;
}

Mat take_rows(const Mat& x, const std::vector<int>& idx) {
  Mat out(static_cast<int>(idx.size()), x.cols);
  parallel_for(idx.size(),
               par::grain(static_cast<std::size_t>(x.cols), par::kMinOps),
               [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      for (int j = 0; j < x.cols; ++j) {
        out.at(static_cast<int>(i), j) = x.at(idx[i], j);
      }
    }
  });
  return out;
}

void fit_column_stats(const Mat& x, std::vector<float>* mean,
                      std::vector<float>* std) {
  mean->assign(static_cast<std::size_t>(x.cols), 0.f);
  std->assign(static_cast<std::size_t>(x.cols), 1.f);
  if (x.rows == 0) return;
  // Columns are independent reductions; each keeps its serial row order.
  parallel_for(static_cast<std::size_t>(x.cols),
               par::grain(static_cast<std::size_t>(x.rows) * 3, par::kMinOps),
               [&](std::size_t jb, std::size_t je) {
    for (int j = static_cast<int>(jb); j < static_cast<int>(je); ++j) {
      double s = 0, sq = 0;
      for (int i = 0; i < x.rows; ++i) {
        s += x.at(i, j);
        sq += static_cast<double>(x.at(i, j)) * x.at(i, j);
      }
      const double m = s / x.rows;
      const double v = std::max(sq / x.rows - m * m, 1e-8);
      (*mean)[static_cast<std::size_t>(j)] = static_cast<float>(m);
      (*std)[static_cast<std::size_t>(j)] = static_cast<float>(std::sqrt(v));
    }
  });
  // Floor each column std at a fraction of the average std: columns with
  // near-zero variance would otherwise amplify noise after division.
  double avg = 0;
  for (float s : *std) avg += s;
  avg /= static_cast<double>(std->size());
  const float floor_std = static_cast<float>(0.25 * avg);
  for (float& s : *std) s = std::max(s, floor_std);
}

Mat apply_column_stats(const Mat& x, const std::vector<float>& mean,
                       const std::vector<float>& std) {
  if (mean.empty()) return x;
  Mat out = x;
  parallel_for(static_cast<std::size_t>(out.rows),
               par::grain(static_cast<std::size_t>(out.cols) * 2, par::kMinOps),
               [&](std::size_t ib, std::size_t ie) {
    for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
      for (int j = 0; j < out.cols; ++j) {
        out.at(i, j) = (out.at(i, j) - mean[static_cast<std::size_t>(j)]) /
                       std[static_cast<std::size_t>(j)];
      }
    }
  });
  return out;
}

ClassifierHead::ClassifierHead(int in_dim, int num_classes,
                               const FinetuneOptions& options, Rng& rng)
    : options_(options), num_classes_(num_classes) {
  mlp_ = std::make_unique<Mlp>(in_dim, options.hidden, num_classes, rng);
}

bool ClassifierHead::fit(const Mat& x, const std::vector<int>& y, Rng& rng) {
  return fit_impl(x, y, rng, nullptr);
}

bool ClassifierHead::resume_fit(const Mat& x, const std::vector<int>& y,
                                Rng& rng) {
  if (!options_.checkpoint.enabled()) {
    throw std::runtime_error("resume_fit: options.checkpoint.prefix is empty");
  }
  const TrainState st =
      load_train_state(train_state_path(options_.checkpoint.prefix));
  return fit_impl(x, y, rng, &st);
}

bool ClassifierHead::fit_impl(const Mat& x_raw, const std::vector<int>& y,
                              Rng& rng, const TrainState* resume) {
  assert(x_raw.rows == static_cast<int>(y.size()));
  if (x_raw.rows == 0) return true;
  fit_column_stats(x_raw, &col_mean_, &col_std_);
  const Mat x = apply_column_stats(x_raw, col_mean_, col_std_);
  Adam opt(mlp_->params(), options_.lr);

  const TrainCheckpoint& ck = options_.checkpoint;
  std::vector<float> losses;
  int start_step = 0;
  if (resume) {
    validate_head_resume(*resume, x_raw.rows);
    restore_param_values(mlp_->params(), resume->extra_params);
    opt.restore(resume->adam_t, resume->adam_m, resume->adam_v);
    rng.set_state(resume->rng_state);
    losses = resume->loss_history;
    start_step = static_cast<int>(resume->next_step);
  }

  // Optional inverse-frequency resampling for imbalanced tasks: oversample
  // minority classes in the minibatch draw.
  std::vector<std::vector<int>> by_class(static_cast<std::size_t>(num_classes_));
  for (int i = 0; i < x.rows; ++i) {
    by_class[static_cast<std::size_t>(y[static_cast<std::size_t>(i)])].push_back(i);
  }
  std::vector<int> nonempty;
  for (int c = 0; c < num_classes_; ++c) {
    if (!by_class[static_cast<std::size_t>(c)].empty()) nonempty.push_back(c);
  }

  long executed = 0;
  for (int step = start_step; step < options_.steps; ++step) {
    // Declared first so it outlives (and can materialize) the step's tensors.
    plan::PlanScope plan_scope("clf|" + std::to_string(options_.batch) + "|" +
                               std::to_string(x.cols) + "|" +
                               std::to_string(num_classes_));
    std::vector<int> idx;
    std::vector<int> labels;
    for (int b = 0; b < options_.batch; ++b) {
      int i;
      if (options_.class_weighted) {
        const int c = nonempty[rng.index(nonempty.size())];
        const auto& pool = by_class[static_cast<std::size_t>(c)];
        i = pool[rng.index(pool.size())];
      } else {
        i = static_cast<int>(rng.index(static_cast<std::size_t>(x.rows)));
      }
      idx.push_back(i);
      labels.push_back(y[static_cast<std::size_t>(i)]);
    }
    Tensor logits = mlp_->forward(make_tensor(take_rows(x, idx), false));
    Tensor loss = cross_entropy(logits, labels);
    backward(loss);
    opt.step();
    losses.push_back(loss->value.v[0]);
    ++executed;
    const bool stop_now = head_stop_requested(ck, executed);
    if (ck.enabled() &&
        (stop_now || (ck.every > 0 && (step + 1) % ck.every == 0))) {
      save_head_state(ck, step + 1, rng, opt, *mlp_, losses, x_raw.rows);
    }
    if (stop_now) return false;
  }
  return true;
}

Mat ClassifierHead::scores(const Mat& x) const {
  return mlp_->forward(make_tensor(apply_column_stats(x, col_mean_, col_std_),
                                   false))
      ->value;
}

std::vector<int> ClassifierHead::predict(const Mat& x) const {
  const Mat s = scores(x);
  std::vector<int> out(static_cast<std::size_t>(s.rows));
  parallel_for(out.size(),
               par::grain(static_cast<std::size_t>(s.cols), par::kMinOps),
               [&](std::size_t b, std::size_t e) {
    for (int i = static_cast<int>(b); i < static_cast<int>(e); ++i) {
      int best = 0;
      for (int j = 1; j < s.cols; ++j) {
        if (s.at(i, j) > s.at(i, best)) best = j;
      }
      out[static_cast<std::size_t>(i)] = best;
    }
  });
  return out;
}

RegressorHead::RegressorHead(int in_dim, const FinetuneOptions& options, Rng& rng)
    : options_(options) {
  mlp_ = std::make_unique<Mlp>(in_dim, options.hidden, 1, rng);
}

bool RegressorHead::fit(const Mat& x, const std::vector<double>& y, Rng& rng) {
  return fit_impl(x, y, rng, nullptr);
}

bool RegressorHead::resume_fit(const Mat& x, const std::vector<double>& y,
                               Rng& rng) {
  if (!options_.checkpoint.enabled()) {
    throw std::runtime_error("resume_fit: options.checkpoint.prefix is empty");
  }
  const TrainState st =
      load_train_state(train_state_path(options_.checkpoint.prefix));
  return fit_impl(x, y, rng, &st);
}

bool RegressorHead::fit_impl(const Mat& x_raw, const std::vector<double>& y,
                             Rng& rng, const TrainState* resume) {
  assert(x_raw.rows == static_cast<int>(y.size()));
  if (x_raw.rows == 0) return true;
  fit_column_stats(x_raw, &col_mean_, &col_std_);
  const Mat x = apply_column_stats(x_raw, col_mean_, col_std_);
  // Z-score normalization of targets for stable training.
  double sum = 0, sq = 0;
  for (double v : y) {
    sum += v;
    sq += v * v;
  }
  mean_ = sum / static_cast<double>(y.size());
  std_ = std::sqrt(std::max(sq / static_cast<double>(y.size()) - mean_ * mean_,
                            1e-12));
  Adam opt(mlp_->params(), options_.lr);

  const TrainCheckpoint& ck = options_.checkpoint;
  std::vector<float> losses;
  int start_step = 0;
  if (resume) {
    validate_head_resume(*resume, x_raw.rows);
    restore_param_values(mlp_->params(), resume->extra_params);
    opt.restore(resume->adam_t, resume->adam_m, resume->adam_v);
    rng.set_state(resume->rng_state);
    losses = resume->loss_history;
    start_step = static_cast<int>(resume->next_step);
  }

  long executed = 0;
  for (int step = start_step; step < options_.steps; ++step) {
    plan::PlanScope plan_scope("reg|" + std::to_string(options_.batch) + "|" +
                               std::to_string(x.cols));
    std::vector<int> idx;
    for (int b = 0; b < options_.batch; ++b) {
      idx.push_back(static_cast<int>(rng.index(static_cast<std::size_t>(x.rows))));
    }
    Mat target(static_cast<int>(idx.size()), 1);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      target.at(static_cast<int>(i), 0) = static_cast<float>(
          (y[static_cast<std::size_t>(idx[i])] - mean_) / std_);
    }
    Tensor pred = mlp_->forward(make_tensor(take_rows(x, idx), false));
    Tensor loss = mse_loss(pred, target);
    backward(loss);
    opt.step();
    losses.push_back(loss->value.v[0]);
    ++executed;
    const bool stop_now = head_stop_requested(ck, executed);
    if (ck.enabled() &&
        (stop_now || (ck.every > 0 && (step + 1) % ck.every == 0))) {
      save_head_state(ck, step + 1, rng, opt, *mlp_, losses, x_raw.rows);
    }
    if (stop_now) return false;
  }
  return true;
}

std::vector<double> RegressorHead::predict(const Mat& x) const {
  const Mat p =
      mlp_->forward(
              make_tensor(apply_column_stats(x, col_mean_, col_std_), false))
          ->value;
  std::vector<double> out(static_cast<std::size_t>(p.rows));
  for (int i = 0; i < p.rows; ++i) {
    out[static_cast<std::size_t>(i)] = p.at(i, 0) * std_ + mean_;
  }
  return out;
}

}  // namespace nettag
