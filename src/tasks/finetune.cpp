#include "tasks/finetune.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/parallel.hpp"

namespace nettag {

Mat vstack(const std::vector<Mat>& rows) {
  assert(!rows.empty());
  const int d = rows[0].cols;
  int total = 0;
  for (const Mat& r : rows) total += r.rows;
  Mat out(total, d);
  int at = 0;
  for (const Mat& r : rows) {
    assert(r.cols == d);
    std::copy(r.v.begin(), r.v.end(),
              out.v.begin() + static_cast<std::ptrdiff_t>(at) * d);
    at += r.rows;
  }
  return out;
}

Mat take_rows(const Mat& x, const std::vector<int>& idx) {
  Mat out(static_cast<int>(idx.size()), x.cols);
  parallel_for(idx.size(),
               par::grain(static_cast<std::size_t>(x.cols), par::kMinOps),
               [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      for (int j = 0; j < x.cols; ++j) {
        out.at(static_cast<int>(i), j) = x.at(idx[i], j);
      }
    }
  });
  return out;
}

void fit_column_stats(const Mat& x, std::vector<float>* mean,
                      std::vector<float>* std) {
  mean->assign(static_cast<std::size_t>(x.cols), 0.f);
  std->assign(static_cast<std::size_t>(x.cols), 1.f);
  if (x.rows == 0) return;
  // Columns are independent reductions; each keeps its serial row order.
  parallel_for(static_cast<std::size_t>(x.cols),
               par::grain(static_cast<std::size_t>(x.rows) * 3, par::kMinOps),
               [&](std::size_t jb, std::size_t je) {
    for (int j = static_cast<int>(jb); j < static_cast<int>(je); ++j) {
      double s = 0, sq = 0;
      for (int i = 0; i < x.rows; ++i) {
        s += x.at(i, j);
        sq += static_cast<double>(x.at(i, j)) * x.at(i, j);
      }
      const double m = s / x.rows;
      const double v = std::max(sq / x.rows - m * m, 1e-8);
      (*mean)[static_cast<std::size_t>(j)] = static_cast<float>(m);
      (*std)[static_cast<std::size_t>(j)] = static_cast<float>(std::sqrt(v));
    }
  });
  // Floor each column std at a fraction of the average std: columns with
  // near-zero variance would otherwise amplify noise after division.
  double avg = 0;
  for (float s : *std) avg += s;
  avg /= static_cast<double>(std->size());
  const float floor_std = static_cast<float>(0.25 * avg);
  for (float& s : *std) s = std::max(s, floor_std);
}

Mat apply_column_stats(const Mat& x, const std::vector<float>& mean,
                       const std::vector<float>& std) {
  if (mean.empty()) return x;
  Mat out = x;
  parallel_for(static_cast<std::size_t>(out.rows),
               par::grain(static_cast<std::size_t>(out.cols) * 2, par::kMinOps),
               [&](std::size_t ib, std::size_t ie) {
    for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
      for (int j = 0; j < out.cols; ++j) {
        out.at(i, j) = (out.at(i, j) - mean[static_cast<std::size_t>(j)]) /
                       std[static_cast<std::size_t>(j)];
      }
    }
  });
  return out;
}

ClassifierHead::ClassifierHead(int in_dim, int num_classes,
                               const FinetuneOptions& options, Rng& rng)
    : options_(options), num_classes_(num_classes) {
  mlp_ = std::make_unique<Mlp>(in_dim, options.hidden, num_classes, rng);
}

void ClassifierHead::fit(const Mat& x_raw, const std::vector<int>& y, Rng& rng) {
  assert(x_raw.rows == static_cast<int>(y.size()));
  if (x_raw.rows == 0) return;
  fit_column_stats(x_raw, &col_mean_, &col_std_);
  const Mat x = apply_column_stats(x_raw, col_mean_, col_std_);
  Adam opt(mlp_->params(), options_.lr);

  // Optional inverse-frequency resampling for imbalanced tasks: oversample
  // minority classes in the minibatch draw.
  std::vector<std::vector<int>> by_class(static_cast<std::size_t>(num_classes_));
  for (int i = 0; i < x.rows; ++i) {
    by_class[static_cast<std::size_t>(y[static_cast<std::size_t>(i)])].push_back(i);
  }
  std::vector<int> nonempty;
  for (int c = 0; c < num_classes_; ++c) {
    if (!by_class[static_cast<std::size_t>(c)].empty()) nonempty.push_back(c);
  }

  for (int step = 0; step < options_.steps; ++step) {
    std::vector<int> idx;
    std::vector<int> labels;
    for (int b = 0; b < options_.batch; ++b) {
      int i;
      if (options_.class_weighted) {
        const int c = nonempty[rng.index(nonempty.size())];
        const auto& pool = by_class[static_cast<std::size_t>(c)];
        i = pool[rng.index(pool.size())];
      } else {
        i = static_cast<int>(rng.index(static_cast<std::size_t>(x.rows)));
      }
      idx.push_back(i);
      labels.push_back(y[static_cast<std::size_t>(i)]);
    }
    Tensor logits = mlp_->forward(make_tensor(take_rows(x, idx), false));
    Tensor loss = cross_entropy(logits, labels);
    backward(loss);
    opt.step();
  }
}

Mat ClassifierHead::scores(const Mat& x) const {
  return mlp_->forward(make_tensor(apply_column_stats(x, col_mean_, col_std_),
                                   false))
      ->value;
}

std::vector<int> ClassifierHead::predict(const Mat& x) const {
  const Mat s = scores(x);
  std::vector<int> out(static_cast<std::size_t>(s.rows));
  parallel_for(out.size(),
               par::grain(static_cast<std::size_t>(s.cols), par::kMinOps),
               [&](std::size_t b, std::size_t e) {
    for (int i = static_cast<int>(b); i < static_cast<int>(e); ++i) {
      int best = 0;
      for (int j = 1; j < s.cols; ++j) {
        if (s.at(i, j) > s.at(i, best)) best = j;
      }
      out[static_cast<std::size_t>(i)] = best;
    }
  });
  return out;
}

RegressorHead::RegressorHead(int in_dim, const FinetuneOptions& options, Rng& rng)
    : options_(options) {
  mlp_ = std::make_unique<Mlp>(in_dim, options.hidden, 1, rng);
}

void RegressorHead::fit(const Mat& x_raw, const std::vector<double>& y, Rng& rng) {
  assert(x_raw.rows == static_cast<int>(y.size()));
  if (x_raw.rows == 0) return;
  fit_column_stats(x_raw, &col_mean_, &col_std_);
  const Mat x = apply_column_stats(x_raw, col_mean_, col_std_);
  // Z-score normalization of targets for stable training.
  double sum = 0, sq = 0;
  for (double v : y) {
    sum += v;
    sq += v * v;
  }
  mean_ = sum / static_cast<double>(y.size());
  std_ = std::sqrt(std::max(sq / static_cast<double>(y.size()) - mean_ * mean_,
                            1e-12));
  Adam opt(mlp_->params(), options_.lr);
  for (int step = 0; step < options_.steps; ++step) {
    std::vector<int> idx;
    for (int b = 0; b < options_.batch; ++b) {
      idx.push_back(static_cast<int>(rng.index(static_cast<std::size_t>(x.rows))));
    }
    Mat target(static_cast<int>(idx.size()), 1);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      target.at(static_cast<int>(i), 0) = static_cast<float>(
          (y[static_cast<std::size_t>(idx[i])] - mean_) / std_);
    }
    Tensor pred = mlp_->forward(make_tensor(take_rows(x, idx), false));
    Tensor loss = mse_loss(pred, target);
    backward(loss);
    opt.step();
  }
}

std::vector<double> RegressorHead::predict(const Mat& x) const {
  const Mat p =
      mlp_->forward(
              make_tensor(apply_column_stats(x, col_mean_, col_std_), false))
          ->value;
  std::vector<double> out(static_cast<std::size_t>(p.rows));
  for (int i = 0; i < p.rows; ++i) {
    out[static_cast<std::size_t>(i)] = p.at(i, 0) * std_ + mean_;
  }
  return out;
}

}  // namespace nettag
