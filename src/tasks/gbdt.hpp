// Gradient-boosted regression trees: the paper's alternative lightweight
// fine-tuning model ("MLPs or tree-based models (e.g., XGBoost)", §II-F).
// Squared-error boosting over depth-limited CART trees with histogram-free
// exact splits — adequate at our feature/sample scale.
#pragma once

#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace nettag {

struct GbdtOptions {
  int num_trees = 60;
  int max_depth = 3;
  int min_samples_leaf = 4;
  double learning_rate = 0.15;
  double subsample = 0.8;      ///< row subsampling per tree
  int max_split_candidates = 24;  ///< thresholds tried per feature
};

/// Boosted-trees regressor on dense feature rows.
class GbdtRegressor {
 public:
  explicit GbdtRegressor(const GbdtOptions& options = {});
  ~GbdtRegressor();
  GbdtRegressor(GbdtRegressor&&) noexcept;
  GbdtRegressor& operator=(GbdtRegressor&&) noexcept;

  /// Fits on rows of `x` against targets `y`.
  void fit(const Mat& x, const std::vector<double>& y, Rng& rng);

  std::vector<double> predict(const Mat& x) const;
  double predict_row(const Mat& x, int row) const;

  /// Number of fitted trees (0 before fit).
  int num_trees() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  GbdtOptions options_;
};

}  // namespace nettag
