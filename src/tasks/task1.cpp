#include "tasks/task1.hpp"

#include <algorithm>
#include <numeric>

#include "model/gcn.hpp"
#include "model/graph.hpp"
#include "util/parallel.hpp"
#include "tasks/labels.hpp"

namespace nettag {

void task1_gate_labels(const Netlist& nl, std::vector<int>* gate_rows,
                       std::vector<int>* labels) {
  gate_rows->clear();
  labels->clear();
  for (const Gate& g : nl.gates()) {
    if (gate_class_of(g.type) < 0) continue;  // logic gates only
    const int label = task1_class_id(g.rtl_block);
    if (label < 0) continue;
    gate_rows->push_back(static_cast<int>(g.id));
    labels->push_back(label);
  }
}

ClassificationReport average_reports(
    const std::vector<ClassificationReport>& reports) {
  ClassificationReport avg;
  if (reports.empty()) return avg;
  for (const auto& r : reports) {
    avg.accuracy += r.accuracy;
    avg.precision += r.precision;
    avg.recall += r.recall;
    avg.f1 += r.f1;
    avg.num_samples += r.num_samples;
  }
  const double k = static_cast<double>(reports.size());
  avg.accuracy /= k;
  avg.precision /= k;
  avg.recall /= k;
  avg.f1 /= k;
  return avg;
}

Task1Result run_task1(NetTag& model, const Corpus& corpus,
                      const Task1Options& options, Rng& rng) {
  const int num_classes = static_cast<int>(task1_classes().size());

  // Split designs: first num_test_designs of a shuffled order are test.
  std::vector<int> order(corpus.designs.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const int n_test = std::min<int>(options.num_test_designs,
                                   static_cast<int>(order.size()) / 2);
  std::vector<int> test(order.begin(), order.begin() + n_test);
  std::vector<int> train(order.begin() + n_test, order.end());

  // Per-design labeled gates.
  struct DesignData {
    const Netlist* nl;
    std::vector<int> gate_rows;
    std::vector<int> labels;
  };
  std::vector<DesignData> data(corpus.designs.size());
  for (std::size_t i = 0; i < corpus.designs.size(); ++i) {
    data[i].nl = &corpus.designs[i].gen.netlist;
    task1_gate_labels(*data[i].nl, &data[i].gate_rows, &data[i].labels);
  }

  // ---------------- NetTAG: frozen embeddings + MLP head -------------------
  // Gate feature = TAGFormer-refined embedding concatenated with the raw
  // input features (ExprLLM text embedding + x_phys): the head fine-tunes on
  // both granularities of the frozen representation.
  std::vector<Mat> embeddings(corpus.designs.size());
  ThreadPool::instance().run_indexed(corpus.designs.size(), [&](std::size_t i) {
    const NetTag::ConeEmbedding emb = model.embed(*data[i].nl);
    Mat joined(emb.nodes.rows, emb.nodes.cols + emb.inputs.cols);
    for (int r = 0; r < emb.nodes.rows; ++r) {
      for (int j = 0; j < emb.nodes.cols; ++j) joined.at(r, j) = emb.nodes.at(r, j);
      for (int j = 0; j < emb.inputs.cols; ++j) {
        joined.at(r, emb.nodes.cols + j) = emb.inputs.at(r, j);
      }
    }
    embeddings[i] = std::move(joined);
  });
  std::vector<Mat> x_parts;
  std::vector<int> y_train;
  for (int d : train) {
    const auto& dd = data[static_cast<std::size_t>(d)];
    if (dd.gate_rows.empty()) continue;
    x_parts.push_back(take_rows(embeddings[static_cast<std::size_t>(d)], dd.gate_rows));
    y_train.insert(y_train.end(), dd.labels.begin(), dd.labels.end());
  }
  ClassifierHead nettag_head(model.embedding_dim() + model.tag_in_dim(),
                             num_classes, options.head, rng);
  if (!x_parts.empty()) nettag_head.fit(vstack(x_parts), y_train, rng);

  // ---------------- GNN-RE baseline: supervised GCN ------------------------
  Rng gnn_rng = rng.fork();
  GcnConfig gc;
  gc.in_dim = netlist_base_feature_dim();
  gc.hidden = 48;
  gc.num_layers = 3;
  gc.out_dim = num_classes;
  Gcn gnn(gc, gnn_rng);
  Adam gnn_opt(gnn.params(), options.gnn_lr);
  // Precompute features/adjacency per design.
  std::vector<Mat> feats(corpus.designs.size());
  std::vector<Mat> adjs(corpus.designs.size());
  for (std::size_t i = 0; i < corpus.designs.size(); ++i) {
    feats[i] = netlist_base_features(*data[i].nl);
    adjs[i] = normalized_adjacency(static_cast<int>(data[i].nl->size()),
                                   netlist_edges(*data[i].nl));
  }
  for (int step = 0; step < options.gnn_steps; ++step) {
    const int d = train[gnn_rng.index(train.size())];
    const auto& dd = data[static_cast<std::size_t>(d)];
    if (dd.gate_rows.empty()) continue;
    Tensor nodes = gnn.forward_nodes(
        make_tensor(feats[static_cast<std::size_t>(d)], false),
        make_tensor(adjs[static_cast<std::size_t>(d)], false));
    std::vector<Tensor> rows;
    rows.reserve(dd.gate_rows.size());
    for (int r : dd.gate_rows) rows.push_back(slice_rows(nodes, r, 1));
    Tensor loss = cross_entropy(concat_rows(rows), dd.labels);
    backward(loss);
    gnn_opt.step();
  }

  // ---------------- evaluation ---------------------------------------------
  Task1Result result;
  std::vector<ClassificationReport> gnn_reports, nettag_reports;
  for (int d : test) {
    const auto& dd = data[static_cast<std::size_t>(d)];
    if (dd.gate_rows.empty()) continue;
    Task1Row row;
    row.design = dd.nl->name();
    // NetTAG predictions.
    const Mat x = take_rows(embeddings[static_cast<std::size_t>(d)], dd.gate_rows);
    row.nettag = classification_report(dd.labels, nettag_head.predict(x));
    // GNN predictions.
    Tensor nodes = gnn.forward_nodes(
        make_tensor(feats[static_cast<std::size_t>(d)], false),
        make_tensor(adjs[static_cast<std::size_t>(d)], false));
    std::vector<int> pred;
    for (int r : dd.gate_rows) {
      int best = 0;
      for (int j = 1; j < num_classes; ++j) {
        if (nodes->value.at(r, j) > nodes->value.at(r, best)) best = j;
      }
      pred.push_back(best);
    }
    row.gnnre = classification_report(dd.labels, pred);
    gnn_reports.push_back(row.gnnre);
    nettag_reports.push_back(row.nettag);
    result.rows.push_back(std::move(row));
  }
  result.gnnre_avg = average_reports(gnn_reports);
  result.nettag_avg = average_reports(nettag_reports);
  return result;
}

}  // namespace nettag
