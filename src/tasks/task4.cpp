#include "tasks/task4.hpp"

#include "tasks/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/gcn.hpp"
#include "model/graph.hpp"
#include "util/parallel.hpp"

namespace nettag {

namespace {

/// Supervised graph-level GCN regressor for one target (PowPrediCT-style):
/// per-node contributions are *sum*-pooled (PowPrediCT sums per-cell power),
/// so the model scales with netlist size, then a linear head maps the pooled
/// vector to the log-domain target.
std::vector<double> train_eval_gnn(const std::vector<Mat>& feats,
                                   const std::vector<Mat>& adjs,
                                   const std::vector<double>& labels,
                                   const std::vector<int>& train,
                                   const std::vector<int>& test, int steps,
                                   float lr, Rng& rng) {
  GcnConfig gc;
  gc.in_dim = feats[0].cols;
  gc.num_layers = 3;
  gc.out_dim = 8;
  Gcn gnn(gc, rng);
  Linear head(gc.out_dim, 1, rng);
  std::vector<Tensor> params = gnn.params();
  for (const Tensor& p : head.params()) params.push_back(p);
  Adam opt(params, lr);
  // Log-scale z-normalization (area/power are positive, heavy-tailed).
  double mean = 0, stdv = 1;
  {
    double sum = 0, sq = 0;
    for (int d : train) {
      const double v = std::log(std::max(labels[static_cast<std::size_t>(d)], 1e-6));
      sum += v;
      sq += v * v;
    }
    mean = sum / static_cast<double>(train.size());
    stdv = std::sqrt(std::max(sq / static_cast<double>(train.size()) - mean * mean,
                              1e-9));
  }
  auto forward = [&](std::size_t d) {
    Tensor nodes = gnn.forward_nodes(make_tensor(feats[d], false),
                                     make_tensor(adjs[d], false));
    // Scaled sum pooling: keeps size information while staying in a range
    // the linear head can map onto z-scored log targets.
    return head.forward(scale(sum_rows(nodes), 0.02f));
  };
  for (int step = 0; step < steps; ++step) {
    const std::size_t d =
        static_cast<std::size_t>(train[rng.index(train.size())]);
    Mat target(1, 1);
    target.at(0, 0) =
        static_cast<float>((std::log(std::max(labels[d], 1e-6)) - mean) / stdv);
    Tensor loss = mse_loss(forward(d), target);
    backward(loss);
    opt.step();
  }
  std::vector<double> pred;
  for (int d : test) {
    Tensor out = forward(static_cast<std::size_t>(d));
    // Clamp in normalized space: an untrained tail must not explode
    // through the exp back-transform.
    const double z = std::clamp(static_cast<double>(out->value.v[0]), -4.0, 4.0);
    pred.push_back(std::exp(z * stdv + mean));
  }
  return pred;
}

}  // namespace

Task4Result run_task4(NetTag& model, const Corpus& corpus,
                      const Task4Options& options, Rng& rng) {
  const std::size_t n = corpus.designs.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::size_t n_test = std::max<std::size_t>(
      2, static_cast<std::size_t>(options.test_fraction * static_cast<double>(n)));
  std::vector<int> test(order.begin(), order.begin() + static_cast<long>(n_test));
  std::vector<int> train(order.begin() + static_cast<long>(n_test), order.end());

  // Labels and tool estimates.
  std::vector<double> area_wo(n), area_w(n), power_wo(n), power_w(n);
  std::vector<double> tool_area(n), tool_power(n);
  for (std::size_t d = 0; d < n; ++d) {
    const DesignSample& ds = corpus.designs[d];
    area_wo[d] = ds.area_wo_opt;
    area_w[d] = ds.area_w_opt;
    power_wo[d] = ds.power_wo_opt;
    power_w[d] = ds.power_w_opt;
    tool_area[d] = ds.tool_area;
    tool_power[d] = ds.tool_power;
  }

  // NetTAG circuit embeddings, augmented with the (log) tool estimates and
  // netlist-stage structural statistics — mirroring how PowPrediCT feeds
  // synthesis reports. The structural stats (size, levels, fanout) drive the
  // layout wirelength the tool estimate is blind to.
  const int extra = 7;
  Mat x_all(static_cast<int>(n), model.embedding_dim() + extra);
  ThreadPool::instance().run_indexed(n, [&](std::size_t d) {
    const Netlist& nl = corpus.designs[d].gen.netlist;
    const Mat emb = model.embed_circuit(nl);
    for (int j = 0; j < model.embedding_dim(); ++j) {
      x_all.at(static_cast<int>(d), j) = emb.at(0, j);
    }
    // Logic depth and fanout statistics.
    std::vector<int> depth(nl.size(), 0);
    int max_depth = 1;
    double fanout_sum = 0;
    for (GateId id : nl.topo_order()) {
      const Gate& g = nl.gate(id);
      fanout_sum += static_cast<double>(g.fanouts.size());
      if (g.type == CellType::kDff || g.type == CellType::kPort) continue;
      int dep = 0;
      for (GateId f : g.fanins) dep = std::max(dep, depth[static_cast<std::size_t>(f)] + 1);
      depth[static_cast<std::size_t>(id)] = dep;
      max_depth = std::max(max_depth, dep);
    }
    int at = model.embedding_dim();
    x_all.at(static_cast<int>(d), at++) =
        static_cast<float>(std::log(std::max(tool_area[d], 1e-6)));
    x_all.at(static_cast<int>(d), at++) =
        static_cast<float>(std::log(std::max(tool_power[d], 1e-6)));
    x_all.at(static_cast<int>(d), at++) =
        std::log1p(static_cast<float>(nl.size()));
    x_all.at(static_cast<int>(d), at++) =
        std::log1p(static_cast<float>(nl.size()) / static_cast<float>(max_depth));
    x_all.at(static_cast<int>(d), at++) =
        static_cast<float>(fanout_sum / static_cast<double>(nl.size()));
    x_all.at(static_cast<int>(d), at++) = static_cast<float>(max_depth) / 20.f;
    // Netlist-stage *propagated-activity* power report: captures the
    // activity structure the flat tool estimate misses.
    x_all.at(static_cast<int>(d), at++) = static_cast<float>(
        std::log(std::max(netlist_stage_power(nl).total(), 1e-6)));
  });

  // GNN features: structural + physical + the per-gate netlist-stage power
  // estimate (PowPrediCT consumes per-cell synthesis reports the same way).
  std::vector<Mat> feats(n), adjs(n);
  for (std::size_t d = 0; d < n; ++d) {
    const Netlist& nl = corpus.designs[d].gen.netlist;
    const Mat base = netlist_base_features(nl);
    const Mat phys = netlist_phys_features(nl);
    Mat f(base.rows, base.cols + phys.cols + 1);
    for (int i = 0; i < base.rows; ++i) {
      for (int j = 0; j < base.cols; ++j) f.at(i, j) = base.at(i, j);
      for (int j = 0; j < phys.cols; ++j) f.at(i, base.cols + j) = phys.at(i, j);
      const Gate& g = nl.gate(static_cast<GateId>(i));
      double pin_cap = 0.0;
      for (GateId s : g.fanouts) pin_cap += cell_info(nl.gate(s).type).input_cap;
      const double node_power =
          0.5 * pin_cap * 1.1 * 1.1 * 0.2 + cell_info(g.type).leakage * 1e-3;
      f.at(i, base.cols + phys.cols) = static_cast<float>(node_power);
    }
    feats[d] = std::move(f);
    adjs[d] = normalized_adjacency(static_cast<int>(nl.size()), netlist_edges(nl));
  }

  auto eval_target = [&](const std::vector<double>& labels,
                         const std::vector<double>& tool_est) {
    Task4Cell cell;
    // Tool estimate directly.
    std::vector<double> truth, tool_pred;
    for (int d : test) {
      truth.push_back(labels[static_cast<std::size_t>(d)]);
      tool_pred.push_back(tool_est[static_cast<std::size_t>(d)]);
    }
    cell.tool = regression_report(truth, tool_pred);
    // GNN.
    Rng gnn_rng = rng.fork();
    cell.gnn = regression_report(
        truth, train_eval_gnn(feats, adjs, labels, train, test,
                              options.gnn_steps, options.gnn_lr, gnn_rng));
    // NetTAG: residual learning against the netlist-stage estimate — the
    // head predicts log(label / tool_estimate), so it only has to model the
    // layout-stage correction the tool cannot see. Tree-based fine-tuning
    // (paper §II-F: "MLPs or tree-based models") is the robust choice at
    // tens of training designs.
    Rng head_rng = rng.fork();
    std::vector<double> y_ratio;
    double ratio_lo = 1e9, ratio_hi = -1e9;
    std::vector<int> train_rows(train.begin(), train.end());
    for (int d : train) {
      const std::size_t di = static_cast<std::size_t>(d);
      const double r = std::log(std::max(labels[di], 1e-6) /
                                std::max(tool_est[di], 1e-6));
      y_ratio.push_back(r);
      ratio_lo = std::min(ratio_lo, r);
      ratio_hi = std::max(ratio_hi, r);
    }
    GbdtRegressor head;
    head.fit(take_rows(x_all, train_rows), y_ratio, head_rng);
    std::vector<int> test_rows(test.begin(), test.end());
    std::vector<double> pred_ratio = head.predict(take_rows(x_all, test_rows));
    std::vector<double> pred;
    for (std::size_t i = 0; i < test.size(); ++i) {
      // Stay inside the correction range seen in training.
      const double r = std::clamp(pred_ratio[i], ratio_lo, ratio_hi);
      pred.push_back(tool_est[static_cast<std::size_t>(test[i])] * std::exp(r));
    }
    cell.nettag = regression_report(truth, pred);
    return cell;
  };

  Task4Result result;
  result.area_wo_opt = eval_target(area_wo, tool_area);
  result.area_w_opt = eval_target(area_w, tool_area);
  result.power_wo_opt = eval_target(power_wo, tool_power);
  result.power_w_opt = eval_target(power_w, tool_power);
  return result;
}

}  // namespace nettag
