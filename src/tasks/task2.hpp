// Task 2: sequential state/data register identification (paper §III-B,
// Table IV left). Distinguish FSM state registers from datapath registers
// (counters/LFSRs/CRCs are the classic confusables) — the ReIGNN problem.
//
// NetTAG: frozen register-cone [CLS] embeddings + class-balanced MLP head.
// Baseline (ReIGNN): supervised GCN over the full design graph, classifying
// register nodes from structural features.
#pragma once

#include "core/dataset.hpp"
#include "core/nettag.hpp"
#include "tasks/finetune.hpp"
#include "util/metrics.hpp"

namespace nettag {

struct Task2Options {
  int num_test_designs = 8;  ///< Table IV lists 8 designs
  FinetuneOptions head;
  int gnn_steps = 240;
  float gnn_lr = 3e-3f;
};

struct Task2Row {
  std::string design;
  BinaryReport reignn;
  BinaryReport nettag;
};

struct Task2Result {
  std::vector<Task2Row> rows;
  BinaryReport reignn_avg;
  BinaryReport nettag_avg;
};

Task2Result run_task2(NetTag& model, const Corpus& corpus,
                      const Task2Options& options, Rng& rng);

}  // namespace nettag
