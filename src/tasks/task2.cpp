#include "tasks/task2.hpp"

#include <numeric>

#include "model/gcn.hpp"
#include "model/graph.hpp"
#include "util/parallel.hpp"

namespace nettag {

namespace {

BinaryReport average_binary(const std::vector<BinaryReport>& reports) {
  BinaryReport avg;
  if (reports.empty()) return avg;
  for (const auto& r : reports) {
    avg.sensitivity += r.sensitivity;
    avg.specificity += r.specificity;
    avg.balanced_accuracy += r.balanced_accuracy;
    avg.positives += r.positives;
    avg.negatives += r.negatives;
  }
  const double k = static_cast<double>(reports.size());
  avg.sensitivity /= k;
  avg.specificity /= k;
  avg.balanced_accuracy /= k;
  return avg;
}

}  // namespace

Task2Result run_task2(NetTag& model, const Corpus& corpus,
                      const Task2Options& options, Rng& rng) {
  // Keep only designs that actually contain both register kinds in the test
  // pool so sensitivity is well-defined.
  std::vector<int> order(corpus.designs.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<int> test, train;
  for (int d : order) {
    bool has_state = false, has_data = false;
    for (const ConeSample& c : corpus.designs[static_cast<std::size_t>(d)].cones) {
      (c.is_state_reg ? has_state : has_data) = true;
    }
    if (static_cast<int>(test.size()) < options.num_test_designs && has_state &&
        has_data) {
      test.push_back(d);
    } else {
      train.push_back(d);
    }
  }

  // ---------------- NetTAG: cone embeddings + balanced head ----------------
  // Cache cone CLS embeddings per design.
  std::vector<std::vector<Mat>> cone_emb(corpus.designs.size());
  ThreadPool::instance().run_indexed(corpus.designs.size(), [&](std::size_t d) {
    for (const ConeSample& c : corpus.designs[d].cones) {
      cone_emb[d].push_back(model.cone_feature(c.cone));
    }
  });
  std::vector<Mat> x_parts;
  std::vector<int> y_train;
  for (int d : train) {
    const auto& cones = corpus.designs[static_cast<std::size_t>(d)].cones;
    for (std::size_t i = 0; i < cones.size(); ++i) {
      x_parts.push_back(cone_emb[static_cast<std::size_t>(d)][i]);
      y_train.push_back(cones[i].is_state_reg ? 1 : 0);
    }
  }
  FinetuneOptions head_opts = options.head;
  head_opts.class_weighted = true;  // state registers are the minority class
  ClassifierHead head(model.cone_feature_dim(), 2, head_opts, rng);
  if (!x_parts.empty()) head.fit(vstack(x_parts), y_train, rng);

  // ---------------- ReIGNN baseline: supervised GCN ------------------------
  Rng gnn_rng = rng.fork();
  GcnConfig gc;
  gc.in_dim = netlist_base_feature_dim();
  gc.num_layers = 3;
  gc.out_dim = 2;
  Gcn gnn(gc, gnn_rng);
  Adam opt(gnn.params(), options.gnn_lr);
  std::vector<Mat> feats(corpus.designs.size()), adjs(corpus.designs.size());
  std::vector<std::vector<int>> reg_rows(corpus.designs.size());
  std::vector<std::vector<int>> reg_labels(corpus.designs.size());
  for (std::size_t d = 0; d < corpus.designs.size(); ++d) {
    const Netlist& nl = corpus.designs[d].gen.netlist;
    feats[d] = netlist_base_features(nl);
    adjs[d] = normalized_adjacency(static_cast<int>(nl.size()), netlist_edges(nl));
    for (GateId r : nl.registers()) {
      reg_rows[d].push_back(static_cast<int>(r));
      reg_labels[d].push_back(nl.gate(r).is_state_reg ? 1 : 0);
    }
  }
  for (int step = 0; step < options.gnn_steps; ++step) {
    const std::size_t d =
        static_cast<std::size_t>(train[gnn_rng.index(train.size())]);
    if (reg_rows[d].empty()) continue;
    Tensor nodes = gnn.forward_nodes(make_tensor(feats[d], false),
                                     make_tensor(adjs[d], false));
    std::vector<Tensor> rows;
    for (int r : reg_rows[d]) rows.push_back(slice_rows(nodes, r, 1));
    Tensor loss = cross_entropy(concat_rows(rows), reg_labels[d]);
    backward(loss);
    opt.step();
  }

  // ---------------- evaluation ---------------------------------------------
  Task2Result result;
  std::vector<BinaryReport> reignn_reports, nettag_reports;
  for (int d : test) {
    const std::size_t di = static_cast<std::size_t>(d);
    const auto& cones = corpus.designs[di].cones;
    if (cones.empty()) continue;
    Task2Row row;
    row.design = corpus.designs[di].gen.netlist.name();
    // NetTAG.
    std::vector<int> truth, pred;
    std::vector<Mat> xs;
    for (std::size_t i = 0; i < cones.size(); ++i) {
      truth.push_back(cones[i].is_state_reg ? 1 : 0);
      xs.push_back(cone_emb[di][i]);
    }
    pred = head.predict(vstack(xs));
    row.nettag = binary_report(truth, pred);
    // ReIGNN.
    Tensor nodes = gnn.forward_nodes(make_tensor(feats[di], false),
                                     make_tensor(adjs[di], false));
    std::vector<int> gnn_pred;
    for (int r : reg_rows[di]) {
      gnn_pred.push_back(nodes->value.at(r, 1) > nodes->value.at(r, 0) ? 1 : 0);
    }
    row.reignn = binary_report(reg_labels[di], gnn_pred);
    reignn_reports.push_back(row.reignn);
    nettag_reports.push_back(row.nettag);
    result.rows.push_back(std::move(row));
  }
  result.reignn_avg = average_binary(reignn_reports);
  result.nettag_avg = average_binary(nettag_reports);
  return result;
}

}  // namespace nettag
