#include "tasks/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nettag {

namespace {

/// One node of a regression tree stored in a flat vector.
struct TreeNode {
  int feature = -1;        ///< -1 for leaves
  float threshold = 0.f;
  int left = -1, right = -1;
  double value = 0.0;      ///< leaf prediction
};

struct Tree {
  std::vector<TreeNode> nodes;

  double predict(const Mat& x, int row) const {
    int at = 0;
    while (nodes[static_cast<std::size_t>(at)].feature >= 0) {
      const TreeNode& n = nodes[static_cast<std::size_t>(at)];
      at = x.at(row, n.feature) <= n.threshold ? n.left : n.right;
    }
    return nodes[static_cast<std::size_t>(at)].value;
  }
};

/// Recursive CART builder on residuals (squared-error criterion).
class TreeBuilder {
 public:
  TreeBuilder(const Mat& x, const std::vector<double>& residual,
              const GbdtOptions& options, Rng& rng)
      : x_(x), residual_(residual), options_(options), rng_(rng) {}

  Tree build(const std::vector<int>& rows) {
    Tree tree;
    grow(rows, 0, tree);
    return tree;
  }

 private:
  int grow(const std::vector<int>& rows, int depth, Tree& tree) {
    const int index = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();
    double mean = 0;
    for (int r : rows) mean += residual_[static_cast<std::size_t>(r)];
    mean /= std::max<std::size_t>(rows.size(), 1);
    tree.nodes[static_cast<std::size_t>(index)].value = mean;

    if (depth >= options_.max_depth ||
        static_cast<int>(rows.size()) < 2 * options_.min_samples_leaf) {
      return index;
    }
    // Best split across features and sampled thresholds.
    double best_gain = 1e-12;
    int best_feature = -1;
    float best_threshold = 0.f;
    const double total_sum = mean * static_cast<double>(rows.size());
    for (int f = 0; f < x_.cols; ++f) {
      // Candidate thresholds: values of random rows.
      for (int c = 0; c < options_.max_split_candidates; ++c) {
        const float thr = x_.at(rows[rng_.index(rows.size())], f);
        double left_sum = 0;
        int left_n = 0;
        for (int r : rows) {
          if (x_.at(r, f) <= thr) {
            left_sum += residual_[static_cast<std::size_t>(r)];
            ++left_n;
          }
        }
        const int right_n = static_cast<int>(rows.size()) - left_n;
        if (left_n < options_.min_samples_leaf ||
            right_n < options_.min_samples_leaf) {
          continue;
        }
        const double right_sum = total_sum - left_sum;
        // Variance-reduction gain (up to constants).
        const double gain = left_sum * left_sum / left_n +
                            right_sum * right_sum / right_n -
                            total_sum * total_sum / static_cast<double>(rows.size());
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = thr;
        }
      }
    }
    if (best_feature < 0) return index;

    std::vector<int> left_rows, right_rows;
    for (int r : rows) {
      (x_.at(r, best_feature) <= best_threshold ? left_rows : right_rows)
          .push_back(r);
    }
    tree.nodes[static_cast<std::size_t>(index)].feature = best_feature;
    tree.nodes[static_cast<std::size_t>(index)].threshold = best_threshold;
    const int left = grow(left_rows, depth + 1, tree);
    const int right = grow(right_rows, depth + 1, tree);
    tree.nodes[static_cast<std::size_t>(index)].left = left;
    tree.nodes[static_cast<std::size_t>(index)].right = right;
    return index;
  }

  const Mat& x_;
  const std::vector<double>& residual_;
  const GbdtOptions& options_;
  Rng& rng_;
};

}  // namespace

struct GbdtRegressor::Impl {
  double base = 0.0;
  std::vector<Tree> trees;
};

GbdtRegressor::GbdtRegressor(const GbdtOptions& options)
    : impl_(std::make_unique<Impl>()), options_(options) {}
GbdtRegressor::~GbdtRegressor() = default;
GbdtRegressor::GbdtRegressor(GbdtRegressor&&) noexcept = default;
GbdtRegressor& GbdtRegressor::operator=(GbdtRegressor&&) noexcept = default;

void GbdtRegressor::fit(const Mat& x, const std::vector<double>& y, Rng& rng) {
  impl_->trees.clear();
  impl_->base = 0.0;
  if (x.rows == 0) return;
  for (double v : y) impl_->base += v;
  impl_->base /= static_cast<double>(y.size());

  std::vector<double> pred(y.size(), impl_->base);
  std::vector<double> residual(y.size());
  for (int t = 0; t < options_.num_trees; ++t) {
    for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];
    // Row subsample.
    std::vector<int> rows;
    for (int r = 0; r < x.rows; ++r) {
      if (rng.chance(options_.subsample)) rows.push_back(r);
    }
    if (static_cast<int>(rows.size()) < 2 * options_.min_samples_leaf) continue;
    TreeBuilder builder(x, residual, options_, rng);
    Tree tree = builder.build(rows);
    for (std::size_t i = 0; i < y.size(); ++i) {
      pred[i] += options_.learning_rate *
                 tree.predict(x, static_cast<int>(i));
    }
    impl_->trees.push_back(std::move(tree));
  }
}

double GbdtRegressor::predict_row(const Mat& x, int row) const {
  double out = impl_->base;
  for (const Tree& t : impl_->trees) {
    out += options_.learning_rate * t.predict(x, row);
  }
  return out;
}

std::vector<double> GbdtRegressor::predict(const Mat& x) const {
  std::vector<double> out(static_cast<std::size_t>(x.rows));
  for (int r = 0; r < x.rows; ++r) out[static_cast<std::size_t>(r)] = predict_row(x, r);
  return out;
}

int GbdtRegressor::num_trees() const {
  return static_cast<int>(impl_->trees.size());
}

}  // namespace nettag
