// Task 3: endpoint register slack prediction at the netlist stage (paper
// §III-B, Table IV right). Predict sign-off (post-layout, post-optimization)
// timing slack for each register endpoint given only the pre-layout netlist
// — hard because layout optimization restructures the graph [2].
//
// NetTAG: frozen cone [CLS] embeddings + MLP regressor.
// Baseline: the timing GNN of [2] adapted to the netlist stage — supervised
// GCN over structural+physical features, regressing slack at register nodes.
#pragma once

#include "core/dataset.hpp"
#include "core/nettag.hpp"
#include "tasks/finetune.hpp"
#include "util/metrics.hpp"

namespace nettag {

struct Task3Options {
  int num_test_designs = 8;
  FinetuneOptions head;
  int gnn_steps = 700;
  float gnn_lr = 2e-3f;
  double mape_floor = 0.02;  ///< ns; slack magnitudes below this skip MAPE
};

struct Task3Row {
  std::string design;
  RegressionReport gnn;
  RegressionReport nettag;
};

struct Task3Result {
  std::vector<Task3Row> rows;
  RegressionReport gnn_avg;
  RegressionReport nettag_avg;
};

Task3Result run_task3(NetTag& model, const Corpus& corpus,
                      const Task3Options& options, Rng& rng);

}  // namespace nettag
