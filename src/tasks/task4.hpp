// Task 4: overall circuit power/area prediction at the netlist stage (paper
// §III-B, Table V). Predict post-layout area and power from the pre-layout
// netlist, in two label scenarios: w/o layout optimization and w/ layout
// optimization (the PowPrediCT setting, where restructuring makes
// netlist-stage estimates unreliable).
//
// Three predictors per target:
//  * EDA tool  — the synthesis-stage estimate (synthesis_estimate()),
//  * GNN       — PowPrediCT-style supervised graph-level GCN regressor,
//  * NetTAG    — frozen circuit embeddings (+ tool estimate as a feature,
//                like PowPrediCT consumes netlist-stage reports) + MLP.
#pragma once

#include "core/dataset.hpp"
#include "core/nettag.hpp"
#include "tasks/finetune.hpp"
#include "util/metrics.hpp"

namespace nettag {

struct Task4Options {
  double test_fraction = 0.3;
  FinetuneOptions head;
  int gnn_steps = 300;
  float gnn_lr = 3e-3f;
};

/// One table cell group: metric x scenario.
struct Task4Cell {
  RegressionReport tool;
  RegressionReport gnn;
  RegressionReport nettag;
};

struct Task4Result {
  Task4Cell area_wo_opt;
  Task4Cell area_w_opt;
  Task4Cell power_wo_opt;
  Task4Cell power_w_opt;
};

Task4Result run_task4(NetTag& model, const Corpus& corpus,
                      const Task4Options& options, Rng& rng);

}  // namespace nettag
