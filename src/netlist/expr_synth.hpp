// Expression-to-gates synthesis: lowers a Boolean expression AST into
// library gates inside an existing netlist, resolving variables against
// existing gate names. Closes the loop with khop_expression(): an extracted
// cone expression can be re-synthesized and formally checked equivalent.
#pragma once

#include <string>

#include "expr/expr.hpp"
#include "netlist/netlist.hpp"

namespace nettag {

/// Synthesizes `e` into `nl` and returns the gate driving its value.
/// Variables must name existing gates in `nl` (ports, registers, or any
/// logic gate); throws std::invalid_argument otherwise. New gates are named
/// `<prefix><counter>` (counter chosen to avoid collisions). Wide AND/OR
/// use 3/4-input cells; XOR chains decompose into XOR2.
GateId synthesize_expression(Netlist& nl, const ExprPtr& e,
                             const std::string& prefix = "sx");

}  // namespace nettag
