#include "netlist/liberty.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "netlist/cell_library.hpp"

namespace nettag {

void write_liberty(std::ostream& os, const std::string& library_name) {
  os << "library (" << library_name << ") {\n"
     << "  time_unit : \"1ns\";\n"
     << "  capacitive_load_unit (1, ff);\n"
     << "  leakage_power_unit : \"1nW\";\n";
  os << std::fixed << std::setprecision(4);
  for (const CellInfo& c : all_cells()) {
    if (c.type == CellType::kPort) continue;
    os << "  cell (" << c.name << ") {\n"
       << "    area : " << c.area << ";\n"
       << "    cell_leakage_power : " << c.leakage << ";\n";
    if (c.sequential) os << "    ff (IQ, IQN) { clocked_on : \"CK\"; }\n";
    static const char* kPins[] = {"A", "B", "C", "D"};
    for (int p = 0; p < c.num_inputs; ++p) {
      const char* name = c.sequential ? "D" : kPins[p];
      os << "    pin (" << name << ") {\n"
         << "      direction : input;\n"
         << "      capacitance : " << c.input_cap << ";\n"
         << "    }\n";
    }
    os << "    pin (" << (c.sequential ? "Q" : "Y") << ") {\n"
       << "      direction : output;\n"
       << "      timing () {\n"
       << "        intrinsic_rise : " << c.intrinsic_delay << ";\n"
       << "        intrinsic_fall : " << c.intrinsic_delay << ";\n"
       << "        rise_resistance : " << c.drive_res << ";\n"
       << "        fall_resistance : " << c.drive_res << ";\n"
       << "      }\n"
       << "    }\n"
       << "  }\n";
  }
  os << "}\n";
}

std::string liberty_to_string(const std::string& library_name) {
  std::ostringstream ss;
  write_liberty(ss, library_name);
  return ss.str();
}

}  // namespace nettag
