// And-Inverter Graph conversion.
//
// The pre-trained-encoder comparison (paper Fig. 5) evaluates on an
// AIG-format dataset, because the baseline encoders (FGNN, DeepGate) only
// handle AIGs. This pass decomposes every library cell into AND2 + INV
// nodes, preserving the per-gate RTL-block labels so Task 1 can be run on
// the converted graphs.
#pragma once

#include <unordered_map>

#include "netlist/netlist.hpp"

namespace nettag {

/// Result of AIG conversion.
struct AigResult {
  Netlist aig;
  /// original gate id -> AIG node computing the same output signal
  std::unordered_map<GateId, GateId> node_of;
};

/// Converts `nl` to an equivalent netlist using only PORT/CONST/DFF/AND2/INV
/// cells. Output markers, labels, and register flags are carried over.
AigResult to_aig(const Netlist& nl);

/// True if the netlist contains only AIG-legal cell types.
bool is_aig(const Netlist& nl);

}  // namespace nettag
