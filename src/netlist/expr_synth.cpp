#include "netlist/expr_synth.hpp"

#include <stdexcept>

namespace nettag {

namespace {

class ExprSynth {
 public:
  ExprSynth(Netlist& nl, const std::string& prefix) : nl_(nl), prefix_(prefix) {}

  GateId lower(const ExprPtr& e) {
    switch (e->kind()) {
      case ExprKind::kConst0:
        return constant(false);
      case ExprKind::kConst1:
        return constant(true);
      case ExprKind::kVar: {
        const GateId id = nl_.find(e->var_name());
        if (id == kNoGate) {
          throw std::invalid_argument("synthesize_expression: unknown signal '" +
                                      e->var_name() + "'");
        }
        return id;
      }
      case ExprKind::kNot:
        return make(CellType::kInv, {lower(e->children()[0])});
      case ExprKind::kAnd:
        return reduce(e, CellType::kAnd2, CellType::kAnd3, CellType::kAnd4);
      case ExprKind::kOr:
        return reduce(e, CellType::kOr2, CellType::kOr3, CellType::kOr4);
      case ExprKind::kXor: {
        GateId acc = lower(e->children()[0]);
        for (std::size_t i = 1; i < e->children().size(); ++i) {
          acc = make(CellType::kXor2, {acc, lower(e->children()[i])});
        }
        return acc;
      }
    }
    throw std::invalid_argument("synthesize_expression: bad node");
  }

 private:
  GateId constant(bool v) {
    GateId& slot = v ? const1_ : const0_;
    if (slot == kNoGate) {
      slot = make(v ? CellType::kConst1 : CellType::kConst0, {});
    }
    return slot;
  }

  GateId make(CellType type, const std::vector<GateId>& fanins) {
    std::string name;
    do {
      name = prefix_ + std::to_string(counter_++);
    } while (nl_.find(name) != kNoGate);
    return nl_.add_gate(type, name, fanins);
  }

  /// Lowers an n-ary AND/OR using the widest available cells.
  GateId reduce(const ExprPtr& e, CellType two, CellType three, CellType four) {
    std::vector<GateId> ops;
    ops.reserve(e->children().size());
    for (const auto& c : e->children()) ops.push_back(lower(c));
    while (ops.size() > 1) {
      std::vector<GateId> next;
      std::size_t i = 0;
      while (i < ops.size()) {
        const std::size_t rem = ops.size() - i;
        if (rem >= 4) {
          next.push_back(make(four, {ops[i], ops[i + 1], ops[i + 2], ops[i + 3]}));
          i += 4;
        } else if (rem == 3) {
          next.push_back(make(three, {ops[i], ops[i + 1], ops[i + 2]}));
          i += 3;
        } else if (rem == 2) {
          next.push_back(make(two, {ops[i], ops[i + 1]}));
          i += 2;
        } else {
          next.push_back(ops[i]);
          i += 1;
        }
      }
      ops = std::move(next);
    }
    return ops[0];
  }

  Netlist& nl_;
  std::string prefix_;
  int counter_ = 0;
  GateId const0_ = kNoGate;
  GateId const1_ = kNoGate;
};

}  // namespace

GateId synthesize_expression(Netlist& nl, const ExprPtr& e,
                             const std::string& prefix) {
  return ExprSynth(nl, prefix).lower(e);
}

}  // namespace nettag
