// Gate-level netlist graph.
//
// Every node is a gate (including primary-input PORT nodes and DFF
// registers); a gate's output net is identified with the gate itself, so an
// edge fanin->gate means "the fanin's output drives one of this gate's input
// pins". Fanin order is significant for non-symmetric cells (MUX2, AOI/OAI).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.hpp"

namespace nettag {

using GateId = std::int32_t;
constexpr GateId kNoGate = -1;

/// One gate instance.
struct Gate {
  GateId id = kNoGate;
  CellType type = CellType::kPort;
  std::string name;              ///< unique instance name within the netlist
  std::vector<GateId> fanins;    ///< ordered input pins
  std::vector<GateId> fanouts;   ///< maintained by Netlist
  bool is_primary_output = false;
  // --- ground-truth annotations carried from generation (labels only; never
  // fed to models except where a task explicitly allows) ---
  std::string rtl_block;         ///< RTL block provenance (Task 1 label)
  bool is_state_reg = false;     ///< DFF only: state vs data register (Task 2)
};

/// Aggregate statistics (Table II-style).
struct NetlistStats {
  std::size_t num_gates = 0;       ///< all nodes incl. ports
  std::size_t num_logic = 0;       ///< combinational logic cells
  std::size_t num_registers = 0;   ///< DFF count
  std::size_t num_ports = 0;       ///< primary inputs
  double total_area = 0.0;
  double total_leakage = 0.0;
};

/// Mutable netlist. Gates are created via add_* and referenced by GateId.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Benchmark family ("itc99", "opencores", ...) — metadata for tables.
  const std::string& source() const { return source_; }
  void set_source(std::string s) { source_ = std::move(s); }

  std::size_t size() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[static_cast<std::size_t>(id)]; }
  Gate& gate(GateId id) { return gates_[static_cast<std::size_t>(id)]; }
  const std::vector<Gate>& gates() const { return gates_; }

  /// Adds a primary input.
  GateId add_port(const std::string& name);

  /// Adds a gate of the given type driven by `fanins` (arity-checked).
  GateId add_gate(CellType type, const std::string& name,
                  const std::vector<GateId>& fanins);

  /// Adds a register whose D input is connected later (sequential feedback
  /// makes some forward reference unavoidable). The netlist is invalid
  /// (validate() throws) until connect_register() is called.
  GateId add_register(const std::string& name);

  /// Connects a deferred register's D input.
  void connect_register(GateId reg, GateId driver);

  /// Marks a gate's output as a primary output.
  void mark_output(GateId id) { gate(id).is_primary_output = true; }

  /// Replaces one fanin pin (old_fanin -> new_fanin) on `id`, updating
  /// fanout lists. All matching pins are redirected.
  void replace_fanin(GateId id, GateId old_fanin, GateId new_fanin);

  /// Looks up a gate id by instance name (kNoGate if absent).
  GateId find(const std::string& name) const;

  /// Gate ids in combinational topological order: PORT/CONST/DFF first (as
  /// sources), then logic gates such that every gate appears after all its
  /// combinational fanins. Throws std::runtime_error on a combinational cycle.
  std::vector<GateId> topo_order() const;

  /// Per-cell-type instance counts (indexed by CellType value).
  std::vector<std::size_t> type_counts() const;

  NetlistStats stats() const;

  /// All DFF gate ids.
  std::vector<GateId> registers() const;

  /// All PORT gate ids.
  std::vector<GateId> ports() const;

  /// Primary output gate ids.
  std::vector<GateId> outputs() const;

  /// Structural sanity check: arities match, fanins in range, names unique,
  /// no combinational cycles. Throws std::runtime_error with a description
  /// on the first violation.
  void validate() const;

 private:
  std::string name_;
  std::string source_;
  std::vector<Gate> gates_;
  std::unordered_map<std::string, GateId> by_name_;
};

/// Symbolic expression of `id`'s output over its k-hop fan-in cone (paper
/// §II-B): expansion stops at PORT/DFF boundaries or at `k` levels of logic,
/// whichever comes first; frontier gates appear as variables named by their
/// instance name. k=0 returns just the variable for the gate itself.
ExprPtr khop_expression(const Netlist& nl, GateId id, int k);

/// Bit-parallel simulation: given values for all PORT and DFF nodes
/// (indexed by gate id; other entries ignored), computes every gate's output.
std::vector<bool> simulate(const Netlist& nl, const std::vector<bool>& sources);

}  // namespace nettag
