#include "netlist/cone.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace nettag {

namespace {

bool is_boundary(CellType t) {
  return t == CellType::kPort || t == CellType::kDff;
}

}  // namespace

RegisterCone extract_cone(const Netlist& nl, GateId register_id,
                          std::size_t max_gates) {
  const Gate& reg = nl.gate(register_id);
  if (reg.type != CellType::kDff) {
    throw std::invalid_argument("extract_cone: not a register: " + reg.name);
  }

  // Backward BFS from the D pin through combinational logic.
  std::unordered_set<GateId> logic;     // interior combinational gates
  std::unordered_set<GateId> boundary;  // PORT/DFF leaves feeding the cone
  std::deque<GateId> frontier;
  auto enqueue = [&](GateId id) {
    const Gate& g = nl.gate(id);
    // Registers are always boundaries — including this cone's own register
    // when its next-state logic feeds back on its Q output (counters, FSMs).
    if (is_boundary(g.type)) {
      boundary.insert(id);
    } else if (!logic.count(id)) {
      logic.insert(id);
      frontier.push_back(id);
    }
  };
  enqueue(reg.fanins[0]);
  while (!frontier.empty()) {
    const GateId id = frontier.front();
    frontier.pop_front();
    if (max_gates && logic.size() >= max_gates) {
      // Cap reached: unexplored fanins of remaining gates become boundaries.
      break;
    }
    for (GateId f : nl.gate(id).fanins) enqueue(f);
  }
  // Any fanin of an interior gate that was never classified becomes a
  // boundary — except constants, which are cheap to copy into the cone.
  std::unordered_set<GateId> extra_consts;
  for (GateId id : logic) {
    for (GateId f : nl.gate(id).fanins) {
      if (logic.count(f)) continue;
      const CellType t = nl.gate(f).type;
      if (t == CellType::kConst0 || t == CellType::kConst1) {
        extra_consts.insert(f);
      } else {
        boundary.insert(f);
      }
    }
  }
  logic.insert(extra_consts.begin(), extra_consts.end());

  // Rebuild as a standalone netlist, respecting parent's topological order.
  RegisterCone rc;
  rc.register_id = register_id;
  rc.cone.set_name(nl.name() + "." + reg.name);
  rc.cone.set_source(nl.source());

  std::unordered_map<GateId, GateId> to_cone;
  // Boundaries become PORT nodes (even if they were registers in the
  // parent): from the cone's point of view they are free inputs. The cone's
  // own register, when reached through feedback, becomes a "__q" port so its
  // name does not collide with the cone's DFF node.
  for (GateId b : boundary) {
    const Gate& g = nl.gate(b);
    const std::string port_name =
        b == register_id ? g.name + "__q" : g.name;
    const GateId cid = rc.cone.add_port(port_name);
    rc.cone.gate(cid).rtl_block = g.rtl_block;
    to_cone[b] = cid;
    rc.to_parent[cid] = b;
  }
  for (GateId id : nl.topo_order()) {
    if (!logic.count(id)) continue;
    const Gate& g = nl.gate(id);
    if (g.type == CellType::kConst0 || g.type == CellType::kConst1) {
      const GateId cid = rc.cone.add_gate(g.type, g.name, {});
      to_cone[id] = cid;
      rc.to_parent[cid] = id;
      continue;
    }
    std::vector<GateId> fanins;
    fanins.reserve(g.fanins.size());
    for (GateId f : g.fanins) fanins.push_back(to_cone.at(f));
    const GateId cid = rc.cone.add_gate(g.type, g.name, fanins);
    rc.cone.gate(cid).rtl_block = g.rtl_block;
    to_cone[id] = cid;
    rc.to_parent[cid] = id;
  }
  // Finally the register itself.
  const GateId d = to_cone.at(reg.fanins[0]);
  rc.cone_register = rc.cone.add_gate(CellType::kDff, reg.name, {d});
  Gate& cg = rc.cone.gate(rc.cone_register);
  cg.rtl_block = reg.rtl_block;
  cg.is_state_reg = reg.is_state_reg;
  cg.is_primary_output = true;
  rc.to_parent[rc.cone_register] = register_id;
  return rc;
}

std::vector<RegisterCone> extract_register_cones(const Netlist& nl,
                                                 std::size_t max_gates) {
  std::vector<RegisterCone> cones;
  for (GateId r : nl.registers()) {
    cones.push_back(extract_cone(nl, r, max_gates));
  }
  return cones;
}

}  // namespace nettag
