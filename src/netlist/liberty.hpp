// Liberty-format (.lib style) dump of the standard-cell library — the
// artifact a real flow would consume for timing/power; emitted so the
// library characteristics are inspectable and diffable.
#pragma once

#include <iosfwd>
#include <string>

namespace nettag {

/// Writes every cell in the library as a liberty-style `cell {}` group with
/// area, leakage, pin capacitances, and a timing group carrying the
/// intrinsic delay and drive resistance.
void write_liberty(std::ostream& os, const std::string& library_name);
std::string liberty_to_string(const std::string& library_name);

}  // namespace nettag
