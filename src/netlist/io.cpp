#include "netlist/io.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nettag {

namespace {

void write_attrs(std::ostream& os, const Gate& g) {
  if (!g.rtl_block.empty()) os << " block=" << g.rtl_block;
  if (g.is_state_reg) os << " state";
  if (g.is_primary_output) os << " out";
}

}  // namespace

void write_netlist(std::ostream& os, const Netlist& nl) {
  os << "module " << nl.name();
  if (!nl.source().empty()) os << " source " << nl.source();
  os << "\n";
  // Sources first: ports, constants, register declarations (Q pins).
  for (const Gate& g : nl.gates()) {
    switch (g.type) {
      case CellType::kPort:
        os << "port " << g.name;
        write_attrs(os, g);
        os << "\n";
        break;
      case CellType::kConst0:
      case CellType::kConst1:
        os << "gate " << cell_info(g.type).name << ' ' << g.name;
        write_attrs(os, g);
        os << "\n";
        break;
      case CellType::kDff:
        os << "reg " << g.name;
        write_attrs(os, g);
        os << "\n";
        break;
      default:
        break;
    }
  }
  // Combinational gates in topological order.
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (g.type == CellType::kPort || g.type == CellType::kConst0 ||
        g.type == CellType::kConst1 || g.type == CellType::kDff) {
      continue;
    }
    os << "gate " << cell_info(g.type).name << ' ' << g.name;
    for (GateId f : g.fanins) os << ' ' << nl.gate(f).name;
    write_attrs(os, g);
    os << "\n";
  }
  // Register D connections last (they may reference any gate).
  for (const Gate& g : nl.gates()) {
    if (g.type != CellType::kDff) continue;
    os << "drive " << g.name << ' ' << nl.gate(g.fanins[0]).name << "\n";
  }
  os << "endmodule\n";
}

std::string netlist_to_string(const Netlist& nl) {
  std::ostringstream ss;
  write_netlist(ss, nl);
  return ss.str();
}

Netlist read_netlist(std::istream& is) {
  Netlist nl;
  std::string line;
  int lineno = 0;
  bool in_module = false, done = false;
  auto fail = [&](const std::string& why) {
    throw std::runtime_error("read_netlist: line " + std::to_string(lineno) +
                             ": " + why);
  };
  auto read_attrs = [&](std::istringstream& ls, GateId id) {
    std::string attr;
    while (ls >> attr) {
      if (attr == "state") {
        nl.gate(id).is_state_reg = true;
      } else if (attr == "out") {
        nl.mark_output(id);
      } else if (attr.rfind("block=", 0) == 0) {
        nl.gate(id).rtl_block = attr.substr(6);
      } else {
        fail("unknown attribute '" + attr + "'");
      }
    }
  };

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;
    if (word == "module") {
      std::string name;
      if (!(ls >> name)) fail("module without name");
      nl.set_name(name);
      std::string key;
      if (ls >> key) {
        if (key != "source") fail("unexpected token after module name");
        std::string src;
        if (!(ls >> src)) fail("source without value");
        nl.set_source(src);
      }
      in_module = true;
      continue;
    }
    if (!in_module) fail("content before module header");
    if (word == "endmodule") {
      done = true;
      break;
    }

    if (word == "port") {
      std::string name;
      if (!(ls >> name)) fail("port without name");
      read_attrs(ls, nl.add_port(name));
    } else if (word == "reg") {
      std::string name;
      if (!(ls >> name)) fail("reg without name");
      read_attrs(ls, nl.add_register(name));
    } else if (word == "drive") {
      std::string rname, dname;
      if (!(ls >> rname >> dname)) fail("malformed drive");
      const GateId r = nl.find(rname);
      const GateId d = nl.find(dname);
      if (r == kNoGate) fail("drive of unknown register '" + rname + "'");
      if (d == kNoGate) fail("drive from unknown signal '" + dname + "'");
      nl.connect_register(r, d);
    } else if (word == "gate") {
      std::string cell, name;
      if (!(ls >> cell >> name)) fail("gate without cell/name");
      const CellType type = cell_type_from_name(cell);
      const int arity = cell_info(type).num_inputs;
      std::vector<GateId> fanins;
      for (int i = 0; i < arity; ++i) {
        std::string fan;
        if (!(ls >> fan)) fail("missing fanin on " + name);
        const GateId f = nl.find(fan);
        if (f == kNoGate) fail("unknown fanin '" + fan + "' on " + name);
        fanins.push_back(f);
      }
      read_attrs(ls, nl.add_gate(type, name, fanins));
    } else {
      fail("unknown directive '" + word + "'");
    }
  }
  if (!done) fail("missing endmodule");
  // Every declared register must have been driven.
  for (const Gate& g : nl.gates()) {
    if (g.type == CellType::kDff && g.fanins.empty()) {
      throw std::runtime_error("read_netlist: register '" + g.name +
                               "' never driven");
    }
  }
  return nl;
}

Netlist netlist_from_string(const std::string& text) {
  std::istringstream ss(text);
  return read_netlist(ss);
}

}  // namespace nettag
