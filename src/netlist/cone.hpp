// Register-cone chunking (paper §II-B).
//
// Large sequential circuits are chunked into one combinational cone per
// register: backtracing from the register's D pin through all driving logic
// up to other registers / primary inputs yields a subcircuit capturing the
// register's complete state-transition function. Cones are the unit of
// pre-training and of Task 2/3 fine-tuning; circuit-level embeddings sum
// cone embeddings (paper §II-F).
#pragma once

#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace nettag {

/// One register cone: a standalone combinational netlist whose boundary
/// nodes (other registers, primary inputs) are PORT nodes, terminating in a
/// single DFF (the cone's register, marked as primary output).
struct RegisterCone {
  GateId register_id = kNoGate;   ///< DFF id in the *parent* netlist
  Netlist cone;                   ///< standalone cone netlist
  GateId cone_register = kNoGate; ///< DFF id in `cone`
  /// cone gate id -> parent gate id
  std::unordered_map<GateId, GateId> to_parent;
};

/// Extracts a cone for every DFF in `nl`. Gate names, RTL-block labels and
/// state-register flags are preserved, so cone-level tasks keep their
/// ground truth. `max_gates` caps cone size (0 = unbounded): the backward
/// BFS stops expanding once the cap is reached and the remaining frontier
/// becomes PORT boundaries, mirroring how the paper bounds cone growth.
std::vector<RegisterCone> extract_register_cones(const Netlist& nl,
                                                 std::size_t max_gates = 0);

/// Extracts the cone for a single register.
RegisterCone extract_cone(const Netlist& nl, GateId register_id,
                          std::size_t max_gates = 0);

}  // namespace nettag
