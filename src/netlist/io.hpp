// Structural netlist reader/writer.
//
// A compact Verilog-inspired line format so generated designs can be dumped,
// inspected, versioned, and reloaded:
//
//   module <name> source <family>
//   port <name> [block=<label>]
//   reg <name> [block=<label>] [state] [out]
//   gate <CELL> <name> <fanin>... [block=<label>] [state] [out]
//   drive <reg> <signal>
//   endmodule
//
// Gate output nets are identified with instance names; fanins reference
// instance names and must be declared earlier. Registers are declared up
// front with `reg` (their Q pins feed combinational logic) and their D
// inputs are connected by trailing `drive` lines, so sequential feedback
// round-trips. `state` marks a state register (Task 2 ground truth), `out`
// a primary output, `block=` the RTL provenance label (Task 1 ground
// truth). `gate DFF <name> <d>` is also accepted when the driver is
// already defined.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace nettag {

/// Serializes the netlist (topological order).
void write_netlist(std::ostream& os, const Netlist& nl);
std::string netlist_to_string(const Netlist& nl);

/// Parses the format produced by write_netlist. Throws std::runtime_error
/// with a line number on malformed input.
Netlist read_netlist(std::istream& is);
Netlist netlist_from_string(const std::string& text);

}  // namespace nettag
