// Structural Verilog emitter.
//
// Emits gate-level netlists as synthesizable structural Verilog using the
// cell library's names (NanGate45-style instantiations), so generated
// designs can be inspected with standard tooling or fed to external flows.
// This is the inverse direction of our compact .nl format (io.hpp) — write
// only; parsing full Verilog is out of scope.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace nettag {

/// Writes `nl` as a structural Verilog module. Gate output nets take the
/// instance name ("U3" drives wire "U3"); DFFs become DFF cell instances
/// with an implicit clock port "clk".
void write_verilog(std::ostream& os, const Netlist& nl);
std::string verilog_to_string(const Netlist& nl);

}  // namespace nettag
