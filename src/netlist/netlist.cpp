#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>

namespace nettag {

GateId Netlist::add_port(const std::string& name) {
  return add_gate(CellType::kPort, name, {});
}

GateId Netlist::add_gate(CellType type, const std::string& name,
                         const std::vector<GateId>& fanins) {
  if (static_cast<int>(fanins.size()) != cell_info(type).num_inputs) {
    throw std::invalid_argument("add_gate: arity mismatch for " +
                                std::string(cell_info(type).name) + " '" + name +
                                "'");
  }
  if (by_name_.count(name)) {
    throw std::invalid_argument("add_gate: duplicate name '" + name + "'");
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.id = id;
  g.type = type;
  g.name = name;
  g.fanins = fanins;
  for (GateId f : fanins) {
    if (f < 0 || f >= id) {
      // Forward references are allowed only via explicit later rewiring;
      // normal construction is in topological creation order.
      if (f < 0 || static_cast<std::size_t>(f) >= gates_.size()) {
        throw std::invalid_argument("add_gate: fanin out of range");
      }
    }
    gates_[static_cast<std::size_t>(f)].fanouts.push_back(id);
  }
  by_name_[name] = id;
  gates_.push_back(std::move(g));
  return id;
}

GateId Netlist::add_register(const std::string& name) {
  if (by_name_.count(name)) {
    throw std::invalid_argument("add_register: duplicate name '" + name + "'");
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.id = id;
  g.type = CellType::kDff;
  g.name = name;
  by_name_[name] = id;
  gates_.push_back(std::move(g));
  return id;
}

void Netlist::connect_register(GateId reg, GateId driver) {
  Gate& g = gate(reg);
  if (g.type != CellType::kDff || !g.fanins.empty()) {
    throw std::invalid_argument("connect_register: '" + g.name +
                                "' is not an unconnected register");
  }
  if (driver < 0 || static_cast<std::size_t>(driver) >= gates_.size()) {
    throw std::invalid_argument("connect_register: driver out of range");
  }
  g.fanins.push_back(driver);
  gate(driver).fanouts.push_back(reg);
}

void Netlist::replace_fanin(GateId id, GateId old_fanin, GateId new_fanin) {
  // Invariant: fanout lists hold one entry per sink *pin*, so a gate with two
  // pins on the same net appears twice in that net's fanouts.
  Gate& g = gate(id);
  int replaced = 0;
  for (GateId& f : g.fanins) {
    if (f == old_fanin) {
      f = new_fanin;
      ++replaced;
    }
  }
  if (replaced == 0) return;
  auto& old_fo = gate(old_fanin).fanouts;
  for (int k = 0; k < replaced; ++k) {
    auto it = std::find(old_fo.begin(), old_fo.end(), id);
    assert(it != old_fo.end());
    old_fo.erase(it);
    gate(new_fanin).fanouts.push_back(id);
  }
}

GateId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoGate : it->second;
}

namespace {
bool is_source(CellType t) {
  return t == CellType::kPort || t == CellType::kConst0 ||
         t == CellType::kConst1 || t == CellType::kDff;
}
}  // namespace

std::vector<GateId> Netlist::topo_order() const {
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<int> pending(gates_.size(), 0);
  std::deque<GateId> ready;
  for (const Gate& g : gates_) {
    if (is_source(g.type)) {
      ready.push_back(g.id);
    } else {
      pending[static_cast<std::size_t>(g.id)] = static_cast<int>(g.fanins.size());
      if (g.fanins.empty()) ready.push_back(g.id);
    }
  }
  while (!ready.empty()) {
    const GateId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (GateId fo : gates_[static_cast<std::size_t>(id)].fanouts) {
      const Gate& sink = gates_[static_cast<std::size_t>(fo)];
      if (is_source(sink.type)) continue;  // DFF D-pins do not propagate
      if (--pending[static_cast<std::size_t>(fo)] == 0) ready.push_back(fo);
    }
  }
  if (order.size() != gates_.size()) {
    throw std::runtime_error("topo_order: combinational cycle in netlist '" +
                             name_ + "'");
  }
  return order;
}

std::vector<std::size_t> Netlist::type_counts() const {
  std::vector<std::size_t> counts(kNumCellTypes, 0);
  for (const Gate& g : gates_) counts[static_cast<std::size_t>(g.type)]++;
  return counts;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.num_gates = gates_.size();
  for (const Gate& g : gates_) {
    const CellInfo& info = cell_info(g.type);
    s.total_area += info.area;
    s.total_leakage += info.leakage;
    if (g.type == CellType::kDff) {
      ++s.num_registers;
    } else if (g.type == CellType::kPort) {
      ++s.num_ports;
    } else if (g.type != CellType::kConst0 && g.type != CellType::kConst1) {
      ++s.num_logic;
    }
  }
  return s;
}

std::vector<GateId> Netlist::registers() const {
  std::vector<GateId> out;
  for (const Gate& g : gates_) {
    if (g.type == CellType::kDff) out.push_back(g.id);
  }
  return out;
}

std::vector<GateId> Netlist::ports() const {
  std::vector<GateId> out;
  for (const Gate& g : gates_) {
    if (g.type == CellType::kPort) out.push_back(g.id);
  }
  return out;
}

std::vector<GateId> Netlist::outputs() const {
  std::vector<GateId> out;
  for (const Gate& g : gates_) {
    if (g.is_primary_output) out.push_back(g.id);
  }
  return out;
}

void Netlist::validate() const {
  for (const Gate& g : gates_) {
    if (static_cast<int>(g.fanins.size()) != cell_info(g.type).num_inputs) {
      throw std::runtime_error("validate: arity mismatch on " + g.name);
    }
    for (GateId f : g.fanins) {
      if (f < 0 || static_cast<std::size_t>(f) >= gates_.size()) {
        throw std::runtime_error("validate: dangling fanin on " + g.name);
      }
    }
    auto it = by_name_.find(g.name);
    if (it == by_name_.end() || it->second != g.id) {
      throw std::runtime_error("validate: name index broken for " + g.name);
    }
  }
  // Fanout lists must mirror fanin pins with multiplicity.
  std::vector<std::size_t> pin_count(gates_.size(), 0);
  for (const Gate& g : gates_) {
    for (GateId f : g.fanins) pin_count[static_cast<std::size_t>(f)]++;
  }
  for (const Gate& g : gates_) {
    if (g.fanouts.size() != pin_count[static_cast<std::size_t>(g.id)]) {
      throw std::runtime_error("validate: fanout multiset broken on " + g.name);
    }
  }
  topo_order();  // throws on combinational cycles
}

ExprPtr khop_expression(const Netlist& nl, GateId id, int k) {
  const Gate& g = nl.gate(id);
  if (g.type == CellType::kConst0) return Expr::constant(false);
  if (g.type == CellType::kConst1) return Expr::constant(true);
  if (k <= 0 || is_source(g.type)) {
    return Expr::var(g.name);
  }
  std::vector<ExprPtr> ins;
  ins.reserve(g.fanins.size());
  for (GateId f : g.fanins) ins.push_back(khop_expression(nl, f, k - 1));
  return cell_function(g.type, ins);
}

std::vector<bool> simulate(const Netlist& nl, const std::vector<bool>& sources) {
  assert(sources.size() == nl.size());
  std::vector<bool> value(nl.size(), false);
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (is_source(g.type)) {
      if (g.type == CellType::kConst0) {
        value[static_cast<std::size_t>(id)] = false;
      } else if (g.type == CellType::kConst1) {
        value[static_cast<std::size_t>(id)] = true;
      } else {
        value[static_cast<std::size_t>(id)] = sources[static_cast<std::size_t>(id)];
      }
      continue;
    }
    std::vector<bool> ins;
    ins.reserve(g.fanins.size());
    for (GateId f : g.fanins) ins.push_back(value[static_cast<std::size_t>(f)]);
    value[static_cast<std::size_t>(id)] = cell_eval(g.type, ins);
  }
  return value;
}

}  // namespace nettag
