#include "netlist/cell_library.hpp"

#include <array>
#include <cassert>
#include <cctype>
#include <stdexcept>
#include <unordered_map>

namespace nettag {

namespace {

// Physical numbers are NanGate45-flavoured approximations: relative ordering
// and magnitudes matter (INV small/fast, AOI22 big/slow, DFF biggest), not
// the precise values.
const std::array<CellInfo, kNumCellTypes> kCells = {{
    {CellType::kPort, "PORT", 0, false, 0.0, 0.0, 0.0, 0.05, 0.0},
    {CellType::kConst0, "CONST0", 0, false, 0.0, 0.0, 0.0, 0.05, 0.0},
    {CellType::kConst1, "CONST1", 0, false, 0.0, 0.0, 0.0, 0.05, 0.0},
    {CellType::kInv, "INV", 1, false, 0.53, 1.2, 1.6, 0.12, 0.010},
    {CellType::kBuf, "BUF", 1, false, 0.80, 1.5, 1.5, 0.08, 0.018},
    {CellType::kAnd2, "AND2", 2, false, 1.06, 2.0, 1.8, 0.14, 0.028},
    {CellType::kAnd3, "AND3", 3, false, 1.33, 2.6, 1.9, 0.15, 0.034},
    {CellType::kAnd4, "AND4", 4, false, 1.60, 3.1, 2.0, 0.16, 0.040},
    {CellType::kNand2, "NAND2", 2, false, 0.80, 1.6, 1.7, 0.13, 0.016},
    {CellType::kNand3, "NAND3", 3, false, 1.06, 2.2, 1.8, 0.14, 0.022},
    {CellType::kNand4, "NAND4", 4, false, 1.33, 2.8, 1.9, 0.15, 0.028},
    {CellType::kOr2, "OR2", 2, false, 1.06, 2.1, 1.8, 0.14, 0.030},
    {CellType::kOr3, "OR3", 3, false, 1.33, 2.7, 1.9, 0.15, 0.036},
    {CellType::kOr4, "OR4", 4, false, 1.60, 3.2, 2.0, 0.16, 0.042},
    {CellType::kNor2, "NOR2", 2, false, 0.80, 1.7, 1.7, 0.14, 0.018},
    {CellType::kNor3, "NOR3", 3, false, 1.06, 2.3, 1.8, 0.15, 0.024},
    {CellType::kNor4, "NOR4", 4, false, 1.33, 2.9, 1.9, 0.16, 0.030},
    {CellType::kXor2, "XOR2", 2, false, 1.60, 3.4, 2.2, 0.17, 0.042},
    {CellType::kXnor2, "XNOR2", 2, false, 1.60, 3.4, 2.2, 0.17, 0.042},
    {CellType::kMux2, "MUX2", 3, false, 1.86, 3.6, 2.1, 0.16, 0.046},
    {CellType::kAoi21, "AOI21", 3, false, 1.06, 2.4, 1.9, 0.15, 0.024},
    {CellType::kAoi22, "AOI22", 4, false, 1.33, 3.0, 2.0, 0.16, 0.030},
    {CellType::kOai21, "OAI21", 3, false, 1.06, 2.4, 1.9, 0.15, 0.024},
    {CellType::kOai22, "OAI22", 4, false, 1.33, 3.0, 2.0, 0.16, 0.030},
    {CellType::kMaj3, "MAJ3", 3, false, 1.86, 3.8, 2.2, 0.17, 0.048},
    {CellType::kDff, "DFF", 1, true, 4.52, 8.5, 1.8, 0.14, 0.090},
}};

}  // namespace

const CellInfo& cell_info(CellType type) {
  return kCells[static_cast<std::size_t>(type)];
}

const std::vector<CellInfo>& all_cells() {
  static const std::vector<CellInfo> v(kCells.begin(), kCells.end());
  return v;
}

CellType cell_type_from_name(const std::string& name) {
  static const std::unordered_map<std::string, CellType> index = [] {
    std::unordered_map<std::string, CellType> m;
    for (const auto& c : kCells) m[c.name] = c.type;
    return m;
  }();
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  auto it = index.find(upper);
  if (it == index.end()) {
    throw std::invalid_argument("unknown cell name: " + name);
  }
  return it->second;
}

ExprPtr cell_function(CellType type, const std::vector<ExprPtr>& in) {
  assert(static_cast<int>(in.size()) == cell_info(type).num_inputs);
  switch (type) {
    case CellType::kPort:
      throw std::invalid_argument("PORT has no local function");
    case CellType::kConst0:
      return Expr::constant(false);
    case CellType::kConst1:
      return Expr::constant(true);
    case CellType::kInv:
      return Expr::lnot(in[0]);
    case CellType::kBuf:
    case CellType::kDff:
      return in[0];
    case CellType::kAnd2:
    case CellType::kAnd3:
    case CellType::kAnd4:
      return Expr::land(in);
    case CellType::kNand2:
    case CellType::kNand3:
    case CellType::kNand4:
      return Expr::lnot(Expr::land(in));
    case CellType::kOr2:
    case CellType::kOr3:
    case CellType::kOr4:
      return Expr::lor(in);
    case CellType::kNor2:
    case CellType::kNor3:
    case CellType::kNor4:
      return Expr::lnot(Expr::lor(in));
    case CellType::kXor2:
      return Expr::lxor(in);
    case CellType::kXnor2:
      return Expr::lnot(Expr::lxor(in));
    case CellType::kMux2:
      // (A, B, S): S ? B : A
      return Expr::lor(Expr::land(Expr::lnot(in[2]), in[0]),
                       Expr::land(in[2], in[1]));
    case CellType::kAoi21:
      return Expr::lnot(Expr::lor(Expr::land(in[0], in[1]), in[2]));
    case CellType::kAoi22:
      return Expr::lnot(
          Expr::lor(Expr::land(in[0], in[1]), Expr::land(in[2], in[3])));
    case CellType::kOai21:
      return Expr::lnot(Expr::land(Expr::lor(in[0], in[1]), in[2]));
    case CellType::kOai22:
      return Expr::lnot(
          Expr::land(Expr::lor(in[0], in[1]), Expr::lor(in[2], in[3])));
    case CellType::kMaj3:
      return Expr::lor(Expr::lor(Expr::land(in[0], in[1]), Expr::land(in[0], in[2])),
                       Expr::land(in[1], in[2]));
  }
  throw std::invalid_argument("cell_function: bad type");
}

bool cell_eval(CellType type, const std::vector<bool>& in) {
  switch (type) {
    case CellType::kPort:
      throw std::invalid_argument("PORT has no local function");
    case CellType::kConst0:
      return false;
    case CellType::kConst1:
      return true;
    case CellType::kInv:
      return !in[0];
    case CellType::kBuf:
    case CellType::kDff:
      return in[0];
    case CellType::kAnd2:
      return in[0] && in[1];
    case CellType::kAnd3:
      return in[0] && in[1] && in[2];
    case CellType::kAnd4:
      return in[0] && in[1] && in[2] && in[3];
    case CellType::kNand2:
      return !(in[0] && in[1]);
    case CellType::kNand3:
      return !(in[0] && in[1] && in[2]);
    case CellType::kNand4:
      return !(in[0] && in[1] && in[2] && in[3]);
    case CellType::kOr2:
      return in[0] || in[1];
    case CellType::kOr3:
      return in[0] || in[1] || in[2];
    case CellType::kOr4:
      return in[0] || in[1] || in[2] || in[3];
    case CellType::kNor2:
      return !(in[0] || in[1]);
    case CellType::kNor3:
      return !(in[0] || in[1] || in[2]);
    case CellType::kNor4:
      return !(in[0] || in[1] || in[2] || in[3]);
    case CellType::kXor2:
      return in[0] != in[1];
    case CellType::kXnor2:
      return in[0] == in[1];
    case CellType::kMux2:
      return in[2] ? in[1] : in[0];
    case CellType::kAoi21:
      return !((in[0] && in[1]) || in[2]);
    case CellType::kAoi22:
      return !((in[0] && in[1]) || (in[2] && in[3]));
    case CellType::kOai21:
      return !((in[0] || in[1]) && in[2]);
    case CellType::kOai22:
      return !((in[0] || in[1]) && (in[2] || in[3]));
    case CellType::kMaj3:
      return (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2]);
  }
  throw std::invalid_argument("cell_eval: bad type");
}

int gate_class_of(CellType type) {
  const int first = static_cast<int>(CellType::kInv);
  const int last = static_cast<int>(CellType::kMaj3);
  const int t = static_cast<int>(type);
  if (t < first || t > last) return -1;
  return t - first;
}

int num_gate_classes() {
  return static_cast<int>(CellType::kMaj3) - static_cast<int>(CellType::kInv) + 1;
}

CellType gate_class_to_type(int cls) {
  assert(cls >= 0 && cls < num_gate_classes());
  return static_cast<CellType>(cls + static_cast<int>(CellType::kInv));
}

}  // namespace nettag
