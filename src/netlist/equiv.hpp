// Formal combinational equivalence checking between netlists, built on the
// BDD engine — the classic CEC flow: match sequential/input boundaries by
// name, build canonical BDDs for every register D-input and primary output,
// compare node-for-node. This gives the optimization passes a *formal*
// correctness oracle on top of the randomized-simulation checks.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace nettag {

/// Result of an equivalence check.
struct EquivResult {
  bool equivalent = false;
  /// First mismatching checkpoint (register or output name); empty if
  /// equivalent or if the failure is structural.
  std::string mismatch;
  /// Structural failure description (boundary mismatch), empty otherwise.
  std::string error;
  /// Number of compared checkpoints.
  std::size_t checkpoints = 0;
};

/// Checks combinational equivalence of two netlists: sources (ports and
/// register outputs) are matched by name, and every register D-input plus
/// every primary output must compute the same Boolean function of them.
/// Both netlists must have the same register set; extra/missing ports on
/// either side are allowed only if unused.
EquivResult check_equivalence(const Netlist& a, const Netlist& b);

}  // namespace nettag
