// Standard-cell library modeled after the NanGate 45nm open cell library the
// paper synthesizes into. Each cell carries the physical characteristics that
// become part of a gate's TAG text attribute (area, leakage, input cap, drive
// resistance, intrinsic delay) and a local Boolean function used for k-hop
// symbolic expression extraction, simulation, and AIG decomposition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.hpp"

namespace nettag {

enum class CellType : std::uint8_t {
  kPort,    ///< primary input (no fanin)
  kConst0,  ///< tie-low
  kConst1,  ///< tie-high
  kInv,
  kBuf,
  kAnd2,
  kAnd3,
  kAnd4,
  kNand2,
  kNand3,
  kNand4,
  kOr2,
  kOr3,
  kOr4,
  kNor2,
  kNor3,
  kNor4,
  kXor2,
  kXnor2,
  kMux2,   ///< inputs (A, B, S): S ? B : A
  kAoi21,  ///< !((A&B) | C)
  kAoi22,  ///< !((A&B) | (C&D))
  kOai21,  ///< !((A|B) & C)
  kOai22,  ///< !((A|B) & (C|D))
  kMaj3,   ///< majority(A,B,C) — carry cell
  kDff,    ///< input D; output Q (sequential)
};

/// Number of distinct cell types (array sizing).
constexpr int kNumCellTypes = static_cast<int>(CellType::kDff) + 1;

/// Static per-cell data.
struct CellInfo {
  CellType type;
  const char* name;      ///< library cell name, e.g. "NAND2"
  int num_inputs;        ///< required fanin count
  bool sequential;       ///< true only for DFF
  double area;           ///< um^2
  double leakage;        ///< nW
  double input_cap;      ///< fF per input pin
  double drive_res;      ///< kOhm equivalent output drive
  double intrinsic_delay;///< ns at zero load
};

/// Library lookup by type. Data is immutable and process-wide.
const CellInfo& cell_info(CellType type);

/// All cells in enum order.
const std::vector<CellInfo>& all_cells();

/// Parses a cell name ("NAND2", case-insensitive) back to its type.
/// Throws std::invalid_argument for unknown names.
CellType cell_type_from_name(const std::string& name);

/// The cell's Boolean function applied to symbolic input expressions.
/// `inputs` must have exactly cell_info(type).num_inputs entries. DFF returns
/// its D input (the function seen *through* a register is handled by cone
/// boundaries, not here); PORT/CONST take no inputs.
ExprPtr cell_function(CellType type, const std::vector<ExprPtr>& inputs);

/// Evaluates the cell's function on concrete input bits (fast path used by
/// the simulator; avoids building expression trees).
bool cell_eval(CellType type, const std::vector<bool>& inputs);

/// Classes used for masked-gate-type prediction (Objective #2.1): all
/// combinational logic cells (PORT/CONST/DFF excluded).
int gate_class_of(CellType type);          ///< -1 if not a logic cell
int num_gate_classes();                    ///< number of logic-cell classes
CellType gate_class_to_type(int cls);      ///< inverse of gate_class_of

}  // namespace nettag
