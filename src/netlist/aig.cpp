#include "netlist/aig.hpp"

#include <string>

namespace nettag {

namespace {

/// Builder that creates AND/INV nodes with fresh names, tagging each new
/// node with the RTL-block label of the gate it came from.
class AigBuilder {
 public:
  explicit AigBuilder(Netlist& out) : out_(out) {}

  void set_label(const std::string& label) { label_ = label; }

  GateId mk_inv(GateId a) {
    const GateId id = out_.add_gate(CellType::kInv, fresh("n"), {a});
    out_.gate(id).rtl_block = label_;
    return id;
  }

  GateId mk_and(GateId a, GateId b) {
    const GateId id = out_.add_gate(CellType::kAnd2, fresh("n"), {a, b});
    out_.gate(id).rtl_block = label_;
    return id;
  }

  GateId mk_or(GateId a, GateId b) { return mk_inv(mk_and(mk_inv(a), mk_inv(b))); }

  GateId mk_xor(GateId a, GateId b) {
    // a^b = !(a&b) & !( !a & !b )
    return mk_and(mk_inv(mk_and(a, b)), mk_inv(mk_and(mk_inv(a), mk_inv(b))));
  }

  GateId mk_and_all(const std::vector<GateId>& xs) {
    GateId acc = xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) acc = mk_and(acc, xs[i]);
    return acc;
  }

  GateId mk_or_all(const std::vector<GateId>& xs) {
    GateId acc = xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) acc = mk_or(acc, xs[i]);
    return acc;
  }

 private:
  std::string fresh(const char* prefix) {
    return std::string(prefix) + std::to_string(counter_++);
  }

  Netlist& out_;
  std::string label_;
  int counter_ = 0;
};

}  // namespace

AigResult to_aig(const Netlist& nl) {
  AigResult res;
  res.aig.set_name(nl.name() + "_aig");
  res.aig.set_source(nl.source());
  AigBuilder b(res.aig);

  // Pass 1: sources. DFF D-pins are wired to a placeholder constant because
  // their driving logic is converted only in pass 2; pass 3 rewires them.
  GateId placeholder = kNoGate;
  for (const Gate& g : nl.gates()) {
    switch (g.type) {
      case CellType::kPort: {
        const GateId out = res.aig.add_port(g.name);
        res.aig.gate(out).rtl_block = g.rtl_block;
        res.node_of[g.id] = out;
        break;
      }
      case CellType::kConst0:
      case CellType::kConst1:
        res.node_of[g.id] = res.aig.add_gate(g.type, g.name, {});
        break;
      case CellType::kDff: {
        if (placeholder == kNoGate) {
          placeholder =
              res.aig.add_gate(CellType::kConst0, "__aig_dff_placeholder", {});
        }
        const GateId out =
            res.aig.add_gate(CellType::kDff, g.name, {placeholder});
        Gate& ng = res.aig.gate(out);
        ng.rtl_block = g.rtl_block;
        ng.is_state_reg = g.is_state_reg;
        res.node_of[g.id] = out;
        break;
      }
      default:
        break;  // combinational: pass 2
    }
  }

  // Pass 2: combinational logic in topological order.
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (res.node_of.count(id)) {
      if (g.is_primary_output) res.aig.mark_output(res.node_of.at(id));
      continue;  // source handled in pass 1
    }
    b.set_label(g.rtl_block);
    std::vector<GateId> in;
    in.reserve(g.fanins.size());
    for (GateId f : g.fanins) in.push_back(res.node_of.at(f));

    GateId out = kNoGate;
    switch (g.type) {
      case CellType::kPort:
      case CellType::kConst0:
      case CellType::kConst1:
      case CellType::kDff:
        break;  // unreachable: handled in pass 1
      case CellType::kInv:
        out = b.mk_inv(in[0]);
        break;
      case CellType::kBuf:
        // Buffers vanish: the AIG node is simply the fanin's node.
        out = in[0];
        break;
      case CellType::kAnd2:
      case CellType::kAnd3:
      case CellType::kAnd4:
        out = b.mk_and_all(in);
        break;
      case CellType::kNand2:
      case CellType::kNand3:
      case CellType::kNand4:
        out = b.mk_inv(b.mk_and_all(in));
        break;
      case CellType::kOr2:
      case CellType::kOr3:
      case CellType::kOr4:
        out = b.mk_or_all(in);
        break;
      case CellType::kNor2:
      case CellType::kNor3:
      case CellType::kNor4:
        out = b.mk_inv(b.mk_or_all(in));
        break;
      case CellType::kXor2:
        out = b.mk_xor(in[0], in[1]);
        break;
      case CellType::kXnor2:
        out = b.mk_inv(b.mk_xor(in[0], in[1]));
        break;
      case CellType::kMux2:
        // S ? B : A = (!S&A) | (S&B)
        out = b.mk_or(b.mk_and(b.mk_inv(in[2]), in[0]), b.mk_and(in[2], in[1]));
        break;
      case CellType::kAoi21:
        out = b.mk_inv(b.mk_or(b.mk_and(in[0], in[1]), in[2]));
        break;
      case CellType::kAoi22:
        out = b.mk_inv(b.mk_or(b.mk_and(in[0], in[1]), b.mk_and(in[2], in[3])));
        break;
      case CellType::kOai21:
        out = b.mk_inv(b.mk_and(b.mk_or(in[0], in[1]), in[2]));
        break;
      case CellType::kOai22:
        out = b.mk_inv(b.mk_and(b.mk_or(in[0], in[1]), b.mk_or(in[2], in[3])));
        break;
      case CellType::kMaj3:
        out = b.mk_or(b.mk_or(b.mk_and(in[0], in[1]), b.mk_and(in[0], in[2])),
                      b.mk_and(in[1], in[2]));
        break;
    }
    if (g.is_primary_output) res.aig.mark_output(out);
    res.node_of[id] = out;
  }

  // Pass 3: rewire DFF D-pins from the placeholder to the converted logic.
  for (const Gate& g : nl.gates()) {
    if (g.type != CellType::kDff) continue;
    res.aig.replace_fanin(res.node_of.at(g.id), placeholder,
                          res.node_of.at(g.fanins[0]));
  }
  return res;
}

bool is_aig(const Netlist& nl) {
  for (const Gate& g : nl.gates()) {
    switch (g.type) {
      case CellType::kPort:
      case CellType::kConst0:
      case CellType::kConst1:
      case CellType::kDff:
      case CellType::kInv:
      case CellType::kAnd2:
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace nettag
