#include "netlist/equiv.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "expr/bdd.hpp"

namespace nettag {

namespace {

/// Builds BDDs for every gate output of a netlist within a shared manager,
/// treating ports and register Q-pins as BDD variables named after the gate.
std::vector<BddRef> build_all(BddManager& mgr, const Netlist& nl) {
  std::vector<BddRef> f(nl.size(), BddManager::kFalse);
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    switch (g.type) {
      case CellType::kPort:
      case CellType::kDff:
        f[static_cast<std::size_t>(id)] = mgr.var(g.name);
        continue;
      case CellType::kConst0:
        f[static_cast<std::size_t>(id)] = BddManager::kFalse;
        continue;
      case CellType::kConst1:
        f[static_cast<std::size_t>(id)] = BddManager::kTrue;
        continue;
      default:
        break;
    }
    // Lower each cell through its Boolean definition using the BDD ops.
    const auto& in = g.fanins;
    auto b = [&](std::size_t k) { return f[static_cast<std::size_t>(in[k])]; };
    BddRef r = BddManager::kFalse;
    switch (g.type) {
      case CellType::kInv: r = mgr.bdd_not(b(0)); break;
      case CellType::kBuf: r = b(0); break;
      case CellType::kAnd2: r = mgr.bdd_and(b(0), b(1)); break;
      case CellType::kAnd3: r = mgr.bdd_and(mgr.bdd_and(b(0), b(1)), b(2)); break;
      case CellType::kAnd4:
        r = mgr.bdd_and(mgr.bdd_and(b(0), b(1)), mgr.bdd_and(b(2), b(3)));
        break;
      case CellType::kNand2: r = mgr.bdd_not(mgr.bdd_and(b(0), b(1))); break;
      case CellType::kNand3:
        r = mgr.bdd_not(mgr.bdd_and(mgr.bdd_and(b(0), b(1)), b(2)));
        break;
      case CellType::kNand4:
        r = mgr.bdd_not(
            mgr.bdd_and(mgr.bdd_and(b(0), b(1)), mgr.bdd_and(b(2), b(3))));
        break;
      case CellType::kOr2: r = mgr.bdd_or(b(0), b(1)); break;
      case CellType::kOr3: r = mgr.bdd_or(mgr.bdd_or(b(0), b(1)), b(2)); break;
      case CellType::kOr4:
        r = mgr.bdd_or(mgr.bdd_or(b(0), b(1)), mgr.bdd_or(b(2), b(3)));
        break;
      case CellType::kNor2: r = mgr.bdd_not(mgr.bdd_or(b(0), b(1))); break;
      case CellType::kNor3:
        r = mgr.bdd_not(mgr.bdd_or(mgr.bdd_or(b(0), b(1)), b(2)));
        break;
      case CellType::kNor4:
        r = mgr.bdd_not(
            mgr.bdd_or(mgr.bdd_or(b(0), b(1)), mgr.bdd_or(b(2), b(3))));
        break;
      case CellType::kXor2: r = mgr.bdd_xor(b(0), b(1)); break;
      case CellType::kXnor2: r = mgr.bdd_not(mgr.bdd_xor(b(0), b(1))); break;
      case CellType::kMux2: r = mgr.ite(b(2), b(1), b(0)); break;
      case CellType::kAoi21:
        r = mgr.bdd_not(mgr.bdd_or(mgr.bdd_and(b(0), b(1)), b(2)));
        break;
      case CellType::kAoi22:
        r = mgr.bdd_not(
            mgr.bdd_or(mgr.bdd_and(b(0), b(1)), mgr.bdd_and(b(2), b(3))));
        break;
      case CellType::kOai21:
        r = mgr.bdd_not(mgr.bdd_and(mgr.bdd_or(b(0), b(1)), b(2)));
        break;
      case CellType::kOai22:
        r = mgr.bdd_not(
            mgr.bdd_and(mgr.bdd_or(b(0), b(1)), mgr.bdd_or(b(2), b(3))));
        break;
      case CellType::kMaj3:
        r = mgr.bdd_or(mgr.bdd_or(mgr.bdd_and(b(0), b(1)), mgr.bdd_and(b(0), b(2))),
                       mgr.bdd_and(b(1), b(2)));
        break;
      default:
        break;
    }
    f[static_cast<std::size_t>(id)] = r;
  }
  return f;
}

}  // namespace

EquivResult check_equivalence(const Netlist& a, const Netlist& b) {
  EquivResult res;
  // Boundary matching: registers must correspond one-to-one by name.
  std::map<std::string, GateId> regs_a, regs_b;
  for (GateId r : a.registers()) regs_a[a.gate(r).name] = r;
  for (GateId r : b.registers()) regs_b[b.gate(r).name] = r;
  if (regs_a.size() != regs_b.size()) {
    res.error = "register count mismatch";
    return res;
  }
  for (const auto& [name, id] : regs_a) {
    (void)id;
    if (!regs_b.count(name)) {
      res.error = "register '" + name + "' missing on one side";
      return res;
    }
  }

  // Shared manager with a canonical variable order: sorted source names.
  BddManager mgr;
  std::vector<std::string> sources;
  for (const Gate& g : a.gates()) {
    if (g.type == CellType::kPort || g.type == CellType::kDff) {
      sources.push_back(g.name);
    }
  }
  std::sort(sources.begin(), sources.end());
  for (const std::string& s : sources) mgr.var_index(s);

  const std::vector<BddRef> fa = build_all(mgr, a);
  const std::vector<BddRef> fb = build_all(mgr, b);

  // Checkpoints: register D-inputs...
  for (const auto& [name, ra] : regs_a) {
    const GateId rb = regs_b.at(name);
    const BddRef da = fa[static_cast<std::size_t>(a.gate(ra).fanins[0])];
    const BddRef db = fb[static_cast<std::size_t>(b.gate(rb).fanins[0])];
    ++res.checkpoints;
    if (da != db) {
      res.mismatch = name;
      return res;
    }
  }
  // ... and primary outputs, matched by driving-gate name where both sides
  // expose the same name (renamed outputs after resynthesis are skipped —
  // register checkpoints still cover the sequential behaviour).
  std::map<std::string, GateId> outs_b;
  for (GateId o : b.outputs()) outs_b[b.gate(o).name] = o;
  for (GateId o : a.outputs()) {
    auto it = outs_b.find(a.gate(o).name);
    if (it == outs_b.end()) continue;
    ++res.checkpoints;
    if (fa[static_cast<std::size_t>(o)] != fb[static_cast<std::size_t>(it->second)]) {
      res.mismatch = a.gate(o).name;
      return res;
    }
  }
  res.equivalent = true;
  return res;
}

}  // namespace nettag
