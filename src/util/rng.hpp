// Deterministic pseudo-random number generation used across the whole pipeline.
//
// Every stochastic component (design generation, expression transforms, model
// initialization, training shuffles) takes an explicit Rng so that experiments
// are reproducible from a single seed and independent components do not share
// hidden global state.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace nettag {

/// Thin wrapper around std::mt19937_64 with convenience helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t in [0, n-1]; n must be > 0.
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled by stddev.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n); k is clamped to n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for parallel-safe substreams).
  Rng fork() { return Rng(engine_()); }

  /// Exact textual engine state for checkpointing (std::mt19937_64 streams
  /// its full state; restoring it resumes the draw sequence bit-for-bit).
  /// Every helper above builds its distribution object per call, so the
  /// engine state is the *complete* generator state.
  std::string state() const;
  /// Restores a state() snapshot; throws std::runtime_error on malformed
  /// input (the engine is left untouched in that case).
  void set_state(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nettag
