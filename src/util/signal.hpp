// Cooperative SIGINT/SIGTERM handling for the training tools.
//
// The handler only sets a process-wide atomic flag (the one async-signal-safe
// thing it may do); training loops poll the flag after each optimizer step,
// finish the step they are on, write a checkpoint, and exit 0 — a kill
// signal never loses more than one step of work and never tears a file
// (writes are atomic, util/atomic_io.hpp).
#pragma once

#include <atomic>

namespace nettag {

/// Installs SIGINT and SIGTERM handlers that set a shared stop flag and
/// returns a pointer to it (stable for the process lifetime; repeated calls
/// reinstall the handlers and return the same flag). Hand the pointer to
/// TrainCheckpoint::stop so training loops observe the request.
const std::atomic<bool>* install_stop_signals();

/// The flag itself, without (re)installing handlers — test hook.
std::atomic<bool>* stop_signal_flag();

/// Like install_stop_signals, but registered without SA_RESTART: a signal
/// arriving while the caller blocks in a read (the nettag_serve stdin loop,
/// the daemon's poll) interrupts the call with EINTR so the loop observes
/// the flag immediately, instead of finishing only after the *next* request
/// line happens to arrive. Training tools keep the restarting variant —
/// their checkpoint writes must not see short reads/writes mid-step.
const std::atomic<bool>* install_stop_signals_interrupting();

}  // namespace nettag
