// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) shared by every
// integrity check in the persistence layer: the trailing checksum line of
// text manifests, the binary TrainState trailer, and the parameter
// fingerprint the serving daemon uses to decide whether a reloaded
// checkpoint actually changed the weights.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace nettag {

/// CRC of `size` bytes, continuing from `crc` (pass the previous return
/// value to checksum data incrementally; 0 starts a fresh stream).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

inline std::uint32_t crc32(const std::string& bytes, std::uint32_t crc = 0) {
  return crc32(bytes.data(), bytes.size(), crc);
}

/// Fixed-width lowercase hex rendering ("%08x") used by text manifests.
std::string crc32_hex(std::uint32_t crc);

}  // namespace nettag
