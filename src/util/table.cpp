#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace nettag {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto line = [&]() {
    for (auto w : widths) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[i])) << cell
         << ' ';
    }
    os << "|\n";
  };

  line();
  emit(header_);
  line();
  for (const auto& r : rows_) {
    if (r.empty()) {
      line();
    } else {
      emit(r);
    }
  }
  line();
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string pct(double value, int precision) {
  return fmt(value, precision);
}

}  // namespace nettag
