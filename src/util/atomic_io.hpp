// Crash-safe file emission: write the complete payload to a per-writer
// temp file, fsync it, rename onto the final path, then fsync the parent
// directory. POSIX rename within one directory is atomic, so a reader never
// observes a torn file — it sees either the old checkpoint or the new one,
// never a half-written mix — and a crash mid-save leaves at most a stale
// temp file beside an intact previous copy. The two fsyncs close the
// power-loss window rename alone leaves open: without them the rename can
// reach disk before the data (or the directory entry), durably committing a
// renamed-but-empty file. Every checkpoint/manifest/shard emitter in the
// repo goes through this writer; nothing writes a checkpoint directly to
// its final path.
//
// The temp name folds in the process id and a per-process counter, so
// concurrent writers of the *same* final path (a training checkpointer
// racing a serve `reload`, two corpus builders sharing a directory) never
// clobber each other's temp file; last rename wins and both files are
// complete.
#pragma once

#include <fstream>
#include <string>

namespace nettag {

/// RAII temp-then-rename writer. Stream into `stream()`, then `commit()`.
/// Destruction without a commit (exception unwind, early return) removes the
/// temp file and leaves the final path untouched.
class AtomicFileWriter {
 public:
  /// Opens `<final_path>.tmp.<pid>.<n>` for writing (`n` a per-process
  /// counter, so two live writers never share a temp path). Throws
  /// std::runtime_error when the temp file cannot be opened.
  AtomicFileWriter(std::string final_path, bool binary);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  std::ofstream& stream() { return out_; }

  /// The private temp path this writer streams to (exposed for tests).
  const std::string& tmp_path() const { return tmp_path_; }

  /// Flushes, fsyncs, closes, renames the temp file onto the final path,
  /// and fsyncs the parent directory so the rename itself is durable.
  /// Throws std::runtime_error on any write/sync/close/rename failure (the
  /// temp file is removed, the final path keeps its previous content).
  void commit();

 private:
  std::string final_path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

}  // namespace nettag
