// Crash-safe file emission: write the complete payload to `<path>.tmp`,
// then rename onto the final path. POSIX rename within one directory is
// atomic, so a reader never observes a torn file — it sees either the old
// checkpoint or the new one, never a half-written mix — and a crash mid-save
// leaves at most a stale `.tmp` beside an intact previous copy. Every
// checkpoint/manifest emitter in the repo goes through this writer; nothing
// writes a checkpoint directly to its final path.
//
// The temp name is derived from the final path, so concurrent writers of the
// *same* path would race on it; checkpoints have a single writer (the
// training process) by contract.
#pragma once

#include <fstream>
#include <string>

namespace nettag {

/// RAII temp-then-rename writer. Stream into `stream()`, then `commit()`.
/// Destruction without a commit (exception unwind, early return) removes the
/// temp file and leaves the final path untouched.
class AtomicFileWriter {
 public:
  /// Opens `<final_path>.tmp` for writing (truncating any stale leftover).
  /// Throws std::runtime_error when the temp file cannot be opened.
  AtomicFileWriter(std::string final_path, bool binary);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  std::ofstream& stream() { return out_; }

  /// Flushes, closes, and renames the temp file onto the final path.
  /// Throws std::runtime_error on any write/close/rename failure (the temp
  /// file is removed, the final path keeps its previous content).
  void commit();

 private:
  std::string final_path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

}  // namespace nettag
