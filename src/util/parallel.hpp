// Shared fixed-size thread pool and deterministic parallel-for.
//
// One process-wide pool (no work stealing: a parallel region is a fixed set
// of index tasks drained from an atomic counter) parallelizes the tensor
// kernels, the data-parallel pre-training steps, and the embarrassingly
// parallel node loops in the physical passes. Determinism contract:
//
//   * Every parallel kernel partitions its output by ownership (each element
//     is written by exactly one task), so kernel results are bit-identical
//     to the serial loop at ANY width.
//   * Reductions that are order-sensitive (gradient accumulation across
//     data-parallel shards) use per-worker buffers reduced in a fixed shard
//     order, so runs are bit-identical run-to-run at a fixed width.
//   * At width 1 every call runs inline on the caller, reproducing the
//     serial code path exactly (`NETTAG_THREADS=1` == pre-pool behaviour).
//
// Width resolution: the NETTAG_THREADS environment variable if set (>= 1),
// otherwise std::thread::hardware_concurrency(). Tests and benches may
// override at runtime with ThreadPool::set_width().
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace nettag {

class ThreadPool {
 public:
  /// The process-wide pool (created on first use).
  static ThreadPool& instance();

  /// True while the calling thread is executing a pool task. Nested parallel
  /// regions detect this and run inline, so kernels may be freely composed
  /// (a data-parallel training shard calling a parallel matmul does not
  /// deadlock or oversubscribe).
  static bool in_worker();

  /// Number of parallel lanes (1 == fully serial, no worker threads).
  int width() const { return width_; }

  /// Re-sizes the pool (joins workers, respawns). Not thread-safe against
  /// concurrent run_indexed() calls; intended for tests and benches.
  void set_width(int width);

  /// Runs task(0) .. task(count-1), any order, blocking until all complete.
  /// The calling thread participates. The first exception thrown by any task
  /// is rethrown on the caller after the region drains. Runs inline when the
  /// pool is serial, the caller is already a worker, or count <= 1.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  explicit ThreadPool(int width);
  void start(int width);
  void stop_workers();
  void worker_loop();
  struct Job;
  void drain(Job* job);

  int width_ = 1;
  struct Impl;
  Impl* impl_;  // worker threads + sync primitives (see parallel.cpp)
};

/// Convenience accessor: ThreadPool::instance().width().
int parallel_width();

/// Parses a NETTAG_THREADS-style value. Returns the parsed width clamped to
/// [1, 256]; rejects 0, negatives, non-numeric, and trailing-garbage values
/// by returning `fallback` and, when `warning` is non-null, describing the
/// rejection there. Exposed for unit tests; the pool uses it at startup.
int parse_thread_count(const char* text, int fallback,
                       std::string* warning = nullptr);

/// Splits [0, n) into at most width() contiguous chunks of at least `grain`
/// items and runs body(begin, end) for each, blocking. Chunk boundaries
/// depend only on (n, grain, width), so a fixed NETTAG_THREADS gives a fixed
/// partition. Runs body(0, n) inline when n <= grain or the pool is serial.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

namespace par {
/// Minimum arithmetic ops per task for cheap (add/mul) kernels — below this
/// the dispatch overhead beats the win and the kernel stays serial.
constexpr std::size_t kMinOps = std::size_t{1} << 16;
/// Minimum ops per task for transcendental kernels (exp/tanh/log).
constexpr std::size_t kMinExpOps = std::size_t{1} << 12;

/// Grain (items per task) so that each task carries at least `min_ops` work
/// given a per-item cost.
inline std::size_t grain(std::size_t per_item_cost, std::size_t min_ops) {
  if (per_item_cost == 0) per_item_cost = 1;
  return (min_ops + per_item_cost - 1) / per_item_cost;
}
}  // namespace par

}  // namespace nettag
