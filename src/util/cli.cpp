#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace nettag::cli {

namespace {

bool is_ascii_digit(char c) { return c >= '0' && c <= '9'; }

std::string quoted(const char* text) {
  return "'" + std::string(text) + "'";
}

}  // namespace

bool parse_int(const char* text, long long min_value, long long max_value,
               long long* out, std::string* error) {
  // strtoll skips leading whitespace and accepts a sign; require the text to
  // start with a digit or a single sign followed by a digit so " 7" and
  // "+ 7" are rejected as firmly as "7abc".
  const char* p = text;
  if (*p == '+' || *p == '-') ++p;
  if (!is_ascii_digit(*p)) {
    *error = "expected an integer, got " + quoted(text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') {
    *error = "expected an integer, got " + quoted(text);
    return false;
  }
  if (v < min_value || v > max_value) {
    *error = quoted(text) + " is out of range [" + std::to_string(min_value) +
             ", " + std::to_string(max_value) + "]";
    return false;
  }
  *out = v;
  return true;
}

std::string ListenAddress::spec() const {
  switch (kind) {
    case Kind::kUnix: return "unix:" + path;
    case Kind::kTcp: return host + ":" + std::to_string(port);
    case Kind::kNone: break;
  }
  return "";
}

bool parse_listen_address(const char* text, ListenAddress* out,
                          std::string* error) {
  const std::string spec(text ? text : "");
  if (spec.empty()) {
    *error = "expected 'unix:/path' or 'host:port', got an empty value";
    return false;
  }
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) {
      *error = "unix address " + quoted(text) + " has an empty socket path";
      return false;
    }
    // sockaddr_un::sun_path is 108 bytes on Linux including the terminator.
    if (path.size() > 107) {
      *error = "unix socket path in " + quoted(text) +
               " exceeds the 107-byte sockaddr_un limit";
      return false;
    }
    out->kind = ListenAddress::Kind::kUnix;
    out->path = path;
    out->host.clear();
    out->port = 0;
    return true;
  }
  if (spec.find('[') != std::string::npos) {
    *error = "bracketed IPv6 literals are not supported: " + quoted(text);
    return false;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || spec.find(':') != colon) {
    *error = "expected 'unix:/path' or 'host:port', got " + quoted(text);
    return false;
  }
  const std::string host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (host.empty()) {
    *error = "listen address " + quoted(text) +
             " has an empty host (use 0.0.0.0 for all interfaces)";
    return false;
  }
  long long port = 0;
  std::string port_error;
  if (!parse_int(port_text.c_str(), 0, 65535, &port, &port_error)) {
    *error = "bad port in " + quoted(text) + ": " + port_error;
    return false;
  }
  out->kind = ListenAddress::Kind::kTcp;
  out->host = host;
  out->port = static_cast<std::uint16_t>(port);
  out->path.clear();
  return true;
}

namespace {

bool is_model_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         is_ascii_digit(c) || c == '_' || c == '.' || c == '-';
}

bool is_model_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    if (!is_model_name_char(c)) return false;
  }
  return true;
}

}  // namespace

bool parse_model_spec(const char* text, ModelSpec* out, std::string* error) {
  std::string spec(text ? text : "");
  if (spec.empty()) {
    *error = "expected '[NAME=]PREFIX[,quantize|,fp32]', got an empty value";
    return false;
  }
  ModelSpec parsed;
  // Backend suffix first (a literal match, so a prefix containing ',' in
  // some other position is untouched).
  const std::string kQuantize = ",quantize";
  const std::string kFp32 = ",fp32";
  if (spec.size() > kQuantize.size() &&
      spec.compare(spec.size() - kQuantize.size(), kQuantize.size(),
                   kQuantize) == 0) {
    parsed.quantize = 1;
    spec.erase(spec.size() - kQuantize.size());
  } else if (spec.size() > kFp32.size() &&
             spec.compare(spec.size() - kFp32.size(), kFp32.size(), kFp32) ==
                 0) {
    parsed.quantize = 0;
    spec.erase(spec.size() - kFp32.size());
  }
  // NAME= applies only when the text before the first '=' looks like a
  // replica name; otherwise the whole value is a plain checkpoint prefix
  // (which may legitimately contain '=' in a path component).
  const std::size_t eq = spec.find('=');
  if (eq != std::string::npos) {
    const std::string candidate = spec.substr(0, eq);
    if (candidate.empty()) {
      *error = "empty replica name in " + quoted(text);
      return false;
    }
    if (is_model_name(candidate)) {
      parsed.name = candidate;
      spec.erase(0, eq + 1);
    }
  }
  if (spec.empty()) {
    *error = "empty checkpoint prefix in " + quoted(text);
    return false;
  }
  parsed.prefix = std::move(spec);
  *out = std::move(parsed);
  return true;
}

bool parse_u64(const char* text, std::uint64_t* out, std::string* error) {
  // strtoull accepts "-1" (wrapping) and leading whitespace; require the
  // first character to be a digit (a hex value starts with the digit 0).
  if (!is_ascii_digit(text[0])) {
    *error = "expected an unsigned integer, got " + quoted(text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (errno == ERANGE || end == text || *end != '\0') {
    *error = "expected an unsigned integer, got " + quoted(text);
    return false;
  }
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace nettag::cli
