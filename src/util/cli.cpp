#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace nettag::cli {

namespace {

bool is_ascii_digit(char c) { return c >= '0' && c <= '9'; }

std::string quoted(const char* text) {
  return "'" + std::string(text) + "'";
}

}  // namespace

bool parse_int(const char* text, long long min_value, long long max_value,
               long long* out, std::string* error) {
  // strtoll skips leading whitespace and accepts a sign; require the text to
  // start with a digit or a single sign followed by a digit so " 7" and
  // "+ 7" are rejected as firmly as "7abc".
  const char* p = text;
  if (*p == '+' || *p == '-') ++p;
  if (!is_ascii_digit(*p)) {
    *error = "expected an integer, got " + quoted(text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') {
    *error = "expected an integer, got " + quoted(text);
    return false;
  }
  if (v < min_value || v > max_value) {
    *error = quoted(text) + " is out of range [" + std::to_string(min_value) +
             ", " + std::to_string(max_value) + "]";
    return false;
  }
  *out = v;
  return true;
}

bool parse_u64(const char* text, std::uint64_t* out, std::string* error) {
  // strtoull accepts "-1" (wrapping) and leading whitespace; require the
  // first character to be a digit (a hex value starts with the digit 0).
  if (!is_ascii_digit(text[0])) {
    *error = "expected an unsigned integer, got " + quoted(text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (errno == ERANGE || end == text || *end != '\0') {
    *error = "expected an unsigned integer, got " + quoted(text);
    return false;
  }
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace nettag::cli
