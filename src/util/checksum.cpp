#include "util/checksum.hpp"

#include <array>
#include <cstdio>

namespace nettag {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string crc32_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace nettag
