#include "util/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace nettag {

namespace {

thread_local bool t_in_pool_task = false;

int hardware_width() {
  const unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) return 1;
  return hc > 256 ? 256 : static_cast<int>(hc);
}

int resolve_width_from_env() {
  const int fallback = hardware_width();
  const char* s = std::getenv("NETTAG_THREADS");
  if (s == nullptr) return fallback;
  std::string warning;
  const int width = parse_thread_count(s, fallback, &warning);
  if (!warning.empty()) {
    std::fprintf(stderr, "nettag: %s\n", warning.c_str());
  }
  return width;
}

}  // namespace

int parse_thread_count(const char* text, int fallback, std::string* warning) {
  auto reject = [&](const std::string& why) {
    if (warning != nullptr) {
      *warning = "ignoring NETTAG_THREADS='" + std::string(text) + "': " +
                 why + "; falling back to " + std::to_string(fallback) +
                 " (hardware concurrency)";
    }
    return fallback;
  };
  if (text == nullptr || *text == '\0') return reject("empty value");
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return reject("not an integer");
  if (errno == ERANGE) return reject("out of range");
  if (v < 1) return reject("thread count must be >= 1");
  return v > 256 ? 256 : static_cast<int>(v);
}

/// One parallel region: a fixed task count drained via an atomic cursor.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> cursor{0};  ///< next unclaimed task index
  std::size_t finished = 0;            ///< guarded by Impl::mu
  std::size_t busy = 0;                ///< workers inside drain(), guarded by mu
  std::exception_ptr error;            ///< first failure, guarded by Impl::mu
};

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable work_cv;   ///< wakes workers when a job is posted
  std::condition_variable done_cv;   ///< wakes the caller when a job drains
  Job* job = nullptr;                ///< guarded by mu
  bool stopping = false;             ///< guarded by mu
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(resolve_width_from_env());
  return pool;
}

bool ThreadPool::in_worker() { return t_in_pool_task; }

int parallel_width() { return ThreadPool::instance().width(); }

ThreadPool::ThreadPool(int width) : impl_(new Impl) { start(width); }

ThreadPool::~ThreadPool() {
  stop_workers();
  delete impl_;
}

void ThreadPool::start(int width) {
  width_ = width < 1 ? 1 : width;
  // width_ lanes = the caller plus width_-1 workers.
  for (int i = 1; i < width_; ++i) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  impl_->workers.clear();
  impl_->stopping = false;
}

void ThreadPool::set_width(int width) {
  stop_workers();
  start(width);
}

/// Claims and runs tasks from a drain cursor; records the first exception.
void ThreadPool::drain(Job* job) {
  for (;;) {
    const std::size_t i = job->cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->count) return;
    std::exception_ptr err;
    try {
      (*job->task)(i);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (err && !job->error) job->error = err;
    if (++job->finished == job->count) impl_->done_cv.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(impl_->mu);
      impl_->work_cv.wait(lk, [&] {
        return impl_->stopping ||
               (impl_->job &&
                impl_->job->cursor.load(std::memory_order_relaxed) <
                    impl_->job->count);
      });
      if (impl_->stopping) return;
      job = impl_->job;
      // Pin the job while this worker drains it: the caller only destroys
      // the (stack-allocated) job once finished == count AND busy == 0.
      ++job->busy;
    }
    t_in_pool_task = true;
    drain(job);
    t_in_pool_task = false;
    {
      std::lock_guard<std::mutex> lk(impl_->mu);
      if (--job->busy == 0 && job->finished == job->count) {
        impl_->done_cv.notify_all();
      }
    }
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (width_ <= 1 || t_in_pool_task || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  Job job;
  job.task = &task;
  job.count = count;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->job = &job;
  }
  impl_->work_cv.notify_all();
  // The caller is a lane too.
  t_in_pool_task = true;
  drain(&job);
  t_in_pool_task = false;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(
        lk, [&] { return job.finished == job.count && job.busy == 0; });
    impl_->job = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t width = static_cast<std::size_t>(pool.width());
  if (width <= 1 || ThreadPool::in_worker() || n <= grain) {
    body(0, n);
    return;
  }
  std::size_t chunks = (n + grain - 1) / grain;
  if (chunks > width) chunks = width;
  if (chunks <= 1) {
    body(0, n);
    return;
  }
  pool.run_indexed(chunks, [&](std::size_t c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    if (begin < end) body(begin, end);
  });
}

}  // namespace nettag
