// Evaluation metrics used by every downstream task and benchmark:
// classification (accuracy, macro precision/recall/F1, sensitivity, balanced
// accuracy) and regression (Pearson R, MAPE, MAE, RMSE).
#pragma once

#include <cstddef>
#include <vector>

namespace nettag {

/// Aggregate classification metrics. Precision/recall/F1 are macro-averaged
/// over the union of classes appearing in the ground truth or the
/// predictions: a class that is only ever *predicted* contributes its false
/// positives as a 0-precision term, so hallucinated classes penalize macro
/// precision instead of silently vanishing (sklearn's labels=union
/// semantics; per-class scores still match GNN-RE / Table III).
struct ClassificationReport {
  double accuracy = 0.0;
  double precision = 0.0;  ///< macro
  double recall = 0.0;     ///< macro
  double f1 = 0.0;         ///< macro
  std::size_t num_samples = 0;
  std::size_t num_classes = 0;  ///< distinct classes in y_true ∪ y_pred
};

/// Computes macro classification metrics; labels are small non-negative ints.
ClassificationReport classification_report(const std::vector<int>& y_true,
                                           const std::vector<int>& y_pred);

/// Binary metrics for Task 2 (state register = positive class 1).
/// sensitivity = TP / (TP + FN); balanced accuracy = (sens + specificity) / 2.
struct BinaryReport {
  double sensitivity = 0.0;
  double specificity = 0.0;
  double balanced_accuracy = 0.0;
  std::size_t positives = 0;
  std::size_t negatives = 0;
};

BinaryReport binary_report(const std::vector<int>& y_true,
                           const std::vector<int>& y_pred);

/// Regression metrics for Tasks 3-4.
struct RegressionReport {
  double pearson_r = 0.0;
  double mape = 0.0;  ///< mean absolute percentage error, in percent
  double mae = 0.0;
  double rmse = 0.0;
  std::size_t num_samples = 0;
};

/// MAPE skips targets with |y| below `mape_floor` to avoid division blowup
/// (slack values cross zero; the paper's MAPE is over sufficiently-large
/// magnitudes, which we emulate with a floor).
RegressionReport regression_report(const std::vector<double>& y_true,
                                   const std::vector<double>& y_pred,
                                   double mape_floor = 1e-6);

/// Pearson correlation coefficient; 0 when either side has zero variance.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace nettag
