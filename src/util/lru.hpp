// Bounded least-recently-used map.
//
// Shared by the frozen-text-embedding cache (model/text_encoder) and the
// serving result cache (serve/cache): both face unbounded key spaces under
// sustained traffic and need O(1) lookup/insert with eviction of the coldest
// entry. Not thread-safe by itself — wrappers add their own mutex so the
// locking granularity stays with the owning cache.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace nettag {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Pointer to the value (entry becomes most-recent), nullptr on miss.
  /// The pointer is invalidated by the next put()/set_capacity()/clear().
  V* get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites (entry becomes most-recent), then evicts
  /// least-recent entries beyond capacity. Returns the number evicted.
  std::size_t put(K key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return 0;
    }
    order_.emplace_front(std::move(key), std::move(value));
    index_.emplace(order_.front().first, order_.begin());
    std::size_t evicted = 0;
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  /// Shrinking evicts immediately; capacity 0 clamps to 1.
  std::size_t set_capacity(std::size_t capacity) {
    capacity_ = capacity ? capacity : 1;
    std::size_t evicted = 0;
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Visits every entry from least- to most-recently used without touching
  /// recency. The value reference is mutable — the text cache's
  /// set_partitions moves rows out while redistributing across stripes.
  template <typename Fn>
  void for_each_oldest_first(Fn&& fn) {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      fn(it->first, it->second);
    }
  }

 private:
  std::size_t capacity_;
  /// Front = most recently used; pairs own the keys the index points at.
  std::list<std::pair<K, V>> order_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
};

}  // namespace nettag
