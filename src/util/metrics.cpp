#include "util/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace nettag {

ClassificationReport classification_report(const std::vector<int>& y_true,
                                           const std::vector<int>& y_pred) {
  assert(y_true.size() == y_pred.size());
  ClassificationReport rep;
  rep.num_samples = y_true.size();
  if (y_true.empty()) return rep;

  std::size_t correct = 0;
  // Per-class confusion counts keyed by label. `classes` is the union of
  // true and predicted labels: a class that appears only in predictions
  // still enters the macro average (as a pure-false-positive 0-precision
  // term) instead of escaping the penalty entirely.
  std::map<int, std::size_t> tp, fp, fn;
  std::map<int, bool> classes;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    classes[y_true[i]] = true;
    classes[y_pred[i]] = true;
    if (y_true[i] == y_pred[i]) {
      ++correct;
      tp[y_true[i]]++;
    } else {
      fn[y_true[i]]++;
      fp[y_pred[i]]++;
    }
  }
  rep.accuracy = static_cast<double>(correct) / static_cast<double>(y_true.size());
  rep.num_classes = classes.size();

  double prec_sum = 0.0, rec_sum = 0.0, f1_sum = 0.0;
  for (const auto& [cls, present] : classes) {
    (void)present;
    const double tpc = static_cast<double>(tp[cls]);
    const double fpc = static_cast<double>(fp[cls]);
    const double fnc = static_cast<double>(fn[cls]);
    const double prec = (tpc + fpc) > 0 ? tpc / (tpc + fpc) : 0.0;
    const double rec = (tpc + fnc) > 0 ? tpc / (tpc + fnc) : 0.0;
    const double f1 = (prec + rec) > 0 ? 2 * prec * rec / (prec + rec) : 0.0;
    prec_sum += prec;
    rec_sum += rec;
    f1_sum += f1;
  }
  const double k = static_cast<double>(classes.size());
  rep.precision = prec_sum / k;
  rep.recall = rec_sum / k;
  rep.f1 = f1_sum / k;
  return rep;
}

BinaryReport binary_report(const std::vector<int>& y_true,
                           const std::vector<int>& y_pred) {
  assert(y_true.size() == y_pred.size());
  BinaryReport rep;
  std::size_t tp = 0, tn = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const bool t = y_true[i] != 0;
    const bool p = y_pred[i] != 0;
    if (t && p) ++tp;
    else if (!t && !p) ++tn;
    else if (!t && p) ++fp;
    else ++fn;
  }
  rep.positives = tp + fn;
  rep.negatives = tn + fp;
  rep.sensitivity = rep.positives ? static_cast<double>(tp) / rep.positives : 0.0;
  rep.specificity = rep.negatives ? static_cast<double>(tn) / rep.negatives : 0.0;
  rep.balanced_accuracy = (rep.sensitivity + rep.specificity) / 2.0;
  return rep;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0 || vb <= 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

RegressionReport regression_report(const std::vector<double>& y_true,
                                   const std::vector<double>& y_pred,
                                   double mape_floor) {
  assert(y_true.size() == y_pred.size());
  RegressionReport rep;
  rep.num_samples = y_true.size();
  if (y_true.empty()) return rep;

  double abs_sum = 0, sq_sum = 0, pct_sum = 0;
  std::size_t pct_n = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double err = y_pred[i] - y_true[i];
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (std::abs(y_true[i]) > mape_floor) {
      pct_sum += std::abs(err) / std::abs(y_true[i]);
      ++pct_n;
    }
  }
  const double n = static_cast<double>(y_true.size());
  rep.mae = abs_sum / n;
  rep.rmse = std::sqrt(sq_sum / n);
  rep.mape = pct_n ? 100.0 * pct_sum / static_cast<double>(pct_n) : 0.0;
  rep.pearson_r = pearson(y_true, y_pred);
  return rep;
}

}  // namespace nettag
