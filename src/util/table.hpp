// Minimal fixed-width ASCII table printer so each bench binary regenerates its
// paper table with aligned columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nettag {

/// Accumulates rows of strings and prints them with per-column alignment.
class TextTable {
 public:
  /// Sets the header row; column count is inferred from it.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator line before the next row.
  void add_separator();

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double value, int precision = 2);

/// Formats a percentage (value already in percent) with given precision.
std::string pct(double value, int precision = 0);

}  // namespace nettag
