#include "util/atomic_io.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace nettag {

AtomicFileWriter::AtomicFileWriter(std::string final_path, bool binary)
    : final_path_(std::move(final_path)), tmp_path_(final_path_ + ".tmp") {
  const std::ios_base::openmode mode =
      binary ? std::ios::binary | std::ios::trunc : std::ios::trunc;
  out_.open(tmp_path_, mode);
  if (!out_) {
    throw std::runtime_error("AtomicFileWriter: cannot open " + tmp_path_);
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFileWriter::commit() {
  out_.flush();
  if (!out_) {
    out_.close();
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("AtomicFileWriter: write failed for " +
                             tmp_path_);
  }
  out_.close();
  if (out_.fail()) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("AtomicFileWriter: close failed for " +
                             tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("AtomicFileWriter: cannot rename " + tmp_path_ +
                             " onto " + final_path_);
  }
  committed_ = true;
}

}  // namespace nettag
