#include "util/atomic_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace nettag {

namespace {

/// Per-process writer counter: two live writers targeting the same final
/// path get distinct temp files even within one process.
std::atomic<std::uint64_t> writer_counter{0};

std::string unique_tmp_path(const std::string& final_path) {
  return final_path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(writer_counter.fetch_add(1, std::memory_order_relaxed));
}

/// Directory part of `path` ("." when the path has no separator).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync(2) the named file or directory. Returns false on open/sync failure
/// with errno preserved for the caller's message.
bool sync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const int rc = ::fsync(fd);
  ::close(fd);
  return rc == 0;
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string final_path, bool binary)
    : final_path_(std::move(final_path)),
      tmp_path_(unique_tmp_path(final_path_)) {
  const std::ios_base::openmode mode =
      binary ? std::ios::binary | std::ios::trunc : std::ios::trunc;
  out_.open(tmp_path_, mode);
  if (!out_) {
    throw std::runtime_error("AtomicFileWriter: cannot open " + tmp_path_);
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFileWriter::commit() {
  auto fail = [&](const std::string& why) -> std::runtime_error {
    std::remove(tmp_path_.c_str());
    return std::runtime_error("AtomicFileWriter: " + why);
  };
  out_.flush();
  if (!out_) {
    out_.close();
    throw fail("write failed for " + tmp_path_);
  }
  out_.close();
  if (out_.fail()) {
    throw fail("close failed for " + tmp_path_);
  }
  // Data must be durable *before* the rename becomes durable: a power loss
  // after the rename reaches disk but before the data does would leave a
  // committed-looking empty/torn file — exactly what this class exists to
  // prevent.
  if (!sync_path(tmp_path_, /*directory=*/false)) {
    throw fail(std::string("fsync failed for ") + tmp_path_ + ": " +
               std::strerror(errno));
  }
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    throw fail("cannot rename " + tmp_path_ + " onto " + final_path_);
  }
  // And the rename itself must be durable: sync the directory entry so a
  // crash cannot roll the directory back to a state that never saw the file.
  if (!sync_path(parent_dir(final_path_), /*directory=*/true)) {
    throw std::runtime_error("AtomicFileWriter: fsync failed for directory " +
                             parent_dir(final_path_) + ": " +
                             std::strerror(errno));
  }
  committed_ = true;
}

}  // namespace nettag
