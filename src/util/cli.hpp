// Strict command-line number parsing shared by the tools (nettag_lint,
// nettag_serve, nettag_train).
//
// std::atoi silently yields 0 on garbage ("--designs banana" ran with 0
// designs) and strtoull with a null end pointer accepts trailing junk
// ("--seed 7abc" silently truncated to 7). These helpers reject anything
// that is not *entirely* a number, and their error message names the
// offending text so the user sees exactly what was mis-typed.
#pragma once

#include <cstdint>
#include <string>

namespace nettag::cli {

/// Parses a base-10 signed integer. The whole of `text` must be consumed and
/// the value must lie in [min_value, max_value]. On failure returns false
/// and sets *error to a message quoting `text`.
bool parse_int(const char* text, long long min_value, long long max_value,
               long long* out, std::string* error);

/// Parses an unsigned 64-bit integer, accepting 0x/0 prefixes (seeds are
/// conventionally written in hex). Rejects empty input, any sign, and
/// trailing junk. On failure returns false and sets *error.
bool parse_u64(const char* text, std::uint64_t* out, std::string* error);

/// A parsed `--listen` / `--connect` endpoint: either a unix-domain socket
/// path (`unix:/run/nettag.sock`) or a TCP host:port (`127.0.0.1:7431`).
/// kNone is the "no endpoint configured" sentinel (stdin-loop serving).
struct ListenAddress {
  enum class Kind { kNone, kUnix, kTcp };
  Kind kind = Kind::kNone;
  std::string path;        ///< unix: socket filesystem path
  std::string host;        ///< tcp: numeric address or hostname
  std::uint16_t port = 0;  ///< tcp: 0 requests an ephemeral port

  /// Canonical printable form ("unix:/p" or "host:port"); "" for kNone.
  std::string spec() const;
};

/// Parses `unix:/path` or `host:port`. Malformed values — an empty unix
/// path, a path too long for sockaddr_un, a missing/empty host, a port that
/// is not an integer in [0, 65535] — return false with an error message
/// quoting the offending text (the tools print it plus usage instead of
/// silently defaulting). Port 0 is accepted and means "bind an ephemeral
/// port" (tests); bracketed IPv6 literals are rejected as unsupported.
bool parse_listen_address(const char* text, ListenAddress* out,
                          std::string* error);

/// A parsed `--model` replica spec: `[NAME=]PREFIX[,quantize|,fp32]`.
/// NAME defaults to "default" (the replica every request without a `model`
/// field targets); the optional backend suffix overrides the process-wide
/// --quantize flag for this replica only (quantize -1 = inherit it).
struct ModelSpec {
  std::string name = "default";
  std::string prefix;
  int quantize = -1;  ///< -1 inherit --quantize, else 0 fp32 / 1 int8
};

/// Parses one `--model` value. The name (before the first '='; omitted =
/// "default") must be 1-64 chars of [A-Za-z0-9_.-]; the prefix must be
/// non-empty; an unrecognized ',suffix' is an error (only ",quantize" and
/// ",fp32" exist). A prefix may itself contain '=' or ',' only after an
/// explicit NAME= / before no recognized suffix, respectively — ambiguous
/// cases resolve toward treating the text as a plain prefix. On failure
/// returns false and sets *error quoting the offending part.
bool parse_model_spec(const char* text, ModelSpec* out, std::string* error);

}  // namespace nettag::cli
