#include "util/rng.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace nettag {

std::string Rng::state() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

void Rng::set_state(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (!in) {
    throw std::runtime_error("Rng::set_state: malformed engine state");
  }
  engine_ = restored;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  k = std::min(k, n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(all[i], all[i + index(n - i)]);
  }
  all.resize(k);
  return all;
}

}  // namespace nettag
