#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace nettag {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  k = std::min(k, n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(all[i], all[i + index(n - i)]);
  }
  all.resize(k);
  return all;
}

}  // namespace nettag
