#include "util/signal.hpp"

#include <csignal>

namespace nettag {

namespace {

std::atomic<bool> g_stop{false};

extern "C" void stop_handler(int) { g_stop.store(true); }

}  // namespace

const std::atomic<bool>* install_stop_signals() {
  std::signal(SIGINT, stop_handler);
  std::signal(SIGTERM, stop_handler);
  return &g_stop;
}

std::atomic<bool>* stop_signal_flag() { return &g_stop; }

const std::atomic<bool>* install_stop_signals_interrupting() {
  struct sigaction sa;
  sa.sa_handler = stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: blocking reads return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  return &g_stop;
}

}  // namespace nettag
