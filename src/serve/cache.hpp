// Bounded content-addressed result cache for the serving layer.
//
// Keys are canonical-hash cache keys (serve/canonical.hpp); values are the
// *rendered result bytes* of the original miss, so a hit replays a
// byte-identical response (serving determinism contract) with zero model
// work. LRU-bounded: embeddings for circuits nobody resubmits age out under
// sustained traffic instead of growing the daemon without limit.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "util/lru.hpp"

namespace nettag::serve {

class ResultCache {
 public:
  struct Stats {
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };

  explicit ResultCache(std::size_t max_entries) : map_(max_entries) {}

  /// Copies the cached payload into *payload and promotes the entry.
  /// Counts a hit or a miss either way.
  bool lookup(const std::string& key, std::string* payload) {
    std::lock_guard<std::mutex> lk(mu_);
    if (const std::string* hit = map_.get(key)) {
      ++hits_;
      *payload = *hit;
      return true;
    }
    ++misses_;
    return false;
  }

  void insert(const std::string& key, std::string payload) {
    std::lock_guard<std::mutex> lk(mu_);
    evictions_ += map_.put(key, std::move(payload));
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return Stats{map_.size(), map_.capacity(), hits_, misses_, evictions_};
  }

 private:
  mutable std::mutex mu_;
  LruMap<std::string, std::string> map_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace nettag::serve
