// Bounded content-addressed result cache for the serving layer.
//
// Keys are canonical-hash cache keys (serve/canonical.hpp); values are the
// *rendered result bytes* of the original miss, so a hit replays a
// byte-identical response (serving determinism contract) with zero model
// work. Because the key is a lossy WL hash, every entry also stores the
// exact canonical fingerprint of the netlist that produced it; a key hit
// whose fingerprint differs is a hash collision and is served as a miss
// (counted separately) rather than replaying the wrong circuit's result.
// LRU-bounded: embeddings for circuits nobody resubmits age out under
// sustained traffic instead of growing the daemon without limit.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "util/lru.hpp"

namespace nettag::serve {

class ResultCache {
 public:
  struct Stats {
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t collisions = 0;  ///< key hits rejected by fingerprint
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };

  explicit ResultCache(std::size_t max_entries) : map_(max_entries) {}

  /// Copies the cached payload into *payload and promotes the entry — but
  /// only when the stored fingerprint matches exactly; a mismatched key hit
  /// is a WL collision and counts as a miss (plus the collision counter).
  bool lookup(const std::string& key, const std::string& fingerprint,
              std::string* payload) {
    std::lock_guard<std::mutex> lk(mu_);
    if (const Entry* hit = map_.get(key)) {
      if (hit->fingerprint == fingerprint) {
        ++hits_;
        *payload = hit->payload;
        return true;
      }
      ++collisions_;
    }
    ++misses_;
    return false;
  }

  void insert(const std::string& key, std::string fingerprint,
              std::string payload) {
    std::lock_guard<std::mutex> lk(mu_);
    evictions_ += map_.put(key, Entry{std::move(fingerprint),
                                      std::move(payload)});
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return Stats{map_.size(), map_.capacity(), hits_,
                 misses_,     evictions_,      collisions_};
  }

 private:
  struct Entry {
    std::string fingerprint;
    std::string payload;
  };

  mutable std::mutex mu_;
  LruMap<std::string, Entry> map_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, collisions_ = 0;
};

}  // namespace nettag::serve
